package heterohpc

// One testing.B benchmark per table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index). Benchmark parameters are
// reduced (smaller per-rank meshes, truncated series) so `go test -bench=.`
// completes on a laptop; the cmd/heterobench CLI runs the full-size
// regenerations recorded in EXPERIMENTS.md. Each benchmark reports the
// paper-relevant quantity as custom metrics alongside wall time.

import (
	"testing"

	"heterohpc/internal/bench"
	"heterohpc/internal/core"
	"heterohpc/internal/provision"
	"heterohpc/internal/spot"
)

func benchOpts() bench.Options {
	return bench.Options{PerRankN: 4, Steps: 2, SkipSteps: 1, MaxRanks: 64, Seed: 2012}
}

// BenchmarkTableICapabilities regenerates Table I (platform capability
// matrix).
func BenchmarkTableICapabilities(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := bench.FormatCapabilities(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkProvisioningPlans regenerates the §VI porting plans (experiment
// E2) and reports the EC2 effort estimate.
func BenchmarkProvisioningPlans(b *testing.B) {
	b.ReportAllocs()
	reg := provision.DefaultRegistry()
	var hours float64
	for i := 0; i < b.N; i++ {
		for _, name := range provision.PaperPlatforms {
			st, err := provision.PlatformState(name)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := provision.Resolve(reg, st, provision.AppTargets)
			if err != nil {
				b.Fatal(err)
			}
			if name == "ec2" {
				hours = plan.TotalHours
			}
		}
	}
	b.ReportMetric(hours, "ec2-man-hours")
}

// BenchmarkFig4RDWeakScaling regenerates Figure 4: the RD weak-scaling
// series on all four platforms (reduced loading).
func BenchmarkFig4RDWeakScaling(b *testing.B) {
	b.ReportAllocs()
	var growth float64
	for i := 0; i < b.N; i++ {
		series, err := bench.RunWeakAll("rd", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		ec2 := series[3]
		last := ec2.Points[len(ec2.Points)-1]
		if last.Err != nil {
			b.Fatal(last.Err)
		}
		growth = last.Report.Iter.MaxTotal / ec2.Points[0].Report.Iter.MaxTotal
	}
	b.ReportMetric(growth, "ec2-growth-64ranks")
}

// BenchmarkFig5NSWeakScaling regenerates Figure 5: the Navier–Stokes
// weak-scaling series (reduced loading and series — NS is ~4 solves/step).
func BenchmarkFig5NSWeakScaling(b *testing.B) {
	b.ReportAllocs()
	o := benchOpts()
	o.MaxRanks = 27
	var growth float64
	for i := 0; i < b.N; i++ {
		series, err := bench.RunWeakAll("ns", o)
		if err != nil {
			b.Fatal(err)
		}
		ec2 := series[3]
		last := ec2.Points[len(ec2.Points)-1]
		if last.Err != nil {
			b.Fatal(last.Err)
		}
		growth = last.Report.Iter.MaxTotal / ec2.Points[0].Report.Iter.MaxTotal
	}
	b.ReportMetric(growth, "ec2-growth-27ranks")
}

// BenchmarkTableIIPlacement regenerates Table II: full on-demand single
// placement group vs. spot mix across four groups on EC2.
func BenchmarkTableIIPlacement(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunPlacement(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		if last.Err != nil {
			b.Fatal(last.Err)
		}
		ratio = last.FullCost / last.MixEstCost
	}
	// The paper observes the single placement group "does not introduce any
	// performance benefits despite costing four times as much".
	b.ReportMetric(ratio, "full/spot-cost-ratio")
}

// BenchmarkFig6RDCost regenerates Figure 6: RD per-iteration costs across
// platforms including the ec2 mix curve.
func BenchmarkFig6RDCost(b *testing.B) {
	b.ReportAllocs()
	var table string
	for i := 0; i < b.N; i++ {
		series, err := bench.RunWeakAll("rd", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		table = bench.FormatCost(series)
	}
	if len(table) == 0 {
		b.Fatal("empty cost table")
	}
}

// BenchmarkFig7NSCost regenerates Figure 7: NS per-iteration costs.
func BenchmarkFig7NSCost(b *testing.B) {
	b.ReportAllocs()
	o := benchOpts()
	o.MaxRanks = 27
	var table string
	for i := 0; i < b.N; i++ {
		series, err := bench.RunWeakAll("ns", o)
		if err != nil {
			b.Fatal(err)
		}
		table = bench.FormatCost(series)
	}
	if len(table) == 0 {
		b.Fatal("empty cost table")
	}
}

// BenchmarkAvailability regenerates the §VIII availability comparison
// (experiment E9).
func BenchmarkAvailability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.FormatAvailability(benchOpts(), 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpotAcquisition measures the spot-market fleet assembly of §VII-B.
func BenchmarkSpotAcquisition(b *testing.B) {
	b.ReportAllocs()
	var spotShare float64
	for i := 0; i < b.N; i++ {
		m := spot.NewMarket(uint64(i+1), 2.40)
		a, err := m.AcquireMix(63, 1.20, 4, 6)
		if err != nil {
			b.Fatal(err)
		}
		spotShare = float64(a.SpotCount()) / 63
	}
	b.ReportMetric(spotShare, "spot-share")
}

// BenchmarkRDIteration measures one full platform-modelled RD run (the unit
// of every figure) at quickstart size.
func BenchmarkRDIteration(b *testing.B) {
	b.ReportAllocs()
	tg, err := core.NewTarget("ec2", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		app, err := core.WeakRD(8, 6, 2)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := tg.Run(core.JobSpec{Ranks: 8, App: app, SkipSteps: 1})
		if err != nil {
			b.Fatal(err)
		}
		virt = rep.Iter.MaxTotal
	}
	b.ReportMetric(virt, "virtual-s/iter")
}
