// The -fix driver: re-runs the analyzers through go vet in JSON mode,
// collects the suggested fixes, and either previews them as a diff
// (default, exit 1 if any are pending — the CI cleanliness gate) or
// applies them in place with -write.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"

	"heterohpc/internal/analysis"
	"heterohpc/internal/analysis/unitchecker"
)

func runFix(args []string) int {
	write := false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-write", "--write":
			write = true
		case "-dry-run", "--dry-run":
			write = false
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "heterolint -fix: unknown flag %s\n", a)
				return 1
			}
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterolint:", err)
		return 1
	}
	// HETEROLINT_JSON makes the unit checker emit machine-readable
	// diagnostics without relying on cmd/go forwarding a -json flag.
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Env = append(os.Environ(), "HETEROLINT_JSON=1")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	_ = cmd.Run() // diagnostics are in the JSON either way; a bad exit with unparseable output fails below

	diags, perr := parseVetJSON(out.Bytes())
	if perr != nil {
		fmt.Fprintf(os.Stderr, "heterolint -fix: cannot parse go vet output: %v\noutput was:\n%s", perr, out.String())
		return 1
	}

	byFile := map[string][]analysis.Edit{}
	fixCount := 0
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		fixCount++
		// Apply the first fix of each diagnostic, like analysistest.
		for _, e := range d.SuggestedFixes[0].Edits {
			byFile[e.Filename] = append(byFile[e.Filename], analysis.Edit{
				Start: e.Start, End: e.End, New: []byte(e.New),
			})
		}
	}
	if fixCount == 0 {
		fmt.Println("heterolint -fix: no pending fixes")
		return 0
	}

	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	failed := false
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heterolint -fix: %v\n", err)
			failed = true
			continue
		}
		fixed, err := analysis.ApplyEdits(src, dedupeEdits(byFile[name]))
		if err != nil {
			fmt.Fprintf(os.Stderr, "heterolint -fix: %s: %v (conflicting fixes; apply manually)\n", name, err)
			failed = true
			continue
		}
		if write {
			if err := os.WriteFile(name, fixed, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "heterolint -fix: %v\n", err)
				failed = true
				continue
			}
			fmt.Printf("fixed %s\n", name)
		} else {
			printDiff(name, src, fixed)
		}
	}
	if failed {
		return 1
	}
	if !write {
		fmt.Printf("heterolint -fix: %d fix(es) pending; run with -write to apply\n", fixCount)
		return 1
	}
	return 0
}

// parseVetJSON extracts diagnostics from `go vet` output in JSON mode: a
// sequence of {"pkg": {"analyzer": [diag, ...]}} objects interleaved with
// "# pkg" comment lines.
func parseVetJSON(out []byte) ([]unitchecker.JSONDiagnostic, error) {
	var clean bytes.Buffer
	for _, line := range bytes.Split(out, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		clean.Write(line)
		clean.WriteByte('\n')
	}
	var diags []unitchecker.JSONDiagnostic
	dec := json.NewDecoder(&clean)
	for dec.More() {
		var tree map[string]map[string][]unitchecker.JSONDiagnostic
		if err := dec.Decode(&tree); err != nil {
			return nil, err
		}
		for _, byAnalyzer := range tree {
			for _, ds := range byAnalyzer {
				diags = append(diags, ds...)
			}
		}
	}
	// Deterministic order regardless of cmd/go's action scheduling.
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Posn != diags[j].Posn {
			return diags[i].Posn < diags[j].Posn
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// dedupeEdits drops exact duplicates — the same fix reported through two
// units (a package and its test variant) must not double-apply.
func dedupeEdits(edits []analysis.Edit) []analysis.Edit {
	seen := map[string]bool{}
	var out []analysis.Edit
	for _, e := range edits {
		k := fmt.Sprintf("%d:%d:%s", e.Start, e.End, e.New)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}

// printDiff shows a minimal line-based preview of the pending change.
func printDiff(name string, src, fixed []byte) {
	fmt.Printf("--- %s\n+++ %s (fixed)\n", name, name)
	oldLines := strings.Split(string(src), "\n")
	newLines := strings.Split(string(fixed), "\n")
	// Trim the common prefix and suffix; what remains is the changed core.
	p := 0
	for p < len(oldLines) && p < len(newLines) && oldLines[p] == newLines[p] {
		p++
	}
	so, sn := len(oldLines), len(newLines)
	for so > p && sn > p && oldLines[so-1] == newLines[sn-1] {
		so--
		sn--
	}
	fmt.Printf("@@ line %d @@\n", p+1)
	for _, l := range oldLines[p:so] {
		fmt.Printf("-%s\n", l)
	}
	for _, l := range newLines[p:sn] {
		fmt.Printf("+%s\n", l)
	}
}
