// Command heterolint machine-checks the repository's determinism, pooling
// and clock-charging invariants with four go/analysis-style checkers:
//
//	detclock    no wall-clock or global math/rand in simulation packages
//	maporder    no map-iteration order leaking into deterministic output
//	poolretain  mp payload-pool buffers respect their ownership contract
//	vcharge     metered float loops charge the virtual clock
//
// It speaks the cmd/go vet-tool protocol, so the canonical invocation is
//
//	go build -o bin/heterolint ./cmd/heterolint
//	go vet -vettool=$PWD/bin/heterolint ./...
//
// For convenience, invoking it directly with package patterns re-execs
// go vet with itself as the vettool:
//
//	heterolint ./...
//
// Deliberate exceptions are annotated in source:
//
//	//heterolint:allow <keyword> <justification>
//
// on (or directly above) the offending line. Annotations without a
// justification, and annotations that no longer suppress anything, are
// themselves findings — the gate stays binary.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"heterohpc/internal/analysis/detclock"
	"heterohpc/internal/analysis/maporder"
	"heterohpc/internal/analysis/poolretain"
	"heterohpc/internal/analysis/unitchecker"
	"heterohpc/internal/analysis/vcharge"
)

func main() {
	// Package patterns (no .cfg, no protocol flag) → re-exec under go vet,
	// which builds dependency export data and drives the protocol.
	if patterns := patternArgs(os.Args[1:]); len(patterns) > 0 {
		os.Exit(runGoVet(patterns))
	}
	unitchecker.Main(
		detclock.Analyzer,
		maporder.Analyzer,
		poolretain.Analyzer,
		vcharge.Analyzer,
	)
}

// patternArgs returns the arguments when they are package patterns rather
// than vet-protocol flags or a unit config file.
func patternArgs(args []string) []string {
	if len(args) == 0 {
		return nil
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
	}
	return args
}

func runGoVet(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterolint:", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "heterolint:", err)
		return 1
	}
	return 0
}
