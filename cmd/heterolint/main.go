// Command heterolint machine-checks the repository's determinism, pooling,
// clock-charging, error-flow, reshape-lifetime and journal-shape invariants
// with seven go/analysis-style checkers:
//
//	detclock      no wall-clock or global math/rand in simulation packages
//	maporder      no map-iteration order leaking into deterministic output
//	poolretain    mp payload-pool buffers respect their ownership contract
//	vcharge       metered float loops charge the virtual clock (transitive
//	              across packages via facts)
//	worldconsume  no use of an mp.World after Shrink/ShrinkNodes/Grow
//	errflow       wrapped sentinels tested with errors.Is and wrapped with %w
//	obskind       obs journal records keep field order, unique kinds and
//	              nil-safe writers
//
// It speaks the cmd/go vet-tool protocol, so the canonical invocation is
//
//	go build -o bin/heterolint ./cmd/heterolint
//	go vet -vettool=$PWD/bin/heterolint ./...
//
// For convenience, invoking it directly with package patterns re-execs
// go vet with itself as the vettool:
//
//	heterolint ./...
//
// Some diagnostics carry machine-applicable fixes (errflow's errors.Is
// rewrite, obskind's field reorder). The fix driver previews them as a
// unified-ish diff and applies them on request:
//
//	heterolint -fix ./...          # dry-run: print pending fixes, exit 1 if any
//	heterolint -fix -write ./...   # apply fixes in place
//
// Deliberate exceptions are annotated in source:
//
//	//heterolint:allow <keyword> <justification>
//
// on (or directly above) the offending line. Annotations without a
// justification, and annotations that no longer suppress anything, are
// themselves findings — the gate stays binary.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"heterohpc/internal/analysis/detclock"
	"heterohpc/internal/analysis/errflow"
	"heterohpc/internal/analysis/maporder"
	"heterohpc/internal/analysis/obskind"
	"heterohpc/internal/analysis/poolretain"
	"heterohpc/internal/analysis/unitchecker"
	"heterohpc/internal/analysis/vcharge"
	"heterohpc/internal/analysis/worldconsume"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-fix" {
		os.Exit(runFix(args[1:]))
	}
	// Package patterns (no .cfg, no protocol flag) → re-exec under go vet,
	// which builds dependency export data and drives the protocol.
	if patterns := patternArgs(args); len(patterns) > 0 {
		os.Exit(runGoVet(patterns))
	}
	unitchecker.Main(
		detclock.Analyzer,
		maporder.Analyzer,
		poolretain.Analyzer,
		vcharge.Analyzer,
		worldconsume.Analyzer,
		errflow.Analyzer,
		obskind.Analyzer,
	)
}

// patternArgs returns the arguments when they are package patterns rather
// than vet-protocol flags or a unit config file.
func patternArgs(args []string) []string {
	if len(args) == 0 {
		return nil
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
	}
	return args
}

func runGoVet(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterolint:", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "heterolint:", err)
		return 1
	}
	return 0
}
