package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heterohpc/internal/bench"
)

func tinyOpts() bench.Options {
	return bench.Options{
		PerRankN: 2, Steps: 1, MaxRanks: 8, Seed: 1,
		Platforms: []string{"puma", "ec2"},
	}
}

func TestRunProvision(t *testing.T) {
	if err := runProvision(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunWeakWritesCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "weak.csv")
	if err := runWeak(io.Discard, io.Discard, "rd", tinyOpts(), csv); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "app,platform,ranks") {
		t.Fatalf("csv header wrong: %q", string(data)[:40])
	}
}

func TestRunPlacementWritesCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "placement.csv")
	if err := runPlacement(io.Discard, io.Discard, tinyOpts(), csv); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Fatal(err)
	}
}

func TestRunCostAndAvailability(t *testing.T) {
	if err := runCost(io.Discard, "rd", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if err := runCost(io.Discard, "bogus", tinyOpts()); err == nil {
		t.Fatal("bogus app accepted")
	}
	if err := runAvailability(io.Discard, tinyOpts(), 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunStrong(t *testing.T) {
	o := tinyOpts()
	o.Platforms = []string{"ec2"}
	if err := runStrong(io.Discard, "rd", 4, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblate(t *testing.T) {
	o := tinyOpts()
	if err := runAblate(io.Discard, "partition", o, 8); err != nil {
		t.Fatal(err)
	}
	if err := runAblate(io.Discard, "bogus", o, 8); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestValidateFaults(t *testing.T) {
	ok := faultsConfig{App: "rd", Platform: "puma", Policy: bench.PolicyRestart,
		Ranks: 8, Seed: 2012, Crashes: 1}
	cases := []struct {
		name    string
		mutate  func(*faultsConfig)
		wantErr string // substring; "" means valid
	}{
		{"defaults are valid", func(c *faultsConfig) {}, ""},
		{"shrink policy is valid", func(c *faultsConfig) { c.Policy = bench.PolicyShrink }, ""},
		{"migrate policy is valid", func(c *faultsConfig) { c.Policy = bench.PolicyMigrate }, ""},
		{"compare policy is valid", func(c *faultsConfig) { c.Policy = policyCompare }, ""},
		{"zero fault counts are valid", func(c *faultsConfig) { c.Crashes = 0 }, ""},
		{"negative seed", func(c *faultsConfig) { c.Seed = -1 }, "seed"},
		{"very negative seed", func(c *faultsConfig) { c.Seed = -1 << 40 }, "seed"},
		{"zero ranks", func(c *faultsConfig) { c.Ranks = 0 }, "rank"},
		{"negative ranks per node", func(c *faultsConfig) { c.RanksPerNode = -2 }, "-rpn"},
		{"negative crashes", func(c *faultsConfig) { c.Crashes = -1 }, "crashes"},
		{"negative preemptions", func(c *faultsConfig) { c.Preemptions = -3 }, "preempts"},
		{"negative degradations", func(c *faultsConfig) { c.Degradations = -1 }, "degrades"},
		{"unknown app", func(c *faultsConfig) { c.App = "lbm" }, `app "lbm"`},
		{"unknown policy", func(c *faultsConfig) { c.Policy = "abandon-ship" }, `policy "abandon-ship"`},
		{"misspelled policy", func(c *faultsConfig) { c.Policy = "shrink" }, bench.PolicyShrink},
		{"misspelled migrate", func(c *faultsConfig) { c.Policy = "migrate-continue" }, bench.PolicyMigrate},
		{"storm wave is valid", func(c *faultsConfig) { c.StormWave = 3 }, ""},
		{"storm with cascades and bursts is valid",
			func(c *faultsConfig) { c.StormWave = 2; c.StormCascades = 1; c.StormBursts = 1 }, ""},
		{"negative storm", func(c *faultsConfig) { c.StormWave = -2 }, "-storm -2 is negative"},
		{"storm of one", func(c *faultsConfig) { c.StormWave = 1 }, "lone preemption"},
		{"negative cascades", func(c *faultsConfig) { c.StormWave = 3; c.StormCascades = -1 }, "-cascades -1"},
		{"negative bursts", func(c *faultsConfig) { c.StormWave = 3; c.StormBursts = -2 }, "-bursts -2"},
		{"cascades without a storm", func(c *faultsConfig) { c.StormCascades = 1 }, "add -storm"},
		{"bursts without a storm", func(c *faultsConfig) { c.StormBursts = 2 }, "add -storm"},
		{"regrow under restart", func(c *faultsConfig) { c.Regrow = true }, "-regrow"},
		{"regrow under migrate is valid",
			func(c *faultsConfig) { c.Regrow = true; c.Policy = bench.PolicyMigrate }, ""},
		{"regrow under compare is valid",
			func(c *faultsConfig) { c.Regrow = true; c.Policy = policyCompare }, ""},
		{"capped market is valid",
			func(c *faultsConfig) { c.OnDemandSupply = -1; c.ProvisionRetries = 2 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := ok
			tc.mutate(&c)
			err := validateFaults(c)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error mentioning %q", err, tc.wantErr)
			}
		})
	}
}

func TestRunFaultsCompareWritesDecisionTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "faults_trace.json")
	o := tinyOpts()
	o.Steps = 3
	err := runFaults(io.Discard, io.Discard, faultsConfig{
		App: "rd", Platform: "puma", Policy: policyCompare,
		Ranks: 8, RanksPerNode: 2, Seed: 7, Crashes: 1, TracePath: out,
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"traceEvents", `"ph":"i"`, "shrink"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("decision trace missing %q", want)
		}
	}
	if err := runFaults(io.Discard, io.Discard, faultsConfig{App: "rd", Policy: "bogus", Ranks: 8, Seed: 1}, o); err == nil {
		t.Fatal("invalid config reached the supervisor")
	}
}

// TestRunFaultsStorm drives the acceptance storm through the CLI path: a
// 3-notice wave with one cascade on a dry on-demand market, recovered by
// the arbiter with backoff re-provisioning.
func TestRunFaultsStorm(t *testing.T) {
	o := tinyOpts()
	o.PerRankN, o.Steps = 3, 3
	var out strings.Builder
	err := runFaults(&out, io.Discard, faultsConfig{
		App: "rd", Platform: "ec2", Policy: bench.PolicyMigrate,
		Ranks: 8, RanksPerNode: 2, Seed: 12,
		StormWave: 3, StormCascades: 1, OnDemandSupply: -1,
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"storm arbiter: 2 notice(s) coalesced", "1 cascade re-plan(s)",
		"2 exhausted-market backoff retry(ies)", "finished on 8 ranks",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("storm report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunTrace(t *testing.T) {
	dir := t.TempDir()
	cwd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	o := tinyOpts()
	o.Platforms = []string{"ec2"}
	out := filepath.Join(dir, "trace.json")
	if err := runTrace(io.Discard, io.Discard, "rd", o, 8, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "traceEvents") {
		t.Fatal("trace file malformed")
	}
	if err := runTrace(io.Discard, io.Discard, "bogus", o, 8, ""); err == nil {
		t.Fatal("unknown app accepted")
	}
}
