package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heterohpc/internal/bench"
)

func tinyOpts() bench.Options {
	return bench.Options{
		PerRankN: 2, Steps: 1, MaxRanks: 8, Seed: 1,
		Platforms: []string{"puma", "ec2"},
	}
}

func TestRunProvision(t *testing.T) {
	if err := runProvision(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWeakWritesCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "weak.csv")
	if err := runWeak("rd", tinyOpts(), csv); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "app,platform,ranks") {
		t.Fatalf("csv header wrong: %q", string(data)[:40])
	}
}

func TestRunPlacementWritesCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "placement.csv")
	if err := runPlacement(tinyOpts(), csv); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Fatal(err)
	}
}

func TestRunCostAndAvailability(t *testing.T) {
	if err := runCost("rd", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if err := runCost("bogus", tinyOpts()); err == nil {
		t.Fatal("bogus app accepted")
	}
	if err := runAvailability(tinyOpts(), 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunStrong(t *testing.T) {
	o := tinyOpts()
	o.Platforms = []string{"ec2"}
	if err := runStrong("rd", 4, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblate(t *testing.T) {
	o := tinyOpts()
	if err := runAblate("partition", o, 8); err != nil {
		t.Fatal(err)
	}
	if err := runAblate("bogus", o, 8); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestRunTrace(t *testing.T) {
	dir := t.TempDir()
	cwd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	o := tinyOpts()
	o.Platforms = []string{"ec2"}
	out := filepath.Join(dir, "trace.json")
	if err := runTrace("rd", o, 8, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "traceEvents") {
		t.Fatal("trace file malformed")
	}
	if err := runTrace("bogus", o, 8, ""); err == nil {
		t.Fatal("unknown app accepted")
	}
}
