package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heterohpc/internal/obs"
)

// driveObserved runs one CLI invocation writing journal+metrics files and
// returns their contents.
func driveObserved(t *testing.T, dir, tag string, args []string) (journal, metrics []byte) {
	t.Helper()
	jp := filepath.Join(dir, tag+".jsonl")
	mp := filepath.Join(dir, tag+".json")
	full := append(append([]string{}, args...), "-journal", jp, "-metrics", mp)
	var stdout, stderr bytes.Buffer
	if code := run(full, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) exited %d: %s", full, code, stderr.String())
	}
	j, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	m, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	return j, m
}

// assertReencodes is the round-trip property backing journal-diff: every
// journal the CLI writes must parse with the strict canonical reader and
// re-encode to the identical bytes, so a successful parse certifies the
// file as diffable line by line.
func assertReencodes(t *testing.T, journal []byte) {
	t.Helper()
	evs, err := obs.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatalf("CLI journal rejected by canonical reader: %v", err)
	}
	var re []byte
	for i := range evs {
		re = obs.AppendEventLine(re, &evs[i])
	}
	if !bytes.Equal(journal, re) {
		t.Fatalf("parse→re-encode is not byte-identical:\n--- written ---\n%s\n--- re-encoded ---\n%s", journal, re)
	}
}

// TestJournalBitDeterminism is the acceptance check of the observability
// layer: two runs of the identical seeded command must produce byte-identical
// journal and metrics files, even though ranks record concurrently.
func TestJournalBitDeterminism(t *testing.T) {
	dir := t.TempDir()
	args := []string{"rd-weak", "-n", "2", "-steps", "2", "-max", "8",
		"-platforms", "puma,ec2", "-seed", "7"}
	j1, m1 := driveObserved(t, dir, "a", args)
	j2, m2 := driveObserved(t, dir, "b", args)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("journals differ across identical seeded runs:\n--- a ---\n%s\n--- b ---\n%s", j1, j2)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatalf("metrics differ across identical seeded runs:\n--- a ---\n%s\n--- b ---\n%s", m1, m2)
	}
	if len(j1) == 0 {
		t.Fatal("journal is empty")
	}
	assertReencodes(t, j1)

	// Every journal line is standalone JSON, and the event kinds of the core
	// instrumentation all show up in a weak-scaling sweep.
	kinds := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(j1), "\n"), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("journal line is not valid JSON: %q: %v", line, err)
		}
		k, _ := ev["kind"].(string)
		kinds[k] = true
	}
	for _, want := range []string{"phase", "solve", "step", "halo", "pool"} {
		if !kinds[want] {
			t.Errorf("journal has no %q events (kinds seen: %v)", want, kinds)
		}
	}

	var reg map[string]any
	if err := json.Unmarshal(m1, &reg); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	for _, want := range []string{"counters", "gauges", "histograms"} {
		if _, ok := reg[want]; !ok {
			t.Errorf("metrics file missing %q section", want)
		}
	}
}

// TestFaultsJournalDeterminism repeats the determinism check on the
// supervised-recovery path, which adds spot-market ticks, preemption
// notices, supervisor decisions and checkpoint restores to the journal.
func TestFaultsJournalDeterminism(t *testing.T) {
	dir := t.TempDir()
	args := []string{"faults", "-app", "rd", "-platform", "ec2", "-ranks", "8",
		"-n", "2", "-steps", "3", "-crashes", "1", "-preempts", "1", "-seed", "11"}
	j1, m1 := driveObserved(t, dir, "a", args)
	j2, m2 := driveObserved(t, dir, "b", args)
	if !bytes.Equal(j1, j2) {
		t.Fatal("fault-run journals differ across identical seeded runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("fault-run metrics differ across identical seeded runs")
	}
	for _, want := range []string{`"kind":"spot-tick"`, `"kind":"failure"`,
		`"kind":"ckpt-write"`, `"kind":"ckpt-restore"`} {
		if !strings.Contains(string(j1), want) {
			t.Errorf("fault-run journal missing %s events", want)
		}
	}
	assertReencodes(t, j1)

	// The proactive policy adds world-grow and migrate-decision events; equal
	// seeds must still give byte-identical journals and metrics.
	margs := []string{"faults", "-app", "rd", "-platform", "ec2", "-ranks", "8",
		"-rpn", "2", "-n", "2", "-steps", "3", "-crashes", "0", "-preempts", "1",
		"-seed", "11", "-policy", "migrate"}
	mj1, mm1 := driveObserved(t, dir, "ma", margs)
	mj2, mm2 := driveObserved(t, dir, "mb", margs)
	if !bytes.Equal(mj1, mj2) {
		t.Fatal("migrate-run journals differ across identical seeded runs")
	}
	if !bytes.Equal(mm1, mm2) {
		t.Fatal("migrate-run metrics differ across identical seeded runs")
	}
	for _, want := range []string{`"kind":"migrate-decision"`, `"kind":"world-grow"`} {
		if !strings.Contains(string(mj1), want) {
			t.Errorf("migrate-run journal missing %s events", want)
		}
	}
	assertReencodes(t, mj1)
}
