package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heterohpc/internal/obs"
)

// faultsArgs is the seeded recovery scenario the journal-diff tests diff:
// the fault plan is derived from the seed, so different seeds produce
// journals that diverge at the first fault-handling decision, while a
// fault-free run's journal would not move with the seed at all.
func faultsArgs(seed string) []string {
	return []string{"faults", "-app", "rd", "-platform", "ec2", "-ranks", "8",
		"-n", "2", "-steps", "3", "-crashes", "1", "-preempts", "1", "-seed", seed}
}

// writeFaultsJournal runs the scenario and returns the journal path.
func writeFaultsJournal(t *testing.T, dir, tag, seed string) string {
	t.Helper()
	j, _ := driveObserved(t, dir, tag, faultsArgs(seed))
	p := filepath.Join(dir, tag+".copy.jsonl")
	if err := os.WriteFile(p, j, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// diff invokes `heterobench journal-diff` and returns (exit code, stdout).
func diff(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"journal-diff"}, args...), &stdout, &stderr)
	if stderr.Len() > 0 && code != 2 {
		t.Logf("stderr: %s", stderr.String())
	}
	return code, stdout.String() + stderr.String()
}

// TestJournalDiffEqualSeeds pins exit code 0: two runs of the identical
// seeded scenario are byte-identical, and journal-diff says so.
func TestJournalDiffEqualSeeds(t *testing.T) {
	dir := t.TempDir()
	a := writeFaultsJournal(t, dir, "a", "11")
	b := writeFaultsJournal(t, dir, "b", "11")
	code, out := diff(t, a, b)
	if code != 0 {
		t.Fatalf("equal-seed diff exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "journals identical") {
		t.Fatalf("missing identical verdict:\n%s", out)
	}
}

// TestJournalDiffDifferentSeeds pins exit code 1 and the context contract:
// the report names the first diverging line and annotates each side with
// virtual time, rank, kind, and the last completed step.
func TestJournalDiffDifferentSeeds(t *testing.T) {
	dir := t.TempDir()
	a := writeFaultsJournal(t, dir, "s11", "11")
	b := writeFaultsJournal(t, dir, "s12", "12")
	code, out := diff(t, a, b)
	if code != 1 {
		t.Fatalf("different-seed diff exited %d, want 1:\n%s", code, out)
	}
	for _, want := range []string{
		"first divergence at line",
		"common context:",
		"after-step=",
		`kind="`,
		"rank=",
		"t=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("divergence report missing %q:\n%s", want, out)
		}
	}
	// Both side headers name their file.
	if !strings.Contains(out, filepath.Base(a)) || !strings.Contains(out, filepath.Base(b)) {
		t.Errorf("report does not name both journals:\n%s", out)
	}
}

// TestJournalDiffReplay drives the full triage loop end to end: diff two
// seeded fault runs, then re-run the scenario from the nearest checkpoint
// at or before the divergence and dump solver/world state.
func TestJournalDiffReplay(t *testing.T) {
	dir := t.TempDir()
	a := writeFaultsJournal(t, dir, "s11", "11")
	b := writeFaultsJournal(t, dir, "s12", "12")
	code, out := diff(t, a, b, "-replay", "-app", "rd", "-platform", "ec2",
		"-ranks", "8", "-n", "2", "-steps", "3", "-crashes", "1",
		"-preempts", "1", "-seed", "12")
	if code != 1 {
		t.Fatalf("replay diff exited %d, want 1:\n%s", code, out)
	}
	for _, want := range []string{
		"first divergence at line",
		"checkpoint-anchored replay",
		"rank  steps",
		"state-l2",
		"residual",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}
	// The anchoring note is one of the two legal forms: resumed from a
	// common checkpoint, or replayed from scratch when none precedes the
	// divergence.
	if !strings.Contains(out, "resumed from the checkpoint") &&
		!strings.Contains(out, "replayed from scratch") {
		t.Errorf("replay output missing anchoring note:\n%s", out)
	}
}

// TestJournalDiffSweep smoke-tests the grid report: every point of a small
// platform × ranks sweep is generated at two seeds and diffed; fault-free
// journals are seed-independent, so the grid must read "same" everywhere.
func TestJournalDiffSweep(t *testing.T) {
	code, out := diff(t, "-sweep", "-n", "2", "-steps", "2", "-max", "8",
		"-platforms", "puma,ec2")
	if code != 0 {
		t.Fatalf("sweep exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "journal-diff sweep") {
		t.Fatalf("missing sweep header:\n%s", out)
	}
	for _, plat := range []string{"puma", "ec2"} {
		if !strings.Contains(out, plat) {
			t.Errorf("sweep grid missing platform %q:\n%s", plat, out)
		}
	}
	if !strings.Contains(out, "same") {
		t.Errorf("fault-free sweep should be seed-independent (all same):\n%s", out)
	}
}

// TestJournalDiffUsageErrors pins exit code 2 for operator mistakes, which
// must stay distinct from "journals diverge" (1).
func TestJournalDiffUsageErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeFaultsJournal(t, dir, "a", "11")
	cases := [][]string{
		{},                            // no journals
		{a},                           // only one journal
		{a, filepath.Join(dir, "no")}, // unreadable second journal
		{a, a, "-sweep"},              // files and sweep mixed
	}
	for _, args := range cases {
		if code, out := diff(t, args...); code != 2 {
			t.Errorf("journal-diff %v exited %d, want 2:\n%s", args, code, out)
		}
	}
}

// TestFailingRunStillWritesJournal is the regression test for the
// obs-on-failure fix: a command that errors after partial work must still
// flush its journal and metrics so there is something to triage, while the
// original error keeps driving the exit status.
func TestFailingRunStillWritesJournal(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "fail.jsonl")
	mp := filepath.Join(dir, "fail.json")
	var stdout, stderr bytes.Buffer
	// ec2 succeeds, then the bogus platform errors: the journal must hold
	// the completed ec2 points when the run dies.
	code := run([]string{"rd-weak", "-n", "2", "-steps", "2", "-max", "8",
		"-platforms", "ec2,bogus", "-journal", jp, "-metrics", mp},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("run exited %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "bogus") {
		t.Errorf("stderr does not report the failing platform: %s", stderr.String())
	}
	j, err := os.ReadFile(jp)
	if err != nil {
		t.Fatalf("failing run left no journal: %v", err)
	}
	if len(j) == 0 {
		t.Fatal("failing run wrote an empty journal")
	}
	evs, err := obs.ReadJournal(bytes.NewReader(j))
	if err != nil {
		t.Fatalf("failing run's journal does not parse: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("failing run's journal has no events")
	}
	if _, err := os.Stat(mp); err != nil {
		t.Errorf("failing run left no metrics file: %v", err)
	}
}
