// Command heterobench regenerates the tables and figures of "Experiences
// with Target-Platform Heterogeneity in Clouds, Grids, and On-Premises
// Resources" from the models in this repository.
//
// Usage:
//
//	heterobench capabilities                 # Table I
//	heterobench provision                    # §VI porting plans
//	heterobench rd-weak   [flags]            # Figure 4 (+ raw series)
//	heterobench ns-weak   [flags]            # Figure 5
//	heterobench placement [flags]            # Table II
//	heterobench cost -app rd|ns [flags]      # Figures 6 and 7
//	heterobench availability [-nodes N]      # §VIII availability comparison
//	heterobench faults [-platform P] [flags] # supervised run under injected faults
//	heterobench journal-diff a.jsonl b.jsonl # triage: first diverging journal line (+ -replay)
//	heterobench all [flags]                  # everything above
//
// Common flags: -n (elements per rank per dimension; the paper uses 20,
// default 10 for tractable local runs), -steps, -max (largest process
// count), -platforms (comma list), -seed. Every job-running command also
// accepts -journal <path> and -metrics <path>, which write the run's
// deterministic event journal (JSONL) and metric registry (JSON); equal
// seeds give byte-identical files.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"heterohpc/internal/bench"
	"heterohpc/internal/core"
	"heterohpc/internal/obs"
	"heterohpc/internal/perf"
	"heterohpc/internal/trace"
	"heterohpc/internal/triage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI: parse, dispatch, write observability files. It
// exists apart from main so tests can drive commands end to end against
// in-memory writers.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 10, "elements per rank per dimension (paper: 20)")
	steps := fs.Int("steps", 3, "BDF2 steps per run")
	skip := fs.Int("skip", 1, "initial iterations to discard from averages")
	maxRanks := fs.Int("max", 1000, "largest process count of the series")
	platforms := fs.String("platforms", "puma,ellipse,lagrange,ec2", "comma-separated platforms")
	seed := fs.Int64("seed", 2012, "seed for queue-wait and spot-market models (must be >= 0)")
	app := fs.String("app", "rd", "application for the cost/strong commands (rd or ns)")
	nodes := fs.Int("nodes", 8, "node count for the availability command")
	globalN := fs.Int("global", 30, "global mesh edge for the strong command")
	ranks := fs.Int("ranks", 27, "rank count for the ablate command")
	what := fs.String("what", "precond", "ablation: precond, packing, interconnect or partition")
	csvPath := fs.String("csv", "", "also write the raw series as CSV to this file (rd-weak, ns-weak, placement)")
	platform := fs.String("platform", "ec2", "single platform for the faults command")
	crashes := fs.Int("crashes", 1, "node crashes injected by the faults command")
	preempts := fs.Int("preempts", 1, "spot preemptions injected by the faults command")
	degrades := fs.Int("degrades", 0, "straggler windows injected by the faults command")
	policy := fs.String("policy", bench.PolicyRestart,
		"recovery policy for the faults command: restart, shrink-continue, migrate or compare")
	rpn := fs.Int("rpn", 0, "ranks per node for the faults command (0 = pack by cores; shrink needs >= 2 nodes)")
	storm := fs.Int("storm", 0, "faults command: correlated storm — wave of N simultaneous-notice preemptions (>= 2; replaces -crashes/-preempts/-degrades)")
	cascades := fs.Int("cascades", 0, "faults command: storm cascades — preemptions re-hitting wave slots mid-recovery (needs -storm)")
	bursts := fs.Int("bursts", 0, "faults command: storm straggler bursts — correlated degradation windows (needs -storm)")
	odsupply := fs.Int("odsupply", 0, "faults command: cap the replacement market's on-demand pool (0 = unlimited, negative = none; makes exhaustion reachable)")
	retries := fs.Int("retries", 0, "faults command: autoscaler backoff retries after an exhausted acquisition (0 = default 4, negative = none)")
	regrow := fs.Bool("regrow", false, "faults command: let the migrate autoscaler re-provision width lost to earlier degradations")
	tracePath := fs.String("trace", "", "faults command: also write the recovered timeline with decision markers as a Chrome trace to this file")
	benchOut := fs.String("out", "BENCH.json", "perf command: output path for the benchmark report")
	benchFilter := fs.String("filter", "", "perf command: only run cases whose name contains this substring")
	cpuProfile := fs.String("cpuprofile", "", "perf command: write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "perf command: write a heap profile to this file")
	journalPath := fs.String("journal", "", "write the run's deterministic event journal (JSONL) to this file")
	metricsPath := fs.String("metrics", "", "write the run's metric registry (JSON) to this file")
	window := fs.Int("window", 3, "journal-diff: surrounding lines shown around the divergence")
	replay := fs.Bool("replay", false, "journal-diff: re-run the scenario from the nearest checkpoint before the divergence and dump state (takes the faults scenario flags)")
	sweep := fs.Bool("sweep", false, "journal-diff: first-divergence report across the platform × rank grid, -seed vs -seed2 (no journal files)")
	seed2 := fs.Int64("seed2", 0, "journal-diff -sweep: second seed (default: -seed + 1)")
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	if *seed < 0 {
		fmt.Fprintf(stderr, "heterobench: -seed %d is negative; the availability and spot-market models need a seed >= 0\n\n", *seed)
		usage(stderr)
		return 2
	}
	var obsRun *obs.Run
	if *journalPath != "" || *metricsPath != "" {
		obsRun = obs.NewRun()
	}
	opts := bench.Options{
		PerRankN:  *n,
		Steps:     *steps,
		SkipSteps: *skip,
		MaxRanks:  *maxRanks,
		Seed:      uint64(*seed),
		Platforms: strings.Split(*platforms, ","),
		Obs:       obsRun,
	}

	var err error
	switch cmd {
	case "capabilities":
		fmt.Fprint(stdout, bench.FormatCapabilities())
	case "provision":
		err = runProvision(stdout)
	case "rd-weak":
		err = runWeak(stdout, stderr, "rd", opts, *csvPath)
	case "ns-weak":
		err = runWeak(stdout, stderr, "ns", opts, *csvPath)
	case "placement":
		err = runPlacement(stdout, stderr, opts, *csvPath)
	case "cost":
		err = runCost(stdout, *app, opts)
	case "availability":
		err = runAvailability(stdout, opts, *nodes)
	case "strong":
		err = runStrong(stdout, *app, *globalN, opts)
	case "bidding":
		var out string
		out, err = bench.FormatBidSweep(opts, *nodes, 50)
		fmt.Fprint(stdout, out)
	case "ablate":
		err = runAblate(stdout, *what, opts, *ranks)
	case "trace":
		err = runTrace(stdout, stderr, *app, opts, *ranks, *csvPath)
	case "faults":
		err = runFaults(stdout, stderr, faultsConfig{
			App: *app, Platform: *platform, Policy: *policy,
			Ranks: *ranks, RanksPerNode: *rpn, Seed: *seed,
			Crashes: *crashes, Preemptions: *preempts, Degradations: *degrades,
			StormWave: *storm, StormCascades: *cascades, StormBursts: *bursts,
			OnDemandSupply: *odsupply, ProvisionRetries: *retries, Regrow: *regrow,
			TracePath: *tracePath,
		}, opts)
	case "journal-diff":
		// fs.Parse stopped at the first positional (the old journal path),
		// so trailing flags like `journal-diff a.jsonl b.jsonl -replay` are
		// still sitting in fs.Args(): consume the positionals and parse the
		// remainder through the same FlagSet.
		rest := fs.Args()
		var oldPath, newPath string
		if !*sweep {
			if len(rest) < 2 || strings.HasPrefix(rest[0], "-") || strings.HasPrefix(rest[1], "-") {
				fmt.Fprintln(stderr, "usage: heterobench journal-diff old.jsonl new.jsonl [-window N] [-replay <scenario flags>]")
				fmt.Fprintln(stderr, "       heterobench journal-diff -sweep [-app rd|ns] [-platforms list] [-max N] [-seed N] [-seed2 M]")
				return 2
			}
			oldPath, newPath = rest[0], rest[1]
			rest = rest[2:]
		}
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if *sweep && oldPath != "" {
			fmt.Fprintln(stderr, "heterobench: journal-diff -sweep generates its own journals; drop the file arguments")
			return 2
		}
		// The re-parse may have updated any flag: rebuild the derived
		// option bundles from the final values.
		s2 := uint64(*seed2)
		if *seed2 < 0 {
			fmt.Fprintf(stderr, "heterobench: -seed2 %d is negative\n", *seed2)
			return 2
		}
		if s2 == 0 {
			s2 = uint64(*seed) + 1
		}
		return runJournalDiff(stdout, stderr, jdConfig{
			oldPath: oldPath, newPath: newPath,
			window: *window, replay: *replay, sweep: *sweep,
			app: *app, seed2: s2,
			opts: bench.Options{
				PerRankN: *n, Steps: *steps, SkipSteps: *skip,
				MaxRanks: *maxRanks, Seed: uint64(*seed),
				Platforms: strings.Split(*platforms, ","),
			},
			scenario: bench.ReplayOptions{
				App: *app, Platform: *platform, Ranks: *ranks, RanksPerNode: *rpn,
				PerRankN: *n, Steps: *steps, SkipSteps: *skip, Seed: uint64(*seed),
				Crashes: *crashes, Preemptions: *preempts, Degradations: *degrades,
				Policy: *policy,
			},
		})
	case "perf":
		err = runPerf(stderr, *benchOut, *benchFilter, *cpuProfile, *memProfile)
	case "all":
		err = runAll(stdout, stderr, opts, *nodes)
	case "help", "-h", "--help":
		usage(stderr)
	default:
		fmt.Fprintf(stderr, "heterobench: unknown command %q\n\n", cmd)
		usage(stderr)
		return 2
	}
	// Observability is written best-effort even when the command failed:
	// the journal is most valuable exactly then (journal-diff triage of a
	// failing run). The command's own error stays the exit status; a write
	// failure on top of it is only reported.
	if werr := writeObs(stderr, obsRun, *journalPath, *metricsPath); werr != nil {
		if err == nil {
			err = werr
		} else {
			fmt.Fprintf(stderr, "heterobench: writing observability: %v\n", werr)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "heterobench: %v\n", err)
		return 1
	}
	return 0
}

// jdConfig is the journal-diff command's bundle after flag re-parsing.
type jdConfig struct {
	oldPath, newPath string
	window           int
	replay           bool
	sweep            bool
	app              string
	seed2            uint64
	opts             bench.Options       // sweep grid configuration
	scenario         bench.ReplayOptions // -replay scenario (the faults flags)
}

// runJournalDiff is the triage front-end. Exit contract: 0 when the
// journals are byte-identical (or the sweep completed), 1 when a
// divergence was found and reported, 2 on usage, I/O or parse errors.
func runJournalDiff(stdout, stderr io.Writer, c jdConfig) int {
	if c.sweep {
		return runJournalDiffSweep(stdout, stderr, c)
	}
	of, err := os.Open(c.oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "heterobench: %v\n", err)
		return 2
	}
	defer of.Close()
	nf, err := os.Open(c.newPath)
	if err != nil {
		fmt.Fprintf(stderr, "heterobench: %v\n", err)
		return 2
	}
	defer nf.Close()
	d, lines, err := triage.Diff(c.oldPath, of, c.newPath, nf, c.window)
	if err != nil {
		fmt.Fprintf(stderr, "heterobench: %v\n", err)
		return 2
	}
	if d == nil {
		fmt.Fprintf(stdout, "journals identical (%d lines)\n", lines)
		return 0
	}
	fmt.Fprint(stdout, triage.FormatDivergence(d))
	if c.replay {
		// Anchor the replay off the side that still carries a parseable
		// event (prefer the new journal): its rank's last completed step
		// +1 is the step the divergence happened in.
		side := &d.New
		if side.Line == nil || !side.Line.Parsed {
			side = &d.Old
		}
		if side.Line == nil || !side.Line.Parsed {
			fmt.Fprintln(stderr, "heterobench: no parseable diverging line to anchor the replay on")
			return 2
		}
		c.scenario.DivStep = side.Step + 1
		dump, err := bench.ReplayFromCheckpoint(c.scenario)
		if err != nil {
			fmt.Fprintf(stderr, "heterobench: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, bench.FormatReplayDump(dump))
	}
	return 1
}

// runJournalDiffSweep diffs -seed against -seed2 journals at every
// (platform, ranks) point of the weak-scaling grid and prints the
// first-divergence summary table. The sweep itself always exits 0 (it is
// a report, not an assertion); points that fail to run show as ERR cells.
func runJournalDiffSweep(stdout, stderr io.Writer, c jdConfig) int {
	o2 := c.opts
	o2.Seed = c.seed2
	nameA := fmt.Sprintf("seed %d", c.opts.Seed)
	nameB := fmt.Sprintf("seed %d", c.seed2)
	var results []triage.SweepResult
	for _, p := range c.opts.Platforms {
		for _, ranks := range bench.WeakSeries {
			if ranks > c.opts.MaxRanks {
				break
			}
			pt := triage.SweepPoint{Platform: p, Ranks: ranks}
			ja, err := bench.PointJournal(c.app, p, ranks, c.opts)
			if err != nil {
				results = append(results, triage.SweepResult{Point: pt, Err: err})
				continue
			}
			jb, err := bench.PointJournal(c.app, p, ranks, o2)
			if err != nil {
				results = append(results, triage.SweepResult{Point: pt, Err: err})
				continue
			}
			d, lines, err := triage.Diff(nameA, bytes.NewReader(ja), nameB, bytes.NewReader(jb), c.window)
			results = append(results, triage.SweepResult{Point: pt, Lines: lines, Div: d, Err: err})
		}
	}
	fmt.Fprint(stdout, triage.FormatSweep(results))
	return 0
}

// writeObs renders the collected journal and metrics once the command has
// finished (and only then: the merge order is settled when no more workers
// record).
func writeObs(stderr io.Writer, run *obs.Run, journalPath, metricsPath string) error {
	write := func(path string, render func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", path)
		return nil
	}
	if journalPath != "" {
		if err := write(journalPath, run.WriteJournal); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		if err := write(metricsPath, run.WriteMetrics); err != nil {
			return err
		}
	}
	return nil
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, `heterobench — regenerate the paper's evaluation

commands:
  capabilities            Table I: platform capability matrix
  provision               §VI: per-platform porting plans and effort
  rd-weak                 Figure 4: RD weak scaling across platforms
  ns-weak                 Figure 5: Navier-Stokes weak scaling
  placement               Table II: EC2 placement groups and spot mix
  cost -app rd|ns         Figures 6/7: per-iteration cost
  availability [-nodes N] §VIII: queue-wait comparison
  strong [-global N]      extension: strong scaling on a fixed global mesh
  ablate -what X          ablations: precond, packing, interconnect, partition
  bidding [-nodes N]      extension: spot bid level vs. fleet cost
  trace -ranks N          write a Chrome/Perfetto trace of one job's virtual timeline
  faults [-platform P]    robustness: supervised run under injected crashes/preemptions
                          -policy restart|shrink-continue|migrate|compare, -rpn N, -trace out.json
                          storms: -storm N -cascades N -bursts N (correlated wave plan)
                          autoscaler: -odsupply N -retries N -regrow (capped market, backoff re-grow)
  journal-diff a b        triage: report the first diverging line of two -journal files
                          (exit 0 identical, 1 divergence, 2 errors); -window N context
                          -replay: re-run the scenario (faults flags) from the nearest
                          checkpoint before the divergence and dump solver/world state
                          -sweep: first-divergence grid across -platforms × ranks,
                          -seed vs -seed2 (generates its own journals)
  perf [-out BENCH.json]  host-performance harness: tracked ns/op, B/op, allocs/op
                          -filter substr, -cpuprofile out.pb.gz, -memprofile out.pb.gz
  all                     run everything

flags: -n 10 -steps 3 -skip 1 -max 1000 -platforms puma,ellipse,lagrange,ec2 -seed 2012
       -journal run.jsonl -metrics metrics.json (deterministic run observability)`)
}

func runPerf(stderr io.Writer, outPath, filter, cpuProfile, memProfile string) error {
	return perf.Profile(cpuProfile, memProfile, func() error {
		rep := perf.Run(filter, stderr)
		// Carry the reference numbers forward from the previous report and
		// show each case against them; a missing file just means there is no
		// baseline yet.
		if old, err := perf.ReadJSON(outPath); err == nil {
			rep.Baseline = old.Baseline
		}
		fmt.Fprint(stderr, perf.FormatComparison(rep))
		if err := perf.WriteJSON(rep, outPath); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", outPath)
		return nil
	})
}

func runWeak(stdout, stderr io.Writer, app string, opts bench.Options, csvPath string) error {
	series, err := bench.RunWeakAll(app, opts)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, bench.FormatWeak(series))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, bench.FormatCost(series))
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(bench.CSVWeak(series)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", csvPath)
	}
	return nil
}

func runPlacement(stdout, stderr io.Writer, opts bench.Options, csvPath string) error {
	res, err := bench.RunPlacement(opts)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, bench.FormatPlacement(res))
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(bench.CSVPlacement(res)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", csvPath)
	}
	return nil
}

func runCost(stdout io.Writer, app string, opts bench.Options) error {
	series, err := bench.RunWeakAll(app, opts)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, bench.FormatCost(series))
	return nil
}

func runProvision(stdout io.Writer) error {
	out, err := bench.FormatProvisioning()
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, out)
	return nil
}

func runStrong(stdout io.Writer, app string, globalN int, opts bench.Options) error {
	var series []*bench.StrongSeries
	for _, p := range opts.Platforms {
		s, err := bench.RunStrong(app, p, globalN, opts)
		if err != nil {
			return err
		}
		series = append(series, s)
	}
	fmt.Fprint(stdout, bench.FormatStrong(series))
	return nil
}

func runAblate(stdout io.Writer, what string, opts bench.Options, ranks int) error {
	var out string
	var err error
	switch what {
	case "precond":
		out, err = bench.FormatPrecondAblation("ec2", ranks, opts)
	case "packing":
		out, err = bench.FormatPackingAblation("ec2", ranks, opts)
	case "interconnect":
		out, err = bench.FormatInterconnectAblation("puma", ranks, opts)
	case "partition":
		out, err = bench.FormatPartitionAblation(12, ranks)
	default:
		return fmt.Errorf("unknown ablation %q (want precond, packing, interconnect or partition)", what)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, out)
	return nil
}

func runAvailability(stdout io.Writer, opts bench.Options, nodes int) error {
	out, err := bench.FormatAvailability(opts, nodes)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, out)
	return nil
}

// runTrace executes one job per configured platform and writes Chrome-trace
// timelines ("<platform>_<app>_trace.json", or the -csv path when exactly
// one platform is configured).
func runTrace(stdout, stderr io.Writer, app string, opts bench.Options, ranks int, outPath string) error {
	for _, platform := range opts.Platforms {
		tg, err := core.NewTarget(platform, opts.Seed)
		if err != nil {
			return err
		}
		var a core.App
		switch app {
		case "rd":
			a, err = core.WeakRD(ranks, opts.PerRankN, opts.Steps)
		case "ns":
			a, err = core.WeakNS(ranks, opts.PerRankN, opts.Steps)
		default:
			return fmt.Errorf("unknown app %q", app)
		}
		if err != nil {
			return err
		}
		rep, err := tg.Run(core.JobSpec{Ranks: ranks, App: a, Obs: opts.Obs})
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v (skipped)\n", platform, err)
			continue
		}
		path := fmt.Sprintf("%s_%s_trace.json", platform, app)
		if outPath != "" && len(opts.Platforms) == 1 {
			path = outPath
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, app+" on "+platform, rep.PerRankSteps); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d ranks × %d steps; open in chrome://tracing or Perfetto)\n",
			path, rep.Ranks, rep.Iter.Steps)
	}
	return nil
}

// faultsConfig is the faults command's flag bundle, validated before any
// model runs so a typo fails in milliseconds with a usable message.
type faultsConfig struct {
	App, Platform, Policy                 string
	Ranks, RanksPerNode                   int
	Seed                                  int64
	Crashes, Preemptions, Degradations    int
	StormWave, StormCascades, StormBursts int
	OnDemandSupply, ProvisionRetries      int
	Regrow                                bool
	TracePath                             string
}

// policyCompare runs all three recovery policies on the identical plan; it
// is a CLI-only alias, not a bench policy.
const policyCompare = "compare"

// validateFaults rejects impossible fault-command configurations: negative
// seeds or event counts, non-positive rank counts, unknown applications and
// unknown policy names.
func validateFaults(c faultsConfig) error {
	if c.Seed < 0 {
		return fmt.Errorf("-seed %d is negative; the fault plan needs a seed >= 0", c.Seed)
	}
	if c.Ranks < 1 {
		return fmt.Errorf("-ranks %d: a supervised run needs at least one rank", c.Ranks)
	}
	if c.RanksPerNode < 0 {
		return fmt.Errorf("-rpn %d is negative (use 0 to pack by cores)", c.RanksPerNode)
	}
	if c.Crashes < 0 || c.Preemptions < 0 || c.Degradations < 0 {
		return fmt.Errorf("fault counts must be >= 0, got -crashes %d -preempts %d -degrades %d",
			c.Crashes, c.Preemptions, c.Degradations)
	}
	if c.StormWave < 0 {
		return fmt.Errorf("-storm %d is negative (a storm wave needs >= 2 correlated notices)", c.StormWave)
	}
	if c.StormWave == 1 {
		return fmt.Errorf("-storm 1 is a lone preemption, not a storm; use -preempts 1 instead")
	}
	if c.StormCascades < 0 || c.StormBursts < 0 {
		return fmt.Errorf("storm event counts must be >= 0, got -cascades %d -bursts %d",
			c.StormCascades, c.StormBursts)
	}
	if c.StormWave == 0 && (c.StormCascades > 0 || c.StormBursts > 0) {
		return fmt.Errorf("-cascades/-bursts correlate events with a storm wave; add -storm N (>= 2)")
	}
	if c.Regrow && c.Policy != bench.PolicyMigrate && c.Policy != policyCompare {
		return fmt.Errorf("-regrow is the migrate autoscaler's knob; use -policy %s or %s",
			bench.PolicyMigrate, policyCompare)
	}
	switch c.App {
	case "rd", "ns":
	default:
		return fmt.Errorf("unknown app %q (want rd or ns)", c.App)
	}
	switch c.Policy {
	case bench.PolicyRestart, bench.PolicyShrink, bench.PolicyMigrate, policyCompare:
	default:
		return fmt.Errorf("unknown policy %q (want %s, %s, %s or %s)",
			c.Policy, bench.PolicyRestart, bench.PolicyShrink, bench.PolicyMigrate, policyCompare)
	}
	return nil
}

// runFaults executes one weak-scaling job under a seeded fault plan with
// the recovery supervisor and prints the recovery report: the decision log
// plus recovered-vs-clean numbers with the overhead itemised. With -policy
// compare it runs the same plan under all three policies and prints them
// side by side; with -trace it also writes the recovered run's Chrome trace with
// the supervisor's decisions overlaid as instant markers.
func runFaults(stdout, stderr io.Writer, c faultsConfig, opts bench.Options) error {
	if err := validateFaults(c); err != nil {
		return err
	}
	fo := bench.FaultOptions{
		App: c.App, Platform: c.Platform, Ranks: c.Ranks, RanksPerNode: c.RanksPerNode,
		PerRankN: opts.PerRankN, Steps: opts.Steps, SkipSteps: opts.SkipSteps,
		Seed:    uint64(c.Seed),
		Crashes: c.Crashes, Preemptions: c.Preemptions, Degradations: c.Degradations,
		StormWave: c.StormWave, StormCascades: c.StormCascades, StormBursts: c.StormBursts,
		OnDemandSupply: c.OnDemandSupply, ProvisionRetries: c.ProvisionRetries, Regrow: c.Regrow,
		Obs: opts.Obs,
	}
	var traced *bench.RecoveryReport
	switch c.Policy {
	case policyCompare:
		cmp, err := bench.CompareRecovery(fo)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, bench.FormatRecoveryComparison(cmp))
		traced = cmp.Shrink
	default:
		fo.Policy = c.Policy
		rep, err := bench.RunSupervised(fo)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, bench.FormatRecovery(rep))
		traced = rep
	}
	if c.TracePath == "" {
		return nil
	}
	if traced == nil || traced.Final == nil {
		return fmt.Errorf("no finished run to trace")
	}
	f, err := os.Create(c.TracePath)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%s on %s (%s)", c.App, c.Platform, traced.Policy)
	if err := trace.WriteChromeWithDecisions(f, name, traced.Final.PerRankSteps, traced.Decisions); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s (decision markers overlay the rank timelines)\n", c.TracePath)
	return nil
}

func runAll(stdout, stderr io.Writer, opts bench.Options, nodes int) error {
	fmt.Fprintln(stdout, "==== Table I: capabilities ====")
	fmt.Fprint(stdout, bench.FormatCapabilities())
	fmt.Fprintln(stdout, "\n==== §VI: provisioning ====")
	if err := runProvision(stdout); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "\n==== Figure 4: RD weak scaling (+ Figure 6 costs) ====")
	if err := runWeak(stdout, stderr, "rd", opts, ""); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "\n==== Figure 5: NS weak scaling (+ Figure 7 costs) ====")
	if err := runWeak(stdout, stderr, "ns", opts, ""); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "\n==== Table II: placement groups ====")
	if err := runPlacement(stdout, stderr, opts, ""); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "\n==== §VIII: availability ====")
	return runAvailability(stdout, opts, nodes)
}
