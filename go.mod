module heterohpc

go 1.22
