package heterohpc

// End-to-end integration tests asserting the paper's headline findings on
// reduced workloads. These are the "shape" checks of DESIGN.md §4: who
// wins, in which direction the trade-offs point, and where the platforms
// fail — not absolute numbers.

import (
	"errors"
	"math"
	"strings"
	"testing"

	"heterohpc/internal/bench"
	"heterohpc/internal/core"
	"heterohpc/internal/sched"
	"heterohpc/internal/spot"
)

func testOpts() bench.Options {
	return bench.Options{PerRankN: 4, Steps: 2, SkipSteps: 1, MaxRanks: 64, Seed: 2012}
}

// §VII-A: each platform's weak-scaling series ends exactly where the
// paper's did.
func TestSeriesTruncationMatchesPaper(t *testing.T) {
	o := testOpts()
	o.MaxRanks = 1000
	o.PerRankN = 2
	o.Steps = 1
	wantLast := map[string]int{"puma": 125, "ellipse": 512, "lagrange": 343, "ec2": 1000}
	wantErr := map[string]error{
		"puma":     sched.ErrTooLarge,
		"ellipse":  sched.ErrLaunchLimit,
		"lagrange": sched.ErrIBVolumeCap,
	}
	for platform, lastOK := range wantLast {
		s, err := bench.RunWeak("rd", platform, o)
		if err != nil {
			t.Fatalf("%s: %v", platform, err)
		}
		var lastGood int
		for _, pt := range s.Points {
			if pt.Err == nil {
				lastGood = pt.Ranks
			} else if want := wantErr[platform]; want != nil && !errors.Is(pt.Err, want) {
				t.Errorf("%s failed with %v, want %v", platform, pt.Err, want)
			}
		}
		if lastGood != lastOK {
			t.Errorf("%s ran up to %d ranks, paper reports %d", platform, lastGood, lastOK)
		}
	}
}

// §VII-A / Figure 4: at scale, the InfiniBand machine keeps the flattest
// weak-scaling curve and the 1GbE machines the steepest.
func TestInterconnectOrderingAtScale(t *testing.T) {
	o := testOpts()
	growth := map[string]float64{}
	for _, p := range []string{"puma", "lagrange", "ec2"} {
		s, err := bench.RunWeak("rd", p, o)
		if err != nil {
			t.Fatal(err)
		}
		first := s.Points[0].Report.Iter.MaxTotal
		last := s.Points[len(s.Points)-1]
		if last.Err != nil {
			t.Fatalf("%s truncated unexpectedly: %v", p, last.Err)
		}
		growth[p] = last.Report.Iter.MaxTotal / first
	}
	if growth["lagrange"] >= growth["puma"] {
		t.Errorf("lagrange growth %.2f should undercut puma %.2f",
			growth["lagrange"], growth["puma"])
	}
	if growth["lagrange"] >= growth["ec2"] {
		t.Errorf("lagrange growth %.2f should undercut ec2 %.2f",
			growth["lagrange"], growth["ec2"])
	}
}

// §VII-D / Figure 7: for the compute-heavy NS application at small scale,
// EC2 beats the on-premise Opteron clusters on time ("EC2 costs less than
// our on-premise cluster and is faster as well" — cost per core-hour
// nominal rates differ, but the speed ordering must hold).
func TestEC2FasterThanOpteronsOnNS(t *testing.T) {
	const ranks = 8
	times := map[string]float64{}
	for _, name := range []string{"puma", "ellipse", "ec2"} {
		tg, err := core.NewTarget(name, 5)
		if err != nil {
			t.Fatal(err)
		}
		app, err := core.WeakNS(ranks, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := tg.Run(core.JobSpec{Ranks: ranks, App: app, SkipSteps: 1})
		if err != nil {
			t.Fatal(err)
		}
		times[name] = rep.Iter.MaxTotal
	}
	if times["ec2"] >= times["puma"] || times["ec2"] >= times["ellipse"] {
		t.Errorf("ec2 (%v) should be faster than puma (%v) and ellipse (%v) on NS at small scale",
			times["ec2"], times["puma"], times["ellipse"])
	}
}

// Table II: the placement group buys no performance but costs ≈4.4× spot.
func TestPlacementGroupFinding(t *testing.T) {
	res, err := bench.RunPlacement(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Err != nil {
			t.Fatalf("ranks %d: %v", row.Ranks, row.Err)
		}
		speedup := row.MixTime / row.FullTime
		if speedup < 0.85 || speedup > 1.3 {
			t.Errorf("ranks %d: placement-group time ratio %v, want ≈1", row.Ranks, speedup)
		}
		costRatio := row.FullCost / row.MixEstCost * (row.MixTime / row.FullTime)
		if math.Abs(costRatio-2.40/0.54) > 0.01 {
			t.Errorf("ranks %d: price ratio %v, want %v", row.Ranks, costRatio, 2.40/0.54)
		}
	}
}

// §VIII: the spot market never yields the full 63-host fleet, forcing the
// mixed assembly.
func TestSpotNeverFills63(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		m := spot.NewMarket(seed, 2.40)
		a, err := m.AcquireMix(63, 2.40, 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		if a.SpotCount() >= 63 {
			t.Fatalf("seed %d assembled a full spot fleet", seed)
		}
		if len(a.Nodes) != 63 {
			t.Fatalf("seed %d: fleet incomplete", seed)
		}
	}
}

// The public API surface works as documented in the README.
func TestPublicAPI(t *testing.T) {
	if got := Platforms(); len(got) < 4 {
		t.Fatalf("catalog has %d platforms", len(got))
	}
	p, err := GetPlatform("lagrange")
	if err != nil || p.CoresPerNode() != 12 {
		t.Fatalf("GetPlatform: %v %+v", err, p)
	}
	tgt, err := NewTarget("ec2", 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := WeakRD(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tgt.Run(JobSpec{Ranks: 8, App: app, SkipSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["max_err"] > 1e-4 {
		t.Fatalf("wrong answer: %v", rep.Metrics["max_err"])
	}
	if table := CapabilityTable(); !strings.Contains(table, "IB 4X DDR") {
		t.Fatal("capability table incomplete")
	}
	series, err := RunWeakScaling("rd", "lagrange", BenchOptions{
		PerRankN: 3, Steps: 2, SkipSteps: 1, MaxRanks: 8, Seed: 1,
	})
	if err != nil || len(series.Points) != 2 {
		t.Fatalf("RunWeakScaling: %v", err)
	}
}

// Verification is not optional: both applications check against exact
// solutions on every platform model.
func TestAllPlatformsProduceCorrectSolutions(t *testing.T) {
	for _, name := range []string{"puma", "ellipse", "lagrange", "ec2"} {
		tg, err := core.NewTarget(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		app, err := core.WeakRD(8, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := tg.Run(core.JobSpec{Ranks: 8, App: app})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Metrics["max_err"] > 1e-4 {
			t.Errorf("%s produced max error %v", name, rep.Metrics["max_err"])
		}
	}
}
