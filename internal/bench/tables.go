package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"heterohpc/internal/platform"
	"heterohpc/internal/provision"
	"heterohpc/internal/sched"
)

// FormatCapabilities renders Table I: the specification and capability
// matrix of the four test architectures, with the porting annotations of
// §VI ("in color: how we addressed the missing capabilities").
func FormatCapabilities() string {
	plats := platform.Defaults()
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "\t")
	for _, p := range plats {
		fmt.Fprintf(w, "%s\t", p.Name)
	}
	fmt.Fprintln(w)
	row := func(label string, f func(p *platform.Platform) string) {
		fmt.Fprintf(w, "%s\t", label)
		for _, p := range plats {
			fmt.Fprintf(w, "%s\t", f(p))
		}
		fmt.Fprintln(w)
	}
	row("cpu arch.", func(p *platform.Platform) string {
		if strings.Contains(p.CPU, "Opteron") {
			return "Opteron"
		}
		return "Xeon"
	})
	row("# cpu/cores", func(p *platform.Platform) string {
		return fmt.Sprintf("%d/%d", p.SocketsPerNode, p.CoresPerSocket)
	})
	row("RAM/core", func(p *platform.Platform) string {
		return fmt.Sprintf("%.1fGB", p.RAMPerCoreGB())
	})
	row("network", func(p *platform.Platform) string { return p.Net.Name })
	row("storage", func(p *platform.Platform) string { return p.Caps.Storage })
	row("access", func(p *platform.Platform) string { return p.Caps.Access })
	row("support", func(p *platform.Platform) string { return p.Caps.Support })
	row("build env.", func(p *platform.Platform) string { return p.Caps.BuildEnv })
	row("compiler", func(p *platform.Platform) string { return p.Caps.Compiler })
	row("dependencies", func(p *platform.Platform) string { return p.Caps.Dependencies })
	row("MPI", func(p *platform.Platform) string { return p.Caps.MPI })
	row("parallel jobs", func(p *platform.Platform) string {
		if p.Caps.ParallelJobs {
			return "yes"
		}
		return "no"
	})
	row("execution", func(p *platform.Platform) string { return p.Caps.Execution })
	row("cost", func(p *platform.Platform) string {
		if p.BillWholeNodes {
			return fmt.Sprintf("$%.2f/node-h (spot $%.2f)", p.CostPerNodeHour, p.SpotPerNodeHour)
		}
		return fmt.Sprintf("%.2f¢/core-h", p.CostPerCoreHour*100)
	})
	w.Flush()
	return b.String()
}

// FormatProvisioning renders the §VI porting report: per platform, the
// resolved installation plan and effort estimate.
func FormatProvisioning() (string, error) {
	reg := provision.DefaultRegistry()
	var b strings.Builder
	for _, name := range provision.PaperPlatforms {
		st, err := provision.PlatformState(name)
		if err != nil {
			return "", err
		}
		plan, err := provision.Resolve(reg, st, provision.AppTargets)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "=== %s ===\n", name)
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		for _, s := range plan.Steps {
			hours := ""
			if s.Hours > 0 {
				hours = fmt.Sprintf("%.1fh", s.Hours)
			}
			fmt.Fprintf(w, "  %s\t%s\t%s\t%s\n", s.Pkg, s.Version, s.Method, hours)
		}
		for _, t := range plan.Extra {
			fmt.Fprintf(w, "  %s\t\ttask\t%.1fh\n", t.Name, t.Hours)
		}
		w.Flush()
		fmt.Fprintf(&b, "  install effort: %.1f man-hours; with platform tasks: %.1f man-hours\n\n",
			plan.InstallHours, plan.TotalHours)
	}
	return b.String(), nil
}

// FormatAvailability renders the §VIII availability comparison: queue-wait
// quantiles per platform for a given job size.
func FormatAvailability(o Options, nodesWanted int) (string, error) {
	o = o.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "Availability: sampled wait to obtain %d nodes (seconds; 1000 samples)\n", nodesWanted)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s\n", "platform", "p10", "median", "p90")
	for _, name := range o.Platforms {
		p, err := platform.Get(name)
		if err != nil {
			return "", err
		}
		n := nodesWanted
		if n > p.MaxNodes {
			n = p.MaxNodes
		}
		s := sched.New(p, o.Seed)
		p10, p50, p90 := s.QueueWaitQuantiles(n, 1000)
		fmt.Fprintf(&b, "%-10s %12.0f %12.0f %12.0f\n", name, p10, p50, p90)
	}
	return b.String(), nil
}
