package bench

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"heterohpc/internal/core"
	"heterohpc/internal/fault"
	"heterohpc/internal/obs"
)

// stormOpts is the acceptance storm: a three-notice reclamation wave with
// one cascade mid-recovery, on a market whose on-demand pool is gone
// (-odsupply none), so the autoscaler has to back off and retry AcquireMix.
// Seed 12 is pinned because its market stream exhausts the first two
// acquisition attempts — the deterministic run needs ≥ 2 backoff retries
// before the replacements arrive.
func stormOpts() FaultOptions {
	return FaultOptions{
		App: "rd", Platform: "ec2", Ranks: 8, RanksPerNode: 2,
		PerRankN: 3, Steps: 3, Seed: 12, Policy: PolicyMigrate,
		StormWave: 3, StormCascades: 1, OnDemandSupply: -1,
	}
}

// TestStormArbiterRecoversFullWidthBitIdentical is the tentpole acceptance
// test: a correlated storm — three overlapping preemption notices, one
// cascade reclaiming a replacement mid-provisioning, and a spot market dry
// enough to force two backoff retries — must coalesce into one recovery
// point (no double-restore), come back at full width, and continue to the
// exact solution bytes of a fault-free run.
func TestStormArbiterRecoversFullWidthBitIdentical(t *testing.T) {
	o := stormOpts()
	o.Obs = obs.NewRun()
	s, err := newSuperSetup(o.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	rep, st, err := runMigrate(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalRanks != o.Ranks || rep.Degraded {
		t.Fatalf("storm run finished on %d ranks (degraded %v), want the full %d",
			rep.FinalRanks, rep.Degraded, o.Ranks)
	}
	mg := rep.Migrate
	if mg == nil {
		t.Fatal("migrate policy produced no migrate stats")
	}
	if mg.Coalesced != 2 {
		t.Fatalf("arbiter coalesced %d notices, want 2 (a 3-notice wave folds into one recovery point)", mg.Coalesced)
	}
	if mg.Replans != 1 {
		t.Fatalf("arbiter re-planned %d cascades, want 1", mg.Replans)
	}
	if mg.ProvisionRetries < 2 {
		t.Fatalf("autoscaler retried %d time(s), want >= 2 exhausted-market backoffs", mg.ProvisionRetries)
	}
	if rep.BackoffS <= 0 {
		t.Fatalf("backoff share %.3fs, want > 0 when the market exhausts", rep.BackoffS)
	}
	if mg.Migrations != 1 || mg.FallbackShrinks != 0 || mg.FallbackRestarts != 0 {
		t.Fatalf("stats %+v, want exactly one group migration and no fallbacks", mg)
	}
	if rep.Shrink == nil || rep.Shrink.Shrinks != 1 {
		t.Fatalf("storm recovery must shrink-and-restore exactly once (no double-restore), got %+v", rep.Shrink)
	}

	// Fault-free comparator at the same width, from scratch.
	m, grid, mem, err := weakSetup(o.App, o.Ranks, o.PerRankN)
	if err != nil {
		t.Fatal(err)
	}
	comp := newShrinkApp(o.App, m, grid, o.Steps, o.Ranks)
	tg, err := core.NewTarget(o.Platform, o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cleanObs := obs.NewRun()
	result, af, err := tg.Attempt(core.JobSpec{
		Ranks: o.Ranks, RanksPerNode: o.RanksPerNode, App: comp, MemPerRankGB: mem, Obs: cleanObs,
	})
	if err != nil || af != nil || result == nil {
		t.Fatalf("fault-free comparator failed: %v / %v / %v", err, af, result)
	}

	for rank := 0; rank < o.Ranks; rank++ {
		a, b := st.app.finalVals[rank], comp.finalVals[rank]
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("rank %d: %d vs %d final values", rank, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("rank %d dof %d: storm-recovered %x, fault-free %x — not bit-identical",
					rank, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
		for i := range st.app.finalIDs[rank] {
			if st.app.finalIDs[rank][i] != comp.finalIDs[rank][i] {
				t.Fatalf("rank %d: ownership differs at slot %d", rank, i)
			}
		}
	}

	// Post-restore journal tail: the solver's path after the restore step
	// must reappear verbatim (minus virtual timestamps).
	migEvs, cleanEvs := rankEvents(t, o.Obs), rankEvents(t, cleanObs)
	for rank := 0; rank < o.Ranks; rank++ {
		key := strconv.Itoa(rank)
		want := solveTailAfterStep(t, cleanEvs[key], mg.RestoreStep)
		if len(want) == 0 {
			t.Fatalf("rank %d: fault-free run has no solves after step %d", rank, mg.RestoreStep)
		}
		var got []string
		for _, ev := range migEvs[key] {
			if strings.Contains(ev, `"kind":"solve"`) {
				got = append(got, ev)
			}
		}
		if len(got) < len(want) {
			t.Fatalf("rank %d: storm run has %d solves, tail needs %d", rank, len(got), len(want))
		}
		got = got[len(got)-len(want):]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d: post-restore journal tail diverges at solve %d:\nstorm      %s\nfault-free %s",
					rank, i, got[i], want[i])
			}
		}
	}
}

// TestStormJournalDeterministic pins the replay story: two storm runs with
// equal seeds — fault plan, market stream, backoff schedule and all — must
// write byte-identical journals.
func TestStormJournalDeterministic(t *testing.T) {
	journal := func() []byte {
		o := stormOpts()
		o.Obs = obs.NewRun()
		if _, err := RunSupervised(o); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := o.Obs.WriteJournal(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := journal(), journal()
	if len(a) == 0 {
		t.Fatal("storm run wrote an empty journal")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("equal-seed storm journals differ: %d vs %d bytes", len(a), len(b))
	}
}

// TestStormWasteBelowNaiveRestart pins the arbiter's reason to exist: under
// the same storm plan, coalesced group migration must waste strictly less
// virtual time than naive per-event checkpoint-restart, while also ending
// at full width (shrink survives but degrades).
func TestStormWasteBelowNaiveRestart(t *testing.T) {
	o := stormOpts()
	o.OnDemandSupply = 0 // unlimited: isolate arbitration from autoscaling
	cmp, err := CompareRecovery(o)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Migrate.WastedVirtualS >= cmp.Restart.WastedVirtualS {
		t.Fatalf("arbitrated migration wasted %.3fs, naive restart %.3fs — arbiter must waste strictly less",
			cmp.Migrate.WastedVirtualS, cmp.Restart.WastedVirtualS)
	}
	if cmp.Migrate.FinalRanks != o.Ranks {
		t.Fatalf("migrate ended on %d ranks, want %d", cmp.Migrate.FinalRanks, o.Ranks)
	}
	if cmp.Shrink.FinalRanks >= cmp.Migrate.FinalRanks {
		t.Fatalf("shrink kept %d ranks >= migrate's %d; the storm should cost shrink its width",
			cmp.Shrink.FinalRanks, cmp.Migrate.FinalRanks)
	}
}

// TestRegrowRestoresSubmittedWidth exercises the elastic autoscaler's
// re-grow path: an unannounced crash forces the shrink fallback (the world
// drops to 6 ranks — no notice, nothing to migrate in), and when a later
// warm notice migrates, -regrow acquires the deficit node too, so the
// world comes back at the submitted 8 ranks. The intermediate degraded
// generation computes on a different decomposition, so this asserts width
// and bookkeeping, not bit-identity.
func TestRegrowRestoresSubmittedWidth(t *testing.T) {
	o := FaultOptions{
		App: "rd", Platform: "ec2", Ranks: 8, RanksPerNode: 2,
		PerRankN: 3, Steps: 4, Seed: 21, Policy: PolicyMigrate,
		Regrow: true, Obs: obs.NewRun(),
	}
	s, err := newSuperSetup(o.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	s.plan = &fault.Plan{Seed: o.Seed, Events: []fault.Event{
		// No notice at all: the ladder falls back to shrink and the
		// world degrades to 6 ranks.
		{Kind: fault.KindCrash, Node: 1, At: 0.35 * s.cleanS},
		// Warm notice later: migrate, and re-grow the earlier deficit.
		{Kind: fault.KindPreempt, Node: 2, At: 0.9 * s.cleanS, NoticeAt: 0.7 * s.cleanS},
	}}
	rep, _, err := runMigrate(s)
	if err != nil {
		t.Fatal(err)
	}
	mg := rep.Migrate
	if mg == nil || mg.FallbackShrinks != 1 {
		t.Fatalf("stats %+v, want exactly one shrink fallback from the windowless notice", mg)
	}
	if mg.Migrations != 1 {
		t.Fatalf("migrations %d, want 1", mg.Migrations)
	}
	if mg.RegrownNodes != 1 {
		t.Fatalf("autoscaler re-grew %d node(s), want the 1 deficit node", mg.RegrownNodes)
	}
	if rep.FinalRanks != o.Ranks || rep.Degraded {
		t.Fatalf("re-grown run finished on %d ranks (degraded %v), want the submitted %d",
			rep.FinalRanks, rep.Degraded, o.Ranks)
	}
}
