package bench

import (
	"bytes"
	"strings"
	"testing"

	"heterohpc/internal/obs"
)

func TestReplayPlainAnchorsBeforeDivergence(t *testing.T) {
	d, err := ReplayFromCheckpoint(ReplayOptions{
		App: "rd", Platform: "ec2", Ranks: 8, PerRankN: 2,
		Steps: 3, Seed: 7, DivStep: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.AnchorStep != 2 || d.ColdStart {
		t.Fatalf("anchor = %d (cold %v), want 2", d.AnchorStep, d.ColdStart)
	}
	if d.DivStep != 3 || len(d.PerRank) != 8 {
		t.Fatalf("divStep=%d ranks=%d", d.DivStep, len(d.PerRank))
	}
	if d.MaxVirtualS <= 0 {
		t.Fatalf("no virtual time replayed: %v", d.MaxVirtualS)
	}
	for _, rs := range d.PerRank {
		if rs.StepsDone != 3 {
			t.Fatalf("rank %d stopped at step %d, want 3", rs.Rank, rs.StepsDone)
		}
		if rs.LastSolver == "" || rs.LastIters <= 0 || !rs.Converged {
			t.Fatalf("rank %d missing solve context: %+v", rs.Rank, rs)
		}
		if rs.ClockS <= 0 || rs.StateL2 <= 0 || rs.StateMax <= 0 {
			t.Fatalf("rank %d missing state: %+v", rs.Rank, rs)
		}
	}
	out := FormatReplayDump(d)
	for _, want := range []string{"checkpoint-anchored replay", "after step 2", "to step 3", "state-l2"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestReplayColdStartAtFirstStep(t *testing.T) {
	d, err := ReplayFromCheckpoint(ReplayOptions{
		App: "rd", Platform: "puma", Ranks: 8, PerRankN: 2,
		Steps: 2, Seed: 7, DivStep: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.ColdStart || d.AnchorStep != 0 {
		t.Fatalf("want cold start, got anchor %d", d.AnchorStep)
	}
	for _, rs := range d.PerRank {
		if rs.StepsDone != 1 {
			t.Fatalf("rank %d at step %d, want 1", rs.Rank, rs.StepsDone)
		}
	}
	if !strings.Contains(FormatReplayDump(d), "replayed from scratch") {
		t.Error("dump missing cold-start note")
	}
}

func TestReplayFaultedScenario(t *testing.T) {
	d, err := ReplayFromCheckpoint(ReplayOptions{
		App: "rd", Platform: "ec2", Ranks: 8, PerRankN: 2,
		Steps: 3, Seed: 11, Crashes: 1, Preemptions: 1, DivStep: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.AnchorStep != 1 || d.ColdStart {
		t.Fatalf("anchor = %d (cold %v), want 1", d.AnchorStep, d.ColdStart)
	}
	for _, rs := range d.PerRank {
		if rs.StepsDone != 2 {
			t.Fatalf("rank %d at step %d, want 2", rs.Rank, rs.StepsDone)
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	opt := ReplayOptions{
		App: "rd", Platform: "ec2", Ranks: 8, PerRankN: 2,
		Steps: 3, Seed: 11, Crashes: 1, DivStep: 3,
	}
	a, err := ReplayFromCheckpoint(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayFromCheckpoint(opt)
	if err != nil {
		t.Fatal(err)
	}
	if FormatReplayDump(a) != FormatReplayDump(b) {
		t.Fatalf("equal-seed replays differ:\n%s\nvs\n%s", FormatReplayDump(a), FormatReplayDump(b))
	}
}

func TestReplayRejectsShrinkAndMigrate(t *testing.T) {
	for _, policy := range []string{PolicyShrink, PolicyMigrate} {
		_, err := ReplayFromCheckpoint(ReplayOptions{Policy: policy, DivStep: 1})
		if err == nil || !strings.Contains(err.Error(), "buddy mirroring") {
			t.Fatalf("policy %s: got %v, want rejection", policy, err)
		}
	}
}

// TestPointJournalDeterminism pins the sweep's primitive: equal
// configurations give byte-identical journals, different platform models
// diverge (the outlier-hunting signal), and every produced journal
// parses. Note the seed alone does not perturb a fault-free journal — it
// drives queue waits and markets, which a clean job's ranks never see.
func TestPointJournalDeterminism(t *testing.T) {
	o := Options{PerRankN: 2, Steps: 2, MaxRanks: 8, Seed: 7}
	a, err := PointJournal("rd", "ec2", 8, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PointJournal("rd", "ec2", 8, o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("equal-seed point journals differ")
	}
	if _, err := obs.ReadJournal(bytes.NewReader(a)); err != nil {
		t.Fatalf("point journal does not parse: %v", err)
	}
	c, err := PointJournal("rd", "puma", 8, o)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("ec2 and puma point journals identical — platform model not in the journal")
	}
}
