package bench

import (
	"fmt"
	"strings"

	"heterohpc/internal/platform"
	"heterohpc/internal/spot"
	"heterohpc/internal/stats"
)

// BidPoint summarises the outcome of one bid level across many simulated
// market histories.
type BidPoint struct {
	// BidFraction is the bid as a fraction of the on-demand price.
	BidFraction float64
	// SpotShare is the mean fraction of the fleet acquired at spot prices.
	SpotShare float64
	// BlendedNodeHour is the mean per-instance-hour price of the fleet.
	BlendedNodeHour float64
	// Rounds is the mean number of market epochs until the fleet was
	// complete.
	Rounds float64
}

// BidSweep evaluates the paper's cost-aware strategy across bid levels: how
// much of a fleet of `nodes` instances arrives at spot prices, and what the
// blended price becomes, as the bid rises from well below to above the
// long-run spot price. trials market histories are averaged per level.
func BidSweep(p *platform.Platform, nodes, trials int, seed uint64) ([]BidPoint, error) {
	if p.SpotPerNodeHour == 0 {
		return nil, fmt.Errorf("bench: %s has no spot market", p.Name)
	}
	if nodes < 1 || trials < 1 {
		return nil, fmt.Errorf("bench: bad sweep geometry: %d nodes, %d trials", nodes, trials)
	}
	fractions := []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.35, 0.50, 0.75, 1.00}
	rng := stats.NewRNG(seed)
	var out []BidPoint
	for _, frac := range fractions {
		var share, blended, rounds float64
		for trial := 0; trial < trials; trial++ {
			m := spot.NewMarket(rng.Uint64(), p.CostPerNodeHour)
			a, err := m.AcquireMix(nodes, frac*p.CostPerNodeHour, 4, 6)
			if err != nil {
				return nil, err
			}
			share += float64(a.SpotCount()) / float64(nodes)
			blended += a.BlendedNodeHour()
			rounds += float64(a.Rounds)
		}
		n := float64(trials)
		out = append(out, BidPoint{
			BidFraction:     frac,
			SpotShare:       share / n,
			BlendedNodeHour: blended / n,
			Rounds:          rounds / n,
		})
	}
	return out, nil
}

// FormatBidSweep renders a bid-strategy table for the EC2 model.
func FormatBidSweep(o Options, nodes, trials int) (string, error) {
	o = o.withDefaults()
	p, err := platform.Get("ec2")
	if err != nil {
		return "", err
	}
	pts, err := BidSweep(p, nodes, trials, o.Seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Cost-aware bidding: %d-instance fleets on %s ($%.2f on-demand, ~$%.2f spot), %d trials per bid\n",
		nodes, p.Name, p.CostPerNodeHour, p.SpotPerNodeHour, trials)
	fmt.Fprintf(&b, "%10s %12s %16s %10s %14s\n",
		"bid", "spot share", "blended $/nd-h", "rounds", "saving vs full")
	for _, pt := range pts {
		fmt.Fprintf(&b, "%9.0f%% %11.1f%% %16.3f %10.1f %13.1f%%\n",
			pt.BidFraction*100, pt.SpotShare*100, pt.BlendedNodeHour, pt.Rounds,
			(1-pt.BlendedNodeHour/p.CostPerNodeHour)*100)
	}
	return b.String(), nil
}
