// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VII) from the models in this
// repository — the weak-scaling series of Figures 4 and 5, the placement
// group / spot-mix comparison of Table II, the per-iteration cost curves of
// Figures 6 and 7, the capability matrix of Table I, the porting plans of
// §VI, and the availability comparison of §VIII.
//
// Results are plain data; Format* functions render the paper-shaped text
// tables. Everything is deterministic given Options.Seed.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"heterohpc/internal/core"
	"heterohpc/internal/obs"
)

// WeakSeries is the paper's weak-scaling process series: cubic counts from
// 1 to 1000.
var WeakSeries = []int{1, 8, 27, 64, 125, 216, 343, 512, 729, 1000}

// Options configures the harness.
type Options struct {
	// PerRankN is the per-process mesh edge (elements). The paper uses 20;
	// the default 10 keeps full sweeps tractable on a laptop while
	// preserving shapes (see EXPERIMENTS.md).
	PerRankN int
	// Steps is the number of BDF2 steps per run.
	Steps int
	// SkipSteps discards initial iterations from averages (the paper
	// discards 5 of its longer runs; scaled here to the shorter series).
	SkipSteps int
	// MaxRanks truncates the series.
	MaxRanks int
	// Seed drives every stochastic model (queue waits, spot market).
	Seed uint64
	// Platforms lists the targets (defaults to the paper's four).
	Platforms []string
	// Obs, when non-nil, collects every run's journal events and metrics.
	// Nil (the default) keeps the hot paths allocation-free.
	Obs *obs.Run
}

func (o Options) withDefaults() Options {
	if o.PerRankN == 0 {
		o.PerRankN = 10
	}
	if o.Steps == 0 {
		o.Steps = 3
	}
	if o.Steps > 1 && o.SkipSteps == 0 {
		o.SkipSteps = 1
	}
	if o.MaxRanks == 0 {
		o.MaxRanks = 1000
	}
	if o.Seed == 0 {
		o.Seed = 2012
	}
	if len(o.Platforms) == 0 {
		o.Platforms = []string{"puma", "ellipse", "lagrange", "ec2"}
	}
	return o
}

// Point is one (platform, ranks) measurement of a weak-scaling series.
type Point struct {
	Ranks  int
	Report *core.Report
	// Err records why the point is missing (scheduling failure), truncating
	// the series exactly as the paper's platforms did.
	Err error
}

// Series is one platform's weak-scaling curve.
type Series struct {
	App      string
	Platform string
	Points   []Point
}

// newApp builds the weak-scaling application for the given name.
func newApp(app string, ranks int, o Options) (core.App, float64, error) {
	switch app {
	case "rd":
		a, err := core.WeakRD(ranks, o.PerRankN, o.Steps)
		return a, core.MemPerRankGB(o.PerRankN, 1), err
	case "ns":
		a, err := core.WeakNS(ranks, o.PerRankN, o.Steps)
		return a, core.MemPerRankGB(o.PerRankN, 4), err
	default:
		return nil, 0, fmt.Errorf("bench: unknown application %q (want rd or ns)", app)
	}
}

// RunWeak executes the weak-scaling experiment (Figure 4 for app "rd",
// Figure 5 for "ns") on one platform.
func RunWeak(app, platformName string, o Options) (*Series, error) {
	o = o.withDefaults()
	tg, err := core.NewTarget(platformName, o.Seed)
	if err != nil {
		return nil, err
	}
	s := &Series{App: app, Platform: platformName}
	for _, ranks := range WeakSeries {
		if ranks > o.MaxRanks {
			break
		}
		a, mem, err := newApp(app, ranks, o)
		if err != nil {
			return nil, err
		}
		rep, err := tg.Run(core.JobSpec{
			Ranks: ranks, App: a, SkipSteps: o.SkipSteps, MemPerRankGB: mem, Obs: o.Obs,
		})
		s.Points = append(s.Points, Point{Ranks: ranks, Report: rep, Err: err})
		if err != nil {
			// The platform hit its limit; later (larger) points fail too, so
			// stop the series here like the paper's runs did.
			break
		}
	}
	return s, nil
}

// RunWeakAll executes the weak-scaling experiment on all configured
// platforms.
func RunWeakAll(app string, o Options) ([]*Series, error) {
	o = o.withDefaults()
	var out []*Series
	for _, p := range o.Platforms {
		s, err := RunWeak(app, p, o)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// FormatWeak renders Figure 4/5 as a text table: per platform and process
// count, the rank-averaged assembly/preconditioner/solve times and the
// total maximal iteration time.
func FormatWeak(series []*Series) string {
	var b strings.Builder
	if len(series) == 0 {
		return "(no data)\n"
	}
	app := strings.ToUpper(series[0].App)
	fmt.Fprintf(&b, "Weak scaling, %s application (per-iteration seconds)\n", app)
	fmt.Fprintf(&b, "%-10s %6s %10s %10s %10s %12s %7s\n",
		"platform", "#mpi", "assembly", "precond", "solve", "max total", "comm%")
	for _, s := range series {
		for _, pt := range s.Points {
			if pt.Err != nil {
				fmt.Fprintf(&b, "%-10s %6d  -- %s\n", s.Platform, pt.Ranks, shortErr(pt.Err))
				continue
			}
			it := pt.Report.Iter
			fmt.Fprintf(&b, "%-10s %6d %10.3f %10.3f %10.3f %12.3f %6.1f%%\n",
				s.Platform, pt.Ranks, it.AvgAssembly, it.AvgPrecond, it.AvgSolve,
				it.MaxTotal, it.CommFraction*100)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatCost renders Figure 6/7: per-iteration dollar cost per platform and
// process count, including the cost-aware "ec2 mix" (spot) curve.
func FormatCost(series []*Series) string {
	var b strings.Builder
	if len(series) == 0 {
		return "(no data)\n"
	}
	app := strings.ToUpper(series[0].App)
	fmt.Fprintf(&b, "Per-iteration cost, %s application (USD)\n", app)

	// Collect the union of rank counts with data.
	rankSet := map[int]bool{}
	for _, s := range series {
		for _, pt := range s.Points {
			if pt.Err == nil {
				rankSet[pt.Ranks] = true
			}
		}
	}
	ranks := make([]int, 0, len(rankSet))
	for r := range rankSet {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	cols := make([]string, 0, len(series)+1)
	for _, s := range series {
		cols = append(cols, s.Platform)
		if s.Platform == "ec2" {
			cols = append(cols, "ec2 mix")
		}
	}
	fmt.Fprintf(&b, "%6s", "#mpi")
	for _, c := range cols {
		fmt.Fprintf(&b, " %12s", c)
	}
	fmt.Fprintln(&b)
	for _, r := range ranks {
		fmt.Fprintf(&b, "%6d", r)
		for _, s := range series {
			cost, spotCost := -1.0, -1.0
			for _, pt := range s.Points {
				if pt.Ranks == r && pt.Err == nil {
					cost = pt.Report.CostPerIter
					spotCost = pt.Report.SpotCostPerIter
				}
			}
			b.WriteString(cellUSD(cost))
			if s.Platform == "ec2" {
				b.WriteString(cellUSD(spotCost))
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// cellUSD formats one cost cell; non-positive means no data.
func cellUSD(v float64) string {
	if v <= 0 {
		return fmt.Sprintf(" %12s", "--")
	}
	return fmt.Sprintf(" %12.5f", v)
}

func shortErr(err error) string {
	return err.Error()
}
