package bench

import (
	"fmt"
	"strings"

	"heterohpc/internal/core"
)

// StrongSeries is one platform's strong-scaling curve on a fixed global
// mesh: the time-to-completion view of the paper's introduction, provided
// as an extension beyond the paper's weak-scaling evaluation.
type StrongSeries struct {
	App      string
	Platform string
	GlobalN  int
	Points   []Point
}

// RunStrong executes a strong-scaling experiment: the globalN³ problem on
// 1, 8, 27, … ranks (up to Options.MaxRanks) of one platform.
func RunStrong(app, platformName string, globalN int, o Options) (*StrongSeries, error) {
	o = o.withDefaults()
	tg, err := core.NewTarget(platformName, o.Seed)
	if err != nil {
		return nil, err
	}
	s := &StrongSeries{App: app, Platform: platformName, GlobalN: globalN}
	for _, ranks := range WeakSeries {
		if ranks > o.MaxRanks {
			break
		}
		var a core.App
		switch app {
		case "rd":
			a, err = core.StrongRD(ranks, globalN, o.Steps)
		case "ns":
			a, err = core.StrongNS(ranks, globalN, o.Steps)
		default:
			return nil, fmt.Errorf("bench: unknown application %q", app)
		}
		if err != nil {
			// Mesh cannot be split that finely; the series ends here.
			break
		}
		rep, runErr := tg.Run(core.JobSpec{Ranks: ranks, App: a, SkipSteps: o.SkipSteps, Obs: o.Obs})
		s.Points = append(s.Points, Point{Ranks: ranks, Report: rep, Err: runErr})
		if runErr != nil {
			break
		}
	}
	if len(s.Points) == 0 {
		return nil, fmt.Errorf("bench: no feasible strong-scaling points for %s on %s",
			app, platformName)
	}
	return s, nil
}

// FormatStrong renders a strong-scaling table with speedup and parallel
// efficiency relative to the smallest run.
func FormatStrong(series []*StrongSeries) string {
	var b strings.Builder
	if len(series) == 0 {
		return "(no data)\n"
	}
	fmt.Fprintf(&b, "Strong scaling, %s application, fixed %d³ global mesh\n",
		strings.ToUpper(series[0].App), series[0].GlobalN)
	fmt.Fprintf(&b, "%-10s %6s %12s %10s %12s %10s\n",
		"platform", "#mpi", "iter[s]", "speedup", "efficiency", "$/iter")
	for _, s := range series {
		var base float64
		var baseRanks int
		for _, pt := range s.Points {
			if pt.Err != nil {
				fmt.Fprintf(&b, "%-10s %6d  -- %v\n", s.Platform, pt.Ranks, pt.Err)
				continue
			}
			t := pt.Report.Iter.MaxTotal
			if base == 0 {
				base, baseRanks = t, pt.Ranks
			}
			speedup := base / t
			eff := speedup * float64(baseRanks) / float64(pt.Ranks)
			fmt.Fprintf(&b, "%-10s %6d %12.4f %10.2f %11.1f%% %10.5f\n",
				s.Platform, pt.Ranks, t, speedup, eff*100, pt.Report.CostPerIter)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
