package bench

import (
	"encoding/csv"
	"errors"
	"strings"
	"testing"

	"heterohpc/internal/core"
)

// TestCSVEscape pins the RFC 4180 quoting rules the exporters rely on.
func TestCSVEscape(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"has,comma", `"has,comma"`},
		{`say "hi"`, `"say ""hi"""`},
		{"line\nbreak", "\"line\nbreak\""},
		{"", ""},
	}
	for _, c := range cases {
		if got := csvEscape(c.in); got != c.want {
			t.Errorf("csvEscape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestCSVWeakRoundTrip feeds error cells containing every CSV-hostile
// character through CSVWeak and back through encoding/csv: the reader must
// recover the exact error strings and a rectangular table. The previous
// exporter used %q (Go escaping), which standard CSV readers do not undo.
func TestCSVWeakRoundTrip(t *testing.T) {
	hostile := `scheduler said "no", retry later` + "\nsecond line"
	series := []*Series{{
		App: "rd", Platform: "puma",
		Points: []Point{
			{Ranks: 8, Report: &core.Report{Ranks: 8, Nodes: 2}},
			{Ranks: 27, Err: errors.New(hostile)},
		},
	}}
	out := CSVWeak(series)

	rd := csv.NewReader(strings.NewReader(out))
	rows, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("encoding/csv cannot parse CSVWeak output: %v\n%s", err, out)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2 data rows", len(rows))
	}
	ncols := len(rows[0])
	for i, row := range rows {
		if len(row) != ncols {
			t.Errorf("row %d has %d fields, header has %d", i, len(row), ncols)
		}
	}
	if got := rows[2][ncols-1]; got != hostile {
		t.Errorf("error cell round-trip: got %q, want %q", got, hostile)
	}
}

// TestCSVPlacementRoundTrip does the same for the Table II exporter.
func TestCSVPlacementRoundTrip(t *testing.T) {
	hostile := `capacity, exhausted: "mixed" fleet`
	res := &PlacementResult{Rows: []PlacementRow{
		{Ranks: 8, Instances: 1, FullTime: 1.5, MixTime: 2.5},
		{Ranks: 27, Instances: 2, Err: errors.New(hostile)},
	}}
	out := CSVPlacement(res)

	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("encoding/csv cannot parse CSVPlacement output: %v\n%s", err, out)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2 data rows", len(rows))
	}
	if got := rows[2][len(rows[2])-1]; got != hostile {
		t.Errorf("error cell round-trip: got %q, want %q", got, hostile)
	}
}
