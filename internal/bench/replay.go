package bench

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"

	"heterohpc/internal/checkpoint"
	"heterohpc/internal/core"
	"heterohpc/internal/obs"
)

// ReplayOptions configures a checkpoint-anchored replay of one scenario
// (see ReplayFromCheckpoint). The scenario fields mirror the knobs that
// produced the journal being triaged: a plain weak-scaling point when the
// fault counts are zero, a supervised PolicyRestart run otherwise.
type ReplayOptions struct {
	// App is "rd" or "ns"; Platform names the target.
	App, Platform string
	// Ranks is the submitted process count (cubic).
	Ranks int
	// RanksPerNode underfills nodes, as in FaultOptions.
	RanksPerNode int
	// PerRankN is the per-process mesh edge (default 10).
	PerRankN int
	// Steps is the scenario's total step count (default 4, matching
	// FaultOptions; plain CLI runs pass their -steps).
	Steps int
	// SkipSteps discards initial iterations from averaged statistics.
	SkipSteps int
	// Seed is the scenario seed.
	Seed uint64
	// Crashes, Preemptions and Degradations size the fault plan; all zero
	// means an unsupervised run.
	Crashes, Preemptions, Degradations int
	// Policy must be empty or PolicyRestart: the shrink and migrate
	// policies persist state through the buddy mirrorStore machinery,
	// which the replay anchor does not capture.
	Policy string
	// DivStep is the step the divergence happened in (the diverging rank's
	// last completed step + 1, clamped to [1, Steps]): the replay runs up
	// to and including it.
	DivStep int
}

// ReplayRankState is one rank's state at the divergence step.
type ReplayRankState struct {
	Rank int
	// StepsDone is the step count the rank's final replay checkpoint
	// captured (the divergence step on a healthy replay).
	StepsDone int
	// ClockS is the rank's virtual clock over the replayed steps.
	ClockS float64
	// LastSolver/LastIters/LastResidual/Converged describe the rank's last
	// linear solve, read back from the replay's own journal.
	LastSolver   string
	LastIters    int64
	LastResidual float64
	Converged    bool
	// StateL2 and StateMax are the ℓ2 and max norms of the rank's owned
	// solution values at the divergence step; StateTime the PDE time.
	StateL2, StateMax, StateTime float64
}

// ReplayDump is the solver/world state ReplayFromCheckpoint captured at
// the divergence step.
type ReplayDump struct {
	App, Platform string
	Ranks         int
	// AnchorStep is the checkpoint step the replay resumed from (0 with
	// ColdStart: no common checkpoint existed at or before the divergence,
	// so the replay re-ran from step 1).
	AnchorStep int
	ColdStart  bool
	// DivStep is the step the replay ran to.
	DivStep int
	// MaxVirtualS is the replay's virtual makespan (max over ranks);
	// MailboxHighWater the deepest virtual-time mailbox residency overlap.
	MaxVirtualS      float64
	MailboxHighWater float64
	PerRank          []ReplayRankState
}

// anchorStore collects every checkpoint written at the submitted width
// with step ≤ anchor — phase 1 of the replay taps the scenario's
// checkpoint stream through it. It also implements snapStore directly
// (saves tap, restores find nothing) so an unsupervised phase-1 run can
// hand it straight to supervisedApp.
type anchorStore struct {
	mu     sync.Mutex
	width  int
	anchor int
	snaps  []map[int][]byte // per rank: step → blob
}

func newAnchorStore(width, anchor int) *anchorStore {
	s := &anchorStore{width: width, anchor: anchor, snaps: make([]map[int][]byte, width)}
	for i := range s.snaps {
		s.snaps[i] = make(map[int][]byte)
	}
	return s
}

func (s *anchorStore) tap(rank, step, width int, blob []byte) {
	if width != s.width || step < 1 || step > s.anchor || rank < 0 || rank >= s.width {
		return
	}
	s.mu.Lock()
	s.snaps[rank][step] = blob
	s.mu.Unlock()
}

func (s *anchorStore) put(rank, step int, b []byte) { s.tap(rank, step, s.width, b) }
func (s *anchorStore) get(rank int) []byte          { return nil }

// commonLine returns the largest step ≤ anchor every rank has a snapshot
// for, or 0 when none exists. Mixed per-rank resume steps would pair
// collectives across different time steps and hang, so the anchor is
// all-or-nothing.
func (s *anchorStore) commonLine() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for step := s.anchor; step >= 1; step-- {
		all := true
		for _, m := range s.snaps {
			if _, hit := m[step]; !hit {
				all = false
				break
			}
		}
		if all {
			return step
		}
	}
	return 0
}

// blobsAt returns each rank's snapshot at the given step (all nil for
// step 0: the cold-start replay).
func (s *anchorStore) blobsAt(step int) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, s.width)
	if step < 1 {
		return out
	}
	for i, m := range s.snaps {
		out[i] = m[step]
	}
	return out
}

// replayStore hands each rank its anchor snapshot and retains the newest
// snapshot each rank saves during the replay — the state at the
// divergence step.
type replayStore struct {
	mu     sync.Mutex
	resume [][]byte
	latest []ckptSnap
}

func newReplayStore(resume [][]byte) *replayStore {
	s := &replayStore{resume: resume, latest: make([]ckptSnap, len(resume))}
	for i := range s.latest {
		s.latest[i].step = -1
	}
	return s
}

func (s *replayStore) get(rank int) []byte { return s.resume[rank] }

func (s *replayStore) put(rank, step int, b []byte) {
	s.mu.Lock()
	if step >= s.latest[rank].step {
		s.latest[rank] = ckptSnap{step: step, blob: b}
	}
	s.mu.Unlock()
}

func (o ReplayOptions) withDefaults() ReplayOptions {
	if o.App == "" {
		o.App = "rd"
	}
	if o.Platform == "" {
		o.Platform = "ec2"
	}
	if o.Ranks == 0 {
		o.Ranks = 8
	}
	if o.PerRankN == 0 {
		o.PerRankN = 10
	}
	if o.Steps == 0 {
		o.Steps = 4
	}
	if o.Seed == 0 {
		o.Seed = 2012
	}
	return o
}

// ReplayFromCheckpoint time-travels to a journal divergence: it re-runs
// the configured scenario once while tapping every checkpoint write
// (phase 1), picks the nearest checkpoint line at or before the
// divergence step that all ranks share, then resumes a fresh fault-free
// world from that line and runs it up to the divergence step (phase 2),
// dumping solver and world state there. The phase-2 run is observed with
// a fresh journal and the dump's solve data is read back through the
// journal reader, so the replay exercises the same encoding it triages.
func ReplayFromCheckpoint(o ReplayOptions) (*ReplayDump, error) {
	o = o.withDefaults()
	if o.Policy != "" && o.Policy != PolicyRestart {
		return nil, fmt.Errorf("bench: replay supports only the %q recovery policy: %q persists state through buddy mirroring, which the replay anchor does not capture", PolicyRestart, o.Policy)
	}
	divStep := o.DivStep
	if divStep < 1 {
		divStep = 1
	}
	if divStep > o.Steps {
		divStep = o.Steps
	}
	anchors := newAnchorStore(o.Ranks, divStep-1)

	// Phase 1: re-run the scenario, tapping its checkpoint stream.
	if o.Crashes+o.Preemptions+o.Degradations > 0 {
		fo := FaultOptions{
			App: o.App, Platform: o.Platform, Ranks: o.Ranks,
			RanksPerNode: o.RanksPerNode, Policy: PolicyRestart,
			PerRankN: o.PerRankN, Steps: o.Steps, SkipSteps: o.SkipSteps,
			Seed: o.Seed, Crashes: o.Crashes, Preemptions: o.Preemptions,
			Degradations: o.Degradations, ckptTap: anchors.tap,
		}
		if _, err := RunSupervised(fo); err != nil {
			return nil, fmt.Errorf("bench: replay phase 1 (scenario re-run) failed: %w", err)
		}
	} else {
		tg, err := core.NewTarget(o.Platform, o.Seed)
		if err != nil {
			return nil, err
		}
		app, mem, err := newSupervisedApp(o.App, o.Ranks, o.PerRankN, o.Steps, anchors)
		if err != nil {
			return nil, err
		}
		if _, err := tg.Run(core.JobSpec{
			Ranks: o.Ranks, RanksPerNode: o.RanksPerNode, App: app,
			SkipSteps: o.SkipSteps, MemPerRankGB: mem,
		}); err != nil {
			return nil, fmt.Errorf("bench: replay phase 1 (scenario re-run) failed: %w", err)
		}
	}

	line := anchors.commonLine()

	// Phase 2: resume a fresh fault-free world from the anchor line and
	// run it to the divergence step under a fresh journal.
	run := obs.NewRun()
	tg, err := core.NewTarget(o.Platform, o.Seed)
	if err != nil {
		return nil, err
	}
	rstore := newReplayStore(anchors.blobsAt(line))
	app, mem, err := newSupervisedApp(o.App, o.Ranks, o.PerRankN, divStep, rstore)
	if err != nil {
		return nil, err
	}
	rep, err := tg.Run(core.JobSpec{
		Ranks: o.Ranks, RanksPerNode: o.RanksPerNode, App: app,
		SkipSteps: o.SkipSteps, MemPerRankGB: mem, Obs: run,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: replay phase 2 (anchored re-run) failed: %w", err)
	}

	dump := &ReplayDump{
		App: o.App, Platform: o.Platform, Ranks: o.Ranks,
		AnchorStep: line, ColdStart: line == 0, DivStep: divStep,
		MaxVirtualS:      virtualDuration(rep),
		MailboxHighWater: run.Metrics().Gauge("mp.mailbox_highwater").Value(),
		PerRank:          make([]ReplayRankState, o.Ranks),
	}

	// The replay dogfoods the journal reader: phase 2's solve history is
	// read back from its own journal bytes.
	var jbuf bytes.Buffer
	if err := run.WriteJournal(&jbuf); err != nil {
		return nil, err
	}
	evs, err := obs.ReadJournal(&jbuf)
	if err != nil {
		return nil, fmt.Errorf("bench: replay journal does not parse: %w", err)
	}
	for rank := range dump.PerRank {
		dump.PerRank[rank].Rank = rank
	}
	for _, ev := range evs {
		if ev.Kind != "solve" || ev.Rank < 0 || ev.Rank >= o.Ranks {
			continue
		}
		rs := &dump.PerRank[ev.Rank]
		rs.LastSolver = ev.Name
		rs.LastIters = ev.I1
		rs.LastResidual = ev.F1
		rs.Converged = ev.B
	}

	for rank := range dump.PerRank {
		rs := &dump.PerRank[rank]
		if rank < len(rep.PerRankSteps) {
			for _, pt := range rep.PerRankSteps[rank] {
				rs.ClockS += pt.Total()
			}
		}
		sn := rstore.latest[rank]
		if sn.blob == nil {
			continue
		}
		switch o.App {
		case "rd":
			st, _, _, _, rerr := checkpoint.ReadRD(bytes.NewReader(sn.blob))
			if rerr != nil {
				return nil, fmt.Errorf("bench: replay checkpoint of rank %d: %w", rank, rerr)
			}
			rs.StepsDone = st.StepsDone
			rs.StateTime = st.Time
			rs.StateL2, rs.StateMax = stateNorms(st.U1)
		default: // "ns"
			st, _, _, _, rerr := checkpoint.ReadNSE(bytes.NewReader(sn.blob))
			if rerr != nil {
				return nil, fmt.Errorf("bench: replay checkpoint of rank %d: %w", rank, rerr)
			}
			rs.StepsDone = st.StepsDone
			rs.StateTime = st.Time
			rs.StateL2, rs.StateMax = stateNorms(append(append(append([]float64(nil), st.U1[0]...), st.U1[1]...), st.U1[2]...))
		}
	}
	return dump, nil
}

// stateNorms returns the ℓ2 and max-abs norms of v.
func stateNorms(v []float64) (l2, maxAbs float64) {
	for _, x := range v {
		l2 += x * x
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	return math.Sqrt(l2), maxAbs
}

// FormatReplayDump renders the divergence-step state as plain text.
func FormatReplayDump(d *ReplayDump) string {
	var b strings.Builder
	fmt.Fprintf(&b, "checkpoint-anchored replay: %s on %s, %d ranks\n",
		strings.ToUpper(d.App), d.Platform, d.Ranks)
	if d.ColdStart {
		fmt.Fprintf(&b, "no common checkpoint at or before the divergence: replayed from scratch to step %d\n", d.DivStep)
	} else {
		fmt.Fprintf(&b, "resumed from the checkpoint after step %d, replayed to step %d\n", d.AnchorStep, d.DivStep)
	}
	fmt.Fprintf(&b, "replayed virtual time %.3fs, mailbox high-water %.0f\n\n", d.MaxVirtualS, d.MailboxHighWater)
	fmt.Fprintf(&b, "%4s %6s %10s %-10s %6s %12s %5s %13s %13s %8s\n",
		"rank", "steps", "clock(s)", "solver", "iters", "residual", "conv", "state-l2", "state-max", "t(pde)")
	for i := range d.PerRank {
		rs := &d.PerRank[i]
		conv := "no"
		if rs.Converged {
			conv = "yes"
		}
		fmt.Fprintf(&b, "%4d %6d %10.3f %-10s %6d %12.3e %5s %13.6e %13.6e %8.4f\n",
			rs.Rank, rs.StepsDone, rs.ClockS, rs.LastSolver, rs.LastIters,
			rs.LastResidual, conv, rs.StateL2, rs.StateMax, rs.StateTime)
	}
	return b.String()
}

// PointJournal runs one seeded weak-scaling point under a fresh observer
// and returns its journal bytes — the sweep report's journal producer.
func PointJournal(app, platform string, ranks int, o Options) ([]byte, error) {
	o = o.withDefaults()
	run := obs.NewRun()
	tg, err := core.NewTarget(platform, o.Seed)
	if err != nil {
		return nil, err
	}
	a, mem, err := newApp(app, ranks, o)
	if err != nil {
		return nil, err
	}
	if _, err := tg.Run(core.JobSpec{
		Ranks: ranks, App: a, SkipSteps: o.SkipSteps, MemPerRankGB: mem, Obs: run,
	}); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := run.WriteJournal(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
