package bench

import (
	"math"
	"strings"
	"testing"

	"heterohpc/internal/core"
	"heterohpc/internal/fault"
)

// shrinkOpts is the shared shape of the shrink tests: 8 ranks spread two
// per node over four puma nodes, so a node loss kills exactly two ranks
// and every rank has an off-node buddy.
func shrinkOpts(app string) FaultOptions {
	return FaultOptions{
		App: app, Platform: "puma", Ranks: 8, RanksPerNode: 2,
		PerRankN: 3, Steps: 4, Seed: 77, Policy: PolicyShrink,
	}
}

// midRunSetup prepares a supervised setup with a single crash of node 1 at
// the given fraction of the clean virtual duration.
func midRunSetup(t *testing.T, o FaultOptions, frac float64) *superSetup {
	t.Helper()
	s, err := newSuperSetup(o.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	s.plan = &fault.Plan{Seed: o.Seed, Events: []fault.Event{
		{Kind: fault.KindCrash, Node: 1, At: frac * s.cleanS},
	}}
	return s
}

func TestShrinkContinueRecoversMidRun(t *testing.T) {
	s := midRunSetup(t, shrinkOpts("rd"), 0.6)
	rep, st, err := runShrinkContinue(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalRanks != 6 || !rep.Degraded {
		t.Fatalf("finished on %d ranks (degraded %v), want 6", rep.FinalRanks, rep.Degraded)
	}
	sh := rep.Shrink
	if sh == nil || sh.Shrinks != 1 || sh.Survivors != 6 {
		t.Fatalf("shrink stats %+v", sh)
	}
	if sh.RestoreStep < 1 {
		t.Fatalf("mid-run crash resumed from step %d; a warm mirrored restore was expected", sh.RestoreStep)
	}
	if sh.BuddyBytes == 0 || sh.BuddyOverheadS <= 0 {
		t.Fatalf("no buddy traffic metered: %+v", sh)
	}
	if sh.AgreeS <= 0 || sh.RedistributeS <= 0 {
		t.Fatalf("agreement/redistribution cost not charged: %+v", sh)
	}
	if sh.Grid[0]*sh.Grid[1]*sh.Grid[2] != 6 {
		t.Fatalf("survivor grid %v does not cover 6 ranks", sh.Grid)
	}
	if rep.WastedVirtualS <= 0 || rep.WastedVirtualS >= s.plan.Events[0].At {
		t.Fatalf("wasted %.3fs not in (0, crash time %.3fs): warm rollback expected",
			rep.WastedVirtualS, s.plan.Events[0].At)
	}
	if rep.MakespanS <= rep.FinalVirtualS {
		t.Fatalf("makespan %.3f should exceed the continuation's own %.3f (clocks carry)",
			rep.MakespanS, rep.FinalVirtualS)
	}
	if st.ranks != 6 || st.lastHeldRD == nil {
		t.Fatalf("run state %+v lacks held fragments", st)
	}
}

func TestShrinkContinueFinalSolutionBitIdentical(t *testing.T) {
	o := shrinkOpts("rd")
	s := midRunSetup(t, o, 0.6)
	rep, st, err := runShrinkContinue(s)
	if err != nil {
		t.Fatal(err)
	}

	// Comparator: a clean run at the degraded rank count resuming from the
	// same redistributed snapshot — no agreement round, no mirroring, a
	// fresh target. Redistribution is a pure permutation, so the recovered
	// run must match it bit for bit.
	m, _, mem, err := weakSetup(o.App, o.Ranks, o.PerRankN)
	if err != nil {
		t.Fatal(err)
	}
	comp := newShrinkApp(o.App, m, st.grid, o.Steps, st.ranks)
	comp.heldRD = st.lastHeldRD
	tg, err := core.NewTarget(o.Platform, o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	result, af, err := tg.Attempt(core.JobSpec{
		Ranks: st.ranks, RanksPerNode: o.RanksPerNode, App: comp, MemPerRankGB: mem,
	})
	if err != nil || af != nil {
		t.Fatalf("comparator run failed: %v / %v", err, af)
	}

	for rank := 0; rank < st.ranks; rank++ {
		a, b := st.app.finalVals[rank], comp.finalVals[rank]
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("rank %d: %d vs %d final values", rank, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("rank %d dof %d: recovered %x, comparator %x — not bit-identical",
					rank, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
		for i := range st.app.finalIDs[rank] {
			if st.app.finalIDs[rank][i] != comp.finalIDs[rank][i] {
				t.Fatalf("rank %d: ownership differs at slot %d", rank, i)
			}
		}
	}
	for k, v := range rep.Final.Metrics {
		if math.Float64bits(v) != math.Float64bits(result.Metrics[k]) {
			t.Fatalf("metric %s: recovered %v, comparator %v", k, v, result.Metrics[k])
		}
	}
}

func TestShrinkWastesStrictlyLessThanRestart(t *testing.T) {
	o := shrinkOpts("rd")
	o.Policy = ""
	o.Crashes = 1
	c, err := CompareRecovery(o)
	if err != nil {
		t.Fatal(err)
	}
	if c.Restart.Final == nil || c.Shrink.Final == nil {
		t.Fatal("a policy failed to finish")
	}
	if c.Shrink.WastedVirtualS >= c.Restart.WastedVirtualS {
		t.Fatalf("shrink wasted %.3fs, restart %.3fs — shrink must be strictly cheaper under the same plan",
			c.Shrink.WastedVirtualS, c.Restart.WastedVirtualS)
	}
	if len(c.Restart.Plan.Events) != 1 || len(c.Shrink.Plan.Events) != 1 ||
		c.Restart.Plan.Events[0] != c.Shrink.Plan.Events[0] {
		t.Fatalf("policies did not face the same plan: %v vs %v", c.Restart.Plan, c.Shrink.Plan)
	}
	out := FormatRecoveryComparison(c)
	for _, want := range []string{PolicyRestart, PolicyShrink, "wasted virtual"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
}

func TestShrinkRecoveryDeterministic(t *testing.T) {
	o := shrinkOpts("rd")
	o.Policy = ""
	o.Crashes = 1
	a, err := CompareRecovery(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompareRecovery(o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatRecovery(a.Shrink), FormatRecovery(b.Shrink); got != want {
		t.Fatalf("shrink recovery not deterministic:\n--- run 1:\n%s\n--- run 2:\n%s", got, want)
	}
	if got, want := FormatRecoveryComparison(a), FormatRecoveryComparison(b); got != want {
		t.Fatalf("comparison not deterministic:\n--- run 1:\n%s\n--- run 2:\n%s", got, want)
	}
}

func TestShrinkContinueNavierStokes(t *testing.T) {
	o := shrinkOpts("ns")
	o.PerRankN = 2
	o.Steps = 3
	s := midRunSetup(t, o, 0.5)
	rep, st, err := runShrinkContinue(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalRanks != 6 || rep.Shrink.Shrinks != 1 {
		t.Fatalf("ns shrink finished on %d ranks after %d shrinks", rep.FinalRanks, rep.Shrink.Shrinks)
	}
	if v := rep.Final.Metrics["vel_max_err"]; math.IsNaN(v) || v <= 0 {
		t.Fatalf("ns continuation produced vel_max_err %v", v)
	}
	if st.lastHeldNS == nil && rep.Shrink.RestoreStep >= 1 {
		t.Fatal("warm ns restore without held fragments")
	}
}

func TestShrinkPolicyNeedsTwoNodes(t *testing.T) {
	o := shrinkOpts("rd")
	o.RanksPerNode = 0 // 8 ranks pack onto 4-core puma nodes -> 2 nodes; force 1 node via ec2
	o.Platform = "ec2" // 16 cores per node: all 8 ranks on one node
	s, err := newSuperSetup(o.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := runShrinkContinue(s); err == nil {
		t.Fatal("single-node placement accepted for shrink-and-continue")
	}
}

func TestRunSupervisedRejectsUnknownPolicy(t *testing.T) {
	o := shrinkOpts("rd")
	o.Policy = "abandon-ship"
	if _, err := RunSupervised(o); err == nil || !strings.Contains(err.Error(), "abandon-ship") {
		t.Fatalf("unknown policy accepted: %v", err)
	}
}
