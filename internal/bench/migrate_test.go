package bench

import (
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"heterohpc/internal/core"
	"heterohpc/internal/fault"
	"heterohpc/internal/obs"
)

// warmPreemptSetup prepares a supervised setup whose plan preempts node 1
// with a warm notice: the reclaim lands at reclaimFrac of the clean virtual
// duration and the notice at noticeFrac, so the window between them is real
// virtual time the migrate policy can spend.
func warmPreemptSetup(t *testing.T, o FaultOptions, noticeFrac, reclaimFrac float64) *superSetup {
	t.Helper()
	s, err := newSuperSetup(o.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	s.plan = &fault.Plan{Seed: o.Seed, Events: []fault.Event{{
		Kind: fault.KindPreempt, Node: 1,
		At: reclaimFrac * s.cleanS, NoticeAt: noticeFrac * s.cleanS,
	}}}
	return s
}

func TestDecideRecoveryLadder(t *testing.T) {
	cases := []struct {
		name                    string
		window, copyCost        float64
		canShrink, canProvision bool
		want                    string
	}{
		{"no-survivors", 10, 0, false, true, "restart"},
		{"no-survivors-trumps-window", 0, 0, false, false, "restart"},
		{"no-notice", 0, 0, true, true, "shrink"},
		{"no-capacity", 10, 1, true, false, "shrink"},
		{"window-too-short", 1, 2, true, true, "shrink"},
		{"window-covers-copy", 2, 1, true, true, "migrate"},
		{"cold-but-noticed", 2, 0, true, true, "migrate"},
		// The boundary tie is pinned: migrate wins when the window
		// EXACTLY covers the priced evacuation; only a strictly more
		// expensive copy falls back to shrink.
		{"exact-fit", 1, 1, true, true, "migrate"},
		{"hair-over-boundary", 1, math.Nextafter(1, 2), true, true, "shrink"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dec := decideRecovery(c.window, c.copyCost, c.canShrink, c.canProvision)
			if dec.Verb != c.want {
				t.Fatalf("decideRecovery(%v, %v, %v, %v) = %q (%s), want %q",
					c.window, c.copyCost, c.canShrink, c.canProvision, dec.Verb, dec.Reason, c.want)
			}
			if dec.Reason == "" {
				t.Fatal("decision carries no reason")
			}
		})
	}
}

var (
	journalTRe    = regexp.MustCompile(`"t":[0-9.eE+-]+,`)
	journalRankRe = regexp.MustCompile(`"rank":(-?[0-9]+)`)
)

// rankEvents extracts the per-rank "step" and "solve" journal lines with the
// virtual timestamp stripped, in journal (deterministic total) order. The
// remaining bytes pin the numeric content: step indices, solver iteration
// counts, residual values and convergence flags.
func rankEvents(t *testing.T, r *obs.Run) map[string][]string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJournal(&buf); err != nil {
		t.Fatal(err)
	}
	out := map[string][]string{}
	for _, ln := range strings.Split(buf.String(), "\n") {
		if !strings.Contains(ln, `"kind":"solve"`) && !strings.Contains(ln, `"kind":"step"`) {
			continue
		}
		m := journalRankRe.FindStringSubmatch(ln)
		if m == nil {
			t.Fatalf("journal line without rank: %s", ln)
		}
		out[m[1]] = append(out[m[1]], journalTRe.ReplaceAllString(ln, ""))
	}
	return out
}

// solveTailAfterStep returns the solve lines that follow the "step" event
// for the given step number in one rank's event sequence.
func solveTailAfterStep(t *testing.T, evs []string, step int) []string {
	t.Helper()
	cut := -1
	for i, ev := range evs {
		if strings.Contains(ev, `"kind":"step"`) && strings.HasSuffix(ev, `"i1":`+strconv.Itoa(step)+`}`) {
			cut = i
		}
	}
	if cut < 0 {
		t.Fatalf("no step %d event in sequence of %d events", step, len(evs))
	}
	var tail []string
	for _, ev := range evs[cut+1:] {
		if strings.Contains(ev, `"kind":"solve"`) {
			tail = append(tail, ev)
		}
	}
	return tail
}

// TestMigrateContinuesBitIdentical is the core acceptance test for the
// proactive policy: a warm-noticed preemption migrates — drain, buddy
// evacuation, replacement, Grow — and the full-width continuation produces
// the exact solution bytes a fault-free run produces, with the post-restore
// journal tail (solver iterations, residual bits, convergence) matching the
// fault-free run's segment after the restore step.
func TestMigrateContinuesBitIdentical(t *testing.T) {
	o := shrinkOpts("rd")
	o.Policy = PolicyMigrate
	o.Obs = obs.NewRun()
	s := warmPreemptSetup(t, o, 0.6, 0.9)
	noticeAt := s.plan.Events[0].NoticeAt
	rep, st, err := runMigrate(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalRanks != o.Ranks || rep.Degraded {
		t.Fatalf("migrate finished on %d ranks (degraded %v), want the full %d", rep.FinalRanks, rep.Degraded, o.Ranks)
	}
	mg := rep.Migrate
	if mg == nil || mg.Migrations != 1 || mg.FallbackShrinks != 0 || mg.FallbackRestarts != 0 {
		t.Fatalf("migrate stats %+v, want exactly one migration and no fallbacks", mg)
	}
	if len(mg.ReplacedNodes) != 1 || mg.ReplacedNodes[0] != 1 {
		t.Fatalf("replaced nodes %v, want [1]", mg.ReplacedNodes)
	}
	if mg.RestoreStep < 1 {
		t.Fatalf("warm migration restored from step %d; a mirrored checkpoint was expected", mg.RestoreStep)
	}
	if mg.EvacuatedBlobs == 0 || mg.CopyBytes == 0 || mg.CopyS <= 0 {
		t.Fatalf("no shards evacuated in the window: %+v", mg)
	}
	if mg.WindowS <= 0 || mg.CopyS > mg.WindowS {
		t.Fatalf("window %.6fs did not cover the %.6fs evacuation", mg.WindowS, mg.CopyS)
	}
	if rep.WastedVirtualS <= 0 || rep.WastedVirtualS >= noticeAt {
		t.Fatalf("wasted %.3fs not in (0, notice %.3fs): only the span after the restore line is recomputed",
			rep.WastedVirtualS, noticeAt)
	}
	if rep.Shrink.Shrinks != 1 {
		t.Fatalf("migration shrinks the doomed node out exactly once, got %d", rep.Shrink.Shrinks)
	}

	// Fault-free comparator at the same width, from scratch, on a fresh
	// target, with its own journal.
	m, grid, mem, err := weakSetup(o.App, o.Ranks, o.PerRankN)
	if err != nil {
		t.Fatal(err)
	}
	comp := newShrinkApp(o.App, m, grid, o.Steps, o.Ranks)
	tg, err := core.NewTarget(o.Platform, o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cleanObs := obs.NewRun()
	result, af, err := tg.Attempt(core.JobSpec{
		Ranks: o.Ranks, RanksPerNode: o.RanksPerNode, App: comp, MemPerRankGB: mem, Obs: cleanObs,
	})
	if err != nil || af != nil {
		t.Fatalf("fault-free comparator failed: %v / %v", err, af)
	}
	if result == nil {
		t.Fatal("comparator returned no result")
	}

	// Solution bytes: the grown world restored the original decomposition,
	// so rank r owns the same block in both runs and every dof must agree
	// bit for bit.
	for rank := 0; rank < o.Ranks; rank++ {
		a, b := st.app.finalVals[rank], comp.finalVals[rank]
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("rank %d: %d vs %d final values", rank, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("rank %d dof %d: migrated %x, fault-free %x — not bit-identical",
					rank, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
		for i := range st.app.finalIDs[rank] {
			if st.app.finalIDs[rank][i] != comp.finalIDs[rank][i] {
				t.Fatalf("rank %d: ownership differs at slot %d", rank, i)
			}
		}
	}

	// Journal tail: per rank, the solve events after the restore step in
	// the fault-free run must reappear verbatim (minus virtual timestamps)
	// as the tail of the migrated run's solve events.
	migEvs, cleanEvs := rankEvents(t, o.Obs), rankEvents(t, cleanObs)
	for rank := 0; rank < o.Ranks; rank++ {
		key := strconv.Itoa(rank)
		want := solveTailAfterStep(t, cleanEvs[key], mg.RestoreStep)
		if len(want) == 0 {
			t.Fatalf("rank %d: fault-free run has no solves after step %d", rank, mg.RestoreStep)
		}
		var got []string
		for _, ev := range migEvs[key] {
			if strings.Contains(ev, `"kind":"solve"`) {
				got = append(got, ev)
			}
		}
		if len(got) < len(want) {
			t.Fatalf("rank %d: migrated run has %d solves, tail needs %d", rank, len(got), len(want))
		}
		got = got[len(got)-len(want):]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d: post-restore journal tail diverges at solve %d:\nmigrated   %s\nfault-free %s",
					rank, i, got[i], want[i])
			}
		}
	}
}

// TestMigrateWarmWastesLessThanShrink pins the waste theorem in the warm
// regime: when no checkpoint completes inside the notice window (the
// realistic shape — a two-minute notice is short against the checkpoint
// cadence), both policies roll back to the same line, so migrate's rollback
// (notice − line) is a strict subset of shrink's (reclaim − line). The
// notice is therefore placed in the same checkpoint interval as the
// reclaim; a window long enough to absorb a whole checkpoint would let
// shrink keep more work, which is not the regime the policy targets.
func TestMigrateWarmWastesLessThanShrink(t *testing.T) {
	o := shrinkOpts("rd")
	o.Policy = PolicyMigrate
	sm := warmPreemptSetup(t, o, 0.88, 0.9)
	plan := *sm.plan
	repM, _, err := runMigrate(sm)
	if err != nil {
		t.Fatal(err)
	}

	os := shrinkOpts("rd")
	ss, err := newSuperSetup(os.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	ss.plan = &plan
	repS, _, err := runShrinkContinue(ss)
	if err != nil {
		t.Fatal(err)
	}
	if repM.WastedVirtualS >= repS.WastedVirtualS {
		t.Fatalf("migrate wasted %.3fs, shrink %.3fs — acting at the notice must be strictly cheaper",
			repM.WastedVirtualS, repS.WastedVirtualS)
	}
	if repM.FinalRanks != 8 || repS.FinalRanks != 6 {
		t.Fatalf("final widths migrate=%d shrink=%d, want 8 and 6", repM.FinalRanks, repS.FinalRanks)
	}
}

func TestMigrateWastesStrictlyLessThanShrink(t *testing.T) {
	o := FaultOptions{
		App: "rd", Platform: "ec2", Ranks: 8, RanksPerNode: 2,
		PerRankN: 3, Steps: 4, Seed: 77, Preemptions: 1,
	}
	c, err := CompareRecovery(o)
	if err != nil {
		t.Fatal(err)
	}
	if c.Restart.Final == nil || c.Shrink.Final == nil || c.Migrate == nil || c.Migrate.Final == nil {
		t.Fatal("a policy failed to finish")
	}
	if c.Migrate.WastedVirtualS >= c.Shrink.WastedVirtualS {
		t.Fatalf("migrate wasted %.3fs, shrink %.3fs — migrate must be strictly cheaper when the window covers the copy",
			c.Migrate.WastedVirtualS, c.Shrink.WastedVirtualS)
	}
	if c.Migrate.FinalRanks != 8 || c.Shrink.FinalRanks != 6 {
		t.Fatalf("final widths migrate=%d shrink=%d, want 8 and 6", c.Migrate.FinalRanks, c.Shrink.FinalRanks)
	}
	if c.Migrate.Migrate.Migrations == 0 {
		t.Fatalf("noticed preemption did not migrate: %+v", c.Migrate.Migrate)
	}
	if len(c.Migrate.Plan.Events) != 1 || c.Migrate.Plan.Events[0] != c.Shrink.Plan.Events[0] {
		t.Fatalf("policies did not face the same plan: %v vs %v", c.Migrate.Plan, c.Shrink.Plan)
	}
	out := FormatRecoveryComparison(c)
	for _, want := range []string{PolicyRestart, PolicyShrink, PolicyMigrate, "wasted virtual"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
}

func TestMigrateFallsBackWhenWindowTooShort(t *testing.T) {
	o := shrinkOpts("rd")
	o.Policy = PolicyMigrate
	s, err := newSuperSetup(o.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	at := 0.8 * s.cleanS
	s.plan = &fault.Plan{Seed: o.Seed, Events: []fault.Event{{
		Kind: fault.KindPreempt, Node: 1, At: at, NoticeAt: at - 1e-9,
	}}}
	rep, _, err := runMigrate(s)
	if err != nil {
		t.Fatal(err)
	}
	mg := rep.Migrate
	if mg.Migrations != 0 || mg.FallbackShrinks != 1 {
		t.Fatalf("window of 1ns should force the shrink fallback, got %+v", mg)
	}
	if !rep.Degraded || rep.FinalRanks != 6 {
		t.Fatalf("fallback did not degrade: %d ranks, degraded %v", rep.FinalRanks, rep.Degraded)
	}
	if mg.WindowS <= 0 {
		t.Fatal("the notice window was observed even though it was unusable; WindowS must record it")
	}
	if mg.EvacuatedBlobs != 0 || mg.CopyBytes != 0 {
		t.Fatalf("nothing fits in a 1ns window, yet %d blob(s) / %d bytes evacuated", mg.EvacuatedBlobs, mg.CopyBytes)
	}
}

func TestMigrateFallsBackReactiveOnCrash(t *testing.T) {
	o := shrinkOpts("rd")
	o.Policy = PolicyMigrate
	s := midRunSetup(t, o, 0.6)
	rep, _, err := runMigrate(s)
	if err != nil {
		t.Fatal(err)
	}
	mg := rep.Migrate
	if mg.Migrations != 0 || mg.FallbackShrinks != 1 || mg.WindowS != 0 {
		t.Fatalf("an unannounced crash must take the reactive path: %+v", mg)
	}
	if !rep.Degraded || rep.FinalRanks != 6 || rep.Shrink.Shrinks != 1 {
		t.Fatalf("crash fallback shape wrong: %d ranks, degraded %v, %d shrinks",
			rep.FinalRanks, rep.Degraded, rep.Shrink.Shrinks)
	}
}

func TestMigrateRecoveryDeterministic(t *testing.T) {
	o := FaultOptions{
		App: "rd", Platform: "ec2", Ranks: 8, RanksPerNode: 2,
		PerRankN: 3, Steps: 4, Seed: 77, Preemptions: 1, Policy: PolicyMigrate,
	}
	a, err := RunSupervised(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSupervised(o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatRecovery(a), FormatRecovery(b); got != want {
		t.Fatalf("migrate recovery not deterministic:\n--- run 1:\n%s\n--- run 2:\n%s", got, want)
	}
}

func TestMigratePolicyNeedsTwoNodes(t *testing.T) {
	o := shrinkOpts("rd")
	o.Policy = PolicyMigrate
	o.RanksPerNode = 0
	o.Platform = "ec2" // 16 cores per node: all 8 ranks on one node
	if _, err := RunSupervised(o); err == nil {
		t.Fatal("single-node placement accepted for migrate")
	}
}
