package bench

import (
	"math"
	"strings"
	"testing"

	"heterohpc/internal/fault"
)

// The headline guarantee of the supervisor: a run killed by injected
// crashes restores from checkpoints and converges to the same solution as
// the clean run, within solver tolerance.
func TestSupervisedConvergesDespiteCrashes(t *testing.T) {
	o := FaultOptions{
		App: "rd", Platform: "puma", Ranks: 8, PerRankN: 6, Steps: 4,
		Seed: 7, Crashes: 2,
	}
	rep, err := RunSupervised(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts < 2 {
		t.Fatalf("only %d attempt(s); the injected crashes never fired", rep.Attempts)
	}
	if rep.Degraded || rep.FinalRanks != 8 {
		t.Fatalf("spares should have kept the job at full size: %+v", rep)
	}
	cleanErr := rep.Clean.Metrics["max_err"]
	finalErr := rep.Final.Metrics["max_err"]
	if math.Abs(cleanErr-finalErr) > 1e-10 {
		t.Errorf("recovered max_err %v differs from clean %v", finalErr, cleanErr)
	}
	if finalErr > 1e-4 {
		t.Errorf("recovered solution wrong: max_err %v", finalErr)
	}
	if rep.WastedVirtualS <= 0 || rep.BackoffS <= 0 {
		t.Errorf("overhead not accounted: wasted %v backoff %v", rep.WastedVirtualS, rep.BackoffS)
	}
	if rep.RecoveryCostUSD <= 0 {
		t.Errorf("failed attempts cost nothing: %v", rep.RecoveryCostUSD)
	}
	kinds := map[string]int{}
	for _, d := range rep.Decisions {
		kinds[d.Kind]++
	}
	for _, k := range []string{"failure", "provision", "restore", "backoff", "complete"} {
		if kinds[k] == 0 {
			t.Errorf("decision log lacks %q: %v", k, kinds)
		}
	}
}

// Equal seeds must replay the identical recovery, decision for decision.
func TestSupervisedDeterministicForEqualSeeds(t *testing.T) {
	o := FaultOptions{
		App: "rd", Platform: "ec2", Ranks: 8, PerRankN: 6, Steps: 4,
		Seed: 11, Crashes: 1, Preemptions: 1,
	}
	r1, err := RunSupervised(o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSupervised(o)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Attempts != r2.Attempts || r1.WastedVirtualS != r2.WastedVirtualS ||
		r1.RecoveryCostUSD != r2.RecoveryCostUSD || r1.FinalRanks != r2.FinalRanks {
		t.Fatalf("recoveries differ:\n%+v\n%+v", r1, r2)
	}
	d1, d2 := r1.Decisions, r2.Decisions
	if len(d1) != len(d2) {
		t.Fatalf("decision counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d differs: %v vs %v", i, d1[i], d2[i])
		}
	}
	if r1.Final.Metrics["max_err"] != r2.Final.Metrics["max_err"] {
		t.Fatal("recovered solutions differ across replays")
	}
}

// With no spares and no market, losing a node degrades the job onto the
// survivors at the next smaller cube instead of failing.
func TestSupervisedDegradesWithoutReplacement(t *testing.T) {
	// puma packs 4 ranks per node -> 27 ranks on 7 nodes; losing one leaves
	// room for 24, so the supervisor must re-partition onto 8 ranks.
	o := FaultOptions{
		App: "rd", Platform: "puma", Ranks: 27, PerRankN: 5, Steps: 3,
		Seed: 5, Crashes: 1, SpareNodes: -1, // negative: pool exhausted
	}
	rep, err := RunSupervised(o)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.FinalRanks >= 27 {
		t.Fatalf("expected graceful degradation, got %d ranks (degraded=%v)",
			rep.FinalRanks, rep.Degraded)
	}
	if rep.FinalRanks != 8 {
		t.Errorf("degraded to %d ranks, want the next cube 8", rep.FinalRanks)
	}
	if rep.Final.Metrics["max_err"] > 1e-4 {
		t.Errorf("degraded solution wrong: max_err %v", rep.Final.Metrics["max_err"])
	}
}

// A supervised NS run exercises the WriteNSE/ReadNSE containers end to end.
func TestSupervisedNSRecovers(t *testing.T) {
	o := FaultOptions{
		App: "ns", Platform: "ec2", Ranks: 8, PerRankN: 4, Steps: 3,
		Seed: 3, Crashes: 1,
	}
	rep, err := RunSupervised(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts < 2 {
		t.Fatalf("crash never fired (%d attempts)", rep.Attempts)
	}
	if diff := math.Abs(rep.Clean.Metrics["vel_max_err"] - rep.Final.Metrics["vel_max_err"]); diff > 1e-10 {
		t.Errorf("recovered NS error drifted by %v", diff)
	}
	out := FormatRecovery(rep)
	for _, want := range []string{"supervisor decisions", "recovered", "wasted virtual"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatRecovery lacks %q:\n%s", want, out)
		}
	}
}

// A plan whose single fatal event lies beyond the clean duration never
// fires; the supervisor should report a one-attempt clean pass-through.
func TestSupervisedCleanPassThrough(t *testing.T) {
	plan := &fault.Plan{Seed: 1, Events: []fault.Event{
		{Kind: fault.KindCrash, Node: 0, At: 1e9},
	}}
	rep, err := RunSupervised(FaultOptions{
		App: "rd", Platform: "puma", Ranks: 8, PerRankN: 5, Steps: 3,
		Seed: 9, Plan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 1 || rep.WastedVirtualS != 0 || rep.RecoveryCostUSD != 0 {
		t.Fatalf("clean pass-through mis-accounted: %+v", rep)
	}
}

func TestLargestCubeAtMost(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {7, 1}, {8, 8}, {26, 8}, {27, 27}, {28, 27}, {1000, 1000}, {1001, 1000},
	}
	for _, c := range cases {
		if got := largestCubeAtMost(c.n); got != c.want {
			t.Errorf("largestCubeAtMost(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDegradedShape(t *testing.T) {
	cases := []struct{ cur, want, expect int }{
		{8, 7, 1},        // largest cube <= 7 is 1
		{27, 26, 8},      // one node short of a cube drops to the next cube
		{8, 8, 1},        // target not smaller than current: fall back below cur
		{1000, 999, 729}, // 9^3
		{27, 0, 8},       // nonsense target still degrades below cur
		{1, 0, 0},        // nowhere to go
	}
	for _, c := range cases {
		if got := degradedShape(c.cur, c.want); got != c.expect {
			t.Errorf("degradedShape(%d, %d) = %d, want %d", c.cur, c.want, got, c.expect)
		}
	}
}
