package bench

// Proactive preemption recovery: instead of waiting for the spot market to
// reclaim an instance and then reacting (restart or shrink), the supervisor
// acts on the two-minute interruption notice. It drains the job at the
// notice, prices an evacuation of the doomed node's diskless checkpoint
// shards to their buddy nodes, and — when the window covers the copy and a
// replacement can be provisioned — shrinks the dead node out and grows a
// replacement back in (mp.World.Grow), resuming at full width. The
// elasticity driver decides migrate-vs-shrink-vs-restart per event, so the
// policy degrades gracefully to the reactive paths and can never hang.

import (
	"fmt"

	"heterohpc/internal/core"
	"heterohpc/internal/fault"
	"heterohpc/internal/mp"
	"heterohpc/internal/partition"
	"heterohpc/internal/spot"
	"heterohpc/internal/trace"
)

// MigrateStats itemises what the proactive migrate policy did with each
// fatal event (nil on reports from the other policies).
type MigrateStats struct {
	// Migrations counts completed notice-window migrations (drain,
	// evacuate, shrink dead node out, grow replacement in).
	Migrations int
	// FallbackShrinks and FallbackRestarts count fatal events the
	// elasticity driver routed to the reactive paths: unannounced crashes,
	// windows too short for the evacuation, exhausted capacity, or no
	// survivors at all.
	FallbackShrinks, FallbackRestarts int
	// ReplacedNodes lists the migrated-away nodes in the fault plan's
	// original numbering, in event order.
	ReplacedNodes []int
	// EvacuatedBlobs, CopyBytes and CopyS measure the notice-window buddy
	// evacuation: checkpoint shards copied off doomed nodes, their bytes,
	// and their total priced transfer time.
	EvacuatedBlobs int
	CopyBytes      int64
	CopyS          float64
	// WindowS sums the notice windows (reclaim − drain) of all noticed
	// events, whether or not they migrated.
	WindowS float64
	// RestoreStep is the checkpoint step the last migration resumed from
	// (0 for a cold migration before the first checkpoint).
	RestoreStep int
}

// elasticityDecision is the driver's verdict for one fatal event.
type elasticityDecision struct {
	Verb   string // "migrate", "shrink" or "restart"
	Reason string
}

// decideRecovery is the elasticity driver: given the notice window a fatal
// event leaves after the drain, the priced evacuation cost, and what the
// run can still do (shrinking needs surviving nodes, migrating needs
// replacement capacity), it picks the cheapest recovery that cannot hang.
// The ladder is strict: migrate when the window covers the copy and a
// replacement exists, shrink when it does not, restart when not even
// survivors remain.
func decideRecovery(windowS, copyCostS float64, canShrink, canProvision bool) elasticityDecision {
	switch {
	case !canShrink:
		return elasticityDecision{Verb: "restart", Reason: "no survivor node to continue on"}
	case windowS <= 0:
		return elasticityDecision{Verb: "shrink", Reason: "failure carried no usable notice window"}
	case !canProvision:
		return elasticityDecision{Verb: "shrink", Reason: "no replacement capacity (market or spares)"}
	case copyCostS > windowS:
		return elasticityDecision{Verb: "shrink",
			Reason: fmt.Sprintf("notice window %.3fs shorter than the %.3fs evacuation", windowS, copyCostS)}
	default:
		return elasticityDecision{Verb: "migrate",
			Reason: fmt.Sprintf("notice window %.3fs covers the %.3fs evacuation", windowS, copyCostS)}
	}
}

// doomedRanks returns the ranks living on node, ascending.
func doomedRanks(topo mp.Topology, node int) []int {
	var rs []int
	for r, n := range topo.NodeOf {
		if n == node {
			rs = append(rs, r)
		}
	}
	return rs
}

// runMigrate is the proactive migration recovery loop.
func runMigrate(s *superSetup) (*RecoveryReport, *shrinkRunState, error) {
	o := s.o
	tg, p := s.tg, s.tg.Platform
	if s.nodes < 2 {
		return nil, nil, fmt.Errorf("bench: migrate needs at least 2 nodes for buddy evacuation (placement has %d); lower RanksPerNode or raise Ranks",
			s.nodes)
	}
	plan := s.plan
	fatals := plan.Failures()
	degrades := plan.Degradations()
	maxAttempts := o.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = len(fatals) + 3
	}

	mg := &MigrateStats{}
	rep := &RecoveryReport{
		Platform: o.Platform, App: o.App, Policy: PolicyMigrate,
		Ranks: o.Ranks, FinalRanks: o.Ranks,
		Plan: plan, Clean: s.clean, CleanVirtualS: s.cleanS,
		Shrink:  &ShrinkStats{},
		Migrate: mg,
	}
	var rec trace.Recorder
	rec.Observe(o.Obs)
	gobs := o.Obs.Global()

	var market *spot.Market
	if p.SpotPerNodeHour > 0 {
		market = spot.NewMarket(o.Seed+2, p.CostPerNodeHour)
		market.Observe(o.Obs)
	}
	spares := o.SpareNodes
	var replacementPremiumPerHour float64

	m, grid, mem, err := weakSetup(o.App, o.Ranks, o.PerRankN)
	if err != nil {
		return nil, nil, err
	}
	topo, err := mp.BlockTopology(o.Ranks, s.cpn)
	if err != nil {
		return nil, nil, err
	}
	ms := newMirrorStore(topo)
	app := newShrinkApp(o.App, m, grid, o.Steps, o.Ranks)
	app.mirror = ms
	app.meter = newBuddyMeter(o.Ranks)

	// nodeMap translates the plan's original node numbering into the
	// current world's; shrinks compose into it, grows append nodes the plan
	// never targets (a replacement is a different instance).
	nodeMap := make([]int, s.nodes)
	for i := range nodeMap {
		nodeMap[i] = i
	}
	var world *mp.World // nil: launch via Attempt; else resume the re-formed world
	curRanks := o.Ranks
	state := &shrinkRunState{grid: grid, ranks: curRanks, app: app}

	foldGen := func() {
		if app.meter != nil {
			over, nbytes := app.meter.fold()
			rep.Shrink.BuddyOverheadS += over
			rep.Shrink.BuddyBytes += nbytes
		}
		rep.Shrink.AgreeS += maxOf(app.agreeS)
		rep.Shrink.RedistributeS += maxOf(app.redistS)
	}

	for attempt := 1; attempt <= maxAttempts; attempt++ {
		rep.Attempts = attempt

		// Drop scheduled fatals aimed at nodes that no longer exist.
		for len(fatals) > 0 {
			if ev := fault.Remap(fatals[:1], nodeMap); len(ev) == 0 {
				rec.Record(fatals[0].At, "drop", "scheduled %s targets node %d, already lost; dropping it",
					fatals[0].Kind, fatals[0].Node)
				fatals = fatals[1:]
				continue
			}
			break
		}
		events := fault.Remap(degrades, nodeMap)
		var reclaimAt float64
		proactive := false
		if len(fatals) > 0 {
			armed := fault.Remap(fatals[:1], nodeMap)[0]
			reclaimAt = armed.At
			if armed.Kind == fault.KindPreempt {
				rec.Record(armed.NoticeAt, "notice",
					"spot interruption notice for node %d (reclaim at t=%.1fs)", fatals[0].Node, armed.At)
				if armed.NoticeAt < armed.At {
					// Proactive drain: stop the world at the notice rather
					// than the reclaim, leaving the window for the
					// evacuate/provision/grow sequence.
					proactive = true
					armed.At = armed.NoticeAt
				}
			}
			events = append(events, armed)
		}

		var result *core.Report
		var af *core.AttemptFailure
		if world == nil {
			result, af, err = tg.Attempt(core.JobSpec{
				Ranks: curRanks, RanksPerNode: o.RanksPerNode, App: app,
				SkipSteps: o.SkipSteps, MemPerRankGB: mem, Faults: events, Obs: o.Obs,
			})
		} else {
			result, af, err = tg.ResumeAttempt(world, app, o.SkipSteps, events)
		}
		if err != nil {
			return nil, nil, err
		}
		foldGen()
		if app.suspect != nil && app.agreedDead != nil {
			deadList := []int{}
			for r, d := range app.agreedDead {
				if d {
					deadList = append(deadList, r)
				}
			}
			rec.Record(0, "agree", "survivors agreed on dead ranks %v in %.4fs (max over ranks)",
				deadList, maxOf(app.agreeS))
		}
		if af == nil {
			rep.Final = result
			rep.FinalRanks = curRanks
			rep.FinalVirtualS = virtualDuration(result)
			if world != nil {
				rep.MakespanS = world.MaxVirtualTime()
			} else {
				rep.MakespanS = rep.FinalVirtualS
			}
			rep.RecoveryCostUSD += replacementPremiumPerHour * rep.FinalVirtualS / 3600
			rep.Shrink.Survivors = curRanks
			rep.Shrink.Grid = app.grid
			rec.Record(rep.MakespanS, "complete", "attempt %d finished on %d ranks (grid %dx%dx%d)",
				attempt, curRanks, app.grid[0], app.grid[1], app.grid[2])
			rep.Decisions = rec.Decisions()
			return rep, state, nil
		}

		if fault.Classify(af) != fault.ClassNodeLoss {
			rep.Decisions = rec.Decisions()
			return nil, nil, fmt.Errorf("bench: unrecoverable %v failure: %w", fault.Classify(af), af)
		}
		stopAt := af.At
		curTopo := af.World.Topology()
		origNode := -1
		for on, cn := range nodeMap {
			if cn == af.Node {
				origNode = on
			}
		}
		kind := "crash"
		if len(fatals) > 0 && fatals[0].Kind == fault.KindPreempt {
			kind = "preemption"
		}
		if proactive {
			rec.Record(stopAt, "failure", "%s drained node %d at the notice t=%.1fs (attempt %d, reclaim at t=%.1fs)",
				kind, origNode, stopAt, attempt, reclaimAt)
		} else {
			rec.Record(stopAt, "failure", "%s killed node %d at t=%.1fs (attempt %d): %v",
				kind, origNode, stopAt, attempt, fault.Classify(af))
		}
		if len(fatals) > 0 {
			fatals = fatals[1:]
		}

		// Price the evacuation the window would have to absorb: the doomed
		// ranks' restore-line shards re-mirrored to their buddies, serialised
		// through the doomed node's NIC. The restore line is taken while the
		// node is still alive — that is the whole point of acting at the
		// notice.
		doomed := doomedRanks(curTopo, af.Node)
		var window, copyCost float64
		line, lineAtS := -1, 0.0
		if proactive {
			window = reclaimAt - stopAt
			mg.WindowS += window
			line, lineAtS = ms.line(o.Steps - 1)
			if line >= 1 {
				for _, dr := range doomed {
					if sn, ok := ms.snapAt(dr, line); ok && ms.buddy[dr] >= 0 {
						copyCost += af.World.PriceBytes(dr, ms.buddy[dr], len(sn.blob))
					}
				}
			}
		}
		canShrink := curTopo.NNodes() >= 2
		canProvision := market != nil || spares > 0
		dec := decideRecovery(window, copyCost, canShrink, canProvision)
		gobs.MigrateDecision(stopAt, dec.Verb, window, copyCost)
		detail := dec.Reason
		if market != nil {
			detail = fmt.Sprintf("%s; spot last ticked at $%.3f/h", detail, market.Price())
		}
		rec.Record(stopAt, "migrate-decision", "%s for node %d: %s", dec.Verb, origNode, detail)

		switch dec.Verb {
		case "migrate":
			// Evacuate inside the window: re-mirror the doomed ranks' line
			// shards to their buddies as priced traffic, so the copies are
			// off-node before the reclaim.
			evacAt := stopAt
			evacN := 0
			if line >= 1 {
				for _, dr := range doomed {
					if sn, ok := ms.snapAt(dr, line); ok && ms.buddy[dr] >= 0 {
						evacAt += af.World.PriceBytes(dr, ms.buddy[dr], len(sn.blob))
						ms.putBuddy(dr, line, evacAt, sn.blob)
						evacN++
						mg.CopyBytes += int64(len(sn.blob))
					}
				}
			}
			mg.EvacuatedBlobs += evacN
			mg.CopyS += copyCost
			rec.Record(stopAt, "drain", "notice window %.1fs: drained in-flight collectives, evacuated %d shard(s) in %.4fs",
				window, evacN, copyCost)

			// Provision the replacement inside the same window.
			deadGroup := curTopo.GroupOfNode[af.Node]
			switch {
			case market != nil:
				bid := o.SpotBidFraction * p.CostPerNodeHour
				repl, err := market.AcquireMix(1, bid, 1, 3)
				if err != nil {
					return nil, nil, err
				}
				nd := repl.Nodes[0]
				if nd.Spot {
					rec.Record(stopAt, "provision", "replacement spot instance at $%.3f/h (bid $%.3f)",
						nd.PricePerHour, bid)
				} else {
					rec.Record(stopAt, "provision", "spot market could not fill the bid; on-demand replacement at $%.2f/h — the paper's forced mix",
						nd.PricePerHour)
				}
				if nd.PricePerHour > p.SpotPerNodeHour {
					replacementPremiumPerHour += nd.PricePerHour - p.SpotPerNodeHour
				}
			default:
				spares--
				rec.Record(stopAt, "provision", "cold spare replaces node %d (%d spare(s) left)",
					origNode, spares)
			}

			// The reclaim takes the node's memory; then re-form the world
			// around the survivors plus the replacement.
			ms.loseNode(af.Node)
			sr, err := af.World.Shrink()
			if err != nil {
				return nil, nil, err
			}
			survivors := sr.World.Size()
			rep.Shrink.Shrinks++
			rep.Shrink.RevokedMsgs += sr.Revoked
			rep.Shrink.DeadNodes = append(rep.Shrink.DeadNodes, origNode)
			gw, err := sr.World.Grow([]int{len(sr.DeadRanks)}, []int{deadGroup}, evacAt)
			if err != nil {
				return nil, nil, err
			}
			mg.Migrations++
			mg.ReplacedNodes = append(mg.ReplacedNodes, origNode)
			gobs.WorldGrow(evacAt, survivors, gw.World.Size(), gw.NewNodes[0])
			rec.Record(evacAt, "world-grow", "world grew %d -> %d ranks: replacement joins as node %d at t=%.1fs",
				survivors, gw.World.Size(), gw.NewNodes[0], evacAt)

			// Only the span after the restore line is recomputed; acting at
			// the notice (instead of the reclaim) is what keeps it short.
			wasted := stopAt
			if line >= 1 {
				wasted = stopAt - lineAtS
			}
			rep.WastedVirtualS += wasted
			rep.RecoveryCostUSD += tg.Billing.JobCost(wasted, curRanks)

			newGrid, err := partition.BalancedGrid(curRanks, m.Nx, m.Ny, m.Nz)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: cannot repartition after grow: %w", err)
			}
			nextApp := newShrinkApp(o.App, m, newGrid, o.Steps, curRanks)
			state.grid = newGrid
			state.ranks = curRanks
			state.app = nextApp
			if line >= 1 {
				rec.Record(evacAt, "restore", "continuation resumes from the evacuated checkpoint after step %d (rollback %.3fs)",
					line, wasted)
				rep.Shrink.RestoreStep = line
				mg.RestoreStep = line
				// Grown-world rank -> pre-drain rank: survivors map through
				// the shrink, the joiners hold nothing.
				toOld := make([]int, gw.World.Size())
				for nr := range toOld {
					if nr < len(sr.NewToOld) {
						toOld[nr] = sr.NewToOld[nr]
					} else {
						toOld[nr] = -1
					}
				}
				heldRD, heldNS, err := heldFromMirror(o.App, ms, toOld, af.Node, line)
				if err != nil {
					return nil, nil, err
				}
				nextApp.heldRD, nextApp.heldNS = heldRD, heldNS
				state.lastHeldRD, state.lastHeldNS = heldRD, heldNS
			} else {
				rec.Record(evacAt, "restore", "no checkpoint preceded the notice; the full-width world restarts the stepping from scratch (cold migration)")
				rep.Shrink.RestoreStep = 0
				mg.RestoreStep = 0
			}

			// The continuation opens with the agreement collective over the
			// pre-drain rank space.
			suspect := make([]bool, curRanks)
			for _, d := range sr.DeadRanks {
				suspect[d] = true
			}
			nextApp.suspect = suspect

			newTopo := gw.World.Topology()
			ms = newMirrorStore(newTopo)
			nextApp.mirror = ms
			nextApp.meter = newBuddyMeter(curRanks)

			for on := range nodeMap {
				if nodeMap[on] >= 0 {
					nodeMap[on] = sr.OldToNewNode[nodeMap[on]]
				}
			}
			gw.World.Observe(o.Obs)
			world = gw.World
			app = nextApp
			// curRanks is unchanged: the width was restored, not degraded.

		case "shrink":
			// Reactive fallback: the shrink-and-continue sequence, exactly
			// as PolicyShrink runs it.
			mg.FallbackShrinks++
			ms.loseNode(af.Node)
			line, lineAtS := ms.line(o.Steps - 1)
			sr, err := af.World.Shrink()
			if err != nil {
				return nil, nil, err
			}
			rep.Shrink.Shrinks++
			rep.Shrink.RevokedMsgs += sr.Revoked
			rep.Shrink.DeadNodes = append(rep.Shrink.DeadNodes, origNode)
			survivors := sr.World.Size()
			rec.Record(stopAt, "shrink", "world shrunk %d -> %d ranks (%d pending message(s) revoked)",
				curRanks, survivors, sr.Revoked)

			wasted := stopAt
			if line >= 1 {
				wasted = stopAt - lineAtS
			}
			rep.WastedVirtualS += wasted
			rep.RecoveryCostUSD += tg.Billing.JobCost(wasted, curRanks)

			newGrid, err := partition.BalancedGrid(survivors, m.Nx, m.Ny, m.Nz)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: cannot repartition after shrink: %w", err)
			}
			nextApp := newShrinkApp(o.App, m, newGrid, o.Steps, survivors)
			state.grid = newGrid
			state.ranks = survivors
			state.app = nextApp
			if line >= 1 {
				rec.Record(stopAt, "restore", "survivors resume from the mirrored checkpoint after step %d (rollback %.3fs)",
					line, wasted)
				rep.Shrink.RestoreStep = line
				heldRD, heldNS, err := heldFromMirror(o.App, ms, sr.NewToOld, af.Node, line)
				if err != nil {
					return nil, nil, err
				}
				nextApp.heldRD, nextApp.heldNS = heldRD, heldNS
				state.lastHeldRD, state.lastHeldNS = heldRD, heldNS
			} else {
				rec.Record(stopAt, "restore", "no common mirrored step survived; survivors restart the stepping from scratch (cold shrink)")
				rep.Shrink.RestoreStep = 0
			}
			suspect := make([]bool, curRanks)
			for _, d := range sr.DeadRanks {
				suspect[d] = true
			}
			nextApp.suspect = suspect
			newTopo := sr.World.Topology()
			ms = newMirrorStore(newTopo)
			nextApp.mirror = ms
			nextApp.meter = newBuddyMeter(survivors)
			if newTopo.NNodes() < 2 {
				rec.Record(stopAt, "unprotected", "single node left; diskless mirroring has no off-node partner")
			}
			for on := range nodeMap {
				if nodeMap[on] >= 0 {
					nodeMap[on] = sr.OldToNewNode[nodeMap[on]]
				}
			}
			sr.World.Observe(o.Obs)
			world = sr.World
			app = nextApp
			curRanks = survivors
			rep.Degraded = true

		default: // restart
			// Last rung of the ladder: nothing survived to continue on, so
			// relaunch the current shape from scratch. Every nodeMap entry
			// pointed at the lost world, so remaining scheduled fatals are
			// dropped on the next pass rather than aimed at fresh instances.
			mg.FallbackRestarts++
			rep.WastedVirtualS += stopAt
			rep.RecoveryCostUSD += tg.Billing.JobCost(stopAt, curRanks)
			rec.Record(stopAt, "restart", "cold restart at %d ranks (grid %dx%dx%d)",
				curRanks, state.grid[0], state.grid[1], state.grid[2])
			for on := range nodeMap {
				nodeMap[on] = -1
			}
			freshTopo, err := mp.BlockTopology(curRanks, s.cpn)
			if err != nil {
				return nil, nil, err
			}
			ms = newMirrorStore(freshTopo)
			nextApp := newShrinkApp(o.App, m, state.grid, o.Steps, curRanks)
			nextApp.mirror = ms
			nextApp.meter = newBuddyMeter(curRanks)
			state.app = nextApp
			world = nil
			app = nextApp
		}
	}
	rep.Decisions = rec.Decisions()
	return nil, nil, fmt.Errorf("bench: gave up after %d attempts (%d fault(s) outstanding)",
		maxAttempts, len(fatals))
}
