package bench

// Proactive preemption recovery: instead of waiting for the spot market to
// reclaim an instance and then reacting (restart or shrink), the supervisor
// acts on the two-minute interruption notice. It drains the job at the
// notice, prices an evacuation of the doomed node's diskless checkpoint
// shards to their buddy nodes, and — when the window covers the copy and a
// replacement can be provisioned — shrinks the dead node out and grows a
// replacement back in (mp.World.Grow), resuming at full width. The
// elasticity driver decides migrate-vs-shrink-vs-restart per event, so the
// policy degrades gracefully to the reactive paths and can never hang.
//
// Correlated storms extend the single-event loop with a recovery ARBITER:
// when several preemption notices land inside one notice window (a
// price-spike reclamation wave), the arbiter coalesces them into ONE
// recovery point — one drain, one evacuation (re-homing shards whose buddy
// node is itself doomed onto surviving refugees), one multi-node shrink,
// one grow — so overlapping events can never double-restore. A second
// notice for a slot already doomed in the same window is a cascade: the
// replacement being provisioned for it is reclaimed mid-flight, and the
// arbiter re-plans by acquiring another. On top sits an elastic
// AUTOSCALER: AcquireMix exhaustion (a capped market) is retried with
// seeded exponential backoff instead of failing the run, and — with
// FaultOptions.Regrow — a recovery point on a previously-degraded world
// also re-provisions the missing width, growing back to the submitted
// size. The fallback ladder stays monotone: a migrate whose provisioning
// ultimately fails downgrades to shrink, never back up.

import (
	"errors"
	"fmt"

	"heterohpc/internal/core"
	"heterohpc/internal/fault"
	"heterohpc/internal/mp"
	"heterohpc/internal/partition"
	"heterohpc/internal/provision"
	"heterohpc/internal/spot"
	"heterohpc/internal/trace"
)

// MigrateStats itemises what the proactive migrate policy did with each
// fatal event (nil on reports from the other policies).
type MigrateStats struct {
	// Migrations counts completed notice-window migrations (drain,
	// evacuate, shrink dead node out, grow replacement in).
	Migrations int
	// FallbackShrinks and FallbackRestarts count fatal events the
	// elasticity driver routed to the reactive paths: unannounced crashes,
	// windows too short for the evacuation, exhausted capacity, or no
	// survivors at all.
	FallbackShrinks, FallbackRestarts int
	// ReplacedNodes lists the migrated-away nodes in the fault plan's
	// original numbering, in event order.
	ReplacedNodes []int
	// EvacuatedBlobs, CopyBytes and CopyS measure the notice-window buddy
	// evacuation: checkpoint shards copied off doomed nodes, their bytes,
	// and their total priced transfer time.
	EvacuatedBlobs int
	CopyBytes      int64
	CopyS          float64
	// WindowS sums the notice windows (reclaim − drain) of all noticed
	// events, whether or not they migrated.
	WindowS float64
	// RestoreStep is the checkpoint step the last migration resumed from
	// (0 for a cold migration before the first checkpoint).
	RestoreStep int
	// Coalesced counts fatal events the arbiter folded into an earlier
	// event's recovery point (beyond the first of each correlated group);
	// Replans counts cascade re-plans, where the replacement being
	// provisioned for a slot was itself reclaimed inside the same window.
	Coalesced, Replans int
	// ProvisionRetries counts the autoscaler's backoff retries after
	// AcquireMix exhaustion; RegrownNodes counts the deficit nodes it
	// re-grew beyond one-for-one replacements (FaultOptions.Regrow).
	ProvisionRetries int
	RegrownNodes     int
}

// elasticityDecision is the driver's verdict for one fatal event.
type elasticityDecision struct {
	Verb   string // "migrate", "shrink" or "restart"
	Reason string
}

// decideRecovery is the elasticity driver: given the notice window a fatal
// event leaves after the drain, the priced evacuation cost, and what the
// run can still do (shrinking needs surviving nodes, migrating needs
// replacement capacity), it picks the cheapest recovery that cannot hang.
// The ladder is strict: migrate when the window covers the copy and a
// replacement exists, shrink when it does not, restart when not even
// survivors remain.
//
// The window boundary is pinned: the shrink guard is strictly
// copyCostS > windowS, so a window EXACTLY equal to the priced evacuation
// migrates — the last byte lands at the reclaim instant, and the reclaim
// takes memory that has already been copied. Equality therefore favours
// the cheaper verb, and the exact-boundary case is covered by a table
// test.
func decideRecovery(windowS, copyCostS float64, canShrink, canProvision bool) elasticityDecision {
	switch {
	case !canShrink:
		return elasticityDecision{Verb: "restart", Reason: "no survivor node to continue on"}
	case windowS <= 0:
		return elasticityDecision{Verb: "shrink", Reason: "failure carried no usable notice window"}
	case !canProvision:
		return elasticityDecision{Verb: "shrink", Reason: "no replacement capacity (market or spares)"}
	case copyCostS > windowS:
		return elasticityDecision{Verb: "shrink",
			Reason: fmt.Sprintf("notice window %.3fs shorter than the %.3fs evacuation", windowS, copyCostS)}
	default:
		return elasticityDecision{Verb: "migrate",
			Reason: fmt.Sprintf("notice window %.3fs covers the %.3fs evacuation", windowS, copyCostS)}
	}
}

// doomedRanks returns the ranks living on node, ascending.
func doomedRanks(topo mp.Topology, node int) []int {
	var rs []int
	for r, n := range topo.NodeOf {
		if n == node {
			rs = append(rs, r)
		}
	}
	return rs
}

// regrowSetupS prices the software instantiation of a deficit node the
// autoscaler grows beyond a one-for-one replacement: the platform's
// preconditioned image (§VI-D) reduces the whole stack to one launch step
// of the provisioning planner. Replacements inside a notice window pay
// nothing extra — the window itself is the budget — but cold capacity
// joining a degraded world is new machinery and boots the image first.
func regrowSetupS(platform string) float64 {
	st, err := provision.PlatformState(platform)
	if err != nil {
		return 0 // platform outside the paper's porting study: free join
	}
	plan, err := provision.Resolve(provision.DefaultRegistry(), st.WithImage(), provision.AppTargets)
	if err != nil {
		return 0
	}
	return plan.TotalHours * 3600
}

// runMigrate is the proactive migration recovery loop with the correlated
// recovery arbiter and the elastic autoscaler on top.
func runMigrate(s *superSetup) (*RecoveryReport, *shrinkRunState, error) {
	o := s.o
	tg, p := s.tg, s.tg.Platform
	if s.nodes < 2 {
		return nil, nil, fmt.Errorf("bench: migrate needs at least 2 nodes for buddy evacuation (placement has %d); lower RanksPerNode or raise Ranks",
			s.nodes)
	}
	plan := s.plan
	fatals := plan.Failures()
	degrades := plan.Degradations()
	maxAttempts := o.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = len(fatals) + 3
	}
	provRetries := o.ProvisionRetries
	if provRetries < 0 {
		provRetries = 0
	}

	mg := &MigrateStats{}
	rep := &RecoveryReport{
		Platform: o.Platform, App: o.App, Policy: PolicyMigrate,
		Ranks: o.Ranks, FinalRanks: o.Ranks,
		Plan: plan, Clean: s.clean, CleanVirtualS: s.cleanS,
		Shrink:  &ShrinkStats{},
		Migrate: mg,
	}
	var rec trace.Recorder
	rec.Observe(o.Obs)
	gobs := o.Obs.Global()

	market := s.newReplacementMarket()
	spares := o.SpareNodes
	var replacementPremiumPerHour float64
	// The provisioning backoff stream is distinct from restart's retry
	// backoff (seed+1) and the market (seed+2); it only advances when an
	// acquisition actually exhausts the market.
	pbo := fault.NewBackoff(o.BackoffBaseS, o.BackoffCapS, o.Seed+3)

	m, grid, mem, err := weakSetup(o.App, o.Ranks, o.PerRankN)
	if err != nil {
		return nil, nil, err
	}
	topo, err := mp.BlockTopology(o.Ranks, s.cpn)
	if err != nil {
		return nil, nil, err
	}
	ms := newMirrorStore(topo)
	app := newShrinkApp(o.App, m, grid, o.Steps, o.Ranks)
	app.mirror = ms
	app.meter = newBuddyMeter(o.Ranks)

	// nodeMap translates the plan's original node numbering into the
	// current world's; shrinks compose into it. Plan slots follow ROLES,
	// not instances: when a migration replaces a slot's node, the slot is
	// re-pointed at the replacement, so a later (cascade) event aimed at
	// that slot hits the new instance instead of silently dropping.
	nodeMap := make([]int, s.nodes)
	for i := range nodeMap {
		nodeMap[i] = i
	}
	var world *mp.World // nil: launch via Attempt; else resume the re-formed world
	curRanks := o.Ranks
	state := &shrinkRunState{grid: grid, ranks: curRanks, app: app}

	foldGen := func() {
		if app.meter != nil {
			over, nbytes := app.meter.fold()
			rep.Shrink.BuddyOverheadS += over
			rep.Shrink.BuddyBytes += nbytes
		}
		rep.Shrink.AgreeS += maxOf(app.agreeS)
		rep.Shrink.RedistributeS += maxOf(app.redistS)
	}

	for attempt := 1; attempt <= maxAttempts; attempt++ {
		rep.Attempts = attempt

		// Drop scheduled fatals aimed at nodes that no longer exist.
		for len(fatals) > 0 {
			if ev := fault.Remap(fatals[:1], nodeMap); len(ev) == 0 {
				rec.Record(fatals[0].At, "drop", "scheduled %s targets node %d, already lost; dropping it",
					fatals[0].Kind, fatals[0].Node)
				fatals = fatals[1:]
				continue
			}
			break
		}
		events := fault.Remap(degrades, nodeMap)
		var reclaimAt float64
		proactive := false
		if len(fatals) > 0 {
			armed := fault.Remap(fatals[:1], nodeMap)[0]
			reclaimAt = armed.At
			if armed.Kind == fault.KindPreempt {
				rec.Record(armed.NoticeAt, "notice",
					"spot interruption notice for node %d (reclaim at t=%.1fs)", fatals[0].Node, armed.At)
				if armed.NoticeAt < armed.At {
					// Proactive drain: stop the world at the notice rather
					// than the reclaim, leaving the window for the
					// evacuate/provision/grow sequence.
					proactive = true
					armed.At = armed.NoticeAt
				}
			}
			events = append(events, armed)
		}

		var result *core.Report
		var af *core.AttemptFailure
		if world == nil {
			result, af, err = tg.Attempt(core.JobSpec{
				Ranks: curRanks, RanksPerNode: o.RanksPerNode, App: app,
				SkipSteps: o.SkipSteps, MemPerRankGB: mem, Faults: events, Obs: o.Obs,
			})
		} else {
			result, af, err = tg.ResumeAttempt(world, app, o.SkipSteps, events)
		}
		if err != nil {
			return nil, nil, err
		}
		foldGen()
		if app.suspect != nil && app.agreedDead != nil {
			deadList := []int{}
			for r, d := range app.agreedDead {
				if d {
					deadList = append(deadList, r)
				}
			}
			rec.Record(0, "agree", "survivors agreed on dead ranks %v in %.4fs (max over ranks)",
				deadList, maxOf(app.agreeS))
		}
		if af == nil {
			rep.Final = result
			rep.FinalRanks = curRanks
			rep.FinalVirtualS = virtualDuration(result)
			if world != nil {
				rep.MakespanS = world.MaxVirtualTime()
			} else {
				rep.MakespanS = rep.FinalVirtualS
			}
			rep.RecoveryCostUSD += replacementPremiumPerHour * rep.FinalVirtualS / 3600
			rep.Shrink.Survivors = curRanks
			rep.Shrink.Grid = app.grid
			rec.Record(rep.MakespanS, "complete", "attempt %d finished on %d ranks (grid %dx%dx%d)",
				attempt, curRanks, app.grid[0], app.grid[1], app.grid[2])
			rep.Decisions = rec.Decisions()
			return rep, state, nil
		}

		if fault.Classify(af) != fault.ClassNodeLoss {
			rep.Decisions = rec.Decisions()
			return nil, nil, fmt.Errorf("bench: unrecoverable %v failure: %w", fault.Classify(af), af)
		}
		stopAt := af.At
		curTopo := af.World.Topology()
		origNode := -1
		for on, cn := range nodeMap {
			if cn == af.Node {
				origNode = on
			}
		}
		kind := "crash"
		if len(fatals) > 0 && fatals[0].Kind == fault.KindPreempt {
			kind = "preemption"
		}
		if proactive {
			rec.Record(stopAt, "failure", "%s drained node %d at the notice t=%.1fs (attempt %d, reclaim at t=%.1fs)",
				kind, origNode, stopAt, attempt, reclaimAt)
		} else {
			rec.Record(stopAt, "failure", "%s killed node %d at t=%.1fs (attempt %d): %v",
				kind, origNode, stopAt, attempt, fault.Classify(af))
		}
		if len(fatals) > 0 {
			fatals = fatals[1:]
		}

		// ---- Arbiter: coalesce correlated notices into one recovery point.
		//
		// Every further preemption whose notice lands before this group's
		// earliest reclaim belongs to the same storm: its node is folded
		// into the doomed set (one shared drain/evacuate/shrink/grow), and
		// a repeat notice for an already-doomed slot is a cascade — the
		// replacement being provisioned for it is reclaimed mid-flight, so
		// one extra acquisition is burned. Folding stops at the first
		// non-notice event, preserving plan order. Crashes never coalesce:
		// they are unannounced, and pretending to know them at the drain
		// would break causality.
		doomed := []int{af.Node}     // current-world numbering, fold order
		origSlots := []int{origNode} // plan numbering, same order
		replans := 0
		if proactive {
			for len(fatals) > 0 {
				e := fatals[0]
				if e.Kind != fault.KindPreempt || e.NoticeAt >= e.At || e.NoticeAt > reclaimAt {
					break
				}
				cur := -1
				if e.Node >= 0 && e.Node < len(nodeMap) {
					cur = nodeMap[e.Node]
				}
				fatals = fatals[1:]
				if cur < 0 {
					rec.Record(e.NoticeAt, "drop", "storm notice targets node %d, already lost; dropping it", e.Node)
					continue
				}
				already := false
				for _, d := range doomed {
					if d == cur {
						already = true
						break
					}
				}
				if already {
					replans++
					mg.Replans++
					rec.Record(e.NoticeAt, "replan", "second notice for node %d inside the same window: its replacement is reclaimed mid-provisioning; acquiring another",
						e.Node)
					continue
				}
				doomed = append(doomed, cur)
				origSlots = append(origSlots, e.Node)
				mg.Coalesced++
				rec.Record(e.NoticeAt, "coalesce", "notice for node %d lands inside node %d's window; folding into one recovery point",
					e.Node, origSlots[0])
			}
		}

		// Price the evacuation the window would have to absorb: the doomed
		// ranks' restore-line shards re-mirrored off the doomed set,
		// serialised through each doomed node's NIC. The restore line is
		// taken while the nodes are still alive — that is the whole point
		// of acting at the notice. A shard whose buddy is itself doomed is
		// re-homed on the first surviving rank instead (a refugee copy).
		nodeDoomed := make([]bool, curTopo.NNodes())
		for _, d := range doomed {
			nodeDoomed[d] = true
		}
		refugee := -1
		for r := 0; r < curTopo.NRanks(); r++ {
			if !nodeDoomed[curTopo.NodeOf[r]] {
				refugee = r
				break
			}
		}
		evacDst := func(dr int) int {
			if b := ms.buddy[dr]; b >= 0 && !nodeDoomed[curTopo.NodeOf[b]] {
				return b
			}
			return refugee
		}
		var window, copyCost float64
		line, lineAtS := -1, 0.0
		if proactive {
			window = reclaimAt - stopAt
			mg.WindowS += window
			line, lineAtS = ms.line(o.Steps - 1)
			if line >= 1 {
				for _, d := range doomed {
					for _, dr := range doomedRanks(curTopo, d) {
						if sn, ok := ms.snapAt(dr, line); ok {
							if dst := evacDst(dr); dst >= 0 {
								copyCost += af.World.PriceBytes(dr, dst, len(sn.blob))
							}
						}
					}
				}
			}
		}
		canShrink := curTopo.NNodes() >= len(doomed)+1
		needCore := len(doomed) + replans
		canProvision := market != nil || spares >= needCore
		dec := decideRecovery(window, copyCost, canShrink, canProvision)
		gobs.MigrateDecision(stopAt, dec.Verb, window, copyCost)
		if len(doomed) > 1 || replans > 0 {
			gobs.ArbiterCoalesce(stopAt, dec.Verb, len(doomed), len(doomed)-1, replans)
		}
		detail := dec.Reason
		if market != nil {
			detail = fmt.Sprintf("%s; spot last ticked at $%.3f/h", detail, market.Price())
		}
		rec.Record(stopAt, "migrate-decision", "%s for node %d: %s", dec.Verb, origNode, detail)

		// execShrink is the reactive fallback shared by the "shrink" verb
		// and a migrate whose provisioning ultimately failed: drop the
		// whole doomed set in one multi-node shrink and continue degraded,
		// exactly as PolicyShrink would.
		execShrink := func() error {
			for _, d := range doomed {
				ms.loseNode(d)
			}
			line, lineAtS := ms.line(o.Steps - 1)
			sr, err := af.World.ShrinkNodes(doomed[1:])
			if err != nil {
				return err
			}
			rep.Shrink.Shrinks++
			rep.Shrink.RevokedMsgs += sr.Revoked
			rep.Shrink.DeadNodes = append(rep.Shrink.DeadNodes, origSlots...)
			survivors := sr.World.Size()
			rec.Record(stopAt, "shrink", "world shrunk %d -> %d ranks (%d pending message(s) revoked)",
				curRanks, survivors, sr.Revoked)

			wasted := stopAt
			if line >= 1 {
				wasted = stopAt - lineAtS
			}
			rep.WastedVirtualS += wasted
			rep.RecoveryCostUSD += tg.Billing.JobCost(wasted, curRanks)

			newGrid, err := partition.BalancedGrid(survivors, m.Nx, m.Ny, m.Nz)
			if err != nil {
				return fmt.Errorf("bench: cannot repartition after shrink: %w", err)
			}
			nextApp := newShrinkApp(o.App, m, newGrid, o.Steps, survivors)
			state.grid = newGrid
			state.ranks = survivors
			state.app = nextApp
			if line >= 1 {
				rec.Record(stopAt, "restore", "survivors resume from the mirrored checkpoint after step %d (rollback %.3fs)",
					line, wasted)
				rep.Shrink.RestoreStep = line
				heldRD, heldNS, err := heldFromMirror(o.App, ms, sr.NewToOld, doomed, line)
				if err != nil {
					return err
				}
				nextApp.heldRD, nextApp.heldNS = heldRD, heldNS
				state.lastHeldRD, state.lastHeldNS = heldRD, heldNS
			} else {
				rec.Record(stopAt, "restore", "no common mirrored step survived; survivors restart the stepping from scratch (cold shrink)")
				rep.Shrink.RestoreStep = 0
			}
			suspect := make([]bool, curRanks)
			for _, d := range sr.DeadRanks {
				suspect[d] = true
			}
			nextApp.suspect = suspect
			newTopo := sr.World.Topology()
			ms = newMirrorStore(newTopo)
			nextApp.mirror = ms
			nextApp.meter = newBuddyMeter(survivors)
			if newTopo.NNodes() < 2 {
				rec.Record(stopAt, "unprotected", "single node left; diskless mirroring has no off-node partner")
			}
			for on := range nodeMap {
				if nodeMap[on] >= 0 {
					nodeMap[on] = sr.OldToNewNode[nodeMap[on]]
				}
			}
			sr.World.Observe(o.Obs)
			world = sr.World
			app = nextApp
			curRanks = survivors
			rep.Degraded = true
			return nil
		}

		switch dec.Verb {
		case "migrate":
			// Evacuate inside the window: re-mirror the doomed ranks' line
			// shards off the doomed set as priced traffic, so the copies
			// are off-node before the first reclaim.
			evacAt := stopAt
			evacN := 0
			if line >= 1 {
				for _, d := range doomed {
					for _, dr := range doomedRanks(curTopo, d) {
						sn, ok := ms.snapAt(dr, line)
						if !ok {
							continue
						}
						dst := evacDst(dr)
						if dst < 0 {
							continue
						}
						evacAt += af.World.PriceBytes(dr, dst, len(sn.blob))
						if dst == ms.buddy[dr] {
							ms.putBuddy(dr, line, evacAt, sn.blob)
						} else {
							ms.putRefugee(dr, dst, line, evacAt, sn.blob)
						}
						evacN++
						mg.CopyBytes += int64(len(sn.blob))
					}
				}
			}
			mg.EvacuatedBlobs += evacN
			mg.CopyS += copyCost
			rec.Record(stopAt, "drain", "notice window %.1fs: drained in-flight collectives, evacuated %d shard(s) in %.4fs",
				window, evacN, copyCost)

			// Provision inside the same window: one replacement per doomed
			// node, one extra per cascade re-plan, plus — when the
			// autoscaler may regrow — the deficit a previous degradation
			// left. Market exhaustion backs off and retries: the market
			// keeps ticking, so a later round can clear.
			deadGroup := curTopo.GroupOfNode[af.Node]
			deficitRanks := 0
			if o.Regrow && curRanks < o.Ranks {
				deficitRanks = o.Ranks - curRanks
			}
			deficitNodes := (deficitRanks + s.cpn - 1) / s.cpn
			need := needCore + deficitNodes

			acquired := 0
			provReadyAt := evacAt
			switch {
			case market != nil:
				bid := o.SpotBidFraction * p.CostPerNodeHour
				provAttempt := 0
				for acquired < need {
					repl, aerr := market.AcquireMix(need-acquired, bid, 1, 3)
					provAttempt++
					if aerr != nil && !errors.Is(aerr, spot.ErrExhausted) {
						return nil, nil, aerr
					}
					for _, nd := range repl.Nodes {
						if nd.Spot {
							rec.Record(stopAt, "provision", "replacement spot instance at $%.3f/h (bid $%.3f)",
								nd.PricePerHour, bid)
						} else {
							rec.Record(stopAt, "provision", "spot market could not fill the bid; on-demand replacement at $%.2f/h — the paper's forced mix",
								nd.PricePerHour)
						}
						if nd.PricePerHour > p.SpotPerNodeHour {
							replacementPremiumPerHour += nd.PricePerHour - p.SpotPerNodeHour
						}
					}
					acquired += len(repl.Nodes)
					if acquired >= need {
						break
					}
					if provAttempt > provRetries {
						rec.Record(provReadyAt, "provision", "market exhausted after %d acquisition attempt(s): %d of %d instance(s)",
							provAttempt, acquired, need)
						break
					}
					d := pbo.Next()
					provReadyAt += d
					rep.WastedVirtualS += d
					rep.BackoffS += d
					mg.ProvisionRetries++
					gobs.ProvisionRetry(provReadyAt, provAttempt, acquired, need, d)
					rec.Record(provReadyAt, "backoff", "provisioning retry %d after %.1fs: %d of %d instance(s) acquired",
						provAttempt, d, acquired, need)
				}
			default:
				take := need
				if take > spares {
					take = spares
				}
				for i := 0; i < take; i++ {
					spares--
					if i < len(origSlots) {
						rec.Record(stopAt, "provision", "cold spare replaces node %d (%d spare(s) left)",
							origSlots[i], spares)
					} else {
						rec.Record(stopAt, "provision", "cold spare grows the degraded world (%d spare(s) left)",
							spares)
					}
				}
				acquired = take
			}

			// Cascade-burned acquisitions come off the top; the remainder
			// replaces doomed slots in fold order, then regrows deficit
			// width. Nothing usable left means the migrate failed —
			// downgrade monotonically to shrink, never retry upward.
			usable := acquired - replans
			if usable < 0 {
				usable = 0
			}
			replaceN := len(doomed)
			if usable < replaceN {
				replaceN = usable
			}
			regrowN := usable - replaceN
			if regrowN > deficitNodes {
				regrowN = deficitNodes
			}
			if replaceN == 0 {
				mg.FallbackShrinks++
				gobs.MigrateDecision(provReadyAt, "shrink", window, copyCost)
				rec.Record(provReadyAt, "migrate-decision", "shrink for node %d: replacement provisioning failed; falling back",
					origNode)
				if err := execShrink(); err != nil {
					return nil, nil, err
				}
				continue
			}

			// The reclaims take the doomed nodes' memory; then re-form the
			// world ONCE around the survivors plus every acquired node —
			// one shrink, one grow per recovery point, so overlapping
			// events cannot double-restore.
			for _, d := range doomed {
				ms.loseNode(d)
			}
			sr, err := af.World.ShrinkNodes(doomed[1:])
			if err != nil {
				return nil, nil, err
			}
			survivors := sr.World.Size()
			rep.Shrink.Shrinks++
			rep.Shrink.RevokedMsgs += sr.Revoked
			rep.Shrink.DeadNodes = append(rep.Shrink.DeadNodes, origSlots...)

			ranksPer := make([]int, 0, replaceN+regrowN)
			groupsOf := make([]int, 0, replaceN+regrowN)
			for i := 0; i < replaceN; i++ {
				ranksPer = append(ranksPer, len(doomedRanks(curTopo, doomed[i])))
				groupsOf = append(groupsOf, curTopo.GroupOfNode[doomed[i]])
			}
			remaining := deficitRanks
			for i := 0; i < regrowN; i++ {
				take := s.cpn
				if take > remaining {
					take = remaining
				}
				ranksPer = append(ranksPer, take)
				groupsOf = append(groupsOf, deadGroup)
				remaining -= take
			}
			startAt := provReadyAt
			if regrowN > 0 {
				setupS := regrowSetupS(o.Platform)
				startAt += setupS
				mg.RegrownNodes += regrowN
				rec.Record(startAt, "provision", "%d deficit node(s) instantiate the preconditioned image in %.0fs and join the re-grow",
					regrowN, setupS)
			}
			gw, err := sr.World.Grow(ranksPer, groupsOf, startAt)
			if err != nil {
				return nil, nil, err
			}
			mg.Migrations++
			mg.ReplacedNodes = append(mg.ReplacedNodes, origSlots[:replaceN]...)
			gobs.WorldGrow(startAt, survivors, gw.World.Size(), gw.NewNodes[0])
			rec.Record(startAt, "world-grow", "world grew %d -> %d ranks: replacement joins as node %d at t=%.1fs",
				survivors, gw.World.Size(), gw.NewNodes[0], startAt)

			// Only the span after the restore line is recomputed; acting at
			// the notice (instead of the reclaim) is what keeps it short.
			wasted := stopAt
			if line >= 1 {
				wasted = stopAt - lineAtS
			}
			rep.WastedVirtualS += wasted
			rep.RecoveryCostUSD += tg.Billing.JobCost(wasted, curRanks)

			newRanks := gw.World.Size()
			newGrid, err := partition.BalancedGrid(newRanks, m.Nx, m.Ny, m.Nz)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: cannot repartition after grow: %w", err)
			}
			nextApp := newShrinkApp(o.App, m, newGrid, o.Steps, newRanks)
			state.grid = newGrid
			state.ranks = newRanks
			state.app = nextApp
			if line >= 1 {
				rec.Record(startAt, "restore", "continuation resumes from the evacuated checkpoint after step %d (rollback %.3fs)",
					line, wasted)
				rep.Shrink.RestoreStep = line
				mg.RestoreStep = line
				// Grown-world rank -> pre-drain rank: survivors map through
				// the shrink, the joiners hold nothing.
				toOld := make([]int, gw.World.Size())
				for nr := range toOld {
					if nr < len(sr.NewToOld) {
						toOld[nr] = sr.NewToOld[nr]
					} else {
						toOld[nr] = -1
					}
				}
				heldRD, heldNS, err := heldFromMirror(o.App, ms, toOld, doomed, line)
				if err != nil {
					return nil, nil, err
				}
				nextApp.heldRD, nextApp.heldNS = heldRD, heldNS
				state.lastHeldRD, state.lastHeldNS = heldRD, heldNS
			} else {
				rec.Record(startAt, "restore", "no checkpoint preceded the notice; the full-width world restarts the stepping from scratch (cold migration)")
				rep.Shrink.RestoreStep = 0
				mg.RestoreStep = 0
			}

			// The continuation opens with the agreement collective over the
			// pre-drain rank space.
			suspect := make([]bool, curRanks)
			for _, d := range sr.DeadRanks {
				suspect[d] = true
			}
			nextApp.suspect = suspect

			newTopo := gw.World.Topology()
			ms = newMirrorStore(newTopo)
			nextApp.mirror = ms
			nextApp.meter = newBuddyMeter(newRanks)

			for on := range nodeMap {
				if nodeMap[on] >= 0 {
					nodeMap[on] = sr.OldToNewNode[nodeMap[on]]
				}
			}
			// Replacements inherit the plan slots they replaced (roles,
			// not instances) so storm cascades can target them.
			for i := 0; i < replaceN && i < len(gw.NewNodes); i++ {
				nodeMap[origSlots[i]] = gw.NewNodes[i]
			}
			gw.World.Observe(o.Obs)
			world = gw.World
			app = nextApp
			curRanks = newRanks
			rep.Degraded = curRanks < o.Ranks

		case "shrink":
			// Reactive fallback: the shrink-and-continue sequence, exactly
			// as PolicyShrink runs it (one multi-node shrink for a
			// coalesced group).
			mg.FallbackShrinks++
			if err := execShrink(); err != nil {
				return nil, nil, err
			}

		default: // restart
			// Last rung of the ladder: nothing survived to continue on, so
			// relaunch the current shape from scratch. Every nodeMap entry
			// pointed at the lost world, so remaining scheduled fatals are
			// dropped on the next pass rather than aimed at fresh instances.
			mg.FallbackRestarts++
			rep.WastedVirtualS += stopAt
			rep.RecoveryCostUSD += tg.Billing.JobCost(stopAt, curRanks)
			rec.Record(stopAt, "restart", "cold restart at %d ranks (grid %dx%dx%d)",
				curRanks, state.grid[0], state.grid[1], state.grid[2])
			for on := range nodeMap {
				nodeMap[on] = -1
			}
			freshTopo, err := mp.BlockTopology(curRanks, s.cpn)
			if err != nil {
				return nil, nil, err
			}
			ms = newMirrorStore(freshTopo)
			nextApp := newShrinkApp(o.App, m, state.grid, o.Steps, curRanks)
			nextApp.mirror = ms
			nextApp.meter = newBuddyMeter(curRanks)
			state.app = nextApp
			world = nil
			app = nextApp
		}
	}
	rep.Decisions = rec.Decisions()
	return nil, nil, fmt.Errorf("bench: gave up after %d attempts (%d fault(s) outstanding)",
		maxAttempts, len(fatals))
}
