package bench

import (
	"strings"
	"testing"
)

func TestRunStrongSpeedsUp(t *testing.T) {
	o := Options{Steps: 2, SkipSteps: 1, MaxRanks: 27, Seed: 3}
	s, err := RunStrong("rd", "lagrange", 12, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("got %d points", len(s.Points))
	}
	t1 := s.Points[0].Report.Iter.MaxTotal
	t27 := s.Points[2].Report.Iter.MaxTotal
	if t27 >= t1 {
		t.Fatalf("strong scaling on InfiniBand should speed up: %v -> %v", t1, t27)
	}
}

func TestRunStrongStopsWhenUnsplittable(t *testing.T) {
	o := Options{Steps: 1, MaxRanks: 1000, Seed: 3}
	// A 4³ mesh cannot be split beyond 4 parts per dimension (64 ranks).
	s, err := RunStrong("rd", "ec2", 4, o)
	if err != nil {
		t.Fatal(err)
	}
	last := s.Points[len(s.Points)-1]
	if last.Ranks > 64 {
		t.Fatalf("series continued to %d ranks on a 4³ mesh", last.Ranks)
	}
}

func TestRunStrongValidation(t *testing.T) {
	o := Options{Steps: 1, MaxRanks: 8, Seed: 3}
	if _, err := RunStrong("bogus", "ec2", 8, o); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := RunStrong("rd", "bogus", 8, o); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestFormatStrong(t *testing.T) {
	o := Options{Steps: 2, SkipSteps: 1, MaxRanks: 8, Seed: 3}
	s, err := RunStrong("ns", "ec2", 8, o)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatStrong([]*StrongSeries{s})
	for _, want := range []string{"Strong scaling", "NS", "speedup", "efficiency", "ec2"} {
		if !strings.Contains(out, want) {
			t.Errorf("strong table missing %q:\n%s", want, out)
		}
	}
}

func TestPrecondAblation(t *testing.T) {
	o := Options{PerRankN: 4, Steps: 2, SkipSteps: 1, Seed: 3}
	out, err := FormatPrecondAblation("ec2", 8, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"none", "jacobi", "sgs", "ilu0", "iters"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing %q:\n%s", want, out)
		}
	}
}

func TestPackingAblation(t *testing.T) {
	o := Options{PerRankN: 3, Steps: 2, SkipSteps: 1, Seed: 3}
	out, err := FormatPackingAblation("ec2", 27, o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ranks/node") || !strings.Contains(out, "$/iter") {
		t.Errorf("packing ablation malformed:\n%s", out)
	}
	// Densest packing must appear (16 ranks/node) and sparsest (1).
	if !strings.Contains(out, "\n          16") || !strings.Contains(out, "\n           1") {
		t.Errorf("packing rows missing:\n%s", out)
	}
}

func TestInterconnectAblation(t *testing.T) {
	o := Options{PerRankN: 3, Steps: 2, SkipSteps: 1, Seed: 3}
	out, err := FormatInterconnectAblation("puma", 27, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1GbE", "10GbE", "IB 4X DDR"} {
		if !strings.Contains(out, want) {
			t.Errorf("interconnect ablation missing %q:\n%s", want, out)
		}
	}
}

func TestPartitionAblation(t *testing.T) {
	out, err := FormatPartitionAblation(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"block", "rcb", "greedy", "edge cut"} {
		if !strings.Contains(out, want) {
			t.Errorf("partition ablation missing %q:\n%s", want, out)
		}
	}
}
