package bench

import (
	"strings"
	"testing"
)

// Small, fast options for tests.
func testOpts() Options {
	return Options{PerRankN: 3, Steps: 2, SkipSteps: 1, MaxRanks: 27, Seed: 7}
}

func TestRunWeakRD(t *testing.T) {
	s, err := RunWeak("rd", "ec2", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("got %d points", len(s.Points))
	}
	for _, pt := range s.Points {
		if pt.Err != nil {
			t.Fatalf("ranks %d failed: %v", pt.Ranks, pt.Err)
		}
		if pt.Report.Iter.MaxTotal <= 0 {
			t.Fatalf("ranks %d: no time", pt.Ranks)
		}
	}
	// Weak scaling on a network-bound platform must not get faster.
	if s.Points[2].Report.Iter.MaxTotal < s.Points[0].Report.Iter.MaxTotal {
		t.Fatal("weak-scaling time decreased with ranks")
	}
}

func TestRunWeakTruncatesAtPlatformLimit(t *testing.T) {
	o := testOpts()
	o.MaxRanks = 216
	s, err := RunWeak("rd", "puma", o)
	if err != nil {
		t.Fatal(err)
	}
	last := s.Points[len(s.Points)-1]
	if last.Ranks != 216 || last.Err == nil {
		t.Fatalf("series should end with a failure at 216: %+v", last)
	}
	for _, pt := range s.Points[:len(s.Points)-1] {
		if pt.Err != nil {
			t.Fatalf("ranks %d unexpectedly failed: %v", pt.Ranks, pt.Err)
		}
	}
}

func TestRunWeakUnknownApp(t *testing.T) {
	if _, err := RunWeak("bogus", "ec2", testOpts()); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := RunWeak("rd", "bogus", testOpts()); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestRunWeakAllAndFormat(t *testing.T) {
	o := testOpts()
	o.MaxRanks = 8
	series, err := RunWeakAll("rd", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	out := FormatWeak(series)
	for _, want := range []string{"puma", "ellipse", "lagrange", "ec2", "assembly", "solve"} {
		if !strings.Contains(out, want) {
			t.Errorf("weak table missing %q:\n%s", want, out)
		}
	}
	costs := FormatCost(series)
	if !strings.Contains(costs, "ec2 mix") {
		t.Errorf("cost table missing the ec2 mix column:\n%s", costs)
	}
}

func TestLagrangeFlattestAtScale(t *testing.T) {
	// The paper's headline: only lagrange (InfiniBand) maintains good weak
	// scaling. Compare growth factors t(27)/t(1) per platform.
	o := testOpts()
	growth := map[string]float64{}
	for _, p := range []string{"puma", "lagrange", "ec2"} {
		s, err := RunWeak("rd", p, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Points) < 3 || s.Points[2].Err != nil {
			t.Fatalf("%s has no 27-rank point", p)
		}
		growth[p] = s.Points[2].Report.Iter.MaxTotal / s.Points[0].Report.Iter.MaxTotal
	}
	if growth["lagrange"] >= growth["puma"] {
		t.Errorf("lagrange growth %v should beat puma %v", growth["lagrange"], growth["puma"])
	}
}

func TestRunPlacement(t *testing.T) {
	o := testOpts()
	res, err := RunPlacement(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Groups != 4 {
		t.Fatalf("rows %d groups %d", len(res.Rows), res.Groups)
	}
	for _, row := range res.Rows {
		if row.Err != nil {
			t.Fatalf("ranks %d: %v", row.Ranks, row.Err)
		}
		if row.FullCost <= row.MixEstCost {
			t.Errorf("ranks %d: full cost %v must exceed spot estimate %v",
				row.Ranks, row.FullCost, row.MixEstCost)
		}
		// The paper's finding: no performance benefit from the single
		// placement group — times agree within a few percent.
		ratio := row.MixTime / row.FullTime
		if ratio < 0.9 || ratio > 1.25 {
			t.Errorf("ranks %d: mix/full time ratio %v, want ≈1 (no placement-group benefit)",
				row.Ranks, ratio)
		}
	}
	out := FormatPlacement(res)
	for _, want := range []string{"Table II", "est. cost", "placement group"} {
		if !strings.Contains(out, want) {
			t.Errorf("placement table missing %q", want)
		}
	}
}

func TestFormatCapabilities(t *testing.T) {
	out := FormatCapabilities()
	for _, want := range []string{"Opteron", "Xeon", "IB 4X DDR", "10GbE", "user space",
		"root", "PBS", "SGE", "shell", "2.30¢/core-h", "$2.40/node-h"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestFormatProvisioning(t *testing.T) {
	out, err := FormatProvisioning()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"=== puma ===", "=== ec2 ===", "trilinos", "man-hours",
		"boot partition resize"} {
		if !strings.Contains(out, want) {
			t.Errorf("provisioning report missing %q", want)
		}
	}
}

func TestFormatAvailability(t *testing.T) {
	out, err := FormatAvailability(testOpts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"puma", "ec2", "median"} {
		if !strings.Contains(out, want) {
			t.Errorf("availability table missing %q:\n%s", want, out)
		}
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.PerRankN != 10 || o.Steps != 3 || o.MaxRanks != 1000 || len(o.Platforms) != 4 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
}

func TestCSVWeak(t *testing.T) {
	o := testOpts()
	o.MaxRanks = 216 // includes puma's failure row
	s, err := RunWeak("rd", "puma", o)
	if err != nil {
		t.Fatal(err)
	}
	csv := CSVWeak([]*Series{s})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// Header + 5 ok rows (1..125) + 1 failure row (216).
	if len(lines) != 7 {
		t.Fatalf("got %d CSV lines:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "app,platform,ranks") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.Contains(lines[6], "exceeds machine size") {
		t.Fatalf("failure row missing: %q", lines[6])
	}
	for _, l := range lines[1:6] {
		if n := strings.Count(l, ","); n != 11 {
			t.Fatalf("row has %d commas: %q", n, l)
		}
	}
}

func TestCSVPlacement(t *testing.T) {
	res, err := RunPlacement(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	csv := CSVPlacement(res)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(res.Rows)+1 {
		t.Fatalf("got %d lines for %d rows", len(lines), len(res.Rows))
	}
	if !strings.HasPrefix(lines[0], "ranks,instances") {
		t.Fatalf("bad header %q", lines[0])
	}
}

// The entire pipeline is deterministic: two identical harness invocations
// render byte-identical tables.
func TestTablesBitDeterministic(t *testing.T) {
	render := func() (string, string) {
		o := testOpts()
		series, err := RunWeakAll("rd", o)
		if err != nil {
			t.Fatal(err)
		}
		return FormatWeak(series), FormatCost(series)
	}
	w1, c1 := render()
	w2, c2 := render()
	if w1 != w2 {
		t.Fatal("weak-scaling table not deterministic")
	}
	if c1 != c2 {
		t.Fatal("cost table not deterministic")
	}
}
