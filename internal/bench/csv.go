package bench

import (
	"fmt"
	"strings"
)

// csvEscape quotes one CSV field per RFC 4180: inner double quotes are
// doubled, and the field is wrapped in quotes when it contains a comma,
// quote, or line break. (fmt's %q is Go syntax — backslash escapes — which
// CSV readers do not undo.)
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSVWeak renders a weak-scaling series set as CSV (one row per platform ×
// rank count), the machine-readable companion to FormatWeak for re-plotting
// Figures 4–7 with external tools.
func CSVWeak(series []*Series) string {
	var b strings.Builder
	b.WriteString("app,platform,ranks,nodes,assembly_s,precond_s,solve_s,max_total_s,comm_frac,cost_usd,spot_cost_usd,error\n")
	for _, s := range series {
		for _, pt := range s.Points {
			if pt.Err != nil {
				fmt.Fprintf(&b, "%s,%s,%d,,,,,,,,,%s\n", s.App, s.Platform, pt.Ranks, csvEscape(pt.Err.Error()))
				continue
			}
			r := pt.Report
			fmt.Fprintf(&b, "%s,%s,%d,%d,%g,%g,%g,%g,%g,%g,%g,\n",
				s.App, s.Platform, pt.Ranks, r.Nodes,
				r.Iter.AvgAssembly, r.Iter.AvgPrecond, r.Iter.AvgSolve,
				r.Iter.MaxTotal, r.Iter.CommFraction, r.CostPerIter, r.SpotCostPerIter)
		}
	}
	return b.String()
}

// CSVPlacement renders Table II as CSV.
func CSVPlacement(res *PlacementResult) string {
	var b strings.Builder
	b.WriteString("ranks,instances,full_time_s,full_cost_usd,mix_time_s,mix_est_cost_usd,spot_share,error\n")
	for _, row := range res.Rows {
		if row.Err != nil {
			fmt.Fprintf(&b, "%d,%d,,,,,,%s\n", row.Ranks, row.Instances, csvEscape(row.Err.Error()))
			continue
		}
		fmt.Fprintf(&b, "%d,%d,%g,%g,%g,%g,%g,\n",
			row.Ranks, row.Instances, row.FullTime, row.FullCost,
			row.MixTime, row.MixEstCost, row.SpotShare)
	}
	return b.String()
}
