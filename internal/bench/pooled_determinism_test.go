package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"testing"

	"heterohpc/internal/checkpoint"
	"heterohpc/internal/core"
	"heterohpc/internal/fault"
	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/rd"
	"heterohpc/internal/vclock"
)

// Golden hashes captured on the pre-pooling tree (commit 039d81f), before
// the mailbox/payload pooling, workspace reuse and checkpoint
// double-buffering landed. The zero-allocation steady state must not change
// a single byte of fault-path output: virtual-clock charges, message
// patterns, supervisor decisions and checkpoint serialisations are all part
// of the deterministic contract. If one of these fails, a pooling change
// leaked into observable behaviour — fix the change, do not rebaseline.
const (
	goldenRestartReportSHA = "c762e5030fe09cb00b8bf05674746bffc6cdf186095e207e9e2ed73d40dc0a6a"
	// Rebaselined when CompareRecovery gained the migrate policy: the
	// comparison report grew a third column and a migrate paragraph. The
	// restart-report and checkpoint goldens above/below are unchanged from
	// the pre-pooling capture, which is what pins the numeric behaviour.
	goldenShrinkCompareSHA   = "dea0befd3061dbc09ca29fae5809662c10a4da49862952b98710da48d154f215"
	goldenCrashCheckpointSHA = "fd3dea9d7f6c301205a190e0257d2bb39296038a6f70348a1db2e56f27bb79a2"
)

// TestPooledFaultPathMatchesPrePoolingGoldens replays a seeded crash run
// under the restart and shrink policies and a direct crashed run, comparing
// the recovery reports and the per-rank checkpoint bytes against the
// pre-pooling goldens above.
func TestPooledFaultPathMatchesPrePoolingGoldens(t *testing.T) {
	restartOpts := FaultOptions{
		App: "rd", Platform: "ec2", Ranks: 8, PerRankN: 4, Steps: 3,
		Seed: 7, Crashes: 1,
	}

	t.Run("restart-report", func(t *testing.T) {
		rep, err := RunSupervised(restartOpts)
		if err != nil {
			t.Fatalf("RunSupervised: %v", err)
		}
		h := sha256.Sum256([]byte(FormatRecovery(rep)))
		if got := hex.EncodeToString(h[:]); got != goldenRestartReportSHA {
			t.Errorf("restart recovery report drifted from pre-pooling golden:\ngot  %s\nwant %s",
				got, goldenRestartReportSHA)
		}
	})

	t.Run("shrink-comparison", func(t *testing.T) {
		shrinkOpts := restartOpts
		shrinkOpts.Policy = PolicyShrink
		shrinkOpts.RanksPerNode = 2
		cmp, err := CompareRecovery(shrinkOpts)
		if err != nil {
			t.Fatalf("CompareRecovery: %v", err)
		}
		h := sha256.Sum256([]byte(FormatRecoveryComparison(cmp)))
		if got := hex.EncodeToString(h[:]); got != goldenShrinkCompareSHA {
			t.Errorf("shrink comparison report drifted from pre-pooling golden:\ngot  %s\nwant %s",
				got, goldenShrinkCompareSHA)
		}
	})

	t.Run("crashed-checkpoint-bytes", func(t *testing.T) {
		got, err := crashedCheckpointHash()
		if err != nil {
			t.Fatalf("crashedCheckpointHash: %v", err)
		}
		if got != goldenCrashCheckpointSHA {
			t.Errorf("crashed-run checkpoint bytes drifted from pre-pooling golden:\ngot  %s\nwant %s",
				got, goldenCrashCheckpointSHA)
		}
	})
}

// crashedCheckpointHash runs an 8-rank RD job with an injected mid-run
// crash, hashing every checkpoint each rank serialises before the world
// dies. The combined hash is order-independent (sorted by rank, step), so
// it is stable under goroutine scheduling and valid under -race.
func crashedCheckpointHash() (string, error) {
	tg, err := core.NewTarget("ec2", 1)
	if err != nil {
		return "", err
	}
	app, err := core.WeakRD(8, 4, 3)
	if err != nil {
		return "", err
	}
	base := app.(core.RDApp).Cfg
	var mu sync.Mutex
	sums := map[string]string{}
	_, err = tg.Run(core.JobSpec{
		Ranks:        8,
		RanksPerNode: 2,
		App:          checkpointHashApp{cfg: base, mu: &mu, sums: sums},
		Faults: []fault.Event{
			{Kind: fault.KindCrash, Node: 1, At: 1.1},
		},
	})
	if err == nil {
		return "", fmt.Errorf("expected crash, run succeeded")
	}
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, sums[k])
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// checkpointHashApp wraps the RD app with a per-rank checkpoint callback
// that hashes the serialised checkpoint bytes immediately — honouring the
// State retention contract: the snapshot is only valid until the next
// Checkpoint invocation, so nothing is retained across calls.
type checkpointHashApp struct {
	cfg  rd.Config
	mu   *sync.Mutex
	sums map[string]string
}

func (a checkpointHashApp) Name() string { return "rd" }

func (a checkpointHashApp) Run(r *mp.Rank) ([]vclock.PhaseTimes, map[string]float64, error) {
	rank, size := r.ID(), r.Size()
	p := a.cfg.Grid[0]
	l, err := mesh.NewLocalFromBlock(a.cfg.Mesh, p, p, p, rank)
	if err != nil {
		return nil, nil, err
	}
	owned := l.VertGlobal[:l.NumOwned]
	cfg := a.cfg
	cfg.Checkpoint = func(st rd.State) error {
		var buf bytes.Buffer
		if err := checkpoint.WriteRD(&buf, st, rank, size, owned); err != nil {
			return err
		}
		sum := sha256.Sum256(buf.Bytes())
		a.mu.Lock()
		a.sums[fmt.Sprintf("r%02d-s%02d", rank, st.StepsDone)] = hex.EncodeToString(sum[:])
		a.mu.Unlock()
		return nil
	}
	return core.RDApp{Cfg: cfg}.Run(r)
}
