package bench

import (
	"strings"
	"testing"

	"heterohpc/internal/platform"
)

func TestBidSweepMonotone(t *testing.T) {
	p, err := platform.Get("ec2")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := BidSweep(p, 40, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Fatalf("only %d bid levels", len(pts))
	}
	// Spot share must be (weakly) increasing in the bid, and strongly so
	// from far-below-spot to far-above-spot.
	for i := 1; i < len(pts); i++ {
		if pts[i].SpotShare < pts[i-1].SpotShare-0.05 {
			t.Errorf("spot share fell from %v to %v at bid %v",
				pts[i-1].SpotShare, pts[i].SpotShare, pts[i].BidFraction)
		}
	}
	lo, hi := pts[0], pts[len(pts)-1]
	if lo.SpotShare > 0.1 {
		t.Errorf("bid at 5%% of on-demand got %v spot share", lo.SpotShare)
	}
	if hi.SpotShare < 0.4 {
		t.Errorf("bid at on-demand price got only %v spot share", hi.SpotShare)
	}
	// Blended price must never exceed on-demand, and high bids must save.
	for _, pt := range pts {
		if pt.BlendedNodeHour > p.CostPerNodeHour+1e-9 {
			t.Errorf("blended %v above on-demand", pt.BlendedNodeHour)
		}
	}
	if hi.BlendedNodeHour >= lo.BlendedNodeHour {
		t.Errorf("bidding higher should lower the blend: %v vs %v",
			hi.BlendedNodeHour, lo.BlendedNodeHour)
	}
}

func TestBidSweepValidation(t *testing.T) {
	ec2, _ := platform.Get("ec2")
	if _, err := BidSweep(ec2, 0, 1, 1); err == nil {
		t.Error("0 nodes accepted")
	}
	puma, _ := platform.Get("puma")
	if _, err := BidSweep(puma, 10, 1, 1); err == nil {
		t.Error("spotless platform accepted")
	}
}

func TestFormatBidSweep(t *testing.T) {
	out, err := FormatBidSweep(Options{Seed: 5}, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cost-aware bidding", "spot share", "saving vs full"} {
		if !strings.Contains(out, want) {
			t.Errorf("bid table missing %q:\n%s", want, out)
		}
	}
}
