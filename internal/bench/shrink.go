package bench

// Shrink-and-continue recovery: instead of restarting the whole job shape
// after a node loss, the survivors run the ULFM sequence — agree on the
// dead, shrink the world, redistribute the field from diskless buddy
// checkpoints — and resume time-stepping mid-run at the degraded rank
// count. The mesh does not shrink with the job: the survivor count is
// rarely cubic, so the same global mesh is re-partitioned onto whatever
// balanced grid internal/partition can factor.

import (
	"bytes"
	"fmt"
	"sync"

	"heterohpc/internal/checkpoint"
	"heterohpc/internal/core"
	"heterohpc/internal/fault"
	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/nse"
	"heterohpc/internal/partition"
	"heterohpc/internal/rd"
	"heterohpc/internal/trace"
	"heterohpc/internal/vclock"
)

// Application tags of the recovery machinery; the solvers use 1000–2600.
const (
	tagMirror = 9000
	tagRedist = 9100
)

// mirrorSnap is one snapshot copy: the container blob plus where in
// virtual time and the step count it was taken. step -1 means empty.
type mirrorSnap struct {
	step int
	atS  float64
	blob []byte
}

// mirrorStore is the supervisor's model of where the diskless checkpoint
// copies physically live: each origin's own copy resides on the origin's
// node, the mirror on its buddy's node. loseNode discards every copy that
// resided on the lost node, which is exactly what a real node loss does to
// memory-resident checkpoints. Like ckptStore it retains the last two
// snapshots per copy, because ranks killed mid-step can be one step apart.
type mirrorStore struct {
	mu    sync.Mutex
	topo  mp.Topology
	buddy []int // buddy rank per origin, -1 when unprotected
	own   [][2]mirrorSnap
	bud   [][2]mirrorSnap
	// ref holds refugee evacuation copies: when a correlated wave dooms an
	// origin AND its buddy's node, the notice-window evacuation re-homes
	// the origin's line shard on a surviving third rank instead. At most
	// one refugee copy per origin (only the restore line is evacuated).
	ref   []mirrorSnap
	refTo []int  // holder rank of the refugee copy, -1 when none
	lost  []bool // per node
}

func newMirrorStore(topo mp.Topology) *mirrorStore {
	n := topo.NRanks()
	s := &mirrorStore{
		topo:  topo,
		buddy: make([]int, n),
		own:   make([][2]mirrorSnap, n),
		bud:   make([][2]mirrorSnap, n),
		ref:   make([]mirrorSnap, n),
		refTo: make([]int, n),
		lost:  make([]bool, topo.NNodes()),
	}
	for r := 0; r < n; r++ {
		s.buddy[r] = checkpoint.BuddyOf(topo, r)
		s.own[r] = [2]mirrorSnap{{step: -1}, {step: -1}}
		s.bud[r] = [2]mirrorSnap{{step: -1}, {step: -1}}
		s.ref[r] = mirrorSnap{step: -1}
		s.refTo[r] = -1
	}
	return s
}

func (s *mirrorStore) putOwn(origin, step int, atS float64, blob []byte) {
	s.mu.Lock()
	s.own[origin][1] = s.own[origin][0]
	s.own[origin][0] = mirrorSnap{step: step, atS: atS, blob: blob}
	s.mu.Unlock()
}

func (s *mirrorStore) putBuddy(origin, step int, atS float64, blob []byte) {
	s.mu.Lock()
	s.bud[origin][1] = s.bud[origin][0]
	s.bud[origin][0] = mirrorSnap{step: step, atS: atS, blob: blob}
	s.mu.Unlock()
}

// putRefugee records an evacuation copy of origin's line shard re-homed on
// holder — used when origin's buddy node is itself doomed, so the regular
// buddy slot would evaporate with the wave.
func (s *mirrorStore) putRefugee(origin, holder, step int, atS float64, blob []byte) {
	s.mu.Lock()
	s.ref[origin] = mirrorSnap{step: step, atS: atS, blob: blob}
	s.refTo[origin] = holder
	s.mu.Unlock()
}

// refAt returns origin's refugee copy when it captures exactly step.
func (s *mirrorStore) refAt(origin, step int) (mirrorSnap, int, bool) {
	if s.refTo[origin] >= 0 && s.ref[origin].step == step {
		return s.ref[origin], s.refTo[origin], true
	}
	return mirrorSnap{}, -1, false
}

// loseNode discards the copies resident in the lost node's memory: the own
// copies of its ranks, the buddy copies it held for others, and any
// refugee copies re-homed onto it.
func (s *mirrorStore) loseNode(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lost[node] = true
	empty := [2]mirrorSnap{{step: -1}, {step: -1}}
	for r := 0; r < s.topo.NRanks(); r++ {
		if s.topo.NodeOf[r] == node {
			s.own[r] = empty
		}
		if b := s.buddy[r]; b >= 0 && s.topo.NodeOf[b] == node {
			s.bud[r] = empty
		}
		if h := s.refTo[r]; h >= 0 && s.topo.NodeOf[h] == node {
			s.ref[r] = mirrorSnap{step: -1}
			s.refTo[r] = -1
		}
	}
}

// snapAt returns the surviving snapshot of origin at exactly step, own
// copy preferred.
func (s *mirrorStore) snapAt(origin, step int) (mirrorSnap, bool) {
	for _, sn := range s.own[origin] {
		if sn.step == step {
			return sn, true
		}
	}
	for _, sn := range s.bud[origin] {
		if sn.step == step {
			return sn, true
		}
	}
	return mirrorSnap{}, false
}

// line computes the restore line after losses: the highest step ≤ cap for
// which EVERY origin still has a surviving copy, and the virtual time the
// slowest origin checkpointed it (the rollback point). Returns (-1, 0)
// when no common step survives — the cold-shrink case.
func (s *mirrorStore) line(capStep int) (int, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := capStep
	for origin := range s.own {
		hi := -1
		for _, sn := range s.own[origin] {
			if sn.step > hi && sn.step <= capStep {
				hi = sn.step
			}
		}
		for _, sn := range s.bud[origin] {
			if sn.step > hi && sn.step <= capStep {
				hi = sn.step
			}
		}
		if s.refTo[origin] >= 0 && s.ref[origin].step > hi && s.ref[origin].step <= capStep {
			hi = s.ref[origin].step
		}
		if hi < best {
			best = hi
		}
	}
	if best < 1 {
		return -1, 0
	}
	var atS float64
	for origin := range s.own {
		sn, ok := s.snapAt(origin, best)
		if !ok {
			if sn, _, ok = s.refAt(origin, best); !ok {
				return -1, 0 // skew beyond the retained window
			}
		}
		if sn.atS > atS {
			atS = sn.atS
		}
	}
	return best, atS
}

// buddyMeter accumulates per-rank virtual time and bytes spent mirroring.
type buddyMeter struct {
	mu        sync.Mutex
	overheadS []float64
	bytes     int64
}

func newBuddyMeter(nranks int) *buddyMeter {
	return &buddyMeter{overheadS: make([]float64, nranks)}
}

func (m *buddyMeter) add(rank int, seconds float64, n int) {
	m.mu.Lock()
	m.overheadS[rank] += seconds
	m.bytes += int64(n)
	m.mu.Unlock()
}

// fold returns the critical-path overhead (max over ranks) and total bytes.
func (m *buddyMeter) fold() (float64, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max float64
	for _, s := range m.overheadS {
		if s > max {
			max = s
		}
	}
	return max, m.bytes
}

// weakSetup builds the weak-scaling problem shared by all generations of a
// shrink run: the FIXED global mesh (sized by the submitted rank count —
// it never shrinks), the initial cubic grid, and the per-rank memory.
func weakSetup(app string, ranks, perRankN int) (*mesh.Mesh, [3]int, float64, error) {
	p, err := mesh.CubeGrid(ranks)
	if err != nil {
		return nil, [3]int{}, 0, fmt.Errorf("bench: weak scaling needs cubic rank counts: %w", err)
	}
	n := perRankN * p
	switch app {
	case "rd":
		return mesh.NewUnitCube(n), [3]int{p, p, p}, core.MemPerRankGB(perRankN, 1), nil
	case "ns":
		m, err := mesh.NewBox(mesh.SymmetricBox, n, n, n)
		if err != nil {
			return nil, [3]int{}, 0, err
		}
		return m, [3]int{p, p, p}, core.MemPerRankGB(perRankN, 4), nil
	default:
		return nil, [3]int{}, 0, fmt.Errorf("bench: unknown application %q (want rd or ns)", app)
	}
}

// shrinkApp runs one generation of a shrink-and-continue job: optionally
// the agreement collective, optionally a redistribution from held buddy
// fragments, then the solver with diskless mirroring after every step.
// With suspect and mirror nil and no held state it is a plain run at the
// current world size — the comparator shape for bit-identity checks.
type shrinkApp struct {
	name  string
	m     *mesh.Mesh
	grid  [3]int
	steps int
	// heldRD/heldNS are per-rank fragment lists for the redistribution
	// (nil: initialise from scratch — first generation or cold shrink).
	heldRD [][]rd.HeldState
	heldNS [][]nse.HeldState
	// suspect is the local suspicion bitmap every rank feeds AgreeDead
	// (nil: no agreement round — first generation or comparator).
	suspect []bool
	// mirror/meter enable diskless buddy checkpointing (nil: unprotected).
	mirror *mirrorStore
	meter  *buddyMeter

	// Per-rank observations, collected under mu for the supervisor.
	mu         sync.Mutex
	agreeS     []float64
	redistS    []float64
	agreedDead []bool
	finalIDs   [][]int
	finalVals  [][]float64
}

func newShrinkApp(name string, m *mesh.Mesh, grid [3]int, steps, ranks int) *shrinkApp {
	return &shrinkApp{
		name: name, m: m, grid: grid, steps: steps,
		agreeS:    make([]float64, ranks),
		redistS:   make([]float64, ranks),
		finalIDs:  make([][]int, ranks),
		finalVals: make([][]float64, ranks),
	}
}

// Name implements core.App.
func (a *shrinkApp) Name() string { return a.name }

// Run implements core.App.
func (a *shrinkApp) Run(r *mp.Rank) ([]vclock.PhaseTimes, map[string]float64, error) {
	rank, size := r.ID(), r.Size()
	if a.suspect != nil {
		t0 := r.Wtime()
		agreed := r.AgreeDead(a.suspect)
		a.mu.Lock()
		a.agreeS[rank] = r.Wtime() - t0
		if rank == 0 {
			a.agreedDead = agreed
		}
		a.mu.Unlock()
	}
	if a.name == "rd" {
		cfg := rd.Config{Mesh: a.m, Grid: a.grid, Steps: a.steps}
		var owned []int
		if a.heldRD != nil {
			t0 := r.Wtime()
			st, ow, err := rd.Redistribute(r, a.m, a.grid, a.heldRD[rank], tagRedist)
			if err != nil {
				return nil, nil, err
			}
			a.mu.Lock()
			a.redistS[rank] = r.Wtime() - t0
			a.mu.Unlock()
			owned = ow
			cfg.Resume = &st
			r.Obs().Checkpoint("ckpt-restore", st.StepsDone, 0)
		} else {
			l, err := mesh.NewLocalFromBlock(a.m, a.grid[0], a.grid[1], a.grid[2], rank)
			if err != nil {
				return nil, nil, err
			}
			owned = l.VertGlobal[:l.NumOwned]
		}
		cfg.Checkpoint = func(st rd.State) error {
			if a.mirror != nil {
				var buf bytes.Buffer
				if err := checkpoint.WriteRD(&buf, st, rank, size, owned); err != nil {
					return err
				}
				a.mirror.putOwn(rank, st.StepsDone, r.Wtime(), buf.Bytes())
				t0 := r.Wtime()
				for _, mr := range checkpoint.Mirror(r, tagMirror, buf.Bytes()) {
					a.mirror.putBuddy(mr.Origin, st.StepsDone, r.Wtime(), mr.Blob)
				}
				a.meter.add(rank, r.Wtime()-t0, buf.Len())
			}
			if st.StepsDone == a.steps {
				a.mu.Lock()
				a.finalIDs[rank] = owned
				a.finalVals[rank] = append([]float64(nil), st.U1...)
				a.mu.Unlock()
			}
			return nil
		}
		return core.RDApp{Cfg: cfg}.Run(r)
	}

	cfg := nse.Config{Mesh: a.m, Grid: a.grid, Steps: a.steps}
	var owned []int
	if a.heldNS != nil {
		t0 := r.Wtime()
		st, ow, err := nse.Redistribute(r, a.m, a.grid, a.heldNS[rank], tagRedist)
		if err != nil {
			return nil, nil, err
		}
		a.mu.Lock()
		a.redistS[rank] = r.Wtime() - t0
		a.mu.Unlock()
		owned = ow
		cfg.Resume = &st
		r.Obs().Checkpoint("ckpt-restore", st.StepsDone, 0)
	} else {
		l, err := mesh.NewLocalFromBlock(a.m, a.grid[0], a.grid[1], a.grid[2], rank)
		if err != nil {
			return nil, nil, err
		}
		owned = l.VertGlobal[:l.NumOwned]
	}
	cfg.Checkpoint = func(st nse.State) error {
		if a.mirror != nil {
			var buf bytes.Buffer
			if err := checkpoint.WriteNSE(&buf, st, rank, size, owned); err != nil {
				return err
			}
			a.mirror.putOwn(rank, st.StepsDone, r.Wtime(), buf.Bytes())
			t0 := r.Wtime()
			for _, mr := range checkpoint.Mirror(r, tagMirror, buf.Bytes()) {
				a.mirror.putBuddy(mr.Origin, st.StepsDone, r.Wtime(), mr.Blob)
			}
			a.meter.add(rank, r.Wtime()-t0, buf.Len())
		}
		if st.StepsDone == a.steps {
			vals := make([]float64, 0, 4*len(st.P))
			for i := range st.P {
				vals = append(vals, st.U1[0][i], st.U1[1][i], st.U1[2][i], st.P[i])
			}
			a.mu.Lock()
			a.finalIDs[rank] = owned
			a.finalVals[rank] = vals
			a.mu.Unlock()
		}
		return nil
	}
	return core.NSApp{Cfg: cfg}.Run(r)
}

// maxOf returns the per-rank maximum of a recorded vector.
func maxOf(v []float64) float64 {
	var max float64
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	return max
}

// heldFromMirror assembles the per-rank held-fragment lists for a
// continuation generation. toOld maps each rank of the next world to its
// rank in the pre-loss numbering (-1 for ranks that joined at a Grow and
// hold nothing). Each pre-loss rank contributes its own surviving snapshot
// at the restore line, the buddy copies it holds for origins that lived on
// the dead nodes, and any refugee copies a correlated-wave evacuation
// re-homed onto it. Exactly one of the returned lists is non-nil, matching
// app.
func heldFromMirror(app string, ms *mirrorStore, toOld []int, deadNodes []int, line int) ([][]rd.HeldState, [][]nse.HeldState, error) {
	deadSet := make([]bool, ms.topo.NNodes())
	for _, n := range deadNodes {
		deadSet[n] = true
	}
	heldOf := func(holderOld int) ([]mirrorSnap, []int) {
		var snaps []mirrorSnap
		var origins []int
		if sn, ok := ms.snapAt(holderOld, line); ok {
			snaps = append(snaps, sn)
			origins = append(origins, holderOld)
		}
		for _, origin := range checkpoint.Protects(ms.topo, holderOld) {
			if !deadSet[ms.topo.NodeOf[origin]] {
				continue // origin alive: it contributes its own copy
			}
			if bs, ok := ms.snapAt(origin, line); ok {
				snaps = append(snaps, bs)
				origins = append(origins, origin)
			}
		}
		for origin := 0; origin < ms.topo.NRanks(); origin++ {
			if rs, holder, ok := ms.refAt(origin, line); ok && holder == holderOld {
				snaps = append(snaps, rs)
				origins = append(origins, origin)
			}
		}
		return snaps, origins
	}
	if app == "rd" {
		held := make([][]rd.HeldState, len(toOld))
		for newR, oldR := range toOld {
			if oldR < 0 {
				continue
			}
			snaps, origins := heldOf(oldR)
			for i, sn := range snaps {
				st, _, _, ids, err := checkpoint.ReadRD(bytes.NewReader(sn.blob))
				if err != nil {
					return nil, nil, fmt.Errorf("bench: corrupt mirrored checkpoint of rank %d: %w", origins[i], err)
				}
				held[newR] = append(held[newR], rd.HeldState{Rank: origins[i], OwnedIDs: ids, State: st})
			}
		}
		return held, nil, nil
	}
	held := make([][]nse.HeldState, len(toOld))
	for newR, oldR := range toOld {
		if oldR < 0 {
			continue
		}
		snaps, origins := heldOf(oldR)
		for i, sn := range snaps {
			st, _, _, ids, err := checkpoint.ReadNSE(bytes.NewReader(sn.blob))
			if err != nil {
				return nil, nil, fmt.Errorf("bench: corrupt mirrored checkpoint of rank %d: %w", origins[i], err)
			}
			held[newR] = append(held[newR], nse.HeldState{Rank: origins[i], OwnedIDs: ids, State: st})
		}
	}
	return nil, held, nil
}

// shrinkRunState exposes the final generation's internals to the package
// tests (held fragments and the final field for bit-identity comparisons).
type shrinkRunState struct {
	lastHeldRD [][]rd.HeldState
	lastHeldNS [][]nse.HeldState
	grid       [3]int
	ranks      int
	app        *shrinkApp
}

// runShrinkContinue is the shrink-and-continue recovery loop.
func runShrinkContinue(s *superSetup) (*RecoveryReport, *shrinkRunState, error) {
	o := s.o
	tg := s.tg
	if s.nodes < 2 {
		return nil, nil, fmt.Errorf("bench: shrink-and-continue needs at least 2 nodes for buddy checkpoints (placement has %d); lower RanksPerNode or raise Ranks",
			s.nodes)
	}
	plan := s.plan
	fatals := plan.Failures()
	degrades := plan.Degradations()
	maxAttempts := o.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = len(fatals) + 3
	}

	rep := &RecoveryReport{
		Platform: o.Platform, App: o.App, Policy: PolicyShrink,
		Ranks: o.Ranks, FinalRanks: o.Ranks,
		Plan: plan, Clean: s.clean, CleanVirtualS: s.cleanS,
		Shrink: &ShrinkStats{},
	}
	var rec trace.Recorder
	rec.Observe(o.Obs)

	m, grid, mem, err := weakSetup(o.App, o.Ranks, o.PerRankN)
	if err != nil {
		return nil, nil, err
	}

	topo, err := mp.BlockTopology(o.Ranks, s.cpn)
	if err != nil {
		return nil, nil, err
	}
	ms := newMirrorStore(topo)
	app := newShrinkApp(o.App, m, grid, o.Steps, o.Ranks)
	app.mirror = ms
	app.meter = newBuddyMeter(o.Ranks)

	// nodeMap translates the plan's original node numbering into the
	// current world's; shrinks compose into it.
	nodeMap := make([]int, s.nodes)
	for i := range nodeMap {
		nodeMap[i] = i
	}
	var world *mp.World // nil: launch via Attempt; else resume the shrunk world
	curRanks := o.Ranks
	state := &shrinkRunState{grid: grid, ranks: curRanks, app: app}

	// foldGen folds the finished generation's per-rank observations into
	// the report (called after every attempt, success or failure).
	foldGen := func() {
		if app.meter != nil {
			over, nbytes := app.meter.fold()
			rep.Shrink.BuddyOverheadS += over
			rep.Shrink.BuddyBytes += nbytes
		}
		rep.Shrink.AgreeS += maxOf(app.agreeS)
		rep.Shrink.RedistributeS += maxOf(app.redistS)
	}

	for attempt := 1; attempt <= maxAttempts; attempt++ {
		rep.Attempts = attempt

		// Drop scheduled fatals aimed at nodes that no longer exist.
		for len(fatals) > 0 {
			if ev := fault.Remap(fatals[:1], nodeMap); len(ev) == 0 {
				rec.Record(fatals[0].At, "drop", "scheduled %s targets node %d, already lost; dropping it",
					fatals[0].Kind, fatals[0].Node)
				fatals = fatals[1:]
				continue
			}
			break
		}
		events := fault.Remap(degrades, nodeMap)
		if len(fatals) > 0 {
			armed := fault.Remap(fatals[:1], nodeMap)
			events = append(events, armed...)
			if fatals[0].Kind == fault.KindPreempt {
				rec.Record(fatals[0].NoticeAt, "notice",
					"spot interruption notice for node %d (reclaim at t=%.1fs)", fatals[0].Node, fatals[0].At)
			}
		}

		var result *core.Report
		var af *core.AttemptFailure
		if world == nil {
			result, af, err = tg.Attempt(core.JobSpec{
				Ranks: curRanks, RanksPerNode: o.RanksPerNode, App: app,
				SkipSteps: o.SkipSteps, MemPerRankGB: mem, Faults: events, Obs: o.Obs,
			})
		} else {
			result, af, err = tg.ResumeAttempt(world, app, o.SkipSteps, events)
		}
		if err != nil {
			return nil, nil, err
		}
		foldGen()
		if app.suspect != nil && app.agreedDead != nil {
			deadList := []int{}
			for r, d := range app.agreedDead {
				if d {
					deadList = append(deadList, r)
				}
			}
			rec.Record(0, "agree", "survivors agreed on dead ranks %v in %.4fs (max over ranks)",
				deadList, maxOf(app.agreeS))
		}
		if af == nil {
			rep.Final = result
			rep.FinalRanks = curRanks
			rep.FinalVirtualS = virtualDuration(result)
			if world != nil {
				rep.MakespanS = world.MaxVirtualTime()
			} else {
				rep.MakespanS = rep.FinalVirtualS
			}
			rep.Shrink.Survivors = curRanks
			rep.Shrink.Grid = app.grid
			rec.Record(rep.MakespanS, "complete", "attempt %d finished on %d ranks (grid %dx%dx%d)",
				attempt, curRanks, app.grid[0], app.grid[1], app.grid[2])
			rep.Decisions = rec.Decisions()
			return rep, state, nil
		}

		if fault.Classify(af) != fault.ClassNodeLoss {
			rep.Decisions = rec.Decisions()
			return nil, nil, fmt.Errorf("bench: unrecoverable %v failure: %w", fault.Classify(af), af)
		}
		kind := "crash"
		if len(fatals) > 0 && fatals[0].Kind == fault.KindPreempt {
			kind = "preemption"
		}
		// Translate the lost node back to the plan's numbering for the log.
		origNode := -1
		for on, cn := range nodeMap {
			if cn == af.Node {
				origNode = on
			}
		}
		rec.Record(af.At, "failure", "%s killed node %d at t=%.1fs (attempt %d): %v",
			kind, origNode, af.At, attempt, fault.Classify(af))
		if len(fatals) > 0 {
			fatals = fatals[1:]
		}

		// What survives in memory, and which step every survivor can agree
		// to resume from. Resumption must leave at least one step to run,
		// so the line is capped at Steps-1.
		ms.loseNode(af.Node)
		line, lineAtS := ms.line(o.Steps - 1)

		sr, err := af.World.Shrink()
		if err != nil {
			return nil, nil, err
		}
		rep.Shrink.Shrinks++
		rep.Shrink.RevokedMsgs += sr.Revoked
		rep.Shrink.DeadNodes = append(rep.Shrink.DeadNodes, origNode)
		survivors := sr.World.Size()
		rec.Record(af.At, "shrink", "world shrunk %d -> %d ranks (%d pending message(s) revoked)",
			curRanks, survivors, sr.Revoked)

		// Only the rolled-back span is wasted: survivors keep their work up
		// to the restore line. A cold shrink (no surviving common line)
		// rolls all the way back to the start.
		wasted := af.At
		if line >= 1 {
			wasted = af.At - lineAtS
		}
		rep.WastedVirtualS += wasted
		rep.RecoveryCostUSD += tg.Billing.JobCost(wasted, curRanks)

		newGrid, err := partition.BalancedGrid(survivors, m.Nx, m.Ny, m.Nz)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: cannot repartition after shrink: %w", err)
		}
		rec.Record(af.At, "repartition", "global mesh %dx%dx%d re-partitioned onto grid %dx%dx%d",
			m.Nx, m.Ny, m.Nz, newGrid[0], newGrid[1], newGrid[2])
		if part, perr := partition.Block(m, newGrid[0], newGrid[1], newGrid[2]); perr == nil {
			if q, qerr := partition.Evaluate(partition.DualGraph{M: m}, part, survivors); qerr == nil {
				rep.Shrink.PartitionImbalance = q.Imbalance
			}
		}

		// Build the held-fragment lists: every survivor contributes its own
		// snapshot plus the buddy copies it holds for dead origins.
		nextApp := newShrinkApp(o.App, m, newGrid, o.Steps, survivors)
		state.grid = newGrid
		state.ranks = survivors
		state.app = nextApp
		if line >= 1 {
			rec.Record(af.At, "restore", "survivors resume from the mirrored checkpoint after step %d (rollback %.3fs)",
				line, wasted)
			rep.Shrink.RestoreStep = line
			heldRD, heldNS, err := heldFromMirror(o.App, ms, sr.NewToOld, []int{af.Node}, line)
			if err != nil {
				return nil, nil, err
			}
			nextApp.heldRD, nextApp.heldNS = heldRD, heldNS
			state.lastHeldRD, state.lastHeldNS = heldRD, heldNS
		} else {
			rec.Record(af.At, "restore", "no common mirrored step survived; survivors restart the stepping from scratch (cold shrink)")
			rep.Shrink.RestoreStep = 0
		}

		// The continuation opens with the agreement collective over the
		// pre-shrink rank space.
		suspect := make([]bool, curRanks)
		for _, d := range sr.DeadRanks {
			suspect[d] = true
		}
		nextApp.suspect = suspect

		// Mirroring continues on the survivor topology while at least two
		// nodes remain.
		newTopo := sr.World.Topology()
		if newTopo.NNodes() >= 2 {
			ms = newMirrorStore(newTopo)
			nextApp.mirror = ms
			nextApp.meter = newBuddyMeter(survivors)
		} else {
			ms = newMirrorStore(newTopo) // single node: no buddies, line() will be cold
			rec.Record(af.At, "unprotected", "single node left; diskless mirroring has no off-node partner")
		}

		for on := range nodeMap {
			if nodeMap[on] >= 0 {
				nodeMap[on] = sr.OldToNewNode[nodeMap[on]]
			}
		}
		// The shrunk world is a fresh mp.World: re-attach the observer so
		// the continuation's traffic lands in the same journal.
		sr.World.Observe(o.Obs)
		world = sr.World
		app = nextApp
		curRanks = survivors
		rep.Degraded = true
	}
	rep.Decisions = rec.Decisions()
	return nil, nil, fmt.Errorf("bench: gave up after %d attempts (%d fault(s) outstanding)",
		maxAttempts, len(fatals))
}

// RecoveryComparison pits the three policies against the identical fault
// plan.
type RecoveryComparison struct {
	Restart, Shrink, Migrate *RecoveryReport
}

// CompareRecovery runs the same seeded fault plan under checkpoint-restart,
// shrink-and-continue and proactive migration, so the reports differ only
// by policy. The restart run draws the plan; the other two replay it
// verbatim.
func CompareRecovery(o FaultOptions) (*RecoveryComparison, error) {
	o = o.withDefaults()
	ro := o
	ro.Policy = PolicyRestart
	restart, err := RunSupervised(ro)
	if err != nil {
		return nil, fmt.Errorf("bench: restart policy: %w", err)
	}
	so := o
	so.Policy = PolicyShrink
	so.Plan = restart.Plan
	shrink, err := RunSupervised(so)
	if err != nil {
		return nil, fmt.Errorf("bench: shrink policy: %w", err)
	}
	mo := o
	mo.Policy = PolicyMigrate
	mo.Plan = restart.Plan
	migrate, err := RunSupervised(mo)
	if err != nil {
		return nil, fmt.Errorf("bench: migrate policy: %w", err)
	}
	return &RecoveryComparison{Restart: restart, Shrink: shrink, Migrate: migrate}, nil
}
