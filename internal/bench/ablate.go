package bench

import (
	"fmt"
	"strings"

	"heterohpc/internal/core"
	"heterohpc/internal/mesh"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/partition"
	"heterohpc/internal/rd"
)

// Ablation experiments for the design choices called out in DESIGN.md:
// preconditioner selection, node packing (NIC sharing), the interconnect
// counterfactual, and partitioner quality.

// FormatPrecondAblation runs the RD application with each preconditioner on
// one platform and tabulates how the choice moves the paper's three phases
// — the (iiia)/(iiib) trade-off of §IV-C.
func FormatPrecondAblation(platformName string, ranks int, o Options) (string, error) {
	o = o.withDefaults()
	tg, err := core.NewTarget(platformName, o.Seed)
	if err != nil {
		return "", err
	}
	p, err := mesh.CubeGrid(ranks)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Preconditioner ablation: RD, %d ranks on %s, %d³ elements/rank\n",
		ranks, platformName, o.PerRankN)
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %12s %8s\n",
		"precond", "assembly", "precond", "solve", "max total", "iters")
	for _, pc := range []string{"none", "jacobi", "sgs", "ilu0"} {
		app := core.RDApp{Cfg: rd.Config{
			Mesh:    mesh.NewUnitCube(o.PerRankN * p),
			Grid:    [3]int{p, p, p},
			Steps:   o.Steps,
			Precond: pc,
			MaxIter: 4000,
		}}
		rep, err := tg.Run(core.JobSpec{Ranks: ranks, App: app, SkipSteps: o.SkipSteps, Obs: o.Obs})
		if err != nil {
			return "", fmt.Errorf("bench: %s ablation: %w", pc, err)
		}
		it := rep.Iter
		fmt.Fprintf(&b, "%-8s %10.4f %10.4f %10.4f %12.4f %8.0f\n",
			pc, it.AvgAssembly, it.AvgPrecond, it.AvgSolve, it.MaxTotal,
			rep.Metrics["avg_solve_iters"])
	}
	return b.String(), nil
}

// FormatPackingAblation spreads a fixed-rank job over more nodes (fewer
// ranks per node) on a whole-node-billed platform: each rank gets a larger
// NIC share, but every extra node is billed in full — quantifying the
// paper's remark that EC2's 16-core instances let the assembly "exploit
// notably fewer hosts".
func FormatPackingAblation(platformName string, ranks int, o Options) (string, error) {
	o = o.withDefaults()
	tg, err := core.NewTarget(platformName, o.Seed)
	if err != nil {
		return "", err
	}
	cpn := tg.Platform.CoresPerNode()
	var b strings.Builder
	fmt.Fprintf(&b, "Node-packing ablation: RD, %d ranks on %s (%d cores/node)\n",
		ranks, platformName, cpn)
	fmt.Fprintf(&b, "%12s %6s %12s %8s %12s\n", "ranks/node", "nodes", "iter[s]", "comm%", "$/iter")
	for rpn := cpn; rpn >= 1; rpn /= 2 {
		app, err := core.WeakRD(ranks, o.PerRankN, o.Steps)
		if err != nil {
			return "", err
		}
		rep, err := tg.Run(core.JobSpec{
			Ranks: ranks, App: app, SkipSteps: o.SkipSteps, RanksPerNode: rpn, Obs: o.Obs,
		})
		if err != nil {
			fmt.Fprintf(&b, "%12d %6s -- %v\n", rpn, "-", err)
			continue
		}
		fmt.Fprintf(&b, "%12d %6d %12.4f %7.1f%% %12.5f\n",
			rpn, rep.Nodes, rep.Iter.MaxTotal, rep.Iter.CommFraction*100, rep.CostPerIter)
	}
	return b.String(), nil
}

// FormatInterconnectAblation answers the counterfactual behind the paper's
// summary ("a modern local computing cluster, with an efficient
// interconnection network will outperform an on-demand assembly"): the same
// platform hardware re-equipped with each interconnect model.
func FormatInterconnectAblation(platformName string, ranks int, o Options) (string, error) {
	o = o.withDefaults()
	base, err := core.NewTarget(platformName, o.Seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Interconnect ablation: RD, %d ranks on %s hardware\n", ranks, platformName)
	fmt.Fprintf(&b, "%-12s %12s %8s\n", "network", "iter[s]", "comm%")
	for _, net := range []*netmodel.Model{netmodel.GigE, netmodel.TenGigE, netmodel.IBDDR4X} {
		variant := *base.Platform
		variant.Name = platformName + "+" + net.Name
		variant.Net = net
		tg, err := core.NewTargetFromPlatform(&variant, o.Seed)
		if err != nil {
			return "", err
		}
		app, err := core.WeakRD(ranks, o.PerRankN, o.Steps)
		if err != nil {
			return "", err
		}
		rep, err := tg.Run(core.JobSpec{Ranks: ranks, App: app, SkipSteps: o.SkipSteps, Obs: o.Obs})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-12s %12.4f %7.1f%%\n",
			net.Name, rep.Iter.MaxTotal, rep.Iter.CommFraction*100)
	}
	return b.String(), nil
}

// FormatPartitionAblation compares the three partitioners' quality metrics
// on a cube mesh — the load balance ParMETIS is responsible for in §IV-C.
func FormatPartitionAblation(meshN, nparts int) (string, error) {
	m := mesh.NewUnitCube(meshN)
	g := partition.DualGraph{M: m}
	var b strings.Builder
	fmt.Fprintf(&b, "Partitioner ablation: %d³ elements into %d parts\n", meshN, nparts)
	fmt.Fprintf(&b, "%-8s %10s %10s %12s\n", "method", "max load", "imbalance", "edge cut")
	type entry struct {
		name string
		part []int
		err  error
	}
	var entries []entry
	if gp, err := mesh.CubeGrid(nparts); err == nil {
		bp, berr := partition.Block(m, gp, gp, gp)
		entries = append(entries, entry{"block", bp, berr})
	}
	rp, rerr := partition.RCB(m, nparts)
	entries = append(entries, entry{"rcb", rp, rerr})
	gp2, gerr := partition.Greedy(g, nparts)
	entries = append(entries, entry{"greedy", gp2, gerr})
	for _, e := range entries {
		if e.err != nil {
			return "", e.err
		}
		q, err := partition.Evaluate(g, e.part, nparts)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8s %10d %10.3f %12d\n", e.name, q.MaxLoad, q.Imbalance, q.EdgeCut)
	}
	return b.String(), nil
}
