package bench

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"

	"heterohpc/internal/checkpoint"
	"heterohpc/internal/core"
	"heterohpc/internal/fault"
	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/nse"
	"heterohpc/internal/obs"
	"heterohpc/internal/rd"
	"heterohpc/internal/spot"
	"heterohpc/internal/trace"
	"heterohpc/internal/vclock"
)

// Recovery policies for RunSupervised.
const (
	// PolicyRestart is checkpoint-restart: on node loss, re-provision,
	// restore the last common checkpoint and rerun the whole job shape.
	PolicyRestart = "restart"
	// PolicyShrink is ULFM-style shrink-and-continue: survivors agree on
	// the dead, the world shrinks, state redistributes from diskless buddy
	// copies, and time-stepping resumes mid-run on the survivor count.
	PolicyShrink = "shrink-continue"
	// PolicyMigrate is proactive notice-window migration: on a spot
	// interruption notice the supervisor drains at the notice, evacuates the
	// doomed node's checkpoint shards to their buddies inside the window,
	// provisions a replacement, grows the world back to full width and
	// continues — falling back to shrink-continue (or restart) when the
	// window is too short, capacity is unavailable, or the failure carried
	// no notice.
	PolicyMigrate = "migrate"
)

// FaultOptions configures a supervised run under fault injection.
type FaultOptions struct {
	// App is "rd" or "ns".
	App string
	// Platform names the target.
	Platform string
	// Ranks is the submitted process count (must be cubic for the
	// weak-scaling applications).
	Ranks int
	// RanksPerNode underfills nodes (0: pack to the platform's cores per
	// node). Shrink-and-continue needs at least two nodes, so small jobs on
	// fat-node platforms set this to spread ranks out.
	RanksPerNode int
	// Policy selects the recovery strategy: PolicyRestart (default),
	// PolicyShrink or PolicyMigrate.
	Policy string
	// PerRankN is the per-process mesh edge (default 10, as in Options).
	PerRankN int
	// Steps is the number of BDF2 steps (default 4, so at least one
	// checkpoint exists before mid-run failures).
	Steps int
	// SkipSteps discards initial iterations from averaged statistics.
	SkipSteps int
	// Seed drives the scheduler, the fault plan, the backoff jitter and the
	// replacement market. Equal seeds give equal recoveries.
	Seed uint64
	// Plan overrides fault-plan generation. When nil, a plan with Crashes /
	// Preemptions / Degradations events is drawn over the clean run's
	// virtual duration.
	Plan *fault.Plan
	// Crashes, Preemptions and Degradations size the generated plan.
	Crashes, Preemptions, Degradations int
	// MaxAttempts caps supervisor retries (default: fatal events + 3).
	MaxAttempts int
	// BackoffBaseS and BackoffCapS parameterise the retry backoff
	// (defaults 15 s base, 240 s cap).
	BackoffBaseS, BackoffCapS float64
	// SpareNodes is the cold-spare pool for replacing dead nodes on
	// platforms without a market. When exhausted, the supervisor degrades
	// to fewer ranks instead. The zero value means the default of 2; pass
	// any negative value (conventionally -1) to request an empty pool, so
	// the first unreplaceable loss degrades immediately.
	SpareNodes int
	// SpotBidFraction is the replacement bid as a fraction of the
	// on-demand price on spot platforms (default 0.25).
	SpotBidFraction float64
	// StormWave, when positive, replaces the independent generated plan
	// with a correlated fault storm (fault.NewStorm): a reclamation wave of
	// StormWave simultaneous-notice preemptions, StormCascades follow-up
	// preemptions hitting wave slots mid-recovery, and StormBursts
	// correlated straggler windows. Ignored when Plan is set.
	StormWave, StormCascades, StormBursts int
	// OnDemandSupply caps the replacement market's on-demand top-up pool,
	// making AcquireMix exhaustion reachable: the autoscaler then retries
	// with backoff under PolicyMigrate, and PolicyRestart degrades. The
	// zero value means unlimited (the paper could always "add
	// regularly-priced hosts"); pass any negative value for an empty pool.
	OnDemandSupply int
	// ProvisionRetries bounds the autoscaler's backoff retries after an
	// exhausted acquisition under PolicyMigrate (default 4; negative: no
	// retries — a single exhausted attempt falls back to shrink).
	ProvisionRetries int
	// Regrow lets the migrate-policy autoscaler re-provision width a
	// previous degradation lost: a later recovery point also acquires the
	// deficit nodes and grows the world back toward the submitted Ranks,
	// charging each deficit joiner the preconditioned-image instantiation
	// of the provisioning planner.
	Regrow bool
	// Obs, when non-nil, journals every supervised attempt, the replacement
	// market's ticks and notices, and the supervisor's decisions. The clean
	// baseline run stays unobserved so the journal covers only the faulted
	// job.
	Obs *obs.Run

	// ckptTap, when non-nil, mirrors every checkpoint the faulted job's
	// ranks write — (rank, step, world width, serialised blob) — to the
	// replay anchor collector. The clean baseline inside newSuperSetup is
	// never tapped, matching the journal's coverage. Unexported: only
	// ReplayFromCheckpoint sets it (see replay.go).
	ckptTap func(rank, step, width int, blob []byte)
}

func (o FaultOptions) withDefaults() FaultOptions {
	if o.App == "" {
		o.App = "rd"
	}
	if o.Platform == "" {
		o.Platform = "ec2"
	}
	if o.Ranks == 0 {
		o.Ranks = 8
	}
	if o.Policy == "" {
		o.Policy = PolicyRestart
	}
	if o.PerRankN == 0 {
		o.PerRankN = 10
	}
	if o.Steps == 0 {
		o.Steps = 4
	}
	if o.Seed == 0 {
		o.Seed = 2012
	}
	if o.BackoffBaseS == 0 {
		o.BackoffBaseS = 15
	}
	if o.BackoffCapS == 0 {
		o.BackoffCapS = 240
	}
	if o.SpareNodes == 0 {
		o.SpareNodes = 2
	}
	if o.SpotBidFraction == 0 {
		o.SpotBidFraction = 0.25
	}
	if o.ProvisionRetries == 0 {
		o.ProvisionRetries = 4
	}
	return o
}

// RecoveryReport is the outcome of a supervised run: the recovered result
// next to the clean baseline, with the price of recovery itemised.
type RecoveryReport struct {
	Platform, App string
	// Policy is the recovery strategy the run used.
	Policy string
	// Ranks is the submitted size; FinalRanks what the successful attempt
	// ran with (smaller after graceful degradation).
	Ranks, FinalRanks int
	// Attempts counts executions, including the successful one.
	Attempts int
	// Degraded is true when the job finished on fewer ranks than submitted.
	Degraded bool
	// Plan is the injected failure schedule.
	Plan *fault.Plan
	// Clean is the no-fault baseline report; Final the recovered run's.
	Clean, Final *core.Report
	// CleanVirtualS and FinalVirtualS are the baseline and final-attempt
	// virtual durations (max over ranks).
	CleanVirtualS, FinalVirtualS float64
	// WastedVirtualS is the recovery overhead in virtual seconds: time
	// consumed by failed attempts (at their scheduled failure times) plus
	// backoff delays.
	WastedVirtualS float64
	// BackoffS is the backoff share of WastedVirtualS.
	BackoffS float64
	// RecoveryCostUSD prices the overhead: failed attempts at the
	// platform's billing plus the replacement-capacity premium over the
	// typical spot rate.
	RecoveryCostUSD float64
	// MakespanS is the job's end-to-end virtual time including recovery:
	// wasted time plus the final attempt for restart, the furthest survivor
	// clock for shrink-and-continue (whose clocks carry across the shrink).
	MakespanS float64
	// Shrink itemises the shrink-and-continue mechanics (nil under
	// PolicyRestart; under PolicyMigrate it covers the shared
	// agree/redistribute/mirror machinery).
	Shrink *ShrinkStats
	// Migrate itemises the proactive notice-window migrations (nil unless
	// the run used PolicyMigrate).
	Migrate *MigrateStats
	// Decisions is the supervisor's audit log.
	Decisions []trace.Decision
}

// ShrinkStats itemises what a shrink-and-continue recovery did and what
// the protection cost.
type ShrinkStats struct {
	// Shrinks counts world shrinks (one per recovered node loss).
	Shrinks int
	// DeadNodes lists the lost nodes in original numbering, in loss order.
	DeadNodes []int
	// Survivors is the final rank count; Grid its block decomposition.
	Survivors int
	Grid      [3]int
	// RestoreStep is the common checkpoint step the last recovery resumed
	// from (0 when the survivors had to restart the stepping from scratch).
	RestoreStep int
	// AgreeS and RedistributeS are the virtual seconds the agreement
	// collective and the state redistribution cost (max over ranks, summed
	// over shrinks).
	AgreeS, RedistributeS float64
	// BuddyOverheadS is the virtual time the buddy mirroring added to the
	// critical path (max per-rank overhead, summed over generations);
	// BuddyBytes the total bytes mirrored.
	BuddyOverheadS float64
	BuddyBytes     int64
	// RevokedMsgs counts pending messages purged by world revocation.
	RevokedMsgs int
	// PartitionImbalance is the survivor decomposition's element imbalance
	// (max/avg; 0 when not evaluated).
	PartitionImbalance float64
}

// ckptSnap is one serialised checkpoint container tagged with the step it
// captured (recorded at save time, so restore never has to parse blobs).
// step is -1 for the empty snapshot.
type ckptSnap struct {
	step int
	blob []byte
}

// ckptStore keeps the last TWO serialised checkpoint containers per rank.
// Saves happen concurrently from rank goroutines; ranks killed mid-step
// may be one step apart (a rank racing past a step's final collective
// saves step N while a peer still holds N−1), so a single retained
// snapshot per rank cannot guarantee a common restore line. sync()
// establishes one before each retry.
type ckptStore struct {
	mu     sync.Mutex
	latest []ckptSnap
	prev   []ckptSnap
}

func newCkptStore(nranks int) *ckptStore {
	s := &ckptStore{latest: make([]ckptSnap, nranks), prev: make([]ckptSnap, nranks)}
	for i := range s.latest {
		s.latest[i].step = -1
		s.prev[i].step = -1
	}
	return s
}

func (s *ckptStore) put(rank, step int, b []byte) {
	s.mu.Lock()
	s.prev[rank] = s.latest[rank]
	s.latest[rank] = ckptSnap{step: step, blob: b}
	s.mu.Unlock()
}

func (s *ckptStore) get(rank int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest[rank].blob
}

// sync establishes a restore line every rank agrees on: the minimum
// checkpointed step across ranks. Ranks that raced one step ahead of a
// killed peer fall back to their previous snapshot, so all ranks resume
// from the same step and the per-rank collective sequence numbers stay
// aligned (a mixed-step resume would pair collectives across different
// time steps and hang). Returns the common step and the maximum step any
// rank had saved (for the decision log); when no common line exists —
// some rank never checkpointed, or skew exceeded the retained window —
// the store is cleared so every rank restarts from scratch, and sync
// returns min = -1.
func (s *ckptStore) sync() (min, max int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	min, max = s.latest[0].step, s.latest[0].step
	for _, sn := range s.latest[1:] {
		if sn.step < min {
			min = sn.step
		}
		if sn.step > max {
			max = sn.step
		}
	}
	clear := func() {
		for i := range s.latest {
			s.latest[i] = ckptSnap{step: -1}
			s.prev[i] = ckptSnap{step: -1}
		}
	}
	if min < 0 {
		clear()
		return -1, max
	}
	for i := range s.latest {
		if s.latest[i].step != min {
			if s.prev[i].step != min {
				clear()
				return -1, max
			}
			s.latest[i] = s.prev[i]
		}
		s.prev[i] = ckptSnap{step: -1}
	}
	return min, max
}

// snapStore is the checkpoint persistence surface supervisedApp writes
// through: ckptStore in the recovery loops, anchorStore/replayStore in the
// journal-diff replay (replay.go), tapStore to layer the two.
type snapStore interface {
	put(rank, step int, b []byte)
	get(rank int) []byte
}

// tapStore forwards saves to an inner store and mirrors every write to a
// replay tap along with the world width it was taken at.
type tapStore struct {
	inner snapStore
	width int
	tap   func(rank, step, width int, blob []byte)
}

func (t *tapStore) put(rank, step int, b []byte) {
	t.inner.put(rank, step, b)
	t.tap(rank, step, t.width, b)
}

func (t *tapStore) get(rank int) []byte { return t.inner.get(rank) }

// tapped wraps store with the replay tap when one is set.
func tapped(store snapStore, width int, tap func(rank, step, width int, blob []byte)) snapStore {
	if tap == nil {
		return store
	}
	return &tapStore{inner: store, width: width, tap: tap}
}

// supervisedApp wires per-rank checkpoint save/restore closures into the
// weak-scaling applications. Checkpoints flow through the
// internal/checkpoint containers, exactly as a production restart would.
type supervisedApp struct {
	name  string
	rdCfg rd.Config
	nsCfg nse.Config
	owned [][]int
	store snapStore
}

func newSupervisedApp(app string, ranks, perRankN, steps int, store snapStore) (*supervisedApp, float64, error) {
	p, err := mesh.CubeGrid(ranks)
	if err != nil {
		return nil, 0, fmt.Errorf("bench: weak scaling needs cubic rank counts: %w", err)
	}
	a := &supervisedApp{name: app, store: store}
	var m *mesh.Mesh
	var mem float64
	switch app {
	case "rd":
		m = mesh.NewUnitCube(perRankN * p)
		a.rdCfg = rd.Config{Mesh: m, Grid: [3]int{p, p, p}, Steps: steps}
		mem = core.MemPerRankGB(perRankN, 1)
	case "ns":
		n := perRankN * p
		m, err = mesh.NewBox(mesh.SymmetricBox, n, n, n)
		if err != nil {
			return nil, 0, err
		}
		a.nsCfg = nse.Config{Mesh: m, Grid: [3]int{p, p, p}, Steps: steps}
		mem = core.MemPerRankGB(perRankN, 4)
	default:
		return nil, 0, fmt.Errorf("bench: unknown application %q (want rd or ns)", app)
	}
	a.owned = make([][]int, ranks)
	for rank := 0; rank < ranks; rank++ {
		l, err := mesh.NewLocalFromBlock(m, p, p, p, rank)
		if err != nil {
			return nil, 0, err
		}
		a.owned[rank] = l.VertGlobal[:l.NumOwned]
	}
	return a, mem, nil
}

// Name implements core.App.
func (a *supervisedApp) Name() string { return a.name }

// Run implements core.App: restore this rank's state from the store when a
// compatible checkpoint exists, and save one after every completed step.
func (a *supervisedApp) Run(r *mp.Rank) ([]vclock.PhaseTimes, map[string]float64, error) {
	rank, size := r.ID(), r.Size()
	if a.name == "rd" {
		cfg := a.rdCfg
		if b := a.store.get(rank); b != nil {
			if st, ckRank, ckN, _, err := checkpoint.ReadRD(bytes.NewReader(b)); err == nil &&
				ckRank == rank && ckN == size && st.StepsDone < cfg.Steps {
				cfg.Resume = &st
				r.Obs().Checkpoint("ckpt-restore", st.StepsDone, int64(len(b)))
			}
		}
		cfg.Checkpoint = func(st rd.State) error {
			var buf bytes.Buffer
			if err := checkpoint.WriteRD(&buf, st, rank, size, a.owned[rank]); err != nil {
				return err
			}
			a.store.put(rank, st.StepsDone, buf.Bytes())
			return nil
		}
		return core.RDApp{Cfg: cfg}.Run(r)
	}
	cfg := a.nsCfg
	if b := a.store.get(rank); b != nil {
		if st, ckRank, ckN, _, err := checkpoint.ReadNSE(bytes.NewReader(b)); err == nil &&
			ckRank == rank && ckN == size && st.StepsDone < cfg.Steps {
			cfg.Resume = &st
			r.Obs().Checkpoint("ckpt-restore", st.StepsDone, int64(len(b)))
		}
	}
	cfg.Checkpoint = func(st nse.State) error {
		var buf bytes.Buffer
		if err := checkpoint.WriteNSE(&buf, st, rank, size, a.owned[rank]); err != nil {
			return err
		}
		a.store.put(rank, st.StepsDone, buf.Bytes())
		return nil
	}
	return core.NSApp{Cfg: cfg}.Run(r)
}

// virtualDuration is the job's virtual makespan: the largest per-rank sum
// of step times.
func virtualDuration(rep *core.Report) float64 {
	var max float64
	for _, steps := range rep.PerRankSteps {
		var sum float64
		for _, pt := range steps {
			sum += pt.Total()
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// largestCubeAtMost returns the largest k³ ≤ n, or 0 when none exists.
func largestCubeAtMost(n int) int {
	best := 0
	for k := 1; k*k*k <= n; k++ {
		best = k * k * k
	}
	return best
}

// degradedShape chooses the rank count a degradation lands on: the largest
// cube at most want, falling back to the largest cube strictly below cur
// when want yields nothing smaller than the current size. Returns 0 when
// no valid degraded shape exists (cur already 1).
func degradedShape(cur, want int) int {
	to := largestCubeAtMost(want)
	if to < 1 || to >= cur {
		to = largestCubeAtMost(cur - 1)
	}
	return to
}

// superSetup is the shared preamble of both recovery policies: the clean
// baseline, the supervised target, the effective placement, and the fault
// plan drawn over the baseline's virtual horizon.
type superSetup struct {
	o      FaultOptions
	tg     *core.Target
	clean  *core.Report
	cleanS float64
	plan   *fault.Plan
	nodes  int
	cpn    int // effective ranks per node
	mem    float64
}

func newSuperSetup(o FaultOptions) (*superSetup, error) {
	// Clean baseline on a fresh target: the comparison column, and the
	// virtual horizon fault plans are drawn over.
	cleanTG, err := core.NewTarget(o.Platform, o.Seed)
	if err != nil {
		return nil, err
	}
	cleanStore := newCkptStore(o.Ranks)
	cleanApp, mem, err := newSupervisedApp(o.App, o.Ranks, o.PerRankN, o.Steps, cleanStore)
	if err != nil {
		return nil, err
	}
	clean, err := cleanTG.Run(core.JobSpec{
		Ranks: o.Ranks, RanksPerNode: o.RanksPerNode, App: cleanApp,
		SkipSteps: o.SkipSteps, MemPerRankGB: mem,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: clean baseline failed: %w", err)
	}
	cleanS := virtualDuration(clean)

	tg, err := core.NewTarget(o.Platform, o.Seed)
	if err != nil {
		return nil, err
	}
	cpn := tg.Platform.CoresPerNode()
	if o.RanksPerNode > 0 && o.RanksPerNode < cpn {
		cpn = o.RanksPerNode
	}
	nodes := (o.Ranks + cpn - 1) / cpn

	plan := o.Plan
	if plan == nil {
		if o.StormWave > 0 {
			plan, err = fault.NewStorm(fault.StormSpec{
				Seed: o.Seed, Nodes: nodes, Horizon: cleanS,
				WaveSize: o.StormWave, Cascades: o.StormCascades,
				StragglerBursts: o.StormBursts,
			})
		} else {
			plan, err = fault.New(fault.Spec{
				Seed: o.Seed, Nodes: nodes, Horizon: cleanS,
				Crashes: o.Crashes, Preemptions: o.Preemptions, Degradations: o.Degradations,
			})
		}
		if err != nil {
			return nil, err
		}
	}
	return &superSetup{
		o: o, tg: tg, clean: clean, cleanS: cleanS,
		plan: plan, nodes: nodes, cpn: cpn, mem: mem,
	}, nil
}

// newReplacementMarket builds the replacement spot market both recovery
// loops buy capacity from: nil on marketless platforms, seeded at Seed+2,
// with the on-demand pool capped when OnDemandSupply asks for it (the
// capped pool is what makes acquisition exhaustion — and therefore the
// autoscaler's backoff path — reachable).
func (s *superSetup) newReplacementMarket() *spot.Market {
	p := s.tg.Platform
	if p.SpotPerNodeHour <= 0 {
		return nil
	}
	market := spot.NewMarket(s.o.Seed+2, p.CostPerNodeHour)
	if s.o.OnDemandSupply != 0 {
		n := s.o.OnDemandSupply
		if n < 0 {
			n = 0
		}
		market.LimitOnDemand(n)
	}
	market.Observe(s.o.Obs)
	return market
}

// RunSupervised executes a weak-scaling job under a fault plan with the
// paper-grade recovery loop: classify the failure, back off with jitter,
// re-provision replacement capacity (spot first, on-demand fallback — the
// paper's "mix"), restore the last checkpoint, and degrade to fewer ranks
// when no replacement is available. Everything is deterministic for equal
// seeds.
func RunSupervised(o FaultOptions) (*RecoveryReport, error) {
	o = o.withDefaults()
	s, err := newSuperSetup(o)
	if err != nil {
		return nil, err
	}
	switch o.Policy {
	case PolicyRestart:
		return runRestart(s)
	case PolicyShrink:
		rep, _, err := runShrinkContinue(s)
		return rep, err
	case PolicyMigrate:
		rep, _, err := runMigrate(s)
		return rep, err
	default:
		return nil, fmt.Errorf("bench: unknown recovery policy %q (want %q, %q or %q)",
			o.Policy, PolicyRestart, PolicyShrink, PolicyMigrate)
	}
}

// runRestart is the checkpoint-restart recovery loop.
func runRestart(s *superSetup) (*RecoveryReport, error) {
	o := s.o
	tg, p := s.tg, s.tg.Platform
	cpn := s.cpn
	clean, cleanS, plan := s.clean, s.cleanS, s.plan

	fatals := plan.Failures()
	degrades := plan.Degradations()
	maxAttempts := o.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = len(fatals) + 3
	}

	rep := &RecoveryReport{
		Platform: o.Platform, App: o.App, Policy: PolicyRestart,
		Ranks: o.Ranks, FinalRanks: o.Ranks,
		Plan: plan, Clean: clean, CleanVirtualS: cleanS,
	}
	var rec trace.Recorder
	rec.Observe(o.Obs)
	bo := fault.NewBackoff(o.BackoffBaseS, o.BackoffCapS, o.Seed+1)
	market := s.newReplacementMarket()
	spares := o.SpareNodes

	ranks := o.Ranks
	store := newCkptStore(ranks)
	app, appMem, err := newSupervisedApp(o.App, ranks, o.PerRankN, o.Steps, tapped(store, ranks, o.ckptTap))
	if err != nil {
		return nil, err
	}

	// replacementPremiumPerHour accumulates the per-hour premium of every
	// replacement node over the typical spot rate; it is priced over the
	// successful attempt's duration once known.
	var replacementPremiumPerHour float64

	degrade := func(atS float64, toRanks int, why string) error {
		to := degradedShape(ranks, toRanks)
		if to < 1 {
			return fmt.Errorf("bench: cannot degrade below 1 rank (%s)", why)
		}
		rec.Record(atS, "degrade", "re-partitioning onto %d of %d ranks (%s); checkpoints at the old size are discarded",
			to, ranks, why)
		ranks = to
		rep.Degraded = true
		store = newCkptStore(ranks)
		app, appMem, err = newSupervisedApp(o.App, ranks, o.PerRankN, o.Steps, tapped(store, ranks, o.ckptTap))
		return err
	}

	for attempt := 1; attempt <= maxAttempts; attempt++ {
		rep.Attempts = attempt
		if attempt > 1 {
			// Establish the cross-rank restore line: ranks killed one step
			// apart all fall back to the latest step every rank saved.
			if lo, hi := store.sync(); lo >= 0 {
				if hi > lo {
					rec.Record(0, "restore", "attempt %d resumes all %d ranks from the checkpoint after step %d (step-%d blobs from ranks that raced ahead are discarded)",
						attempt, ranks, lo, hi)
				} else {
					rec.Record(0, "restore", "attempt %d resumes all %d ranks from the checkpoint after step %d",
						attempt, ranks, lo)
				}
			}
		}
		events := append([]fault.Event(nil), degrades...)
		var armed *fault.Event
		if len(fatals) > 0 {
			// Arm only the earliest remaining fatal event: which of several
			// armed crashes trips first would otherwise race in real time.
			armed = &fatals[0]
			events = append(events, *armed)
			if armed.Kind == fault.KindPreempt {
				rec.Record(armed.NoticeAt, "notice",
					"spot interruption notice for node %d (reclaim at t=%.1fs)", armed.Node, armed.At)
			}
		}

		result, af, err := tg.Attempt(core.JobSpec{
			Ranks: ranks, RanksPerNode: o.RanksPerNode, App: app,
			SkipSteps: o.SkipSteps, MemPerRankGB: appMem, Faults: events, Obs: o.Obs,
		})
		if err != nil {
			switch fault.Classify(err) {
			case fault.ClassCapacity, fault.ClassResource:
				// Retrying the same shape is futile — shrink instead.
				if derr := degrade(0, ranks-1, err.Error()); derr != nil {
					return nil, derr
				}
				continue
			default:
				return nil, err
			}
		}
		if af == nil {
			rep.Final = result
			rep.FinalRanks = ranks
			rep.FinalVirtualS = virtualDuration(result)
			rep.MakespanS = rep.WastedVirtualS + rep.FinalVirtualS
			rep.RecoveryCostUSD += replacementPremiumPerHour * rep.FinalVirtualS / 3600
			rec.Record(rep.FinalVirtualS, "complete", "attempt %d finished on %d ranks", attempt, ranks)
			rep.Decisions = rec.Decisions()
			return rep, nil
		}

		switch fault.Classify(af) {
		case fault.ClassNodeLoss:
			preempted := armed != nil && armed.Kind == fault.KindPreempt
			kind := "crash"
			// A preemption was announced: the supervisor reacts at the
			// notice, not at the kill, so replacement provisioning is
			// staged inside the two-minute window.
			provAt := af.At
			if preempted {
				kind = "preemption"
				provAt = armed.NoticeAt
			}
			rec.Record(af.At, "failure", "%s killed node %d at t=%.1fs (attempt %d): %v",
				kind, af.Node, af.At, attempt, fault.Classify(af))
			if len(fatals) > 0 {
				fatals = fatals[1:]
			}
			// The whole attempt up to the failure is paid for; the part
			// after the last checkpoint is recomputed.
			rep.WastedVirtualS += af.At
			rep.RecoveryCostUSD += tg.Billing.JobCost(af.At, ranks)

			// Re-provision replacement capacity for the lost node.
			switch {
			case market != nil:
				bid := o.SpotBidFraction * p.CostPerNodeHour
				repl, err := market.AcquireMix(1, bid, 1, 3)
				if err != nil {
					if !errors.Is(err, spot.ErrExhausted) {
						return nil, err
					}
					// A capped market can sell out entirely; restart has no
					// backoff-and-regrow machinery, so it degrades exactly
					// like a marketless platform out of spares.
					rec.Record(provAt, "provision", "spot and on-demand supply exhausted; no replacement for node %d", af.Node)
					curNodes := (ranks + cpn - 1) / cpn
					if derr := degrade(af.At, (curNodes-1)*cpn, "market exhausted"); derr != nil {
						return nil, derr
					}
					break
				}
				nd := repl.Nodes[0]
				if nd.Spot {
					rec.Record(provAt, "provision", "replacement spot instance at $%.3f/h (bid $%.3f)",
						nd.PricePerHour, bid)
				} else {
					rec.Record(provAt, "provision", "spot market could not fill the bid; on-demand replacement at $%.2f/h — the paper's forced mix",
						nd.PricePerHour)
				}
				if nd.PricePerHour > p.SpotPerNodeHour {
					replacementPremiumPerHour += nd.PricePerHour - p.SpotPerNodeHour
				}
			case spares > 0:
				spares--
				rec.Record(provAt, "provision", "cold spare replaces node %d (%d spare(s) left)",
					af.Node, spares)
			default:
				curNodes := (ranks + cpn - 1) / cpn
				if derr := degrade(af.At, (curNodes-1)*cpn, "no replacement capacity"); derr != nil {
					return nil, derr
				}
			}

			if preempted {
				// The notice lead absorbed the reaction: the replacement
				// was requested when the notice arrived, so the job
				// restarts as soon as the instance is reclaimed, with no
				// backoff delay charged — the measurable benefit of a
				// preemption over an unannounced crash.
				rec.Record(af.At, "drain", "notice window staged the replacement; restarting without backoff (attempt %d)", attempt)
			} else {
				d := bo.Next()
				rep.WastedVirtualS += d
				rep.BackoffS += d
				rec.Record(af.At+d, "backoff", "retrying after %.1fs (attempt %d)", d, attempt)
			}
		default:
			rep.Decisions = rec.Decisions()
			return nil, fmt.Errorf("bench: unrecoverable %v failure: %w", fault.Classify(af), af)
		}
	}
	rep.Decisions = rec.Decisions()
	return nil, fmt.Errorf("bench: gave up after %d attempts (%d fault(s) outstanding)",
		maxAttempts, len(fatals))
}

// FormatRecovery renders a supervised run: the decision log, then the
// recovered numbers next to the clean baseline with the overhead itemised.
func FormatRecovery(rep *RecoveryReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-injected %s on %s (%d ranks, policy %s)\n",
		strings.ToUpper(rep.App), rep.Platform, rep.Ranks, rep.Policy)
	fmt.Fprintf(&b, "%s\n\nsupervisor decisions:\n", rep.Plan)
	var rec trace.Recorder
	for _, d := range rep.Decisions {
		rec.Record(d.AtS, d.Kind, "%s", d.Detail)
	}
	b.WriteString(rec.Format())
	b.WriteString("\n\n")

	errKey := "max_err"
	if rep.App == "ns" {
		errKey = "vel_max_err"
	}
	fmt.Fprintf(&b, "%-24s %14s %14s\n", "", "clean", "recovered")
	fmt.Fprintf(&b, "%-24s %14d %14d\n", "ranks", rep.Clean.Ranks, rep.Final.Ranks)
	fmt.Fprintf(&b, "%-24s %14d %14d\n", "attempts", 1, rep.Attempts)
	fmt.Fprintf(&b, "%-24s %14.3f %14.3f\n", "virtual duration (s)", rep.CleanVirtualS, rep.FinalVirtualS)
	fmt.Fprintf(&b, "%-24s %14.2e %14.2e\n", errKey, rep.Clean.Metrics[errKey], rep.Final.Metrics[errKey])
	fmt.Fprintf(&b, "%-24s %14s %14.3f\n", "wasted virtual (s)", "--", rep.WastedVirtualS)
	fmt.Fprintf(&b, "%-24s %14s %14.3f\n", "  of which backoff (s)", "--", rep.BackoffS)
	fmt.Fprintf(&b, "%-24s %14.3f %14.3f\n", "makespan (s)", rep.CleanVirtualS, rep.MakespanS)
	fmt.Fprintf(&b, "%-24s %14s %14.5f\n", "recovery cost (USD)", "--", rep.RecoveryCostUSD)
	if st := rep.Shrink; st != nil && st.Shrinks > 0 {
		fmt.Fprintf(&b, "\nshrink-and-continue mechanics:\n")
		fmt.Fprintf(&b, "  shrinks %d (node(s) %v lost); %d survivor ranks on grid %dx%dx%d, imbalance %.3f\n",
			st.Shrinks, st.DeadNodes, st.Survivors, st.Grid[0], st.Grid[1], st.Grid[2], st.PartitionImbalance)
		fmt.Fprintf(&b, "  resumed after step %d; agreement %.4fs, redistribution %.4fs, %d message(s) revoked\n",
			st.RestoreStep, st.AgreeS, st.RedistributeS, st.RevokedMsgs)
		fmt.Fprintf(&b, "  buddy mirroring: %.4fs critical-path overhead, %d bytes exchanged\n",
			st.BuddyOverheadS, st.BuddyBytes)
	}
	if mg := rep.Migrate; mg != nil {
		fmt.Fprintf(&b, "\nproactive migration mechanics:\n")
		fmt.Fprintf(&b, "  %d migration(s) (node(s) %v replaced), %d fallback shrink(s), %d fallback restart(s)\n",
			mg.Migrations, mg.ReplacedNodes, mg.FallbackShrinks, mg.FallbackRestarts)
		fmt.Fprintf(&b, "  evacuated %d shard(s), %d bytes, %.4fs of priced copy inside %.1fs of notice window(s)\n",
			mg.EvacuatedBlobs, mg.CopyBytes, mg.CopyS, mg.WindowS)
		if mg.Migrations > 0 {
			fmt.Fprintf(&b, "  last migration resumed after step %d at the restored width\n", mg.RestoreStep)
		}
		if mg.Coalesced > 0 || mg.Replans > 0 {
			fmt.Fprintf(&b, "  storm arbiter: %d notice(s) coalesced into earlier recovery points, %d cascade re-plan(s)\n",
				mg.Coalesced, mg.Replans)
		}
		if mg.ProvisionRetries > 0 {
			fmt.Fprintf(&b, "  autoscaler: %d exhausted-market backoff retry(ies) while re-provisioning\n",
				mg.ProvisionRetries)
		}
		if mg.RegrownNodes > 0 {
			fmt.Fprintf(&b, "  autoscaler re-grew %d deficit node(s) back toward the submitted width\n",
				mg.RegrownNodes)
		}
	}
	if rep.Degraded {
		fmt.Fprintf(&b, "\njob degraded gracefully: finished on %d of %d submitted ranks\n",
			rep.FinalRanks, rep.Ranks)
	}
	return b.String()
}

// FormatRecoveryComparison renders the three policies' reports side by
// side: the same fault plan, the same application, only the recovery
// differs.
func FormatRecoveryComparison(c *RecoveryComparison) string {
	r, s, m := c.Restart, c.Shrink, c.Migrate
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery-policy comparison: %s on %s (%d ranks)\n",
		strings.ToUpper(r.App), r.Platform, r.Ranks)
	fmt.Fprintf(&b, "%s\n\n", r.Plan)
	errKey := "max_err"
	if r.App == "ns" {
		errKey = "vel_max_err"
	}
	row := func(label, fmtStr string, vs ...any) {
		fmt.Fprintf(&b, "%-26s", label)
		for _, v := range vs {
			fmt.Fprintf(&b, " "+fmtStr, v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-26s %14s %14s %14s\n", "", PolicyRestart, PolicyShrink, PolicyMigrate)
	row("final ranks", "%14d", r.FinalRanks, s.FinalRanks, m.FinalRanks)
	row("attempts", "%14d", r.Attempts, s.Attempts, m.Attempts)
	row("wasted virtual (s)", "%14.3f", r.WastedVirtualS, s.WastedVirtualS, m.WastedVirtualS)
	row("makespan (s)", "%14.3f", r.MakespanS, s.MakespanS, m.MakespanS)
	row("recovery cost (USD)", "%14.5f", r.RecoveryCostUSD, s.RecoveryCostUSD, m.RecoveryCostUSD)
	row(errKey, "%14.2e", r.Final.Metrics[errKey], s.Final.Metrics[errKey], m.Final.Metrics[errKey])
	if st := s.Shrink; st != nil {
		fmt.Fprintf(&b, "\nshrink path paid %.4fs of buddy mirroring (%d bytes) and %.4fs of agreement+redistribution\nto avoid %.3fs of restart waste.\n",
			st.BuddyOverheadS, st.BuddyBytes, st.AgreeS+st.RedistributeS,
			r.WastedVirtualS-s.WastedVirtualS)
	}
	if mg := m.Migrate; mg != nil {
		if mg.Migrations > 0 {
			fmt.Fprintf(&b, "\nmigrate path copied %d shard(s) (%d bytes, %.4fs) inside the notice window(s)\nand finished on %d ranks against shrink's %d, wasting %.3fs less than shrink.\n",
				mg.EvacuatedBlobs, mg.CopyBytes, mg.CopyS,
				m.FinalRanks, s.FinalRanks, s.WastedVirtualS-m.WastedVirtualS)
		} else {
			fmt.Fprintf(&b, "\nmigrate path found no usable notice window and fell back to reactive recovery\n(%d shrink(s), %d restart(s)), matching shrink-continue.\n",
				mg.FallbackShrinks, mg.FallbackRestarts)
		}
	}
	return b.String()
}
