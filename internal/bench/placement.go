package bench

import (
	"fmt"
	"strings"

	"heterohpc/internal/core"
	"heterohpc/internal/spot"
)

// PlacementRow is one row of Table II.
type PlacementRow struct {
	Ranks     int
	Instances int
	// Full: on-demand instances in a single placement group.
	FullTime float64
	FullCost float64
	// Mix: spot + on-demand top-up across several placement groups.
	MixTime    float64
	MixEstCost float64
	// SpotShare is the fraction of the mix fleet acquired at spot prices.
	SpotShare float64
	Err       error
}

// PlacementResult is the Table II experiment.
type PlacementResult struct {
	Rows []PlacementRow
	// Groups is the placement-group count of the mix configuration.
	Groups int
}

// RunPlacement reproduces Table II: the RD application on EC2 cc2.8xlarge,
// once with fully-paid instances in a single placement group and once with
// a spot-request mix spread over four placement groups in the same
// availability zone.
func RunPlacement(o Options) (*PlacementResult, error) {
	o = o.withDefaults()
	tg, err := core.NewTarget("ec2", o.Seed)
	if err != nil {
		return nil, err
	}
	const groups = 4
	res := &PlacementResult{Groups: groups}
	for _, ranks := range WeakSeries {
		if ranks > o.MaxRanks {
			break
		}
		// Each configuration is an independent acquisition (the paper
		// assembled each fleet separately), so every row sees fresh market
		// supply.
		market := spot.NewMarket(o.Seed+uint64(ranks), tg.Platform.CostPerNodeHour)
		market.Observe(o.Obs)
		app, mem, err := newApp("rd", ranks, o)
		if err != nil {
			return nil, err
		}
		nodes := tg.Platform.NodesFor(ranks)
		row := PlacementRow{Ranks: ranks, Instances: nodes}

		// Full: single placement group, on-demand.
		fullRep, err := tg.Run(core.JobSpec{
			Ranks: ranks, App: app, SkipSteps: o.SkipSteps, MemPerRankGB: mem, Obs: o.Obs,
		})
		if err != nil {
			row.Err = err
			res.Rows = append(res.Rows, row)
			break
		}
		row.FullTime = fullRep.Iter.MaxTotal
		row.FullCost = tg.Billing.PerIteration(fullRep.Iter.MaxTotal, ranks)

		// Mix: acquire spot + on-demand across placement groups; the fleet
		// layout feeds the network model through GroupOfNode.
		asm, err := market.AcquireMix(nodes, tg.Platform.CostPerNodeHour/2, groups, 6)
		if err != nil {
			return nil, err
		}
		appMix, _, err := newApp("rd", ranks, o)
		if err != nil {
			return nil, err
		}
		mixRep, err := tg.Run(core.JobSpec{
			Ranks: ranks, App: appMix, SkipSteps: o.SkipSteps, MemPerRankGB: mem,
			GroupOfNode: asm.GroupOfNode(), Obs: o.Obs,
		})
		if err != nil {
			row.Err = err
			res.Rows = append(res.Rows, row)
			break
		}
		row.MixTime = mixRep.Iter.MaxTotal
		// Table II prices the mix at the pure spot rate ("est. cost").
		row.MixEstCost = spot.EstimateSpotCost(mixRep.Iter.MaxTotal, nodes,
			tg.Platform.SpotPerNodeHour)
		row.SpotShare = float64(asm.SpotCount()) / float64(len(asm.Nodes))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatPlacement renders Table II.
func FormatPlacement(r *PlacementResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — EC2 cc2.8xlarge assemblies: full on-demand, single placement group\n")
	fmt.Fprintf(&b, "vs. spot mix across %d placement groups (RD application)\n", r.Groups)
	fmt.Fprintf(&b, "%6s %4s | %10s %14s | %10s %14s %6s\n",
		"#mpi", "#", "time[s]", "real cost[$]", "time[s]", "est. cost[$]", "spot%")
	for _, row := range r.Rows {
		if row.Err != nil {
			fmt.Fprintf(&b, "%6d %4d | -- %s\n", row.Ranks, row.Instances, row.Err)
			continue
		}
		fmt.Fprintf(&b, "%6d %4d | %10.2f %14.4f | %10.2f %14.4f %5.0f%%\n",
			row.Ranks, row.Instances, row.FullTime, row.FullCost,
			row.MixTime, row.MixEstCost, row.SpotShare*100)
	}
	return b.String()
}
