package krylov

import (
	"fmt"
	"math"

	"heterohpc/internal/sparse"
)

// GMRES solves A·x = b with restarted, right-preconditioned GMRES(m) using
// modified Gram–Schmidt Arnoldi and Givens rotations. Result.Iterations
// counts total inner iterations across restarts.
func GMRES(sys System, M Preconditioner, b, x []float64, opt Options) (Result, error) {
	res, err := gmres(sys, M, b, x, opt)
	opt.Obs.Solve("gmres", res.Iterations, res.Residual, res.Converged)
	return res, err
}

func gmres(sys System, M Preconditioner, b, x []float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := sys.NOwned()
	if len(b) < n || len(x) < n {
		return Result{}, fmt.Errorf("krylov: vector lengths %d,%d < %d", len(b), len(x), n)
	}
	if M == nil {
		M = Identity{}
	}
	m := opt.Restart
	res := Result{}
	bnorm := norm2(sys, b)
	if bnorm == 0 {
		for i := 0; i < n; i++ {
			x[i] = 0
		}
		res.Converged = true
		return res, nil
	}

	ws := opt.workspace()
	// H[i][j], i row, j col (column Hessenberg); yAll is the triangular-
	// solve solution, sliced to the cycle's dimension below.
	V, H, cs, sn, g, yAll := ws.gmres(n, m)
	vv := ws.vectors(n, 2)
	w, z := vv[0], vv[1]

	for res.Iterations < opt.MaxIter {
		// r = b − A·x
		sys.Apply(x, V[0])
		for i := 0; i < n; i++ {
			V[0][i] = b[i] - V[0][i]
		}
		sys.ChargeCompute(float64(n), 24*float64(n))
		beta := norm2(sys, V[0])
		rel := beta / bnorm
		res.Residual = rel
		if rel < opt.Tol {
			res.Converged = true
			return res, nil
		}
		if beta == 0 || math.IsNaN(beta) {
			return res, fmt.Errorf("%w: residual norm %v", ErrBreakdown, beta)
		}
		sparse.Scale(n, 1/beta, V[0], sys)
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && res.Iterations < opt.MaxIter; k++ {
			// w = A·M⁻¹·v_k
			M.Apply(V[k], z)
			sys.Apply(z, w)
			// Modified Gram–Schmidt.
			for i := 0; i <= k; i++ {
				h := dot(sys, w, V[i])
				H[i][k] = h
				sparse.Axpy(n, -h, V[i], w, sys)
			}
			hk1 := norm2(sys, w)
			H[k+1][k] = hk1
			if hk1 > 0 {
				sparse.CopyN(n, V[k+1], w, sys)
				sparse.Scale(n, 1/hk1, V[k+1], sys)
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*H[i][k] + sn[i]*H[i+1][k]
				H[i+1][k] = -sn[i]*H[i][k] + cs[i]*H[i+1][k]
				H[i][k] = t
			}
			// New rotation to annihilate H[k+1][k].
			denom := math.Hypot(H[k][k], H[k+1][k])
			if denom == 0 {
				return res, fmt.Errorf("%w: zero Hessenberg column at step %d", ErrBreakdown, k)
			}
			cs[k] = H[k][k] / denom
			sn[k] = H[k+1][k] / denom
			H[k][k] = denom
			H[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]

			res.Iterations++
			rel = math.Abs(g[k+1]) / bnorm
			res.Residual = rel
			if opt.RecordHistory {
				res.History = append(res.History, rel)
			}
			if rel < opt.Tol || hk1 == 0 {
				k++
				break
			}
		}
		// Solve the k×k triangular system H·y = g.
		y := yAll[:k]
		for i := k - 1; i >= 0; i-- {
			sum := g[i]
			for j := i + 1; j < k; j++ {
				sum -= H[i][j] * y[j]
			}
			y[i] = sum / H[i][i]
		}
		// x += M⁻¹·(V·y)
		for i := 0; i < n; i++ {
			w[i] = 0
		}
		for j := 0; j < k; j++ {
			sparse.Axpy(n, y[j], V[j], w, sys)
		}
		M.Apply(w, z)
		sparse.Axpy(n, 1, z, x, sys)
		if res.Residual < opt.Tol {
			// Verify with the true residual before declaring victory.
			sys.Apply(x, w)
			for i := 0; i < n; i++ {
				w[i] = b[i] - w[i]
			}
			sys.ChargeCompute(float64(n), 24*float64(n))
			res.Residual = norm2(sys, w) / bnorm
			if res.Residual < 10*opt.Tol {
				res.Converged = true
				return res, nil
			}
		}
	}
	return res, nil
}
