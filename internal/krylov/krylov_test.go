package krylov

import (
	"math"
	"testing"
	"testing/quick"

	"heterohpc/internal/sparse"
	"heterohpc/internal/stats"
)

// lap1d builds the n×n tridiagonal Laplacian (SPD).
func lap1d(n int) *sparse.CSR {
	var c sparse.COO
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	m, err := sparse.NewCSRFromCOO(n, n, &c)
	if err != nil {
		panic(err)
	}
	return m
}

// convdiff builds a nonsymmetric 1-D convection-diffusion matrix.
func convdiff(n int, pe float64) *sparse.CSR {
	var c sparse.COO
	for i := 0; i < n; i++ {
		c.Add(i, i, 2+pe/2)
		if i > 0 {
			c.Add(i, i-1, -1-pe)
		}
		if i < n-1 {
			c.Add(i, i+1, -1+pe/2)
		}
	}
	m, err := sparse.NewCSRFromCOO(n, n, &c)
	if err != nil {
		panic(err)
	}
	return m
}

// denseSolve solves A x = b by Gaussian elimination with partial pivoting
// (test oracle).
func denseSolve(a [][]float64, b []float64) []float64 {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x
}

func residual(a *sparse.CSR, x, b []float64) float64 {
	y := make([]float64, a.NRows)
	a.MulVec(x, y, sparse.NopCharger{})
	var num, den float64
	for i := range b {
		d := b[i] - y[i]
		num += d * d
		den += b[i] * b[i]
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

func preconds(a *sparse.CSR) map[string]Preconditioner {
	return map[string]Preconditioner{
		"identity": Identity{},
		"jacobi":   NewJacobi(a, a.NRows, nil),
		"sgs":      NewSGS(a, a.NRows, nil),
		"ilu0":     NewILU0(a, a.NRows, nil),
	}
}

func TestCGSolvesLaplacian(t *testing.T) {
	const n = 60
	a := lap1d(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	for name, M := range preconds(a) {
		if err := M.Setup(); err != nil {
			t.Fatalf("%s setup: %v", name, err)
		}
		x := make([]float64, n)
		res, err := CG(SerialSystem{A: a}, M, b, x, Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged {
			t.Fatalf("%s: CG did not converge (res %v after %d)", name, res.Residual, res.Iterations)
		}
		if r := residual(a, x, b); r > 1e-8 {
			t.Fatalf("%s: true residual %v", name, r)
		}
	}
}

func TestPreconditioningAcceleratesCG(t *testing.T) {
	const n = 200
	a := lap1d(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	iters := map[string]int{}
	for name, M := range preconds(a) {
		if err := M.Setup(); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		res, err := CG(SerialSystem{A: a}, M, b, x, Options{Tol: 1e-8, MaxIter: 2000})
		if err != nil || !res.Converged {
			t.Fatalf("%s: %v %+v", name, err, res)
		}
		iters[name] = res.Iterations
	}
	if iters["ilu0"] >= iters["identity"] {
		t.Fatalf("ILU0 (%d iters) not faster than identity (%d)", iters["ilu0"], iters["identity"])
	}
	if iters["sgs"] >= iters["identity"] {
		t.Fatalf("SGS (%d iters) not faster than identity (%d)", iters["sgs"], iters["identity"])
	}
}

func TestBiCGStabSolvesNonsymmetric(t *testing.T) {
	const n = 50
	a := convdiff(n, 0.8)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Cos(float64(i) / 3)
	}
	for name, M := range preconds(a) {
		if err := M.Setup(); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		res, err := BiCGStab(SerialSystem{A: a}, M, b, x, Options{Tol: 1e-10, MaxIter: 1000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged {
			t.Fatalf("%s: no convergence: %+v", name, res)
		}
		if r := residual(a, x, b); r > 1e-8 {
			t.Fatalf("%s: true residual %v", name, r)
		}
	}
}

func TestGMRESSolvesNonsymmetric(t *testing.T) {
	const n = 50
	a := convdiff(n, 0.8)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	for name, M := range preconds(a) {
		if err := M.Setup(); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		res, err := GMRES(SerialSystem{A: a}, M, b, x, Options{Tol: 1e-10, MaxIter: 500, Restart: 20})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged {
			t.Fatalf("%s: no convergence: %+v", name, res)
		}
		if r := residual(a, x, b); r > 1e-8 {
			t.Fatalf("%s: true residual %v", name, r)
		}
	}
}

func TestSolversMatchDenseOracle(t *testing.T) {
	const n = 25
	a := convdiff(n, 0.5)
	dense := a.Dense()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.7)
	}
	want := denseSolve(dense, b)
	type solver func(System, Preconditioner, []float64, []float64, Options) (Result, error)
	for name, s := range map[string]solver{"bicgstab": BiCGStab, "gmres": GMRES} {
		x := make([]float64, n)
		M := NewILU0(a, n, nil)
		if err := M.Setup(); err != nil {
			t.Fatal(err)
		}
		if _, err := s(SerialSystem{A: a}, M, b, x, Options{Tol: 1e-12, MaxIter: 500}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				t.Fatalf("%s: x[%d] = %v, oracle %v", name, i, x[i], want[i])
			}
		}
	}
	// CG on the SPD problem.
	aspd := lap1d(n)
	wantSPD := denseSolve(aspd.Dense(), b)
	x := make([]float64, n)
	if _, err := CG(SerialSystem{A: aspd}, Identity{}, b, x, Options{Tol: 1e-13, MaxIter: 500}); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-wantSPD[i]) > 1e-6*(1+math.Abs(wantSPD[i])) {
			t.Fatalf("cg: x[%d] = %v, oracle %v", i, x[i], wantSPD[i])
		}
	}
}

func TestZeroRHS(t *testing.T) {
	a := lap1d(10)
	b := make([]float64, 10)
	x := make([]float64, 10)
	x[3] = 5 // nonzero guess must be reset
	res, err := CG(SerialSystem{A: a}, nil, b, x, Options{})
	if err != nil || !res.Converged {
		t.Fatalf("%v %+v", err, res)
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatalf("x[%d] = %v", i, x[i])
		}
	}
}

func TestResidualHistoryRecorded(t *testing.T) {
	a := lap1d(30)
	b := make([]float64, 30)
	b[0] = 1
	x := make([]float64, 30)
	res, err := CG(SerialSystem{A: a}, nil, b, x, Options{RecordHistory: true, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations {
		t.Fatalf("history %d entries for %d iterations", len(res.History), res.Iterations)
	}
	if res.History[len(res.History)-1] >= res.History[0] {
		t.Fatal("residual did not decrease")
	}
}

func TestMaxIterRespected(t *testing.T) {
	a := lap1d(400)
	b := make([]float64, 400)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, 400)
	res, err := CG(SerialSystem{A: a}, nil, b, x, Options{Tol: 1e-14, MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 5 {
		t.Fatalf("expected unconverged after 5 iters, got %+v", res)
	}
}

func TestVectorLengthValidation(t *testing.T) {
	a := lap1d(5)
	short := make([]float64, 2)
	if _, err := CG(SerialSystem{A: a}, nil, short, short, Options{}); err == nil {
		t.Error("CG accepted short vectors")
	}
	if _, err := BiCGStab(SerialSystem{A: a}, nil, short, short, Options{}); err == nil {
		t.Error("BiCGStab accepted short vectors")
	}
	if _, err := GMRES(SerialSystem{A: a}, nil, short, short, Options{}); err == nil {
		t.Error("GMRES accepted short vectors")
	}
}

func TestJacobiExactOnDiagonal(t *testing.T) {
	var c sparse.COO
	c.Add(0, 0, 2)
	c.Add(1, 1, 4)
	a, _ := sparse.NewCSRFromCOO(2, 2, &c)
	j := NewJacobi(a, 2, nil)
	if err := j.Setup(); err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 2)
	j.Apply([]float64{2, 4}, z)
	if z[0] != 1 || z[1] != 1 {
		t.Fatalf("jacobi apply %v", z)
	}
}

func TestJacobiZeroDiagonal(t *testing.T) {
	var c sparse.COO
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	a, _ := sparse.NewCSRFromCOO(2, 2, &c)
	if err := NewJacobi(a, 2, nil).Setup(); err == nil {
		t.Error("zero diagonal accepted")
	}
	if err := NewILU0(a, 2, nil).Setup(); err == nil {
		t.Error("ILU0 missing diagonal accepted")
	}
}

func TestILU0ExactOnTriangular(t *testing.T) {
	// For a lower-triangular matrix ILU(0) is an exact factorisation, so one
	// application solves the system exactly.
	var c sparse.COO
	c.Add(0, 0, 2)
	c.Add(1, 0, 1)
	c.Add(1, 1, 3)
	c.Add(2, 1, -1)
	c.Add(2, 2, 4)
	a, _ := sparse.NewCSRFromCOO(3, 3, &c)
	p := NewILU0(a, 3, nil)
	if err := p.Setup(); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2, 0.5}
	b := make([]float64, 3)
	a.MulVec(x, b, sparse.NopCharger{})
	z := make([]float64, 3)
	p.Apply(b, z)
	for i := range x {
		if math.Abs(z[i]-x[i]) > 1e-12 {
			t.Fatalf("z = %v, want %v", z, x)
		}
	}
}

func TestILU0ExactOnTridiagonal(t *testing.T) {
	// Tridiagonal matrices have no fill-in, so ILU(0) = LU and the
	// preconditioner is a direct solver.
	a := lap1d(20)
	p := NewILU0(a, 20, nil)
	if err := p.Setup(); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 20)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	b := make([]float64, 20)
	a.MulVec(x, b, sparse.NopCharger{})
	z := make([]float64, 20)
	p.Apply(b, z)
	for i := range x {
		if math.Abs(z[i]-x[i]) > 1e-10 {
			t.Fatalf("ILU0 not exact on tridiagonal: z[%d]=%v want %v", i, z[i], x[i])
		}
	}
}

// Property: CG solves random SPD systems A = Lᵀ·L + I to the requested
// tolerance.
func TestCGRandomSPDProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		const n = 12
		// Random lower triangular L with unit-ish diagonal.
		l := make([][]float64, n)
		for i := range l {
			l[i] = make([]float64, n)
			for j := 0; j <= i; j++ {
				l[i][j] = rng.Range(-0.5, 0.5)
			}
			l[i][i] += 1.5
		}
		var c sparse.COO
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var v float64
				for k := 0; k <= min(i, j); k++ {
					v += l[i][k] * l[j][k]
				}
				if i == j {
					v += 1
				}
				c.Add(i, j, v)
			}
		}
		a, err := sparse.NewCSRFromCOO(n, n, &c)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Range(-1, 1)
		}
		x := make([]float64, n)
		res, err := CG(SerialSystem{A: a}, nil, b, x, Options{Tol: 1e-10, MaxIter: 300})
		if err != nil || !res.Converged {
			return false
		}
		return residual(a, x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkCGILU0Laplacian(b *testing.B) {
	a := lap1d(2000)
	rhs := make([]float64, 2000)
	for i := range rhs {
		rhs[i] = 1
	}
	M := NewILU0(a, 2000, nil)
	if err := M.Setup(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, 2000)
		if _, err := CG(SerialSystem{A: a}, M, rhs, x, Options{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}
