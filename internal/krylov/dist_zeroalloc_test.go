package krylov

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/sparse"
	"heterohpc/internal/vclock"
)

// TestDistributedCGSteadyStateZeroAlloc asserts the full distributed solve
// path — CG over a sparse.DistMatrix, ghost exchange through the Importer,
// scalar allreduces through the mailbox and payload pool — allocates nothing
// once warm. It measures process-wide mallocs across all rank goroutines
// between two barriers, so a single allocation on any rank in any layer
// fails it.
func TestDistributedCGSteadyStateZeroAlloc(t *testing.T) {
	const (
		nranks  = 4
		perRank = 48
		n       = nranks * perRank
		solves  = 10
	)
	topo, err := mp.BlockTopology(nranks, 2)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := netmodel.NewFabric(netmodel.Loopback, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9, BytesPerSec: 1e10})
	if err != nil {
		t.Fatal(err)
	}

	var avg float64 // written by rank 0 between the last barrier and Run's return
	err = w.Run(func(r *mp.Rank) error {
		// 1-D Laplacian on n rows, contiguous block ownership: each rank
		// couples to its neighbours through one ghost row per side.
		base := r.ID() * perRank
		owner := func(g int) int { return g / perRank }
		var coo sparse.COO
		owned := make([]int, perRank)
		for i := 0; i < perRank; i++ {
			g := base + i
			owned[i] = g
			coo.Add(g, g, 2)
			if g > 0 {
				coo.Add(g, g-1, -1)
			}
			if g < n-1 {
				coo.Add(g, g+1, -1)
			}
		}
		dm, err := sparse.NewDistMatrix(r, sparse.NewRowMap(owned), &coo, owner, 300)
		if err != nil {
			return err
		}
		pc := NewILU0(dm.Local(), dm.NOwned(), r)
		if err := pc.Setup(); err != nil {
			return err
		}
		rhs := make([]float64, perRank)
		for i := range rhs {
			rhs[i] = math.Sin(float64(base + i))
		}
		x := make([]float64, perRank)
		opt := Options{Tol: 1e-10, Work: &Workspace{}}
		var sys System = dm
		solve := func() error {
			for j := range x {
				x[j] = 0
			}
			_, err := CG(sys, pc, rhs, x, opt)
			return err
		}
		// Warm everything the steady state touches: workspace vectors,
		// mailbox queues, payload pool, and the barrier path itself.
		for k := 0; k < 2; k++ {
			if err := solve(); err != nil {
				return err
			}
			r.Barrier()
		}
		var before, after runtime.MemStats
		if r.ID() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&before)
		}
		r.Barrier()
		for k := 0; k < solves; k++ {
			if err := solve(); err != nil {
				return err
			}
		}
		r.Barrier()
		if r.ID() == 0 {
			runtime.ReadMemStats(&after)
			avg = float64(after.Mallocs-before.Mallocs) / solves
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same rounding convention as testing.AllocsPerRun: a sub-one average
	// is background noise, one-or-more is a real per-solve allocation.
	if avg >= 1 {
		t.Fatalf("distributed CG steady state: %.2f allocs/solve across the world, want 0", avg)
	}
	if avg > 0 {
		t.Logf("note: %.3f background allocs/solve (below the per-op threshold)", avg)
	}
}

// sanity: the distributed solve above must actually converge; checked here
// once so the alloc test can't silently pass on a broken system.
func TestDistributedCGSolvesLaplacian(t *testing.T) {
	const (
		nranks  = 4
		perRank = 12
		n       = nranks * perRank
	)
	topo, err := mp.BlockTopology(nranks, 2)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := netmodel.NewFabric(netmodel.Loopback, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9, BytesPerSec: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *mp.Rank) error {
		base := r.ID() * perRank
		owner := func(g int) int { return g / perRank }
		var coo sparse.COO
		owned := make([]int, perRank)
		for i := 0; i < perRank; i++ {
			g := base + i
			owned[i] = g
			coo.Add(g, g, 2)
			if g > 0 {
				coo.Add(g, g-1, -1)
			}
			if g < n-1 {
				coo.Add(g, g+1, -1)
			}
		}
		dm, err := sparse.NewDistMatrix(r, sparse.NewRowMap(owned), &coo, owner, 300)
		if err != nil {
			return err
		}
		pc := NewILU0(dm.Local(), dm.NOwned(), r)
		if err := pc.Setup(); err != nil {
			return err
		}
		// Solve A·x = A·1 and expect x = 1.
		ones := make([]float64, perRank)
		for i := range ones {
			ones[i] = 1
		}
		rhs := make([]float64, perRank)
		dm.Apply(ones, rhs)
		x := make([]float64, perRank)
		res, err := CG(dm, pc, rhs, x, Options{Tol: 1e-12, Work: &Workspace{}})
		if err != nil {
			return err
		}
		for i, v := range x {
			if math.Abs(v-1) > 1e-8 {
				return fmt.Errorf("rank %d x[%d] = %v after %d iters", r.ID(), i, v, res.Iterations)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
