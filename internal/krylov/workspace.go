package krylov

// Workspace holds the scratch storage of the iterative solvers so a time
// loop can run one solve per step without reallocating the 4–8 owned-length
// vectors (plus GMRES's Krylov basis) every call. Thread one Workspace per
// rank through Options.Work; the zero value is ready to use and grows on
// demand. A Workspace must not be shared between concurrently running
// solves (one per rank is the natural granularity).
//
// Reuse is value-safe without zeroing: every solver writes each scratch
// vector completely before its first read (residuals via Apply, search
// directions via CopyN, preconditioned vectors via M.Apply), so a dirty
// buffer can never leak values from a previous solve into the arithmetic.
type Workspace struct {
	vecs [][]float64

	// GMRES restart storage, sized for (gmN, gmM).
	gmN, gmM int
	gmV      [][]float64
	gmH      [][]float64
	gmCS     []float64
	gmSN     []float64
	gmG      []float64
	gmY      []float64
}

// vectors returns k owned-length scratch vectors, reusing prior
// allocations whenever their capacity suffices.
func (ws *Workspace) vectors(n, k int) [][]float64 {
	for len(ws.vecs) < k {
		ws.vecs = append(ws.vecs, nil)
	}
	out := ws.vecs[:k]
	for i := range out {
		if cap(out[i]) < n {
			out[i] = make([]float64, n)
			ws.vecs[i] = out[i]
		}
		out[i] = out[i][:n]
	}
	return out
}

// gmres returns the restart-cycle storage for vector length n and restart
// length m: the m+1 basis vectors V, the column Hessenberg H, the Givens
// coefficient arrays cs/sn, the rotated residual g and the triangular-solve
// solution y (the per-cycle allocation hoisted out of the Arnoldi loop).
func (ws *Workspace) gmres(n, m int) (V, H [][]float64, cs, sn, g, y []float64) {
	if ws.gmN < n || ws.gmM < m {
		ws.gmV = make([][]float64, m+1)
		for i := range ws.gmV {
			ws.gmV[i] = make([]float64, n)
		}
		ws.gmH = make([][]float64, m+1)
		for i := range ws.gmH {
			ws.gmH[i] = make([]float64, m)
		}
		ws.gmCS = make([]float64, m)
		ws.gmSN = make([]float64, m)
		ws.gmG = make([]float64, m+1)
		ws.gmY = make([]float64, m)
		ws.gmN, ws.gmM = n, m
	}
	V = ws.gmV[:m+1]
	for i := range V {
		V[i] = V[i][:n]
	}
	H = ws.gmH[:m+1]
	return V, H, ws.gmCS[:m], ws.gmSN[:m], ws.gmG[:m+1], ws.gmY[:m]
}

// workspace returns the Options' workspace, or a fresh private one so the
// solvers never need a nil path.
func (o Options) workspace() *Workspace {
	if o.Work != nil {
		return o.Work
	}
	return &Workspace{}
}
