package krylov

import (
	"fmt"

	"heterohpc/internal/sparse"
)

// Identity is the no-op preconditioner.
type Identity struct{}

// Setup implements Preconditioner.
func (Identity) Setup() error { return nil }

// Apply implements Preconditioner.
func (Identity) Apply(r, z []float64) { copy(z, r) }

// Jacobi is diagonal scaling: z = D⁻¹·r over the local owned block. Across
// ranks it is exactly global Jacobi, since the diagonal is always owned.
type Jacobi struct {
	a    *sparse.CSR
	n    int
	ch   sparse.Charger
	dinv []float64
}

// NewJacobi builds a Jacobi preconditioner over the first n rows/columns of
// a (the owned square block).
func NewJacobi(a *sparse.CSR, n int, ch sparse.Charger) *Jacobi {
	if ch == nil {
		ch = sparse.NopCharger{}
	}
	return &Jacobi{a: a, n: n, ch: ch, dinv: make([]float64, n)}
}

// Setup implements Preconditioner.
func (j *Jacobi) Setup() error {
	for i := 0; i < j.n; i++ {
		s := j.a.Slot(i, i)
		if s < 0 || j.a.Val[s] == 0 {
			return fmt.Errorf("krylov: zero diagonal at row %d", i)
		}
		j.dinv[i] = 1 / j.a.Val[s]
	}
	j.ch.ChargeCompute(float64(j.n), 16*float64(j.n))
	return nil
}

// Apply implements Preconditioner.
func (j *Jacobi) Apply(r, z []float64) {
	for i := 0; i < j.n; i++ {
		z[i] = r[i] * j.dinv[i]
	}
	j.ch.ChargeCompute(float64(j.n), 24*float64(j.n))
}

// SGS is a symmetric Gauss–Seidel sweep over the local owned block — the
// zero-overlap additive-Schwarz variant of SSOR across ranks.
type SGS struct {
	a    *sparse.CSR
	n    int
	ch   sparse.Charger
	dinv []float64
}

// NewSGS builds a symmetric Gauss–Seidel preconditioner over the first n
// rows/columns of a.
func NewSGS(a *sparse.CSR, n int, ch sparse.Charger) *SGS {
	if ch == nil {
		ch = sparse.NopCharger{}
	}
	return &SGS{a: a, n: n, ch: ch, dinv: make([]float64, n)}
}

// Setup implements Preconditioner.
func (s *SGS) Setup() error {
	for i := 0; i < s.n; i++ {
		sl := s.a.Slot(i, i)
		if sl < 0 || s.a.Val[sl] == 0 {
			return fmt.Errorf("krylov: zero diagonal at row %d", i)
		}
		s.dinv[i] = 1 / s.a.Val[sl]
	}
	s.ch.ChargeCompute(float64(s.n), 16*float64(s.n))
	return nil
}

// Apply implements Preconditioner: z = (D+U)⁻¹·D·(D+L)⁻¹·r restricted to the
// owned block (ghost columns are ignored, making this block-local).
func (s *SGS) Apply(r, z []float64) {
	a := s.a
	// Forward sweep: (D+L)·y = r.
	for i := 0; i < s.n; i++ {
		sum := r[i]
		for sl := a.RowPtr[i]; sl < a.RowPtr[i+1]; sl++ {
			if c := a.Col[sl]; c < i {
				sum -= a.Val[sl] * z[c]
			}
		}
		z[i] = sum * s.dinv[i]
	}
	// Backward sweep: (D+U)·z = D·y.
	for i := s.n - 1; i >= 0; i-- {
		var sum float64
		for sl := a.RowPtr[i]; sl < a.RowPtr[i+1]; sl++ {
			if c := a.Col[sl]; c > i && c < s.n {
				sum += a.Val[sl] * z[c]
			}
		}
		z[i] -= sum * s.dinv[i]
	}
	nnz := float64(a.NNZ())
	s.ch.ChargeCompute(4*nnz, 2*20*nnz)
}

// ILU0 is a zero-fill incomplete LU factorisation of the local owned block,
// the workhorse preconditioner of the paper's solves (Ifpack ILU). Across
// ranks it acts as block-Jacobi/additive-Schwarz with zero overlap.
type ILU0 struct {
	a  *sparse.CSR
	n  int
	ch sparse.Charger
	// lu holds the factor values aligned with a's pattern (block columns
	// only); diag[i] is the slot of U[i,i] in lu.
	lu   []float64
	diag []int
}

// NewILU0 builds an ILU(0) preconditioner over the first n rows/columns
// of a.
func NewILU0(a *sparse.CSR, n int, ch sparse.Charger) *ILU0 {
	if ch == nil {
		ch = sparse.NopCharger{}
	}
	return &ILU0{a: a, n: n, ch: ch, lu: make([]float64, a.NNZ()), diag: make([]int, n)}
}

// Setup implements Preconditioner: IKJ-ordered ILU(0) on the block pattern.
func (p *ILU0) Setup() error {
	a := p.a
	copy(p.lu, a.Val)
	for i := 0; i < p.n; i++ {
		d := a.Slot(i, i)
		if d < 0 {
			return fmt.Errorf("krylov: missing diagonal at row %d", i)
		}
		p.diag[i] = d
	}
	var flops float64
	for i := 0; i < p.n; i++ {
		for sl := a.RowPtr[i]; sl < a.RowPtr[i+1]; sl++ {
			k := a.Col[sl]
			if k >= i || k >= p.n {
				continue
			}
			piv := p.lu[p.diag[k]]
			if piv == 0 {
				return fmt.Errorf("krylov: zero pivot at row %d", k)
			}
			lik := p.lu[sl] / piv
			p.lu[sl] = lik
			// Update the remainder of row i against row k's upper part.
			for t := sl + 1; t < a.RowPtr[i+1]; t++ {
				j := a.Col[t]
				if j >= p.n {
					continue
				}
				if u := a.Slot(k, j); u >= 0 {
					p.lu[t] -= lik * p.lu[u]
					flops += 2
				}
			}
		}
	}
	p.ch.ChargeCompute(flops+float64(a.NNZ()), 24*float64(a.NNZ()))
	return nil
}

// Apply implements Preconditioner: z = U⁻¹·L⁻¹·r on the owned block.
func (p *ILU0) Apply(r, z []float64) {
	a := p.a
	// Forward: L (unit diagonal).
	for i := 0; i < p.n; i++ {
		sum := r[i]
		for sl := a.RowPtr[i]; sl < a.RowPtr[i+1]; sl++ {
			if c := a.Col[sl]; c < i && c < p.n {
				sum -= p.lu[sl] * z[c]
			}
		}
		z[i] = sum
	}
	// Backward: U.
	for i := p.n - 1; i >= 0; i-- {
		sum := z[i]
		for sl := p.diag[i] + 1; sl < a.RowPtr[i+1]; sl++ {
			if c := a.Col[sl]; c < p.n {
				sum -= p.lu[sl] * z[c]
			}
		}
		z[i] = sum / p.lu[p.diag[i]]
	}
	nnz := float64(a.NNZ())
	p.ch.ChargeCompute(2*nnz, 2*20*nnz)
}
