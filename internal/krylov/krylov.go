// Package krylov implements the preconditioned iterative solvers that
// Trilinos (AztecOO) and Ifpack provided in the paper's stack: conjugate
// gradients for the symmetric positive-definite systems of the
// reaction–diffusion application, BiCGStab and restarted GMRES for the
// nonsymmetric velocity systems of the Navier–Stokes application, and the
// paper's "iterative preconditioned methods" (§IV-C): Jacobi, symmetric
// Gauss–Seidel and ILU(0) applied block-locally per rank (additive Schwarz
// with zero overlap).
//
// Solvers operate on the System interface, so the same code runs serially
// on a CSR matrix and distributed on a sparse.DistMatrix; all global
// reductions go through System.AllSum and all flop counts through the
// embedded Charger, which is how solver time lands on the virtual clock.
package krylov

import (
	"errors"
	"fmt"
	"math"

	"heterohpc/internal/obs"
	"heterohpc/internal/sparse"
)

// System is a linear operator over distributed owned-length vectors.
type System interface {
	// Apply computes y = A·x for owned-length x, y.
	Apply(x, y []float64)
	// NOwned returns the local (owned) vector length.
	NOwned() int
	// AllSum globally sums a scalar across ranks (identity when serial).
	AllSum(v float64) float64
	sparse.Charger
}

// SerialSystem adapts a square CSR matrix to System for single-process use.
type SerialSystem struct {
	A *sparse.CSR
	// Ch receives compute charges; nil means NopCharger.
	Ch sparse.Charger
}

func (s SerialSystem) charger() sparse.Charger {
	if s.Ch != nil {
		return s.Ch
	}
	return sparse.NopCharger{}
}

// Apply implements System.
func (s SerialSystem) Apply(x, y []float64) { s.A.MulVec(x, y, s.charger()) }

// NOwned implements System.
func (s SerialSystem) NOwned() int { return s.A.NRows }

// AllSum implements System.
func (s SerialSystem) AllSum(v float64) float64 { return v }

// ChargeCompute implements sparse.Charger.
func (s SerialSystem) ChargeCompute(f, b float64) { s.charger().ChargeCompute(f, b) }

// Preconditioner approximates A⁻¹. Setup (re)computes the factorisation
// from the current matrix values — the paper's phase (iiia); Apply computes
// z = M⁻¹·r — invoked inside the solve phase (iiib).
type Preconditioner interface {
	Setup() error
	Apply(r, z []float64)
}

// Options controls an iterative solve.
type Options struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖ (default 1e-8).
	Tol float64
	// MaxIter caps the iteration count (default 500).
	MaxIter int
	// Restart is the GMRES restart length (default 30).
	Restart int
	// RecordHistory stores the residual norm after each iteration.
	RecordHistory bool
	// Work supplies reusable scratch storage so repeated solves (one per
	// time step) allocate nothing in steady state. Nil means the solver
	// allocates a private workspace for the call.
	Work *Workspace
	// Obs receives one solve event (solver, iterations, final residual,
	// convergence) per call. Nil — the default — records nothing and costs
	// nothing.
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 500
	}
	if o.Restart <= 0 {
		o.Restart = 30
	}
	return o
}

// Result reports the outcome of an iterative solve.
type Result struct {
	Converged  bool
	Iterations int
	// Residual is the final relative residual ‖r‖/‖b‖.
	Residual float64
	// History holds per-iteration relative residuals when requested.
	History []float64
}

// ErrBreakdown reports a Krylov breakdown (zero inner product); the caller
// may retry with a different preconditioner or solver.
var ErrBreakdown = errors.New("krylov: breakdown")

// dot computes the global dot product of owned-length vectors.
func dot(sys System, x, y []float64) float64 {
	return sys.AllSum(sparse.DotLocal(sys.NOwned(), x, y, sys))
}

// norm2 computes the global 2-norm of an owned-length vector.
func norm2(sys System, x []float64) float64 {
	return math.Sqrt(dot(sys, x, x))
}

// CG solves A·x = b with preconditioned conjugate gradients. A must be
// symmetric positive definite and M symmetric. x holds the initial guess on
// entry and the solution on return.
func CG(sys System, M Preconditioner, b, x []float64, opt Options) (Result, error) {
	res, err := cg(sys, M, b, x, opt)
	opt.Obs.Solve("cg", res.Iterations, res.Residual, res.Converged)
	return res, err
}

func cg(sys System, M Preconditioner, b, x []float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := sys.NOwned()
	if len(b) < n || len(x) < n {
		return Result{}, fmt.Errorf("krylov: vector lengths %d,%d < %d", len(b), len(x), n)
	}
	if M == nil {
		M = Identity{}
	}
	res := Result{}
	bnorm := norm2(sys, b)
	if bnorm == 0 {
		for i := 0; i < n; i++ {
			x[i] = 0
		}
		res.Converged = true
		return res, nil
	}
	vv := opt.workspace().vectors(n, 4)
	r, z, p, q := vv[0], vv[1], vv[2], vv[3]
	sys.Apply(x, r)
	for i := 0; i < n; i++ {
		r[i] = b[i] - r[i]
	}
	sys.ChargeCompute(float64(n), 24*float64(n))
	M.Apply(r, z)
	sparse.CopyN(n, p, z, sys)
	rz := dot(sys, r, z)
	for k := 0; k < opt.MaxIter; k++ {
		sys.Apply(p, q)
		pq := dot(sys, p, q)
		if pq == 0 || math.IsNaN(pq) {
			return res, fmt.Errorf("%w: pᵀAp = %v at iteration %d", ErrBreakdown, pq, k)
		}
		alpha := rz / pq
		sparse.Axpy(n, alpha, p, x, sys)
		sparse.Axpy(n, -alpha, q, r, sys)
		res.Iterations = k + 1
		rel := norm2(sys, r) / bnorm
		res.Residual = rel
		if opt.RecordHistory {
			res.History = append(res.History, rel)
		}
		if rel < opt.Tol {
			res.Converged = true
			return res, nil
		}
		M.Apply(r, z)
		rzNew := dot(sys, r, z)
		if rz == 0 {
			return res, fmt.Errorf("%w: rᵀz = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
		sys.ChargeCompute(2*float64(n), 24*float64(n))
	}
	return res, nil
}

// BiCGStab solves the (possibly nonsymmetric) system A·x = b with the
// preconditioned stabilised bi-conjugate-gradient method.
func BiCGStab(sys System, M Preconditioner, b, x []float64, opt Options) (Result, error) {
	res, err := bicgstab(sys, M, b, x, opt)
	opt.Obs.Solve("bicgstab", res.Iterations, res.Residual, res.Converged)
	return res, err
}

func bicgstab(sys System, M Preconditioner, b, x []float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := sys.NOwned()
	if len(b) < n || len(x) < n {
		return Result{}, fmt.Errorf("krylov: vector lengths %d,%d < %d", len(b), len(x), n)
	}
	if M == nil {
		M = Identity{}
	}
	res := Result{}
	bnorm := norm2(sys, b)
	if bnorm == 0 {
		for i := 0; i < n; i++ {
			x[i] = 0
		}
		res.Converged = true
		return res, nil
	}
	vv := opt.workspace().vectors(n, 8)
	r, rhat, p, v, phat, shat, t, s := vv[0], vv[1], vv[2], vv[3], vv[4], vv[5], vv[6], vv[7]
	sys.Apply(x, r)
	for i := 0; i < n; i++ {
		r[i] = b[i] - r[i]
	}
	sys.ChargeCompute(float64(n), 24*float64(n))
	sparse.CopyN(n, rhat, r, sys)
	var rho, alpha, omega float64 = 1, 1, 1
	for k := 0; k < opt.MaxIter; k++ {
		rhoNew := dot(sys, rhat, r)
		if rhoNew == 0 || math.IsNaN(rhoNew) {
			return res, fmt.Errorf("%w: ρ = %v at iteration %d", ErrBreakdown, rhoNew, k)
		}
		if k == 0 {
			sparse.CopyN(n, p, r, sys)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := 0; i < n; i++ {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
			sys.ChargeCompute(4*float64(n), 32*float64(n))
		}
		rho = rhoNew
		M.Apply(p, phat)
		sys.Apply(phat, v)
		den := dot(sys, rhat, v)
		if den == 0 {
			return res, fmt.Errorf("%w: r̂ᵀv = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha = rho / den
		for i := 0; i < n; i++ {
			s[i] = r[i] - alpha*v[i]
		}
		sys.ChargeCompute(2*float64(n), 24*float64(n))
		res.Iterations = k + 1
		if rel := norm2(sys, s) / bnorm; rel < opt.Tol {
			sparse.Axpy(n, alpha, phat, x, sys)
			res.Residual = rel
			res.Converged = true
			if opt.RecordHistory {
				res.History = append(res.History, rel)
			}
			return res, nil
		}
		M.Apply(s, shat)
		sys.Apply(shat, t)
		tt := dot(sys, t, t)
		if tt == 0 {
			return res, fmt.Errorf("%w: tᵀt = 0 at iteration %d", ErrBreakdown, k)
		}
		omega = dot(sys, t, s) / tt
		if omega == 0 {
			return res, fmt.Errorf("%w: ω = 0 at iteration %d", ErrBreakdown, k)
		}
		for i := 0; i < n; i++ {
			x[i] += alpha*phat[i] + omega*shat[i]
			r[i] = s[i] - omega*t[i]
		}
		sys.ChargeCompute(6*float64(n), 48*float64(n))
		rel := norm2(sys, r) / bnorm
		res.Residual = rel
		if opt.RecordHistory {
			res.History = append(res.History, rel)
		}
		if rel < opt.Tol {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}
