package krylov

import (
	"math"
	"testing"
)

// solveBoth runs a solver twice — once with fresh allocations and once
// through a shared Workspace that has already been dirtied by an unrelated
// solve — and returns the two solutions.
func solveBoth(t *testing.T, solve func(opt Options, x []float64) Result) ([]float64, []float64, *Workspace) {
	t.Helper()
	const n = 80
	fresh := make([]float64, n)
	r1 := solve(Options{Tol: 1e-10}, fresh)

	ws := &Workspace{}
	// Dirty the workspace with a different system so reuse cannot hide
	// behind zero-initialised buffers.
	a2 := convdiff(n, 0.3)
	b2 := make([]float64, n)
	for i := range b2 {
		b2[i] = math.Cos(float64(3 * i))
	}
	if _, err := GMRES(SerialSystem{A: a2}, nil, b2, make([]float64, n), Options{Tol: 1e-8, Work: ws}); err != nil {
		t.Fatalf("dirtying solve: %v", err)
	}

	reused := make([]float64, n)
	r2 := solve(Options{Tol: 1e-10, Work: ws}, reused)
	if r1.Iterations != r2.Iterations || r1.Residual != r2.Residual {
		t.Fatalf("workspace solve diverged: %d it %.17g vs %d it %.17g",
			r1.Iterations, r1.Residual, r2.Iterations, r2.Residual)
	}
	return fresh, reused, ws
}

func requireIdentical(t *testing.T, fresh, reused []float64) {
	t.Helper()
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("x[%d]: fresh %.17g != reused %.17g", i, fresh[i], reused[i])
		}
	}
}

// TestWorkspaceBitIdentical checks that solving through a dirty reused
// Workspace yields bit-identical solutions to freshly allocated scratch —
// the property that lets the time loops pool without perturbing numerics.
func TestWorkspaceBitIdentical(t *testing.T) {
	const n = 80
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}
	spd := lap1d(n)
	nonsym := convdiff(n, 0.4)

	t.Run("cg", func(t *testing.T) {
		fresh, reused, _ := solveBoth(t, func(opt Options, x []float64) Result {
			res, err := CG(SerialSystem{A: spd}, nil, rhs, x, opt)
			if err != nil {
				t.Fatalf("CG: %v", err)
			}
			return res
		})
		requireIdentical(t, fresh, reused)
	})
	t.Run("bicgstab", func(t *testing.T) {
		fresh, reused, _ := solveBoth(t, func(opt Options, x []float64) Result {
			res, err := BiCGStab(SerialSystem{A: nonsym}, nil, rhs, x, opt)
			if err != nil {
				t.Fatalf("BiCGStab: %v", err)
			}
			return res
		})
		requireIdentical(t, fresh, reused)
	})
	t.Run("gmres", func(t *testing.T) {
		fresh, reused, _ := solveBoth(t, func(opt Options, x []float64) Result {
			res, err := GMRES(SerialSystem{A: nonsym}, nil, rhs, x, Options{Tol: opt.Tol, Restart: 25, Work: opt.Work})
			if err != nil {
				t.Fatalf("GMRES: %v", err)
			}
			return res
		})
		requireIdentical(t, fresh, reused)
	})
}

// TestSolversZeroAllocSteadyState pins the tentpole property at the solver
// layer: with a warm Workspace, repeated serial solves allocate nothing.
func TestSolversZeroAllocSteadyState(t *testing.T) {
	const n = 120
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}
	x := make([]float64, n)
	// Convert to the interface once: boxing a SerialSystem value per call
	// would itself count as an allocation.
	var spd, nonsym System = SerialSystem{A: lap1d(n)}, SerialSystem{A: convdiff(n, 0.4)}
	cases := []struct {
		name  string
		solve func(opt Options) error
	}{
		{"cg", func(opt Options) error {
			_, err := CG(spd, nil, rhs, x, opt)
			return err
		}},
		{"bicgstab", func(opt Options) error {
			_, err := BiCGStab(nonsym, nil, rhs, x, opt)
			return err
		}},
		{"gmres", func(opt Options) error {
			_, err := GMRES(nonsym, nil, rhs, x, opt)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ws := &Workspace{}
			opt := Options{Tol: 1e-8, Work: ws}
			if err := tc.solve(opt); err != nil { // warm the workspace
				t.Fatalf("warm-up: %v", err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				for i := range x {
					x[i] = 0
				}
				if err := tc.solve(opt); err != nil {
					t.Fatalf("solve: %v", err)
				}
			})
			if allocs != 0 {
				t.Fatalf("warm %s solve allocated %v objects per run; want 0", tc.name, allocs)
			}
		})
	}
}

// BenchmarkGMRESArnoldiSteadyState is the regression benchmark for the
// hoisted per-restart-cycle triangular-solve allocation (formerly
// y := make([]float64, k) inside the Arnoldi restart loop): with a warm
// Workspace every GMRES cycle must report 0 allocs/op.
func BenchmarkGMRESArnoldiSteadyState(b *testing.B) {
	const n = 400
	a := convdiff(n, 0.4)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}
	x := make([]float64, n)
	ws := &Workspace{}
	opt := Options{Tol: 1e-10, Restart: 30, Work: ws}
	var sys System = SerialSystem{A: a}
	if _, err := GMRES(sys, nil, rhs, x, opt); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := GMRES(sys, nil, rhs, x, opt); err != nil {
			b.Fatalf("GMRES: %v", err)
		}
	}
	b.StopTimer()
	if got := testing.AllocsPerRun(10, func() {
		for j := range x {
			x[j] = 0
		}
		if _, err := GMRES(sys, nil, rhs, x, opt); err != nil {
			b.Fatalf("GMRES: %v", err)
		}
	}); got != 0 {
		b.Fatalf("warm GMRES allocated %v objects per solve; want 0", got)
	}
}
