package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

// TestNilRunIsNoOp: every entry point must tolerate the disabled state — a
// nil Run, nil Recorder, nil metric handles — without panicking or
// allocating.
func TestNilRunIsNoOp(t *testing.T) {
	var r *Run
	if r.Metrics() != nil {
		t.Fatal("nil Run returned a registry")
	}
	rec := r.NewRecorder(0, &fakeClock{})
	if rec != nil {
		t.Fatal("nil Run returned a recorder")
	}
	if g := r.Global(); g != nil {
		t.Fatal("nil Run returned a global recorder")
	}
	rec.Event("k", "n")
	rec.EventAt(1, "k", "n")
	rec.Phase(1, "solve")
	rec.Step(1)
	rec.Solve("cg", 10, 1e-9, true)
	rec.Checkpoint("ckpt-write", 2, 100)
	rec.SpotTick(1, 0.5)
	rec.Preemption(1, 3, 0.9, 121)
	rec.PoolStats(1, 10, 2)
	rec.CountMsg(64)
	rec.CountHalo(128)
	rec.StepHalo(1)
	rec.QueueInterval(0, 1)
	r.Metrics().Counter("x").Add(1)
	r.Metrics().Gauge("x").Max(1)
	r.Metrics().Histogram("x", IterBuckets).Observe(1)
	var buf bytes.Buffer
	if err := r.WriteJournal(&buf); err != nil {
		t.Fatalf("WriteJournal on nil Run: %v", err)
	}
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics on nil Run: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil Run wrote %d bytes", buf.Len())
	}
}

// TestNilRecorderHotPathAllocs pins the disabled-observability cost on the
// instrumented hot paths to zero allocations.
func TestNilRecorderHotPathAllocs(t *testing.T) {
	var rec *Recorder
	var reg *Registry
	if n := testing.AllocsPerRun(1000, func() {
		rec.CountMsg(64)
		rec.CountHalo(128)
		rec.QueueInterval(0, 1)
		rec.Solve("cg", 10, 1e-9, true)
		reg.Counter("x").Add(1)
	}); n != 0 {
		t.Fatalf("disabled observability allocates %.1f allocs/op, want 0", n)
	}
}

// TestJournalDeterministicMergeOrder: events from several recorders must
// come out in (T, recorder, seq) order, byte-identically across runs, even
// when recording happens concurrently.
func TestJournalDeterministicMergeOrder(t *testing.T) {
	render := func() string {
		r := NewRun()
		clks := []*fakeClock{{}, {}, {}}
		recs := make([]*Recorder, 3)
		for i := range recs {
			recs[i] = r.NewRecorder(i, clks[i])
		}
		var wg sync.WaitGroup
		for i, rec := range recs {
			wg.Add(1)
			go func(i int, rec *Recorder, clk *fakeClock) {
				defer wg.Done()
				for s := 0; s < 4; s++ {
					clk.t = float64(s) // deliberate cross-rank timestamp ties
					rec.Step(s + 1)
					rec.Solve("cg", 10*i+s, 1e-8, true)
				}
			}(i, rec, clks[i])
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := r.WriteJournal(&buf); err != nil {
			t.Fatalf("WriteJournal: %v", err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("two identical recordings produced different journals:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 24 {
		t.Fatalf("got %d journal lines, want 24", len(lines))
	}
	// Within one timestamp, rank 0's events must precede rank 1's.
	if !strings.Contains(lines[0], `"rank":0`) || !strings.Contains(lines[2], `"rank":1`) {
		t.Fatalf("tie-broken order wrong:\n%s", a)
	}
	for _, ln := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(ln), &v); err != nil {
			t.Fatalf("journal line is not valid JSON: %q: %v", ln, err)
		}
	}
}

// TestMetricsDeterministicOutput: registry export must be byte-identical
// for identical recorded values regardless of recording interleaving.
func TestMetricsDeterministicOutput(t *testing.T) {
	render := func() string {
		r := NewRun()
		reg := r.Metrics()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				reg.Counter("mp.messages").Add(int64(100 + i))
				reg.Gauge("depth").Max(float64(i))
				reg.Histogram("iters", IterBuckets).Observe(float64(i * 30))
			}(i)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := r.WriteMetrics(&buf); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("metric exports differ:\n%s\nvs\n%s", a, b)
	}
	var v struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
		Hists    map[string]struct {
			Bounds []float64 `json:"bounds"`
			Counts []int64   `json:"counts"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(a), &v); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v\n%s", err, a)
	}
	if v.Counters["mp.messages"] != 100+101+102+103 {
		t.Errorf("counter = %d, want 406", v.Counters["mp.messages"])
	}
	if v.Gauges["depth"] != 3 {
		t.Errorf("gauge = %g, want 3", v.Gauges["depth"])
	}
	h := v.Hists["iters"]
	if len(h.Counts) != len(IterBuckets)+1 {
		t.Fatalf("histogram has %d counts for %d bounds", len(h.Counts), len(IterBuckets))
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != 4 {
		t.Errorf("histogram total = %d, want 4", total)
	}
}

// TestRecorderFoldsCounters: per-rank message/halo counters and queue
// intervals must land in the registry on write.
func TestRecorderFoldsCounters(t *testing.T) {
	r := NewRun()
	clk := &fakeClock{}
	rec := r.NewRecorder(0, clk)
	rec.CountMsg(100)
	rec.CountMsg(28)
	rec.CountHalo(512)
	// Three overlapping residency intervals, then a disjoint one.
	rec.QueueInterval(0, 2)
	rec.QueueInterval(1, 3)
	rec.QueueInterval(1.5, 1.7)
	rec.QueueInterval(10, 11)
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	reg := r.Metrics()
	if got := reg.Counter("mp.messages").Value(); got != 2 {
		t.Errorf("mp.messages = %d, want 2", got)
	}
	if got := reg.Counter("mp.message_bytes").Value(); got != 128 {
		t.Errorf("mp.message_bytes = %d, want 128", got)
	}
	if got := reg.Counter("halo.exchanges").Value(); got != 1 {
		t.Errorf("halo.exchanges = %d, want 1", got)
	}
	if got := reg.Gauge("mp.mailbox_highwater").Value(); got != 3 {
		t.Errorf("mailbox high-water = %g, want 3", got)
	}
	// A second write must not double-fold.
	buf.Reset()
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatalf("second WriteMetrics: %v", err)
	}
	if got := reg.Counter("mp.messages").Value(); got != 2 {
		t.Errorf("after second write mp.messages = %d, want 2 (double fold)", got)
	}
}

// TestStepHaloDeltas: StepHalo must emit deltas, not running totals, and
// skip steps with no traffic.
func TestStepHaloDeltas(t *testing.T) {
	r := NewRun()
	clk := &fakeClock{}
	rec := r.NewRecorder(0, clk)
	rec.CountHalo(100)
	rec.CountHalo(50)
	rec.StepHalo(1)
	rec.StepHalo(2) // no traffic since step 1: no event
	rec.CountHalo(25)
	rec.StepHalo(3)
	var buf bytes.Buffer
	if err := r.WriteJournal(&buf); err != nil {
		t.Fatalf("WriteJournal: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d halo events, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"i1":1,"i2":2,"i3":150`) {
		t.Errorf("first halo event wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"i1":3,"i2":1,"i3":25`) {
		t.Errorf("second halo event wrong: %s", lines[1])
	}
}

func TestMaxOverlap(t *testing.T) {
	cases := []struct {
		ivals []ival
		want  int
	}{
		{nil, 0},
		{[]ival{{0, 1}}, 1},
		{[]ival{{0, 1}, {2, 3}}, 1},
		{[]ival{{0, 2}, {1, 3}, {1.5, 1.7}}, 3},
		// Touching endpoints count as overlapping (arrival at the instant
		// of another's receive was queued behind it).
		{[]ival{{0, 1}, {1, 2}}, 2},
		{[]ival{{0, 0}, {0, 0}, {0, 0}}, 3},
	}
	for i, c := range cases {
		if got := maxOverlap(c.ivals); got != c.want {
			t.Errorf("case %d: maxOverlap = %d, want %d", i, got, c.want)
		}
	}
}

// TestGaugeMaxConcurrent exercises the CAS fold under contention.
func TestGaugeMaxConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for v := 0; v < 1000; v++ {
				g.Max(float64(i*1000 + v))
			}
		}(i)
	}
	wg.Wait()
	if g.Value() != 7999 {
		t.Fatalf("gauge = %g, want 7999", g.Value())
	}
}

// TestEventEncodingEscapes: names containing JSON metacharacters must
// produce valid JSON lines.
func TestEventEncodingEscapes(t *testing.T) {
	r := NewRun()
	rec := r.NewRecorder(0, &fakeClock{t: 1.5})
	rec.Event("decision", `detail with "quotes" and
newline`)
	var buf bytes.Buffer
	if err := r.WriteJournal(&buf); err != nil {
		t.Fatalf("WriteJournal: %v", err)
	}
	var v map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &v); err != nil {
		t.Fatalf("escaped event is not valid JSON: %v\n%s", err, buf.String())
	}
	if v["name"] != "detail with \"quotes\" and\nnewline" {
		t.Errorf("name round-trip failed: %q", v["name"])
	}
}
