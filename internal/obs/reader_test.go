package obs

import (
	"bytes"
	"errors"
	"math"
	"os"
	"strings"
	"testing"
)

// reencode renders events back to journal bytes through the canonical
// encoder, exactly as WriteJournal would.
func reencode(evs []Event) []byte {
	var out []byte
	for i := range evs {
		out = AppendEventLine(out, &evs[i])
	}
	return out
}

func TestParseEventLineRoundTrip(t *testing.T) {
	lines := []string{
		`{"t":0,"rank":0,"kind":"phase"}`,
		`{"t":0,"rank":-1,"kind":"notice","name":"spot interruption"}`,
		`{"t":1.25,"rank":3,"kind":"step","i1":2}`,
		`{"t":4.83,"rank":7,"kind":"solve","name":"cg","i1":42,"f1":1e-09,"b":true}`,
		`{"t":2.0800000000000005,"rank":0,"kind":"halo","i1":1,"i2":6,"i3":49152}`,
		`{"t":0.5,"rank":-1,"kind":"preempt-notice","i1":2,"f1":0.527,"f2":120.5}`,
		`{"t":-1.5,"rank":0,"kind":"x","i1":-7,"f1":-0.25}`,
		`{"t":1e+21,"rank":0,"kind":"x","name":"quote\"and\\slash","i1":9223372036854775807}`,
	}
	for _, line := range lines {
		ev, err := ParseEventLine(line)
		if err != nil {
			t.Fatalf("ParseEventLine(%s): %v", line, err)
		}
		if got := string(AppendEventLine(nil, &ev)); got != line+"\n" {
			t.Fatalf("re-encode mismatch:\n  in  %s\n  out %s", line, strings.TrimSuffix(got, "\n"))
		}
	}
}

func TestParseEventLineRejectsNonCanonical(t *testing.T) {
	cases := []struct{ name, line string }{
		{"empty", ``},
		{"no prefix", `{"rank":0,"kind":"x"}`},
		{"reordered", `{"rank":0,"t":0,"kind":"x"}`},
		{"negative zero t", `{"t":-0,"rank":0,"kind":"x"}`},
		{"non-shortest float", `{"t":1.0,"rank":0,"kind":"x"}`},
		{"exponent form of small int", `{"t":0.5e0,"rank":0,"kind":"x"}`},
		{"leading-zero int", `{"t":0,"rank":01,"kind":"x"}`},
		{"plus-signed int", `{"t":0,"rank":+1,"kind":"x"}`},
		{"float rank", `{"t":0,"rank":1.5,"kind":"x"}`},
		{"zero i1 present", `{"t":0,"rank":0,"kind":"x","i1":0}`},
		{"zero f1 present", `{"t":0,"rank":0,"kind":"x","f1":0}`},
		{"negative-zero f1", `{"t":0,"rank":0,"kind":"x","f1":-0}`},
		{"empty name present", `{"t":0,"rank":0,"kind":"x","name":""}`},
		{"b false", `{"t":0,"rank":0,"kind":"x","b":false}`},
		{"unknown key", `{"t":0,"rank":0,"kind":"x","z":1}`},
		{"i-fields out of order", `{"t":0,"rank":0,"kind":"x","i2":1,"i1":1}`},
		{"trailing bytes", `{"t":0,"rank":0,"kind":"x"} `},
		{"trailing newline in line", "{\"t\":0,\"rank\":0,\"kind\":\"x\"}\n"},
		{"unterminated", `{"t":0,"rank":0,"kind":"x"`},
		{"non-canonical escape", `{"t":0,"rank":0,"kind":"\u0041"}`},
		{"single-quoted string", `{"t":0,"rank":0,"kind":'x'}`},
		{"nan alias", `{"t":nan,"rank":0,"kind":"x"}`},
		{"rank overflows int64", `{"t":0,"rank":99999999999999999999,"kind":"x"}`},
	}
	for _, c := range cases {
		if _, err := ParseEventLine(c.line); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.line)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: untyped rejection: %v", c.name, err)
		}
	}
}

// TestNegativeZeroNormalized pins the writeOptFloat zero-omission edge: an
// event carrying a negative-zero payload encodes exactly like +0 (omitted
// for optional fields, "0" for t), so it round-trips to +0 and two runs
// that differ only in zero sign stay byte-identical.
func TestNegativeZeroNormalized(t *testing.T) {
	nz := math.Copysign(0, -1)
	ev := Event{T: nz, Rank: 2, Kind: "solve", Name: "cg", I1: 3, F1: nz, B: true}
	line := string(AppendEventLine(nil, &ev))
	want := `{"t":0,"rank":2,"kind":"solve","name":"cg","i1":3,"b":true}` + "\n"
	if line != want {
		t.Fatalf("encode with -0 payloads:\n  got  %q\n  want %q", line, want)
	}
	back, err := ParseEventLine(strings.TrimSuffix(line, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Signbit(back.T) || math.Signbit(back.F1) || back.F1 != 0 {
		t.Fatalf("round-trip did not normalise to +0: %+v", back)
	}
	if got := string(AppendEventLine(nil, &back)); got != line {
		t.Fatalf("second encode differs: %q vs %q", got, line)
	}
}

// TestReadJournalRoundTripsRealJournal asserts the byte-identity contract
// on a checked-in journal produced by a real heterobench faults run.
func TestReadJournalRoundTripsRealJournal(t *testing.T) {
	raw, err := os.ReadFile("testdata/faults-ec2-seed11.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("empty journal")
	}
	if got := reencode(evs); !bytes.Equal(got, raw) {
		t.Fatalf("parse→re-encode not byte-identical: %d bytes in, %d out", len(raw), len(got))
	}
}

func TestReadJournalErrors(t *testing.T) {
	t.Run("line number in error", func(t *testing.T) {
		in := `{"t":0,"rank":0,"kind":"x"}` + "\n" + `garbage` + "\n"
		_, err := ReadJournal(strings.NewReader(in))
		if err == nil || !errors.Is(err, ErrMalformed) {
			t.Fatalf("got %v, want ErrMalformed", err)
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("error does not carry line number: %v", err)
		}
	})
	t.Run("truncated final line", func(t *testing.T) {
		in := `{"t":0,"rank":0,"kind":"x"}` + "\n" + `{"t":1,"rank":0,"kind"`
		_, err := ReadJournal(strings.NewReader(in))
		if err == nil || !errors.Is(err, ErrMalformed) {
			t.Fatalf("got %v, want ErrMalformed", err)
		}
	})
	t.Run("empty journal is valid", func(t *testing.T) {
		evs, err := ReadJournal(strings.NewReader(""))
		if err != nil || len(evs) != 0 {
			t.Fatalf("got %d events, %v", len(evs), err)
		}
	})
}

// FuzzReadJournal asserts the reader's contract on arbitrary bytes: it
// never panics, every rejection wraps ErrMalformed, and — because the
// grammar is exactly the writer's image — every accepted journal
// re-encodes byte-identically to its input.
func FuzzReadJournal(f *testing.F) {
	valid, err := os.ReadFile("testdata/faults-ec2-seed11.jsonl")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-line
	lines := bytes.SplitAfter(valid, []byte("\n"))
	if len(lines) > 4 {
		// Reordered lines: still canonical per line, so still accepted —
		// seeds the corpus with multi-line structure.
		f.Add(bytes.Join([][]byte{lines[3], lines[0], lines[2]}, nil))
	}
	f.Add([]byte(`{"t":0,"rank":0,"kind":"x","i1":0}` + "\n")) // explicit zero optional
	f.Add([]byte(`{"t":-0,"rank":0,"kind":"x"}` + "\n"))       // negative zero
	f.Add([]byte("{\"t\":0,\"rank\":0,\"kind\":\"x\"}\r\n"))   // CRLF
	f.Add([]byte("garbage\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		evs, err := ReadJournal(bytes.NewReader(b))
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("untyped rejection of %d bytes: %v", len(b), err)
			}
			return
		}
		if got := reencode(evs); !bytes.Equal(got, b) {
			t.Fatalf("accepted journal is not canonical:\n  in  %q\n  out %q", b, got)
		}
	})
}
