package obs

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrMalformed is the sentinel wrapped by every parse failure in this file;
// callers classify reader errors with errors.Is(err, ErrMalformed).
var ErrMalformed = errors.New("obs: malformed journal line")

// ParseEventLine parses one journal line (without its trailing newline)
// back into the Event it encodes. The grammar is exactly AppendEventLine's
// image — canonical field order, canonical number formatting, optional
// fields present only with nonzero (or nonempty) values, "b" only ever
// true — so success guarantees that AppendEventLine(nil, &ev) reproduces
// line + "\n" byte for byte. Anything the writer could not have produced
// (reordered fields, non-shortest floats, a "-0", an explicit zero
// optional, unknown keys, trailing bytes) fails with an error wrapping
// ErrMalformed.
func ParseEventLine(line string) (Event, error) {
	var ev Event
	s, ok := strings.CutPrefix(line, `{"t":`)
	if !ok {
		return Event{}, malformed(`missing {"t": prefix`)
	}
	t, s, err := parseCanonFloat(s)
	if err != nil {
		return Event{}, fmt.Errorf(`field "t": %w`, err)
	}
	ev.T = t
	if s, ok = strings.CutPrefix(s, `,"rank":`); !ok {
		return Event{}, malformed(`missing "rank" field`)
	}
	rank, s, err := parseCanonInt(s)
	if err != nil {
		return Event{}, fmt.Errorf(`field "rank": %w`, err)
	}
	ev.Rank = int(rank)
	if int64(ev.Rank) != rank {
		return Event{}, malformed(`field "rank": overflows int`)
	}
	if s, ok = strings.CutPrefix(s, `,"kind":`); !ok {
		return Event{}, malformed(`missing "kind" field`)
	}
	if ev.Kind, s, err = parseCanonString(s); err != nil {
		return Event{}, fmt.Errorf(`field "kind": %w`, err)
	}

	if rest, found := strings.CutPrefix(s, `,"name":`); found {
		if ev.Name, s, err = parseCanonString(rest); err != nil {
			return Event{}, fmt.Errorf(`field "name": %w`, err)
		}
		if ev.Name == "" {
			return Event{}, malformed(`field "name": empty (writer omits it)`)
		}
	}
	for _, f := range []struct {
		key string
		dst *int64
	}{{`,"i1":`, &ev.I1}, {`,"i2":`, &ev.I2}, {`,"i3":`, &ev.I3}} {
		rest, found := strings.CutPrefix(s, f.key)
		if !found {
			continue
		}
		if *f.dst, s, err = parseCanonInt(rest); err != nil {
			return Event{}, fmt.Errorf("field %q: %w", f.key[2:4], err)
		}
		if *f.dst == 0 {
			return Event{}, malformed("field %q: zero (writer omits it)", f.key[2:4])
		}
	}
	for _, f := range []struct {
		key string
		dst *float64
	}{{`,"f1":`, &ev.F1}, {`,"f2":`, &ev.F2}} {
		rest, found := strings.CutPrefix(s, f.key)
		if !found {
			continue
		}
		if *f.dst, s, err = parseCanonFloat(rest); err != nil {
			return Event{}, fmt.Errorf("field %q: %w", f.key[2:4], err)
		}
		if *f.dst == 0 {
			return Event{}, malformed("field %q: zero (writer omits it)", f.key[2:4])
		}
	}
	if rest, found := strings.CutPrefix(s, `,"b":true`); found {
		ev.B = true
		s = rest
	}
	if s != "}" {
		return Event{}, malformed("trailing bytes %q", s)
	}
	return ev, nil
}

// ReadJournal reads a complete JSONL journal and returns its events in
// file order. Errors carry the 1-based line number and wrap ErrMalformed
// for parse failures (I/O errors from r pass through unwrapped). A final
// line without its trailing newline is malformed: the writer terminates
// every line, so its absence means truncation.
func ReadJournal(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var evs []Event
	for ln := 1; ; ln++ {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			if line == "" {
				return evs, nil
			}
			return nil, fmt.Errorf("line %d: %w: truncated (missing trailing newline)", ln, ErrMalformed)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
		ev, perr := ParseEventLine(line[:len(line)-1])
		if perr != nil {
			return nil, fmt.Errorf("line %d: %w", ln, perr)
		}
		evs = append(evs, ev)
	}
}

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// numTok splits s at the first ',' or '}' — the only bytes that can follow
// a number in the line grammar — returning the number token and the rest
// (which keeps the delimiter).
func numTok(s string) (tok, rest string, err error) {
	i := strings.IndexAny(s, ",}")
	if i < 0 {
		return "", "", malformed("unterminated number")
	}
	return s[:i], s[i:], nil
}

// parseCanonFloat parses a float token and verifies it is in canonical
// (shortest round-trip, negative-zero-free) form by re-formatting.
func parseCanonFloat(s string) (float64, string, error) {
	tok, rest, err := numTok(s)
	if err != nil {
		return 0, "", err
	}
	f, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, "", malformed("bad float %q", tok)
	}
	if formatFloat(f) != tok {
		return 0, "", malformed("non-canonical float %q (writer emits %q)", tok, formatFloat(f))
	}
	return f, rest, nil
}

// parseCanonInt parses an integer token and verifies canonical form (no
// leading zeros, no '+', no float syntax).
func parseCanonInt(s string) (int64, string, error) {
	tok, rest, err := numTok(s)
	if err != nil {
		return 0, "", err
	}
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return 0, "", malformed("bad int %q", tok)
	}
	if strconv.FormatInt(v, 10) != tok {
		return 0, "", malformed("non-canonical int %q", tok)
	}
	return v, rest, nil
}

// parseCanonString parses a quoted string and verifies strconv.Quote would
// re-emit it identically (rejecting escapes the writer never produces).
func parseCanonString(s string) (string, string, error) {
	q, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", malformed("bad string at %q", head(s))
	}
	v, err := strconv.Unquote(q)
	if err != nil {
		return "", "", malformed("bad string %q", q)
	}
	if strconv.Quote(v) != q {
		return "", "", malformed("non-canonical string %s", q)
	}
	return v, s[len(q):], nil
}

// head truncates s for error messages.
func head(s string) string {
	if len(s) > 16 {
		return s[:16] + "…"
	}
	return s
}
