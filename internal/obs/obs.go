// Package obs is the run-observability layer: a structured JSONL journal of
// typed events plus a metrics registry (counters, max-gauges, fixed-bucket
// histograms), both stamped exclusively with virtual time so that two runs
// from the same seed produce byte-identical output.
//
// The paper's contribution is measurement — per-phase times, cost ledgers
// and failure narratives across four heterogeneous platforms — and this
// package is the machine-readable substrate for that kind of reporting:
// instead of only end-of-run tables, an observed run leaves a journal of
// phase transitions, per-step solver convergence, halo-exchange traffic,
// payload-pool effectiveness, checkpoint writes/restores, recovery
// decisions and spot-market ticks.
//
// Determinism contract: nothing in this package reads the wall clock or
// process-global randomness (enforced by heterolint's detclock analyzer).
// Event timestamps come from vclock-backed Clocks or explicit virtual
// times; metric aggregations are restricted to order-independent
// operations (integer counter adds, maxima, integer bucket counts) so that
// goroutine scheduling across rank recorders cannot perturb the output.
// Journal merge order is the deterministic total order (T, recorder
// creation index, per-recorder sequence).
//
// The disabled state is free: a nil *Run, nil *Recorder and nil metric
// handles are valid no-op receivers, so instrumented hot paths (message
// sends, halo exchanges, solver loops) stay zero-allocation when no
// observer is attached — asserted by the perf harness's 0 allocs/op
// benchmarks.
package obs

import (
	"bufio"
	"io"
	"sort"
	"sync"
)

// Clock is the virtual-time source events are stamped with; vclock.Clock
// satisfies it. The package deliberately depends on the interface, not on
// internal/vclock, so it stays dependency-free.
type Clock interface {
	Now() float64
}

// Event is one journal record. Kind identifies the event type; Name and the
// numbered slots carry kind-specific payloads (see the Recorder emitters
// for each kind's schema). Zero-valued optional fields are omitted from the
// JSONL encoding.
type Event struct {
	// T is the event's virtual time in seconds.
	T float64
	// Rank is the emitting rank, or -1 for global (supervisor/market)
	// events.
	Rank int
	// Kind is the event type ("phase", "solve", "step", "halo", "pool",
	// "ckpt-write", "ckpt-restore", "spot-tick", "preempt-notice",
	// "world-grow", "migrate-decision", "arbiter-coalesce",
	// "provision-retry", or a supervisor decision kind).
	Kind string
	// Name is the kind-specific subject (phase name, solver name, decision
	// detail).
	Name string
	// I1, I2, I3 are kind-specific integer payloads.
	I1, I2, I3 int64
	// F1, F2 are kind-specific float payloads.
	F1, F2 float64
	// B is a kind-specific flag (e.g. solver convergence).
	B bool

	// recID/seq define the deterministic merge order for identical
	// timestamps: recorder creation index, then per-recorder sequence.
	recID int
	seq   int
}

// Run collects the journal and metrics of one observed run (which may span
// several worlds: a supervised run re-forms worlds after failures and every
// attempt records into the same Run). Create one with NewRun; a nil *Run is
// a valid no-op sink.
//
// Recorder creation (NewRecorder, Global) must happen on one goroutine —
// in practice the thread that builds worlds. Individual recorders are then
// single-writer: each belongs to one rank goroutine (or to the supervisor).
// WriteJournal/WriteMetrics must only be called after all observed work has
// completed.
type Run struct {
	mu     sync.Mutex
	recs   []*Recorder
	reg    *Registry
	global *Recorder
}

// NewRun returns an empty observability sink.
func NewRun() *Run {
	return &Run{reg: newRegistry()}
}

// Metrics returns the run's metric registry (nil for a nil Run; the
// registry's accessors are nil-safe in turn).
func (r *Run) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// NewRecorder registers a per-rank event recorder whose events are stamped
// from clk. Returns nil (a valid no-op recorder) when r is nil.
func (r *Run) NewRecorder(rank int, clk Clock) *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rc := &Recorder{run: r, rank: rank, clk: clk, id: len(r.recs)}
	r.recs = append(r.recs, rc)
	return rc
}

// Global returns the run's shared rank −1 recorder for supervisor, market
// and world-level events. Its events carry explicit virtual times (EventAt
// and friends); the first call creates it.
func (r *Run) Global() *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.global == nil {
		r.global = &Recorder{run: r, rank: -1, id: len(r.recs)}
		r.recs = append(r.recs, r.global)
	}
	return r.global
}

// merged returns all recorded events in the deterministic total order
// (T, recorder creation index, per-recorder sequence) and folds each
// recorder's local counters into the registry exactly once.
func (r *Run) merged() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rc := range r.recs {
		n += len(rc.events)
	}
	evs := make([]Event, 0, n)
	for _, rc := range r.recs {
		rc.fold(r.reg)
		evs = append(evs, rc.events...)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].T != evs[j].T {
			return evs[i].T < evs[j].T
		}
		if evs[i].recID != evs[j].recID {
			return evs[i].recID < evs[j].recID
		}
		return evs[i].seq < evs[j].seq
	})
	return evs
}

// WriteJournal writes the merged journal as JSONL, one event per line.
// Safe to call on a nil Run (writes nothing). Must only be called after
// all observed work has completed.
func (r *Run) WriteJournal(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var scratch []byte
	for _, ev := range r.merged() {
		scratch = AppendEventLine(scratch[:0], &ev)
		bw.Write(scratch)
	}
	return bw.Flush()
}

// WriteMetrics writes the registry as deterministic JSON (sorted names).
// Safe to call on a nil Run. Must only be called after all observed work
// has completed; it folds outstanding recorder counters first.
func (r *Run) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	for _, rc := range r.recs {
		rc.fold(r.reg)
	}
	r.mu.Unlock()
	return r.reg.write(w)
}

// Recorder buffers one event stream: a rank's (bound to its virtual clock)
// or the global supervisor stream (explicit timestamps). All methods are
// no-ops on a nil receiver, which is how disabled observability stays free
// on hot paths. A Recorder is single-writer: only its owning goroutine may
// call its methods.
type Recorder struct {
	run  *Run
	rank int
	id   int
	clk  Clock
	seq  int

	events []Event

	// Local counters, folded into the registry at write time so hot paths
	// never touch shared atomics.
	msgs, msgBytes   int64
	haloN, haloBytes int64
	// haloMark* hold the counter values at the last StepHalo emission, so
	// per-step halo events carry deltas.
	haloMarkN, haloMarkBytes int64
	// queueIvals holds [arrival, receive] virtual-time intervals of
	// delivered messages; the mailbox-depth high-water is their maximum
	// overlap (computed at fold time).
	queueIvals []ival
	folded     bool
}

type ival struct{ s, e float64 }

func (rc *Recorder) now() float64 {
	if rc.clk != nil {
		return rc.clk.Now()
	}
	return 0
}

func (rc *Recorder) emit(ev Event) {
	ev.Rank = rc.rank
	ev.recID = rc.id
	ev.seq = rc.seq
	rc.seq++
	rc.events = append(rc.events, ev)
}

// Event records a bare kind/name event at the recorder's current virtual
// time.
func (rc *Recorder) Event(kind, name string) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: rc.now(), Kind: kind, Name: name})
}

// EventAt records a kind/name event at an explicit virtual time — the
// supervisor-decision form (kind = decision kind, name = detail).
func (rc *Recorder) EventAt(t float64, kind, name string) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: t, Kind: kind, Name: name})
}

// Phase records a phase transition at virtual time t: kind "phase", name =
// the phase entered.
func (rc *Recorder) Phase(t float64, to string) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: t, Kind: "phase", Name: to})
}

// Step records the completion of solver time step (1-based): kind "step",
// I1 = step.
func (rc *Recorder) Step(step int) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: rc.now(), Kind: "step", I1: int64(step)})
}

// Solve records one linear solve: kind "solve", name = solver, I1 =
// iterations, F1 = final relative residual, B = converged. It also feeds
// the "krylov.iterations" histogram.
func (rc *Recorder) Solve(solver string, iters int, residual float64, converged bool) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: rc.now(), Kind: "solve", Name: solver,
		I1: int64(iters), F1: residual, B: converged})
	rc.run.reg.Histogram("krylov.iterations", IterBuckets).Observe(float64(iters))
}

// Checkpoint records a checkpoint write or restore: kind "ckpt-write" or
// "ckpt-restore", I1 = step, I2 = serialized bytes (0 when unknown at the
// recording site).
func (rc *Recorder) Checkpoint(kind string, step int, bytes int64) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: rc.now(), Kind: kind, I1: int64(step), I2: bytes})
}

// SpotTick records a spot-market price tick at market time t: kind
// "spot-tick", F1 = clearing price.
func (rc *Recorder) SpotTick(t, price float64) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: t, Kind: "spot-tick", F1: price})
}

// Preemption records a spot interruption notice at market time t: kind
// "preempt-notice", I1 = node, F1 = outbidding price, F2 = reclaim time.
func (rc *Recorder) Preemption(t float64, node int, price, reclaimAt float64) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: t, Kind: "preempt-notice", I1: int64(node), F1: price, F2: reclaimAt})
}

// WorldGrow records a world re-formation that added capacity at virtual
// time t: kind "world-grow", I1 = rank count before, I2 = rank count after,
// I3 = the first appended node index.
func (rc *Recorder) WorldGrow(t float64, fromRanks, toRanks, newNode int) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: t, Kind: "world-grow",
		I1: int64(fromRanks), I2: int64(toRanks), I3: int64(newNode)})
}

// MigrateDecision records the elasticity driver's per-event verdict at
// virtual time t: kind "migrate-decision", name = the chosen verb
// ("migrate", "shrink" or "restart"), F1 = the notice window in virtual
// seconds (0 when the event carried no notice), F2 = the priced
// notice-window evacuation cost.
func (rc *Recorder) MigrateDecision(t float64, verb string, windowS, copyCostS float64) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: t, Kind: "migrate-decision", Name: verb, F1: windowS, F2: copyCostS})
}

// ArbiterCoalesce records the recovery arbiter folding a correlated group
// of fatal events into one recovery point at virtual time t: kind
// "arbiter-coalesce", Name = the group's verb, I1 = doomed nodes in the
// group, I2 = events folded beyond the one that poisoned the world, I3 =
// replacement re-acquisitions forced by cascades. Only coalesced groups
// emit it, so single-event recoveries journal exactly as before.
func (rc *Recorder) ArbiterCoalesce(t float64, verb string, doomed, folded, replans int) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: t, Kind: "arbiter-coalesce", Name: verb,
		I1: int64(doomed), I2: int64(folded), I3: int64(replans)})
}

// ProvisionRetry records one autoscaler re-provisioning attempt hitting
// market exhaustion and backing off, at virtual time t (after the delay):
// kind "provision-retry", I1 = acquisition attempt number, I2 = instances
// acquired so far, I3 = instances wanted, F1 = the backoff delay in
// virtual seconds.
func (rc *Recorder) ProvisionRetry(t float64, attempt, got, want int, delayS float64) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: t, Kind: "provision-retry",
		I1: int64(attempt), I2: int64(got), I3: int64(want), F1: delayS})
}

// PoolStats records one world's payload-pool traffic at virtual time t:
// kind "pool", I1 = buffer requests served, I2 = buffers returned. The
// hit/miss split is deliberately not recorded: which get finds a recycled
// buffer depends on goroutine scheduling, while request/return totals are
// pure functions of the deterministic message sequence. gets − puts is the
// number of buffers whose ownership passed to the application.
func (rc *Recorder) PoolStats(t float64, gets, puts int64) {
	if rc == nil {
		return
	}
	rc.emit(Event{T: t, Kind: "pool", I1: gets, I2: puts})
}

// CountMsg counts one sent message of payloadBytes towards the rank's
// traffic counters (folded into "mp.messages"/"mp.message_bytes").
func (rc *Recorder) CountMsg(payloadBytes int) {
	if rc == nil {
		return
	}
	rc.msgs++
	rc.msgBytes += int64(payloadBytes)
}

// CountHalo counts one ghost-exchange of the given total sent bytes
// (folded into "halo.exchanges"/"halo.bytes" and surfaced per step by
// StepHalo).
func (rc *Recorder) CountHalo(bytes int) {
	if rc == nil {
		return
	}
	rc.haloN++
	rc.haloBytes += int64(bytes)
}

// StepHalo emits the halo traffic accumulated since the previous StepHalo
// as one event: kind "halo", I1 = step, I2 = exchanges, I3 = bytes. Steps
// without halo traffic emit nothing.
func (rc *Recorder) StepHalo(step int) {
	if rc == nil {
		return
	}
	dn, db := rc.haloN-rc.haloMarkN, rc.haloBytes-rc.haloMarkBytes
	if dn == 0 {
		return
	}
	rc.haloMarkN, rc.haloMarkBytes = rc.haloN, rc.haloBytes
	rc.emit(Event{T: rc.now(), Kind: "halo", I1: int64(step), I2: dn, I3: db})
	rc.run.reg.Histogram("halo.step_bytes", ByteBuckets).Observe(float64(db))
}

// QueueInterval records one delivered message's virtual residency interval
// [arrive, recv] in the receiver's mailbox. The fold computes the maximum
// overlap — the mailbox-depth high-water in virtual time, which unlike a
// wall-clock queue length does not depend on goroutine scheduling.
func (rc *Recorder) QueueInterval(arrive, recv float64) {
	if rc == nil {
		return
	}
	rc.queueIvals = append(rc.queueIvals, ival{arrive, recv})
}

// fold merges the recorder's local counters into the registry (once).
func (rc *Recorder) fold(reg *Registry) {
	if rc.folded {
		return
	}
	rc.folded = true
	reg.Counter("mp.messages").Add(rc.msgs)
	reg.Counter("mp.message_bytes").Add(rc.msgBytes)
	reg.Counter("halo.exchanges").Add(rc.haloN)
	reg.Counter("halo.bytes").Add(rc.haloBytes)
	if hw := maxOverlap(rc.queueIvals); hw > 0 {
		reg.Gauge("mp.mailbox_highwater").Max(float64(hw))
	}
}

// maxOverlap returns the maximum number of simultaneously-open intervals.
// Ties between an interval closing and another opening at the same instant
// count both as open (a message arriving exactly when another is received
// was momentarily queued behind it).
func maxOverlap(ivals []ival) int {
	if len(ivals) == 0 {
		return 0
	}
	starts := make([]float64, len(ivals))
	ends := make([]float64, len(ivals))
	for i, iv := range ivals {
		starts[i] = iv.s
		ends[i] = iv.e
	}
	sort.Float64s(starts)
	sort.Float64s(ends)
	depth, maxDepth := 0, 0
	j := 0
	for i := 0; i < len(starts); i++ {
		for j < len(ends) && ends[j] < starts[i] {
			depth--
			j++
		}
		depth++
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	return maxDepth
}
