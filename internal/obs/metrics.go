package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Fixed bucket layouts. Histograms never invent bucket bounds at runtime:
// a fixed layout keeps two runs' metric files byte-comparable and lets
// dashboards overlay runs without rebinning.
var (
	// IterBuckets bins Krylov iteration counts.
	IterBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500}
	// ByteBuckets bins per-step traffic volumes (bytes).
	ByteBuckets = []float64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24}
)

// Registry is a named-metric store. All accessors are nil-safe and return
// nil-safe handles, so instrumentation sites need no enabled checks beyond
// the pointer they already hold. Aggregation operations are deliberately
// limited to order-independent ones — integer adds, maxima, bucket counts —
// so concurrent recording from rank goroutines cannot make two identical
// seeded runs diverge.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

func newRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.counters[name]
	if c == nil {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Gauge returns the named max-gauge, creating it on first use.
func (g *Registry) Gauge(name string) *Gauge {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	ga := g.gauges[name]
	if ga == nil {
		ga = &Gauge{}
		g.gauges[name] = ga
	}
	return ga
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (an implicit +Inf bucket is appended). Later
// calls reuse the existing layout regardless of bounds.
func (g *Registry) Histogram(name string, bounds []float64) *Histogram {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	h := g.hists[name]
	if h == nil {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		g.hists[name] = h
	}
	return h
}

// Counter is a monotone int64 counter. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil || d == 0 {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a maximum-tracking gauge over non-negative values (the only
// float aggregation that is order-independent under concurrent recording).
// Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Max folds v into the gauge if it exceeds the current maximum. Negative
// values are ignored (the zero gauge reads 0).
func (g *Gauge) Max(v float64) {
	if g == nil || v <= 0 || math.IsNaN(v) {
		return
	}
	nb := math.Float64bits(v)
	for {
		ob := g.bits.Load()
		if math.Float64frombits(ob) >= v {
			return
		}
		if g.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// Value returns the current maximum (0 when nothing was recorded).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets: counts[i] tallies
// values v with v <= bounds[i] (and above the previous bound); the last
// bucket is the +Inf overflow. Nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
}

// Observe tallies v into its bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
}

// write emits the registry as deterministic JSON: sections and names in
// sorted order, shortest round-trip float formatting.
func (g *Registry) write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\n  \"counters\": {")
	for i, name := range sortedNames(len(g.counters), func(yield func(string)) {
		for k := range g.counters {
			yield(k)
		}
	}) {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    ")
		bw.WriteString(strconv.Quote(name))
		bw.WriteString(": ")
		bw.WriteString(strconv.FormatInt(g.counters[name].Value(), 10))
	}
	bw.WriteString("\n  },\n  \"gauges\": {")
	for i, name := range sortedNames(len(g.gauges), func(yield func(string)) {
		for k := range g.gauges {
			yield(k)
		}
	}) {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    ")
		bw.WriteString(strconv.Quote(name))
		bw.WriteString(": ")
		bw.WriteString(formatFloat(g.gauges[name].Value()))
	}
	bw.WriteString("\n  },\n  \"histograms\": {")
	for i, name := range sortedNames(len(g.hists), func(yield func(string)) {
		for k := range g.hists {
			yield(k)
		}
	}) {
		if i > 0 {
			bw.WriteByte(',')
		}
		h := g.hists[name]
		bw.WriteString("\n    ")
		bw.WriteString(strconv.Quote(name))
		bw.WriteString(": {\"bounds\": [")
		for j, b := range h.bounds {
			if j > 0 {
				bw.WriteString(", ")
			}
			bw.WriteString(formatFloat(b))
		}
		bw.WriteString("], \"counts\": [")
		for j := range h.counts {
			if j > 0 {
				bw.WriteString(", ")
			}
			bw.WriteString(strconv.FormatInt(h.counts[j].Load(), 10))
		}
		bw.WriteString("]}")
	}
	bw.WriteString("\n  }\n}\n")
	return bw.Flush()
}

// sortedNames collects map keys through the iteration callback and returns
// them sorted — the registry's only map walks, serialized through here so
// iteration order can never leak into the output (heterolint:maporder).
func sortedNames(n int, each func(yield func(string))) []string {
	names := make([]string, 0, n)
	each(func(k string) { names = append(names, k) })
	sort.Strings(names)
	return names
}

// formatFloat renders a float in the journal/metrics encoding: shortest
// representation that round-trips, so equal values always encode equally.
// Negative zero is normalised to +0 — -0 == 0 in Go, and two equal values
// must not render two ways (see the AppendEventLine schema comment).
func formatFloat(f float64) string {
	if f == 0 {
		f = 0
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
