package obs

import (
	"strconv"
)

// AppendEventLine appends one event encoded as a single JSON object line
// (including the trailing newline) to dst and returns the extended slice.
// The encoding is hand-rolled (field order fixed, shortest round-trip
// floats, zero-valued optional fields omitted) so the journal is a pure
// function of the event values — encoding/json would work today but ties
// byte output to stdlib internals. WriteJournal emits every line through
// this function, and ParseEventLine accepts exactly this function's image:
// parse followed by re-encode is byte-identical for every line a journal
// writer produced.
//
// Line schema:
//
//	{"t":<f>,"rank":<i>,"kind":<s>[,"name":<s>][,"i1":<i>][,"i2":<i>]
//	 [,"i3":<i>][,"f1":<f>][,"f2":<f>][,"b":true]}
//
// Canonicalisation invariants (what makes the encoding injective on the
// values it preserves):
//
//   - integers render in strconv.FormatInt form (no leading zeros or '+');
//     the optional i1/i2/i3 fields are omitted when zero;
//   - floats render in shortest round-trip form ('g', -1), with negative
//     zero normalised to +0 at encode time — -0 == 0 in Go, so the optional
//     f1/f2 fields silently omit it exactly like +0, and a required field
//     (t) must not render the equal value two ways. An event carrying
//     math.Copysign(0, -1) therefore round-trips to +0 by design;
//   - the b flag is written only when true.
func AppendEventLine(dst []byte, ev *Event) []byte {
	dst = append(dst, `{"t":`...)
	dst = append(dst, formatFloat(ev.T)...)
	dst = append(dst, `,"rank":`...)
	dst = strconv.AppendInt(dst, int64(ev.Rank), 10)
	dst = append(dst, `,"kind":`...)
	dst = strconv.AppendQuote(dst, ev.Kind)
	if ev.Name != "" {
		dst = append(dst, `,"name":`...)
		dst = strconv.AppendQuote(dst, ev.Name)
	}
	dst = appendOptInt(dst, `,"i1":`, ev.I1)
	dst = appendOptInt(dst, `,"i2":`, ev.I2)
	dst = appendOptInt(dst, `,"i3":`, ev.I3)
	dst = appendOptFloat(dst, `,"f1":`, ev.F1)
	dst = appendOptFloat(dst, `,"f2":`, ev.F2)
	if ev.B {
		dst = append(dst, `,"b":true`...)
	}
	dst = append(dst, "}\n"...)
	return dst
}

func appendOptInt(dst []byte, key string, v int64) []byte {
	if v == 0 {
		return dst
	}
	dst = append(dst, key...)
	return strconv.AppendInt(dst, v, 10)
}

// appendOptFloat omits zero values; note that the comparison also catches
// negative zero (-0 == 0), which is the omission half of the negative-zero
// normalisation documented on AppendEventLine.
func appendOptFloat(dst []byte, key string, v float64) []byte {
	if v == 0 {
		return dst
	}
	dst = append(dst, key...)
	return append(dst, formatFloat(v)...)
}
