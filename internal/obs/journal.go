package obs

import (
	"bufio"
	"strconv"
)

// writeEventLine encodes one event as a single JSON object line. The
// encoding is hand-rolled (field order fixed, shortest round-trip floats,
// zero-valued optional fields omitted) so the journal is a pure function of
// the event values — encoding/json would work today but ties byte output to
// stdlib internals.
//
// Line schema:
//
//	{"t":<f>,"rank":<i>,"kind":<s>[,"name":<s>][,"i1":<i>][,"i2":<i>]
//	 [,"i3":<i>][,"f1":<f>][,"f2":<f>][,"b":true]}
func writeEventLine(bw *bufio.Writer, ev *Event) {
	bw.WriteString(`{"t":`)
	bw.WriteString(formatFloat(ev.T))
	bw.WriteString(`,"rank":`)
	bw.WriteString(strconv.Itoa(ev.Rank))
	bw.WriteString(`,"kind":`)
	bw.WriteString(strconv.Quote(ev.Kind))
	if ev.Name != "" {
		bw.WriteString(`,"name":`)
		bw.WriteString(strconv.Quote(ev.Name))
	}
	writeOptInt(bw, `,"i1":`, ev.I1)
	writeOptInt(bw, `,"i2":`, ev.I2)
	writeOptInt(bw, `,"i3":`, ev.I3)
	writeOptFloat(bw, `,"f1":`, ev.F1)
	writeOptFloat(bw, `,"f2":`, ev.F2)
	if ev.B {
		bw.WriteString(`,"b":true`)
	}
	bw.WriteString("}\n")
}

func writeOptInt(bw *bufio.Writer, key string, v int64) {
	if v == 0 {
		return
	}
	bw.WriteString(key)
	bw.WriteString(strconv.FormatInt(v, 10))
}

func writeOptFloat(bw *bufio.Writer, key string, v float64) {
	if v == 0 {
		return
	}
	bw.WriteString(key)
	bw.WriteString(formatFloat(v))
}
