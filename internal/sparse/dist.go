package sparse

import (
	"fmt"
	"sort"

	"heterohpc/internal/mp"
)

// RowMap records which global rows (mesh vertices) this rank owns. Owned
// ids are sorted; local row i is Owned[i].
type RowMap struct {
	Owned []int
	g2l   map[int]int
	// dense[g] = local index + 1 (0 = unowned), used instead of the map
	// when the global id space is small enough: LocalOf is the hottest
	// lookup of matrix construction, and an array probe beats a map probe
	// severalfold. Nil for large id spaces, where the map keeps memory
	// proportional to the owned count.
	dense []int32
}

// denseRowMapLimit bounds the global id space for which NewRowMap builds
// the dense lookup table (4 MiB of int32 per rank at the limit).
const denseRowMapLimit = 1 << 20

// NewRowMap builds a row map from the (copied, sorted) owned global ids.
func NewRowMap(owned []int) *RowMap {
	cp := append([]int(nil), owned...)
	sort.Ints(cp)
	m := &RowMap{Owned: cp}
	if n := len(cp); n > 0 && cp[0] >= 0 && cp[n-1] < denseRowMapLimit {
		m.dense = make([]int32, cp[n-1]+1)
		for l, g := range cp {
			m.dense[g] = int32(l + 1)
		}
		return m
	}
	m.g2l = make(map[int]int, len(cp))
	for l, g := range cp {
		m.g2l[g] = l
	}
	return m
}

// N returns the owned row count.
func (m *RowMap) N() int { return len(m.Owned) }

// LocalOf returns the local index of global row g, if owned.
func (m *RowMap) LocalOf(g int) (int, bool) {
	if m.dense != nil {
		if g < 0 || g >= len(m.dense) {
			return 0, false
		}
		if l := m.dense[g]; l > 0 {
			return int(l - 1), true
		}
		return 0, false
	}
	l, ok := m.g2l[g]
	return l, ok
}

// Importer moves owned vector values to the ranks that hold them as ghosts
// (the Epetra_Import role). Construction performs a scalable handshake:
// requesters know their ghost owners locally; owners learn their requesters
// through one indicator-vector Allreduce followed by neighbour-only
// messages, so no all-to-all traffic is needed even at 1000 ranks.
type Importer struct {
	r      *mp.Rank
	nOwned int
	nGhost int
	tag    int
	// sends[i]: owned local indices to pack for peer sendPeers[i].
	sendPeers []int
	sends     [][]int
	// recvs[i]: ghost local positions filled from peer recvPeers[i], in the
	// order that peer packs them.
	recvPeers []int
	recvs     [][]int
	// sendB/recvB cache the total payload bytes one Exchange (resp. the
	// send half of ExportAdd) puts on the wire, for the observer.
	sendB, recvB int
	// ghostGlobal keeps the ghost ids this importer serves, so structurally
	// identical matrices can verify compatibility and share the importer
	// (see NewDistMatrixLike).
	ghostGlobal []int
}

// NewImporter builds an importer for a vector laid out as [owned | ghosts].
// ghostGlobal lists the ghost global ids in their local order (position
// nOwned+i); owner maps any global id to its owning rank; tag reserves two
// message tags (tag, tag+1) for this importer.
func NewImporter(r *mp.Rank, rowMap *RowMap, ghostGlobal []int, owner func(int) int, tag int) (*Importer, error) {
	im := &Importer{r: r, nOwned: rowMap.N(), nGhost: len(ghostGlobal), tag: tag}

	// Group ghost positions by owning rank: one counting pass sizes the
	// per-peer groups exactly, so the second pass fills two flat backing
	// arrays without append growth.
	counts := map[int]int{} // owner -> ghost count
	for _, g := range ghostGlobal {
		o := owner(g)
		if o == r.ID() {
			return nil, fmt.Errorf("sparse: ghost %d owned by requester %d", g, o)
		}
		if o < 0 || o >= r.Size() {
			return nil, fmt.Errorf("sparse: ghost %d has invalid owner %d", g, o)
		}
		counts[o]++
	}
	im.recvPeers = sortedIntKeys(counts)
	peerIdx := make(map[int]int, len(im.recvPeers))
	im.recvs = make([][]int, len(im.recvPeers))
	reqIDs := make([][]int, len(im.recvPeers))
	flatPos := make([]int, len(ghostGlobal))
	flatIDs := make([]int, len(ghostGlobal))
	off := 0
	for i, p := range im.recvPeers {
		peerIdx[p] = i
		im.recvs[i] = flatPos[off : off : off+counts[p]]
		reqIDs[i] = flatIDs[off : off : off+counts[p]]
		off += counts[p]
	}
	for i, g := range ghostGlobal {
		pi := peerIdx[owner(g)]
		im.recvs[pi] = append(im.recvs[pi], im.nOwned+i)
		reqIDs[pi] = append(reqIDs[pi], g)
	}

	// Census: each owner learns how many requesters will contact it.
	numRequesters := census(r, im.recvPeers)

	// Send requests; serve them.
	for i, p := range im.recvPeers {
		r.SendInts(p, tag, reqIDs[i])
	}
	type srcReq struct {
		src  int
		locs []int
	}
	im.sendPeers = make([]int, 0, numRequesters)
	im.sends = make([][]int, 0, numRequesters)
	reqs := make([]srcReq, 0, numRequesters)
	for i := 0; i < numRequesters; i++ {
		src, ids := r.RecvAnyInts(tag)
		locs := make([]int, len(ids))
		for j, g := range ids {
			l, ok := rowMap.LocalOf(g)
			if !ok {
				return nil, fmt.Errorf("sparse: rank %d asked rank %d for unowned row %d",
					src, r.ID(), g)
			}
			locs[j] = l
		}
		reqs = append(reqs, srcReq{src, locs})
	}
	// Insertion sort by source rank (at most a neighbour set; avoids
	// sort.Slice's reflection allocations).
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j].src < reqs[j-1].src; j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
	for _, q := range reqs {
		im.sendPeers = append(im.sendPeers, q.src)
		im.sends = append(im.sends, q.locs)
		im.sendB += 8 * len(q.locs)
	}
	for _, pos := range im.recvs {
		im.recvB += 8 * len(pos)
	}
	im.ghostGlobal = append([]int(nil), ghostGlobal...)
	return im, nil
}

// census makes every rank learn how many peers will message it: each rank
// contributes an indicator vector with 1 at each peer it will contact, and
// the summed vector's own entry is the answer. Cost: one P-length Allreduce.
func census(r *mp.Rank, peers []int) int {
	ind := make([]float64, r.Size())
	for _, p := range peers {
		ind[p] = 1
	}
	sum := r.Allreduce(mp.OpSum, ind)
	return int(sum[r.ID()] + 0.5)
}

// NOwned returns the owned prefix length of vectors this importer serves.
func (im *Importer) NOwned() int { return im.nOwned }

// NGhost returns the ghost tail length.
func (im *Importer) NGhost() int { return im.nGhost }

// Exchange fills the ghost tail of x (layout [owned | ghosts]) with the
// owners' current values. All ranks sharing the importer must call it
// together.
func (im *Importer) Exchange(x []float64) {
	if len(x) < im.nOwned+im.nGhost {
		panic(fmt.Sprintf("sparse: Exchange vector len %d < %d", len(x), im.nOwned+im.nGhost))
	}
	im.r.Obs().CountHalo(im.sendB)
	for i, p := range im.sendPeers {
		im.r.SendF64Gather(p, im.tag+1, x, im.sends[i])
	}
	for i, p := range im.recvPeers {
		im.r.RecvF64Scatter(p, im.tag+1, x, im.recvs[i])
	}
}

// ExportAdd is the reverse operation (the Epetra_Export role): ghost-slot
// contributions in x are sent to their owners and added into the owners'
// owned entries; the local ghost tail is zeroed afterwards. Used for
// assembling right-hand sides whose element integrals straddle ranks.
func (im *Importer) ExportAdd(x []float64) {
	if len(x) < im.nOwned+im.nGhost {
		panic(fmt.Sprintf("sparse: ExportAdd vector len %d < %d", len(x), im.nOwned+im.nGhost))
	}
	im.r.Obs().CountHalo(im.recvB)
	for i, p := range im.recvPeers {
		pos := im.recvs[i]
		im.r.SendF64Gather(p, im.tag+1, x, pos)
		for _, l := range pos {
			x[l] = 0
		}
	}
	for i, p := range im.sendPeers {
		im.r.RecvF64AddScatter(p, im.tag+1, x, im.sends[i])
	}
}

func sortedKeys(m map[int][]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedIntKeys(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
