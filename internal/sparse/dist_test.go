package sparse

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/partition"
	"heterohpc/internal/vclock"
)

func runWorld(t *testing.T, nranks int, body func(r *mp.Rank) error) *mp.World {
	t.Helper()
	topo, err := mp.BlockTopology(nranks, 2)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := netmodel.NewFabric(netmodel.Loopback, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestImporterExchange distributes ids 0..11 over 3 ranks (block of 4) and
// checks ghost exchange and export-add.
func TestImporterExchange(t *testing.T) {
	const nranks = 3
	owner := func(g int) int { return g / 4 }
	runWorld(t, nranks, func(r *mp.Rank) error {
		owned := []int{r.ID() * 4, r.ID()*4 + 1, r.ID()*4 + 2, r.ID()*4 + 3}
		rm := NewRowMap(owned)
		// Each rank ghosts the first id of the next rank (cyclically), except
		// the last rank which ghosts two ids.
		var ghosts []int
		switch r.ID() {
		case 0:
			ghosts = []int{4}
		case 1:
			ghosts = []int{8}
		case 2:
			ghosts = []int{0, 1}
		}
		im, err := NewImporter(r, rm, ghosts, owner, 100)
		if err != nil {
			return err
		}
		x := make([]float64, 4+len(ghosts))
		for i, g := range owned {
			x[i] = float64(g * 10)
		}
		im.Exchange(x)
		for i, g := range ghosts {
			if x[4+i] != float64(g*10) {
				return fmt.Errorf("rank %d ghost %d = %v, want %v", r.ID(), g, x[4+i], float64(g*10))
			}
		}
		// ExportAdd: put 1 into each ghost slot; owners should accumulate.
		for i := range ghosts {
			x[4+i] = 1
		}
		im.ExportAdd(x)
		// id 0 and id 1 each receive +1 from rank 2; id 4 +1 from rank 0;
		// id 8 +1 from rank 1.
		want := map[int]float64{0: 1, 1: 11, 4: 41, 8: 81}
		for i, g := range owned {
			w, ok := want[g]
			if !ok {
				w = float64(g * 10)
			} else if g == 0 {
				w = 0*10 + 1
			}
			if x[i] != w {
				return fmt.Errorf("rank %d owned %d = %v, want %v", r.ID(), g, x[i], w)
			}
		}
		// Ghost slots must be zeroed by ExportAdd.
		for i := range ghosts {
			if x[4+i] != 0 {
				return fmt.Errorf("ghost slot not zeroed")
			}
		}
		return nil
	})
}

func TestImporterRejectsSelfGhost(t *testing.T) {
	runWorld(t, 1, func(r *mp.Rank) error {
		rm := NewRowMap([]int{0, 1})
		_, err := NewImporter(r, rm, []int{0}, func(int) int { return 0 }, 50)
		if err == nil {
			return fmt.Errorf("self-ghost accepted")
		}
		return nil
	})
}

// elemValue is a deterministic pseudo-random element contribution used to
// compare serial and distributed assembly.
func elemValue(e, a, b int) float64 {
	h := uint64(e*1000003 + a*8191 + b*131)
	h ^= h >> 13
	h *= 0x9e3779b97f4a7c15
	return 1 + float64(h%1000)/1000
}

// assembleSerialDense builds the reference global dense matrix.
func assembleSerialDense(m *mesh.Mesh) [][]float64 {
	n := m.NumVerts()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for e := 0; e < m.NumElems(); e++ {
		vs := m.ElemVerts(e)
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				d[vs[a]][vs[b]] += elemValue(e, a, b)
			}
		}
	}
	return d
}

func TestDistMatrixMatchesSerialAssembly(t *testing.T) {
	m := mesh.NewUnitCube(3)
	const nranks = 4
	part, err := partition.RCB(m, nranks)
	if err != nil {
		t.Fatal(err)
	}
	dense := assembleSerialDense(m)
	n := m.NumVerts()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) + 1)
	}
	wantY := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			wantY[i] += dense[i][j] * x[j]
		}
	}

	var mu sync.Mutex
	gotY := make([]float64, n)
	owner := func(g int) int { return mesh.VertexOwnerOnParts(m, part, g) }
	runWorld(t, nranks, func(r *mp.Rank) error {
		l, err := mesh.NewLocalFromParts(m, part, r.ID())
		if err != nil {
			return err
		}
		var coo COO
		for _, e := range l.Elems {
			vs := m.ElemVerts(e)
			for a := 0; a < 8; a++ {
				for b := 0; b < 8; b++ {
					coo.Add(vs[a], vs[b], elemValue(e, a, b))
				}
			}
		}
		rm := NewRowMap(l.VertGlobal[:l.NumOwned])
		dm, err := NewDistMatrix(r, rm, &coo, owner, 200)
		if err != nil {
			return err
		}
		xo := make([]float64, dm.NOwned())
		for i, g := range rm.Owned {
			xo[i] = x[g]
		}
		yo := make([]float64, dm.NOwned())
		dm.Apply(xo, yo)
		mu.Lock()
		for i, g := range rm.Owned {
			gotY[g] = yo[i]
		}
		mu.Unlock()
		return nil
	})
	for i := 0; i < n; i++ {
		if math.Abs(gotY[i]-wantY[i]) > 1e-9*(1+math.Abs(wantY[i])) {
			t.Fatalf("row %d: distributed %v vs serial %v", i, gotY[i], wantY[i])
		}
	}
}

func TestDistMatrixSetValuesRefill(t *testing.T) {
	// Refill with doubled values must double Apply results.
	m := mesh.NewUnitCube(2)
	const nranks = 2
	part, _ := partition.RCB(m, nranks)
	owner := func(g int) int { return mesh.VertexOwnerOnParts(m, part, g) }
	runWorld(t, nranks, func(r *mp.Rank) error {
		l, err := mesh.NewLocalFromParts(m, part, r.ID())
		if err != nil {
			return err
		}
		var coo COO
		for _, e := range l.Elems {
			vs := m.ElemVerts(e)
			for a := 0; a < 8; a++ {
				for b := 0; b < 8; b++ {
					coo.Add(vs[a], vs[b], elemValue(e, a, b))
				}
			}
		}
		rm := NewRowMap(l.VertGlobal[:l.NumOwned])
		dm, err := NewDistMatrix(r, rm, &coo, owner, 300)
		if err != nil {
			return err
		}
		xo := make([]float64, dm.NOwned())
		for i := range xo {
			xo[i] = 1
		}
		y1 := make([]float64, dm.NOwned())
		dm.Apply(xo, y1)
		for i := range coo.Vals {
			coo.Vals[i] *= 2
		}
		dm.SetValues(&coo)
		y2 := make([]float64, dm.NOwned())
		dm.Apply(xo, y2)
		for i := range y1 {
			if math.Abs(y2[i]-2*y1[i]) > 1e-9*(1+math.Abs(y1[i])) {
				return fmt.Errorf("refill wrong: %v vs %v", y2[i], 2*y1[i])
			}
		}
		return nil
	})
}

func TestApplyDirichletIdentityRowsAndSymmetry(t *testing.T) {
	m := mesh.NewUnitCube(3)
	const nranks = 3
	part, _ := partition.RCB(m, nranks)
	owner := func(g int) int { return mesh.VertexOwnerOnParts(m, part, g) }
	isBC := m.OnBoundary
	g := func(v int) float64 { x, y, z := m.VertexCoord(v); return x + 2*y + 3*z }

	n := m.NumVerts()
	var mu sync.Mutex
	gathered := make([][]float64, n)
	for i := range gathered {
		gathered[i] = make([]float64, n)
	}
	rhsGlobal := make([]float64, n)

	runWorld(t, nranks, func(r *mp.Rank) error {
		l, err := mesh.NewLocalFromParts(m, part, r.ID())
		if err != nil {
			return err
		}
		var coo COO
		for _, e := range l.Elems {
			vs := m.ElemVerts(e)
			for a := 0; a < 8; a++ {
				for b := 0; b < 8; b++ {
					// Symmetric contribution.
					v := elemValue(e, min(a, b), max(a, b))
					coo.Add(vs[a], vs[b], v)
				}
			}
		}
		rm := NewRowMap(l.VertGlobal[:l.NumOwned])
		dm, err := NewDistMatrix(r, rm, &coo, owner, 400)
		if err != nil {
			return err
		}
		rhs := make([]float64, dm.NOwned())
		dm.ApplyDirichlet(isBC, g, rhs)
		mu.Lock()
		defer mu.Unlock()
		A := dm.Local()
		for lr := 0; lr < dm.NOwned(); lr++ {
			gr := rm.Owned[lr]
			rhsGlobal[gr] = rhs[lr]
			for s := A.RowPtr[lr]; s < A.RowPtr[lr+1]; s++ {
				gathered[gr][dm.ColGlobal(A.Col[s])] += A.Val[s]
			}
		}
		return nil
	})

	for v := 0; v < n; v++ {
		if isBC(v) {
			for j := 0; j < n; j++ {
				want := 0.0
				if j == v {
					want = 1
				}
				if gathered[v][j] != want {
					t.Fatalf("BC row %d col %d = %v", v, j, gathered[v][j])
				}
			}
			if rhsGlobal[v] != g(v) {
				t.Fatalf("BC rhs %d = %v, want %v", v, rhsGlobal[v], g(v))
			}
		}
	}
	// Interior block must stay symmetric after column elimination.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if isBC(i) || isBC(j) {
				continue
			}
			if math.Abs(gathered[i][j]-gathered[j][i]) > 1e-9 {
				t.Fatalf("asymmetry at (%d,%d): %v vs %v", i, j, gathered[i][j], gathered[j][i])
			}
		}
	}
}

func TestDistMatrixAllSum(t *testing.T) {
	m := mesh.NewUnitCube(2)
	const nranks = 2
	part, _ := partition.RCB(m, nranks)
	owner := func(g int) int { return mesh.VertexOwnerOnParts(m, part, g) }
	runWorld(t, nranks, func(r *mp.Rank) error {
		l, _ := mesh.NewLocalFromParts(m, part, r.ID())
		var coo COO
		for _, e := range l.Elems {
			vs := m.ElemVerts(e)
			coo.Add(vs[0], vs[0], 1)
		}
		rm := NewRowMap(l.VertGlobal[:l.NumOwned])
		dm, err := NewDistMatrix(r, rm, &coo, owner, 500)
		if err != nil {
			return err
		}
		if got := dm.AllSum(float64(r.ID() + 1)); got != 3 {
			return fmt.Errorf("AllSum = %v", got)
		}
		return nil
	})
}

func TestRowMap(t *testing.T) {
	rm := NewRowMap([]int{5, 2, 9})
	if rm.N() != 3 || rm.Owned[0] != 2 {
		t.Fatalf("row map not sorted: %v", rm.Owned)
	}
	if l, ok := rm.LocalOf(9); !ok || l != 2 {
		t.Fatalf("LocalOf(9) = %d, %v", l, ok)
	}
	if _, ok := rm.LocalOf(7); ok {
		t.Fatal("LocalOf(7) should miss")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestCompactKeepsApplyWorking(t *testing.T) {
	m := mesh.NewUnitCube(3)
	const nranks = 2
	part, _ := partition.RCB(m, nranks)
	owner := func(g int) int { return mesh.VertexOwnerOnParts(m, part, g) }
	runWorld(t, nranks, func(r *mp.Rank) error {
		l, err := mesh.NewLocalFromParts(m, part, r.ID())
		if err != nil {
			return err
		}
		var coo COO
		for _, e := range l.Elems {
			vs := m.ElemVerts(e)
			for a := 0; a < 8; a++ {
				for b := 0; b < 8; b++ {
					coo.Add(vs[a], vs[b], elemValue(e, a, b))
				}
			}
		}
		rm := NewRowMap(l.VertGlobal[:l.NumOwned])
		dm, err := NewDistMatrix(r, rm, &coo, owner, 600)
		if err != nil {
			return err
		}
		x := make([]float64, dm.NOwned())
		for i := range x {
			x[i] = float64(i + 1)
		}
		before := make([]float64, dm.NOwned())
		dm.Apply(x, before)
		dm.Compact()
		after := make([]float64, dm.NOwned())
		dm.Apply(x, after)
		for i := range before {
			if before[i] != after[i] {
				return fmt.Errorf("Apply changed after Compact at row %d", i)
			}
		}
		// SetValues must now refuse.
		defer func() {
			if recover() == nil {
				panic("SetValues after Compact did not panic")
			}
		}()
		dm.SetValues(&coo)
		return nil
	})
}
