// Package sparse provides the distributed sparse linear algebra that
// Trilinos/Epetra provided in the paper's stack: compressed sparse row
// matrices with a fixed symbolic pattern and fast numeric refill, row
// distribution across ranks, ghost-value importers for matrix-vector
// products, and triplet exporters for finite-element assembly of off-rank
// rows ("matrices and vectors are distributed and need to be updated via a
// message passing interface", §IV-C).
//
// Compute kernels report their operation counts through a Charger so the
// virtual clock can translate real work into platform seconds.
package sparse

import (
	"fmt"
	"sort"
)

// Charger receives operation counts from compute kernels. *mp.Rank
// implements it; serial callers use NopCharger.
type Charger interface {
	ChargeCompute(flops, bytes float64)
}

// NopCharger discards charges (serial / un-modelled execution).
type NopCharger struct{}

// ChargeCompute implements Charger.
func (NopCharger) ChargeCompute(flops, bytes float64) {}

// COO accumulates assembly triplets with global or local indices.
type COO struct {
	Rows, Cols []int
	Vals       []float64
}

// Add appends one triplet.
func (c *COO) Add(row, col int, v float64) {
	c.Rows = append(c.Rows, row)
	c.Cols = append(c.Cols, col)
	c.Vals = append(c.Vals, v)
}

// Grow reserves capacity for n additional triplets, so a sized assembly
// loop appends without incremental reallocation.
func (c *COO) Grow(n int) {
	need := len(c.Rows) + n
	if need <= cap(c.Rows) {
		return
	}
	rows := make([]int, len(c.Rows), need)
	copy(rows, c.Rows)
	c.Rows = rows
	cols := make([]int, len(c.Cols), need)
	copy(cols, c.Cols)
	c.Cols = cols
	vals := make([]float64, len(c.Vals), need)
	copy(vals, c.Vals)
	c.Vals = vals
}

// Len returns the triplet count.
func (c *COO) Len() int { return len(c.Rows) }

// Reset clears the triplets, keeping capacity.
func (c *COO) Reset() {
	c.Rows = c.Rows[:0]
	c.Cols = c.Cols[:0]
	c.Vals = c.Vals[:0]
}

// CSR is a compressed-sparse-row matrix. The symbolic pattern (RowPtr, Col,
// with column indices sorted within each row) is immutable after
// construction; Val may be refilled for matrices whose coefficients change
// every time step, which is how the applications keep the per-step assembly
// cheap without re-sorting triplets.
type CSR struct {
	NRows, NCols int
	RowPtr       []int
	Col          []int
	Val          []float64
}

// NewCSRFromCOO builds a CSR from triplets, summing duplicates. Column
// indices within each row come out sorted. Symbolic construction runs once
// per space setup, so vcharge's constructor exemption applies; per-step
// numeric refills go through charged paths (fem.AssembleMatrix, MulVec).
func NewCSRFromCOO(nrows, ncols int, c *COO) (*CSR, error) {
	if nrows > 1<<31 || ncols > 1<<31 {
		return nil, fmt.Errorf("sparse: %dx%d exceeds the 2^31 packed-key index range", nrows, ncols)
	}
	for i := range c.Rows {
		if c.Rows[i] < 0 || c.Rows[i] >= nrows {
			return nil, fmt.Errorf("sparse: row %d out of %d", c.Rows[i], nrows)
		}
		if c.Cols[i] < 0 || c.Cols[i] >= ncols {
			return nil, fmt.Errorf("sparse: col %d out of %d", c.Cols[i], ncols)
		}
	}
	// Sort triplet indices by (row, col). The comparator reads one packed
	// uint64 key per triplet instead of chasing two slices — the packing
	// preserves (row, col) lexicographic order bit-exactly, so the sort
	// reaches the identical permutation (and therefore the identical
	// duplicate-summation order below) as the two-field comparison, just
	// with a far cheaper inner loop.
	keys := make([]uint64, c.Len())
	for i := range keys {
		keys[i] = uint64(c.Rows[i])<<32 | uint64(c.Cols[i])
	}
	idx := make([]int, c.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	m := &CSR{NRows: nrows, NCols: ncols, RowPtr: make([]int, nrows+1)}
	m.Col = make([]int, 0, c.Len())
	m.Val = make([]float64, 0, c.Len())
	prevKey := ^uint64(0)
	for _, i := range idx {
		r, cl, v := c.Rows[i], c.Cols[i], c.Vals[i]
		if k := keys[i]; k == prevKey {
			m.Val[len(m.Val)-1] += v
			continue
		} else {
			prevKey = k
		}
		m.Col = append(m.Col, cl)
		m.Val = append(m.Val, v)
		m.RowPtr[r+1] = len(m.Col)
	}
	// Fill empty-row gaps.
	for r := 1; r <= nrows; r++ {
		if m.RowPtr[r] < m.RowPtr[r-1] {
			m.RowPtr[r] = m.RowPtr[r-1]
		}
	}
	return m, nil
}

// NNZ returns the stored entry count.
func (m *CSR) NNZ() int { return len(m.Val) }

// ZeroVals resets all stored values, keeping the pattern.
func (m *CSR) ZeroVals() {
	for i := range m.Val {
		m.Val[i] = 0
	}
}

// Slot returns the value index of entry (row, col), or -1 if the pattern
// has no such entry. Columns are sorted per row, so this is a binary search.
func (m *CSR) Slot(row, col int) int {
	lo, hi := m.RowPtr[row], m.RowPtr[row+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.Col[mid] < col:
			lo = mid + 1
		case m.Col[mid] > col:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// AddAt accumulates v into entry (row, col), which must exist in the
// pattern.
func (m *CSR) AddAt(row, col int, v float64) {
	s := m.Slot(row, col)
	if s < 0 {
		panic(fmt.Sprintf("sparse: entry (%d,%d) not in pattern", row, col))
	}
	m.Val[s] += v
}

// MulVec computes y = A·x and charges 2·nnz flops plus the CSR streaming
// traffic to ch. len(x) must be NCols and len(y) must be NRows.
func (m *CSR) MulVec(x, y []float64, ch Charger) {
	if len(x) != m.NCols || len(y) != m.NRows {
		panic(fmt.Sprintf("sparse: MulVec dims %d,%d for %dx%d matrix",
			len(x), len(y), m.NRows, m.NCols))
	}
	for r := 0; r < m.NRows; r++ {
		var sum float64
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			sum += m.Val[i] * x[m.Col[i]]
		}
		y[r] = sum
	}
	nnz := float64(m.NNZ())
	// 12 bytes/nnz (8B value + 4B index) + x gathers + y stores.
	ch.ChargeCompute(2*nnz, 20*nnz+8*float64(m.NRows))
}

// Diagonal extracts the matrix diagonal into d (len NRows); missing
// diagonal entries yield 0.
func (m *CSR) Diagonal(d []float64) {
	if len(d) != m.NRows {
		panic("sparse: Diagonal length mismatch")
	}
	for r := range d {
		d[r] = 0
		if s := m.Slot(r, r); s >= 0 {
			d[r] = m.Val[s]
		}
	}
}

// Clone returns a deep copy sharing no storage.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		NRows: m.NRows, NCols: m.NCols,
		RowPtr: append([]int(nil), m.RowPtr...),
		Col:    append([]int(nil), m.Col...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// Dense expands the matrix to a dense row-major [][]float64 (tests only).
//
//heterolint:allow vcharge test-support expansion, never on a simulated compute path
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.NRows)
	for r := range d {
		d[r] = make([]float64, m.NCols)
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			d[r][m.Col[i]] += m.Val[i]
		}
	}
	return d
}
