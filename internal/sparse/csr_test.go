package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"heterohpc/internal/stats"
)

func TestCSRFromCOOBasic(t *testing.T) {
	var c COO
	c.Add(0, 0, 2)
	c.Add(1, 1, 3)
	c.Add(0, 1, 1)
	c.Add(0, 0, 4) // duplicate, must sum
	m, err := NewCSRFromCOO(2, 2, &c)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
	d := m.Dense()
	want := [][]float64{{6, 1}, {0, 3}}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Fatalf("entry (%d,%d) = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
}

func TestCSRFromCOOEmptyRows(t *testing.T) {
	var c COO
	c.Add(3, 0, 1)
	m, err := NewCSRFromCOO(5, 2, &c)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		n := m.RowPtr[r+1] - m.RowPtr[r]
		want := 0
		if r == 3 {
			want = 1
		}
		if n != want {
			t.Fatalf("row %d has %d entries", r, n)
		}
	}
}

func TestCSRFromCOOValidation(t *testing.T) {
	var c COO
	c.Add(5, 0, 1)
	if _, err := NewCSRFromCOO(2, 2, &c); err == nil {
		t.Error("out-of-range row accepted")
	}
	c.Reset()
	c.Add(0, 5, 1)
	if _, err := NewCSRFromCOO(2, 2, &c); err == nil {
		t.Error("out-of-range col accepted")
	}
}

func TestCOOReset(t *testing.T) {
	var c COO
	c.Add(0, 0, 1)
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSlotAndAddAt(t *testing.T) {
	var c COO
	c.Add(0, 2, 1)
	c.Add(0, 0, 1)
	c.Add(1, 1, 1)
	m, _ := NewCSRFromCOO(2, 3, &c)
	if s := m.Slot(0, 2); s < 0 || m.Val[s] != 1 {
		t.Fatalf("Slot(0,2) = %d", s)
	}
	if s := m.Slot(0, 1); s != -1 {
		t.Fatalf("missing entry returned slot %d", s)
	}
	m.AddAt(0, 0, 5)
	if d := m.Dense(); d[0][0] != 6 {
		t.Fatalf("AddAt result %v", d[0][0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddAt outside pattern did not panic")
		}
	}()
	m.AddAt(1, 0, 1)
}

func TestZeroValsKeepsPattern(t *testing.T) {
	var c COO
	c.Add(0, 0, 7)
	m, _ := NewCSRFromCOO(1, 1, &c)
	m.ZeroVals()
	if m.NNZ() != 1 || m.Val[0] != 0 {
		t.Fatalf("ZeroVals wrong: nnz=%d val=%v", m.NNZ(), m.Val)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := stats.NewRNG(17)
	for trial := 0; trial < 20; trial++ {
		nr := rng.Intn(8) + 1
		nc := rng.Intn(8) + 1
		var c COO
		for k := 0; k < rng.Intn(30); k++ {
			c.Add(rng.Intn(nr), rng.Intn(nc), rng.Range(-2, 2))
		}
		m, err := NewCSRFromCOO(nr, nc, &c)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, nc)
		for i := range x {
			x[i] = rng.Range(-1, 1)
		}
		y := make([]float64, nr)
		m.MulVec(x, y, NopCharger{})
		d := m.Dense()
		for r := 0; r < nr; r++ {
			var want float64
			for j := 0; j < nc; j++ {
				want += d[r][j] * x[j]
			}
			if math.Abs(y[r]-want) > 1e-12 {
				t.Fatalf("trial %d row %d: %v vs %v", trial, r, y[r], want)
			}
		}
	}
}

func TestMulVecDimPanic(t *testing.T) {
	var c COO
	c.Add(0, 0, 1)
	m, _ := NewCSRFromCOO(1, 1, &c)
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 1), NopCharger{})
}

func TestDiagonal(t *testing.T) {
	var c COO
	c.Add(0, 0, 4)
	c.Add(1, 0, 2)
	m, _ := NewCSRFromCOO(2, 2, &c)
	d := make([]float64, 2)
	m.Diagonal(d)
	if d[0] != 4 || d[1] != 0 {
		t.Fatalf("diagonal %v", d)
	}
}

func TestClone(t *testing.T) {
	var c COO
	c.Add(0, 0, 1)
	m, _ := NewCSRFromCOO(1, 1, &c)
	cl := m.Clone()
	cl.Val[0] = 9
	if m.Val[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

type chargeRecorder struct{ flops, bytes float64 }

func (c *chargeRecorder) ChargeCompute(f, b float64) { c.flops += f; c.bytes += b }

func TestMulVecCharges(t *testing.T) {
	var c COO
	c.Add(0, 0, 1)
	c.Add(0, 1, 1)
	m, _ := NewCSRFromCOO(1, 2, &c)
	rec := &chargeRecorder{}
	m.MulVec([]float64{1, 2}, make([]float64, 1), rec)
	if rec.flops != 4 {
		t.Fatalf("charged %v flops, want 4", rec.flops)
	}
	if rec.bytes <= 0 {
		t.Fatal("charged no bytes")
	}
}

// Property: pattern column indices are sorted and RowPtr is monotone for
// arbitrary triplet sets.
func TestCSRInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nTripRaw uint8) bool {
		rng := stats.NewRNG(seed)
		const nr, nc = 6, 7
		var c COO
		for k := 0; k < int(nTripRaw); k++ {
			c.Add(rng.Intn(nr), rng.Intn(nc), rng.Range(-1, 1))
		}
		m, err := NewCSRFromCOO(nr, nc, &c)
		if err != nil {
			return false
		}
		if m.RowPtr[0] != 0 || m.RowPtr[nr] != m.NNZ() {
			return false
		}
		for r := 0; r < nr; r++ {
			if m.RowPtr[r+1] < m.RowPtr[r] {
				return false
			}
			for i := m.RowPtr[r] + 1; i < m.RowPtr[r+1]; i++ {
				if m.Col[i] <= m.Col[i-1] {
					return false // unsorted or duplicate column
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestVecOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(3, 2, x, y, NopCharger{})
	if y[0] != 12 || y[2] != 36 {
		t.Fatalf("axpy %v", y)
	}
	Scale(3, 0.5, y, NopCharger{})
	if y[0] != 6 {
		t.Fatalf("scale %v", y)
	}
	dst := make([]float64, 3)
	CopyN(3, dst, x, NopCharger{})
	if dst[1] != 2 {
		t.Fatalf("copy %v", dst)
	}
	if d := DotLocal(3, x, x, NopCharger{}); d != 14 {
		t.Fatalf("dot %v", d)
	}
	if n := Norm2Local(3, x, NopCharger{}); math.Abs(n-math.Sqrt(14)) > 1e-14 {
		t.Fatalf("norm %v", n)
	}
	// Prefix-only application.
	z := []float64{1, 1}
	Axpy(1, 1, []float64{5, 5}, z, NopCharger{})
	if z[1] != 1 {
		t.Fatal("Axpy touched beyond prefix")
	}
}

func BenchmarkMulVec(b *testing.B) {
	// A 27-point-stencil-like matrix of 10k rows.
	rng := stats.NewRNG(3)
	const n = 10000
	var c COO
	for r := 0; r < n; r++ {
		for k := 0; k < 27; k++ {
			c.Add(r, (r+k*37)%n, rng.Range(-1, 1))
		}
	}
	m, _ := NewCSRFromCOO(n, n, &c)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, y, NopCharger{})
	}
}
