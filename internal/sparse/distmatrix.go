package sparse

import (
	"fmt"
	"sort"

	"heterohpc/internal/mp"
)

// DistMatrix is a row-distributed sparse matrix (the Epetra_FECrsMatrix
// role). Each rank stores the rows of its owned vertices; the column space
// is [owned | ghost-columns], where ghost columns are the off-rank vertices
// its rows couple to. Finite-element assembly may produce contributions to
// rows owned by other ranks; those triplets are exported to their owners
// during construction (symbolically) and on every SetValues (numerically) —
// the GlobalAssemble step of the paper's stack.
type DistMatrix struct {
	r      *mp.Rank
	rowMap *RowMap
	// A holds the owned rows over local column indices.
	A *CSR
	// ghostCols lists ghost column global ids; local column nOwned+i.
	ghostCols []int
	colG2L    map[int]int
	imp       *Importer

	// Numeric-refill plans. localSlots[i] is the CSR value slot for the i-th
	// kept triplet of the structure COO; exportIdx groups the structure-COO
	// indices of off-rank triplets by destination peer; importSlots are the
	// CSR slots for the value streams arriving from each source peer.
	localTrip   []int // structure-COO indices of locally-owned triplets
	localSlots  []int
	exportPeers []int
	exportIdx   [][]int
	importPeers []int
	importSlots [][]int

	tag       int
	xbuf      []float64
	compacted bool
}

// NewDistMatrix builds the distributed structure from assembly triplets in
// global ids (coo may contain rows owned by other ranks) and fills the
// values. owner maps any global id to its owning rank; tag reserves message
// tags [tag, tag+4) for this matrix. The coo is retained by reference for
// SetValues refills and must keep its triplet order.
func NewDistMatrix(r *mp.Rank, rowMap *RowMap, coo *COO, owner func(int) int, tag int) (*DistMatrix, error) {
	return newDistMatrix(r, rowMap, coo, owner, tag, nil)
}

// NewDistMatrixLike builds a matrix like NewDistMatrix but reuses prev's
// ghost-value importer when the new matrix turns out to have the same ghost
// column set (the common case for several operators assembled over one
// finite-element space, e.g. the Navier–Stokes mass/gradient/velocity
// family). Sharing skips the importer's census Allreduce and request
// handshake — at 8 ranks that is the dominant setup allocation — and is
// collective: all ranks must agree on prev. When the ghost sets differ the
// matrix silently builds its own importer, so the call is always safe.
func NewDistMatrixLike(prev *DistMatrix, coo *COO, owner func(int) int, tag int) (*DistMatrix, error) {
	return newDistMatrix(prev.r, prev.rowMap, coo, owner, tag, prev.imp)
}

func newDistMatrix(r *mp.Rank, rowMap *RowMap, coo *COO, owner func(int) int, tag int, share *Importer) (*DistMatrix, error) {
	dm := &DistMatrix{r: r, rowMap: rowMap, tag: tag, colG2L: map[int]int{}}

	// Split triplets into locally-owned rows and export groups: a counting
	// pass sizes everything, then a fill pass writes into exactly-sized
	// flat storage (assembly COOs run to millions of triplets, so append
	// growth here dominated construction allocations).
	nLocal := 0
	exportCounts := map[int]int{} // peer -> triplet count
	for _, g := range coo.Rows {
		if _, ok := rowMap.LocalOf(g); ok {
			nLocal++
		} else {
			o := owner(g)
			if o == r.ID() || o < 0 || o >= r.Size() {
				return nil, fmt.Errorf("sparse: row %d has bad owner %d", g, o)
			}
			exportCounts[o]++
		}
	}
	dm.localTrip = make([]int, 0, nLocal)
	dm.exportPeers = sortedIntKeys(exportCounts)
	dm.exportIdx = make([][]int, len(dm.exportPeers))
	exportPeerIdx := make(map[int]int, len(dm.exportPeers))
	flatExport := make([]int, coo.Len()-nLocal)
	off := 0
	for i, p := range dm.exportPeers {
		exportPeerIdx[p] = i
		dm.exportIdx[i] = flatExport[off : off : off+exportCounts[p]]
		off += exportCounts[p]
	}
	for i, g := range coo.Rows {
		if _, ok := rowMap.LocalOf(g); ok {
			dm.localTrip = append(dm.localTrip, i)
		} else {
			pi := exportPeerIdx[owner(g)]
			dm.exportIdx[pi] = append(dm.exportIdx[pi], i)
		}
	}

	// Ship off-rank structure (row,col pairs) to owners; receive ours.
	numSenders := census(r, dm.exportPeers)
	for i, p := range dm.exportPeers {
		idx := dm.exportIdx[i]
		pairs := make([]int, 0, 2*len(idx))
		for _, t := range idx {
			pairs = append(pairs, coo.Rows[t], coo.Cols[t])
		}
		r.SendInts(p, tag, pairs)
	}
	type incoming struct {
		src   int
		pairs []int
	}
	ins := make([]incoming, 0, numSenders)
	for i := 0; i < numSenders; i++ {
		src, pairs := r.RecvAnyInts(tag)
		ins = append(ins, incoming{src, pairs})
	}
	for i := 1; i < len(ins); i++ {
		for j := i; j > 0 && ins[j].src < ins[j-1].src; j-- {
			ins[j], ins[j-1] = ins[j-1], ins[j]
		}
	}

	// Column map: owned columns first (aligned with the row map so the same
	// vector serves as both domain and range), then sorted ghost columns.
	nOwned := rowMap.N()
	ghostSet := map[int]bool{}
	noteCol := func(g int) {
		if _, ok := rowMap.LocalOf(g); !ok {
			ghostSet[g] = true
		}
	}
	for _, t := range dm.localTrip {
		noteCol(coo.Cols[t])
	}
	for _, in := range ins {
		for j := 1; j < len(in.pairs); j += 2 {
			noteCol(in.pairs[j])
		}
	}
	dm.ghostCols = make([]int, 0, len(ghostSet))
	for g := range ghostSet {
		dm.ghostCols = append(dm.ghostCols, g)
	}
	sort.Ints(dm.ghostCols)
	for i, g := range dm.ghostCols {
		dm.colG2L[g] = nOwned + i
	}
	colOf := func(g int) int {
		if l, ok := rowMap.LocalOf(g); ok {
			return l
		}
		return dm.colG2L[g]
	}

	// Build the CSR pattern from local + imported triplets.
	var pat COO
	nImported := 0
	for _, in := range ins {
		nImported += len(in.pairs) / 2
	}
	pat.Grow(len(dm.localTrip) + nImported)
	for _, t := range dm.localTrip {
		lr, _ := rowMap.LocalOf(coo.Rows[t])
		pat.Add(lr, colOf(coo.Cols[t]), 0)
	}
	for _, in := range ins {
		for j := 0; j < len(in.pairs); j += 2 {
			lr, ok := rowMap.LocalOf(in.pairs[j])
			if !ok {
				return nil, fmt.Errorf("sparse: received row %d not owned by rank %d",
					in.pairs[j], r.ID())
			}
			pat.Add(lr, colOf(in.pairs[j+1]), 0)
		}
	}
	var err error
	dm.A, err = NewCSRFromCOO(nOwned, nOwned+len(dm.ghostCols), &pat)
	if err != nil {
		return nil, err
	}

	// Slot plans for numeric refill.
	dm.localSlots = make([]int, len(dm.localTrip))
	for i, t := range dm.localTrip {
		lr, _ := rowMap.LocalOf(coo.Rows[t])
		dm.localSlots[i] = dm.A.Slot(lr, colOf(coo.Cols[t]))
	}
	dm.importPeers = make([]int, 0, len(ins))
	dm.importSlots = make([][]int, 0, len(ins))
	for _, in := range ins {
		slots := make([]int, 0, len(in.pairs)/2)
		for j := 0; j < len(in.pairs); j += 2 {
			lr, _ := rowMap.LocalOf(in.pairs[j])
			slots = append(slots, dm.A.Slot(lr, colOf(in.pairs[j+1])))
		}
		dm.importPeers = append(dm.importPeers, in.src)
		dm.importSlots = append(dm.importSlots, slots)
	}

	// Ghost-value importer for matrix-vector products, shared with a
	// structurally identical sibling when possible. The decision must be
	// collective — a rank that shares skips the importer handshake while a
	// rank that rebuilds enters its census Allreduce — so the rank-local
	// ghost-set comparisons are agreed with one scalar reduction before
	// committing either way.
	if share != nil {
		eq := 0.0
		if intsEqual(dm.ghostCols, share.ghostGlobal) {
			eq = 1
		}
		if int(r.AllreduceScalar(mp.OpSum, eq)+0.5) == r.Size() {
			dm.imp = share
		}
	}
	if dm.imp == nil {
		dm.imp, err = NewImporter(r, rowMap, dm.ghostCols, owner, tag+2)
		if err != nil {
			return nil, err
		}
	}
	dm.xbuf = make([]float64, nOwned+len(dm.ghostCols))
	dm.SetValues(coo)
	return dm, nil
}

// Compact releases the numeric-refill plans (triplet slot maps and export
// schedules), cutting the matrix's memory to the CSR block plus the
// importer. Call it on matrices whose values never change after assembly —
// at the paper's 1000-rank scale the mass, pressure and gradient operators
// of the Navier–Stokes solver would otherwise hold gigabytes of refill
// bookkeeping. SetValues panics after Compact.
func (dm *DistMatrix) Compact() {
	dm.localTrip = nil
	dm.localSlots = nil
	dm.exportPeers = nil
	dm.exportIdx = nil
	dm.importPeers = nil
	dm.importSlots = nil
	dm.compacted = true
}

// SetValues refills the matrix from coo, which must contain exactly the
// triplets (same order) passed to NewDistMatrix, with new values. Off-rank
// contributions are exported to their owners and summed there.
func (dm *DistMatrix) SetValues(coo *COO) {
	if dm.compacted {
		panic("sparse: SetValues on compacted matrix")
	}
	dm.A.ZeroVals()
	for i, t := range dm.localTrip {
		dm.A.Val[dm.localSlots[i]] += coo.Vals[t]
	}
	for i, p := range dm.exportPeers {
		dm.r.SendF64Gather(p, dm.tag+1, coo.Vals, dm.exportIdx[i])
	}
	for i, p := range dm.importPeers {
		dm.r.RecvF64AddScatter(p, dm.tag+1, dm.A.Val, dm.importSlots[i])
	}
	// Accumulation cost of the numeric refill.
	dm.r.ChargeCompute(float64(len(dm.localTrip)), 16*float64(len(dm.localTrip)))
}

// NOwned returns the owned row count.
func (dm *DistMatrix) NOwned() int { return dm.rowMap.N() }

// NCols returns the local column-space width (owned + ghost columns).
func (dm *DistMatrix) NCols() int { return dm.rowMap.N() + len(dm.ghostCols) }

// RowMap returns the matrix's row distribution.
func (dm *DistMatrix) RowMap() *RowMap { return dm.rowMap }

// Importer returns the ghost-column importer (shared with solvers that need
// ghost exchanges of iterate vectors).
func (dm *DistMatrix) Importer() *Importer { return dm.imp }

// Local returns the owned-rows CSR block (local column indexing).
func (dm *DistMatrix) Local() *CSR { return dm.A }

// ColGlobal returns the global id of local column lc.
func (dm *DistMatrix) ColGlobal(lc int) int {
	if lc < dm.rowMap.N() {
		return dm.rowMap.Owned[lc]
	}
	return dm.ghostCols[lc-dm.rowMap.N()]
}

// Apply computes y = A·x where x and y are owned-length vectors. The ghost
// tail is imported internally. All ranks must call Apply together.
func (dm *DistMatrix) Apply(x, y []float64) {
	n := dm.NOwned()
	copy(dm.xbuf[:n], x[:n])
	dm.imp.Exchange(dm.xbuf)
	dm.A.MulVec(dm.xbuf, y, dm.r)
}

// AllSum implements the global reduction used by solvers on this matrix's
// communicator.
func (dm *DistMatrix) AllSum(v float64) float64 {
	return dm.r.AllreduceScalar(mp.OpSum, v)
}

// Rank returns the communicator rank this matrix lives on.
func (dm *DistMatrix) Rank() *mp.Rank { return dm.r }

// ChargeCompute implements Charger by delegating to the rank's clock, so
// solvers can charge their vector work through the matrix.
func (dm *DistMatrix) ChargeCompute(flops, bytes float64) {
	dm.r.ChargeCompute(flops, bytes)
}

// Dirichlet captures the boundary elimination of a matrix: at construction
// it turns boundary rows into identity rows and zeroes boundary columns,
// saving the zeroed coefficients so that right-hand sides can be eliminated
// later — including several right-hand sides against the same matrix (the
// Navier–Stokes velocity step solves three components with one operator)
// and right-hand sides whose boundary data changes each time step while the
// matrix does not (the pressure Poisson operator).
type Dirichlet struct {
	dm *DistMatrix
	// bcRows lists owned boundary rows (local index).
	bcRows []int
	// elimRow/elimCol/elimVal record the zeroed column entries:
	// rhs[elimRow[k]] -= elimVal[k]·g(elimCol[k]) with elimCol a global id.
	elimRow []int
	elimCol []int
	elimVal []float64
	// bcCol is the cached boundary-column indicator, reused by Recompute.
	bcCol []bool
}

// NewDirichlet modifies the matrix in place (identity boundary rows, zeroed
// boundary columns — symmetry preserving) and returns the eliminator for
// the right-hand sides. isBC is evaluated on global vertex ids, so every
// rank handles its ghost columns without communication. After a SetValues
// refill call Recompute on the returned eliminator (or NewDirichlet again).
func (dm *DistMatrix) NewDirichlet(isBC func(global int) bool) *Dirichlet {
	d := &Dirichlet{dm: dm}
	d.Recompute(isBC)
	return d
}

// Recompute re-applies the boundary elimination after a SetValues refill,
// reusing the eliminator's storage so steady-state time loops stay
// allocation-free. The scan is value-faithful to NewDirichlet — elim
// entries are recorded only for nonzero coefficients, so the recorded
// count (and with it the EliminateRHS compute charge) tracks the refilled
// values exactly as a fresh NewDirichlet would.
func (d *Dirichlet) Recompute(isBC func(global int) bool) {
	dm := d.dm
	A := dm.A
	n := dm.NOwned()
	nc := dm.NCols()
	if cap(d.bcCol) < nc {
		d.bcCol = make([]bool, nc)
	}
	bcCol := d.bcCol[:nc]
	for lc := 0; lc < nc; lc++ {
		bcCol[lc] = isBC(dm.ColGlobal(lc))
	}
	if cap(d.elimRow) == 0 {
		// First build: a counting pass sizes the arrays exactly, replacing
		// a dozen append-growth reallocations with four.
		nbc, nelim := 0, 0
		for lr := 0; lr < n; lr++ {
			if bcCol[lr] {
				nbc++
				continue
			}
			for s := A.RowPtr[lr]; s < A.RowPtr[lr+1]; s++ {
				if bcCol[A.Col[s]] && A.Val[s] != 0 {
					nelim++
				}
			}
		}
		d.bcRows = make([]int, 0, nbc)
		d.elimRow = make([]int, 0, nelim)
		d.elimCol = make([]int, 0, nelim)
		d.elimVal = make([]float64, 0, nelim)
	}
	d.bcRows = d.bcRows[:0]
	d.elimRow = d.elimRow[:0]
	d.elimCol = d.elimCol[:0]
	d.elimVal = d.elimVal[:0]
	for lr := 0; lr < n; lr++ {
		rowIsBC := bcCol[lr] // local row lr ↔ local col lr (aligned maps)
		if rowIsBC {
			d.bcRows = append(d.bcRows, lr)
		}
		for s := A.RowPtr[lr]; s < A.RowPtr[lr+1]; s++ {
			lc := A.Col[s]
			switch {
			case rowIsBC:
				if lc == lr {
					A.Val[s] = 1
				} else {
					A.Val[s] = 0
				}
			case bcCol[lc]:
				if A.Val[s] != 0 {
					d.elimRow = append(d.elimRow, lr)
					d.elimCol = append(d.elimCol, dm.ColGlobal(lc))
					d.elimVal = append(d.elimVal, A.Val[s])
				}
				A.Val[s] = 0
			}
		}
	}
	dm.r.ChargeCompute(float64(A.NNZ()), 12*float64(A.NNZ()))
}

// EliminateRHS folds boundary values into one right-hand side: boundary
// rows get rhs = g, interior rows get rhs_i -= A_ij·g_j for the eliminated
// couplings.
func (d *Dirichlet) EliminateRHS(g func(global int) float64, rhs []float64) {
	if len(rhs) < d.dm.NOwned() {
		panic("sparse: rhs shorter than owned rows")
	}
	for k, lr := range d.elimRow {
		rhs[lr] -= d.elimVal[k] * g(d.elimCol[k])
	}
	for _, lr := range d.bcRows {
		rhs[lr] = g(d.dm.rowMap.Owned[lr])
	}
	d.dm.r.ChargeCompute(float64(2*len(d.elimRow)+len(d.bcRows)),
		24*float64(len(d.elimRow)))
}

// SetSolution writes the boundary values into the owned entries of a
// solution vector (used after projection updates that disturb boundary
// dofs).
func (d *Dirichlet) SetSolution(g func(global int) float64, x []float64) {
	for _, lr := range d.bcRows {
		x[lr] = g(d.dm.rowMap.Owned[lr])
	}
}

// ApplyDirichlet imposes u = g on boundary rows/columns in a
// symmetry-preserving way: boundary rows become identity with rhs = g, and
// boundary columns are eliminated into the right-hand side
// (rhs_i -= A_ij·g_j). It is shorthand for NewDirichlet + EliminateRHS.
func (dm *DistMatrix) ApplyDirichlet(isBC func(global int) bool, g func(global int) float64, rhs []float64) {
	dm.NewDirichlet(isBC).EliminateRHS(g, rhs)
}
