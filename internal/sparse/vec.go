package sparse

import "math"

// BLAS-1 kernels over the owned prefix of distributed vectors. Each charges
// its flop and byte counts so virtual time reflects the real work.

// Axpy computes y[i] += a·x[i] over the first n entries.
func Axpy(n int, a float64, x, y []float64, ch Charger) {
	for i := 0; i < n; i++ {
		y[i] += a * x[i]
	}
	ch.ChargeCompute(2*float64(n), 24*float64(n))
}

// Scale computes x[i] *= a over the first n entries.
func Scale(n int, a float64, x []float64, ch Charger) {
	for i := 0; i < n; i++ {
		x[i] *= a
	}
	ch.ChargeCompute(float64(n), 16*float64(n))
}

// CopyN copies the first n entries of src into dst.
func CopyN(n int, dst, src []float64, ch Charger) {
	copy(dst[:n], src[:n])
	ch.ChargeCompute(0, 16*float64(n))
}

// DotLocal returns the dot product of the first n entries (no reduction).
func DotLocal(n int, x, y []float64, ch Charger) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += x[i] * y[i]
	}
	ch.ChargeCompute(2*float64(n), 16*float64(n))
	return sum
}

// Norm2Local returns sqrt(dot(x,x)) over the first n entries (no reduction).
func Norm2Local(n int, x []float64, ch Charger) float64 {
	return math.Sqrt(DotLocal(n, x, x, ch))
}
