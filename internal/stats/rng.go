// Package stats provides the small deterministic statistics toolkit used by
// the simulators: a seedable splitmix64 random number generator, common
// distributions, and summary statistics. Everything in this package is
// deterministic given a seed so that every experiment in the repository
// reproduces bit-identical tables.
package stats

import "math"

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; use NewRNG to seed explicitly. It is intentionally
// not safe for concurrent use: each simulated entity owns its own stream.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)); mu and sigma are the parameters
// of the underlying normal distribution, not the resulting mean.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Split derives an independent generator from the current stream. The child
// stream is decorrelated from the parent by mixing in a fixed odd constant.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()*0xda942042e4dd58b5 + 1}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
