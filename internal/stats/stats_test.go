package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		ss += x * x
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Errorf("normal variance = %v, want ~4", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp(2.5)
		if x < 0 {
			t.Fatalf("Exp produced negative %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.1 {
		t.Fatalf("exp mean = %v, want ~2.5", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		if x := r.LogNormal(0, 1); x <= 0 {
			t.Fatalf("LogNormal produced %v", x)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Split()
	// The child stream must not simply replay the parent's.
	p2 := NewRNG(21)
	p2.Uint64() // consume what Split consumed
	match := 0
	for i := 0; i < 50; i++ {
		if child.Uint64() == p2.Uint64() {
			match++
		}
	}
	if match > 2 {
		t.Fatalf("child stream tracks parent: %d matches", match)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(31)
	p := r.Perm(50)
	sorted := append([]int(nil), p...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("Perm missing %d", i)
		}
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Mean(xs) != 2.75 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("max = %v", Max(xs))
	}
	if Min(xs) != -1 {
		t.Errorf("min = %v", Min(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-sample helpers should return 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 2.5 {
		t.Errorf("median = %v", q)
	}
	// Input must be left unmodified.
	if xs[0] != 4 {
		t.Error("Quantile mutated input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 17)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
