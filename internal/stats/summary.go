package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics for xs. It returns a zero
// Summary for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies xs and leaves the input
// unmodified. It returns 0 for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
