package perf

import (
	"path/filepath"
	"testing"
)

// rdIterationAllocCeiling is the CI perf-smoke ceiling for the rd-iteration
// case. The pre-pooling tree measured 15,540 allocs/op; the zero-allocation
// steady-state work brought it to ~2,830, and the ceiling holds the ≥80%
// reduction (15,540 → 3,108) with ~9% headroom for toolchain drift. If this
// trips, an allocation crept back into the hot path — find it with
// `heterobench perf -memprofile`, do not raise the ceiling.
const rdIterationAllocCeiling = 3108

// nsIterationAllocCeiling is the ns-iteration ceiling. The six
// Navier–Stokes operators used to build six private ghost importers
// (6,559 allocs/op against RD's 2,832); sharing one importer across the
// coupled operators — they discretise the same element stencil, so their
// ghost sets are identical — brought it to ~4,600. The ceiling holds that
// with ~10% headroom. The residue over RD is genuine setup work: six
// DistMatrix assemblies per job instead of one.
const nsIterationAllocCeiling = 5060

// measureCase measures one tracked case by name, failing the test when the
// name is not registered or the environment cannot give representative
// allocation counts.
func measureCase(t *testing.T, name string) Result {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not representative under -race")
	}
	if testing.Short() {
		t.Skip("perf smoke skipped in -short mode")
	}
	for _, c := range Cases() {
		if c.Name == name {
			res := Measure(c)
			t.Logf("%s: %.0f ns/op, %d B/op, %d allocs/op (%d iterations)",
				name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
			return res
		}
	}
	t.Fatalf("%s case missing from tracked set", name)
	return Result{}
}

// TestRDIterationAllocCeiling is the CI perf-smoke step: it measures the
// tracked rd-iteration case (equivalent to BenchmarkRDIteration) and fails
// when allocs/op exceeds the checked-in ceiling. ns/op is hardware-dependent
// and only reported; allocs/op is deterministic enough to gate on.
func TestRDIterationAllocCeiling(t *testing.T) {
	res := measureCase(t, "rd-iteration")
	if res.AllocsPerOp > rdIterationAllocCeiling {
		t.Errorf("rd-iteration allocates %d allocs/op, ceiling is %d",
			res.AllocsPerOp, rdIterationAllocCeiling)
	}
}

// TestNSIterationAllocCeiling extends the CI alloc gate to the
// Navier–Stokes case, so the importer sharing cannot silently regress.
func TestNSIterationAllocCeiling(t *testing.T) {
	res := measureCase(t, "ns-iteration")
	if res.AllocsPerOp > nsIterationAllocCeiling {
		t.Errorf("ns-iteration allocates %d allocs/op, ceiling is %d",
			res.AllocsPerOp, nsIterationAllocCeiling)
	}
}

// TestSteadyStateZeroAlloc pins the warm-workspace solver paths at exactly
// zero allocations per op with observability disabled — the contract that
// lets the obs layer default to a nil no-op sink. Both cases run through
// the instrumented CG/GMRES wrappers, so any allocation the wrappers
// introduced would show up here.
func TestSteadyStateZeroAlloc(t *testing.T) {
	for _, name := range []string{"cg-steady-serial", "gmres-arnoldi"} {
		if res := measureCase(t, name); res.AllocsPerOp != 0 {
			t.Errorf("%s allocates %d allocs/op with obs disabled, want 0",
				name, res.AllocsPerOp)
		}
	}
}

// TestReportRoundTrip checks the BENCH.json schema survives write+read and
// that the Baseline section is preserved.
func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	want := Report{
		GoVersion: "go1.24.0",
		GoArch:    "amd64",
		Date:      "2026-08-05T00:00:00Z",
		Results: []Result{
			{Name: "rd-iteration", Iterations: 20, NsPerOp: 5.7e7, AllocsPerOp: 2832, BytesPerOp: 25238609},
		},
		Baseline: []Result{
			{Name: "rd-iteration", NsPerOp: 8.675e7, AllocsPerOp: 15540, BytesPerOp: 69565427},
		},
	}
	if err := WriteJSON(want, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0] != want.Results[0] {
		t.Errorf("results round-trip: got %+v", got.Results)
	}
	if len(got.Baseline) != 1 || got.Baseline[0] != want.Baseline[0] {
		t.Errorf("baseline round-trip: got %+v", got.Baseline)
	}
	if got.GoVersion != want.GoVersion || got.Date != want.Date {
		t.Errorf("header round-trip: got %+v", got)
	}
}

// TestCasesRegistered pins the tracked case set: BENCH.json diffs pair
// results by name, so removals or renames must be deliberate.
func TestCasesRegistered(t *testing.T) {
	want := []string{"rd-iteration", "ns-iteration", "cg-steady-serial", "gmres-arnoldi"}
	cs := Cases()
	if len(cs) != len(want) {
		t.Fatalf("%d tracked cases, want %d", len(cs), len(want))
	}
	for i, c := range cs {
		if c.Name != want[i] {
			t.Errorf("case %d named %q, want %q", i, c.Name, want[i])
		}
		if c.Bench == nil {
			t.Errorf("case %q has no benchmark body", c.Name)
		}
	}
}
