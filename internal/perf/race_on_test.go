//go:build race

package perf

// raceEnabled mirrors the race detector state: alloc-count and timing
// assertions are skipped under -race, where runtime instrumentation changes
// both.
const raceEnabled = true
