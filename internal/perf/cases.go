package perf

import (
	"math"
	"testing"

	"heterohpc/internal/core"
	"heterohpc/internal/krylov"
	"heterohpc/internal/sparse"
)

// Case is one tracked benchmark: a name that stays stable across commits
// (BENCH.json diffs pair results by it) and a standard benchmark body.
type Case struct {
	Name  string
	Bench func(b *testing.B)
}

// Cases returns the tracked set. Order is the BENCH.json order.
func Cases() []Case {
	return []Case{
		{Name: "rd-iteration", Bench: benchRDIteration},
		{Name: "ns-iteration", Bench: benchNSIteration},
		{Name: "cg-steady-serial", Bench: benchCGSteadySerial},
		{Name: "gmres-arnoldi", Bench: benchGMRESArnoldi},
	}
}

// benchRDIteration is one full platform-modelled RD run (world setup + two
// BDF2 steps on 8 ranks) — the unit of every figure, and the case whose
// allocs/op ceiling the CI perf-smoke step enforces. It must stay
// equivalent to BenchmarkRDIteration in bench_test.go.
func benchRDIteration(b *testing.B) {
	tg, err := core.NewTarget("ec2", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, err := core.WeakRD(8, 6, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tg.Run(core.JobSpec{Ranks: 8, App: app, SkipSteps: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchNSIteration is the Navier–Stokes equivalent (8 ranks, reduced size:
// ~4 linear solves per step).
func benchNSIteration(b *testing.B) {
	tg, err := core.NewTarget("ec2", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, err := core.WeakNS(8, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tg.Run(core.JobSpec{Ranks: 8, App: app, SkipSteps: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCGSteadySerial measures repeated warm-workspace CG solves of a 3-D
// Laplacian — the steady-state solver path with setup excluded; allocs/op
// must be 0.
func benchCGSteadySerial(b *testing.B) {
	const nx = 16
	a := lap3d(nx)
	n := a.NRows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}
	x := make([]float64, n)
	var sys krylov.System = krylov.SerialSystem{A: a}
	pc := krylov.NewILU0(a, n, nil)
	if err := pc.Setup(); err != nil {
		b.Fatal(err)
	}
	opt := krylov.Options{Tol: 1e-8, Work: &krylov.Workspace{}}
	if _, err := krylov.CG(sys, pc, rhs, x, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := krylov.CG(sys, pc, rhs, x, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGMRESArnoldi measures warm-workspace restarted GMRES on a
// convection-diffusion operator; allocs/op must be 0 (the per-cycle
// triangular-solve vector lives in the workspace).
func benchGMRESArnoldi(b *testing.B) {
	const n = 400
	a := convdiff1d(n, 0.4)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}
	x := make([]float64, n)
	var sys krylov.System = krylov.SerialSystem{A: a}
	opt := krylov.Options{Tol: 1e-10, Restart: 30, Work: &krylov.Workspace{}}
	if _, err := krylov.GMRES(sys, nil, rhs, x, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := krylov.GMRES(sys, nil, rhs, x, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// lap3d builds the 7-point Laplacian on an nx³ grid (SPD).
func lap3d(nx int) *sparse.CSR {
	var c sparse.COO
	id := func(i, j, k int) int { return (k*nx+j)*nx + i }
	for k := 0; k < nx; k++ {
		for j := 0; j < nx; j++ {
			for i := 0; i < nx; i++ {
				r := id(i, j, k)
				c.Add(r, r, 6)
				if i > 0 {
					c.Add(r, id(i-1, j, k), -1)
				}
				if i < nx-1 {
					c.Add(r, id(i+1, j, k), -1)
				}
				if j > 0 {
					c.Add(r, id(i, j-1, k), -1)
				}
				if j < nx-1 {
					c.Add(r, id(i, j+1, k), -1)
				}
				if k > 0 {
					c.Add(r, id(i, j, k-1), -1)
				}
				if k < nx-1 {
					c.Add(r, id(i, j, k+1), -1)
				}
			}
		}
	}
	m, err := sparse.NewCSRFromCOO(nx*nx*nx, nx*nx*nx, &c)
	if err != nil {
		panic(err)
	}
	return m
}

// convdiff1d builds a nonsymmetric 1-D convection-diffusion matrix.
func convdiff1d(n int, pe float64) *sparse.CSR {
	var c sparse.COO
	for i := 0; i < n; i++ {
		c.Add(i, i, 2+pe/2)
		if i > 0 {
			c.Add(i, i-1, -1-pe)
		}
		if i < n-1 {
			c.Add(i, i+1, -1+pe/2)
		}
	}
	m, err := sparse.NewCSRFromCOO(n, n, &c)
	if err != nil {
		panic(err)
	}
	return m
}
