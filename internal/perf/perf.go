// Package perf is the tracked host-performance harness: a fixed set of
// named benchmark cases over the simulator's hot paths, measured with
// testing.Benchmark and serialised to BENCH.json so regressions in host
// ns/op and allocs/op are caught in review (the virtual clock measures the
// modelled platforms; this package measures the simulator itself).
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// Result records one case's measurements, one line of BENCH.json.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the BENCH.json schema.
type Report struct {
	// GoVersion and GOARCH qualify the numbers: ns/op is only comparable
	// within one toolchain/architecture pair.
	GoVersion string `json:"go_version"`
	GoArch    string `json:"go_arch"`
	// Date is the measurement time (RFC 3339).
	Date    string   `json:"date"`
	Results []Result `json:"results"`
	// Baseline carries reference numbers a reviewer compares Results
	// against (e.g. the measurements before a performance PR). Run never
	// fills it; it is preserved from the checked-in file by rebaselines
	// that want to keep history.
	Baseline []Result `json:"baseline,omitempty"`
}

// Run measures every registered case whose name contains filter (all when
// filter is empty), logging progress to log.
func Run(filter string, log io.Writer) Report {
	rep := Report{
		GoVersion: runtime.Version(),
		GoArch:    runtime.GOARCH,
		Date:      time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range Cases() {
		if filter != "" && !strings.Contains(c.Name, filter) {
			continue
		}
		res := Measure(c)
		rep.Results = append(rep.Results, res)
		if log != nil {
			fmt.Fprintf(log, "%-24s %12.0f ns/op %12d B/op %8d allocs/op\n",
				res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
	}
	return rep
}

// Measure runs one case under testing.Benchmark with allocation reporting.
func Measure(c Case) Result {
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		c.Bench(b)
	})
	ns := math.NaN()
	if br.N > 0 {
		ns = float64(br.T.Nanoseconds()) / float64(br.N)
	}
	return Result{
		Name:        c.Name,
		Iterations:  br.N,
		NsPerOp:     ns,
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}
}

// FormatComparison renders each result next to its baseline entry (paired
// by name): the allocs/op and ns/op deltas when a baseline exists, and an
// explicit "(no baseline)" marker when it does not — silence must never
// read as "unchanged".
func FormatComparison(rep Report) string {
	base := map[string]Result{}
	for _, r := range rep.Baseline {
		base[r.Name] = r
	}
	var b strings.Builder
	for _, r := range rep.Results {
		bl, ok := base[r.Name]
		if !ok {
			fmt.Fprintf(&b, "%-24s %8d allocs/op   (no baseline)\n", r.Name, r.AllocsPerOp)
			continue
		}
		fmt.Fprintf(&b, "%-24s %8d allocs/op   baseline %8d (%+d), ns/op %+.1f%%\n",
			r.Name, r.AllocsPerOp, bl.AllocsPerOp, r.AllocsPerOp-bl.AllocsPerOp,
			pctDelta(r.NsPerOp, bl.NsPerOp))
	}
	return b.String()
}

// pctDelta is the percentage change from base to cur; 0 when base is not a
// usable reference.
func pctDelta(cur, base float64) float64 {
	if base <= 0 || math.IsNaN(base) || math.IsNaN(cur) {
		return 0
	}
	return (cur - base) / base * 100
}

// WriteJSON writes the report to path, indented for diff-friendly commits.
func WriteJSON(rep Report, path string) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ReadJSON loads a previously written BENCH.json.
func ReadJSON(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

// Profile wraps fn with optional CPU and heap profiling: cpuPath/memPath
// empty means no profile of that kind.
func Profile(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		return pprof.WriteHeapProfile(f)
	}
	return nil
}
