package netmodel

import (
	"testing"
	"testing/quick"
)

func TestReferenceModelsValidate(t *testing.T) {
	for _, m := range []*Model{GigE, TenGigE, IBDDR4X, Loopback} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []Model{
		{},
		{Name: "neg-lat", Inter: Link{Latency: -1, Bandwidth: 1}, Intra: Link{Bandwidth: 1}},
		{Name: "zero-bw", Inter: Link{Bandwidth: 0}, Intra: Link{Bandwidth: 1}},
		{Name: "neg-ovs", Inter: Link{Bandwidth: 1}, Intra: Link{Bandwidth: 1}, Oversub: -1},
		{Name: "bad-cg", Inter: Link{Bandwidth: 1}, Intra: Link{Bandwidth: 1}, CrossGroupBandwidth: 1.5},
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("model %q validated but should not", m.Name)
		}
	}
}

func TestLinkTime(t *testing.T) {
	l := Link{Latency: 1e-6, Bandwidth: 1e9}
	if got, want := l.Time(1e6), 1e-6+1e-3; got != want {
		t.Fatalf("Time = %v, want %v", got, want)
	}
}

func TestFabricIntraCheaperThanInter(t *testing.T) {
	for _, m := range []*Model{GigE, TenGigE, IBDDR4X} {
		f, err := NewFabric(m, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, bytes := range []int{0, 100, 10000, 1 << 20} {
			intra := f.P2P(bytes, true, true, 1)
			inter := f.P2P(bytes, false, true, 1)
			if intra >= inter {
				t.Errorf("%s: intra %v >= inter %v at %d bytes", m.Name, intra, inter, bytes)
			}
		}
	}
}

func TestOversubscriptionDegradesWithNodes(t *testing.T) {
	f2, _ := NewFabric(GigE, 2)
	f64, _ := NewFabric(GigE, 64)
	if f64.InterBandwidth() >= f2.InterBandwidth() {
		t.Fatalf("bandwidth should fall with node count: %v vs %v",
			f64.InterBandwidth(), f2.InterBandwidth())
	}
	// IB keeps much more of its bandwidth across the same growth.
	ib2, _ := NewFabric(IBDDR4X, 2)
	ib64, _ := NewFabric(IBDDR4X, 64)
	ibRetention := ib64.InterBandwidth() / ib2.InterBandwidth()
	geRetention := f64.InterBandwidth() / f2.InterBandwidth()
	if ibRetention <= geRetention {
		t.Fatalf("IB retention %v should beat GigE retention %v", ibRetention, geRetention)
	}
}

func TestNICShareDividesBandwidth(t *testing.T) {
	f, _ := NewFabric(TenGigE, 8)
	const bytes = 1 << 20
	t1 := f.P2P(bytes, false, true, 1)
	t16 := f.P2P(bytes, false, true, 16)
	// Subtract latency to compare pure transfer time.
	lat := TenGigE.Inter.Latency
	if ratio := (t16 - lat) / (t1 - lat); ratio < 15.9 || ratio > 16.1 {
		t.Fatalf("16-way NIC share should scale transfer time 16x, got %v", ratio)
	}
}

func TestCrossGroupPenaltySmall(t *testing.T) {
	// Table II found no measurable placement-group benefit; the model's
	// cross-group penalty must exist but stay small (<15% on a typical halo
	// message).
	f, _ := NewFabric(TenGigE, 63)
	const bytes = 32 << 10
	in := f.P2P(bytes, false, true, 16)
	out := f.P2P(bytes, false, false, 16)
	if out <= in {
		t.Fatalf("cross-group should not be faster: %v vs %v", out, in)
	}
	if out/in > 1.15 {
		t.Fatalf("cross-group penalty too large: %v", out/in)
	}
}

func TestP2PMonotoneInBytesProperty(t *testing.T) {
	f, _ := NewFabric(GigE, 16)
	prop := func(aRaw, bRaw uint32, sameNode, sameGroup bool, shareRaw uint8) bool {
		a, b := int(aRaw%1e6), int(bRaw%1e6)
		if a > b {
			a, b = b, a
		}
		share := int(shareRaw%16) + 1
		return f.P2P(a, sameNode, sameGroup, share) <= f.P2P(b, sameNode, sameGroup, share)+1e-15
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestP2PPositiveProperty(t *testing.T) {
	f, _ := NewFabric(IBDDR4X, 29)
	prop := func(bytesRaw uint32, sameNode, sameGroup bool, shareRaw uint8) bool {
		share := int(shareRaw%32) + 1
		return f.P2P(int(bytesRaw%1e7), sameNode, sameGroup, share) > 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewFabricRejectsBadArgs(t *testing.T) {
	if _, err := NewFabric(GigE, 0); err == nil {
		t.Error("0 nodes accepted")
	}
	bad := &Model{}
	if _, err := NewFabric(bad, 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestP2PPanicsOnBadInput(t *testing.T) {
	f, _ := NewFabric(GigE, 2)
	for name, fn := range map[string]func(){
		"negative bytes": func() { f.P2P(-1, false, true, 1) },
		"zero share":     func() { f.P2P(10, false, true, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTreeDepth(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1000: 10, 1024: 10}
	for p, want := range cases {
		if got := TreeDepth(p); got != want {
			t.Errorf("TreeDepth(%d) = %d, want %d", p, got, want)
		}
	}
}

// The interconnect ordering that drives the paper's results: for a typical
// halo message under full NIC sharing, IB must beat 10GbE which must beat
// 1GbE.
func TestInterconnectOrdering(t *testing.T) {
	const nodes = 22
	const bytes = 24 << 10
	ge, _ := NewFabric(GigE, nodes)
	te, _ := NewFabric(TenGigE, nodes)
	ib, _ := NewFabric(IBDDR4X, nodes)
	tGigE := ge.P2P(bytes, false, true, 4)   // 4 ranks share a puma NIC
	tTenGE := te.P2P(bytes, false, true, 16) // 16 ranks share an EC2 NIC
	tIB := ib.P2P(bytes, false, true, 12)    // 12 ranks share a lagrange HCA
	if !(tIB < tTenGE && tTenGE < tGigE) {
		t.Fatalf("ordering violated: IB=%v 10GbE=%v 1GbE=%v", tIB, tTenGE, tGigE)
	}
}

func TestNewFabricScaled(t *testing.T) {
	base, err := NewFabric(TenGigE, 8)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := NewFabricScaled(TenGigE, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, bytes := range []int{0, 1000, 1 << 20} {
		for _, sameNode := range []bool{true, false} {
			b := base.P2P(bytes, sameNode, true, 4)
			s := scaled.P2P(bytes, sameNode, true, 4)
			if ratio := s / b; ratio < 24.999 || ratio > 25.001 {
				t.Fatalf("scale ratio %v at %d bytes sameNode=%v", ratio, bytes, sameNode)
			}
		}
	}
	if _, err := NewFabricScaled(TenGigE, 8, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := NewFabricScaled(TenGigE, 8, -1); err == nil {
		t.Fatal("negative scale accepted")
	}
}
