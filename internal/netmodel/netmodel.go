// Package netmodel models the interconnects of the paper's four target
// platforms: Gigabit Ethernet (puma, ellipse), 10-Gigabit Ethernet with
// placement groups (Amazon EC2 cc2.8xlarge), and InfiniBand 4X DDR
// (lagrange), plus the intra-node shared-memory path.
//
// The model is LogGP-flavoured: a point-to-point transfer of b bytes costs
//
//	t = α + b/β_eff
//
// where α is the per-message latency (software stack + wire) and β_eff is
// the effective bandwidth seen by one rank. β_eff accounts for two effects
// that dominate the paper's results:
//
//  1. NIC sharing — all job ranks on a node inject into one NIC. In the
//     bulk-synchronous solvers studied here every rank communicates at the
//     same time, so a node's NIC bandwidth is divided by the number of job
//     ranks placed on it. This is why the 4-core/1GbE puma and ellipse nodes
//     degrade fastest and why EC2's 16-core nodes ("notably fewer hosts")
//     partially compensate for a virtualised network.
//
//  2. Fabric oversubscription — campus Ethernet trees lose bisection
//     bandwidth as more nodes join the job, modelled as
//     β ← β / (1 + ovs·(nodes−1)/ovsNodes). InfiniBand fat-trees keep a
//     near-full bisection (small ovs).
//
// EC2 placement groups add a cross-group latency and bandwidth penalty that
// is deliberately small: Table II of the paper found no measurable benefit
// from a single placement group, and the model reproduces that.
package netmodel

import (
	"fmt"
	"math"
)

// Link describes one physical communication path.
type Link struct {
	// Latency is the per-message cost in seconds (α).
	Latency float64
	// Bandwidth is the path bandwidth in bytes per second (β).
	Bandwidth float64
}

// Time returns α + bytes/β for a single unshared transfer.
func (l Link) Time(bytes int) float64 {
	if bytes < 0 {
		panic("netmodel: negative message size")
	}
	return l.Latency + float64(bytes)/l.Bandwidth
}

// Model describes a platform interconnect.
type Model struct {
	// Name identifies the interconnect in reports, e.g. "1GbE".
	Name string
	// Inter is the node-to-node link (the NIC path).
	Inter Link
	// Intra is the shared-memory path between ranks of one node.
	Intra Link
	// Oversub is the oversubscription coefficient: at OversubNodes nodes the
	// per-rank bandwidth has dropped by a factor (1 + Oversub).
	Oversub float64
	// OversubNodes is the node count at which the Oversub penalty is fully
	// applied. Zero disables the oversubscription term.
	OversubNodes int
	// CrossGroupLatency is added to Inter.Latency for messages between EC2
	// placement groups (zero for physical clusters).
	CrossGroupLatency float64
	// CrossGroupBandwidth scales Inter.Bandwidth for messages between
	// placement groups (1 for physical clusters; slightly below 1 for EC2).
	CrossGroupBandwidth float64
}

// Validate reports a descriptive error if the model is not physically
// sensible.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("netmodel: model has no name")
	}
	if m.Inter.Latency < 0 || m.Intra.Latency < 0 {
		return fmt.Errorf("netmodel %s: negative latency", m.Name)
	}
	if m.Inter.Bandwidth <= 0 || m.Intra.Bandwidth <= 0 {
		return fmt.Errorf("netmodel %s: non-positive bandwidth", m.Name)
	}
	if m.Oversub < 0 {
		return fmt.Errorf("netmodel %s: negative oversubscription", m.Name)
	}
	if m.OversubNodes < 0 {
		return fmt.Errorf("netmodel %s: negative oversubscription scale", m.Name)
	}
	if m.CrossGroupLatency < 0 {
		return fmt.Errorf("netmodel %s: negative cross-group latency", m.Name)
	}
	if m.CrossGroupBandwidth < 0 || m.CrossGroupBandwidth > 1 {
		if m.CrossGroupBandwidth != 0 {
			return fmt.Errorf("netmodel %s: cross-group bandwidth factor %v out of (0,1]",
				m.Name, m.CrossGroupBandwidth)
		}
	}
	return nil
}

// Reference interconnects. Latencies and bandwidths are calibrated against
// the era of the paper (2012): TCP over campus GigE, Xen-virtualised 10GbE
// in EC2 cluster-compute placement groups, and RDMA InfiniBand 4X DDR
// (20 Gb/s signalling, ~16 Gb/s data).
var (
	// GigE models the 1-Gigabit Ethernet of puma and ellipse: high TCP
	// latency and a heavily oversubscribed campus switching tree.
	GigE = &Model{
		Name:                "1GbE",
		Inter:               Link{Latency: 55e-6, Bandwidth: 112e6},
		Intra:               Link{Latency: 1.2e-6, Bandwidth: 2.2e9},
		Oversub:             2.6,
		OversubNodes:        64,
		CrossGroupBandwidth: 1,
	}

	// TenGigE models EC2 cc2.8xlarge 10GbE inside a placement group. The
	// virtualisation stack inflates latency; bandwidth is good and the
	// cluster-compute fabric is only mildly oversubscribed.
	TenGigE = &Model{
		Name:                "10GbE",
		Inter:               Link{Latency: 95e-6, Bandwidth: 1.05e9},
		Intra:               Link{Latency: 1.0e-6, Bandwidth: 3.0e9},
		Oversub:             1.15,
		OversubNodes:        64,
		CrossGroupLatency:   8e-6,
		CrossGroupBandwidth: 0.97,
	}

	// IBDDR4X models lagrange's InfiniBand 4X DDR: RDMA latency in the
	// microseconds and a fat-tree with near-full bisection bandwidth.
	IBDDR4X = &Model{
		Name:                "IB 4X DDR",
		Inter:               Link{Latency: 4.5e-6, Bandwidth: 1.85e9},
		Intra:               Link{Latency: 0.9e-6, Bandwidth: 3.2e9},
		Oversub:             0.12,
		OversubNodes:        128,
		CrossGroupBandwidth: 1,
	}

	// Loopback is an idealised zero-cost-ish fabric for unit tests and for
	// running the solvers without a platform model.
	Loopback = &Model{
		Name:                "loopback",
		Inter:               Link{Latency: 1e-9, Bandwidth: 1e12},
		Intra:               Link{Latency: 1e-9, Bandwidth: 1e12},
		CrossGroupBandwidth: 1,
	}
)

// Fabric binds a Model to the topology of one job: how many nodes it spans
// and how job ranks share each node's NIC. A Fabric is immutable and safe
// for concurrent use.
type Fabric struct {
	model *Model
	nodes int
	// interBW is the oversubscription-adjusted NIC bandwidth.
	interBW float64
	// scale multiplies every transfer time. The platform catalog uses it to
	// express communication in the same workload-adjusted seconds as the
	// calibrated compute rates: the paper's P2/P2-P1 discretisation moves
	// several times the halo bytes and runs several times the Krylov
	// iterations of this reproduction's Q1 proxy per time step, so both
	// compute and communication are scaled by comparable factors (DESIGN.md
	// §5).
	scale float64
}

// NewFabric returns a fabric for a job spanning nodes nodes.
func NewFabric(m *Model, nodes int) (*Fabric, error) {
	return NewFabricScaled(m, nodes, 1)
}

// NewFabricScaled returns a fabric whose transfer times are multiplied by
// scale (the platform's workload-equivalence factor).
func NewFabricScaled(m *Model, nodes int, scale float64) (*Fabric, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if nodes < 1 {
		return nil, fmt.Errorf("netmodel: job spans %d nodes", nodes)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("netmodel: non-positive time scale %v", scale)
	}
	bw := m.Inter.Bandwidth
	if m.OversubNodes > 0 && nodes > 1 {
		bw /= 1 + m.Oversub*float64(nodes-1)/float64(m.OversubNodes)
	}
	return &Fabric{model: m, nodes: nodes, interBW: bw, scale: scale}, nil
}

// Model returns the underlying interconnect model.
func (f *Fabric) Model() *Model { return f.model }

// Nodes returns the number of nodes the fabric was sized for.
func (f *Fabric) Nodes() int { return f.nodes }

// InterBandwidth returns the oversubscription-adjusted per-NIC bandwidth in
// bytes per second (before NIC sharing).
func (f *Fabric) InterBandwidth() float64 { return f.interBW }

// P2P returns the virtual seconds for one rank to transfer bytes to a peer.
//
// sameNode selects the shared-memory path. sameGroup is false only for EC2
// transfers that cross placement groups. nicShare is the number of job ranks
// concurrently sharing the sender's NIC (>= 1); it divides the effective
// bandwidth on the inter-node path.
func (f *Fabric) P2P(bytes int, sameNode, sameGroup bool, nicShare int) float64 {
	if bytes < 0 {
		panic("netmodel: negative message size")
	}
	if nicShare < 1 {
		panic("netmodel: nicShare < 1")
	}
	if sameNode {
		return f.scale * f.model.Intra.Time(bytes)
	}
	lat := f.model.Inter.Latency
	bw := f.interBW / float64(nicShare)
	if !sameGroup {
		lat += f.model.CrossGroupLatency
		if cg := f.model.CrossGroupBandwidth; cg > 0 {
			bw *= cg
		}
	}
	return f.scale * (lat + float64(bytes)/bw)
}

// TreeDepth returns ceil(log2(p)), the stage count of binomial-tree
// collectives over p ranks; 0 for p <= 1.
func TreeDepth(p int) int {
	if p <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(p))))
}
