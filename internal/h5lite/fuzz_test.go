package h5lite

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// validContainerBytes serialises a small representative container: both
// dtypes, a multi-dimensional shape, attributes, and a group hierarchy.
func validContainerBytes(tb testing.TB) []byte {
	tb.Helper()
	f := New()
	if err := f.CreateF64("fields/u", []int{2, 3}, []float64{1, 2, 3, 4, 5, 6}); err != nil {
		tb.Fatal(err)
	}
	if err := f.CreateI64("mesh/ids", []int{4}, []int64{7, -1, 0, 9}); err != nil {
		tb.Fatal(err)
	}
	if err := f.SetAttr("fields/u", "time", "0.125"); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrom asserts the reader's contract on arbitrary input: it never
// panics and never over-allocates; every rejection is a typed error
// (ErrCorrupt for hostile bytes, an io error for truncation); and every
// accepted container round-trips through WriteTo/ReadFrom.
func FuzzReadFrom(f *testing.F) {
	valid := validContainerBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                 // truncated mid-record
	f.Add(valid[:3])                            // truncated magic
	f.Add(append([]byte("XXXX"), valid[4:]...)) // wrong magic
	f.Add([]byte{})
	// A header that claims 2^48 elements over an empty stream: must fail
	// with a typed error instead of allocating.
	huge := []byte("H5L1")
	huge = append(huge, 1, 0, 0, 0)             // count = 1
	huge = append(huge, 1, 0, 0, 0, 'u')        // name "u"
	huge = append(huge, 0)                      // dtypeF64
	huge = append(huge, 2, 0, 0, 0)             // ndims = 2
	huge = append(huge, 0, 0, 0, 1, 0, 0, 0, 0) // dim 2^24
	huge = append(huge, 0, 0, 0, 1, 0, 0, 0, 0) // dim 2^24
	huge = append(huge, 0, 0, 0, 0)             // nattrs = 0
	f.Add(huge)

	f.Fuzz(func(t *testing.T, b []byte) {
		file, err := ReadFrom(bytes.NewReader(b))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("untyped rejection of %d bytes: %v", len(b), err)
			}
			return
		}
		var buf bytes.Buffer
		if _, err := file.WriteTo(&buf); err != nil {
			t.Fatalf("accepted container does not serialise: %v", err)
		}
		re, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		names := file.List("")
		if got := re.List(""); len(got) != len(names) {
			t.Fatalf("round-trip has %d datasets, want %d", len(got), len(names))
		}
		for _, name := range names {
			a, _ := file.Get(name)
			b, ok := re.Get(name)
			if !ok || a.Len() != b.Len() || len(a.Attrs) != len(b.Attrs) {
				t.Fatalf("dataset %q did not round-trip", name)
			}
		}
	})
}

func TestReadFromHardening(t *testing.T) {
	valid := validContainerBytes(t)

	t.Run("truncations are io errors", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			_, err := ReadFrom(bytes.NewReader(valid[:cut]))
			if err == nil {
				t.Fatalf("truncation at %d of %d accepted", cut, len(valid))
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation at %d: untyped error %v", cut, err)
			}
		}
	})

	t.Run("overflowing shape is corrupt", func(t *testing.T) {
		f := New()
		if err := f.CreateF64("u", []int{1}, []float64{1}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		// Patch the single 1×uint64 dim (right after name and dtype+ndims)
		// to 2^63: the element-limit check must reject it as corrupt.
		dimOff := 4 + 4 + (4 + 1) + 1 + 4
		for i := 0; i < 8; i++ {
			b[dimOff+i] = 0
		}
		b[dimOff+7] = 0x80
		_, err := ReadFrom(bytes.NewReader(b))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("2^63-element shape: got %v, want ErrCorrupt", err)
		}
	})

	t.Run("bad magic is corrupt", func(t *testing.T) {
		b := append([]byte("NOPE"), valid[4:]...)
		if _, err := ReadFrom(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("unknown dtype is corrupt", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[4+4+4+len("fields/u")] = 9 // dtype byte of the first record
		if _, err := ReadFrom(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}
