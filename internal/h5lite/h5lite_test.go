package h5lite

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"heterohpc/internal/stats"
)

func TestRoundTrip(t *testing.T) {
	f := New()
	if err := f.CreateF64("fields/u", []int{2, 3}, []float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateI64("mesh/ids", []int{4}, []int64{10, -20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	if err := f.SetAttr("fields/u", "time", "1.25"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := g.Get("fields/u")
	if !ok {
		t.Fatal("fields/u missing after round trip")
	}
	if len(u.Dims) != 2 || u.Dims[0] != 2 || u.Dims[1] != 3 {
		t.Fatalf("dims %v", u.Dims)
	}
	if u.F64[5] != 6 {
		t.Fatalf("data %v", u.F64)
	}
	if u.Attrs["time"] != "1.25" {
		t.Fatalf("attrs %v", u.Attrs)
	}
	ids, _ := g.Get("mesh/ids")
	if ids.I64[1] != -20 {
		t.Fatalf("ids %v", ids.I64)
	}
}

func TestExactFloatRoundTrip(t *testing.T) {
	// Checkpoint/restart needs bit-exact floats, including specials.
	vals := []float64{0, math.Copysign(0, -1), 1e-308, math.MaxFloat64,
		math.Inf(1), math.Inf(-1), math.Pi}
	f := New()
	if err := f.CreateF64("x", []int{len(vals)}, vals); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := g.Get("x")
	for i, v := range vals {
		if math.Float64bits(got.F64[i]) != math.Float64bits(v) {
			t.Fatalf("element %d: %v != %v", i, got.F64[i], v)
		}
	}
	// NaN separately (NaN != NaN).
	f2 := New()
	if err := f2.CreateF64("nan", []int{1}, []float64{math.NaN()}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := f2.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := g2.Get("nan")
	if !math.IsNaN(d.F64[0]) {
		t.Fatal("NaN not preserved")
	}
}

func TestValidation(t *testing.T) {
	f := New()
	if err := f.CreateF64("", nil, nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := f.CreateF64("/abs", nil, nil); err == nil {
		t.Error("leading slash accepted")
	}
	if err := f.CreateF64("x", []int{2}, []float64{1}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if err := f.CreateF64("ok", []int{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateF64("ok", []int{1}, []float64{1}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := f.CreateI64("bad", []int{-1}, nil); err == nil {
		t.Error("negative dim accepted")
	}
	if err := f.SetAttr("ghost", "k", "v"); err == nil {
		t.Error("attr on missing dataset accepted")
	}
	// Failed creates must not leave residue.
	if _, ok := f.Get("x"); ok {
		t.Error("failed create left dataset behind")
	}
}

func TestList(t *testing.T) {
	f := New()
	for _, n := range []string{"a/x", "a/y", "b/z", "a"} {
		if err := f.CreateF64(n, []int{0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.List("a"); len(got) != 3 || got[0] != "a" || got[2] != "a/y" {
		t.Fatalf("List(a) = %v", got)
	}
	if got := f.List(""); len(got) != 4 {
		t.Fatalf("List() = %v", got)
	}
	if got := f.List("b"); len(got) != 1 || got[0] != "b/z" {
		t.Fatalf("List(b) = %v", got)
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("H5L1"), // truncated count
		append([]byte("H5L1"), 0xff, 0xff, 0xff, 0xff), // implausible count
	}
	for i, c := range cases {
		if _, err := ReadFrom(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.List("")) != 0 {
		t.Fatal("empty file has datasets")
	}
}

// Property: arbitrary dataset collections survive a round trip intact.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed uint64, nds uint8) bool {
		rng := stats.NewRNG(seed)
		f := New()
		want := map[string][]float64{}
		for i := 0; i < int(nds%8)+1; i++ {
			name := "g/d" + string(rune('a'+i))
			n := rng.Intn(50)
			data := make([]float64, n)
			for j := range data {
				data[j] = rng.Normal(0, 100)
			}
			if err := f.CreateF64(name, []int{n}, data); err != nil {
				return false
			}
			want[name] = data
		}
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			return false
		}
		g, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		for name, data := range want {
			d, ok := g.Get(name)
			if !ok || len(d.F64) != len(data) {
				return false
			}
			for j := range data {
				if d.F64[j] != data[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWrittenSizeReported(t *testing.T) {
	f := New()
	if err := f.CreateF64("x", []int{3}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	if !strings.HasPrefix(buf.String(), Magic) {
		t.Fatal("missing magic")
	}
}

type failWriter struct{ allow int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.allow <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	n := len(p)
	if n > f.allow {
		n = f.allow
	}
	f.allow -= n
	if n < len(p) {
		return n, fmt.Errorf("disk full")
	}
	return n, nil
}

// WriteTo must surface writer errors wherever they strike.
func TestWriteToPropagatesWriterErrors(t *testing.T) {
	f := New()
	if err := f.CreateF64("g/x", []int{4}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := f.SetAttr("g/x", "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateI64("g/y", []int{2}, []int64{5, 6}); err != nil {
		t.Fatal(err)
	}
	// Find the full size, then fail at every prefix length.
	var ok bytes.Buffer
	total, err := f.WriteTo(&ok)
	if err != nil {
		t.Fatal(err)
	}
	for allow := 0; allow < int(total); allow += 7 {
		if _, err := f.WriteTo(&failWriter{allow: allow}); err == nil {
			t.Fatalf("write with %d allowed bytes reported no error", allow)
		}
	}
}

// Truncated streams must be rejected at every cut point.
func TestReadFromRejectsTruncation(t *testing.T) {
	f := New()
	_ = f.CreateF64("a", []int{3}, []float64{1, 2, 3})
	_ = f.SetAttr("a", "k", "v")
	_ = f.CreateI64("b", []int{1}, []int64{9})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 5 {
		if _, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}
