// Package h5lite is a minimal hierarchical scientific data container — the
// role HDF5 1.8.7 plays in the paper's stack ("for the storage of large
// data on file", §IV-D). It stores named n-dimensional float64/int64
// datasets with string attributes under slash-separated group paths, in a
// self-describing little-endian binary format.
//
// The format is intentionally simple (a sequential record stream with a
// magic header and per-record checks), but preserves the properties the
// applications rely on: hierarchical names, shape metadata, attributes,
// and exact round-tripping of float64 data for checkpoint/restart.
package h5lite

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Magic identifies an h5lite stream (version 1).
const Magic = "H5L1"

// ErrCorrupt is wrapped by every ReadFrom error caused by semantically
// invalid input — bad magic, implausible counts or shapes, unknown dtypes,
// invalid or duplicate names. Truncated input surfaces as io.EOF /
// io.ErrUnexpectedEOF instead, so callers can distinguish "short file"
// from "hostile file". errors.Is(err, ErrCorrupt) tests for the latter.
var ErrCorrupt = errors.New("h5lite: corrupt container")

const (
	dtypeF64 = 0
	dtypeI64 = 1
)

// Dataset is one named n-dimensional array with attributes. Exactly one of
// F64/I64 is non-nil, with length equal to the product of Dims.
type Dataset struct {
	Name  string
	Dims  []int
	F64   []float64
	I64   []int64
	Attrs map[string]string
}

// Len returns the element count implied by Dims.
func (d *Dataset) Len() int {
	n := 1
	for _, dim := range d.Dims {
		n *= dim
	}
	return n
}

// File is an in-memory h5lite container.
type File struct {
	ds    map[string]*Dataset
	order []string
}

// New returns an empty container.
func New() *File {
	return &File{ds: map[string]*Dataset{}}
}

func validName(name string) error {
	if name == "" || strings.HasPrefix(name, "/") || strings.HasSuffix(name, "/") {
		return fmt.Errorf("h5lite: invalid dataset name %q", name)
	}
	return nil
}

func (f *File) create(name string, dims []int) (*Dataset, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if _, dup := f.ds[name]; dup {
		return nil, fmt.Errorf("h5lite: dataset %q exists", name)
	}
	n := 1
	for _, d := range dims {
		if d < 0 {
			return nil, fmt.Errorf("h5lite: negative dimension in %v", dims)
		}
		n *= d
	}
	d := &Dataset{Name: name, Dims: append([]int(nil), dims...), Attrs: map[string]string{}}
	f.ds[name] = d
	f.order = append(f.order, name)
	return d, nil
}

// CreateF64 adds a float64 dataset; len(data) must equal the product of
// dims. The data is copied.
func (f *File) CreateF64(name string, dims []int, data []float64) error {
	d, err := f.create(name, dims)
	if err != nil {
		return err
	}
	if len(data) != d.Len() {
		delete(f.ds, name)
		f.order = f.order[:len(f.order)-1]
		return fmt.Errorf("h5lite: %q has %d elements for shape %v", name, len(data), dims)
	}
	d.F64 = append([]float64(nil), data...)
	return nil
}

// CreateI64 adds an int64 dataset.
func (f *File) CreateI64(name string, dims []int, data []int64) error {
	d, err := f.create(name, dims)
	if err != nil {
		return err
	}
	if len(data) != d.Len() {
		delete(f.ds, name)
		f.order = f.order[:len(f.order)-1]
		return fmt.Errorf("h5lite: %q has %d elements for shape %v", name, len(data), dims)
	}
	d.I64 = append([]int64(nil), data...)
	return nil
}

// SetAttr attaches a string attribute to an existing dataset.
func (f *File) SetAttr(name, key, value string) error {
	d, ok := f.ds[name]
	if !ok {
		return fmt.Errorf("h5lite: no dataset %q", name)
	}
	d.Attrs[key] = value
	return nil
}

// Get returns a dataset by full path.
func (f *File) Get(name string) (*Dataset, bool) {
	d, ok := f.ds[name]
	return d, ok
}

// List returns the dataset paths under the given group prefix
// ("" for all), sorted. A prefix "a/b" matches "a/b/..." and "a/b" itself.
func (f *File) List(prefix string) []string {
	var out []string
	for name := range f.ds {
		if prefix == "" || name == prefix || strings.HasPrefix(name, prefix+"/") {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// WriteTo serialises the container. Datasets are written in creation order.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if _, err := cw.Write([]byte(Magic)); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(f.order))); err != nil {
		return cw.n, err
	}
	for _, name := range f.order {
		d := f.ds[name]
		if err := writeString(cw, name); err != nil {
			return cw.n, err
		}
		var dtype byte = dtypeF64
		if d.I64 != nil {
			dtype = dtypeI64
		}
		if err := binary.Write(cw, binary.LittleEndian, dtype); err != nil {
			return cw.n, err
		}
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(d.Dims))); err != nil {
			return cw.n, err
		}
		for _, dim := range d.Dims {
			if err := binary.Write(cw, binary.LittleEndian, uint64(dim)); err != nil {
				return cw.n, err
			}
		}
		// Attributes, sorted for deterministic output.
		keys := make([]string, 0, len(d.Attrs))
		for k := range d.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(keys))); err != nil {
			return cw.n, err
		}
		for _, k := range keys {
			if err := writeString(cw, k); err != nil {
				return cw.n, err
			}
			if err := writeString(cw, d.Attrs[k]); err != nil {
				return cw.n, err
			}
		}
		switch dtype {
		case dtypeF64:
			for _, v := range d.F64 {
				if err := binary.Write(cw, binary.LittleEndian, math.Float64bits(v)); err != nil {
					return cw.n, err
				}
			}
		case dtypeI64:
			for _, v := range d.I64 {
				if err := binary.Write(cw, binary.LittleEndian, uint64(v)); err != nil {
					return cw.n, err
				}
			}
		}
	}
	return cw.n, nil
}

// ReadFrom parses a serialised container.
func ReadFrom(r io.Reader) (*File, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("h5lite: reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("h5lite: reading count: %w", err)
	}
	const maxDatasets = 1 << 20
	if count > maxDatasets {
		return nil, fmt.Errorf("%w: implausible dataset count %d", ErrCorrupt, count)
	}
	f := New()
	for i := uint32(0); i < count; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("h5lite: dataset %d name: %w", i, err)
		}
		var dtype byte
		if err := binary.Read(r, binary.LittleEndian, &dtype); err != nil {
			return nil, err
		}
		var ndims uint32
		if err := binary.Read(r, binary.LittleEndian, &ndims); err != nil {
			return nil, err
		}
		if ndims > 16 {
			return nil, fmt.Errorf("%w: %q has %d dimensions", ErrCorrupt, name, ndims)
		}
		// The element count is accumulated in uint64 against an explicit
		// ceiling, so hostile dims can neither overflow int nor describe an
		// allocation the host could not satisfy.
		const maxElems = 1 << 40
		dims := make([]int, ndims)
		elems := uint64(1)
		for j := range dims {
			var d uint64
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return nil, err
			}
			if d > maxElems {
				return nil, fmt.Errorf("%w: %q dimension %d is %d", ErrCorrupt, name, j, d)
			}
			dims[j] = int(d)
			if d != 0 {
				if elems > maxElems/d {
					return nil, fmt.Errorf("%w: %q shape %v overflows the element limit", ErrCorrupt, name, dims[:j+1])
				}
				elems *= d
			} else {
				elems = 0
			}
		}
		n := int(elems)
		var nattrs uint32
		if err := binary.Read(r, binary.LittleEndian, &nattrs); err != nil {
			return nil, err
		}
		if nattrs > 1<<16 {
			return nil, fmt.Errorf("%w: %q has %d attributes", ErrCorrupt, name, nattrs)
		}
		// Attributes stay in wire order in a pair slice: replaying them
		// into SetAttr through a map would apply them (and surface any
		// error) in random iteration order (heterolint:maporder).
		type kv struct{ k, v string }
		attrs := make([]kv, 0, min(int(nattrs), 64))
		for j := uint32(0); j < nattrs; j++ {
			k, err := readString(r)
			if err != nil {
				return nil, err
			}
			v, err := readString(r)
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, kv{k, v})
		}
		// The data buffer grows with the bytes actually read (bounded
		// initial capacity), so a header claiming a huge shape over a tiny
		// stream fails with an io error instead of allocating n elements
		// up front.
		const chunkElems = 1 << 16
		initCap := n
		if initCap > chunkElems {
			initCap = chunkElems
		}
		switch dtype {
		case dtypeF64:
			data := make([]float64, 0, initCap)
			for j := 0; j < n; j++ {
				var bits uint64
				if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
					return nil, fmt.Errorf("h5lite: %q data: %w", name, err)
				}
				data = append(data, math.Float64frombits(bits))
			}
			if err := f.CreateF64(name, dims, data); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		case dtypeI64:
			data := make([]int64, 0, initCap)
			for j := 0; j < n; j++ {
				var bits uint64
				if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
					return nil, fmt.Errorf("h5lite: %q data: %w", name, err)
				}
				data = append(data, int64(bits))
			}
			if err := f.CreateI64(name, dims, data); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		default:
			return nil, fmt.Errorf("%w: %q has unknown dtype %d", ErrCorrupt, name, dtype)
		}
		for _, a := range attrs {
			if err := f.SetAttr(name, a.k, a.v); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("%w: implausible string length %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
