package checkpoint

import (
	"fmt"
	"sync"
	"testing"

	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/vclock"
)

func buddyTopo(t *testing.T, nranks, perNode int) mp.Topology {
	t.Helper()
	topo, err := mp.BlockTopology(nranks, perNode)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBuddyOfIsOffNodeAndCovering(t *testing.T) {
	cases := []struct{ nranks, perNode int }{
		{8, 2},  // 4 equal nodes
		{8, 4},  // 2 equal nodes
		{27, 4}, // unequal last node (3 ranks)
		{5, 2},  // unequal last node (1 rank)
	}
	for _, c := range cases {
		topo := buddyTopo(t, c.nranks, c.perNode)
		covered := make([]bool, c.nranks)
		for r := 0; r < c.nranks; r++ {
			b := BuddyOf(topo, r)
			if b < 0 || b >= c.nranks {
				t.Fatalf("%d/%d: BuddyOf(%d) = %d out of range", c.nranks, c.perNode, r, b)
			}
			if topo.SameNode(r, b) {
				t.Fatalf("%d/%d: buddy of rank %d is on-node", c.nranks, c.perNode, r)
			}
			covered[r] = true
			found := false
			for _, o := range Protects(topo, b) {
				if o == r {
					found = true
				}
			}
			if !found {
				t.Fatalf("%d/%d: Protects(%d) misses origin %d", c.nranks, c.perNode, b, r)
			}
		}
		for r, ok := range covered {
			if !ok {
				t.Fatalf("rank %d has no buddy", r)
			}
		}
	}
}

func TestBuddyOfSingleNode(t *testing.T) {
	topo := buddyTopo(t, 4, 4)
	if b := BuddyOf(topo, 2); b != -1 {
		t.Fatalf("single-node buddy = %d, want -1", b)
	}
	if p := Protects(topo, 2); p != nil {
		t.Fatalf("single-node Protects = %v, want none", p)
	}
}

func TestMirrorDeliversBlobsAndChargesTime(t *testing.T) {
	topo := buddyTopo(t, 6, 2)
	fab, err := netmodel.NewFabric(netmodel.TenGigE, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9, BytesPerSec: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[int][]Mirrored{}
	if err := w.Run(func(r *mp.Rank) error {
		blob := []byte(fmt.Sprintf("snapshot-of-%d", r.ID()))
		rcv := Mirror(r, 9000, blob)
		if r.Wtime() <= 0 {
			return fmt.Errorf("rank %d: mirroring charged no virtual time", r.ID())
		}
		mu.Lock()
		got[r.ID()] = rcv
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for origin := 0; origin < 6; origin++ {
		holder := BuddyOf(topo, origin)
		want := fmt.Sprintf("snapshot-of-%d", origin)
		found := false
		for _, m := range got[holder] {
			if m.Origin == origin && string(m.Blob) == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("holder %d did not receive origin %d's blob", holder, origin)
		}
	}
}
