// Diskless buddy checkpointing: instead of (or in addition to) writing
// containers to stable storage, every rank mirrors its serialised snapshot
// to a partner rank on a different node, as real mp traffic. A node loss
// then takes out each dead rank's local copy but not the mirror, so a
// shrink-and-continue recovery can rebuild the full field from memory
// without any restart. The mirroring cost rides the network model, so the
// protection overhead is visible in virtual time and dollars.
package checkpoint

import "heterohpc/internal/mp"

// BuddyOf returns the rank holding rank's diskless checkpoint mirror: the
// rank occupying the same within-node slot on the next node (wrapping), so
// a buddy is always off-node and a single node loss never takes both
// copies. When nodes hold unequal rank counts the slot wraps within the
// buddy node, so a holder may protect several origins. Returns -1 on
// single-node topologies, where no off-node partner exists.
func BuddyOf(topo mp.Topology, rank int) int {
	nnodes := topo.NNodes()
	if nnodes < 2 {
		return -1
	}
	node := topo.NodeOf[rank]
	slot := 0
	for r := 0; r < rank; r++ {
		if topo.NodeOf[r] == node {
			slot++
		}
	}
	buddyNode := (node + 1) % nnodes
	var onBuddy []int
	for r := 0; r < topo.NRanks(); r++ {
		if topo.NodeOf[r] == buddyNode {
			onBuddy = append(onBuddy, r)
		}
	}
	return onBuddy[slot%len(onBuddy)]
}

// Protects returns, in ascending order, the origin ranks whose buddy
// copies the holder rank stores under the BuddyOf mapping.
func Protects(topo mp.Topology, holder int) []int {
	var out []int
	for r := 0; r < topo.NRanks(); r++ {
		if BuddyOf(topo, r) == holder {
			out = append(out, r)
		}
	}
	return out
}

// Mirrored is one buddy copy received during a Mirror exchange.
type Mirrored struct {
	// Origin is the rank whose snapshot this is.
	Origin int
	// Blob is the serialised container exactly as the origin wrote it.
	Blob []byte
}

// Mirror runs one round of the diskless exchange: the calling rank sends
// blob to its buddy and receives the snapshot of every origin it protects,
// in ascending origin order. All ranks of the world must call Mirror with
// the same tag each round; sends are buffered, so the exchange cannot
// deadlock. On single-node topologies it is a no-op returning nil.
func Mirror(r *mp.Rank, tag int, blob []byte) []Mirrored {
	topo := r.Topology()
	if b := BuddyOf(topo, r.ID()); b >= 0 {
		r.SendBytes(b, tag, blob)
	}
	var out []Mirrored
	for _, origin := range Protects(topo, r.ID()) {
		out = append(out, Mirrored{Origin: origin, Blob: r.RecvBytes(origin, tag)})
	}
	return out
}
