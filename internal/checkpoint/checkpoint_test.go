package checkpoint

import (
	"bytes"
	"fmt"
	"testing"

	"heterohpc/internal/h5lite"
	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/nse"
	"heterohpc/internal/rd"
	"heterohpc/internal/vclock"
)

func runRanks(t *testing.T, nranks int, body func(r *mp.Rank) error) {
	t.Helper()
	topo, err := mp.BlockTopology(nranks, 4)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := netmodel.NewFabric(netmodel.Loopback, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	st := rd.State{
		StepsDone: 3,
		Time:      1.15,
		U1:        []float64{1.5, -2.5, 3.25},
		U2:        []float64{0.5, 0.25, -0.125},
	}
	var buf bytes.Buffer
	if err := WriteRD(&buf, st, 2, 8, []int{10, 11, 12}); err != nil {
		t.Fatal(err)
	}
	got, rank, nranks, ids, err := ReadRD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 2 || nranks != 8 {
		t.Fatalf("rank/nranks = %d/%d", rank, nranks)
	}
	if got.StepsDone != 3 || got.Time != 1.15 {
		t.Fatalf("metadata %+v", got)
	}
	for i := range st.U1 {
		if got.U1[i] != st.U1[i] || got.U2[i] != st.U2[i] {
			t.Fatalf("vectors differ at %d", i)
		}
	}
	if len(ids) != 3 || ids[2] != 12 {
		t.Fatalf("ids %v", ids)
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	bad := rd.State{U1: []float64{1}, U2: []float64{1, 2}}
	if err := WriteRD(&buf, bad, 0, 1, []int{0}); err == nil {
		t.Error("inconsistent vectors accepted")
	}
	ok := rd.State{U1: []float64{1}, U2: []float64{2}}
	if err := WriteRD(&buf, ok, 0, 1, []int{0, 1}); err == nil {
		t.Error("mismatched ids accepted")
	}
}

func TestReadRejectsNonCheckpoint(t *testing.T) {
	if _, _, _, _, err := ReadRD(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage accepted")
	}
}

// The headline guarantee: interrupting a run at a checkpoint and resuming
// reproduces the uninterrupted run bit-for-bit (the solver is deterministic
// and the checkpoint stores exact floats).
func TestResumeMatchesStraightRun(t *testing.T) {
	m := mesh.NewUnitCube(6)
	const nranks = 8
	const totalSteps = 4
	const stopAfter = 2

	straight := make([][]float64, nranks)
	runRanks(t, nranks, func(r *mp.Rank) error {
		res, err := rd.Run(r, rd.Config{Mesh: m, Grid: [3]int{2, 2, 2}, Steps: totalSteps})
		if err != nil {
			return err
		}
		straight[r.ID()] = res.Solution
		return nil
	})

	// Owned ids per rank, for the checkpoint containers.
	ownedIDs := make([][]int, nranks)
	for rank := 0; rank < nranks; rank++ {
		l, err := mesh.NewLocalFromBlock(m, 2, 2, 2, rank)
		if err != nil {
			t.Fatal(err)
		}
		ownedIDs[rank] = l.VertGlobal[:l.NumOwned]
	}

	// Phase 1: run to the checkpoint, serialising each rank's state.
	blobs := make([]bytes.Buffer, nranks)
	runRanks(t, nranks, func(r *mp.Rank) error {
		_, err := rd.Run(r, rd.Config{
			Mesh: m, Grid: [3]int{2, 2, 2}, Steps: stopAfter,
			Checkpoint: func(st rd.State) error {
				blobs[r.ID()].Reset() // keep only the latest checkpoint
				return WriteRD(&blobs[r.ID()], st, r.ID(), r.Size(), ownedIDs[r.ID()])
			},
		})
		return err
	})

	// Phase 2: restore and finish; compare with the straight run.
	resumed := make([][]float64, nranks)
	runRanks(t, nranks, func(r *mp.Rank) error {
		st, rank, nr, _, err := ReadRD(bytes.NewReader(blobs[r.ID()].Bytes()))
		if err != nil {
			return err
		}
		if rank != r.ID() || nr != nranks {
			return fmt.Errorf("checkpoint belongs to rank %d/%d", rank, nr)
		}
		res, err := rd.Run(r, rd.Config{
			Mesh: m, Grid: [3]int{2, 2, 2}, Steps: totalSteps, Resume: &st,
		})
		if err != nil {
			return err
		}
		if len(res.StepTimes) != totalSteps-stopAfter {
			return fmt.Errorf("resumed run executed %d steps, want %d",
				len(res.StepTimes), totalSteps-stopAfter)
		}
		resumed[r.ID()] = res.Solution
		return nil
	})

	for rank := range straight {
		if len(straight[rank]) != len(resumed[rank]) {
			t.Fatalf("rank %d solution lengths differ", rank)
		}
		for i := range straight[rank] {
			if straight[rank][i] != resumed[rank][i] {
				t.Fatalf("rank %d dof %d: straight %v vs resumed %v",
					rank, i, straight[rank][i], resumed[rank][i])
			}
		}
	}
}

func TestResumeValidation(t *testing.T) {
	m := mesh.NewUnitCube(4)
	runRanks(t, 1, func(r *mp.Rank) error {
		bad := &rd.State{StepsDone: 1, U1: []float64{1}, U2: []float64{1}}
		if _, err := rd.Run(r, rd.Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 2, Resume: bad}); err == nil {
			return fmt.Errorf("short resume state accepted")
		}
		n := m.NumVerts()
		tooFar := &rd.State{StepsDone: 5, U1: make([]float64, n), U2: make([]float64, n)}
		if _, err := rd.Run(r, rd.Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 2, Resume: tooFar}); err == nil {
			return fmt.Errorf("out-of-range resume step accepted")
		}
		return nil
	})
}

func TestReadRejectsCorruptedContainers(t *testing.T) {
	good := rd.State{StepsDone: 1, Time: 1.05, U1: []float64{1, 2}, U2: []float64{3, 4}}
	var buf bytes.Buffer
	if err := WriteRD(&buf, good, 0, 1, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	// A container missing rd/u1 is rejected.
	f := h5lite.New()
	if err := f.CreateF64("other", []int{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if _, err := f.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadRD(&b2); err == nil {
		t.Error("container without rd/u1 accepted")
	}
	// A wrong format version is rejected.
	f2 := h5lite.New()
	_ = f2.CreateF64("rd/u1", []int{1}, []float64{1})
	_ = f2.CreateF64("rd/u2", []int{1}, []float64{1})
	_ = f2.CreateI64("rd/owned", []int{1}, []int64{0})
	_ = f2.SetAttr("rd/u1", "version", "999")
	var b3 bytes.Buffer
	if _, err := f2.WriteTo(&b3); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadRD(&b3); err == nil {
		t.Error("wrong version accepted")
	}
	// Missing metadata attributes are rejected.
	f3 := h5lite.New()
	_ = f3.CreateF64("rd/u1", []int{1}, []float64{1})
	_ = f3.CreateF64("rd/u2", []int{1}, []float64{1})
	_ = f3.CreateI64("rd/owned", []int{1}, []int64{0})
	_ = f3.SetAttr("rd/u1", "version", FormatVersion)
	var b4 bytes.Buffer
	if _, err := f3.WriteTo(&b4); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadRD(&b4); err == nil {
		t.Error("missing steps attribute accepted")
	}
	// Mismatched u2 length is rejected.
	f4 := h5lite.New()
	_ = f4.CreateF64("rd/u1", []int{2}, []float64{1, 2})
	_ = f4.CreateF64("rd/u2", []int{1}, []float64{1})
	_ = f4.CreateI64("rd/owned", []int{2}, []int64{0, 1})
	_ = f4.SetAttr("rd/u1", "version", FormatVersion)
	var b5 bytes.Buffer
	if _, err := f4.WriteTo(&b5); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadRD(&b5); err == nil {
		t.Error("mismatched u2 accepted")
	}
}

func TestWriteReadNSERoundTrip(t *testing.T) {
	st := nse.State{
		StepsDone: 2,
		Time:      0.008,
		U1:        [3][]float64{{1.5, -2.5}, {0.5, 0.25}, {3, 4}},
		U2:        [3][]float64{{-1, 1}, {2, -2}, {0.125, 8}},
		P:         []float64{9.5, -0.75},
	}
	var buf bytes.Buffer
	if err := WriteNSE(&buf, st, 3, 8, []int{20, 21}); err != nil {
		t.Fatal(err)
	}
	got, rank, nranks, ids, err := ReadNSE(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 3 || nranks != 8 {
		t.Fatalf("rank/nranks = %d/%d", rank, nranks)
	}
	if got.StepsDone != 2 || got.Time != 0.008 {
		t.Fatalf("metadata %+v", got)
	}
	for d := 0; d < 3; d++ {
		for i := range st.U1[d] {
			if got.U1[d][i] != st.U1[d][i] || got.U2[d][i] != st.U2[d][i] {
				t.Fatalf("velocity component %d differs at %d", d, i)
			}
		}
	}
	for i := range st.P {
		if got.P[i] != st.P[i] {
			t.Fatalf("pressure differs at %d", i)
		}
	}
	if len(ids) != 2 || ids[1] != 21 {
		t.Fatalf("ids %v", ids)
	}
}

func TestNSEWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	bad := nse.State{U1: [3][]float64{{1}, {1}, {1, 2}}, U2: [3][]float64{{1}, {1}, {1}}, P: []float64{1}}
	if err := WriteNSE(&buf, bad, 0, 1, []int{0}); err == nil {
		t.Error("inconsistent vectors accepted")
	}
	ok := nse.State{U1: [3][]float64{{1}, {1}, {1}}, U2: [3][]float64{{1}, {1}, {1}}, P: []float64{1}}
	if err := WriteNSE(&buf, ok, 0, 1, []int{0, 1}); err == nil {
		t.Error("mismatched ids accepted")
	}
}

// The app tag keeps the two solvers' containers apart without a version bump.
func TestAppTagSeparatesSolvers(t *testing.T) {
	rdSt := rd.State{StepsDone: 1, Time: 1.05, U1: []float64{1}, U2: []float64{2}}
	var rdBuf bytes.Buffer
	if err := WriteRD(&rdBuf, rdSt, 0, 1, []int{0}); err != nil {
		t.Fatal(err)
	}
	nsSt := nse.State{StepsDone: 1, Time: 0.006,
		U1: [3][]float64{{1}, {2}, {3}}, U2: [3][]float64{{4}, {5}, {6}}, P: []float64{7}}
	var nsBuf bytes.Buffer
	if err := WriteNSE(&nsBuf, nsSt, 0, 1, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadNSE(bytes.NewReader(rdBuf.Bytes())); err == nil {
		t.Error("ReadNSE accepted an RD container")
	}
	if _, _, _, _, err := ReadRD(bytes.NewReader(nsBuf.Bytes())); err == nil {
		t.Error("ReadRD accepted an NS container")
	}
	// A forged RD container carrying a foreign app tag is rejected even
	// though the datasets are in place.
	f := h5lite.New()
	_ = f.CreateF64("rd/u1", []int{1}, []float64{1})
	_ = f.CreateF64("rd/u2", []int{1}, []float64{1})
	_ = f.CreateI64("rd/owned", []int{1}, []int64{0})
	_ = f.SetAttr("rd/u1", "version", FormatVersion)
	_ = f.SetAttr("rd/u1", "app", AppNS)
	var b bytes.Buffer
	if _, err := f.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadRD(&b); err == nil {
		t.Error("RD container with NS app tag accepted")
	}
	// A tag-less RD container (pre-tag writer) still restores.
	f2 := h5lite.New()
	_ = f2.CreateF64("rd/u1", []int{1}, []float64{1})
	_ = f2.CreateF64("rd/u2", []int{1}, []float64{1})
	_ = f2.CreateI64("rd/owned", []int{1}, []int64{0})
	_ = f2.SetAttr("rd/u1", "version", FormatVersion)
	_ = f2.SetAttr("rd/u1", "steps", "1")
	_ = f2.SetAttr("rd/u1", "time", "0x1p+00")
	_ = f2.SetAttr("rd/u1", "rank", "0")
	_ = f2.SetAttr("rd/u1", "nranks", "1")
	var b2 bytes.Buffer
	if _, err := f2.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadRD(&b2); err != nil {
		t.Errorf("tag-less RD container rejected: %v", err)
	}
}

// Interrupting a Navier–Stokes run at a checkpoint and resuming reproduces
// the uninterrupted run bit-for-bit, mirroring the RD guarantee.
func TestNSEResumeMatchesStraightRun(t *testing.T) {
	m, err := mesh.NewBox(mesh.SymmetricBox, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	const nranks = 8
	const totalSteps = 4
	const stopAfter = 2
	cfg := nse.Config{Mesh: m, Grid: [3]int{2, 2, 2}, Steps: totalSteps, Dt: 0.002}

	straightU := make([][3][]float64, nranks)
	straightP := make([][]float64, nranks)
	runRanks(t, nranks, func(r *mp.Rank) error {
		res, err := nse.Run(r, cfg)
		if err != nil {
			return err
		}
		straightU[r.ID()] = res.Velocity
		straightP[r.ID()] = res.Pressure
		return nil
	})

	ownedIDs := make([][]int, nranks)
	for rank := 0; rank < nranks; rank++ {
		l, err := mesh.NewLocalFromBlock(m, 2, 2, 2, rank)
		if err != nil {
			t.Fatal(err)
		}
		ownedIDs[rank] = l.VertGlobal[:l.NumOwned]
	}

	blobs := make([]bytes.Buffer, nranks)
	runRanks(t, nranks, func(r *mp.Rank) error {
		short := cfg
		short.Steps = stopAfter
		short.Checkpoint = func(st nse.State) error {
			blobs[r.ID()].Reset() // keep only the latest checkpoint
			return WriteNSE(&blobs[r.ID()], st, r.ID(), r.Size(), ownedIDs[r.ID()])
		}
		_, err := nse.Run(r, short)
		return err
	})

	runRanks(t, nranks, func(r *mp.Rank) error {
		st, rank, nr, _, err := ReadNSE(bytes.NewReader(blobs[r.ID()].Bytes()))
		if err != nil {
			return err
		}
		if rank != r.ID() || nr != nranks {
			return fmt.Errorf("checkpoint belongs to rank %d/%d", rank, nr)
		}
		resumedCfg := cfg
		resumedCfg.Resume = &st
		res, err := nse.Run(r, resumedCfg)
		if err != nil {
			return err
		}
		if len(res.StepTimes) != totalSteps-stopAfter {
			return fmt.Errorf("resumed run executed %d steps, want %d",
				len(res.StepTimes), totalSteps-stopAfter)
		}
		for d := 0; d < 3; d++ {
			for i := range res.Velocity[d] {
				if res.Velocity[d][i] != straightU[r.ID()][d][i] {
					return fmt.Errorf("rank %d velocity %d dof %d differs", r.ID(), d, i)
				}
			}
		}
		for i := range res.Pressure {
			if res.Pressure[i] != straightP[r.ID()][i] {
				return fmt.Errorf("rank %d pressure dof %d differs", r.ID(), i)
			}
		}
		return nil
	})
}
