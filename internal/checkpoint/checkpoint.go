// Package checkpoint persists and restores solver state through h5lite
// containers — the "automatic checkpointing" service the paper lists among
// the further conditioning an EC2 cluster image would need (§VI-D). Each
// rank writes its own container holding the BDF2 history vectors, its owned
// vertex ids, and enough metadata to reject mismatched restarts.
package checkpoint

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"heterohpc/internal/h5lite"
	"heterohpc/internal/nse"
	"heterohpc/internal/rd"
)

// FormatVersion guards against restoring state written by an incompatible
// layout.
const FormatVersion = "1"

// setMetaAttrs applies checkpoint metadata in sorted key order, so a
// failing SetAttr always surfaces the same error first regardless of map
// iteration (heterolint:maporder).
func setMetaAttrs(f *h5lite.File, path string, meta map[string]string) error {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := f.SetAttr(path, k, meta[k]); err != nil {
			return err
		}
	}
	return nil
}

// App tags identify which solver wrote a container, so a restart cannot
// feed Navier–Stokes state to the RD solver or vice versa. The tag is an
// attribute, not a version bump: containers written before the tag existed
// still restore.
const (
	AppRD = "rd"
	AppNS = "ns"
)

// WriteRD serialises one rank's RD solver state. ownedIDs are the rank's
// owned global vertex ids (for integrity checking on restore).
func WriteRD(w io.Writer, st rd.State, rank, nranks int, ownedIDs []int) error {
	if len(st.U1) != len(st.U2) {
		return fmt.Errorf("checkpoint: inconsistent state vectors %d/%d", len(st.U1), len(st.U2))
	}
	if len(ownedIDs) != len(st.U1) {
		return fmt.Errorf("checkpoint: %d owned ids for %d dofs", len(ownedIDs), len(st.U1))
	}
	f := h5lite.New()
	n := len(st.U1)
	if err := f.CreateF64("rd/u1", []int{n}, st.U1); err != nil {
		return err
	}
	if err := f.CreateF64("rd/u2", []int{n}, st.U2); err != nil {
		return err
	}
	ids := make([]int64, n)
	for i, g := range ownedIDs {
		ids[i] = int64(g)
	}
	if err := f.CreateI64("rd/owned", []int{n}, ids); err != nil {
		return err
	}
	meta := map[string]string{
		"version": FormatVersion,
		"app":     AppRD,
		"steps":   strconv.Itoa(st.StepsDone),
		"time":    strconv.FormatFloat(st.Time, 'x', -1, 64), // hex: exact
		"rank":    strconv.Itoa(rank),
		"nranks":  strconv.Itoa(nranks),
	}
	if err := setMetaAttrs(f, "rd/u1", meta); err != nil {
		return err
	}
	_, err := f.WriteTo(w)
	return err
}

// ReadRD restores one rank's RD solver state, returning the state, the rank
// and world size it was written from, and the owned vertex ids.
func ReadRD(r io.Reader) (st rd.State, rank, nranks int, ownedIDs []int, err error) {
	f, err := h5lite.ReadFrom(r)
	if err != nil {
		return st, 0, 0, nil, err
	}
	u1, ok := f.Get("rd/u1")
	if !ok {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: not an RD checkpoint (rd/u1 missing)")
	}
	if v := u1.Attrs["version"]; v != FormatVersion {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: format version %q, want %q", v, FormatVersion)
	}
	// Tag-less containers predate the app attribute and are RD by
	// construction; only a present-but-foreign tag is rejected.
	if app, ok := u1.Attrs["app"]; ok && app != AppRD {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: app tag %q, want %q", app, AppRD)
	}
	u2, ok := f.Get("rd/u2")
	if !ok || len(u2.F64) != len(u1.F64) {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: rd/u2 missing or mismatched")
	}
	idsDS, ok := f.Get("rd/owned")
	if !ok || len(idsDS.I64) != len(u1.F64) {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: rd/owned missing or mismatched")
	}
	st.StepsDone, err = strconv.Atoi(u1.Attrs["steps"])
	if err != nil {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: bad steps attribute: %w", err)
	}
	st.Time, err = strconv.ParseFloat(u1.Attrs["time"], 64)
	if err != nil {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: bad time attribute: %w", err)
	}
	rank, err = strconv.Atoi(u1.Attrs["rank"])
	if err != nil {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: bad rank attribute: %w", err)
	}
	nranks, err = strconv.Atoi(u1.Attrs["nranks"])
	if err != nil {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: bad nranks attribute: %w", err)
	}
	st.U1 = u1.F64
	st.U2 = u2.F64
	ownedIDs = make([]int, len(idsDS.I64))
	for i, g := range idsDS.I64 {
		ownedIDs[i] = int(g)
	}
	return st, rank, nranks, ownedIDs, nil
}

// WriteNSE serialises one rank's Navier–Stokes solver state: the two BDF2
// velocity history levels per component, the pressure, and the owned vertex
// ids. The container layout mirrors WriteRD under the "ns" prefix and keeps
// FormatVersion; the app tag tells the two apart.
func WriteNSE(w io.Writer, st nse.State, rank, nranks int, ownedIDs []int) error {
	n := len(st.P)
	for d := 0; d < 3; d++ {
		if len(st.U1[d]) != n || len(st.U2[d]) != n {
			return fmt.Errorf("checkpoint: inconsistent state vectors in component %d: %d/%d dofs, pressure %d",
				d, len(st.U1[d]), len(st.U2[d]), n)
		}
	}
	if len(ownedIDs) != n {
		return fmt.Errorf("checkpoint: %d owned ids for %d dofs", len(ownedIDs), n)
	}
	f := h5lite.New()
	for d := 0; d < 3; d++ {
		if err := f.CreateF64(fmt.Sprintf("ns/u1_%d", d), []int{n}, st.U1[d]); err != nil {
			return err
		}
		if err := f.CreateF64(fmt.Sprintf("ns/u2_%d", d), []int{n}, st.U2[d]); err != nil {
			return err
		}
	}
	if err := f.CreateF64("ns/p", []int{n}, st.P); err != nil {
		return err
	}
	ids := make([]int64, n)
	for i, g := range ownedIDs {
		ids[i] = int64(g)
	}
	if err := f.CreateI64("ns/owned", []int{n}, ids); err != nil {
		return err
	}
	meta := map[string]string{
		"version": FormatVersion,
		"app":     AppNS,
		"steps":   strconv.Itoa(st.StepsDone),
		"time":    strconv.FormatFloat(st.Time, 'x', -1, 64), // hex: exact
		"rank":    strconv.Itoa(rank),
		"nranks":  strconv.Itoa(nranks),
	}
	if err := setMetaAttrs(f, "ns/u1_0", meta); err != nil {
		return err
	}
	_, err := f.WriteTo(w)
	return err
}

// ReadNSE restores one rank's Navier–Stokes solver state, returning the
// state, the rank and world size it was written from, and the owned vertex
// ids.
func ReadNSE(r io.Reader) (st nse.State, rank, nranks int, ownedIDs []int, err error) {
	f, err := h5lite.ReadFrom(r)
	if err != nil {
		return st, 0, 0, nil, err
	}
	u10, ok := f.Get("ns/u1_0")
	if !ok {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: not an NS checkpoint (ns/u1_0 missing)")
	}
	if v := u10.Attrs["version"]; v != FormatVersion {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: format version %q, want %q", v, FormatVersion)
	}
	if app := u10.Attrs["app"]; app != AppNS {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: app tag %q, want %q", app, AppNS)
	}
	n := len(u10.F64)
	for d := 0; d < 3; d++ {
		u1, ok1 := f.Get(fmt.Sprintf("ns/u1_%d", d))
		u2, ok2 := f.Get(fmt.Sprintf("ns/u2_%d", d))
		if !ok1 || !ok2 || len(u1.F64) != n || len(u2.F64) != n {
			return st, 0, 0, nil, fmt.Errorf("checkpoint: velocity component %d missing or mismatched", d)
		}
		st.U1[d] = u1.F64
		st.U2[d] = u2.F64
	}
	pDS, ok := f.Get("ns/p")
	if !ok || len(pDS.F64) != n {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: ns/p missing or mismatched")
	}
	idsDS, ok := f.Get("ns/owned")
	if !ok || len(idsDS.I64) != n {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: ns/owned missing or mismatched")
	}
	st.StepsDone, err = strconv.Atoi(u10.Attrs["steps"])
	if err != nil {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: bad steps attribute: %w", err)
	}
	st.Time, err = strconv.ParseFloat(u10.Attrs["time"], 64)
	if err != nil {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: bad time attribute: %w", err)
	}
	rank, err = strconv.Atoi(u10.Attrs["rank"])
	if err != nil {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: bad rank attribute: %w", err)
	}
	nranks, err = strconv.Atoi(u10.Attrs["nranks"])
	if err != nil {
		return st, 0, 0, nil, fmt.Errorf("checkpoint: bad nranks attribute: %w", err)
	}
	st.P = pDS.F64
	ownedIDs = make([]int, len(idsDS.I64))
	for i, g := range idsDS.I64 {
		ownedIDs[i] = int(g)
	}
	return st, rank, nranks, ownedIDs, nil
}
