package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// allowPrefix introduces a suppression comment. The full form is
//
//	//heterolint:allow <keyword> <justification...>
//
// placed on the offending line or the line directly above it. The
// justification is mandatory: a suppression that does not say why it is
// safe is itself reported. Unused suppressions (no diagnostic at that
// line) are reported too, so annotations cannot outlive the code they
// excused.
const allowPrefix = "heterolint:allow"

// Allow is one parsed //heterolint:allow annotation.
type Allow struct {
	Keyword string
	Reason  string
	Pos     token.Pos
	File    string
	Line    int
}

// CollectAllows extracts every allow annotation from the files.
func CollectAllows(fset *token.FileSet, files []*ast.File) []Allow {
	var out []Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				// Inside analysistest fixtures an expectation marker can
				// share the comment ("//heterolint:allow x why // want …");
				// it is not part of the justification.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				keyword, reason, _ := strings.Cut(rest, " ")
				posn := fset.Position(c.Pos())
				out = append(out, Allow{
					Keyword: keyword,
					Reason:  strings.TrimSpace(reason),
					Pos:     c.Pos(),
					File:    posn.Filename,
					Line:    posn.Line,
				})
			}
		}
	}
	return out
}

// RunAnalyzer runs one analyzer over a type-checked package and applies the
// allow-annotation protocol: diagnostics on (or directly below) a matching
// annotation are suppressed, suppressions without a justification are
// reported, and annotations that suppressed nothing are reported as stale.
// Diagnostics come back sorted by position so every driver prints the same
// order — the suite practices the determinism it preaches.
//
// facts is the unit's shared fact store (imported dependency facts in,
// exported facts out); nil runs the analyzer fact-blind with a private
// empty store.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFactStore(a)
	}
	var raw []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d Diagnostic) { raw = append(raw, d) },
		facts:     facts,
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	if a.AllowKeyword == "" {
		sortDiagnostics(fset, raw)
		return raw, nil
	}

	allows := CollectAllows(fset, files)
	type key struct {
		file string
		line int
	}
	byLine := map[key]int{} // -> index into allows
	for i, al := range allows {
		if al.Keyword == a.AllowKeyword {
			byLine[key{al.File, al.Line}] = i
		}
	}
	used := make([]bool, len(allows))
	var kept []Diagnostic
	for _, d := range raw {
		posn := fset.Position(d.Pos)
		idx, ok := byLine[key{posn.Filename, posn.Line}]
		if !ok {
			idx, ok = byLine[key{posn.Filename, posn.Line - 1}]
		}
		if ok {
			used[idx] = true
			continue
		}
		kept = append(kept, d)
	}
	for i, al := range allows {
		if al.Keyword != a.AllowKeyword {
			continue
		}
		switch {
		case !used[i]:
			kept = append(kept, Diagnostic{Pos: al.Pos, Message: "unused //heterolint:allow " + a.AllowKeyword + " annotation (nothing to suppress here)"})
		case al.Reason == "":
			kept = append(kept, Diagnostic{Pos: al.Pos, Message: "//heterolint:allow " + a.AllowKeyword + " needs a justification after the keyword"})
		}
	}
	sortDiagnostics(fset, kept)
	return kept, nil
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Message < ds[j].Message
	})
}
