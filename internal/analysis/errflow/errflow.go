// Package errflow enforces the error-identity discipline around wrapped
// sentinels. The simulator's recovery paths hinge on sentinel tests —
// spot.ErrExhausted decides whether an arbiter retries or re-plans — and
// spot wraps that sentinel with %w to attach the pool mix. A downstream
// `err == spot.ErrExhausted` compiles, passes the happy-path tests, and
// silently stops matching the moment the producer wraps: the recovery
// policy then treats "pool empty" as an unknown fault. The analyzer closes
// both ends of the contract:
//
//   - comparisons: a sentinel that is wrapped anywhere (its own package
//     exports a WrappedSentinel fact; importers learn it from the fact
//     store) must be tested with errors.Is, never == or !=. A suggested
//     fix rewrites the comparison and adds the errors import.
//   - wrapping: a fmt.Errorf that forwards a sentinel must use %w — %v/%s
//     strip the identity the comparisons depend on.
//
// Knowledge flows cross-package as facts in both directions: the defining
// package publishes which sentinels get wrapped and which exported
// functions return wrapped chains; consuming packages import those facts
// to judge their comparisons.
package errflow

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"heterohpc/internal/analysis"
)

// WrappedSentinel marks a package-level sentinel error variable that its
// defining package wraps with %w: comparing it by identity is unsound
// everywhere.
type WrappedSentinel struct{}

// AFact marks WrappedSentinel as an analysis fact.
func (*WrappedSentinel) AFact() {}

// ReturnsWrapped marks an exported function or method that can return a
// %w-wrapped error chain, so identity comparisons against its result are
// unsound even when the sentinel side looks pristine.
type ReturnsWrapped struct{}

// AFact marks ReturnsWrapped as an analysis fact.
func (*ReturnsWrapped) AFact() {}

// Analyzer is the errflow checker.
var Analyzer = &analysis.Analyzer{
	Name:         "errflow",
	AllowKeyword: "errflow",
	FactTypes:    []analysis.Fact{(*WrappedSentinel)(nil), (*ReturnsWrapped)(nil)},
	Doc: `require errors.Is for wrapped sentinels and %w when forwarding them

Sentinel error vars (package-level Err*) that any package wraps with %w
must be tested with errors.Is: == and != stop matching wrapped chains.
fmt.Errorf calls that forward a sentinel must wrap with %w so errors.Is
keeps working downstream. Wrap knowledge crosses packages as facts.
Deliberate identity tests carry //heterolint:allow errflow <why>.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	var files []*ast.File
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}

	// wrapped accumulates sentinels known to be wrapped: found locally in
	// this package's fmt.Errorf("%w") calls, or imported as facts.
	wrapped := map[types.Object]bool{}
	// Pass 1: find every wrapping fmt.Errorf; record wrapped sentinels and
	// the functions that wrap (seed of the returns-wrapped fixpoint).
	wrapsLocally := map[*types.Func]bool{}
	decls := map[*types.Func]*ast.FuncDecl{}
	var order []*types.Func
	for _, f := range files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fn
			order = append(order, obj)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				format, ok := errorfFormat(pass, call)
				if !ok {
					return true
				}
				hasW := strings.Contains(format, "%w")
				if hasW {
					wrapsLocally[obj] = true
				}
				for _, arg := range call.Args[1:] {
					s := sentinelObj(pass, arg)
					if s == nil {
						continue
					}
					if hasW {
						wrapped[s] = true
					} else {
						pass.Reportf(call.Pos(),
							"fmt.Errorf forwards sentinel %s without %%w; the wrap strips the identity errors.Is needs",
							s.Name())
					}
				}
				return true
			})
		}
	}

	// Export WrappedSentinel for own-package sentinels (only the defining
	// package may attach facts to an object).
	for s := range wrapped {
		if s.Pkg() == pass.Pkg && analysis.ObjectKey(s) != "" {
			pass.ExportObjectFact(s, &WrappedSentinel{})
		}
	}

	// Returns-wrapped fixpoint: a function wraps if it calls fmt.Errorf
	// with %w, or calls a function already known (locally or by fact) to
	// return a wrapped chain.
	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			if wrapsLocally[obj] {
				continue
			}
			if callsWrapping(pass, decls[obj].Body, wrapsLocally) {
				wrapsLocally[obj] = true
				changed = true
			}
		}
	}
	for _, obj := range order {
		if wrapsLocally[obj] && obj.Exported() && analysis.ObjectKey(obj) != "" {
			pass.ExportObjectFact(obj, &ReturnsWrapped{})
		}
	}

	// Pass 2: identity comparisons.
	isWrapped := func(s types.Object) bool {
		if wrapped[s] {
			return true
		}
		var fact WrappedSentinel
		return pass.ImportObjectFact(s, &fact)
	}
	returnsWrapped := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		var callee types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = pass.TypesInfo.Uses[fun]
		case *ast.SelectorExpr:
			callee = pass.TypesInfo.Uses[fun.Sel]
		}
		f, ok := callee.(*types.Func)
		if !ok {
			return false
		}
		if wrapsLocally[f] {
			return true
		}
		var fact ReturnsWrapped
		return pass.ImportObjectFact(f, &fact)
	}
	for _, f := range files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			// One side must name a sentinel; nil comparisons are fine.
			s := sentinelObj(pass, be.X)
			other := be.Y
			if s == nil {
				s = sentinelObj(pass, be.Y)
				other = be.X
			}
			if s == nil {
				return true
			}
			if !isWrapped(s) && !returnsWrapped(other) {
				return true
			}
			d := analysis.Diagnostic{
				Pos: be.Pos(),
				Message: "sentinel " + s.Name() + " may arrive wrapped; " +
					map[token.Token]string{token.EQL: "== misses wrapped chains, use errors.Is", token.NEQ: "!= misses wrapped chains, use !errors.Is"}[be.Op],
			}
			if fix, ok := errorsIsFix(pass, file, be); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{fix}
			}
			pass.Report(d)
			return true
		})
	}
	return nil, nil
}

// errorfFormat returns the constant format string of a fmt.Errorf call.
func errorfFormat(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return "", false
	}
	if len(call.Args) < 2 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// sentinelObj resolves e to a package-level sentinel error variable (name
// Err*, type implementing error), local or imported.
func sentinelObj(pass *analysis.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || !strings.HasPrefix(obj.Name(), "Err") {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	if !isErrorType(obj.Type()) {
		return nil
	}
	return obj
}

func isErrorType(t types.Type) bool {
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errType)
}

// callsWrapping reports whether body calls a function already known to
// return wrapped chains — locally via the fixpoint map, or cross-package
// via a ReturnsWrapped fact.
func callsWrapping(pass *analysis.Pass, body *ast.BlockStmt, local map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = pass.TypesInfo.Uses[fun]
		case *ast.SelectorExpr:
			callee = pass.TypesInfo.Uses[fun.Sel]
		}
		f, ok := callee.(*types.Func)
		if !ok {
			return true
		}
		if local[f] {
			found = true
			return false
		}
		if f.Pkg() != nil && f.Pkg() != pass.Pkg {
			var fact ReturnsWrapped
			if pass.ImportObjectFact(f, &fact) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// errorsIsFix builds the rewrite `x == S` -> `errors.Is(x, S)` (and the
// negated form for !=), adding an errors import when the file lacks one.
func errorsIsFix(pass *analysis.Pass, file *ast.File, be *ast.BinaryExpr) (analysis.SuggestedFix, bool) {
	x, okX := exprText(pass.Fset, be.X)
	y, okY := exprText(pass.Fset, be.Y)
	if !okX || !okY {
		return analysis.SuggestedFix{}, false
	}
	// Keep operand order: errors.Is(err, Sentinel) reads naturally when the
	// error is on the left, and swapping operands never changes the result.
	neg := ""
	if be.Op == token.NEQ {
		neg = "!"
	}
	fix := analysis.SuggestedFix{
		Message: "replace identity test with errors.Is",
		TextEdits: []analysis.TextEdit{{
			Pos: be.Pos(), End: be.End(),
			NewText: []byte(neg + "errors.Is(" + x + ", " + y + ")"),
		}},
	}
	if edit, needed := importErrorsEdit(file); needed {
		fix.TextEdits = append(fix.TextEdits, edit)
	}
	return fix, true
}

func exprText(fset *token.FileSet, e ast.Expr) (string, bool) {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "", false
	}
	return sb.String(), true
}

// importErrorsEdit returns the insertion that adds `"errors"` to the
// file's imports, or needed=false if it is already imported.
func importErrorsEdit(file *ast.File) (analysis.TextEdit, bool) {
	for _, imp := range file.Imports {
		if imp.Path.Value == `"errors"` {
			return analysis.TextEdit{}, false
		}
	}
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			// Inside the block, first position: "errors" sorts early and
			// gofmt accepts leading placement.
			return analysis.TextEdit{Pos: gd.Lparen + 1, End: gd.Lparen + 1, NewText: []byte("\n\t\"errors\"")}, true
		}
		return analysis.TextEdit{Pos: gd.Pos(), End: gd.Pos(), NewText: []byte("import \"errors\"\n")}, true
	}
	return analysis.TextEdit{Pos: file.Name.End(), End: file.Name.End(), NewText: []byte("\n\nimport \"errors\"")}, true
}
