package errflow_test

import (
	"testing"

	"heterohpc/internal/analysis/analysistest"
	"heterohpc/internal/analysis/errflow"
)

// TestErrflow checks both sides of the fact boundary: errs exports the
// WrappedSentinel/ReturnsWrapped facts while being diagnosed itself, and
// errsuser's findings exist only because those facts flowed across.
func TestErrflow(t *testing.T) {
	analysistest.Run(t, "../testdata", errflow.Analyzer, "errs", "errsuser")
}

// TestErrflowConsumerFirst loads the consumer before naming the producer:
// the loader must analyze the imported package on demand so the facts are
// present either way.
func TestErrflowConsumerFirst(t *testing.T) {
	analysistest.Run(t, "../testdata", errflow.Analyzer, "errsuser")
}

func TestErrflowFixes(t *testing.T) {
	analysistest.RunFixes(t, "../testdata", errflow.Analyzer, "errsfix")
}
