// Package analysis is a self-contained static-analysis framework for the
// repository's own invariant checkers (heterolint). It mirrors the core API
// of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic, Fact —
// so the heterolint analyzers read like any other go/analysis checker and
// can migrate to the upstream framework verbatim once the module is
// vendored.
//
// Since v2 the framework is facts-capable: an analyzer may export typed
// facts about package-level objects (or whole packages) and import facts
// recorded by its own runs over dependency packages. Facts serialize
// through the unitchecker's .vetx files, so cross-package propagation works
// under the `go vet -vettool` protocol with nothing but the standard
// library (go/ast, go/types, go/importer, encoding/json).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is the one-paragraph help text: first line is a summary.
	Doc string
	// AllowKeyword is the //heterolint:allow keyword that suppresses this
	// analyzer's diagnostics ("wallclock" for detclock, etc.). Empty means
	// the analyzer cannot be suppressed. Non-empty keywords must be unique
	// across the suite (enforced by Validate) so one annotation can never
	// silence two different checkers.
	AllowKeyword string
	// FactTypes lists the fact types the analyzer exports or imports, one
	// zero value per type. An analyzer with no FactTypes is fact-free and
	// is skipped on facts-only (VetxOnly) unitchecker runs.
	FactTypes []Fact
	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer run with a single type-checked package and a
// sink for its diagnostics, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// facts is the fact store shared by every analyzer run of one unit:
	// facts imported from dependency packages plus facts exported here.
	facts *FactStore
}

// Reportf reports a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact records fact about obj, a package-level object (or
// method) of the pass package, for this analyzer's runs over downstream
// packages. It panics on objects from other packages or objects without a
// stable key — both are analyzer bugs.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact: object does not belong to package %s", p.Analyzer, p.Pkg.Path()))
	}
	key := ObjectKey(obj)
	if key == "" {
		panic(fmt.Sprintf("%s: ExportObjectFact: object %s is not package-level", p.Analyzer, obj.Name()))
	}
	if err := p.facts.set(p.Analyzer.Name, p.Pkg.Path(), key, fact); err != nil {
		panic(fmt.Sprintf("%s: ExportObjectFact: %v", p.Analyzer, err))
	}
}

// ImportObjectFact copies into fact the fact previously exported for obj —
// by this pass or by the same analyzer's run over the package defining obj
// — and reports whether one was found. fact must be a pointer of the
// concrete fact type.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	return p.facts.get(p.Analyzer.Name, obj.Pkg().Path(), key, fact)
}

// ExportPackageFact records fact about the pass package as a whole.
func (p *Pass) ExportPackageFact(fact Fact) {
	if err := p.facts.set(p.Analyzer.Name, p.Pkg.Path(), "", fact); err != nil {
		panic(fmt.Sprintf("%s: ExportPackageFact: %v", p.Analyzer, err))
	}
}

// ImportPackageFact copies into fact the package fact previously exported
// for pkg and reports whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	return p.facts.get(p.Analyzer.Name, pkg.Path(), "", fact)
}

// Diagnostic is one finding, attributed to a source position, optionally
// carrying machine-applicable fixes.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// SuggestedFixes are alternative edits that resolve the finding; the
	// heterolint -fix driver applies the first fix of each diagnostic.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one way to resolve a diagnostic, expressed as a set of
// non-overlapping text edits.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText. End == Pos is a
// pure insertion.
type TextEdit struct {
	Pos, End token.Pos
	NewText  []byte
}

// Validate checks the analyzer list for driver use: non-empty distinct
// names, a Run function each, pointer-shaped fact types, and distinct
// non-empty AllowKeywords (one //heterolint:allow keyword must never
// suppress two different checkers).
func Validate(analyzers []*Analyzer) error {
	seen := map[string]bool{}
	keywords := map[string]string{} // keyword -> analyzer that claimed it
	for _, a := range analyzers {
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has no Run", a.Name)
		}
		if a.AllowKeyword != "" {
			if prev, dup := keywords[a.AllowKeyword]; dup {
				return fmt.Errorf("analysis: analyzers %q and %q share allow keyword %q; one //heterolint:allow must not suppress two checkers",
					prev, a.Name, a.AllowKeyword)
			}
			keywords[a.AllowKeyword] = a.Name
		}
		for _, f := range a.FactTypes {
			if err := validateFactType(f); err != nil {
				return fmt.Errorf("analysis: analyzer %q: %v", a.Name, err)
			}
		}
	}
	return nil
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The heterolint invariants govern simulation code; tests may legitimately
// read the wall clock or iterate maps into t.Log output.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
