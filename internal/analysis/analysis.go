// Package analysis is a self-contained static-analysis framework for the
// repository's own invariant checkers (heterolint). It mirrors the core API
// of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — so the
// four heterolint analyzers read like any other go/analysis checker and can
// migrate to the upstream framework verbatim once the module is vendored.
// The subset implemented here is deliberately fact-free: every heterolint
// invariant is checkable from a single type-checked package, which is what
// keeps the whole suite runnable offline with nothing but the standard
// library (go/ast, go/types, go/importer).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is the one-paragraph help text: first line is a summary.
	Doc string
	// AllowKeyword is the //heterolint:allow keyword that suppresses this
	// analyzer's diagnostics ("wallclock" for detclock, etc.). Empty means
	// the analyzer cannot be suppressed.
	AllowKeyword string
	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer run with a single type-checked package and a
// sink for its diagnostics, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, attributed to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Validate checks the analyzer list for driver use: non-empty distinct
// names and a Run function each.
func Validate(analyzers []*Analyzer) error {
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has no Run", a.Name)
		}
	}
	return nil
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The heterolint invariants govern simulation code; tests may legitimately
// read the wall clock or iterate maps into t.Log output.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
