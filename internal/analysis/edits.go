package analysis

import (
	"fmt"
	"sort"
)

// Edit is one offset-addressed replacement inside a single file: the bytes
// in [Start, End) are replaced by New. This is TextEdit after position
// resolution — the form the -fix driver and analysistest golden tests share.
type Edit struct {
	Start, End int
	New        []byte
}

// ApplyEdits returns src with the edits applied. Edits are sorted by start
// offset; overlapping or out-of-range edits are an error — a driver must
// not half-apply a fix.
func ApplyEdits(src []byte, edits []Edit) ([]byte, error) {
	es := append([]Edit(nil), edits...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Start != es[j].Start {
			return es[i].Start < es[j].Start
		}
		return es[i].End < es[j].End
	})
	var out []byte
	prev := 0
	for _, e := range es {
		if e.Start < 0 || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("analysis: edit [%d,%d) out of range (len %d)", e.Start, e.End, len(src))
		}
		if e.Start < prev {
			return nil, fmt.Errorf("analysis: overlapping edits at offset %d", e.Start)
		}
		out = append(out, src[prev:e.Start]...)
		out = append(out, e.New...)
		prev = e.End
	}
	out = append(out, src[prev:]...)
	return out, nil
}
