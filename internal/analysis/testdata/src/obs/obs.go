// Package obs is the obskind fixture: a miniature journal with the same
// Event shape and nil-safe API contract the real observability layer uses.
package obs

// Event is one journal record; field order is the journal's column order.
type Event struct {
	T    float64
	Rank int
	Kind string
	Name string
	I1   int64
	F1   float64
}

// Sink collects events; nil and the zero value are both usable.
type Sink struct{ events []Event }

// Emit appends one record; nil-safe like the real API.
func (s *Sink) Emit(e Event) {
	if s == nil {
		return
	}
	s.events = append(s.events, e)
}

// Len is nil-safe through a compound guard.
func (s *Sink) Len() int {
	if s == nil || len(s.events) == 0 {
		return 0
	}
	return len(s.events)
}

// Reset forgets the guard the API contract requires.
func (s *Sink) Reset() { // want `exported obs method Reset has a pointer receiver but no leading nil guard`
	s.events = nil
}

// Snapshot has a value receiver: a nil pointer cannot reach it.
func (s Sink) Snapshot() int { return len(s.events) }

// clear is unexported: internal callers already hold a non-nil receiver.
func (s *Sink) clear() { s.events = nil }

// EmitStep writes the "step" record in declared order.
func EmitStep(s *Sink, t float64, step int64) {
	s.Emit(Event{T: t, Kind: "step", I1: step})
}

// EmitJumbled lists fields out of declared order.
func EmitJumbled(s *Sink, t float64) {
	s.Emit(Event{Kind: "jumbled", T: t, Name: "x"}) // want `obs\.Event fields out of declared order`
}

// EmitStepAgain reuses another writer's kind.
func EmitStepAgain(s *Sink, t float64) {
	s.Emit(Event{T: t, Kind: "step"}) // want `journal kind "step" is already emitted by EmitStep`
}

// EmitPhase emits its kind from two branches: same writer, no finding.
func EmitPhase(s *Sink, t float64, up bool) {
	if up {
		s.Emit(Event{T: t, Kind: "phase", Name: "up"})
	} else {
		s.Emit(Event{T: t, Kind: "phase", Name: "down"})
	}
}

// AllowedMirror documents a sanctioned duplicate writer.
func AllowedMirror(s *Sink, t float64) {
	//heterolint:allow obskind replay mirror re-emits the original record
	s.Emit(Event{T: t, Kind: "step"})
}
