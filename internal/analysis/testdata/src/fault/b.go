package fault

import "time"

// Hot reads the clock without an annotation: flagged even though file a.go
// contains a valid allow for the same keyword.
func Hot() time.Time {
	return time.Now() // want `wall-clock read time\.Now in simulation-deterministic package "fault"`
}

// Quiet trips nothing, so the annotation above it is stale.
//
//heterolint:allow wallclock leftover from a removed probe // want `unused //heterolint:allow wallclock annotation`
func Quiet() int { return 1 }
