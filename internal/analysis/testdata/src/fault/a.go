// Package fault is the detclock multi-file fixture: allow annotations and
// the diagnostics they suppress live in different files of one package, so
// stale-annotation detection must see the whole fileset at once.
package fault

import "time"

// Seeded reads the wall clock deliberately, excused in this file.
func Seeded() int64 {
	//heterolint:allow wallclock one-off setup stamp outside the replayed region
	return time.Now().UnixNano()
}
