// Package errs is the errflow defining-side fixture: it wraps one sentinel
// with %w (which exports the WrappedSentinel fact and makes Acquire a
// ReturnsWrapped producer) and leaves another sentinel pristine.
package errs

import (
	"errors"
	"fmt"
)

// ErrExhausted is wrapped by Acquire: identity tests on it are unsound.
var ErrExhausted = errors.New("exhausted")

// ErrClosed is never wrapped: identity tests on it stay legal.
var ErrClosed = errors.New("closed")

// Acquire wraps the sentinel with %w.
func Acquire(n int) error {
	if n <= 0 {
		return fmt.Errorf("acquire %d: %w", n, ErrExhausted)
	}
	return nil
}

// AcquireAll returns wrapped chains transitively through Acquire.
func AcquireAll() error { return Acquire(0) }

// LocalCompare trips over the package's own wrapped sentinel.
func LocalCompare(err error) bool {
	return err == ErrExhausted // want `sentinel ErrExhausted may arrive wrapped; == misses wrapped chains, use errors.Is`
}

// PlainCompare is fine: ErrClosed is never wrapped anywhere.
func PlainCompare(err error) bool { return err == ErrClosed }

// NilCompare is always fine.
func NilCompare(err error) bool { return err == nil }

// Stringify forwards the sentinel but strips its identity.
func Stringify() error {
	return fmt.Errorf("ctx: %v", ErrExhausted) // want `fmt.Errorf forwards sentinel ErrExhausted without %w; the wrap strips the identity errors.Is needs`
}

// IsCompare is the sanctioned test.
func IsCompare(err error) bool { return errors.Is(err, ErrExhausted) }
