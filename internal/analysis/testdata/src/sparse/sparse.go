// Package sparse is the vcharge fixture: metered kernels in the shapes the
// real package uses — direct charges, charge-through-helper, and the
// uncharged loop the analyzer exists to catch.
package sparse

// Charger receives operation counts from compute kernels.
type Charger interface {
	ChargeCompute(flops, bytes float64)
}

// NopCharger discards charges.
type NopCharger struct{}

// ChargeCompute implements Charger.
func (NopCharger) ChargeCompute(flops, bytes float64) {}

// Axpy charges directly after its loop.
func Axpy(n int, a float64, x, y []float64, ch Charger) {
	for i := 0; i < n; i++ {
		y[i] += a * x[i]
	}
	ch.ChargeCompute(2*float64(n), 24*float64(n))
}

// DotLocal charges directly.
func DotLocal(n int, x, y []float64, ch Charger) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += x[i] * y[i]
	}
	ch.ChargeCompute(2*float64(n), 16*float64(n))
	return sum
}

// chargeTail is an unexported helper that performs the charge.
func chargeTail(n int, ch Charger) {
	ch.ChargeCompute(float64(n), 8*float64(n))
}

// Scale charges through a package-local helper (fixpoint case).
func Scale(n int, a float64, x []float64, ch Charger) {
	for i := 0; i < n; i++ {
		x[i] *= a
	}
	chargeTail(n, ch)
}

// SumAbs loops over float data and never charges anything.
func SumAbs(n int, x []float64) float64 { // want `exported SumAbs loops over float64 data with no reachable compute charge`
	var s float64
	for i := 0; i < n; i++ {
		if x[i] < 0 {
			s -= x[i]
		} else {
			s += x[i]
		}
	}
	return s
}

// CopyN moves bytes without arithmetic: not compute, not flagged.
func CopyN(n int, dst, src []float64) {
	for i := 0; i < n; i++ {
		dst[i] = src[i]
	}
}

// BuildIndex does integer bookkeeping only: not flagged.
func BuildIndex(rows []int) []int {
	out := make([]int, 0, len(rows))
	for _, r := range rows {
		out = append(out, r*2+1)
	}
	return out
}

// ExactReference is deliberately uncharged: it models the analytic
// solution used for error norms, which costs nothing in virtual time.
//
//heterolint:allow vcharge analytic reference solution, outside the metered iteration
func ExactReference(n int, x []float64) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += x[i] * x[i]
	}
	return s
}

// private helpers with uncharged loops are not exported API: not flagged.
func sumsq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// Meter is the package-level charge sink for self-metered kernels.
var Meter Charger = NopCharger{}

// AxpyMetered charges the package meter itself: no Charger crosses the
// call boundary, so downstream packages see the charge only through the
// exported ChargesFact.
func AxpyMetered(n int, a float64, x, y []float64) {
	for i := 0; i < n; i++ {
		y[i] += a * x[i]
	}
	Meter.ChargeCompute(2*float64(n), 24*float64(n))
}

// CSR is a matrix whose multiply self-meters (method-fact case).
type CSR struct{ N int }

// MulVec charges through the package meter.
func (m *CSR) MulVec(x, y []float64) {
	for i := range y {
		y[i] += x[i] * 2
	}
	Meter.ChargeCompute(float64(2*m.N), float64(12*m.N))
}

// NewCSR assembles the structure; constructors are setup-time and exempt
// even though assembly loops over float data.
func NewCSR(vals []float64) *CSR {
	var checksum float64
	for _, v := range vals {
		checksum += v
	}
	_ = checksum
	return &CSR{N: len(vals)}
}

// NewWeights is named New* but returns no pointer to a local type: the
// constructor exemption does not apply.
func NewWeights(n int) []float64 { // want `exported NewWeights loops over float64 data with no reachable compute charge`
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i) * 0.5
	}
	return w
}

// NewScaled demonstrates a stale annotation: the constructor exemption
// already covers it, so the allow suppresses nothing.
//
//heterolint:allow vcharge setup-time assembly loop // want `unused //heterolint:allow vcharge annotation`
func NewScaled(vals []float64) *CSR {
	var sum float64
	for _, v := range vals {
		sum += v * v
	}
	_ = sum
	return &CSR{N: len(vals)}
}
