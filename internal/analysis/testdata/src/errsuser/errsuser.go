// Package errsuser is the errflow consuming-side fixture: every finding
// here depends on facts imported from the errs package — the wrap that
// poisons identity tests happens entirely on the other side of the
// package boundary.
package errsuser

import (
	"errors"
	"fmt"

	"errs"
)

// FactCompare is unsound only because errs wraps the sentinel (fact flow).
func FactCompare(err error) bool {
	return err == errs.ErrExhausted // want `sentinel ErrExhausted may arrive wrapped; == misses wrapped chains, use errors.Is`
}

// FactCompareNeq gets the negated rewrite.
func FactCompareNeq(err error) bool {
	return err != errs.ErrExhausted // want `sentinel ErrExhausted may arrive wrapped; != misses wrapped chains, use !errors.Is`
}

// CallCompare: the sentinel side is pristine, but the other operand is a
// call into a function that returns wrapped chains (ReturnsWrapped fact).
func CallCompare() bool {
	return errs.AcquireAll() == errs.ErrClosed // want `sentinel ErrClosed may arrive wrapped; == misses wrapped chains, use errors.Is`
}

// PlainCompare stays legal: ErrClosed is unwrapped and the operand is a
// plain error value.
func PlainCompare(err error) bool { return err == errs.ErrClosed }

// IsCompare is the sanctioned form.
func IsCompare(err error) bool { return errors.Is(err, errs.ErrExhausted) }

// UserStringify forwards an imported sentinel without %w.
func UserStringify() error {
	return fmt.Errorf("op: %v", errs.ErrExhausted) // want `fmt.Errorf forwards sentinel ErrExhausted without %w`
}

// Allowed documents a deliberate identity probe.
func Allowed(err error) bool {
	//heterolint:allow errflow bring-up probe against an unwrapped producer build
	return err == errs.ErrExhausted
}
