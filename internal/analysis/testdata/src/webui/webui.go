// Package webui is a detclock negative fixture: it is not in the
// simulation-deterministic set, so wall-clock reads are legal.
package webui

import (
	"math/rand"
	"time"
)

// Uptime may read the machine clock: webui is not a simulated package.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Jitter may use the global source outside the deterministic set.
func Jitter() int {
	return rand.Intn(100)
}
