// Package collect is the maporder fixture: map iterations feeding ordered
// sinks, in both flagged and laundered shapes.
package collect

import (
	"fmt"
	"sort"
	"strings"
)

// Report writes entries in map order: the classic golden-file flake.
func Report(w *strings.Builder, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration order leaks into fmt\.Fprintf output`
	}
}

// ReportMethod hits the method-call sink on an outside stream.
func ReportMethod(b *strings.Builder, m map[string]int) {
	for k := range m {
		b.WriteString(k) // want `map iteration order leaks into WriteString call`
	}
}

// ReportStdout leaks map order into process output.
func ReportStdout(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `map iteration order leaks into fmt\.Println output`
	}
}

// encoder is a local stand-in for json.Encoder-style sinks.
type encoder struct{ out []string }

func (e *encoder) Encode(v interface{}) error {
	e.out = append(e.out, fmt.Sprint(v))
	return nil
}

// Stream encodes values in map order.
func Stream(enc *encoder, m map[string]int) {
	for _, v := range m {
		enc.Encode(v) // want `map iteration order leaks into Encode call`
	}
}

// PerIterationScratch builds a fresh buffer per entry and stores it by key:
// nothing ordered escapes, so nothing is flagged.
func PerIterationScratch(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b strings.Builder
		fmt.Fprintf(&b, "%s=%d", k, v)
		out[k] = b.String()
	}
	return out
}

// SortedKeys is the sanctioned idiom: collect, sort, then emit.
func SortedKeys(w *strings.Builder, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// FirstMatch returns whichever entry the runtime visits first.
func FirstMatch(m map[string]int, lim int) string {
	for k, v := range m {
		if v > lim {
			return k // want `return inside map iteration picks whichever entry the runtime visits first`
		}
	}
	return ""
}

// FirstError returns a loop-dependent error nondeterministically.
func FirstError(m map[string]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("negative entry %s=%d", k, v) // want `return inside map iteration`
		}
	}
	return nil
}

// UniqueLookup is the find-this-one-entry shape: at most one iteration can
// match the key equality, so the result is deterministic.
func UniqueLookup(m map[string]int, want string) int {
	for k, v := range m {
		if k == want {
			return v
		}
	}
	return -1
}

// ConstantReturn yields the same value whichever entry fires first.
func ConstantReturn(m map[string]int) bool {
	for _, v := range m {
		if v > 0 {
			return true
		}
	}
	return false
}

// Unsorted collects in iteration order and hands the slice straight back.
func Unsorted(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k) // want `names collects map entries in iteration order`
	}
	return names
}

// Sorted launders the collection through sort.Strings.
func Sorted(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// helperSorted launders through a callee, the (*Local).finish shape: the
// analyzer assumes a later call imposes an order.
func helperSorted(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	finish(names)
	return names
}

func finish(names []string) { sort.Strings(names) }

// Allowed demonstrates the escape hatch on an ordered sink.
func Allowed(w *strings.Builder, m map[string]int) {
	for k := range m {
		//heterolint:allow maporder debug dump, order is irrelevant to goldens
		fmt.Fprintf(w, "%s\n", k)
	}
}
