// Package krylov is the vcharge cross-package fixture: the Charger
// interface lives in the imported sparse package, and charging happens by
// handing the charger to a callee.
package krylov

import "sparse"

// Smooth passes its charger to sparse kernels: charged via the callee.
func Smooth(n int, x, y []float64, ch sparse.Charger) {
	for i := 0; i < n; i++ {
		y[i] = 0
	}
	sparse.Axpy(n, 0.5, x, y, ch)
}

// FusedResidual loops itself but forwards the charger to a helper call, so
// the work is accounted.
func FusedResidual(n int, r, x []float64, ch sparse.Charger) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += r[i] * r[i]
	}
	return s + sparse.DotLocal(n, x, x, ch)
}

// RawNorm burns flops with no charger in sight.
func RawNorm(x []float64) float64 { // want `exported RawNorm loops over float64 data with no reachable compute charge`
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// TwoStage loops floats and is charged only through the imported fact:
// AxpyMetered's internal meter charge is invisible syntactically, no
// Charger value crosses this call.
func TwoStage(n int, x, y []float64) {
	for i := 0; i < n; i++ {
		y[i] -= x[i]
	}
	sparse.AxpyMetered(n, 2, x, y)
}

// ApplyCSR is charged through a cross-package method fact.
func ApplyCSR(m *sparse.CSR, x, y []float64) {
	for i := range y {
		y[i] *= 0.5
	}
	m.MulVec(x, y)
}
