// Package calc is the vcharge negative fixture: not a metered package, so
// uncharged float loops are legal here.
package calc

// Mean is unmetered numeric code outside sparse/krylov/fem.
func Mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
