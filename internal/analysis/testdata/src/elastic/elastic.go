// Package elastic is the worldconsume fixture: recovery orchestration in
// the shapes the real bench code uses — straight-line use-after-consume,
// selector-path receivers, the sanctioned swap-in of the replacement, and
// branch-local consumes the analyzer must not over-flag.
package elastic

import "mp"

// Runner owns a world through a struct field, like the bench runners.
type Runner struct{ World *mp.World }

// UseAfterShrink keeps talking to the dead world.
func UseAfterShrink(w *mp.World) {
	res, err := w.Shrink()
	_ = err
	w.Barrier() // want `w is used after Shrink consumed it`
	_ = res
}

// FieldUseAfter tracks a selector path, not just a plain identifier.
func FieldUseAfter(r *Runner, doomed []int) {
	sr, _ := r.World.ShrinkNodes(doomed)
	r.World.Send(0) // want `r\.World is used after ShrinkNodes consumed it`
	_ = sr
}

// GrowConsumes flags the third consuming method too.
func GrowConsumes(w *mp.World) {
	g, _ := w.Grow([]int{1}, []int{0}, 5)
	w.Send(0) // want `w is used after Grow consumed it`
	_ = g
}

// DoubleConsume: the second reshape is itself a use of the dead world.
func DoubleConsume(w *mp.World) {
	_, _ = w.Shrink()
	_, _ = w.Shrink() // want `w is used after Shrink consumed it`
}

// LeakClosure captures the dead world in a closure: still a use.
func LeakClosure(w *mp.World) func() {
	_, _ = w.Shrink()
	return func() { w.Barrier() } // want `w is used after Shrink consumed it`
}

// SwapsInReplacement is the sanctioned pattern: reassigning the tracked
// path ends the poisoned window.
func SwapsInReplacement(r *Runner, doomed []int) {
	sr, err := r.World.ShrinkNodes(doomed)
	if err != nil {
		return
	}
	r.World = sr.World
	r.World.Send(0)
}

// LocalSwap reassigns the plain identifier.
func LocalSwap(w *mp.World) {
	res, _ := w.Shrink()
	w = res.World
	w.Barrier()
}

// BranchConsume shrinks on one arm only: the join-point use depends on
// which path executed, so the flow-light scan stays quiet by design.
func BranchConsume(w *mp.World, degraded bool) {
	if degraded {
		res, _ := w.Shrink()
		_ = res
	} else {
		w.Send(1)
	}
	w.Barrier()
}

// OtherWorld is untouched: consuming one world says nothing about another.
func OtherWorld(w, spare *mp.World) {
	_, _ = w.Shrink()
	spare.Barrier()
}

// AllowHatch documents a deliberate post-consume touch.
func AllowHatch(w *mp.World) {
	_, _ = w.Shrink()
	//heterolint:allow worldconsume read-only autopsy of the dead world's topology
	w.Barrier()
}
