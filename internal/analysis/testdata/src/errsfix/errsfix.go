// Package errsfix is the errflow autofix fixture: the suggested rewrites
// applied to this file must reproduce errsfix.go.golden byte for byte,
// including the errors import the fix inserts.
package errsfix

import (
	"fmt"
)

// ErrGone is wrapped below, so identity tests on it get the rewrite.
var ErrGone = fmt.Errorf("gone")

// Wrap makes ErrGone a wrapped sentinel.
func Wrap() error { return fmt.Errorf("op: %w", ErrGone) }

// Check gets rewritten to errors.Is.
func Check(err error) bool {
	return err == ErrGone // want `sentinel ErrGone may arrive wrapped; == misses wrapped chains, use errors.Is`
}

// CheckNot gets the negated rewrite.
func CheckNot(err error) bool {
	return err != ErrGone // want `sentinel ErrGone may arrive wrapped; != misses wrapped chains, use !errors.Is`
}
