// Package obsuser is the consumer-side obskind fixture: journal records
// must flow through the obs helpers, not raw Event literals.
package obsuser

import "obs"

// Record builds a raw event outside obs.
func Record(s *obs.Sink, t float64) {
	s.Emit(obs.Event{T: t, Kind: "user"}) // want `raw obs\.Event literal outside package obs`
}

// Delegate uses the sanctioned helpers.
func Delegate(s *obs.Sink, t float64) {
	obs.EmitStep(s, t, 1)
}

// AllowedRaw documents a sanctioned literal.
func AllowedRaw(s *obs.Sink, t float64) {
	//heterolint:allow obskind bootstrap record predates the helper API
	s.Emit(obs.Event{T: t, Kind: "boot"})
}
