// Package mp is the poolretain fixture: a miniature of the real transport
// with the same type names the analyzer keys on (f64Pool, message) and a
// mailbox whose put method must NOT be confused with the pool's.
package mp

type f64Pool struct{ free [][]float64 }

func (p *f64Pool) get(n int) []float64 { return make([]float64, n) }
func (p *f64Pool) put(buf []float64)   {}

type message struct {
	src, tag int
	f64      []float64
}

type mailbox struct{ q []message }

// put here is the mailbox handoff, not the pool recycle.
func (b *mailbox) put(m message) { b.q = append(b.q, m) }
func (b *mailbox) take() message { m := b.q[0]; b.q = b.q[1:]; return m }

type World struct {
	pool  f64Pool
	boxes []*mailbox
}

type Rank struct {
	world *World
	id    int
	stash []float64
}

var debugLast []float64

// SendOK is the sanctioned shape: get, fill, hand off inside a message.
func (r *Rank) SendOK(dst int, data []float64) {
	cp := r.world.pool.get(len(data))
	copy(cp, data)
	r.world.boxes[dst].put(message{src: r.id, tag: 1, f64: cp})
}

// RecvOK is the documented transfer point: returning the payload moves
// ownership to the application.
func (r *Rank) RecvOK() []float64 {
	m := r.world.boxes[r.id].take()
	return m.f64
}

// RecvIntoOK copies out and recycles: the last payload touch precedes put.
func (r *Rank) RecvIntoOK(dst []float64) int {
	m := r.world.boxes[r.id].take()
	n := copy(dst, m.f64)
	r.world.pool.put(m.f64)
	return n
}

// StashField retains a pooled buffer in a struct field.
func (r *Rank) StashField(n int) {
	cp := r.world.pool.get(n)
	r.stash = cp // want `pooled buffer cp stored into field stash`
}

// StashGlobal retains a pooled buffer in a package-level variable.
func (r *Rank) StashGlobal(n int) {
	cp := r.world.pool.get(n)
	debugLast = cp // want `pooled buffer cp stored into package-level variable debugLast`
}

type wrapper struct{ buf []float64 }

// WrapLiteral retains a pooled buffer inside a non-message composite.
func (r *Rank) WrapLiteral(n int) wrapper {
	cp := r.world.pool.get(n)
	return wrapper{buf: cp} // want `pooled buffer cp retained inside a composite literal`
}

// LeakGoroutine captures a pooled buffer in a goroutine.
func (r *Rank) LeakGoroutine(n int) {
	cp := r.world.pool.get(n)
	go func() {
		_ = cp[0] // want `pooled buffer cp captured by a goroutine`
	}()
	r.world.pool.put(cp)
}

// UseAfterPut touches the buffer after recycling it.
func (r *Rank) UseAfterPut(n int) float64 {
	cp := r.world.pool.get(n)
	cp[0] = 1
	r.world.pool.put(cp)
	return cp[0] // want `use of pooled buffer after put`
}

// DoublePut recycles twice.
func (r *Rank) DoublePut(n int) {
	cp := r.world.pool.get(n)
	r.world.pool.put(cp)
	r.world.pool.put(cp) // want `use of pooled buffer after put`
}

// PayloadAfterPut touches message.f64 after recycling it.
func (r *Rank) PayloadAfterPut() float64 {
	m := r.world.boxes[r.id].take()
	v := m.f64[0]
	r.world.pool.put(m.f64)
	return v + m.f64[0] // want `use of pooled buffer after put`
}

// ConditionalPut puts on an early-exit path only; the later use is on the
// no-put path and is correct — sibling-statement analysis stays quiet.
func (r *Rank) ConditionalPut(n int, early bool) float64 {
	cp := r.world.pool.get(n)
	if early {
		r.world.pool.put(cp)
		return 0
	}
	return cp[0]
}

// AllowedStash documents a deliberate retention.
func (r *Rank) AllowedStash(n int) {
	cp := r.world.pool.get(n)
	//heterolint:allow poolretain world-reset diagnostics buffer, pool is discarded right after
	r.stash = cp
}
