// world.go gives the fixture World the reshape surface the worldconsume
// analyzer keys on: Shrink/ShrinkNodes/Grow consume their receiver and
// hand the replacement back inside the result, mirroring the real
// transport's signatures.
package mp

// Reshape carries the replacement world out of a consuming call.
type Reshape struct{ World *World }

// Shrink re-forms the world around survivors; the receiver is consumed.
func (w *World) Shrink() (*Reshape, error) { return &Reshape{World: w}, nil }

// ShrinkNodes is Shrink for correlated losses; the receiver is consumed.
func (w *World) ShrinkNodes(alsoDoomed []int) (*Reshape, error) {
	return &Reshape{World: w}, nil
}

// Grow appends capacity; the receiver is consumed.
func (w *World) Grow(ranksPerNewNode, groupOfNewNode []int, startAt float64) (*Reshape, error) {
	return &Reshape{World: w}, nil
}

// Send and Barrier stand in for post-reshape traffic in the fixtures.
func (w *World) Send(dst int) {}

// Barrier stands in for collective traffic in the fixtures.
func (w *World) Barrier() {}
