// Package rd is a detclock fixture: its import-path segment "rd" puts it
// in the simulation-deterministic set.
package rd

import (
	"math/rand"
	"time"
)

// Clock stands in for the virtual clock in negative cases.
type Clock struct{ now float64 }

// Step exercises the forbidden wall-clock reads.
func Step() time.Duration {
	t0 := time.Now()                       // want `wall-clock read time\.Now in simulation-deterministic package "rd"`
	time.Sleep(time.Millisecond)           // want `wall-clock read time\.Sleep`
	if time.Until(t0.Add(time.Hour)) > 0 { // want `wall-clock read time\.Until`
		_ = time.Since(t0) // want `wall-clock read time\.Since`
	}
	return time.Since(t0) // want `wall-clock read time\.Since`
}

// PureTimeValues shows that value-only helpers from "time" stay legal.
func PureTimeValues() time.Time {
	d := 3 * time.Second
	_ = d.Seconds()
	return time.Unix(0, 0)
}

// Draw exercises the global math/rand source.
func Draw() float64 {
	n := rand.Intn(10) // want `global rand\.Intn in simulation-deterministic package "rd"`
	_ = n
	rand.Shuffle(4, func(i, j int) {}) // want `global rand\.Shuffle`
	return rand.Float64()              // want `global rand\.Float64`
}

// SeededDraw is the sanctioned idiom: an explicitly seeded generator.
func SeededDraw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Annotated shows the escape hatch with a justification.
func Annotated() time.Time {
	//heterolint:allow wallclock perf harness timestamps the report header only
	return time.Now()
}

// AnnotatedSameLine suppresses on the offending line itself.
func AnnotatedSameLine() time.Time {
	return time.Now() //heterolint:allow wallclock report header timestamp, never enters simulated state
}

// MissingReason shows that a bare annotation is itself a finding.
func MissingReason() time.Time {
	//heterolint:allow wallclock // want `needs a justification`
	return time.Now()
}

// stale annotation with nothing beneath it:
//
//heterolint:allow wallclock nothing here reads the clock // want `unused //heterolint:allow wallclock`
func Stale() int { return 1 }
