package maporder_test

import (
	"testing"

	"heterohpc/internal/analysis/analysistest"
	"heterohpc/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "../testdata", maporder.Analyzer, "collect")
}
