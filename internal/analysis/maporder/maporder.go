// Package maporder flags range-over-map loops whose iteration order can
// leak into deterministic output — the classic source of golden-file
// nondeterminism. Go randomizes map iteration on purpose; any loop that
// writes to an ordered sink (an io.Writer, an encoder, a collected slice
// that is never sorted) or returns the first match it happens to visit
// produces output that differs run to run.
//
// Recognized benign shapes are not flagged:
//
//   - collect-then-launder: keys appended to a slice that is afterwards
//     passed to any call (sort.Strings, sort.Slice, a helper that sorts) —
//     the standard deterministic-iteration idiom;
//   - unique-match lookup: a return guarded by an equality test against the
//     loop key, where at most one iteration can fire;
//   - order-independent writes: stores into another map or per-key indexed
//     slots.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"heterohpc/internal/analysis"
)

// Analyzer is the maporder checker.
var Analyzer = &analysis.Analyzer{
	Name:         "maporder",
	AllowKeyword: "maporder",
	Doc: `flag map iteration whose order leaks into ordered output

A range over a map that writes to an io.Writer/encoder, appends to a slice
that is never handed to a sorting (or any other) call, or returns a
loop-dependent value on the first match, produces run-to-run nondeterminism.
Sort the keys first, or suppress with //heterolint:allow maporder <why>.`,
	Run: run,
}

// serializeMethods are method names whose calls emit bytes in call order.
var serializeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// fprintFuncs are fmt functions whose first argument is the stream.
var fprintFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// printFuncs are fmt functions that write to process stdout, which always
// lives outside the loop.
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Function bodies, innermost-last, so a range statement can be
		// matched to the tightest enclosing function for post-loop analysis.
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapRange(pass, rs) {
				return true
			}
			checkMapRange(pass, rs, enclosingBody(bodies, rs))
			return true
		})
	}
	return nil, nil
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingBody returns the smallest collected function body containing n.
func enclosingBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	checkSerializeSinks(pass, rs)
	checkFirstMatchReturns(pass, rs)
	checkUnsortedAppends(pass, rs, encl)
}

// checkSerializeSinks flags calls inside the loop body that emit bytes to a
// stream living outside the loop.
func checkSerializeSinks(pass *analysis.Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			// fmt.Fprintf(w, ...) / fmt.Printf(...)
			if pn, ok := pass.TypesInfo.Uses[rootIdent(sel.X)].(*types.PkgName); ok {
				if pn.Imported().Path() == "fmt" {
					switch {
					case fprintFuncs[sel.Sel.Name]:
						// Fprint* with a stream declared inside the loop
						// body is per-iteration scratch, not an ordered sink.
						if len(call.Args) > 0 && declaredWithin(pass, rootIdent(call.Args[0]), rs) {
							return true
						}
						pass.Reportf(call.Pos(),
							"map iteration order leaks into fmt.%s output; iterate sorted keys instead",
							sel.Sel.Name)
					case printFuncs[sel.Sel.Name]:
						pass.Reportf(call.Pos(),
							"map iteration order leaks into fmt.%s output; iterate sorted keys instead",
							sel.Sel.Name)
					}
				}
				return true
			}
			// w.Write(...), b.WriteString(...), enc.Encode(...)
			if serializeMethods[sel.Sel.Name] {
				if declaredWithin(pass, rootIdent(sel.X), rs) {
					return true
				}
				pass.Reportf(call.Pos(),
					"map iteration order leaks into %s call on a stream declared outside the loop; iterate sorted keys instead",
					sel.Sel.Name)
			}
		}
		return true
	})
}

// checkFirstMatchReturns flags returns inside the loop whose value depends
// on which iteration the runtime happened to visit first.
func checkFirstMatchReturns(pass *analysis.Pass, rs *ast.RangeStmt) {
	keyObj := rangeVarObj(pass, rs.Key)
	var walk func(n ast.Stmt, guarded bool)
	walkAll := func(list []ast.Stmt, guarded bool) {
		for _, s := range list {
			walk(s, guarded)
		}
	}
	walk = func(n ast.Stmt, guarded bool) {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			if guarded {
				return
			}
			for _, res := range s.Results {
				if dependsOnLoop(pass, res, rs) {
					pass.Reportf(s.Pos(),
						"return inside map iteration picks whichever entry the runtime visits first; iterate sorted keys for a deterministic result")
					return
				}
			}
		case *ast.IfStmt:
			g := guarded || isUniqueKeyGuard(pass, s.Cond, keyObj, rs)
			walk(s.Body, g)
			if s.Else != nil {
				walk(s.Else, guarded)
			}
		case *ast.BlockStmt:
			walkAll(s.List, guarded)
		case *ast.ForStmt:
			walk(s.Body, guarded)
		case *ast.RangeStmt:
			// A nested map range gets its own top-level check.
			if !isMapRange(pass, s) {
				walk(s.Body, guarded)
			}
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkAll(cc.Body, guarded)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkAll(cc.Body, guarded)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkAll(cc.Body, guarded)
				}
			}
		case *ast.LabeledStmt:
			walk(s.Stmt, guarded)
		}
	}
	walk(rs.Body, false)
}

// isUniqueKeyGuard reports whether cond contains an equality test between
// the loop key and a value from outside the loop — the "find this one
// entry" shape, where at most one iteration can match.
func isUniqueKeyGuard(pass *analysis.Pass, cond ast.Expr, keyObj types.Object, rs *ast.RangeStmt) bool {
	if keyObj == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL {
			return true
		}
		l, r := pass.TypesInfo.ObjectOf(rootIdent(be.X)), pass.TypesInfo.ObjectOf(rootIdent(be.Y))
		if (l == keyObj && !objWithin(r, rs)) || (r == keyObj && !objWithin(l, rs)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkUnsortedAppends flags appends to an outer slice whose contents are
// never laundered through a later call (sorting or otherwise).
func checkUnsortedAppends(pass *analysis.Pass, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	collected := map[types.Object]token.Pos{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs := rootIdent(as.Lhs[0])
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if obj == nil || objWithin(obj, rs) {
			return true
		}
		// Appending order-independent content (e.g. the same constant per
		// iteration) is still nondeterministic in general; keep it simple
		// and record every outer-slice append.
		if _, seen := collected[obj]; !seen {
			collected[obj] = as.Pos()
		}
		return true
	})
	if len(collected) == 0 || encl == nil {
		return
	}
	for obj, pos := range collected {
		if laundered(pass, obj, rs, encl) {
			continue
		}
		pass.Reportf(pos,
			"%s collects map entries in iteration order and is never passed to a sorting call; sort it (or the keys) before use",
			obj.Name())
	}
}

// laundered reports whether obj is passed as an argument to any call after
// the range statement within the enclosing function — the collect-then-sort
// idiom (the callee is assumed to impose an order; sort.Strings, sort.Slice
// and package-local helpers like (*Local).finish all take this shape).
func laundered(pass *analysis.Pass, obj types.Object, rs *ast.RangeStmt, encl *ast.BlockStmt) bool {
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found || n == nil || n.End() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if pass.TypesInfo.ObjectOf(rootIdent(arg)) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// dependsOnLoop reports whether expr references anything declared inside
// the range statement (the loop variables or body-local values).
func dependsOnLoop(pass *analysis.Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	dep := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.ObjectOf(id); objWithin(obj, rs) {
			dep = true
			return false
		}
		return true
	})
	return dep
}

// rangeVarObj resolves a range key/value expression to its object, or nil
// for `_`, nil, or non-identifier forms.
func rangeVarObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// objWithin reports whether obj is declared inside the range statement.
func objWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
}

// declaredWithin reports whether id resolves to an object declared inside
// the range statement. A nil id counts as outside (conservative: flag).
func declaredWithin(pass *analysis.Pass, id *ast.Ident, rs *ast.RangeStmt) bool {
	if id == nil {
		return false
	}
	return objWithin(pass.TypesInfo.ObjectOf(id), rs)
}

// rootIdent unwraps selectors, indexing, unary ops and parens down to the
// leftmost identifier: cw in cw.n, &b in fmt.Fprintf(&b, …), s in s[i].
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
