package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is one unit of analyzer knowledge about a package-level object or
// a whole package, produced while analyzing the package that defines the
// subject and consumed by the same analyzer's later runs over downstream
// packages. Implementations must be JSON-serializable struct pointers and
// appear in their analyzer's FactTypes.
//
// Unlike golang.org/x/tools (which names objects with go/types/objectpath),
// facts here are keyed by a flat string — "F" for a package-level object,
// "T.M" for a method — which covers every subject the heterolint analyzers
// care about while staying stdlib-only.
type Fact interface {
	// AFact marks the type as a fact implementation.
	AFact()
}

// ObjectKey names a package-level object inside its package: "F" for a
// package-level func/var/type/const, "T.M" for method M of named type T.
// Objects that are not package-level (locals, parameters, struct fields)
// have no key and return "".
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return obj.Name()
}

type factKey struct {
	analyzer string
	pkg      string
	object   string // "" = package fact
}

// FactStore holds the facts visible to one unit of analysis: facts decoded
// from dependency .vetx files plus facts exported by the current run. One
// store is shared by all analyzers of a unit; entries are namespaced by
// analyzer name.
type FactStore struct {
	// factTypes maps "analyzer/TypeName" to the registered concrete type,
	// for decoding.
	factTypes map[string]reflect.Type
	m         map[factKey]Fact
}

// NewFactStore returns an empty store with the given analyzers' fact types
// registered for decoding.
func NewFactStore(analyzers ...*Analyzer) *FactStore {
	s := &FactStore{factTypes: map[string]reflect.Type{}, m: map[factKey]Fact{}}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			if validateFactType(f) == nil {
				s.factTypes[a.Name+"/"+reflect.TypeOf(f).Elem().Name()] = reflect.TypeOf(f)
			}
		}
	}
	return s
}

func validateFactType(f Fact) error {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("fact type %T is not a struct pointer", f)
	}
	return nil
}

// set stores a copy of fact under (analyzer, pkg, object). The copy
// decouples the store from later analyzer-side mutation.
func (s *FactStore) set(analyzer, pkg, object string, fact Fact) error {
	if err := validateFactType(fact); err != nil {
		return err
	}
	name := analyzer + "/" + reflect.TypeOf(fact).Elem().Name()
	if _, ok := s.factTypes[name]; !ok {
		return fmt.Errorf("fact type %T is not declared in analyzer %s's FactTypes", fact, analyzer)
	}
	cp := reflect.New(reflect.TypeOf(fact).Elem())
	cp.Elem().Set(reflect.ValueOf(fact).Elem())
	s.m[factKey{analyzer, pkg, object}] = cp.Interface().(Fact)
	return nil
}

// get copies the stored fact for (analyzer, pkg, object) into dst and
// reports whether one of dst's concrete type was found.
func (s *FactStore) get(analyzer, pkg, object string, dst Fact) bool {
	f, ok := s.m[factKey{analyzer, pkg, object}]
	if !ok || reflect.TypeOf(f) != reflect.TypeOf(dst) {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// factRecord is the serialized form of one fact.
type factRecord struct {
	Analyzer string          `json:"a"`
	Pkg      string          `json:"p"`
	Object   string          `json:"o,omitempty"`
	Type     string          `json:"t"` // fact type name within the analyzer
	Data     json.RawMessage `json:"d"`
}

// Encode serializes every fact in the store — the current package's and the
// inherited ones — in a deterministic order. The closure is re-exported
// whole because the unitchecker protocol hands each unit only its direct
// dependencies' .vetx files: transitive facts must ride along.
func (s *FactStore) Encode() ([]byte, error) {
	// Sort the keys before marshalling so both the record order and any
	// marshal failure (which aborts the encode) are deterministic.
	keys := make([]factKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		if a.pkg != b.pkg {
			return a.pkg < b.pkg
		}
		return a.object < b.object
	})
	recs := make([]factRecord, 0, len(keys))
	for _, k := range keys {
		f := s.m[k]
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("analysis: encode fact %T for %s.%s: %v", f, k.pkg, k.object, err)
		}
		recs = append(recs, factRecord{
			Analyzer: k.analyzer,
			Pkg:      k.pkg,
			Object:   k.object,
			Type:     reflect.TypeOf(f).Elem().Name(),
			Data:     data,
		})
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode merges serialized facts into the store. Records whose fact type is
// not registered (an analyzer that no longer exists, or a newer format) are
// skipped: stale cache entries must degrade to "no facts", not to a failed
// build.
func (s *FactStore) Decode(data []byte) error {
	var recs []factRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return fmt.Errorf("analysis: decode facts: %v", err)
	}
	for _, r := range recs {
		t, ok := s.factTypes[r.Analyzer+"/"+r.Type]
		if !ok {
			continue
		}
		f := reflect.New(t.Elem()).Interface().(Fact)
		if err := json.Unmarshal(r.Data, f); err != nil {
			continue
		}
		s.m[factKey{r.Analyzer, r.Pkg, r.Object}] = f
	}
	return nil
}

// Len reports the number of stored facts (test support).
func (s *FactStore) Len() int { return len(s.m) }
