package worldconsume_test

import (
	"testing"

	"heterohpc/internal/analysis/analysistest"
	"heterohpc/internal/analysis/worldconsume"
)

func TestWorldconsume(t *testing.T) {
	analysistest.Run(t, "../testdata", worldconsume.Analyzer, "elastic")
}
