// Package worldconsume flags uses of an mp.World after it has been passed
// through a consuming reshape call. Shrink, ShrinkNodes and Grow tear down
// the receiver's barrier generation and hand back a fresh *World; the old
// value is poisoned by contract (mp documents it as consumed), but nothing
// at runtime stops a caller from Send-ing on it — the bug surfaces as a
// deadlocked barrier or a message routed to a dead rank, deep inside a
// fault-storm replay. The analyzer enforces the contract statically: after
// `nw := w.Shrink()`, any later use of `w` (or `af.World`, for selector
// receivers) in straight-line code is a diagnostic until the variable is
// reassigned.
//
// The scan is deliberately flow-light: it walks statements *after* the
// consuming call in the same block, ascending only through unconditional
// blocks. A use in a sibling branch (else-arm, other case) is not flagged —
// the contract there depends on which path executed, and the analyzer
// never guesses. Test files are skipped: mp's own tests consume worlds
// twice on purpose to prove the panic.
package worldconsume

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"heterohpc/internal/analysis"
)

// Analyzer is the worldconsume checker.
var Analyzer = &analysis.Analyzer{
	Name:         "worldconsume",
	AllowKeyword: "worldconsume",
	Doc: `flag uses of an mp.World after Shrink/ShrinkNodes/Grow consumed it

Reshape calls invalidate their receiver and return the world to keep using;
touching the old value afterwards races a torn-down barrier generation.
Reassigning the variable (w = nw) ends the poisoned window. Deliberate
double-consumes (panic tests live in _test.go files, which are skipped)
carry //heterolint:allow worldconsume <why>.`,
	Run: run,
}

// consumingMethods invalidate their *mp.World receiver.
var consumingMethods = map[string]bool{"Shrink": true, "ShrinkNodes": true, "Grow": true}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil, nil
}

// consumption is one consuming call with the ancestor chain that leads to
// it (outermost first, starting at the function body).
type consumption struct {
	call   *ast.CallExpr
	method string
	base   types.Object // object of the receiver path's base identifier
	fields []string     // selector fields after the base ("af.World" -> ["World"])
	chain  []ast.Node
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var stack []ast.Node
	var found []consumption
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !consumingMethods[sel.Sel.Name] {
			return true
		}
		if !isWorld(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		base, fields, ok := receiverPath(pass, sel.X)
		if !ok {
			return true
		}
		found = append(found, consumption{
			call:   call,
			method: sel.Sel.Name,
			base:   base,
			fields: fields,
			chain:  append([]ast.Node(nil), stack...),
		})
		return true
	})
	for _, c := range found {
		scanAfter(pass, c)
	}
}

// isWorld reports whether t is mp.World or a pointer to it.
func isWorld(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "World" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "mp" || strings.HasSuffix(path, "/mp")
}

// receiverPath flattens a receiver expression into (base object, field
// names): `w` -> (w, nil), `af.World` -> (af, ["World"]). Receivers that
// are not a plain identifier-rooted selector chain (calls, index exprs)
// are not trackable.
func receiverPath(pass *analysis.Pass, e ast.Expr) (types.Object, []string, bool) {
	var fields []string
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				return nil, nil, false
			}
			// Reverse: fields were collected innermost-first.
			for i, j := 0, len(fields)-1; i < j; i, j = i+1, j-1 {
				fields[i], fields[j] = fields[j], fields[i]
			}
			return obj, fields, true
		case *ast.SelectorExpr:
			fields = append(fields, x.Sel.Name)
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, nil, false
		}
	}
}

// scanAfter walks the statements that execute unconditionally after the
// consuming call and reports the first use of the consumed path, stopping
// at a reassignment or a control-flow boundary.
func scanAfter(pass *analysis.Pass, c consumption) {
	// `w = w.Shrink()` consumes and reassigns in one statement: the old
	// value is dead but the name already holds the replacement, so there is
	// no poisoned window to scan.
	for _, n := range c.chain {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if killsPath(pass, lhs, c.base, c.fields) {
					return
				}
			}
		}
	}
	// Walk the ancestor chain innermost-out. For each statement-list
	// container (BlockStmt, CaseClause, CommClause), scan the statements
	// after the one holding the call; then keep ascending only while the
	// container sits in unconditionally-executed context.
	for i := len(c.chain) - 1; i >= 0; i-- {
		var list []ast.Stmt
		var boundary bool // container ends the unconditional region
		switch n := c.chain[i].(type) {
		case *ast.BlockStmt:
			list = n.List
			// A block is unconditional only when its parent is another
			// statement list or a labeled statement; if/for/switch/func
			// bodies end the region after their own statements are scanned.
			// The function body itself (chain root) is where the scan ends.
			if i == 0 {
				boundary = true
			} else {
				switch c.chain[i-1].(type) {
				case *ast.BlockStmt, *ast.LabeledStmt, *ast.CaseClause, *ast.CommClause:
				default:
					boundary = true
				}
			}
		case *ast.CaseClause:
			list = n.Body
			boundary = true // the enclosing switch is a branch point
		case *ast.CommClause:
			list = n.Body
			boundary = true
		default:
			continue
		}
		after := stmtsAfter(list, c.chain[i+1:])
		for _, s := range after {
			pos, used, killed := scanStmt(pass, s, c.base, c.fields)
			if used {
				pass.Reportf(pos, "%s is used after %s consumed it; the reshape invalidates its receiver — use the returned *World",
					pathString(c.base, c.fields), c.method)
				return
			}
			if killed {
				return
			}
		}
		if boundary {
			return
		}
	}
}

// stmtsAfter returns the statements of list that follow the one containing
// the call (identified by the ancestor chain below this container).
func stmtsAfter(list []ast.Stmt, below []ast.Node) []ast.Stmt {
	if len(below) == 0 {
		return nil
	}
	for i, s := range list {
		if s == below[0] {
			return list[i+1:]
		}
	}
	return nil
}

// scanStmt looks through one statement for a use or kill of the tracked
// path. Assignment right-hand sides are scanned as uses before the
// left-hand side can kill: `w = w.Grow(...)` would flag the RHS use only
// if Grow's receiver weren't the consuming call itself, while `w = nw`
// cleanly ends tracking.
func scanStmt(pass *analysis.Pass, s ast.Stmt, base types.Object, fields []string) (token.Pos, bool, bool) {
	if as, ok := s.(*ast.AssignStmt); ok {
		for _, rhs := range as.Rhs {
			if pos, used := findUse(pass, rhs, base, fields); used {
				return pos, true, false
			}
		}
		for _, lhs := range as.Lhs {
			if killsPath(pass, lhs, base, fields) {
				return token.NoPos, false, true
			}
			if pos, used := findUse(pass, lhs, base, fields); used {
				// Writing *through* the consumed value (w.field = x) is
				// still a use of the dead world.
				return pos, true, false
			}
		}
		return token.NoPos, false, false
	}
	if pos, used := findUseInStmt(pass, s, base, fields); used {
		return pos, true, false
	}
	return token.NoPos, false, false
}

// killsPath reports whether lhs reassigns the tracked path or its base.
func killsPath(pass *analysis.Pass, lhs ast.Expr, base types.Object, fields []string) bool {
	b, f, ok := receiverPath(pass, lhs)
	if !ok || b != base {
		return false
	}
	if len(f) > len(fields) {
		return false // writes a deeper field; not a reassignment of the path
	}
	for i := range f {
		if f[i] != fields[i] {
			return false
		}
	}
	return true // assigns the path itself or a prefix (the whole base)
}

// findUseInStmt scans every expression inside s, except nested function
// literals are included deliberately: a closure capturing the dead world
// is exactly the leak the contract forbids.
func findUseInStmt(pass *analysis.Pass, s ast.Stmt, base types.Object, fields []string) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if p, used := findUse(pass, e, base, fields); used {
			pos, found = p, true
			return false
		}
		return true
	})
	return pos, found
}

// findUse reports whether e (or a subexpression) is exactly the tracked
// path.
func findUse(pass *analysis.Pass, e ast.Expr, base types.Object, fields []string) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		b, f, ok := receiverPath(pass, expr)
		if !ok || b != base || len(f) != len(fields) {
			return true
		}
		for i := range f {
			if f[i] != fields[i] {
				return true
			}
		}
		pos, found = expr.Pos(), true
		return false
	})
	return pos, found
}

func pathString(base types.Object, fields []string) string {
	s := base.Name()
	for _, f := range fields {
		s += "." + f
	}
	return s
}
