package detclock_test

import (
	"testing"

	"heterohpc/internal/analysis/analysistest"
	"heterohpc/internal/analysis/detclock"
)

func TestDetclock(t *testing.T) {
	analysistest.Run(t, "../testdata", detclock.Analyzer, "rd", "webui")
}
