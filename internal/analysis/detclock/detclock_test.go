package detclock_test

import (
	"testing"

	"heterohpc/internal/analysis/analysistest"
	"heterohpc/internal/analysis/detclock"
)

func TestDetclock(t *testing.T) {
	analysistest.Run(t, "../testdata", detclock.Analyzer, "rd", "webui")
}

// TestDetclockStaleAllowAcrossFiles pins the multi-file contract: a valid
// allow in one file must not mask a bare diagnostic in another, and a
// stale allow is reported no matter which file holds it.
func TestDetclockStaleAllowAcrossFiles(t *testing.T) {
	analysistest.Run(t, "../testdata", detclock.Analyzer, "fault")
}
