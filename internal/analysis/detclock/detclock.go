// Package detclock forbids wall-clock reads and process-seeded randomness
// in the packages whose behaviour must be a pure function of their inputs.
//
// The reproduction's crash/shrink recovery and checkpoint bytes are pinned
// to SHA-256 goldens under -race; a single time.Now or global rand.Intn in
// a simulated path turns those goldens flaky with no pointer to the
// offending line. This analyzer moves the rule from convention to the type
// checker: in simulation-deterministic packages, time must come from
// vclock.Clock and randomness from an explicitly seeded *rand.Rand.
package detclock

import (
	"go/ast"
	"go/types"
	"strings"

	"heterohpc/internal/analysis"
)

// Analyzer is the detclock checker.
var Analyzer = &analysis.Analyzer{
	Name:         "detclock",
	AllowKeyword: "wallclock",
	Doc: `forbid wall-clock and global math/rand use in simulation-deterministic packages

Packages ` + strings.Join(deterministicPkgs, ", ") + ` must derive all time
from the virtual clock and all randomness from a seeded *rand.Rand.
Suppress a deliberate exception with //heterolint:allow wallclock <why>.`,
	Run: run,
}

// deterministicPkgs are the final import-path segments of the packages
// whose outputs are golden-pinned: everything they compute must replay
// bit-identically from the same seed and fault plan.
var deterministicPkgs = []string{
	"mp", "vclock", "checkpoint", "bench", "fault", "spot", "rd", "nse", "obs",
	"partition", "trace", "triage",
}

// forbiddenTime are the "time" package functions that read or schedule
// against the machine clock. Pure-value helpers (time.Duration arithmetic,
// time.Unix construction) stay legal.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand are the math/rand package-level functions that construct an
// explicitly seeded generator rather than drawing from the process-global
// source — rand.New(rand.NewSource(seed)) is the sanctioned idiom.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewChaCha8": true, "NewPCG": true, // math/rand/v2 constructors
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !appliesTo(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName, ok := importedPkg(pass, sel.X)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if forbiddenTime[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"wall-clock read time.%s in simulation-deterministic package %q; use the virtual clock (vclock.Clock)",
						sel.Sel.Name, pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				// Package-level rand functions draw from the process-global
				// source; methods on an explicitly seeded *rand.Rand do not
				// go through a SelectorExpr whose X is the package name, so
				// they pass untouched, as do the generator constructors.
				if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFunc && !allowedRand[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"global %s.%s in simulation-deterministic package %q is seeded from process state; use an explicitly seeded *rand.Rand",
						pkgName.Imported().Name(), sel.Sel.Name, pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// appliesTo reports whether the import path's final segment is one of the
// deterministic packages. Matching on the segment (not the full path) lets
// the analysistest fixtures live under short paths while still pinning the
// real internal/<pkg> tree.
func appliesTo(path string) bool {
	seg := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		seg = path[i+1:]
	}
	for _, p := range deterministicPkgs {
		if seg == p {
			return true
		}
	}
	return false
}

// importedPkg resolves expr to the *types.PkgName it names, if it is a
// plain package qualifier.
func importedPkg(pass *analysis.Pass, expr ast.Expr) (*types.PkgName, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return pn, ok
}
