package vcharge_test

import (
	"testing"

	"heterohpc/internal/analysis/analysistest"
	"heterohpc/internal/analysis/vcharge"
)

func TestVcharge(t *testing.T) {
	analysistest.Run(t, "../testdata", vcharge.Analyzer, "sparse", "krylov", "calc")
}
