// Package vcharge flags exported functions in the metered packages
// (sparse, krylov, fem) that loop over floating-point data without a
// reachable compute charge. Virtual time is the reproduction's measurement
// instrument: a kernel that burns flops without calling ChargeCompute (or
// handing a Charger to a callee that does) silently under-reports the very
// platform differences the paper measures — the bug shows up as a puma run
// that looks faster than it should be, not as a test failure.
//
// Since v2 the reachability is transitive across packages: the analyzer
// exports a ChargesFact for every exported function or method that charges,
// and a caller in a downstream metered package inherits that knowledge
// through the fact store, so a krylov routine whose only charge is
// sparse.Axpy no longer needs an annotation. Constructors — functions named
// New* returning a pointer to a locally-defined type — are exempt: they run
// once at setup time, outside the measured solve loop.
package vcharge

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"heterohpc/internal/analysis"
)

// ChargesFact marks an exported function or method whose body reaches a
// compute charge, so calls to it from downstream metered packages count as
// charging without a local annotation.
type ChargesFact struct{}

// AFact marks ChargesFact as an analysis fact.
func (*ChargesFact) AFact() {}

// Analyzer is the vcharge checker.
var Analyzer = &analysis.Analyzer{
	Name:         "vcharge",
	AllowKeyword: "vcharge",
	FactTypes:    []analysis.Fact{(*ChargesFact)(nil)},
	Doc: `require metered packages to charge looped float work to the virtual clock

Exported functions in sparse, krylov and fem that run a loop doing float64
arithmetic must call ChargeCompute/ChargeComm, pass a Charger to a callee,
or call a helper — package-local or exported from another metered package —
that does (charging knowledge crosses package boundaries as facts).
Constructors (New* returning a pointer to a locally-defined type) are
setup-time and exempt. Deliberately uncharged helpers (exact solutions,
test support) carry //heterolint:allow vcharge <why>.`,
	Run: run,
}

// meteredPkgs are the final import-path segments whose compute is charged.
var meteredPkgs = []string{"sparse", "krylov", "fem"}

func run(pass *analysis.Pass) (interface{}, error) {
	if !appliesTo(pass.Pkg.Path()) {
		return nil, nil
	}
	chargerIface := findChargerInterface(pass.Pkg)

	// Package-local functions and methods, keyed by their *types.Func, with
	// a fixpoint over "calls a charging helper": Norm2Local charges because
	// DotLocal does, and DotLocal's cross-package analogue charges because
	// its defining package exported a ChargesFact for it.
	decls := map[*types.Func]*ast.FuncDecl{}
	var order []*types.Func
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
				order = append(order, obj)
			}
		}
	}
	charges := map[*types.Func]bool{}
	for _, obj := range order {
		if chargesDirectly(pass, decls[obj].Body, chargerIface) {
			charges[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			if charges[obj] {
				continue
			}
			if callsCharging(pass, decls[obj].Body, charges) {
				charges[obj] = true
				changed = true
			}
		}
	}

	// Publish what downstream metered packages may rely on: every exported
	// charging function or method with a stable object key.
	for _, obj := range order {
		if charges[obj] && obj.Exported() && analysis.ObjectKey(obj) != "" {
			pass.ExportObjectFact(obj, &ChargesFact{})
		}
	}

	for _, obj := range order {
		fn := decls[obj]
		if !fn.Name.IsExported() || charges[obj] {
			continue
		}
		if isConstructor(pass, fn) {
			continue
		}
		if _, found := computeLoop(pass, fn.Body); found {
			// Report at the declaration: the invariant is function-level,
			// and the //heterolint:allow annotation sits above the func.
			pass.Reportf(fn.Name.Pos(),
				"exported %s loops over float64 data with no reachable compute charge; thread a Charger through it so the work lands on the virtual clock",
				fn.Name.Name)
		}
	}
	return nil, nil
}

func appliesTo(path string) bool {
	seg := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		seg = path[i+1:]
	}
	for _, p := range meteredPkgs {
		if seg == p {
			return true
		}
	}
	return false
}

// isConstructor reports whether fn is a setup-time constructor: a function
// (not a method) named New* whose first result is a pointer to a named type
// defined in this package. Constructors assemble data structures before the
// measured solve begins; their loops are allocation, not compute.
func isConstructor(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv != nil || !strings.HasPrefix(fn.Name.Name, "New") {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return false
	}
	ptr, ok := sig.Results().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Pkg() == pass.Pkg
}

// findChargerInterface locates the Charger interface — in this package or
// any direct import — identified by name and a ChargeCompute method.
func findChargerInterface(pkg *types.Package) *types.Interface {
	scopes := []*types.Scope{pkg.Scope()}
	for _, imp := range pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, s := range scopes {
		obj := s.Lookup("Charger")
		if obj == nil {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "ChargeCompute" {
				return iface
			}
		}
	}
	return nil
}

// chargesDirectly reports whether body contains a Charge* method call or a
// call that hands a Charger-typed argument to its callee.
func chargesDirectly(pass *analysis.Pass, body *ast.BlockStmt, iface *types.Interface) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "ChargeCompute" || sel.Sel.Name == "ChargeComm" {
				found = true
				return false
			}
		}
		if iface != nil {
			for _, arg := range call.Args {
				t := pass.TypesInfo.TypeOf(arg)
				if t == nil {
					continue
				}
				if types.Implements(t, iface) || types.AssignableTo(t, iface) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// callsCharging reports whether body calls a function already known to
// charge: a package-local one from the fixpoint map, or a foreign one whose
// defining package exported a ChargesFact for it.
func callsCharging(pass *analysis.Pass, body *ast.BlockStmt, charges map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = pass.TypesInfo.Uses[fun]
		case *ast.SelectorExpr:
			callee = pass.TypesInfo.Uses[fun.Sel]
		}
		f, ok := callee.(*types.Func)
		if !ok {
			return true
		}
		if charges[f] {
			found = true
			return false
		}
		if f.Pkg() != nil && f.Pkg() != pass.Pkg {
			var fact ChargesFact
			if pass.ImportObjectFact(f, &fact) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// computeLoop finds a for/range loop whose body performs float64 arithmetic
// — a binary +,-,*,/ of float64 type, or a compound assign on a float64
// lvalue. Index bookkeeping and data copies do not count as compute.
func computeLoop(pass *analysis.Pass, body *ast.BlockStmt) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		default:
			return true
		}
		if floatArith(pass, loopBody) {
			pos, found = n.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}

func floatArith(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if isFloat64(pass.TypesInfo.TypeOf(e)) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			switch e.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(e.Lhs) == 1 && isFloat64(pass.TypesInfo.TypeOf(e.Lhs[0])) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func isFloat64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.UntypedFloat)
}
