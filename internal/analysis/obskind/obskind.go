// Package obskind guards the observability layer's journal contract. The
// obs run journal is the reproduction's ground truth — experiment diffs,
// CI comparisons and the paper's tables are all joins over (Kind, fields)
// records — so the invariants are about record shape, not behavior:
//
//   - Event literals list their fields in declared order. The journal is
//     both written and reviewed as a columnar log; a literal that jumbles
//     the columns reads as a different record in code review even though
//     it marshals identically. A suggested fix reorders the fields.
//   - a literal journal kind belongs to exactly one writer function per
//     package. Two writers sharing "halo" would merge distinct phenomena
//     into one time series and no test would notice.
//   - inside package obs, exported pointer-receiver methods start with a
//     nil-receiver guard. The entire obs API is documented nil-safe so
//     simulation code can emit unconditionally; one unguarded method turns
//     "observability disabled" into a crash.
//   - outside package obs, raw obs.Event literals are flagged: events flow
//     through the RunContext emit helpers, which stamp T and Rank and keep
//     the kind registry honest.
package obskind

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"heterohpc/internal/analysis"
)

// Analyzer is the obskind checker.
var Analyzer = &analysis.Analyzer{
	Name:         "obskind",
	AllowKeyword: "obskind",
	Doc: `keep obs journal records well-shaped: field order, unique kinds, nil-safe writers

obs.Event literals must list fields in declared order (fix available);
a literal Kind string may be emitted by only one function per package;
exported pointer-receiver methods of package obs must begin with a nil
receiver guard; packages other than obs must not build raw obs.Event
literals. Exceptions carry //heterolint:allow obskind <why>.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inObs := finalSegment(pass.Pkg.Path()) == "obs"
	kindWriter := map[string]string{} // literal kind -> first writer func
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if inObs {
				checkNilGuard(pass, fn)
			}
			funcName := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				st, named := eventStruct(pass, lit)
				if st == nil {
					return true
				}
				if !inObs {
					pass.Reportf(lit.Pos(),
						"raw %s literal outside package obs; emit through the RunContext helpers so T/Rank are stamped and the kind registry stays authoritative",
						named)
					return true
				}
				checkFieldOrder(pass, lit, st)
				if kind, ok := literalKind(lit); ok {
					if prev, seen := kindWriter[kind]; seen && prev != funcName {
						pass.Reportf(lit.Pos(),
							"journal kind %q is already emitted by %s; a kind identifies exactly one writer", kind, prev)
					} else if !seen {
						kindWriter[kind] = funcName
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

func finalSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// eventStruct resolves lit to the obs Event struct type, returning its
// struct layout and display name, or nil if lit is something else.
func eventStruct(pass *analysis.Pass, lit *ast.CompositeLit) (*types.Struct, string) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return nil, ""
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Event" || named.Obj().Pkg() == nil {
		return nil, ""
	}
	if finalSegment(named.Obj().Pkg().Path()) != "obs" {
		return nil, ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, ""
	}
	return st, "obs.Event"
}

// checkFieldOrder verifies the keyed fields of an Event literal appear in
// declared order and offers a reordering fix when they do not.
func checkFieldOrder(pass *analysis.Pass, lit *ast.CompositeLit, st *types.Struct) {
	idx := map[string]int{}
	for i := 0; i < st.NumFields(); i++ {
		idx[st.Field(i).Name()] = i
	}
	type elt struct {
		kv    *ast.KeyValueExpr
		index int
	}
	var elts []elt
	for _, e := range lit.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal: order is the declared order by construction
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return
		}
		i, ok := idx[key.Name]
		if !ok {
			return
		}
		elts = append(elts, elt{kv, i})
	}
	sorted := true
	for i := 1; i < len(elts); i++ {
		if elts[i].index < elts[i-1].index {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	d := analysis.Diagnostic{
		Pos:     lit.Pos(),
		Message: "obs.Event fields out of declared order; the journal reads as a columnar log — keep literals in struct order",
	}
	// Stable insertion sort by declared index keeps any equal-index
	// impossibility moot and the output deterministic.
	reordered := append([]elt(nil), elts...)
	for i := 1; i < len(reordered); i++ {
		for j := i; j > 0 && reordered[j].index < reordered[j-1].index; j-- {
			reordered[j], reordered[j-1] = reordered[j-1], reordered[j]
		}
	}
	var parts []string
	ok := true
	for _, e := range reordered {
		var sb strings.Builder
		if err := printer.Fprint(&sb, pass.Fset, e.kv); err != nil {
			ok = false
			break
		}
		parts = append(parts, sb.String())
	}
	if ok && len(elts) > 0 {
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message: "reorder fields to declared order",
			TextEdits: []analysis.TextEdit{{
				Pos:     elts[0].kv.Pos(),
				End:     elts[len(elts)-1].kv.End(),
				NewText: []byte(strings.Join(parts, ", ")),
			}},
		}}
	}
	pass.Report(d)
}

// literalKind extracts the constant string assigned to the Kind field, if
// the literal sets one.
func literalKind(lit *ast.CompositeLit) (string, bool) {
	for _, e := range lit.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Kind" {
			continue
		}
		bl, ok := kv.Value.(*ast.BasicLit)
		if !ok || bl.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(bl.Value)
		if err != nil {
			return "", false
		}
		return s, true
	}
	return "", false
}

// checkNilGuard requires exported pointer-receiver methods to open with a
// nil-receiver test (alone or as the first operand of a || chain).
func checkNilGuard(pass *analysis.Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Recv == nil || len(fn.Recv.List) == 0 {
		return
	}
	field := fn.Recv.List[0]
	if _, ok := field.Type.(*ast.StarExpr); !ok {
		return // value receiver: a nil pointer cannot reach it
	}
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return // receiver unnamed: the body cannot dereference it
	}
	recv := field.Names[0].Name
	recvObj := pass.TypesInfo.Defs[field.Names[0]]
	if len(fn.Body.List) > 0 {
		if ifs, ok := fn.Body.List[0].(*ast.IfStmt); ok && ifs.Init == nil {
			if condStartsWithNilCheck(pass, ifs.Cond, recvObj) {
				return
			}
		}
	}
	pass.Reportf(fn.Name.Pos(),
		"exported obs method %s has a pointer receiver but no leading nil guard; the obs API is documented nil-safe — start with 'if %s == nil'",
		fn.Name.Name, recv)
}

// condStartsWithNilCheck accepts `r == nil` and `r == nil || <anything>`
// (recursively, so `r == nil || x || y` parses left-associated and still
// matches).
func condStartsWithNilCheck(pass *analysis.Pass, cond ast.Expr, recv types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op == token.LOR {
		return condStartsWithNilCheck(pass, be.X, recv)
	}
	if be.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(be.X) && isNil(be.Y)) || (isRecv(be.Y) && isNil(be.X))
}
