package obskind_test

import (
	"testing"

	"heterohpc/internal/analysis/analysistest"
	"heterohpc/internal/analysis/obskind"
)

func TestObskind(t *testing.T) {
	analysistest.Run(t, "../testdata", obskind.Analyzer, "obs", "obsuser")
}

func TestObskindFixes(t *testing.T) {
	analysistest.RunFixes(t, "../testdata", obskind.Analyzer, "obs")
}
