package unitchecker_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetxFactFlow proves the facts round-trip through the real cmd/go
// protocol: it builds the heterolint binary, lays out a two-package module
// where the wrap that poisons a sentinel happens in the dependency, and
// asserts that `go vet -vettool` flags the identity comparison in the
// downstream package — which is only possible if the WrappedSentinel fact
// survived serialization into the dependency unit's .vetx file and
// deserialization in the consumer unit.
func TestVetxFactFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not found in PATH")
	}

	tmp := t.TempDir()
	tool := filepath.Join(tmp, "heterolint")
	build := exec.Command(goTool, "build", "-o", tool, "heterohpc/cmd/heterolint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building heterolint: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "mod")
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module factflow\n\ngo 1.22\n")
	write("pool/pool.go", `package pool

import (
	"errors"
	"fmt"
)

// ErrExhausted is wrapped below: the fact must reach importers.
var ErrExhausted = errors.New("exhausted")

// Acquire wraps the sentinel.
func Acquire(n int) error {
	if n <= 0 {
		return fmt.Errorf("acquire %d: %w", n, ErrExhausted)
	}
	return nil
}
`)
	write("user/user.go", `package user

import "factflow/pool"

// Drain compares by identity; only the imported fact makes this a finding.
func Drain(err error) bool {
	return err == pool.ErrExhausted
}
`)

	vet := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded; want errflow finding in user package\noutput:\n%s", out)
	}
	if !strings.Contains(string(out), "sentinel ErrExhausted may arrive wrapped") ||
		!strings.Contains(string(out), "user.go") {
		t.Fatalf("missing cross-package errflow diagnostic; output:\n%s", out)
	}

	// Second run exercises cmd/go's vet cache: the cached .vetx files must
	// decode to the same facts and reproduce the same finding.
	vet2 := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
	vet2.Dir = mod
	out2, err2 := vet2.CombinedOutput()
	if err2 == nil || !strings.Contains(string(out2), "sentinel ErrExhausted may arrive wrapped") {
		t.Fatalf("cached rerun lost the finding (err=%v); output:\n%s", err2, out2)
	}
}
