// Package unitchecker implements the cmd/go vet-tool protocol with nothing
// but the standard library, mirroring golang.org/x/tools/go/analysis/
// unitchecker. `go vet -vettool=heterolint` invokes the tool once per
// package with a JSON config file describing the unit: source files, the
// import map, and the export-data file for every dependency (already built
// by cmd/go). The tool parses and type-checks the unit with go/importer
// reading that export data, runs the analyzers, prints diagnostics, and
// writes the (empty — heterolint is fact-free) .vetx output cmd/go caches.
//
// The protocol surface:
//
//	heterolint -V=full        print a content-derived version (build cache key)
//	heterolint -flags         print the supported analyzer flags as JSON
//	heterolint file.cfg       analyze one unit (what cmd/go invokes)
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"heterohpc/internal/analysis"
)

// Config is the JSON unit description cmd/go writes to <objdir>/vet.cfg.
// Field names and meanings follow cmd/go/internal/work; unknown fields are
// ignored so the tool tolerates newer toolchains.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vet-tool binary wrapping the analyzers. It
// terminates the process.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	jsonOut := false
	var cfgFile string
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion(progname)
			os.Exit(0)
		case arg == "-V" || arg == "--V":
			fmt.Printf("%s version devel\n", progname)
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			// No analyzer flags: cmd/go uses this to validate user-passed
			// vet flags before running the tool.
			fmt.Println("[]")
			os.Exit(0)
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case arg == "help" || arg == "-h" || arg == "--help":
			usage(progname, analyzers)
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		default:
			log.Fatalf("unrecognized argument %q; invoke via go vet -vettool=%s", arg, progname)
		}
	}
	if cfgFile == "" {
		usage(progname, analyzers)
		os.Exit(1)
	}
	diags, err := Run(cfgFile, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		printJSON(os.Stdout, diags)
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Posn, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// printVersion emits the version line cmd/go's build-ID probe expects. The
// ID is derived from the binary's own content, so rebuilding heterolint
// with new analyzers invalidates cmd/go's cached vet results.
func printVersion(progname string) {
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		if exe, eerr := os.Executable(); eerr == nil {
			data, err = os.ReadFile(exe)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h[:12]))
}

func usage(progname string, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: machine-checks heterohpc's determinism, pooling and clock-charging invariants\n\n", progname)
	fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(command -v %s) ./...\n\nanalyzers:\n", progname)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
	}
}

// JSONDiagnostic is one finding in -json output.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

func printJSON(w io.Writer, diags []JSONDiagnostic) {
	tree := map[string][]JSONDiagnostic{}
	for _, d := range diags {
		tree[d.Analyzer] = append(tree[d.Analyzer], d)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(tree)
}

// Run analyzes the unit described by cfgFile and returns its diagnostics.
func Run(cfgFile string, analyzers []*analysis.Analyzer) ([]JSONDiagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err)
	}

	// cmd/go expects the facts output to exist even for units it only needs
	// facts from. Heterolint analyzers are fact-free, so it is empty — but
	// it must be written before any early return.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("heterolint\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not the import string.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	tc := &types.Config{
		Importer:    imp,
		Sizes:       types.SizesFor(cfg.Compiler, arch),
		FakeImportC: true,
	}
	if tc.Sizes == nil {
		tc.Sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	var out []JSONDiagnostic
	for _, a := range analyzers {
		diags, err := analysis.RunAnalyzer(a, fset, files, pkg, info)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			out = append(out, JSONDiagnostic{
				Analyzer: a.Name,
				Posn:     fset.Position(d.Pos).String(),
				Message:  d.Message,
			})
		}
	}
	return out, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
