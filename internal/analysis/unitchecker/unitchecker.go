// Package unitchecker implements the cmd/go vet-tool protocol with nothing
// but the standard library, mirroring golang.org/x/tools/go/analysis/
// unitchecker. `go vet -vettool=heterolint` invokes the tool once per
// package with a JSON config file describing the unit: source files, the
// import map, and the export-data file for every dependency (already built
// by cmd/go). The tool parses and type-checks the unit with go/importer
// reading that export data, runs the analyzers, prints diagnostics, and
// writes the .vetx output cmd/go caches.
//
// Since heterolint v2 the .vetx files carry serialized analyzer facts:
// each unit decodes the fact closure from its dependencies' .vetx files,
// runs the analyzers with those facts visible, and re-encodes the merged
// closure (inherited facts plus the unit's own exports) into its VetxOutput
// — cmd/go hands every unit only its direct dependencies' files, so the
// closure must ride along. Dependency units outside the requested patterns
// arrive with VetxOnly set; for those only the fact-producing analyzers
// run and their diagnostics are discarded.
//
// The protocol surface:
//
//	heterolint -V=full        print a content-derived version (build cache key)
//	heterolint -flags         print the supported analyzer flags as JSON
//	heterolint file.cfg       analyze one unit (what cmd/go invokes)
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"heterohpc/internal/analysis"
)

// vetxHeader introduces the facts section of a .vetx file. Files with any
// other first line (including PR-4's fact-free "heterolint\n" stamp) are
// treated as carrying no facts.
const vetxHeader = "heterolint.facts/v1"

// Config is the JSON unit description cmd/go writes to <objdir>/vet.cfg.
// Field names and meanings follow cmd/go/internal/work; unknown fields are
// ignored so the tool tolerates newer toolchains.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vet-tool binary wrapping the analyzers. It
// terminates the process.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	jsonOut := os.Getenv("HETEROLINT_JSON") == "1"
	var cfgFile string
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion(progname)
			os.Exit(0)
		case arg == "-V" || arg == "--V":
			fmt.Printf("%s version devel\n", progname)
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			// No analyzer flags: cmd/go uses this to validate user-passed
			// vet flags before running the tool.
			fmt.Println("[]")
			os.Exit(0)
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case arg == "help" || arg == "-h" || arg == "--help":
			usage(progname, analyzers)
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		default:
			log.Fatalf("unrecognized argument %q; invoke via go vet -vettool=%s", arg, progname)
		}
	}
	if cfgFile == "" {
		usage(progname, analyzers)
		os.Exit(1)
	}
	res, err := Run(cfgFile, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		printJSON(os.Stdout, res)
		os.Exit(0)
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Posn, d.Message, d.Analyzer)
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// printVersion emits the version line cmd/go's build-ID probe expects. The
// ID is derived from the binary's own content, so rebuilding heterolint
// with new analyzers invalidates cmd/go's cached vet results.
func printVersion(progname string) {
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		if exe, eerr := os.Executable(); eerr == nil {
			data, err = os.ReadFile(exe)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h[:12]))
}

func usage(progname string, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: machine-checks heterohpc's determinism, pooling and clock-charging invariants\n\n", progname)
	fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(command -v %s) ./...\n", progname)
	fmt.Fprintf(os.Stderr, "       %s -fix [-write] ./...   preview (or apply) suggested fixes\n\nanalyzers:\n", progname)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
	}
}

// Result is one unit's findings.
type Result struct {
	ImportPath  string
	Diagnostics []JSONDiagnostic
}

// JSONDiagnostic is one finding in -json output, following the upstream
// unitchecker schema (posn string, optional suggested_fixes).
type JSONDiagnostic struct {
	Analyzer       string             `json:"-"`
	Posn           string             `json:"posn"`
	Message        string             `json:"message"`
	SuggestedFixes []JSONSuggestedFix `json:"suggested_fixes,omitempty"`
}

// JSONSuggestedFix is one machine-applicable fix.
type JSONSuggestedFix struct {
	Message string         `json:"message"`
	Edits   []JSONTextEdit `json:"edits"`
}

// JSONTextEdit addresses a replacement by file and byte offsets, the form
// the -fix driver applies without re-parsing.
type JSONTextEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

// printJSON emits {"importpath": {"analyzer": [diags]}} like the upstream
// unitchecker, so drivers can stream-decode `go vet -json` output.
func printJSON(w io.Writer, res *Result) {
	tree := map[string]map[string][]JSONDiagnostic{res.ImportPath: {}}
	for _, d := range res.Diagnostics {
		tree[res.ImportPath][d.Analyzer] = append(tree[res.ImportPath][d.Analyzer], d)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(tree)
}

// Run analyzes the unit described by cfgFile and returns its diagnostics.
func Run(cfgFile string, analyzers []*analysis.Analyzer) (*Result, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err)
	}
	res := &Result{ImportPath: cfg.ImportPath}

	// cmd/go expects the facts output to exist even for units that fail to
	// typecheck, so a placeholder is written before any early return and
	// overwritten with the real fact closure after analysis.
	writeVetx := func(facts *analysis.FactStore) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		payload := []byte(vetxHeader + "\n")
		if facts != nil {
			enc, err := facts.Encode()
			if err != nil {
				return err
			}
			payload = append(payload, enc...)
		}
		return os.WriteFile(cfg.VetxOutput, payload, 0o666)
	}
	if err := writeVetx(nil); err != nil {
		return nil, err
	}

	// Facts-only units run just the fact-producing analyzers; their
	// diagnostics are discarded by cmd/go anyway.
	toRun := analyzers
	if cfg.VetxOnly {
		toRun = nil
		for _, a := range analyzers {
			if len(a.FactTypes) > 0 {
				toRun = append(toRun, a)
			}
		}
		if len(toRun) == 0 {
			return res, nil
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
				return res, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not the import string.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	tc := &types.Config{
		Importer:    imp,
		Sizes:       types.SizesFor(cfg.Compiler, arch),
		FakeImportC: true,
	}
	if tc.Sizes == nil {
		tc.Sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			return res, nil
		}
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	// Merge the fact closures of every dependency that has one. Unreadable
	// or legacy-format files degrade to "no facts": a stale cache entry
	// must never fail the build.
	facts := analysis.NewFactStore(analyzers...)
	for _, vetx := range sortedValues(cfg.PackageVetx) {
		raw, err := os.ReadFile(vetx)
		if err != nil {
			continue
		}
		body, ok := strings.CutPrefix(string(raw), vetxHeader+"\n")
		if !ok || len(strings.TrimSpace(body)) == 0 {
			continue
		}
		if err := facts.Decode([]byte(body)); err != nil {
			continue
		}
	}

	for _, a := range toRun {
		diags, err := analysis.RunAnalyzer(a, fset, files, pkg, info, facts)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		if cfg.VetxOnly {
			continue
		}
		for _, d := range diags {
			jd := JSONDiagnostic{
				Analyzer: a.Name,
				Posn:     fset.Position(d.Pos).String(),
				Message:  d.Message,
			}
			for _, sf := range d.SuggestedFixes {
				jsf := JSONSuggestedFix{Message: sf.Message}
				for _, te := range sf.TextEdits {
					posn := fset.Position(te.Pos)
					end := fset.Position(te.End)
					jsf.Edits = append(jsf.Edits, JSONTextEdit{
						Filename: posn.Filename,
						Start:    posn.Offset,
						End:      end.Offset,
						New:      string(te.NewText),
					})
				}
				jd.SuggestedFixes = append(jd.SuggestedFixes, jsf)
			}
			res.Diagnostics = append(res.Diagnostics, jd)
		}
	}
	if err := writeVetx(facts); err != nil {
		return nil, err
	}
	return res, nil
}

// sortedValues returns m's values ordered by key, so fact decoding (and
// any duplicate-key resolution) is deterministic across runs.
func sortedValues(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// The framework practices the determinism it preaches: no map-order
	// dependence in the merged fact store.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
