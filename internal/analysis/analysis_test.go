package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

type factA struct{ N int }

func (*factA) AFact() {}

type factB struct{ S string }

func (*factB) AFact() {}

// badFact is not a struct pointer when registered by value.
type badFact struct{}

func (badFact) AFact() {}

func mkAnalyzer(name, keyword string, facts ...Fact) *Analyzer {
	return &Analyzer{
		Name:         name,
		AllowKeyword: keyword,
		FactTypes:    facts,
		Run:          func(*Pass) (interface{}, error) { return nil, nil },
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name      string
		analyzers []*Analyzer
		wantErr   string
	}{
		{"ok distinct", []*Analyzer{mkAnalyzer("a", "ka"), mkAnalyzer("b", "kb")}, ""},
		{"ok empty keywords", []*Analyzer{mkAnalyzer("a", ""), mkAnalyzer("b", "")}, ""},
		{"empty name", []*Analyzer{mkAnalyzer("", "k")}, "empty name"},
		{"duplicate name", []*Analyzer{mkAnalyzer("a", "x"), mkAnalyzer("a", "y")}, "duplicate analyzer name"},
		{"no run", []*Analyzer{{Name: "a"}}, "has no Run"},
		{"duplicate keyword", []*Analyzer{mkAnalyzer("a", "shared"), mkAnalyzer("b", "shared")}, `share allow keyword "shared"`},
		{"bad fact type", []*Analyzer{mkAnalyzer("a", "", badFact{})}, "not a struct pointer"},
		{"ok facts", []*Analyzer{mkAnalyzer("a", "", (*factA)(nil), (*factB)(nil))}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.analyzers)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestApplyEdits(t *testing.T) {
	src := []byte("hello world")
	got, err := ApplyEdits(src, []Edit{
		{Start: 6, End: 11, New: []byte("edits")},
		{Start: 0, End: 5, New: []byte("bye")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "bye edits" {
		t.Fatalf("ApplyEdits = %q, want %q", got, "bye edits")
	}

	if _, err := ApplyEdits(src, []Edit{{Start: 0, End: 3, New: nil}, {Start: 2, End: 4, New: nil}}); err == nil {
		t.Fatal("overlapping edits: want error")
	}
	if _, err := ApplyEdits(src, []Edit{{Start: 5, End: 99, New: nil}}); err == nil {
		t.Fatal("out-of-range edit: want error")
	}

	// Pure insertion at one point applies once and in order.
	got, err = ApplyEdits([]byte("ab"), []Edit{{Start: 1, End: 1, New: []byte("X")}})
	if err != nil || string(got) != "aXb" {
		t.Fatalf("insertion = %q, %v", got, err)
	}
}

// typecheck compiles one synthetic package for object-key tests.
func typecheck(t *testing.T, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := new(types.Config).Check("example/p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestObjectKey(t *testing.T) {
	pkg := typecheck(t, `package p
type T struct{ F int }
func (t *T) M() {}
func (t T) V() {}
func F() {}
var X int
`)
	lookup := func(name string) types.Object { return pkg.Scope().Lookup(name) }
	if got := ObjectKey(lookup("F")); got != "F" {
		t.Errorf("func key = %q, want F", got)
	}
	if got := ObjectKey(lookup("X")); got != "X" {
		t.Errorf("var key = %q, want X", got)
	}
	named := lookup("T").Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		want := "T." + m.Name()
		if got := ObjectKey(m); got != want {
			t.Errorf("method key = %q, want %q", got, want)
		}
	}
	// A struct field is not package-level: no key.
	field := named.Underlying().(*types.Struct).Field(0)
	if got := ObjectKey(field); got != "" {
		t.Errorf("field key = %q, want empty", got)
	}
	if got := ObjectKey(nil); got != "" {
		t.Errorf("nil key = %q, want empty", got)
	}
}

func TestFactStoreRoundTrip(t *testing.T) {
	a1 := mkAnalyzer("alpha", "", (*factA)(nil))
	a2 := mkAnalyzer("beta", "", (*factB)(nil))
	s := NewFactStore(a1, a2)
	if err := s.set("alpha", "pkg/x", "F", &factA{N: 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.set("alpha", "pkg/x", "", &factA{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.set("beta", "pkg/y", "T.M", &factB{S: "hi"}); err != nil {
		t.Fatal(err)
	}
	// Unregistered fact types are rejected at set time.
	if err := s.set("alpha", "pkg/x", "G", &factB{}); err == nil {
		t.Fatal("set with undeclared fact type: want error")
	}

	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatal("Encode is not deterministic")
	}

	dst := NewFactStore(a1, a2)
	if err := dst.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 3 {
		t.Fatalf("decoded %d facts, want 3", dst.Len())
	}
	var fa factA
	if !dst.get("alpha", "pkg/x", "F", &fa) || fa.N != 7 {
		t.Fatalf("object fact round-trip: got %+v, found=%v", fa, dst.get("alpha", "pkg/x", "F", &fa))
	}
	if !dst.get("alpha", "pkg/x", "", &fa) || fa.N != 1 {
		t.Fatalf("package fact round-trip: got %+v", fa)
	}
	var fb factB
	if !dst.get("beta", "pkg/y", "T.M", &fb) || fb.S != "hi" {
		t.Fatalf("method fact round-trip: got %+v", fb)
	}
	// Wrong concrete type at get: not found, dst untouched.
	if dst.get("alpha", "pkg/x", "F", &fb) {
		t.Fatal("get with mismatched type: want not found")
	}

	// A store that does not know beta's fact type skips those records.
	partial := NewFactStore(a1)
	if err := partial.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if partial.Len() != 2 {
		t.Fatalf("partial decode kept %d facts, want 2", partial.Len())
	}

	// Garbage degrades to an error from Decode, not a panic.
	if err := dst.Decode([]byte("not json")); err == nil {
		t.Fatal("Decode(garbage): want error")
	}
}

// TestFactStoreCopies pins the isolation contract: mutating a fact after
// set (or the returned copy after get) must not leak into the store.
func TestFactStoreCopies(t *testing.T) {
	a := mkAnalyzer("alpha", "", (*factA)(nil))
	s := NewFactStore(a)
	f := &factA{N: 1}
	if err := s.set("alpha", "p", "F", f); err != nil {
		t.Fatal(err)
	}
	f.N = 99
	var out factA
	if !s.get("alpha", "p", "F", &out) || out.N != 1 {
		t.Fatalf("store leaked caller mutation: got %+v", out)
	}
	out.N = 42
	var again factA
	if !s.get("alpha", "p", "F", &again) || again.N != 1 {
		t.Fatalf("store leaked get-copy mutation: got %+v", again)
	}
}
