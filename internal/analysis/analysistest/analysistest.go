// Package analysistest runs an analyzer over GOPATH-style fixture packages
// under a testdata directory and checks its diagnostics against // want
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line carries its expectation in a trailing comment:
//
//	t := time.Now() // want `wall-clock read`
//
// Each backquoted or double-quoted token after "want" is a regular
// expression that must match exactly one diagnostic reported on that line;
// diagnostics without a matching expectation (and expectations without a
// matching diagnostic) fail the test. Fixture packages are type-checked
// from source with GOPATH pointed at testdata, so fixtures may import both
// sibling fixture packages and the standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"heterohpc/internal/analysis"
)

// Run applies the analyzer to each fixture package (an import path under
// testdata/src) and reports expectation mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	// The source importer resolves through go/build's default context;
	// point it at the fixture tree for the duration of the run.
	oldGOPATH := build.Default.GOPATH
	build.Default.GOPATH = abs
	defer func() { build.Default.GOPATH = oldGOPATH }()
	// Fixture imports resolve GOPATH-style; without this, go/build defers
	// to the module-aware `go list`, which cannot see testdata/src.
	for k, v := range map[string]string{"GOPATH": abs, "GO111MODULE": "off"} {
		old, had := os.LookupEnv(k)
		os.Setenv(k, v)
		k, old, had := k, old, had
		defer func() {
			if had {
				os.Setenv(k, old)
			} else {
				os.Unsetenv(k)
			}
		}()
	}

	for _, pkgPath := range pkgPaths {
		runOne(t, abs, a, pkgPath)
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", a.Name, dir)
	}

	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("%s: typecheck %s: %v", a.Name, pkgPath, err)
	}

	diags, err := analysis.RunAnalyzer(a, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	checkExpectations(t, a, fset, files, diags, pkgPath)
}

type lineKey struct {
	file string
	line int
}

type want struct {
	rx      *regexp.Regexp
	matched bool
}

// wantRx extracts the expectation tokens from a "// want …" comment tail.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

func checkExpectations(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic, pkgPath string) {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want")
				if idx < 0 {
					// A comment group's opening comment may itself be the
					// marker ("// want …" on its own line refers to itself).
					continue
				}
				tail := c.Text[idx+len("// want"):]
				posn := fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(tail, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: %s: bad want pattern %q: %v", a.Name, posn, pat, err)
					}
					k := lineKey{posn.Filename, posn.Line}
					wants[k] = append(wants[k], &want{rx: rx})
				}
			}
		}
	}

	var surplus []string
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		k := lineKey{posn.Filename, posn.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			surplus = append(surplus, fmt.Sprintf("%s: unexpected diagnostic: %s", posn, d.Message))
		}
	}
	var missing []string
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, w.rx))
			}
		}
	}
	sort.Strings(surplus)
	sort.Strings(missing)
	for _, s := range surplus {
		t.Errorf("%s [%s]: %s", pkgPath, a.Name, s)
	}
	for _, s := range missing {
		t.Errorf("%s [%s]: %s", pkgPath, a.Name, s)
	}
}
