// Package analysistest runs an analyzer over GOPATH-style fixture packages
// under a testdata directory and checks its diagnostics against // want
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line carries its expectation in a trailing comment:
//
//	t := time.Now() // want `wall-clock read`
//
// Each backquoted or double-quoted token after "want" is a regular
// expression that must match exactly one diagnostic reported on that line;
// diagnostics without a matching expectation (and expectations without a
// matching diagnostic) fail the test. Fixture packages are type-checked
// from source with GOPATH pointed at testdata, so fixtures may import both
// sibling fixture packages and the standard library.
//
// Sibling fixture imports resolve through a shared loader that analyzes
// the dependency first, so facts exported by the analyzer's run over the
// imported package are visible when the importing package is analyzed —
// the in-process mirror of the unitchecker's .vetx fact flow. Naming both
// packages in one Run checks diagnostics in both directions.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"heterohpc/internal/analysis"
)

// Run applies the analyzer to each fixture package (an import path under
// testdata/src) and reports expectation mismatches through t. Dependencies
// between fixture packages are analyzed in import order with a fact store
// shared across the whole run.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld, restore := newLoader(t, testdata, a)
	defer restore()
	for _, pkgPath := range pkgPaths {
		lp := ld.load(pkgPath)
		checkExpectations(t, a, ld.fset, lp.files, lp.diags, pkgPath)
	}
}

// RunFixes applies every suggested fix the analyzer reports on the fixture
// package and compares each changed file against a sibling <name>.golden
// file. Files the fixes leave untouched need no golden.
func RunFixes(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	ld, restore := newLoader(t, testdata, a)
	defer restore()
	lp := ld.load(pkgPath)

	byFile := map[string][]analysis.Edit{}
	for _, d := range lp.diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		// Like the -fix driver, apply the first fix of each diagnostic.
		for _, te := range d.SuggestedFixes[0].TextEdits {
			posn := ld.fset.Position(te.Pos)
			end := ld.fset.Position(te.End)
			byFile[posn.Filename] = append(byFile[posn.Filename], analysis.Edit{
				Start: posn.Offset, End: end.Offset, New: te.NewText,
			})
		}
	}
	if len(byFile) == 0 {
		t.Errorf("%s [%s]: no suggested fixes reported", pkgPath, a.Name)
		return
	}
	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		fixed, err := analysis.ApplyEdits(src, dedupeEdits(byFile[name]))
		if err != nil {
			t.Errorf("%s [%s]: %v", pkgPath, a.Name, err)
			continue
		}
		golden, err := os.ReadFile(name + ".golden")
		if err != nil {
			t.Errorf("%s [%s]: fixes changed %s but no golden: %v", pkgPath, a.Name, name, err)
			continue
		}
		if string(fixed) != string(golden) {
			t.Errorf("%s [%s]: fixed %s does not match %s.golden:\n-- got --\n%s", pkgPath, a.Name, name, name, fixed)
		}
	}
}

// dedupeEdits drops exact duplicates: two diagnostics in one file may both
// carry the same import-insertion edit, which must apply once.
func dedupeEdits(edits []analysis.Edit) []analysis.Edit {
	seen := map[string]bool{}
	var out []analysis.Edit
	for _, e := range edits {
		k := fmt.Sprintf("%d:%d:%s", e.Start, e.End, e.New)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}

// loader type-checks fixture packages with one shared FileSet, importer and
// fact store, analyzing each package exactly once in dependency order.
type loader struct {
	t        *testing.T
	testdata string
	fset     *token.FileSet
	analyzer *analysis.Analyzer
	std      types.Importer
	facts    *analysis.FactStore
	pkgs     map[string]*loadedPkg
	loading  map[string]bool // cycle detection
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	diags []analysis.Diagnostic
}

// newLoader builds a loader and points go/build's default context (and the
// process environment the source importer consults) at the fixture tree;
// the returned restore func undoes both.
func newLoader(t *testing.T, testdata string, a *analysis.Analyzer) (*loader, func()) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	oldGOPATH := build.Default.GOPATH
	build.Default.GOPATH = abs
	var undo []func()
	undo = append(undo, func() { build.Default.GOPATH = oldGOPATH })
	// Fixture imports resolve GOPATH-style; without this, go/build defers
	// to the module-aware `go list`, which cannot see testdata/src.
	for k, v := range map[string]string{"GOPATH": abs, "GO111MODULE": "off"} {
		old, had := os.LookupEnv(k)
		os.Setenv(k, v)
		k, old, had := k, old, had
		undo = append(undo, func() {
			if had {
				os.Setenv(k, old)
			} else {
				os.Unsetenv(k)
			}
		})
	}
	fset := token.NewFileSet()
	ld := &loader{
		t:        t,
		testdata: abs,
		fset:     fset,
		analyzer: a,
		std:      importer.ForCompiler(fset, "source", nil),
		facts:    analysis.NewFactStore(a),
		pkgs:     map[string]*loadedPkg{},
		loading:  map[string]bool{},
	}
	return ld, func() {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
	}
}

// Import resolves an import encountered while type-checking a fixture:
// sibling fixture packages load (and get analyzed) through the loader so
// object identity and facts are shared; everything else falls through to
// the standard source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path)); isDir(dir) {
		return ld.load(path).pkg, nil
	}
	return ld.std.Import(path)
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// load parses, type-checks and analyzes one fixture package, memoized.
func (ld *loader) load(pkgPath string) *loadedPkg {
	ld.t.Helper()
	if lp, ok := ld.pkgs[pkgPath]; ok {
		return lp
	}
	if ld.loading[pkgPath] {
		ld.t.Fatalf("%s: fixture import cycle through %q", ld.analyzer.Name, pkgPath)
	}
	ld.loading[pkgPath] = true
	defer delete(ld.loading, pkgPath)

	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("%s: %v", ld.analyzer.Name, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			ld.t.Fatalf("%s: %v", ld.analyzer.Name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.t.Fatalf("%s: no fixture files in %s", ld.analyzer.Name, dir)
	}

	tc := &types.Config{Importer: ld}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := tc.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("%s: typecheck %s: %v", ld.analyzer.Name, pkgPath, err)
	}
	diags, err := analysis.RunAnalyzer(ld.analyzer, ld.fset, files, pkg, info, ld.facts)
	if err != nil {
		ld.t.Fatalf("%s: %v", ld.analyzer.Name, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, diags: diags}
	ld.pkgs[pkgPath] = lp
	return lp
}

type lineKey struct {
	file string
	line int
}

type want struct {
	rx      *regexp.Regexp
	matched bool
}

// wantRx extracts the expectation tokens from a "// want …" comment tail.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

func checkExpectations(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic, pkgPath string) {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want")
				if idx < 0 {
					// A comment group's opening comment may itself be the
					// marker ("// want …" on its own line refers to itself).
					continue
				}
				tail := c.Text[idx+len("// want"):]
				posn := fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(tail, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: %s: bad want pattern %q: %v", a.Name, posn, pat, err)
					}
					k := lineKey{posn.Filename, posn.Line}
					wants[k] = append(wants[k], &want{rx: rx})
				}
			}
		}
	}

	var surplus []string
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		k := lineKey{posn.Filename, posn.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			surplus = append(surplus, fmt.Sprintf("%s: unexpected diagnostic: %s", posn, d.Message))
		}
	}
	var missing []string
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, w.rx))
			}
		}
	}
	sort.Strings(surplus)
	sort.Strings(missing)
	for _, s := range surplus {
		t.Errorf("%s [%s]: %s", pkgPath, a.Name, s)
	}
	for _, s := range missing {
		t.Errorf("%s [%s]: %s", pkgPath, a.Name, s)
	}
}
