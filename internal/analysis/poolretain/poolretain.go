// Package poolretain enforces the mp payload pool's ownership protocol
// (documented on f64Pool in internal/mp/pool.go): every in-flight f64
// payload is pool-owned; a buffer obtained from get is either handed to a
// mailbox inside a message value (ownership transfer), returned to the
// caller by a documented transfer point (RecvF64), or given back with put —
// after which it must never be touched again. Retaining a pooled buffer in
// a struct field, a package-level variable, or a goroutine closure aliases
// memory the pool will hand to the next sender, corrupting payloads in
// ways that only surface as golden mismatches much later.
package poolretain

import (
	"go/ast"
	"go/token"
	"go/types"

	"heterohpc/internal/analysis"
)

// Analyzer is the poolretain checker.
var Analyzer = &analysis.Analyzer{
	Name:         "poolretain",
	AllowKeyword: "poolretain",
	Doc: `enforce the mp payload pool's buffer-ownership protocol

Buffers from (*f64Pool).get and message.f64 payloads may be handed to a
mailbox inside a message value, returned to the application at a documented
transfer point, or recycled with put. Storing one in a field, a global, or
a goroutine closure — or touching it after put — aliases pool memory.
Suppress a deliberate exception with //heterolint:allow poolretain <why>.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() != "mp" {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	owned := pooledVars(pass, body)
	checkRetention(pass, body, owned)
	checkUseAfterPut(pass, body)
}

// pooledVars collects the objects of variables assigned directly from
// (*f64Pool).get.
func pooledVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	owned := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if !isPoolCall(pass, as.Rhs[0], "get") {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				owned[obj] = true
			}
		}
		return true
	})
	return owned
}

// checkRetention flags stores of pool-owned buffers into locations that
// outlive the documented buffer lifetime.
func checkRetention(pass *analysis.Pass, body *ast.BlockStmt, owned map[types.Object]bool) {
	if len(owned) == 0 {
		return
	}
	isOwned := func(e ast.Expr) (types.Object, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := pass.TypesInfo.ObjectOf(id)
		return obj, obj != nil && owned[obj]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				obj, ok := isOwned(rhs)
				if !ok || i >= len(s.Lhs) {
					continue
				}
				switch lhs := s.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pass.Reportf(s.Pos(),
						"pooled buffer %s stored into field %s outlives its pool lifetime; copy it or hand it off inside a message",
						obj.Name(), lhs.Sel.Name)
				case *ast.Ident:
					if v, isVar := pass.TypesInfo.ObjectOf(lhs).(*types.Var); isVar && v.Parent() == pass.Pkg.Scope() {
						pass.Reportf(s.Pos(),
							"pooled buffer %s stored into package-level variable %s outlives its pool lifetime",
							obj.Name(), lhs.Name)
					}
				}
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(s)
			if named, ok := derefNamed(t); ok && named.Obj().Name() == "message" && named.Obj().Pkg() == pass.Pkg {
				// The sanctioned handoff: a message literal carries the
				// buffer to the destination mailbox.
				return true
			}
			for _, elt := range s.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if obj, ok := isOwned(val); ok {
					pass.Reportf(val.Pos(),
						"pooled buffer %s retained inside a composite literal; only message values may carry pool-owned payloads",
						obj.Name())
				}
			}
		case *ast.GoStmt:
			ast.Inspect(s.Call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil && owned[obj] {
						pass.Reportf(id.Pos(),
							"pooled buffer %s captured by a goroutine escapes its pool lifetime",
							obj.Name())
					}
				}
				return true
			})
		}
		return true
	})
}

// checkUseAfterPut flags, within each statement list, any mention of a
// buffer after the statement that returned it to the pool. Sibling
// statements only: conditional put-then-return shapes are not flagged.
func checkUseAfterPut(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok || !isPoolCall(pass, es.X, "put") {
				continue
			}
			arg := es.X.(*ast.CallExpr).Args[0]
			for _, later := range block.List[i+1:] {
				if pos, found := firstMention(pass, later, arg); found {
					pass.Reportf(pos,
						"use of pooled buffer after put returned it to the pool; the pool may already have handed it to another sender")
					break
				}
			}
		}
		return true
	})
}

// firstMention finds the first reference inside stmt to the same buffer the
// put call released: the identical object for a plain identifier, or the
// same base object + field for a selector like m.f64.
func firstMention(pass *analysis.Pass, stmt ast.Stmt, putArg ast.Expr) (pos token.Pos, found bool) {
	switch a := putArg.(type) {
	case *ast.Ident:
		target := pass.TypesInfo.ObjectOf(a)
		if target == nil {
			return 0, false
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == target {
				pos, found = id.Pos(), true
				return false
			}
			return true
		})
	case *ast.SelectorExpr:
		base := pass.TypesInfo.ObjectOf(rootIdent(a.X))
		if base == nil {
			return 0, false
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != a.Sel.Name {
				return true
			}
			if pass.TypesInfo.ObjectOf(rootIdent(sel.X)) == base {
				pos, found = sel.Pos(), true
				return false
			}
			return true
		})
	}
	return pos, found
}

// isPoolCall reports whether expr is a call to the named method on the
// package's f64Pool type.
func isPoolCall(pass *analysis.Pass, expr ast.Expr, method string) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	named, ok := derefNamed(pass.TypesInfo.TypeOf(sel.X))
	return ok && named.Obj().Name() == "f64Pool" && named.Obj().Pkg() == pass.Pkg
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// rootIdent unwraps selectors and indexing down to the leftmost identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
