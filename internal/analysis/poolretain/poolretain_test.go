package poolretain_test

import (
	"testing"

	"heterohpc/internal/analysis/analysistest"
	"heterohpc/internal/analysis/poolretain"
)

func TestPoolretain(t *testing.T) {
	analysistest.Run(t, "../testdata", poolretain.Analyzer, "mp")
}
