// Package fault generates deterministic, seeded fault-injection plans for
// the platform models and classifies the failures they produce.
//
// The paper's experience is that heterogeneous targets fail in
// platform-specific ways: ellipse kills jobs above 512 ranks, lagrange
// aborts above 343 on an InfiniBand volume cap, and EC2 spot assemblies
// are "unpredictable" — "we never succeeded in establishing a full 63-host
// configuration of spot request instances". A Plan turns those experiences
// into reproducible experiments: node crashes at virtual times, EC2-style
// spot preemptions with a two-minute notice, and transient link
// degradation (straggler nodes), all drawn from a seeded stream so equal
// seeds give equal failure schedules. Plans arm the kill switches of
// internal/mp worlds; the supervisor in internal/bench consumes them.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"heterohpc/internal/mp"
	"heterohpc/internal/sched"
	"heterohpc/internal/stats"
)

// Kind is the failure mode of one planned event.
type Kind int

const (
	// KindCrash is an unannounced node failure (hardware, kernel, fabric).
	KindCrash Kind = iota
	// KindPreempt is an EC2 spot preemption: the market reclaims the
	// instance NoticeLeadS virtual seconds after issuing a notice.
	KindPreempt
	// KindDegrade is a transient link degradation / straggler window: the
	// node survives but its communication runs Factor× slower.
	KindDegrade
)

// String returns the report label of the kind.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindPreempt:
		return "preemption"
	case KindDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NoticeLeadS is the EC2 spot two-minute interruption notice, in virtual
// seconds.
const NoticeLeadS = 120.0

// Event is one planned failure.
type Event struct {
	Kind Kind
	// Node is the target node index within the job topology.
	Node int
	// At is the virtual time (seconds since job start) the failure takes
	// effect.
	At float64
	// NoticeAt is when the preemption notice is issued (At − NoticeLeadS,
	// clamped to 0). Zero-valued for other kinds.
	NoticeAt float64
	// Until ends a degradation window.
	Until float64
	// Factor is the degradation communication-time multiplier.
	Factor float64
}

// String renders the event for decision logs.
func (e Event) String() string {
	switch e.Kind {
	case KindPreempt:
		return fmt.Sprintf("preemption of node %d at t=%.1fs (notice at t=%.1fs)", e.Node, e.At, e.NoticeAt)
	case KindDegrade:
		return fmt.Sprintf("degrade node %d ×%.1f over t=[%.1fs,%.1fs)", e.Node, e.Factor, e.At, e.Until)
	default:
		return fmt.Sprintf("crash of node %d at t=%.1fs", e.Node, e.At)
	}
}

// Plan is a seeded failure schedule, sorted by At.
type Plan struct {
	Seed   uint64
	Events []Event
}

// Spec parameterises plan generation.
type Spec struct {
	// Seed drives every random draw; equal seeds give equal plans.
	Seed uint64
	// Nodes is the job's node count; event targets are drawn from it.
	Nodes int
	// Horizon is the virtual window (seconds) failures land in. Events are
	// placed in [0.05, 0.95]·Horizon so they neither fire before the first
	// checkpoint can exist nor after the run would have finished.
	Horizon float64
	// Crashes, Preemptions and Degradations count the events of each kind.
	Crashes      int
	Preemptions  int
	Degradations int
	// SpotNodes restricts preemptions to these node indices (the spot
	// slice of a mixed assembly); nil allows any node.
	SpotNodes []int
	// DegradeFactor is the straggler slow-down (default 4×).
	DegradeFactor float64
}

// New generates a deterministic plan from spec.
func New(spec Spec) (*Plan, error) {
	if spec.Nodes < 1 {
		return nil, fmt.Errorf("fault: plan over %d nodes", spec.Nodes)
	}
	if spec.Horizon <= 0 {
		return nil, fmt.Errorf("fault: non-positive horizon %v", spec.Horizon)
	}
	if spec.Crashes < 0 || spec.Preemptions < 0 || spec.Degradations < 0 {
		return nil, fmt.Errorf("fault: negative event count")
	}
	if spec.DegradeFactor == 0 {
		spec.DegradeFactor = 4
	}
	if spec.DegradeFactor <= 1 {
		return nil, fmt.Errorf("fault: degrade factor %v must exceed 1", spec.DegradeFactor)
	}
	for _, n := range spec.SpotNodes {
		if n < 0 || n >= spec.Nodes {
			return nil, fmt.Errorf("fault: spot node %d of %d", n, spec.Nodes)
		}
	}
	rng := stats.NewRNG(spec.Seed)
	at := func() float64 { return spec.Horizon * rng.Range(0.05, 0.95) }
	p := &Plan{Seed: spec.Seed}
	for i := 0; i < spec.Crashes; i++ {
		p.Events = append(p.Events, Event{Kind: KindCrash, Node: rng.Intn(spec.Nodes), At: at()})
	}
	for i := 0; i < spec.Preemptions; i++ {
		node := rng.Intn(spec.Nodes)
		if len(spec.SpotNodes) > 0 {
			node = spec.SpotNodes[rng.Intn(len(spec.SpotNodes))]
		}
		t := at()
		notice := t - NoticeLeadS
		if notice < 0 {
			notice = 0
		}
		p.Events = append(p.Events, Event{Kind: KindPreempt, Node: node, At: t, NoticeAt: notice})
	}
	for i := 0; i < spec.Degradations; i++ {
		from := at()
		p.Events = append(p.Events, Event{
			Kind: KindDegrade, Node: rng.Intn(spec.Nodes),
			At: from, Until: from + spec.Horizon*rng.Range(0.1, 0.3),
			Factor: spec.DegradeFactor,
		})
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p, nil
}

// Failures returns the fatal events (crashes and preemptions) in At order.
func (p *Plan) Failures() []Event {
	var out []Event
	for _, e := range p.Events {
		if e.Kind != KindDegrade {
			out = append(out, e)
		}
	}
	return out
}

// Degradations returns the non-fatal straggler windows.
func (p *Plan) Degradations() []Event {
	var out []Event
	for _, e := range p.Events {
		if e.Kind == KindDegrade {
			out = append(out, e)
		}
	}
	return out
}

// String renders the plan for reports.
func (p *Plan) String() string {
	if len(p.Events) == 0 {
		return fmt.Sprintf("fault plan (seed %d): no events", p.Seed)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan (seed %d):", p.Seed)
	for _, e := range p.Events {
		fmt.Fprintf(&b, "\n  %s", e)
	}
	return b.String()
}

// Arm schedules events on a world. Events targeting nodes beyond the
// world's topology are skipped (a degraded job has fewer nodes than the
// plan was drawn for); fatal events reuse the world's crash switch — a
// preemption and a crash differ in recovery handling, not in how the job
// dies.
func Arm(w *mp.World, events []Event) error {
	nnodes := w.Topology().NNodes()
	for _, e := range events {
		if e.Node >= nnodes {
			continue
		}
		var err error
		switch e.Kind {
		case KindCrash, KindPreempt:
			err = w.ScheduleNodeCrash(e.Node, e.At)
		case KindDegrade:
			err = w.ScheduleDegrade(e.Node, e.At, e.Until, e.Factor)
		default:
			err = fmt.Errorf("fault: unknown event kind %d", e.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Remap translates planned events into a renumbered node space — the
// survivor numbering a world shrink produces. nodeMap[old] gives the new
// node index, or -1 for a node that no longer exists; events aimed at
// vanished or out-of-range nodes are dropped. The input is not mutated.
func Remap(events []Event, nodeMap []int) []Event {
	var out []Event
	for _, e := range events {
		if e.Node < 0 || e.Node >= len(nodeMap) || nodeMap[e.Node] < 0 {
			continue
		}
		e.Node = nodeMap[e.Node]
		out = append(out, e)
	}
	return out
}

// Class is the supervisor's coarse failure classification, which decides
// the recovery strategy.
type Class int

const (
	// ClassNone: no failure.
	ClassNone Class = iota
	// ClassNodeLoss: a node died mid-run (crash or preemption) — restore
	// from checkpoint on replacement or surviving capacity.
	ClassNodeLoss
	// ClassCapacity: the platform refused to launch at this scale
	// (launcher limits, IB volume caps, machine size) — retrying the same
	// size is futile; degrade to fewer ranks.
	ClassCapacity
	// ClassResource: per-rank resources insufficient (memory) — also
	// unfixable by retry at the same shape.
	ClassResource
	// ClassApp: the application itself failed (solver divergence, bad
	// config) — not recoverable by the supervisor.
	ClassApp
)

// String returns the report label of the class.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassNodeLoss:
		return "node-loss"
	case ClassCapacity:
		return "capacity"
	case ClassResource:
		return "resource"
	case ClassApp:
		return "application"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classify maps an error from a run attempt to its recovery class.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, mp.ErrRankDead):
		return ClassNodeLoss
	case errors.Is(err, sched.ErrLaunchLimit),
		errors.Is(err, sched.ErrIBVolumeCap),
		errors.Is(err, sched.ErrTooLarge):
		return ClassCapacity
	case errors.Is(err, sched.ErrInsufficientMemory):
		return ClassResource
	default:
		return ClassApp
	}
}

// Backoff computes capped exponential backoff with deterministic jitter:
// attempt k waits min(Cap, Base·2ᵏ) scaled by a uniform [0.5, 1.5) draw
// from a seeded stream.
type Backoff struct {
	// BaseS is the first delay (seconds); CapS the ceiling.
	BaseS, CapS float64
	rng         *stats.RNG
	attempt     int
}

// NewBackoff returns a seeded backoff schedule.
func NewBackoff(baseS, capS float64, seed uint64) *Backoff {
	if baseS <= 0 {
		baseS = 15
	}
	if capS < baseS {
		capS = baseS * 16
	}
	return &Backoff{BaseS: baseS, CapS: capS, rng: stats.NewRNG(seed)}
}

// Next returns the next delay in seconds and advances the schedule.
func (b *Backoff) Next() float64 {
	d := b.BaseS
	for i := 0; i < b.attempt && d < b.CapS; i++ {
		d *= 2
	}
	if d > b.CapS {
		d = b.CapS
	}
	b.attempt++
	return d * b.rng.Range(0.5, 1.5)
}

// Reset restarts the schedule after a successful attempt (the jitter
// stream keeps advancing so retries stay decorrelated).
func (b *Backoff) Reset() { b.attempt = 0 }
