package fault

// Correlated fault storms. The single-event Spec models independent
// failures; real spot markets misbehave in correlated ways: a price spike
// outbids many instances at once, so their interruption notices land
// within one notice-lead window (a reclamation wave); the replacement
// acquired for a reclaimed slot is itself outbid before it settles (a
// cascade); and congestion degrades several links simultaneously (a
// straggler burst). NewStorm draws all three shapes from one seeded
// stream, so equal seeds give byte-equal storms.

import (
	"fmt"
	"sort"

	"heterohpc/internal/stats"
)

// StormSpec parameterises a correlated fault storm.
type StormSpec struct {
	// Seed drives every draw; equal seeds give equal storms.
	Seed uint64
	// Nodes is the job's node count; wave targets are drawn from it.
	Nodes int
	// Horizon is the virtual window (seconds) the storm lands in.
	Horizon float64
	// WaveSize is the number of distinct nodes whose preemption notices
	// arrive within one notice-lead window (≥ 2 — a wave of one is just a
	// lone preemption).
	WaveSize int
	// Cascades is the number of follow-up preemptions aimed at slots the
	// wave already hit, landing while their recovery is still in flight —
	// the replacement itself gets reclaimed.
	Cascades int
	// StragglerBursts is the number of correlated degradation windows: each
	// burst opens simultaneous straggler windows on several distinct nodes.
	StragglerBursts int
	// DegradeFactor is the burst slow-down (default 4×).
	DegradeFactor float64
	// SpotNodes restricts wave targets to these node indices (the spot
	// slice of a mixed assembly); nil allows any node.
	SpotNodes []int
}

// stormLead is the notice lead a storm uses: the EC2 two-minute lead,
// scaled down when the virtual horizon is too short to hold a full lead —
// benchmark-sized runs last seconds, and a storm whose notices clamp to
// t=0 would stop being proactive at all.
func stormLead(horizon float64) float64 {
	lead := NoticeLeadS
	if horizon < 2*lead {
		lead = 0.3 * horizon
	}
	return lead
}

// NewStorm generates a deterministic correlated storm plan from spec: one
// reclamation wave of WaveSize notices inside a single notice-lead window,
// Cascades follow-up preemptions re-targeting wave victims mid-recovery,
// and StragglerBursts simultaneous degradation windows. Events are sorted
// by effect time, like every Plan.
func NewStorm(spec StormSpec) (*Plan, error) {
	if spec.Nodes < 2 {
		return nil, fmt.Errorf("fault: storm over %d node(s); waves need at least 2", spec.Nodes)
	}
	if spec.Horizon <= 0 {
		return nil, fmt.Errorf("fault: non-positive storm horizon %v", spec.Horizon)
	}
	if spec.WaveSize < 2 {
		return nil, fmt.Errorf("fault: wave of %d; a storm needs at least 2 correlated notices (use Spec for lone events)", spec.WaveSize)
	}
	if spec.Cascades < 0 || spec.StragglerBursts < 0 {
		return nil, fmt.Errorf("fault: negative storm event count")
	}
	if spec.DegradeFactor == 0 {
		spec.DegradeFactor = 4
	}
	if spec.DegradeFactor <= 1 {
		return nil, fmt.Errorf("fault: degrade factor %v must exceed 1", spec.DegradeFactor)
	}
	targets := spec.SpotNodes
	if len(targets) == 0 {
		targets = make([]int, spec.Nodes)
		for i := range targets {
			targets[i] = i
		}
	}
	for _, n := range targets {
		if n < 0 || n >= spec.Nodes {
			return nil, fmt.Errorf("fault: spot node %d of %d", n, spec.Nodes)
		}
	}
	if spec.WaveSize > len(targets) {
		return nil, fmt.Errorf("fault: wave of %d over %d eligible node(s)", spec.WaveSize, len(targets))
	}
	if spec.WaveSize >= spec.Nodes {
		return nil, fmt.Errorf("fault: wave of %d over %d node(s); at least one node must survive the storm",
			spec.WaveSize, spec.Nodes)
	}

	rng := stats.NewRNG(spec.Seed)
	lead := stormLead(spec.Horizon)
	p := &Plan{Seed: spec.Seed}

	// The wave: WaveSize distinct victims drawn by a seeded partial
	// shuffle, their notices staggered inside the first 20% of one lead —
	// every notice arrives before the first reclaim, which is what makes
	// the events one correlated group rather than a sequence.
	victims := append([]int(nil), targets...)
	for i := 0; i < spec.WaveSize; i++ {
		j := i + rng.Intn(len(victims)-i)
		victims[i], victims[j] = victims[j], victims[i]
	}
	victims = victims[:spec.WaveSize]
	t0 := spec.Horizon * rng.Range(0.45, 0.6)
	notice := t0
	for _, v := range victims {
		p.Events = append(p.Events, Event{
			Kind: KindPreempt, Node: v, At: notice + lead, NoticeAt: notice,
		})
		notice += rng.Range(0, 0.2*lead/float64(spec.WaveSize))
	}

	// Cascades: the slot of a wave victim is hit again while the wave's
	// recovery is still inside its window — from the supervisor's side, the
	// replacement it just acquired for that slot is reclaimed mid-flight.
	for i := 0; i < spec.Cascades; i++ {
		v := victims[rng.Intn(len(victims))]
		n := t0 + lead*rng.Range(0.35, 0.6)
		p.Events = append(p.Events, Event{Kind: KindPreempt, Node: v, At: n + lead, NoticeAt: n})
	}

	// Straggler bursts: correlated congestion — up to three distinct nodes
	// degrade over the same window.
	for i := 0; i < spec.StragglerBursts; i++ {
		width := 3
		if width > spec.Nodes {
			width = spec.Nodes
		}
		burst := make([]int, spec.Nodes)
		for j := range burst {
			burst[j] = j
		}
		for j := 0; j < width; j++ {
			k := j + rng.Intn(len(burst)-j)
			burst[j], burst[k] = burst[k], burst[j]
		}
		from := spec.Horizon * rng.Range(0.05, 0.4)
		until := from + spec.Horizon*rng.Range(0.05, 0.15)
		for _, bn := range burst[:width] {
			p.Events = append(p.Events, Event{
				Kind: KindDegrade, Node: bn, At: from, Until: until, Factor: spec.DegradeFactor,
			})
		}
	}

	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p, nil
}
