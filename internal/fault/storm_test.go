package fault

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestStormDeterministicForEqualSeeds(t *testing.T) {
	spec := StormSpec{Seed: 42, Nodes: 8, Horizon: 600, WaveSize: 3, Cascades: 2, StragglerBursts: 1}
	p1, err := NewStorm(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewStorm(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("storms differ for equal seeds:\n%v\n%v", p1, p2)
	}
	if p1.String() != p2.String() {
		t.Fatal("equal-seed storms render differently")
	}
	spec.Seed = 43
	p3, err := NewStorm(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1.Events, p3.Events) {
		t.Fatal("different seeds produced identical storms")
	}
}

// TestStormShape pins the correlation structure: a wave is WaveSize
// distinct preemption notices all issued before the first wave reclaim,
// cascades re-target wave victims with later notices, and a straggler
// burst degrades distinct nodes over one shared window.
func TestStormShape(t *testing.T) {
	spec := StormSpec{Seed: 7, Nodes: 8, Horizon: 600, WaveSize: 3, Cascades: 2, StragglerBursts: 1}
	p, err := NewStorm(spec)
	if err != nil {
		t.Fatal(err)
	}
	var preempts, degrades []Event
	for _, e := range p.Events {
		switch e.Kind {
		case KindPreempt:
			preempts = append(preempts, e)
		case KindDegrade:
			degrades = append(degrades, e)
		default:
			t.Fatalf("storm planned a %v; storms only preempt and degrade", e.Kind)
		}
	}
	if len(preempts) != spec.WaveSize+spec.Cascades {
		t.Fatalf("%d preemptions, want wave %d + cascades %d",
			len(preempts), spec.WaveSize, spec.Cascades)
	}
	if len(degrades) != 3*spec.StragglerBursts {
		t.Fatalf("%d degrade windows, want 3 per burst × %d burst(s)",
			len(degrades), spec.StragglerBursts)
	}
	if !sort.SliceIsSorted(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At }) {
		t.Fatal("storm events not sorted by effect time")
	}

	// The wave is the WaveSize earliest notices, on distinct nodes, every
	// notice issued before the first wave reclaim — one correlated group.
	byNotice := append([]Event(nil), preempts...)
	sort.SliceStable(byNotice, func(i, j int) bool { return byNotice[i].NoticeAt < byNotice[j].NoticeAt })
	wave, cascades := byNotice[:spec.WaveSize], byNotice[spec.WaveSize:]
	waveNodes := map[int]bool{}
	firstReclaim := wave[0].At
	for _, e := range wave {
		if e.At < firstReclaim {
			firstReclaim = e.At
		}
	}
	lead := stormLead(spec.Horizon)
	for _, e := range wave {
		if waveNodes[e.Node] {
			t.Fatalf("wave hits node %d twice; victims must be distinct", e.Node)
		}
		waveNodes[e.Node] = true
		if e.NoticeAt >= firstReclaim {
			t.Fatalf("wave notice at t=%.1f lands after the first reclaim at t=%.1f; not one window",
				e.NoticeAt, firstReclaim)
		}
		if got := e.At - e.NoticeAt; got != lead {
			t.Fatalf("wave lead %.3f, want stormLead %.3f", got, lead)
		}
	}
	for _, e := range cascades {
		if !waveNodes[e.Node] {
			t.Fatalf("cascade targets node %d, which the wave never hit", e.Node)
		}
		if e.NoticeAt <= wave[0].NoticeAt {
			t.Fatalf("cascade notice t=%.1f not after the wave opened at t=%.1f",
				e.NoticeAt, wave[0].NoticeAt)
		}
	}

	// One burst: three distinct nodes sharing a single degrade window.
	nodes := map[int]bool{}
	for _, e := range degrades {
		if nodes[e.Node] {
			t.Fatalf("burst degrades node %d twice", e.Node)
		}
		nodes[e.Node] = true
		if e.At != degrades[0].At || e.Until != degrades[0].Until {
			t.Fatalf("burst windows differ: [%v,%v] vs [%v,%v]",
				e.At, e.Until, degrades[0].At, degrades[0].Until)
		}
		if e.Factor != 4 {
			t.Fatalf("default degrade factor %v, want 4", e.Factor)
		}
	}
}

func TestStormLeadScalesToShortHorizons(t *testing.T) {
	if got := stormLead(1000); got != NoticeLeadS {
		t.Fatalf("long-horizon lead %v, want the full %v notice", got, NoticeLeadS)
	}
	if got := stormLead(100); got != 30 {
		t.Fatalf("short-horizon lead %v, want 0.3×100 = 30", got)
	}
}

func TestStormRespectsSpotNodes(t *testing.T) {
	spec := StormSpec{Seed: 11, Nodes: 8, Horizon: 600, WaveSize: 2, Cascades: 3,
		SpotNodes: []int{2, 5, 6}}
	p, err := NewStorm(spec)
	if err != nil {
		t.Fatal(err)
	}
	spot := map[int]bool{2: true, 5: true, 6: true}
	for _, e := range p.Events {
		if !spot[e.Node] {
			t.Fatalf("storm hit node %d outside the spot slice", e.Node)
		}
	}
}

func TestStormValidation(t *testing.T) {
	ok := StormSpec{Seed: 1, Nodes: 8, Horizon: 600, WaveSize: 3}
	cases := []struct {
		name string
		mut  func(*StormSpec)
		frag string
	}{
		{"too-few-nodes", func(s *StormSpec) { s.Nodes = 1 }, "at least 2"},
		{"non-positive-horizon", func(s *StormSpec) { s.Horizon = 0 }, "horizon"},
		{"wave-of-one", func(s *StormSpec) { s.WaveSize = 1 }, "lone events"},
		{"wave-over-spot-slice", func(s *StormSpec) { s.SpotNodes = []int{0, 1}; s.WaveSize = 3 }, "eligible"},
		{"wave-kills-everyone", func(s *StormSpec) { s.WaveSize = 8 }, "survive"},
		{"negative-cascades", func(s *StormSpec) { s.Cascades = -1 }, "negative"},
		{"negative-bursts", func(s *StormSpec) { s.StragglerBursts = -2 }, "negative"},
		{"degrade-factor-below-one", func(s *StormSpec) { s.DegradeFactor = 0.5 }, "exceed 1"},
		{"spot-node-out-of-range", func(s *StormSpec) { s.SpotNodes = []int{9}; s.WaveSize = 1 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := ok
			tc.mut(&spec)
			_, err := NewStorm(spec)
			if err == nil {
				t.Fatalf("spec %+v accepted", spec)
			}
			if tc.frag != "" && !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
	if _, err := NewStorm(ok); err != nil {
		t.Fatalf("baseline spec rejected: %v", err)
	}
}
