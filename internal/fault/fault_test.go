package fault

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"heterohpc/internal/mp"
	"heterohpc/internal/sched"
)

func TestPlanDeterministicForEqualSeeds(t *testing.T) {
	spec := Spec{Seed: 42, Nodes: 8, Horizon: 100, Crashes: 2, Preemptions: 3, Degradations: 1}
	p1, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("plans differ for equal seeds:\n%v\n%v", p1, p2)
	}
	spec.Seed = 43
	p3, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1.Events, p3.Events) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanShape(t *testing.T) {
	spec := Spec{Seed: 7, Nodes: 4, Horizon: 50, Crashes: 3, Preemptions: 2, Degradations: 2,
		SpotNodes: []int{1, 3}}
	p, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Events); got != 7 {
		t.Fatalf("%d events, want 7", got)
	}
	if !sort.SliceIsSorted(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At }) {
		t.Fatal("events not sorted by At")
	}
	for _, e := range p.Events {
		if e.At < 0.05*spec.Horizon || e.At > 0.95*spec.Horizon {
			t.Errorf("event at %v outside horizon window", e.At)
		}
		switch e.Kind {
		case KindPreempt:
			if e.Node != 1 && e.Node != 3 {
				t.Errorf("preemption on non-spot node %d", e.Node)
			}
			if e.NoticeAt > e.At || e.At-e.NoticeAt > NoticeLeadS {
				t.Errorf("notice at %v for failure at %v", e.NoticeAt, e.At)
			}
		case KindDegrade:
			if !(e.Until > e.At) || e.Factor <= 1 {
				t.Errorf("bad degrade window %+v", e)
			}
		}
	}
	if got := len(p.Failures()) + len(p.Degradations()); got != len(p.Events) {
		t.Fatalf("failures+degradations = %d, want %d", got, len(p.Events))
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := New(Spec{Nodes: 0, Horizon: 1}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := New(Spec{Nodes: 2, Horizon: 0}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := New(Spec{Nodes: 2, Horizon: 1, SpotNodes: []int{5}}); err == nil {
		t.Fatal("out-of-range spot node accepted")
	}
	if _, err := New(Spec{Nodes: 2, Horizon: 1, DegradeFactor: 0.5}); err == nil {
		t.Fatal("sub-unity degrade factor accepted")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{fmt.Errorf("wrapped: %w", mp.ErrRankDead), ClassNodeLoss},
		{&mp.RankError{Rank: 3, Err: mp.ErrRankDead}, ClassNodeLoss},
		{fmt.Errorf("core: %w", sched.ErrLaunchLimit), ClassCapacity},
		{sched.ErrIBVolumeCap, ClassCapacity},
		{sched.ErrTooLarge, ClassCapacity},
		{sched.ErrInsufficientMemory, ClassResource},
		{errors.New("rd: step 3: CG stalled"), ClassApp},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	b := NewBackoff(10, 80, 1)
	prevMax := 0.0
	for i := 0; i < 8; i++ {
		d := b.Next()
		ideal := 10 * float64(int(1)<<i)
		if ideal > 80 {
			ideal = 80
		}
		if d < 0.5*ideal || d >= 1.5*ideal {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, d, 0.5*ideal, 1.5*ideal)
		}
		if ideal == 80 && prevMax == 80 {
			// capped region: stays bounded
			if d >= 1.5*80 {
				t.Fatalf("capped delay %v exceeds jittered cap", d)
			}
		}
		prevMax = ideal
	}
	// Determinism across instances.
	b1, b2 := NewBackoff(10, 80, 9), NewBackoff(10, 80, 9)
	for i := 0; i < 5; i++ {
		if d1, d2 := b1.Next(), b2.Next(); d1 != d2 {
			t.Fatalf("backoff not deterministic: %v vs %v", d1, d2)
		}
	}
}

func TestRemapTranslatesAndDrops(t *testing.T) {
	events := []Event{
		{Kind: KindCrash, Node: 0, At: 1},
		{Kind: KindCrash, Node: 1, At: 2}, // dead node: dropped
		{Kind: KindDegrade, Node: 2, At: 3, Until: 4, Factor: 2},
		{Kind: KindCrash, Node: 9, At: 5}, // out of range: dropped
	}
	nodeMap := []int{0, -1, 1, 2}
	got := Remap(events, nodeMap)
	want := []Event{
		{Kind: KindCrash, Node: 0, At: 1},
		{Kind: KindDegrade, Node: 1, At: 3, Until: 4, Factor: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Remap = %+v, want %+v", got, want)
	}
	if events[2].Node != 2 {
		t.Fatal("Remap mutated its input")
	}
}
