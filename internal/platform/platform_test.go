package platform

import (
	"testing"

	"heterohpc/internal/netmodel"
	"heterohpc/internal/vclock"
)

func TestCatalogHasPaperPlatforms(t *testing.T) {
	for _, name := range []string{"puma", "ellipse", "lagrange", "ec2"} {
		p, err := Get(name)
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestDefaultsOrder(t *testing.T) {
	d := Defaults()
	if len(d) != 4 {
		t.Fatalf("got %d default platforms", len(d))
	}
	want := []string{"puma", "ellipse", "lagrange", "ec2"}
	for i, p := range d {
		if p.Name != want[i] {
			t.Errorf("position %d: %s, want %s", i, p.Name, want[i])
		}
	}
}

// Table I invariants.
func TestTableIFacts(t *testing.T) {
	puma, _ := Get("puma")
	ellipse, _ := Get("ellipse")
	lagrange, _ := Get("lagrange")
	ec2, _ := Get("ec2")

	if puma.CoresPerNode() != 4 || puma.TotalCores() != 128 {
		t.Errorf("puma geometry: %d cores/node, %d total", puma.CoresPerNode(), puma.TotalCores())
	}
	if ellipse.CoresPerNode() != 4 || ellipse.TotalCores() != 1024 {
		t.Errorf("ellipse geometry: %d cores/node, %d total", ellipse.CoresPerNode(), ellipse.TotalCores())
	}
	if lagrange.CoresPerNode() != 12 {
		t.Errorf("lagrange cores/node: %d", lagrange.CoresPerNode())
	}
	if ec2.CoresPerNode() != 16 {
		t.Errorf("ec2 cores/node: %d", ec2.CoresPerNode())
	}
	// RAM/core: 1, 1, 2 (paper rounds to 1.3 for 24/18... our 24/12), 3.78.
	if puma.RAMPerCoreGB() != 2 {
		t.Errorf("puma RAM/core %v", puma.RAMPerCoreGB())
	}
	// Networks.
	if puma.Net != netmodel.GigE || ellipse.Net != netmodel.GigE {
		t.Error("puma/ellipse must be 1GbE")
	}
	if lagrange.Net != netmodel.IBDDR4X {
		t.Error("lagrange must be IB 4X DDR")
	}
	if ec2.Net != netmodel.TenGigE {
		t.Error("ec2 must be 10GbE")
	}
	// Failure limits from §VII-A.
	if ellipse.MaxLaunchRanks != 512 {
		t.Errorf("ellipse launch limit %d", ellipse.MaxLaunchRanks)
	}
	if lagrange.MaxVolumeRanks != 343 {
		t.Errorf("lagrange volume cap %d", lagrange.MaxVolumeRanks)
	}
	// Prices from §VII-D.
	if puma.CostPerCoreHour != 0.023 || ellipse.CostPerCoreHour != 0.05 ||
		lagrange.CostPerCoreHour != 0.1919 {
		t.Error("per-core prices drifted from the paper")
	}
	if ec2.CostPerNodeHour != 2.40 || ec2.SpotPerNodeHour != 0.54 {
		t.Error("ec2 prices drifted from Table II")
	}
	// Only ec2 has root access and placement groups.
	if !ec2.RootAccess || puma.RootAccess || ellipse.RootAccess || lagrange.RootAccess {
		t.Error("access rows wrong")
	}
	if !ec2.PlacementGroups {
		t.Error("ec2 must support placement groups")
	}
}

// Hardware ordering: per-core compute rates must follow 2012 hardware
// (Opteron 2214 < Opteron 2218 < Xeon X5660 < Xeon E5-2670).
func TestComputeRateOrdering(t *testing.T) {
	names := []string{"puma", "ellipse", "lagrange", "ec2"}
	var prev float64
	for _, n := range names {
		p, _ := Get(n)
		if p.Rater.FlopsPerSec <= prev {
			t.Fatalf("%s rate %v not greater than predecessor %v", n, p.Rater.FlopsPerSec, prev)
		}
		prev = p.Rater.FlopsPerSec
	}
}

func TestNodesFor(t *testing.T) {
	ec2, _ := Get("ec2")
	cases := map[int]int{1: 1, 16: 1, 17: 2, 1000: 63, 1008: 63}
	for ranks, want := range cases {
		if got := ec2.NodesFor(ranks); got != want {
			t.Errorf("NodesFor(%d) = %d, want %d", ranks, got, want)
		}
	}
	puma, _ := Get("puma")
	if got := puma.NodesFor(125); got != 32 {
		t.Errorf("puma NodesFor(125) = %d", got)
	}
}

func TestValidateCatches(t *testing.T) {
	bad := []*Platform{
		{},
		{Name: "x", SocketsPerNode: 1, CoresPerSocket: 1, MaxNodes: 1},                  // no RAM
		{Name: "x", SocketsPerNode: 1, CoresPerSocket: 1, MaxNodes: 1, RAMPerNodeGB: 1}, // no net
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(&Platform{
		Name: "puma", SocketsPerNode: 1, CoresPerSocket: 1, MaxNodes: 1,
		RAMPerNodeGB: 1, Net: netmodel.Loopback,
		Rater: vclock.LinearRater{FlopsPerSec: 1},
	})
}

func TestNamesSorted(t *testing.T) {
	ns := Names()
	for i := 1; i < len(ns); i++ {
		if ns[i] <= ns[i-1] {
			t.Fatalf("names not sorted: %v", ns)
		}
	}
}
