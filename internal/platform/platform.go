// Package platform describes the paper's four heterogeneous target
// platforms (§V, Table I): the in-house cluster puma, the fee-for-use
// university cluster ellipse, the CILEA supercomputer lagrange, and Amazon
// EC2 cc2.8xlarge assemblies. Each platform bundles its node hardware
// (calibrated per-core compute model), interconnect model, scheduler
// behaviour, billing, and the capability matrix of Table I.
//
// Calibration note: the per-core compute rates are not raw hardware peaks.
// The paper's applications use P2/P2-P1 elements through LifeV/Trilinos;
// this reproduction uses Q1 elements, which perform roughly an order of
// magnitude less arithmetic per mesh element. The rates therefore fold the
// hardware-speed ratio between machines (the quantity that determines the
// paper's qualitative results) together with a single global factor chosen
// so that the P=1 reaction–diffusion iteration with the paper's 20³ loading
// lands near Table II's measured 4.83 s on ec2. Relative speeds follow the
// 2012 hardware: Opteron 2214 < Opteron 2218 < Xeon X5660 < Xeon E5-2670.
package platform

import (
	"fmt"
	"sort"

	"heterohpc/internal/netmodel"
	"heterohpc/internal/vclock"
)

// SchedulerKind identifies the execution manager of a platform (Table I
// "execution" row).
type SchedulerKind string

const (
	// PBS is the Portable Batch System (puma: Torque; lagrange: PBS Pro).
	PBS SchedulerKind = "PBS"
	// SGE is the Sun Grid Engine (ellipse), configured for serial batches
	// only — Open MPI must liaise with it to place parallel tasks.
	SGE SchedulerKind = "SGE"
	// Shell is direct command-line execution (EC2: mpiexec with an explicit
	// hosts list).
	Shell SchedulerKind = "shell"
)

// Capabilities is the qualitative capability matrix of Table I, including
// how missing capabilities were addressed during porting (§VI).
type Capabilities struct {
	Storage      string // e.g. "OK" or "insufficient disk quota"
	Access       string // "user space" or "root"
	Support      string // admin support level
	BuildEnv     string // compiler/toolchain presence
	Compiler     string
	Dependencies string // which LifeV dependencies were present
	MPI          string
	ParallelJobs bool
	Execution    string // job launch mechanism
}

// Platform is one target platform.
type Platform struct {
	// Name is the paper's lower-case platform name.
	Name string
	// Kind is the platform class (on-premise, university, grid, IaaS).
	Kind string
	// CPU describes the node processors.
	CPU string
	// SocketsPerNode and CoresPerSocket give the node layout.
	SocketsPerNode int
	CoresPerSocket int
	RAMPerNodeGB   float64
	MaxNodes       int
	Net            *netmodel.Model
	Rater          vclock.LinearRater
	// CommScale multiplies modelled communication times, expressing them in
	// the same workload-adjusted seconds as the calibrated Rater (the P2
	// workload moves more bytes and iterations per step than the Q1 proxy;
	// see the package comment and DESIGN.md §5). Zero means 1.
	CommScale     float64
	Scheduler     SchedulerKind
	SchedulerName string
	// MaxLaunchRanks is the largest rank count the launcher could start
	// (ellipse: mpiexec failed to spawn >512 remote daemons). 0 = unlimited.
	MaxLaunchRanks int
	// MaxVolumeRanks is the largest rank count before the configured
	// per-adapter InfiniBand data-volume cap aborted jobs (lagrange: 343).
	// 0 = unlimited.
	MaxVolumeRanks int
	// QueueWaitMedianS and QueueWaitSigma parameterise the log-normal
	// queue-wait (availability) model; see internal/sched.
	QueueWaitMedianS float64
	QueueWaitSigma   float64
	// Billing.
	CostPerCoreHour float64 // $ per core-hour (flat-rate platforms)
	CostPerNodeHour float64 // $ per node-hour (whole-node platforms, EC2)
	SpotPerNodeHour float64 // typical spot price (EC2 only)
	BillWholeNodes  bool
	RootAccess      bool
	PlacementGroups bool // supports EC2-style placement groups
	Caps            Capabilities
}

// CoresPerNode returns the total cores of one node.
func (p *Platform) CoresPerNode() int { return p.SocketsPerNode * p.CoresPerSocket }

// TotalCores returns the platform's aggregate core count.
func (p *Platform) TotalCores() int { return p.MaxNodes * p.CoresPerNode() }

// RAMPerCoreGB returns memory per core (Table I row "RAM/core").
func (p *Platform) RAMPerCoreGB() float64 {
	return p.RAMPerNodeGB / float64(p.CoresPerNode())
}

// NodesFor returns the node count a job of ranks ranks occupies (block
// placement, CoresPerNode ranks per node).
func (p *Platform) NodesFor(ranks int) int {
	cpn := p.CoresPerNode()
	return (ranks + cpn - 1) / cpn
}

// Validate reports inconsistent platform descriptions.
func (p *Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("platform: empty name")
	}
	if p.SocketsPerNode < 1 || p.CoresPerSocket < 1 || p.MaxNodes < 1 {
		return fmt.Errorf("platform %s: bad node geometry", p.Name)
	}
	if p.RAMPerNodeGB <= 0 {
		return fmt.Errorf("platform %s: no RAM", p.Name)
	}
	if p.Net == nil {
		return fmt.Errorf("platform %s: no network model", p.Name)
	}
	if err := p.Net.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", p.Name, err)
	}
	if p.Rater.FlopsPerSec <= 0 {
		return fmt.Errorf("platform %s: no compute rate", p.Name)
	}
	if p.CostPerCoreHour < 0 || p.CostPerNodeHour < 0 || p.SpotPerNodeHour < 0 {
		return fmt.Errorf("platform %s: negative price", p.Name)
	}
	return nil
}

// catalog holds the registered platforms.
var catalog = map[string]*Platform{}

// Register adds a platform to the catalog (panics on duplicates or invalid
// descriptions — catalog population is programmer-controlled).
func Register(p *Platform) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if _, dup := catalog[p.Name]; dup {
		panic(fmt.Sprintf("platform: duplicate %q", p.Name))
	}
	catalog[p.Name] = p
}

// Get returns the named platform.
func Get(name string) (*Platform, error) {
	p, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("platform: unknown platform %q (have %v)", name, Names())
	}
	return p, nil
}

// Names returns the registered platform names, sorted.
func Names() []string {
	ns := make([]string, 0, len(catalog))
	for n := range catalog {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Defaults returns the paper's four platforms in presentation order.
func Defaults() []*Platform {
	out := make([]*Platform, 0, 4)
	for _, n := range []string{"puma", "ellipse", "lagrange", "ec2"} {
		if p, ok := catalog[n]; ok {
			out = append(out, p)
		}
	}
	return out
}
