package platform

import (
	"heterohpc/internal/netmodel"
	"heterohpc/internal/vclock"
)

// Calibration. baseFlops is the effective per-core rate assigned to the
// fastest machine (EC2's Xeon E5-2670). It is chosen so that the P=1
// reaction–diffusion iteration with the paper's loading (20³ elements per
// process, Q1 discretisation) lands within a few percent of Table II's
// measured 4.83 s (row 1); because this reproduction's Q1 elements do roughly an order of
// magnitude less arithmetic per element than the paper's P2 elements, the
// absolute rate is correspondingly below hardware peak (see the package
// comment). The per-machine ratios are the 2012 hardware speed ratios,
// which are what the paper's cross-platform comparisons depend on.
const (
	baseFlops = 20e6 // Xeon E5-2670 effective (calibrated, see above)
	baseBytes = 80e6 // matching effective memory stream rate
)

func rater(rel float64) vclock.LinearRater {
	return vclock.LinearRater{FlopsPerSec: baseFlops * rel, BytesPerSec: baseBytes * rel}
}

func init() {
	// puma — the "home" 128-core departmental cluster (§V-A).
	Register(&Platform{
		Name:             "puma",
		Kind:             "in-house cluster",
		CPU:              "2× AMD Opteron 2214 (2.2 GHz)",
		SocketsPerNode:   2,
		CoresPerSocket:   2,
		RAMPerNodeGB:     8,
		MaxNodes:         32,
		Net:              netmodel.GigE,
		Rater:            rater(0.38),
		CommScale:        25,
		Scheduler:        PBS,
		SchedulerName:    "PBS Torque 2.3.6",
		QueueWaitMedianS: 3 * 3600, // "overnight turnaround times on a local cluster"
		QueueWaitSigma:   1.1,
		CostPerCoreHour:  0.023, // estimated from capital + operating expenses (§VII-D)
		Caps: Capabilities{
			Storage:      "OK (80GB local scratch)",
			Access:       "user space",
			Support:      "full",
			BuildEnv:     "yes",
			Compiler:     "GCC 4.3.4",
			Dependencies: "all pre-provisioned (home platform)",
			MPI:          "Open MPI",
			ParallelJobs: true,
			Execution:    "PBS",
		},
	})

	// ellipse — the 1024-core fee-for-use university cluster (§V-B).
	Register(&Platform{
		Name:             "ellipse",
		Kind:             "university cluster",
		CPU:              "2× AMD Opteron 2218 (2.6 GHz)",
		SocketsPerNode:   2,
		CoresPerSocket:   2,
		RAMPerNodeGB:     8,
		MaxNodes:         256,
		Net:              netmodel.GigE,
		Rater:            rater(0.44),
		CommScale:        25,
		Scheduler:        SGE,
		SchedulerName:    "Sun Grid Engine 6.1 (serial batches only)",
		MaxLaunchRanks:   512, // mpiexec could not start >512 remote daemons (§VII-A)
		QueueWaitMedianS: 45 * 60,
		QueueWaitSigma:   1.0,
		CostPerCoreHour:  0.05, // flat rate 5¢ per CPU core per hour (§V-B)
		Caps: Capabilities{
			Storage:      "insufficient disk quota",
			Access:       "user space",
			Support:      "very limited",
			BuildEnv:     "yes",
			Compiler:     "GCC 4.1.2",
			Dependencies: "none — source installed",
			MPI:          "none — source installed (Open MPI 1.4.4)",
			ParallelJobs: false,
			Execution:    "SGE (Open MPI liaises for parallel placement)",
		},
	})

	// lagrange — the CILEA HPC supercomputer (§V-C), once 136th in TOP500.
	Register(&Platform{
		Name:             "lagrange",
		Kind:             "grid / HPC center",
		CPU:              "2× Intel Xeon X5660 (2.8 GHz)",
		SocketsPerNode:   2,
		CoresPerSocket:   6,
		RAMPerNodeGB:     24,
		MaxNodes:         208,
		Net:              netmodel.IBDDR4X,
		Rater:            rater(0.80),
		CommScale:        25,
		Scheduler:        PBS,
		SchedulerName:    "PBS Professional 11",
		MaxVolumeRanks:   343,      // configured IB adapter data-volume cap (§VII-A)
		QueueWaitMedianS: 5 * 3600, // grid queue
		QueueWaitSigma:   1.2,
		CostPerCoreHour:  0.1919, // €0.15/core-h at the prevailing exchange rate
		Caps: Capabilities{
			Storage:      "OK",
			Access:       "user space",
			Support:      "limited",
			BuildEnv:     "yes",
			Compiler:     "GCC 4.1.2, Intel 12.1",
			Dependencies: "BLAS/LAPACK (MKL) — rest source installed",
			MPI:          "Open MPI, Intel MPI",
			ParallelJobs: true,
			Execution:    "PBS",
		},
	})

	// ec2 — Amazon cc2.8xlarge cluster-compute assemblies (§V-D, §VI-D).
	Register(&Platform{
		Name:             "ec2",
		Kind:             "IaaS cloud",
		CPU:              "2× Intel Xeon E5-2670 (2.6 GHz)",
		SocketsPerNode:   2,
		CoresPerSocket:   8,
		RAMPerNodeGB:     60.5,
		MaxNodes:         200, // "only Cloud providers could sustain the biggest, 1000-core task"
		Net:              netmodel.TenGigE,
		Rater:            rater(1.0),
		CommScale:        25,
		Scheduler:        Shell,
		SchedulerName:    "shell (mpiexec with explicit hosts list)",
		QueueWaitMedianS: 150, // instance boot: resources delivered immediately
		QueueWaitSigma:   0.3,
		CostPerNodeHour:  2.40, // on-demand, during the study
		SpotPerNodeHour:  0.54, // observed spot price (Table II)
		BillWholeNodes:   true,
		RootAccess:       true,
		PlacementGroups:  true,
		Caps: Capabilities{
			Storage:      "insufficient (20GB image) — boot partition resized",
			Access:       "root",
			Support:      "none",
			BuildEnv:     "none — installed via yum",
			Compiler:     "none — GCC 4.4.5/GFortran via yum",
			Dependencies: "none — source installed (GotoBLAS2, Trilinos, …)",
			MPI:          "none — Open MPI 1.4.4 via yum",
			ParallelJobs: false,
			Execution:    "shell",
		},
	})

	// Additional EC2 instance classes mentioned in §V-D, registered for
	// catalog completeness (examples compare against cc2.8xlarge).
	Register(&Platform{
		Name:             "ec2-cc1.4xlarge",
		Kind:             "IaaS cloud",
		CPU:              "2× Intel Xeon X5570 (2.9 GHz)",
		SocketsPerNode:   2,
		CoresPerSocket:   4,
		RAMPerNodeGB:     23,
		MaxNodes:         128,
		Net:              netmodel.TenGigE,
		Rater:            rater(0.72),
		CommScale:        25,
		Scheduler:        Shell,
		SchedulerName:    "shell (mpiexec with explicit hosts list)",
		QueueWaitMedianS: 150,
		QueueWaitSigma:   0.3,
		CostPerNodeHour:  1.30,
		SpotPerNodeHour:  0.45,
		BillWholeNodes:   true,
		RootAccess:       true,
		PlacementGroups:  true,
		Caps: Capabilities{
			Storage:   "insufficient (20GB image)",
			Access:    "root",
			Support:   "none",
			BuildEnv:  "none — yum",
			Compiler:  "none — yum",
			MPI:       "none — yum",
			Execution: "shell",
		},
	})
	Register(&Platform{
		Name:             "ec2-m1.small",
		Kind:             "IaaS cloud",
		CPU:              "1 virtual 32-bit CPU",
		SocketsPerNode:   1,
		CoresPerSocket:   1,
		RAMPerNodeGB:     1.7,
		MaxNodes:         64,
		Net:              netmodel.GigE,
		Rater:            rater(0.15),
		CommScale:        25,
		Scheduler:        Shell,
		SchedulerName:    "shell",
		QueueWaitMedianS: 120,
		QueueWaitSigma:   0.3,
		CostPerNodeHour:  0.08,
		SpotPerNodeHour:  0.03,
		BillWholeNodes:   true,
		RootAccess:       true,
		Caps: Capabilities{
			Storage: "small", Access: "root", Support: "none",
			BuildEnv: "none — yum", Execution: "shell",
		},
	})
}
