package nse

import (
	"fmt"

	"heterohpc/internal/fem"
	"heterohpc/internal/krylov"
	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/sparse"
	"heterohpc/internal/vclock"
)

// Config describes one Navier–Stokes run on the Ethier–Steinman benchmark.
type Config struct {
	// Mesh is the global mesh (typically of mesh.SymmetricBox).
	Mesh *mesh.Mesh
	// Grid is the block decomposition; its product must equal the world size.
	Grid [3]int
	// T0 is the initial time.
	T0 float64
	// Dt is the BDF2 step size.
	Dt float64
	// Steps is the number of BDF2 steps.
	Steps int
	// Tol is the linear-solver relative tolerance (default 1e-8).
	Tol float64
	// Precond selects the preconditioner ("ilu0" default, "jacobi", "sgs",
	// "none").
	Precond string
	// VelocitySolver selects the nonsymmetric solver for the three velocity
	// systems: "bicgstab" (default) or "gmres".
	VelocitySolver string
	// MaxIter caps linear iterations per solve (default 600).
	MaxIter int
	// Checkpoint, if non-nil, is invoked after every completed BDF2 step
	// with a snapshot of the solver state (mirrors rd.Config.Checkpoint so
	// Navier–Stokes runs participate in checkpoint-restart). The callback
	// runs outside the measured phases.
	//
	// Retention contract: the State's U1/U2/P slices are owned by the time
	// loop and recycled — a snapshot is valid only until the NEXT
	// Checkpoint invocation (double-buffered, so exactly one previous
	// generation stays intact). A supervisor must serialise or copy what
	// it needs before returning; it must not retain the slices.
	Checkpoint func(State) error
	// Resume, if non-nil, restarts the time loop from a saved state instead
	// of the exact-solution initialisation. The state must come from a run
	// with identical mesh, grid and time stepping.
	Resume *State
}

// State is a restartable snapshot of the projection time loop. When
// delivered through Config.Checkpoint the slices are loop-owned reusable
// buffers — see the retention contract there. A State passed to
// Config.Resume is only read during startup and never retained.
type State struct {
	// StepsDone counts completed BDF2 steps.
	StepsDone int
	// Time is the PDE time of U1 and P (the last completed step).
	Time float64
	// U1 and U2 are the owned velocity components of u^{n-1} and u^{n-2}.
	U1, U2 [3][]float64
	// P is the owned pressure at the last completed step.
	P []float64
}

func (c Config) withDefaults() Config {
	if c.Dt == 0 {
		c.Dt = 0.002
	}
	if c.Steps == 0 {
		c.Steps = 4
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if c.Precond == "" {
		c.Precond = "ilu0"
	}
	if c.VelocitySolver == "" {
		c.VelocitySolver = "bicgstab"
	}
	if c.MaxIter == 0 {
		c.MaxIter = 600
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Mesh == nil {
		return fmt.Errorf("nse: nil mesh")
	}
	if c.Dt <= 0 || c.Steps < 1 {
		return fmt.Errorf("nse: bad time stepping dt=%v steps=%d", c.Dt, c.Steps)
	}
	switch c.VelocitySolver {
	case "bicgstab", "gmres":
	default:
		return fmt.Errorf("nse: unknown velocity solver %q", c.VelocitySolver)
	}
	return nil
}

// Result is one rank's view of a completed run.
type Result struct {
	// StepTimes[k] is this rank's phase breakdown for BDF2 step k.
	StepTimes []vclock.PhaseTimes
	// VelIters[k] sums the BiCGStab iterations of the three velocity solves
	// at step k; PresIters[k] is the pressure CG count.
	VelIters  []int
	PresIters []int
	// VelMaxErr and VelL2Err are global errors of the velocity (max over
	// components) at the final time; PresL2Err is the pressure error.
	VelMaxErr, VelL2Err, PresL2Err float64
	// NOwned is this rank's owned dof count per scalar field.
	NOwned int
	// FinalTime is the PDE time reached.
	FinalTime float64
	// OwnedIDs lists this rank's owned global vertex ids; Velocity holds
	// the final velocity components and Pressure the final pressure at them
	// (for visualisation export — the paper's Figure 2).
	OwnedIDs []int
	Velocity [3][]float64
	Pressure []float64
}

// Run executes the Navier–Stokes solver as the SPMD body of rank r.
func Run(r *mp.Rank, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clk := r.Clock()
	clk.SetPhase(vclock.PhaseOther)
	rec := r.Obs()

	s, err := fem.NewSpaceBlock(r, cfg.Mesh, cfg.Grid[0], cfg.Grid[1], cfg.Grid[2], 2000)
	if err != nil {
		return nil, err
	}
	n := s.NOwned()
	bdf := 3 / (2 * cfg.Dt)

	// Constant operators: mass, pressure Laplacian, gradient blocks.
	var massCOO sparse.COO
	s.AssembleMatrix(&massCOO, func(e int, out *[8][8]float64) { s.El.Mass(1, out, r) })
	massDM, err := sparse.NewDistMatrix(r, s.RowMap, &massCOO, s.Owner, 2100)
	if err != nil {
		return nil, err
	}
	massDM.Compact() // values never change; drop refill plans
	massCOO = sparse.COO{}

	// The pressure, gradient and velocity operators couple the same element
	// stencil as the mass matrix, so their ghost-column sets coincide and
	// they can share its importer instead of each re-running the importer
	// handshake (NewDistMatrixLike falls back to a private importer if the
	// structures ever diverge).
	var presCOO sparse.COO
	s.AssembleMatrix(&presCOO, func(e int, out *[8][8]float64) { s.El.Stiffness(1, out, r) })
	presDM, err := sparse.NewDistMatrixLike(massDM, &presCOO, s.Owner, 2200)
	if err != nil {
		return nil, err
	}
	presDM.Compact()
	presCOO = sparse.COO{}
	presBC := presDM.NewDirichlet(s.IsBoundary)
	presPC, err := newPrecond(cfg.Precond, presDM, r)
	if err != nil {
		return nil, err
	}
	if err := presPC.Setup(); err != nil {
		return nil, err
	}

	grad := make([]*sparse.DistMatrix, 3)
	for d := 0; d < 3; d++ {
		var gcoo sparse.COO
		dd := d
		s.AssembleMatrix(&gcoo, func(e int, out *[8][8]float64) { s.El.Gradient(dd, out, r) })
		grad[d], err = sparse.NewDistMatrixLike(massDM, &gcoo, s.Owner, 2300+100*d)
		if err != nil {
			return nil, err
		}
		grad[d].Compact()
	}

	// Lumped mass (row sums of M = ∫N_a) for the velocity correction.
	mL := make([]float64, n)
	s.AssembleVector(mL, func(e int, out *[8]float64) {
		s.El.Load(func(x, y, z float64) float64 { return 1 }, s.ElemCorner(e), out, r)
	})

	// Velocity operator: (3/2Δt)·M + ν·K + C(w); values refilled per step.
	// The convecting field w = 2u^{n-1} − u^{n-2} is evaluated per element at
	// the centroid from nodal patch values (ghosts imported each step).
	patchW := [3][]float64{}
	for d := 0; d < 3; d++ {
		patchW[d] = make([]float64, s.NPatch())
	}
	// The element callback reads the convecting field from patchW, which is
	// refreshed in place each step, so one hoisted closure serves every
	// reassembly without per-step allocation.
	var velCOO sparse.COO
	velElem := func(e int, out *[8][8]float64) {
		vs := s.M.ElemVerts(e)
		var w [3]float64
		for _, gv := range vs {
			lv := s.L.G2L[gv]
			for d := 0; d < 3; d++ {
				w[d] += patchW[d][lv]
			}
		}
		for d := 0; d < 3; d++ {
			w[d] /= 8
		}
		var tmp [8][8]float64
		s.El.Mass(bdf, out, r)
		s.El.Stiffness(nu, &tmp, r)
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				out[a][b] += tmp[a][b]
			}
		}
		s.El.Convection(w, &tmp, r)
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				out[a][b] += tmp[a][b]
			}
		}
	}
	s.AssembleMatrix(&velCOO, velElem)
	velDM, err := sparse.NewDistMatrixLike(massDM, &velCOO, s.Owner, 2600)
	if err != nil {
		return nil, err
	}
	// Fixed structure: per-step reassembly recomputes values only.
	velCOO.Rows, velCOO.Cols = nil, nil
	assembleVelocity := func() {
		s.AssembleMatrixValues(&velCOO, velElem)
	}
	velPC, err := newPrecond(cfg.Precond, velDM, r)
	if err != nil {
		return nil, err
	}

	// History from the exact solution at t0 and t0+Δt, or from a
	// checkpointed state.
	uPrev2 := make([][]float64, 3)
	uPrev1 := make([][]float64, 3)
	p := make([]float64, n)
	startStep := 0
	if cfg.Resume != nil {
		st := cfg.Resume
		if st.StepsDone < 0 || st.StepsDone >= cfg.Steps {
			return nil, fmt.Errorf("nse: resume at step %d of %d", st.StepsDone, cfg.Steps)
		}
		if len(st.P) != n {
			return nil, fmt.Errorf("nse: resume state has %d pressure dofs, rank owns %d", len(st.P), n)
		}
		for d := 0; d < 3; d++ {
			if len(st.U1[d]) != n || len(st.U2[d]) != n {
				return nil, fmt.Errorf("nse: resume state has %d/%d dofs in component %d, rank owns %d",
					len(st.U1[d]), len(st.U2[d]), d, n)
			}
			uPrev1[d] = append([]float64(nil), st.U1[d]...)
			uPrev2[d] = append([]float64(nil), st.U2[d]...)
		}
		copy(p, st.P)
		startStep = st.StepsDone
	} else {
		for d := 0; d < 3; d++ {
			uPrev2[d] = make([]float64, n)
			uPrev1[d] = make([]float64, n)
			comp := Component(d)
			s.Interpolate(func(x, y, z float64) float64 { return comp(x, y, z, cfg.T0) }, uPrev2[d])
			s.Interpolate(func(x, y, z float64) float64 { return comp(x, y, z, cfg.T0+cfg.Dt) }, uPrev1[d])
		}
		s.Interpolate(func(x, y, z float64) float64 { return ExactPressure(x, y, z, cfg.T0+cfg.Dt) }, p)
	}

	uStar := make([][]float64, 3)
	for d := 0; d < 3; d++ {
		uStar[d] = make([]float64, n)
	}
	rhs := make([]float64, n)
	hist := make([]float64, n)
	gp := make([]float64, n)
	phi := make([]float64, n)
	div := make([]float64, n)
	var rhss [3][]float64
	for d := 0; d < 3; d++ {
		rhss[d] = make([]float64, n)
	}
	work := &krylov.Workspace{}
	velSolve := krylov.BiCGStab
	if cfg.VelocitySolver == "gmres" {
		velSolve = krylov.GMRES
	}

	// Boundary-value closures are hoisted out of the loop: the captured
	// component/time variables are retargeted per step instead of closing
	// over fresh ones, keeping the steady state allocation-free.
	comps := [3]func(x, y, z, t float64) float64{Component(0), Component(1), Component(2)}
	var bcComp func(x, y, z, t float64) float64
	var bcT float64
	velBoundary := func(v int) float64 {
		x, y, z := s.M.VertexCoord(v)
		return bcComp(x, y, z, bcT)
	}
	var presT, presTPrev float64
	presBoundary := func(v int) float64 {
		x, y, z := s.M.VertexCoord(v)
		return ExactPressure(x, y, z, presT) - ExactPressure(x, y, z, presTPrev)
	}
	// The velocity eliminator is persistent; built lazily inside the first
	// step so its scan charge lands in that step's assembly phase exactly
	// as the old per-step construction did, then Recompute refreshes it.
	var velBC *sparse.Dirichlet

	res := &Result{
		NOwned:    n,
		StepTimes: make([]vclock.PhaseTimes, 0, cfg.Steps-startStep),
		VelIters:  make([]int, 0, cfg.Steps-startStep),
		PresIters: make([]int, 0, cfg.Steps-startStep),
	}
	// Checkpoint snapshots alternate between two reusable buffer sets; see
	// the State retention contract on Config.Checkpoint.
	var ckptBuf [2]State
	ckptGen := 0
	tPrev := cfg.T0 + cfg.Dt
	if cfg.Resume != nil {
		tPrev = cfg.Resume.Time
	}

	for step := startStep; step < cfg.Steps; step++ {
		t := cfg.T0 + float64(step+2)*cfg.Dt
		snap := clk.Snapshot()

		// Phase (ii): assembly. Import the extrapolated convecting field,
		// reassemble the velocity operator, build the three right-hand sides.
		clk.SetPhase(vclock.PhaseAssembly)
		for d := 0; d < 3; d++ {
			for i := 0; i < n; i++ {
				patchW[d][i] = 2*uPrev1[d][i] - uPrev2[d][i]
			}
			r.ChargeCompute(2*float64(n), 24*float64(n))
			s.PatchImporter().Exchange(patchW[d])
		}
		assembleVelocity()
		velDM.SetValues(&velCOO)
		if velBC == nil {
			velBC = velDM.NewDirichlet(s.IsBoundary)
		} else {
			velBC.Recompute(s.IsBoundary)
		}

		bcT = t
		for d := 0; d < 3; d++ {
			for i := 0; i < n; i++ {
				hist[i] = bdf * (4*uPrev1[d][i] - uPrev2[d][i]) / 3
			}
			r.ChargeCompute(3*float64(n), 24*float64(n))
			massDM.Apply(hist, rhss[d])
			grad[d].Apply(p, gp)
			sparse.Axpy(n, -1, gp, rhss[d], r)
			bcComp = comps[d]
			velBC.EliminateRHS(velBoundary, rhss[d])
		}

		// Phase (iiia): preconditioner for the velocity operator.
		clk.SetPhase(vclock.PhasePrecond)
		if err := velPC.Setup(); err != nil {
			return nil, fmt.Errorf("nse: step %d: %w", step, err)
		}

		// Phase (iiib): three BiCGStab velocity solves, one CG pressure
		// solve, projection update.
		clk.SetPhase(vclock.PhaseSolve)
		velIters := 0
		for d := 0; d < 3; d++ {
			sparse.CopyN(n, uStar[d], uPrev1[d], r)
			sol, err := velSolve(velDM, velPC, rhss[d], uStar[d], krylov.Options{
				Tol: cfg.Tol, MaxIter: cfg.MaxIter, Work: work, Obs: rec,
			})
			if err != nil {
				return nil, fmt.Errorf("nse: step %d velocity %d: %w", step, d, err)
			}
			if !sol.Converged {
				return nil, fmt.Errorf("nse: step %d velocity %d stalled at %v after %d iters",
					step, d, sol.Residual, sol.Iterations)
			}
			velIters += sol.Iterations
		}

		// Pressure Poisson: K·φ = −(3/2Δt)·div(u*), φ = Δp_exact on the
		// boundary (the exact increment pins the pressure constant).
		for i := 0; i < n; i++ {
			rhs[i] = 0
		}
		for d := 0; d < 3; d++ {
			grad[d].Apply(uStar[d], div)
			sparse.Axpy(n, -bdf, div, rhs, r)
		}
		presT, presTPrev = t, tPrev
		presBC.EliminateRHS(presBoundary, rhs)
		for i := 0; i < n; i++ {
			phi[i] = 0
		}
		sol, err := krylov.CG(presDM, presPC, rhs, phi, krylov.Options{
			Tol: cfg.Tol, MaxIter: cfg.MaxIter, Work: work, Obs: rec,
		})
		if err != nil {
			return nil, fmt.Errorf("nse: step %d pressure: %w", step, err)
		}
		if !sol.Converged {
			return nil, fmt.Errorf("nse: step %d pressure stalled at %v after %d iters",
				step, sol.Residual, sol.Iterations)
		}

		// Projection update: uⁿ = u* − (2Δt/3)·M_L⁻¹·∇φ; pⁿ = pⁿ⁻¹ + φ;
		// boundary dofs re-pinned to the exact velocity.
		for d := 0; d < 3; d++ {
			grad[d].Apply(phi, gp)
			for i := 0; i < n; i++ {
				uStar[d][i] -= gp[i] / (bdf * mL[i])
			}
			r.ChargeCompute(2*float64(n), 24*float64(n))
			bcComp = comps[d]
			velBC.SetSolution(velBoundary, uStar[d])
		}
		sparse.Axpy(n, 1, phi, p, r)
		clk.SetPhase(vclock.PhaseOther)

		res.StepTimes = append(res.StepTimes, clk.Since(snap))
		res.VelIters = append(res.VelIters, velIters)
		res.PresIters = append(res.PresIters, sol.Iterations)
		for d := 0; d < 3; d++ {
			uPrev2[d], uPrev1[d], uStar[d] = uPrev1[d], uStar[d], uPrev2[d]
		}
		tPrev = t
		res.FinalTime = t
		rec.Step(step + 1)
		rec.StepHalo(step + 1)

		if cfg.Checkpoint != nil {
			st := &ckptBuf[ckptGen]
			ckptGen = 1 - ckptGen
			st.StepsDone = step + 1
			st.Time = t
			if st.P == nil {
				st.P = make([]float64, n)
				for d := 0; d < 3; d++ {
					st.U1[d] = make([]float64, n)
					st.U2[d] = make([]float64, n)
				}
			}
			copy(st.P, p[:n])
			for d := 0; d < 3; d++ {
				copy(st.U1[d], uPrev1[d][:n])
				copy(st.U2[d], uPrev2[d][:n])
			}
			if err := cfg.Checkpoint(*st); err != nil {
				return nil, fmt.Errorf("nse: checkpoint after step %d: %w", step, err)
			}
			rec.Checkpoint("ckpt-write", step+1, 56*int64(n))
		}
	}

	// Global errors vs. the exact solution at the final time.
	for d := 0; d < 3; d++ {
		comp := Component(d)
		exact := func(x, y, z float64) float64 { return comp(x, y, z, res.FinalTime) }
		if e := s.MaxNodalError(uPrev1[d], exact); e > res.VelMaxErr {
			res.VelMaxErr = e
		}
		if e := s.L2NodalError(uPrev1[d], exact); e > res.VelL2Err {
			res.VelL2Err = e
		}
	}
	res.PresL2Err = s.L2NodalError(p, func(x, y, z float64) float64 {
		return ExactPressure(x, y, z, res.FinalTime)
	})
	res.OwnedIDs = append([]int(nil), s.RowMap.Owned...)
	for d := 0; d < 3; d++ {
		res.Velocity[d] = append([]float64(nil), uPrev1[d][:n]...)
	}
	res.Pressure = append([]float64(nil), p[:n]...)
	return res, nil
}

func newPrecond(name string, dm *sparse.DistMatrix, r *mp.Rank) (krylov.Preconditioner, error) {
	switch name {
	case "ilu0":
		return krylov.NewILU0(dm.Local(), dm.NOwned(), r), nil
	case "jacobi":
		return krylov.NewJacobi(dm.Local(), dm.NOwned(), r), nil
	case "sgs":
		return krylov.NewSGS(dm.Local(), dm.NOwned(), r), nil
	case "none":
		return krylov.Identity{}, nil
	default:
		return nil, fmt.Errorf("nse: unknown preconditioner %q", name)
	}
}
