// State redistribution after a world shrink, the Navier–Stokes analogue of
// rd.Redistribute: survivors scatter held checkpoint fragments (their own
// plus buddy copies of the dead) to the owners under the survivor-count
// block decomposition, as real mp traffic, and assemble the resume state.
package nse

import (
	"fmt"
	"math"
	"sort"

	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
)

// HeldState is one pre-shrink rank's worth of checkpointed solver state in
// a survivor's memory: its own snapshot, or a buddy copy of a dead rank's.
type HeldState struct {
	// Rank is the origin rank in the pre-shrink decomposition (diagnostic).
	Rank int
	// OwnedIDs are the global vertex ids the values belong to.
	OwnedIDs []int
	// State is the origin's snapshot; all held states passed to one
	// Redistribute call must share StepsDone and Time.
	State State
}

// valsPerDof is the payload per vertex: three components each of u^{n-1}
// and u^{n-2}, plus pressure.
const valsPerDof = 7

// Redistribute scatters held checkpoint fragments onto the px×py×pz block
// decomposition of m over the calling world and returns the resume state
// plus this rank's owned global ids under the new decomposition. Like its
// rd counterpart it is a collective pure permutation of the stored values —
// ranks that joined at a Grow pass no fragments and only receive — so
// resumption is bit-identical to a run at the new rank count restored from
// the same snapshot. tag and tag+1 must be free application tags.
func Redistribute(r *mp.Rank, m *mesh.Mesh, grid [3]int, held []HeldState, tag int) (State, []int, error) {
	p := r.Size()
	if grid[0]*grid[1]*grid[2] != p {
		return State{}, nil, fmt.Errorf("nse: grid %v for %d ranks", grid, p)
	}
	var step int
	var tm float64
	if len(held) > 0 {
		step, tm = held[0].State.StepsDone, held[0].State.Time
	}
	for _, h := range held {
		n := len(h.OwnedIDs)
		for c := 0; c < 3; c++ {
			if len(h.State.U1[c]) != n || len(h.State.U2[c]) != n {
				return State{}, nil, fmt.Errorf("nse: origin %d holds %d ids but component %d has %d/%d values",
					h.Rank, n, c, len(h.State.U1[c]), len(h.State.U2[c]))
			}
		}
		if len(h.State.P) != n {
			return State{}, nil, fmt.Errorf("nse: origin %d holds %d ids for %d pressures", h.Rank, n, len(h.State.P))
		}
		if h.State.StepsDone != step || h.State.Time != tm {
			return State{}, nil, fmt.Errorf("nse: origin %d at step %d (t=%v), origin %d at step %d (t=%v)",
				held[0].Rank, step, tm, h.Rank, h.State.StepsDone, h.State.Time)
		}
	}
	// Empty-handed ranks contribute -Inf, the OpMax identity, so they adopt
	// the holders' restore line without constraining it (see rd).
	local := []float64{float64(step), tm, -float64(step), -tm}
	if len(held) == 0 {
		for i := range local {
			local[i] = math.Inf(-1)
		}
	}
	agree := r.Allreduce(mp.OpMax, local)
	if math.IsInf(agree[0], -1) {
		return State{}, nil, fmt.Errorf("nse: no rank holds any state to redistribute")
	}
	if agree[0] != -agree[2] || agree[1] != -agree[3] {
		return State{}, nil, fmt.Errorf("nse: ranks disagree on the restore line (steps up to %v, times up to %v)",
			agree[0], agree[1])
	}
	step, tm = int(agree[0]), agree[1]

	sort.Slice(held, func(a, b int) bool { return held[a].Rank < held[b].Rank })
	sendIDs := make([][]int, p)
	sendVals := make([][]float64, p) // u1 xyz, u2 xyz, p per dof
	for _, h := range held {
		for i, gid := range h.OwnedIDs {
			d := mesh.VertexOwnerOnBlocks(m, grid[0], grid[1], grid[2], gid)
			sendIDs[d] = append(sendIDs[d], gid)
			sendVals[d] = append(sendVals[d],
				h.State.U1[0][i], h.State.U1[1][i], h.State.U1[2][i],
				h.State.U2[0][i], h.State.U2[1][i], h.State.U2[2][i],
				h.State.P[i])
		}
		r.ChargeCompute(10*float64(len(h.OwnedIDs)), 8*valsPerDof*float64(len(h.OwnedIDs)))
	}

	recvIDs := [][]int{sendIDs[r.ID()]}
	recvVals := [][]float64{sendVals[r.ID()]}
	for s := 1; s < p; s++ {
		dst := (r.ID() + s) % p
		src := (r.ID() - s + p) % p
		r.SendInts(dst, tag, sendIDs[dst])
		r.SendF64(dst, tag+1, sendVals[dst])
		ids := r.RecvInts(src, tag)
		vals := r.RecvF64(src, tag+1)
		if valsPerDof*len(ids) != len(vals) {
			return State{}, nil, fmt.Errorf("nse: rank %d sent %d ids with %d values", src, len(ids), len(vals))
		}
		recvIDs = append(recvIDs, ids)
		recvVals = append(recvVals, vals)
	}

	l, err := mesh.NewLocalFromBlock(m, grid[0], grid[1], grid[2], r.ID())
	if err != nil {
		return State{}, nil, err
	}
	owned := append([]int(nil), l.VertGlobal[:l.NumOwned]...)
	idx := make(map[int]int, len(owned))
	for i, gid := range owned {
		idx[gid] = i
	}
	st := State{StepsDone: step, Time: tm, P: make([]float64, len(owned))}
	for c := 0; c < 3; c++ {
		st.U1[c] = make([]float64, len(owned))
		st.U2[c] = make([]float64, len(owned))
	}
	filled := make([]bool, len(owned))
	for b, ids := range recvIDs {
		for i, gid := range ids {
			li, ok := idx[gid]
			if !ok {
				return State{}, nil, fmt.Errorf("nse: received vertex %d not owned by rank %d", gid, r.ID())
			}
			if filled[li] {
				return State{}, nil, fmt.Errorf("nse: vertex %d delivered twice", gid)
			}
			filled[li] = true
			v := recvVals[b][valsPerDof*i : valsPerDof*(i+1)]
			st.U1[0][li], st.U1[1][li], st.U1[2][li] = v[0], v[1], v[2]
			st.U2[0][li], st.U2[1][li], st.U2[2][li] = v[3], v[4], v[5]
			st.P[li] = v[6]
		}
	}
	for i, ok := range filled {
		if !ok {
			return State{}, nil, fmt.Errorf("nse: vertex %d of rank %d never delivered — held fragments do not cover the field",
				owned[i], r.ID())
		}
	}
	return st, owned, nil
}
