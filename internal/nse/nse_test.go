package nse

import (
	"fmt"
	"math"
	"testing"

	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/vclock"
)

func runRanks(t *testing.T, nranks int, body func(r *mp.Rank) error) {
	t.Helper()
	topo, err := mp.BlockTopology(nranks, 4)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := netmodel.NewFabric(netmodel.Loopback, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
}

// The Ethier–Steinman field must be divergence free.
func TestExactDivergenceFree(t *testing.T) {
	const h = 1e-6
	pts := [][4]float64{{0.2, -0.3, 0.4, 0.01}, {-0.7, 0.5, -0.1, 0.05}, {0, 0, 0, 0}}
	for _, pt := range pts {
		x, y, z, tt := pt[0], pt[1], pt[2], pt[3]
		ux1, _, _ := ExactVelocity(x+h, y, z, tt)
		ux0, _, _ := ExactVelocity(x-h, y, z, tt)
		_, vy1, _ := ExactVelocity(x, y+h, z, tt)
		_, vy0, _ := ExactVelocity(x, y-h, z, tt)
		_, _, wz1 := ExactVelocity(x, y, z+h, tt)
		_, _, wz0 := ExactVelocity(x, y, z-h, tt)
		div := (ux1-ux0)/(2*h) + (vy1-vy0)/(2*h) + (wz1-wz0)/(2*h)
		if math.Abs(div) > 1e-7 {
			t.Fatalf("divergence %v at %v", div, pt)
		}
	}
}

// The Ethier–Steinman pair must satisfy the momentum equation with f = 0:
// ∂u/∂t + (u·∇)u − νΔu + ∇p = 0 (ρ = μ = 1).
func TestExactSatisfiesMomentum(t *testing.T) {
	const h = 1e-4
	pts := [][4]float64{{0.25, -0.35, 0.15, 0.02}, {-0.5, 0.1, 0.6, 0.01}}
	for _, pt := range pts {
		x, y, z, tt := pt[0], pt[1], pt[2], pt[3]
		for d := 0; d < 3; d++ {
			c := Component(d)
			u, v, w := ExactVelocity(x, y, z, tt)
			dudt := (c(x, y, z, tt+h) - c(x, y, z, tt-h)) / (2 * h)
			dx := (c(x+h, y, z, tt) - c(x-h, y, z, tt)) / (2 * h)
			dy := (c(x, y+h, z, tt) - c(x, y-h, z, tt)) / (2 * h)
			dz := (c(x, y, z+h, tt) - c(x, y, z-h, tt)) / (2 * h)
			lap := (c(x+h, y, z, tt) + c(x-h, y, z, tt) +
				c(x, y+h, z, tt) + c(x, y-h, z, tt) +
				c(x, y, z+h, tt) + c(x, y, z-h, tt) - 6*c(x, y, z, tt)) / (h * h)
			var gradP float64
			switch d {
			case 0:
				gradP = (ExactPressure(x+h, y, z, tt) - ExactPressure(x-h, y, z, tt)) / (2 * h)
			case 1:
				gradP = (ExactPressure(x, y+h, z, tt) - ExactPressure(x, y-h, z, tt)) / (2 * h)
			case 2:
				gradP = (ExactPressure(x, y, z+h, tt) - ExactPressure(x, y, z-h, tt)) / (2 * h)
			}
			resid := dudt + u*dx + v*dy + w*dz - nu*lap + gradP
			if math.Abs(resid) > 1e-5 {
				t.Fatalf("momentum residual %v in component %d at %v", resid, d, pt)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("nil mesh accepted")
	}
	m, _ := mesh.NewBox(mesh.SymmetricBox, 2, 2, 2)
	if err := (Config{Mesh: m, Dt: -1}).Validate(); err == nil {
		t.Error("negative dt accepted")
	}
	if err := (Config{Mesh: m}).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNSSerialAccuracy(t *testing.T) {
	m, err := mesh.NewBox(mesh.SymmetricBox, 6, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	runRanks(t, 1, func(r *mp.Rank) error {
		res, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 3})
		if err != nil {
			return err
		}
		// Velocity scale is ~1.9 (max of |u|); demand a few percent.
		if res.VelMaxErr > 0.15 {
			return fmt.Errorf("velocity max error %v too large", res.VelMaxErr)
		}
		if res.VelL2Err > 0.1 {
			return fmt.Errorf("velocity L2 error %v too large", res.VelL2Err)
		}
		if res.PresL2Err > 0.5 {
			return fmt.Errorf("pressure L2 error %v too large", res.PresL2Err)
		}
		if len(res.StepTimes) != 3 {
			return fmt.Errorf("expected 3 step records, got %d", len(res.StepTimes))
		}
		for k, st := range res.StepTimes {
			if st.Phase(vclock.PhaseAssembly) <= 0 || st.Phase(vclock.PhasePrecond) <= 0 ||
				st.Phase(vclock.PhaseSolve) <= 0 {
				return fmt.Errorf("step %d has empty phase: %+v", k, st)
			}
		}
		for k := range res.VelIters {
			if res.VelIters[k] < 3 || res.PresIters[k] < 1 {
				return fmt.Errorf("implausible iteration counts at step %d: %d/%d",
					k, res.VelIters[k], res.PresIters[k])
			}
		}
		return nil
	})
}

func TestNSSpatialConvergence(t *testing.T) {
	errs := map[int]float64{}
	for _, nn := range []int{3, 6} {
		m, _ := mesh.NewBox(mesh.SymmetricBox, nn, nn, nn)
		runRanks(t, 1, func(r *mp.Rank) error {
			res, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 2, Dt: 0.001})
			if err != nil {
				return err
			}
			errs[nn] = res.VelL2Err
			return nil
		})
	}
	if ratio := errs[3] / errs[6]; ratio < 2 {
		t.Fatalf("velocity L2 convergence ratio %v (errors %v); want ≥ 2", ratio, errs)
	}
}

func TestNSParallelMatchesSerial(t *testing.T) {
	m, _ := mesh.NewBox(mesh.SymmetricBox, 4, 4, 4)
	var serial, par *Result
	runRanks(t, 1, func(r *mp.Rank) error {
		res, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 2})
		serial = res
		return err
	})
	runRanks(t, 8, func(r *mp.Rank) error {
		res, err := Run(r, Config{Mesh: m, Grid: [3]int{2, 2, 2}, Steps: 2})
		if r.ID() == 0 {
			par = res
		}
		return err
	})
	// Discretisation error dominates; the runs must agree to solver
	// tolerance levels, far below the discretisation error itself.
	if math.Abs(serial.VelL2Err-par.VelL2Err) > 1e-4*(1+serial.VelL2Err) {
		t.Fatalf("serial %v vs parallel %v velocity L2 error", serial.VelL2Err, par.VelL2Err)
	}
}

func TestNSMoreExpensiveThanItsParts(t *testing.T) {
	// The NS step must charge substantially more virtual compute than an RD
	// step would: at least 3 velocity solves + pressure. Sanity-check that
	// solve-phase virtual time dominates and is positive on a realistic
	// fabric.
	m, _ := mesh.NewBox(mesh.SymmetricBox, 4, 4, 4)
	topo, _ := mp.BlockTopology(8, 4)
	fab, _ := netmodel.NewFabric(netmodel.GigE, topo.NNodes())
	w, _ := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 2e9, BytesPerSec: 4e9})
	err := w.Run(func(r *mp.Rank) error {
		res, err := Run(r, Config{Mesh: m, Grid: [3]int{2, 2, 2}, Steps: 2})
		if err != nil {
			return err
		}
		for _, st := range res.StepTimes {
			if st.Phase(vclock.PhaseSolve) <= st.Phase(vclock.PhasePrecond)/10 {
				return fmt.Errorf("solve phase implausibly small: %+v", st)
			}
			var comm float64
			for _, p := range vclock.Phases {
				comm += st.Comm[p]
			}
			if comm <= 0 {
				return fmt.Errorf("no communication charged")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNSGMRESVelocitySolver(t *testing.T) {
	m, _ := mesh.NewBox(mesh.SymmetricBox, 4, 4, 4)
	var bicg, gmres *Result
	runRanks(t, 1, func(r *mp.Rank) error {
		res, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 2})
		bicg = res
		return err
	})
	runRanks(t, 1, func(r *mp.Rank) error {
		res, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 2,
			VelocitySolver: "gmres"})
		gmres = res
		return err
	})
	// Both solvers must reach the same discrete solution (same systems,
	// tolerance-level agreement), so the final errors essentially coincide.
	if math.Abs(bicg.VelL2Err-gmres.VelL2Err) > 1e-3*(1+bicg.VelL2Err) {
		t.Fatalf("BiCGStab error %v vs GMRES error %v", bicg.VelL2Err, gmres.VelL2Err)
	}
}

func TestNSVelocitySolverValidation(t *testing.T) {
	m, _ := mesh.NewBox(mesh.SymmetricBox, 2, 2, 2)
	if err := (Config{Mesh: m, VelocitySolver: "sor"}).Validate(); err == nil {
		t.Fatal("unknown solver accepted")
	}
}
