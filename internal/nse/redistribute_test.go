package nse

import (
	"math"
	"sync"
	"testing"

	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
)

func nsFragment(t *testing.T, m *mesh.Mesh, gridOld [3]int, origin, step int, tm float64) HeldState {
	t.Helper()
	l, err := mesh.NewLocalFromBlock(m, gridOld[0], gridOld[1], gridOld[2], origin)
	if err != nil {
		t.Fatal(err)
	}
	owned := append([]int(nil), l.VertGlobal[:l.NumOwned]...)
	st := State{StepsDone: step, Time: tm, P: make([]float64, len(owned))}
	for c := 0; c < 3; c++ {
		st.U1[c] = make([]float64, len(owned))
		st.U2[c] = make([]float64, len(owned))
	}
	for i, gid := range owned {
		for c := 0; c < 3; c++ {
			st.U1[c][i] = float64(gid) + 0.1*float64(c)
			st.U2[c][i] = 1.0 / float64(gid+2+c)
		}
		st.P[i] = math.Sin(float64(gid))
	}
	return HeldState{Rank: origin, OwnedIDs: owned, State: st}
}

func TestNSRedistributeIsAnExactPermutation(t *testing.T) {
	m := mesh.NewUnitCube(4)
	gridOld := [3]int{2, 2, 1} // 4 old ranks
	gridNew := [3]int{3, 1, 1} // 3 survivors, non-cubic
	heldBy := [][]int{{0, 3}, {1}, {2}}

	var mu sync.Mutex
	gotIDs := make([][]int, 3)
	gotSt := make([]State, 3)
	runRanks(t, 3, func(r *mp.Rank) error {
		var held []HeldState
		for _, origin := range heldBy[r.ID()] {
			held = append(held, nsFragment(t, m, gridOld, origin, 2, 0.25))
		}
		st, owned, err := Redistribute(r, m, gridNew, held, 9100)
		if err != nil {
			return err
		}
		mu.Lock()
		gotIDs[r.ID()], gotSt[r.ID()] = owned, st
		mu.Unlock()
		return nil
	})

	seen := map[int]bool{}
	for rk := 0; rk < 3; rk++ {
		if gotSt[rk].StepsDone != 2 || gotSt[rk].Time != 0.25 {
			t.Fatalf("rank %d resumed at step %d t=%v", rk, gotSt[rk].StepsDone, gotSt[rk].Time)
		}
		for i, gid := range gotIDs[rk] {
			if seen[gid] {
				t.Fatalf("vertex %d owned twice", gid)
			}
			seen[gid] = true
			for c := 0; c < 3; c++ {
				if math.Float64bits(gotSt[rk].U1[c][i]) != math.Float64bits(float64(gid)+0.1*float64(c)) {
					t.Fatalf("u1[%d] at vertex %d not bit-identical", c, gid)
				}
				if math.Float64bits(gotSt[rk].U2[c][i]) != math.Float64bits(1.0/float64(gid+2+c)) {
					t.Fatalf("u2[%d] at vertex %d not bit-identical", c, gid)
				}
			}
			if math.Float64bits(gotSt[rk].P[i]) != math.Float64bits(math.Sin(float64(gid))) {
				t.Fatalf("pressure at vertex %d not bit-identical", gid)
			}
		}
	}
	if len(seen) != m.NumVerts() {
		t.Fatalf("redistribution covered %d of %d vertices", len(seen), m.NumVerts())
	}
}
