// Package nse implements the paper's second test case (§IV-B): the 3-D
// incompressible Navier–Stokes equations on the classical Ethier–Steinman
// benchmark [21], "a popular non-trivial benchmark for CFD solvers" with an
// exact fully-3D solution. Time is discretised with BDF2 and the saddle
// point is split with an incremental pressure-correction (Chorin–Temam)
// projection: per step, three nonsymmetric convection–diffusion velocity
// solves (BiCGStab) and one pressure Poisson solve (CG) — four scalar
// fields of work and halo traffic, matching the paper's observation that
// the NS test "involves two variables" (vector velocity + pressure) and
// exchanges far more data than RD.
//
// The paper's LifeV solver used coupled P2/P1 elements; the substitution to
// Q1/Q1 projection preserves the phase structure and communication pattern
// (see DESIGN.md §2).
package nse

import "math"

// Parameters of the Ethier–Steinman solution. With ρ = μ = 1 the kinematic
// viscosity ν is 1.
const (
	aES = math.Pi / 4
	dES = math.Pi / 2
	nu  = 1.0
)

// ExactVelocity returns the Ethier–Steinman velocity (u₁,u₂,u₃) at (x,y,z,t).
func ExactVelocity(x, y, z, t float64) (u, v, w float64) {
	e := math.Exp(-nu * dES * dES * t)
	u = -aES * (math.Exp(aES*x)*math.Sin(aES*y+dES*z) + math.Exp(aES*z)*math.Cos(aES*x+dES*y)) * e
	v = -aES * (math.Exp(aES*y)*math.Sin(aES*z+dES*x) + math.Exp(aES*x)*math.Cos(aES*y+dES*z)) * e
	w = -aES * (math.Exp(aES*z)*math.Sin(aES*x+dES*y) + math.Exp(aES*y)*math.Cos(aES*z+dES*x)) * e
	return
}

// ExactPressure returns the Ethier–Steinman pressure at (x,y,z,t).
func ExactPressure(x, y, z, t float64) float64 {
	e2 := math.Exp(-2 * nu * dES * dES * t)
	return -aES * aES / 2 * e2 *
		(math.Exp(2*aES*x) + math.Exp(2*aES*y) + math.Exp(2*aES*z) +
			2*math.Sin(aES*x+dES*y)*math.Cos(aES*z+dES*x)*math.Exp(aES*(y+z)) +
			2*math.Sin(aES*y+dES*z)*math.Cos(aES*x+dES*y)*math.Exp(aES*(z+x)) +
			2*math.Sin(aES*z+dES*x)*math.Cos(aES*y+dES*z)*math.Exp(aES*(x+y)))
}

// Component returns the d-th exact velocity component (d in 0..2).
func Component(d int) func(x, y, z, t float64) float64 {
	return func(x, y, z, t float64) float64 {
		u, v, w := ExactVelocity(x, y, z, t)
		switch d {
		case 0:
			return u
		case 1:
			return v
		default:
			return w
		}
	}
}
