// Package provision models the deployment-effort dimension of the paper
// (§VI, Table I): the LifeV software stack's dependency graph, what each of
// the four platforms provided before porting, and a resolver that plans the
// installation steps — preferring what is already compatible on the target,
// then package repositories (yum, root access required), then source builds
// — exactly the policy the authors followed ("we utilized all compatible
// software that was already available on the target … and resorted to
// installation, preferably from package repositories, only if the
// dependency was missing or incompatible").
//
// Effort-hour constants are calibrated to the paper's reports: ≈8 man-hours
// of preconditioning on ellipse and lagrange, about a day on EC2 including
// the cloud-specific tasks (system update, ssh mutual authentication,
// security-group configuration, boot-partition resize, image creation).
package provision

import (
	"fmt"
	"sort"
	"strings"
)

// Method is how a dependency gets provided on a target.
type Method string

const (
	// Preinstalled: already present in a compatible version.
	Preinstalled Method = "preinstalled"
	// Yum: installed from the system package repository (root required).
	Yum Method = "yum"
	// Source: downloaded and built from source in user space.
	Source Method = "source"
)

// Package is one node of the dependency graph (§IV-D).
type Package struct {
	// Name is the canonical lower-case package name.
	Name string
	// Version is the version the study installed.
	Version string
	// Deps lists package names that must be provided first.
	Deps []string
	// SourceHours is the effort of a source build; YumHours of a repository
	// install (0 means not available via repository).
	SourceHours float64
	YumHours    float64
	// Note explains quirks (e.g. HDF5's 1.6 compatibility interface).
	Note string
}

// Registry is the package universe keyed by name.
type Registry map[string]*Package

// DefaultRegistry returns the LifeV dependency stack of §IV-D with the
// versions of §VI.
func DefaultRegistry() Registry {
	pkgs := []*Package{
		{Name: "gcc", Version: "4.x", SourceHours: 3, YumHours: 0.2,
			Note: "C/C++ compiler, version 4 or above"},
		{Name: "gfortran", Version: "4.x", Deps: []string{"gcc"}, SourceHours: 1, YumHours: 0.2,
			Note: "optional Fortran compiler, compatible with C++"},
		{Name: "make", Version: "GNU", SourceHours: 0.5, YumHours: 0.1},
		{Name: "autotools", Version: "autoconf 2.59 / automake 1.9.6 / libtool 1.5.22",
			SourceHours: 0.5, YumHours: 0.2},
		{Name: "cmake", Version: "2.8", Deps: []string{"gcc", "make"}, SourceHours: 0.5,
			Note: "2.8 required; older repositories ship 2.6, forcing source installs"},
		{Name: "openmpi", Version: "1.4.4", Deps: []string{"gcc", "make", "autotools"},
			SourceHours: 1.0, YumHours: 0.25},
		{Name: "blas-lapack", Version: "vendor or generic",
			Deps:        []string{"gfortran", "make"},
			SourceHours: 1.25, YumHours: 0.25,
			Note: "ACML on Opterons, MKL on lagrange, GotoBLAS2 1.13 + LAPACK 3.3.1 on EC2"},
		{Name: "boost", Version: "1.47", Deps: []string{"gcc"}, SourceHours: 1.0,
			Note: "smart pointers for memory management"},
		{Name: "hdf5", Version: "1.8.7", Deps: []string{"openmpi"}, SourceHours: 0.75,
			Note: "built with the 1.6 version interface for compatibility"},
		{Name: "parmetis", Version: "3.1.1", Deps: []string{"openmpi"}, SourceHours: 0.5,
			Note: "mesh partitioning"},
		{Name: "suitesparse", Version: "3.6.1", Deps: []string{"blas-lapack", "make"},
			SourceHours: 0.5, Note: "support library extending Trilinos"},
		{Name: "trilinos", Version: "10.6.4",
			Deps:        []string{"openmpi", "blas-lapack", "hdf5", "parmetis", "suitesparse", "cmake"},
			SourceHours: 2.5, Note: "distributed linear algebra and solvers"},
		{Name: "lifev", Version: "2.0.0",
			Deps:        []string{"trilinos", "boost", "hdf5", "parmetis", "cmake"},
			SourceHours: 1.5, Note: "the FEM library itself"},
		{Name: "app", Version: "CFD simulations", Deps: []string{"lifev", "make"},
			SourceHours: 0.5, Note: "update the Makefile and build the solvers"},
	}
	r := make(Registry, len(pkgs))
	for _, p := range pkgs {
		r[p.Name] = p
	}
	return r
}

// Validate checks the registry for dangling or cyclic dependencies. It
// walks the registry in sorted order so a registry with several problems
// always reports the same one first (map iteration would pick an arbitrary
// error each run — heterolint:maporder).
func (r Registry) Validate() error {
	names := make([]string, 0, len(r))
	for name := range r {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := r[name]
		if p.Name != name {
			return fmt.Errorf("provision: key %q holds package %q", name, p.Name)
		}
		for _, d := range p.Deps {
			if _, ok := r[d]; !ok {
				return fmt.Errorf("provision: %s depends on unknown %q", name, d)
			}
		}
	}
	// Cycle check via the resolver's DFS on every node.
	for _, name := range names {
		if _, err := r.order([]string{name}); err != nil {
			return err
		}
	}
	return nil
}

// order returns a dependency-respecting order of targets' transitive
// closures.
func (r Registry) order(targets []string) ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var out []string
	var visit func(string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("provision: dependency cycle through %q", n)
		case black:
			return nil
		}
		p, ok := r[n]
		if !ok {
			return fmt.Errorf("provision: unknown package %q", n)
		}
		color[n] = gray
		deps := append([]string(nil), p.Deps...)
		sort.Strings(deps) // deterministic plans
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[n] = black
		out = append(out, n)
		return nil
	}
	for _, t := range targets {
		if err := visit(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Task is a non-package activity required on a target (cloud plumbing,
// admin interactions).
type Task struct {
	Name  string
	Hours float64
	Note  string
}

// State describes a target platform before porting (the "before" columns of
// Table I).
type State struct {
	// Platform is the platform name.
	Platform string
	// Preinstalled maps package name -> version already present and
	// compatible.
	Preinstalled map[string]string
	// HasYum is true when the user has root and a system package manager.
	HasYum bool
	// HasImage is true when a preconditioned machine image from an earlier
	// porting exists (§VI-D: "all the changes committed on the running
	// instance can be preserved by creating a private image … used to
	// launch several identical copies"). Resolution then reduces to
	// instantiating the image.
	HasImage bool
	// BLASNote records which vendor BLAS the platform uses.
	BLASNote string
	// ExtraTasks are the platform-specific activities outside package
	// installation.
	ExtraTasks []Task
}

// WithImage returns a copy of the state whose prior porting has been
// captured in a reusable image.
func (st *State) WithImage() *State {
	cp := *st
	cp.HasImage = true
	return &cp
}

// Step is one action of a provisioning plan.
type Step struct {
	Pkg     string
	Version string
	Method  Method
	Hours   float64
	Note    string
}

// Plan is the full provisioning plan for one target.
type Plan struct {
	Platform string
	Steps    []Step
	Extra    []Task
	// InstallHours is the package effort; TotalHours adds the extra tasks.
	InstallHours float64
	TotalHours   float64
}

// Resolve plans the provisioning of targets on the platform described by
// st, following the paper's policy: reuse preinstalled software, prefer
// repositories where root access allows, fall back to source builds.
func Resolve(r Registry, st *State, targets []string) (*Plan, error) {
	if st == nil {
		return nil, fmt.Errorf("provision: nil platform state")
	}
	order, err := r.order(targets)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Platform: st.Platform}
	if st.HasImage {
		// A preconditioned image turns the whole stack into one launch step.
		for _, name := range order {
			plan.Steps = append(plan.Steps, Step{
				Pkg: name, Version: r[name].Version, Method: Preinstalled,
				Note: "baked into the preconditioned image",
			})
		}
		plan.Extra = append(plan.Extra, Task{
			Name: "instantiate preconditioned image", Hours: 0.1,
			Note: "launch identical on-demand copies of the saved image",
		})
		plan.TotalHours = 0.1
		return plan, nil
	}
	for _, name := range order {
		p := r[name]
		var s Step
		switch {
		case st.Preinstalled[name] != "":
			s = Step{Pkg: name, Version: st.Preinstalled[name], Method: Preinstalled}
		case st.HasYum && p.YumHours > 0:
			s = Step{Pkg: name, Version: p.Version, Method: Yum, Hours: p.YumHours}
		default:
			s = Step{Pkg: name, Version: p.Version, Method: Source, Hours: p.SourceHours}
		}
		s.Note = p.Note
		plan.Steps = append(plan.Steps, s)
		plan.InstallHours += s.Hours
	}
	plan.Extra = append(plan.Extra, st.ExtraTasks...)
	plan.TotalHours = plan.InstallHours
	for _, t := range plan.Extra {
		plan.TotalHours += t.Hours
	}
	return plan, nil
}

// AppTargets is the top-level build goal: the CFD applications.
var AppTargets = []string{"app"}

// Script renders the plan as an annotated shell-like script — the runbook a
// team member would follow (or automate, which the paper names as future
// work via tools like doit and StarCluster).
func (p *Plan) Script() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#!/bin/sh\n# provisioning runbook for %s (estimated %.1f man-hours)\nset -e\n\n", p.Platform, p.TotalHours)
	for _, t := range p.Extra {
		fmt.Fprintf(&b, "# task: %s (%.1f h) — %s\n", t.Name, t.Hours, t.Note)
	}
	if len(p.Extra) > 0 {
		b.WriteString("\n")
	}
	for _, s := range p.Steps {
		switch s.Method {
		case Preinstalled:
			fmt.Fprintf(&b, "# %s %s: already provided by the platform\n", s.Pkg, s.Version)
		case Yum:
			fmt.Fprintf(&b, "yum install -y %s   # %s (%.1f h incl. verification)\n",
				s.Pkg, s.Version, s.Hours)
		case Source:
			fmt.Fprintf(&b, "fetch-and-build %s %s   # user-space source install (%.1f h)",
				s.Pkg, s.Version, s.Hours)
			if s.Note != "" {
				fmt.Fprintf(&b, " — %s", s.Note)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
