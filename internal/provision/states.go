package provision

import "fmt"

// PlatformState returns the pre-porting state of one of the paper's four
// platforms (§V, §VI).
func PlatformState(name string) (*State, error) {
	switch name {
	case "puma":
		// The home platform: "pre-provisioned with the entire set of
		// packages required to run LifeV-based CFD simulations" — only the
		// application itself is built, with a generic Makefile.
		return &State{
			Platform: "puma",
			Preinstalled: map[string]string{
				"gcc": "4.3.4", "gfortran": "4.3.4", "make": "GNU",
				"autotools": "present", "cmake": "2.8",
				"openmpi": "Open MPI", "blas-lapack": "present",
				"boost": "present", "hdf5": "present", "parmetis": "present",
				"suitesparse": "present", "trilinos": "present", "lifev": "present",
			},
		}, nil
	case "ellipse":
		// Compilers and build toolkits present; every scientific dependency
		// built from source in user space; ACML for BLAS/LAPACK (§VI-B).
		return &State{
			Platform: "ellipse",
			Preinstalled: map[string]string{
				"gcc": "4.1.2", "gfortran": "4.1.2", "make": "GNU",
				"autotools": "present", "cmake": "2.8",
			},
			BLASNote: "ACML 4.0.1 (CPU vendor implementation)",
			ExtraTasks: []Task{
				{Name: "SGE parallel-launch workaround", Hours: 0.5,
					Note: "SGE schedules serial batches only; Open MPI detects and liaises with it"},
			},
		}, nil
	case "lagrange":
		// Compilers, MPI flavours and MKL provided by CILEA; Boost,
		// SuiteSparse, HDF5, ParMETIS, Trilinos, LifeV built from source
		// (§VI-C).
		return &State{
			Platform: "lagrange",
			Preinstalled: map[string]string{
				"gcc": "4.1.2 (and Intel 12.1)", "gfortran": "4.1.2", "make": "GNU",
				"autotools": "present", "cmake": "2.8",
				"openmpi": "Open MPI / Intel MPI", "blas-lapack": "MKL",
			},
			BLASNote: "Intel MKL (vendor implementation)",
			ExtraTasks: []Task{
				{Name: "admin interactions", Hours: 0.5,
					Note: "requests to the CILEA HPC group for environment details"},
			},
		}, nil
	case "ec2":
		// A bare CentOS 5.4 HVM image: "neither development software nor
		// scientific library support"; root access enables yum for the
		// toolchain, everything scientific from source; plus the
		// cloud-specific plumbing of §VI-D.
		return &State{
			Platform:     "ec2",
			Preinstalled: map[string]string{},
			HasYum:       true,
			BLASNote:     "GotoBLAS2 1.13 + LAPACK 3.3.1 (source)",
			ExtraTasks: []Task{
				{Name: "yum system update", Hours: 0.5,
					Note: "the CentOS 5.4 image contained obsolete software"},
				{Name: "ssh mutual authentication", Hours: 0.5,
					Note: "pre-generate and store host keys so mpiexec can launch remote processes"},
				{Name: "security group configuration", Hours: 0.3,
					Note: "enable all intranet TCP ports for MPI intercommunication"},
				{Name: "boot partition resize", Hours: 0.7,
					Note: "20GB image too small for problem meshes; grew the boot volume"},
				{Name: "private AMI creation", Hours: 0.5,
					Note: "preserve the preconditioned image for identical on-demand copies"},
			},
		}, nil
	default:
		return nil, fmt.Errorf("provision: no recorded state for platform %q", name)
	}
}

// PaperPlatforms lists the platforms with recorded pre-porting states.
var PaperPlatforms = []string{"puma", "ellipse", "lagrange", "ec2"}
