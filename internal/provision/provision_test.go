package provision

import (
	"strings"
	"testing"
)

func TestDefaultRegistryValid(t *testing.T) {
	if err := DefaultRegistry().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryValidateCatchesDangling(t *testing.T) {
	r := Registry{"a": {Name: "a", Deps: []string{"ghost"}}}
	if err := r.Validate(); err == nil {
		t.Fatal("dangling dependency accepted")
	}
}

func TestRegistryValidateCatchesCycles(t *testing.T) {
	r := Registry{
		"a": {Name: "a", Deps: []string{"b"}},
		"b": {Name: "b", Deps: []string{"a"}},
	}
	if err := r.Validate(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestResolveTopologicalOrder(t *testing.T) {
	r := DefaultRegistry()
	st, err := PlatformState("ec2")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Resolve(r, st, AppTargets)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, s := range plan.Steps {
		pos[s.Pkg] = i
	}
	for _, s := range plan.Steps {
		for _, d := range r[s.Pkg].Deps {
			dp, ok := pos[d]
			if !ok {
				t.Fatalf("%s installed without dependency %s", s.Pkg, d)
			}
			if dp >= pos[s.Pkg] {
				t.Fatalf("%s installed before its dependency %s", s.Pkg, d)
			}
		}
	}
}

func TestResolveDeterministic(t *testing.T) {
	r := DefaultRegistry()
	st, _ := PlatformState("ellipse")
	p1, err := Resolve(r, st, AppTargets)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Resolve(r, st, AppTargets)
	if len(p1.Steps) != len(p2.Steps) {
		t.Fatal("plans differ in length")
	}
	for i := range p1.Steps {
		if p1.Steps[i] != p2.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, p1.Steps[i], p2.Steps[i])
		}
	}
}

// §VI narratives: puma needs essentially nothing; ellipse and lagrange take
// about 8 man-hours; EC2 takes on the order of a day including the
// cloud-specific tasks.
func TestEffortMatchesPaper(t *testing.T) {
	r := DefaultRegistry()
	hours := map[string]float64{}
	for _, name := range PaperPlatforms {
		st, err := PlatformState(name)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Resolve(r, st, AppTargets)
		if err != nil {
			t.Fatal(err)
		}
		hours[name] = plan.TotalHours
	}
	if hours["puma"] > 1 {
		t.Errorf("puma effort %v h; home platform should be nearly free", hours["puma"])
	}
	for _, n := range []string{"ellipse", "lagrange"} {
		if hours[n] < 6 || hours[n] > 10 {
			t.Errorf("%s effort %v h, paper reports about 8", n, hours[n])
		}
	}
	if hours["ec2"] < 9 || hours["ec2"] > 14 {
		t.Errorf("ec2 effort %v h, paper reports about a day", hours["ec2"])
	}
	// Ordering: puma < {ellipse, lagrange} < ec2.
	if !(hours["puma"] < hours["ellipse"] && hours["ellipse"] < hours["ec2"] &&
		hours["puma"] < hours["lagrange"] && hours["lagrange"] < hours["ec2"]) {
		t.Errorf("effort ordering violated: %v", hours)
	}
}

// Method selection policy (§VI): reuse > repository > source.
func TestMethodSelection(t *testing.T) {
	r := DefaultRegistry()

	// puma: everything preinstalled except the app itself.
	st, _ := PlatformState("puma")
	plan, _ := Resolve(r, st, AppTargets)
	for _, s := range plan.Steps {
		if s.Pkg == "app" {
			if s.Method != Source {
				t.Errorf("app should be built, got %s", s.Method)
			}
		} else if s.Method != Preinstalled {
			t.Errorf("puma %s via %s, want preinstalled", s.Pkg, s.Method)
		}
	}

	// ec2: toolchain via yum (root access), science stack from source,
	// cmake from source because repositories only carry 2.6.
	st, _ = PlatformState("ec2")
	plan, _ = Resolve(r, st, AppTargets)
	methods := map[string]Method{}
	for _, s := range plan.Steps {
		methods[s.Pkg] = s.Method
	}
	for _, pkg := range []string{"gcc", "gfortran", "openmpi", "autotools"} {
		if methods[pkg] != Yum {
			t.Errorf("ec2 %s via %s, want yum", pkg, methods[pkg])
		}
	}
	for _, pkg := range []string{"cmake", "boost", "hdf5", "parmetis", "suitesparse", "trilinos", "lifev"} {
		if methods[pkg] != Source {
			t.Errorf("ec2 %s via %s, want source", pkg, methods[pkg])
		}
	}

	// ellipse: no root — everything missing is source-built.
	st, _ = PlatformState("ellipse")
	plan, _ = Resolve(r, st, AppTargets)
	for _, s := range plan.Steps {
		if s.Method == Yum {
			t.Errorf("ellipse cannot yum-install %s (user space only)", s.Pkg)
		}
	}

	// lagrange: MPI and BLAS preinstalled (vendor), trilinos from source.
	st, _ = PlatformState("lagrange")
	plan, _ = Resolve(r, st, AppTargets)
	methods = map[string]Method{}
	for _, s := range plan.Steps {
		methods[s.Pkg] = s.Method
	}
	if methods["openmpi"] != Preinstalled || methods["blas-lapack"] != Preinstalled {
		t.Errorf("lagrange MPI/BLAS should be preinstalled: %v %v",
			methods["openmpi"], methods["blas-lapack"])
	}
	if methods["trilinos"] != Source {
		t.Errorf("lagrange trilinos via %v", methods["trilinos"])
	}
}

func TestResolveErrors(t *testing.T) {
	r := DefaultRegistry()
	if _, err := Resolve(r, nil, AppTargets); err == nil {
		t.Error("nil state accepted")
	}
	st, _ := PlatformState("puma")
	if _, err := Resolve(r, st, []string{"ghost"}); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := PlatformState("bogus"); err == nil {
		t.Error("unknown platform state accepted")
	}
}

func TestPlanCoversFullStack(t *testing.T) {
	// Every package of §IV-D must appear in the EC2 plan (nothing was
	// preinstalled there).
	r := DefaultRegistry()
	st, _ := PlatformState("ec2")
	plan, _ := Resolve(r, st, AppTargets)
	want := []string{"gcc", "make", "cmake", "openmpi", "blas-lapack", "boost",
		"hdf5", "parmetis", "suitesparse", "trilinos", "lifev", "app"}
	seen := map[string]bool{}
	for _, s := range plan.Steps {
		seen[s.Pkg] = true
	}
	for _, p := range want {
		if !seen[p] {
			t.Errorf("EC2 plan missing %s", p)
		}
	}
}

func TestPlanScript(t *testing.T) {
	r := DefaultRegistry()
	st, _ := PlatformState("ec2")
	plan, _ := Resolve(r, st, AppTargets)
	script := plan.Script()
	for _, want := range []string{
		"#!/bin/sh",
		"yum install -y gcc",
		"fetch-and-build trilinos 10.6.4",
		"ssh mutual authentication",
	} {
		if !containsStr(script, want) {
			t.Errorf("script missing %q:\n%s", want, script)
		}
	}
	// The home platform's script is almost all comments.
	stP, _ := PlatformState("puma")
	planP, _ := Resolve(r, stP, AppTargets)
	if containsStr(planP.Script(), "yum install") {
		t.Error("puma script should not use yum")
	}
	if !containsStr(planP.Script(), "already provided") {
		t.Error("puma script should mark preinstalled packages")
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && strings.Contains(haystack, needle)
}

// §VI-D: once the preconditioned image exists, re-provisioning EC2 costs a
// launch, not a day.
func TestImageReuse(t *testing.T) {
	r := DefaultRegistry()
	st, _ := PlatformState("ec2")
	fresh, err := Resolve(r, st, AppTargets)
	if err != nil {
		t.Fatal(err)
	}
	imaged, err := Resolve(r, st.WithImage(), AppTargets)
	if err != nil {
		t.Fatal(err)
	}
	if imaged.TotalHours >= 1 {
		t.Fatalf("image launch costs %v h, want well under 1", imaged.TotalHours)
	}
	if fresh.TotalHours < 10*imaged.TotalHours {
		t.Fatalf("fresh port (%v h) should dwarf image reuse (%v h)",
			fresh.TotalHours, imaged.TotalHours)
	}
	for _, s := range imaged.Steps {
		if s.Method != Preinstalled {
			t.Fatalf("imaged plan still installs %s via %s", s.Pkg, s.Method)
		}
	}
	// The original state must be unmodified.
	if st.HasImage {
		t.Fatal("WithImage mutated the receiver")
	}
}
