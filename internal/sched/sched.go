// Package sched models the execution layer of the four platforms (§V,
// §VII-A): the job schedulers (PBS on puma/lagrange, SGE on ellipse, plain
// shell on EC2), their launch limits, and the availability dimension the
// paper highlights — "local and grid resources are often subject to long
// queue wait times" while "IaaS's provide resources immediately".
//
// Two empirically-observed failure modes are encoded as typed errors so the
// weak-scaling harness truncates its series exactly where the paper's runs
// did: ellipse could not launch jobs above 512 processes (mpiexec failed to
// initialise that many remote daemons through the serial-only SGE), and
// lagrange aborted jobs above 343 processes on a configured InfiniBand
// adapter data-volume cap.
package sched

import (
	"errors"
	"fmt"
	"math"

	"heterohpc/internal/platform"
	"heterohpc/internal/stats"
)

// Typed scheduling failures.
var (
	// ErrTooLarge: the job asks for more cores than the machine has.
	ErrTooLarge = errors.New("sched: job exceeds machine size")
	// ErrLaunchLimit: the launcher cannot start that many remote processes
	// (ellipse above 512 ranks).
	ErrLaunchLimit = errors.New("sched: launcher failed to start remote MPI daemons")
	// ErrIBVolumeCap: the configured InfiniBand adapter data-volume limit
	// aborts the job (lagrange above 343 ranks).
	ErrIBVolumeCap = errors.New("sched: InfiniBand adapter data-volume limit exceeded")
	// ErrInsufficientMemory: the per-rank working set exceeds RAM per core.
	ErrInsufficientMemory = errors.New("sched: insufficient memory per core")
)

// Scheduler is the execution manager of one platform.
type Scheduler struct {
	p   *platform.Platform
	rng *stats.RNG
}

// New builds a scheduler for p with a deterministic availability stream.
func New(p *platform.Platform, seed uint64) *Scheduler {
	return &Scheduler{p: p, rng: stats.NewRNG(seed)}
}

// Platform returns the scheduled platform.
func (s *Scheduler) Platform() *platform.Platform { return s.p }

// Admit checks whether a job of ranks ranks needing memPerRankGB gigabytes
// per rank can run, returning one of the typed errors above otherwise.
func (s *Scheduler) Admit(ranks int, memPerRankGB float64) error {
	if ranks < 1 {
		return fmt.Errorf("sched: non-positive rank count %d", ranks)
	}
	p := s.p
	if ranks > p.TotalCores() {
		return fmt.Errorf("%w: %d ranks on %d cores (%s)",
			ErrTooLarge, ranks, p.TotalCores(), p.Name)
	}
	if p.MaxLaunchRanks > 0 && ranks > p.MaxLaunchRanks {
		return fmt.Errorf("%w: %d ranks > launch limit %d (%s)",
			ErrLaunchLimit, ranks, p.MaxLaunchRanks, p.Name)
	}
	if p.MaxVolumeRanks > 0 && ranks > p.MaxVolumeRanks {
		return fmt.Errorf("%w: %d ranks > volume-capped %d (%s)",
			ErrIBVolumeCap, ranks, p.MaxVolumeRanks, p.Name)
	}
	if memPerRankGB > p.RAMPerCoreGB() {
		return fmt.Errorf("%w: %.2f GB/rank > %.2f GB/core (%s)",
			ErrInsufficientMemory, memPerRankGB, p.RAMPerCoreGB(), p.Name)
	}
	return nil
}

// QueueWait samples the seconds a job of nodes nodes waits before starting.
// The model is log-normal around the platform's median, inflated by the
// fraction of the machine requested (big jobs wait longer on shared
// clusters and grids; EC2 boot time is nearly flat).
func (s *Scheduler) QueueWait(nodes int) float64 {
	p := s.p
	frac := float64(nodes) / float64(p.MaxNodes)
	if frac > 1 {
		frac = 1
	}
	median := p.QueueWaitMedianS * (1 + 2*frac)
	mu := math.Log(median)
	return s.rng.LogNormal(mu, p.QueueWaitSigma)
}

// QueueWaitQuantiles summarises the wait distribution over n samples
// (used by the availability report, Experiment E9).
func (s *Scheduler) QueueWaitQuantiles(nodes, n int) (p10, p50, p90 float64) {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.QueueWait(nodes)
	}
	return stats.Quantile(xs, 0.1), stats.Quantile(xs, 0.5), stats.Quantile(xs, 0.9)
}
