package sched

import (
	"errors"
	"testing"

	"heterohpc/internal/platform"
)

func get(t *testing.T, name string) *platform.Platform {
	t.Helper()
	p, err := platform.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The paper's weak-scaling series truncation points (§VII-A): puma is
// size-limited at 128 cores, ellipse launch-fails above 512, lagrange
// volume-caps above 343, ec2 runs the full 1000.
func TestAdmitReproducesPaperLimits(t *testing.T) {
	series := []int{1, 8, 27, 64, 125, 216, 343, 512, 729, 1000}
	wantMax := map[string]int{"puma": 125, "ellipse": 512, "lagrange": 343, "ec2": 1000}
	for name, maxOK := range wantMax {
		s := New(get(t, name), 1)
		for _, p := range series {
			err := s.Admit(p, 0.05)
			if p <= maxOK && err != nil {
				t.Errorf("%s should admit %d ranks: %v", name, p, err)
			}
			if p > maxOK && err == nil {
				t.Errorf("%s admitted %d ranks", name, p)
			}
		}
	}
}

func TestAdmitErrorKinds(t *testing.T) {
	if err := New(get(t, "puma"), 1).Admit(500, 0.05); !errors.Is(err, ErrTooLarge) {
		t.Errorf("puma 500 ranks: %v", err)
	}
	if err := New(get(t, "ellipse"), 1).Admit(729, 0.05); !errors.Is(err, ErrLaunchLimit) {
		t.Errorf("ellipse 729 ranks: %v", err)
	}
	if err := New(get(t, "lagrange"), 1).Admit(512, 0.05); !errors.Is(err, ErrIBVolumeCap) {
		t.Errorf("lagrange 512 ranks: %v", err)
	}
	if err := New(get(t, "puma"), 1).Admit(4, 100); !errors.Is(err, ErrInsufficientMemory) {
		t.Errorf("memory check: %v", err)
	}
	if err := New(get(t, "puma"), 1).Admit(0, 0); err == nil {
		t.Error("zero ranks admitted")
	}
}

// TestAdmitBoundaries probes each limit exactly at its configured value:
// Admit uses strict > comparisons throughout, so a job asking for precisely
// the launch limit, the volume cap, the machine size, or the full RAM per
// core must be admitted, and one rank (or any fraction of a GB) more must
// be rejected with the matching typed error.
func TestAdmitBoundaries(t *testing.T) {
	ellipse, lagrange, puma := get(t, "ellipse"), get(t, "lagrange"), get(t, "puma")
	if ellipse.MaxLaunchRanks <= 0 || lagrange.MaxVolumeRanks <= 0 {
		t.Fatal("catalog no longer configures the ellipse launch limit / lagrange volume cap")
	}

	cases := []struct {
		name    string
		p       *platform.Platform
		ranks   int
		mem     float64
		wantErr error // nil means admit
	}{
		{"at launch limit", ellipse, ellipse.MaxLaunchRanks, 0.05, nil},
		{"one past launch limit", ellipse, ellipse.MaxLaunchRanks + 1, 0.05, ErrLaunchLimit},
		{"at volume cap", lagrange, lagrange.MaxVolumeRanks, 0.05, nil},
		{"one past volume cap", lagrange, lagrange.MaxVolumeRanks + 1, 0.05, ErrIBVolumeCap},
		{"at machine size", puma, puma.TotalCores(), 0.05, nil},
		{"one past machine size", puma, puma.TotalCores() + 1, 0.05, ErrTooLarge},
		{"at full RAM per core", puma, 4, puma.RAMPerCoreGB(), nil},
		{"past full RAM per core", puma, 4, puma.RAMPerCoreGB() * 1.001, ErrInsufficientMemory},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := New(tc.p, 1).Admit(tc.ranks, tc.mem)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("%s rejected %d ranks / %.3f GB at the boundary: %v",
						tc.p.Name, tc.ranks, tc.mem, err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("%s with %d ranks / %.3f GB: got %v, want %v",
					tc.p.Name, tc.ranks, tc.mem, err, tc.wantErr)
			}
		})
	}
}

func TestQueueWaitPositiveAndDeterministic(t *testing.T) {
	a := New(get(t, "lagrange"), 42)
	b := New(get(t, "lagrange"), 42)
	for i := 0; i < 50; i++ {
		wa, wb := a.QueueWait(10), b.QueueWait(10)
		if wa <= 0 {
			t.Fatalf("non-positive wait %v", wa)
		}
		if wa != wb {
			t.Fatal("queue wait not deterministic for equal seeds")
		}
	}
}

// TestQueueWaitSequenceDeterminism replays a mixed call pattern — varying
// node counts and a quantile sweep mid-stream — on two equal-seeded
// schedulers: every draw must match, because the report generators rely on
// seeds alone to reproduce availability numbers. A third scheduler on a
// different seed must diverge (a constant generator would also pass the
// equality check).
func TestQueueWaitSequenceDeterminism(t *testing.T) {
	pattern := []int{1, 200, 8, 8, 64, 2, 100}
	a := New(get(t, "ellipse"), 9)
	b := New(get(t, "ellipse"), 9)
	c := New(get(t, "ellipse"), 10)
	var diverged bool
	for round := 0; round < 3; round++ {
		for _, nodes := range pattern {
			wa, wb, wc := a.QueueWait(nodes), b.QueueWait(nodes), c.QueueWait(nodes)
			if wa != wb {
				t.Fatalf("round %d, %d nodes: equal seeds drew %v vs %v", round, nodes, wa, wb)
			}
			if wa != wc {
				diverged = true
			}
		}
		a10, a50, a90 := a.QueueWaitQuantiles(16, 32)
		b10, b50, b90 := b.QueueWaitQuantiles(16, 32)
		if a10 != b10 || a50 != b50 || a90 != b90 {
			t.Fatalf("round %d: quantile sweep diverged across equal seeds", round)
		}
		c.QueueWaitQuantiles(16, 32)
	}
	if !diverged {
		t.Fatal("different seeds never diverged; the stream looks constant")
	}
}

// Availability ordering (§VIII): the cloud delivers resources immediately;
// local and grid queues wait much longer.
func TestCloudWaitsShortest(t *testing.T) {
	const nodes, samples = 8, 400
	medians := map[string]float64{}
	for _, name := range []string{"puma", "ellipse", "lagrange", "ec2"} {
		s := New(get(t, name), 7)
		_, p50, _ := s.QueueWaitQuantiles(nodes, samples)
		medians[name] = p50
	}
	if medians["ec2"] >= medians["ellipse"] || medians["ec2"] >= medians["puma"] ||
		medians["ec2"] >= medians["lagrange"] {
		t.Fatalf("ec2 not fastest to start: %v", medians)
	}
	if medians["lagrange"] <= medians["ellipse"] {
		t.Fatalf("grid should wait longer than the university cluster: %v", medians)
	}
}

func TestBigJobsWaitLonger(t *testing.T) {
	const samples = 400
	s1 := New(get(t, "lagrange"), 3)
	s2 := New(get(t, "lagrange"), 3)
	_, small, _ := s1.QueueWaitQuantiles(2, samples)
	_, large, _ := s2.QueueWaitQuantiles(200, samples)
	if large <= small {
		t.Fatalf("200-node job (median %v) should wait longer than 2-node (%v)", large, small)
	}
}
