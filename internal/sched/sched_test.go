package sched

import (
	"errors"
	"testing"

	"heterohpc/internal/platform"
)

func get(t *testing.T, name string) *platform.Platform {
	t.Helper()
	p, err := platform.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The paper's weak-scaling series truncation points (§VII-A): puma is
// size-limited at 128 cores, ellipse launch-fails above 512, lagrange
// volume-caps above 343, ec2 runs the full 1000.
func TestAdmitReproducesPaperLimits(t *testing.T) {
	series := []int{1, 8, 27, 64, 125, 216, 343, 512, 729, 1000}
	wantMax := map[string]int{"puma": 125, "ellipse": 512, "lagrange": 343, "ec2": 1000}
	for name, maxOK := range wantMax {
		s := New(get(t, name), 1)
		for _, p := range series {
			err := s.Admit(p, 0.05)
			if p <= maxOK && err != nil {
				t.Errorf("%s should admit %d ranks: %v", name, p, err)
			}
			if p > maxOK && err == nil {
				t.Errorf("%s admitted %d ranks", name, p)
			}
		}
	}
}

func TestAdmitErrorKinds(t *testing.T) {
	if err := New(get(t, "puma"), 1).Admit(500, 0.05); !errors.Is(err, ErrTooLarge) {
		t.Errorf("puma 500 ranks: %v", err)
	}
	if err := New(get(t, "ellipse"), 1).Admit(729, 0.05); !errors.Is(err, ErrLaunchLimit) {
		t.Errorf("ellipse 729 ranks: %v", err)
	}
	if err := New(get(t, "lagrange"), 1).Admit(512, 0.05); !errors.Is(err, ErrIBVolumeCap) {
		t.Errorf("lagrange 512 ranks: %v", err)
	}
	if err := New(get(t, "puma"), 1).Admit(4, 100); !errors.Is(err, ErrInsufficientMemory) {
		t.Errorf("memory check: %v", err)
	}
	if err := New(get(t, "puma"), 1).Admit(0, 0); err == nil {
		t.Error("zero ranks admitted")
	}
}

func TestQueueWaitPositiveAndDeterministic(t *testing.T) {
	a := New(get(t, "lagrange"), 42)
	b := New(get(t, "lagrange"), 42)
	for i := 0; i < 50; i++ {
		wa, wb := a.QueueWait(10), b.QueueWait(10)
		if wa <= 0 {
			t.Fatalf("non-positive wait %v", wa)
		}
		if wa != wb {
			t.Fatal("queue wait not deterministic for equal seeds")
		}
	}
}

// Availability ordering (§VIII): the cloud delivers resources immediately;
// local and grid queues wait much longer.
func TestCloudWaitsShortest(t *testing.T) {
	const nodes, samples = 8, 400
	medians := map[string]float64{}
	for _, name := range []string{"puma", "ellipse", "lagrange", "ec2"} {
		s := New(get(t, name), 7)
		_, p50, _ := s.QueueWaitQuantiles(nodes, samples)
		medians[name] = p50
	}
	if medians["ec2"] >= medians["ellipse"] || medians["ec2"] >= medians["puma"] ||
		medians["ec2"] >= medians["lagrange"] {
		t.Fatalf("ec2 not fastest to start: %v", medians)
	}
	if medians["lagrange"] <= medians["ellipse"] {
		t.Fatalf("grid should wait longer than the university cluster: %v", medians)
	}
}

func TestBigJobsWaitLonger(t *testing.T) {
	const samples = 400
	s1 := New(get(t, "lagrange"), 3)
	s2 := New(get(t, "lagrange"), 3)
	_, small, _ := s1.QueueWaitQuantiles(2, samples)
	_, large, _ := s2.QueueWaitQuantiles(200, samples)
	if large <= small {
		t.Fatalf("200-node job (median %v) should wait longer than 2-node (%v)", large, small)
	}
}
