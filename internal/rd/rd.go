// Package rd implements the paper's first test case (§IV-A): the 3-D
// reaction–diffusion equation
//
//	∂u/∂t − (1/t²)·Δu − (2/t)·u = −6
//
// on a cube, with boundary and initial conditions chosen so that the exact
// solution is u = t²·(x₁²+x₂²+x₃²). The solver mirrors the paper's program
// organisation (§IV-C): BDF2 time stepping; per step an assembly phase (ii),
// a preconditioner-construction phase (iiia) and a preconditioned iterative
// solve (iiib), each instrumented separately on the virtual clock. The exact
// solution "is used for checking the mathematical correctness of the code
// execution".
package rd

import (
	"fmt"

	"heterohpc/internal/fem"
	"heterohpc/internal/krylov"
	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/sparse"
	"heterohpc/internal/vclock"
)

// Exact returns the manufactured solution u = t²·(x²+y²+z²).
func Exact(x, y, z, t float64) float64 { return t * t * (x*x + y*y + z*z) }

// Source is the constant right-hand side f = −6 of the equation.
const Source = -6.0

// Config describes one RD run.
type Config struct {
	// Mesh is the global mesh (the harness sizes it as (n·p)³ for weak
	// scaling with p³ ranks of n³ elements each).
	Mesh *mesh.Mesh
	// Grid is the block decomposition (px,py,pz); px·py·pz must equal the
	// communicator size.
	Grid [3]int
	// T0 is the initial time (must be > 0: the PDE degenerates at t = 0).
	T0 float64
	// Dt is the BDF2 time-step size.
	Dt float64
	// Steps is the number of BDF2 steps to run.
	Steps int
	// Tol is the CG relative tolerance (default 1e-8).
	Tol float64
	// Precond selects the preconditioner: "ilu0" (default), "jacobi",
	// "sgs" or "none".
	Precond string
	// MaxIter caps CG iterations (default 500).
	MaxIter int
	// Checkpoint, if non-nil, is invoked after every completed BDF2 step
	// with a snapshot of the solver state (the "automatic checkpointing"
	// service the paper names as further EC2 conditioning, §VI-D). The
	// callback runs outside the measured phases.
	//
	// Retention contract: the State's U1/U2 slices are owned by the time
	// loop and recycled — a snapshot is valid only until the NEXT
	// Checkpoint invocation (double-buffered, so exactly one previous
	// generation stays intact). A supervisor must serialise or copy what
	// it needs before returning; it must not retain the slices.
	Checkpoint func(State) error
	// Resume, if non-nil, restarts the time loop from a saved state instead
	// of the exact-solution initialisation. The state must come from a run
	// with identical mesh, grid and time stepping.
	Resume *State
}

// State is a restartable snapshot of the BDF2 time loop. When delivered
// through Config.Checkpoint the slices are loop-owned reusable buffers —
// see the retention contract there. A State passed to Config.Resume is
// only read during startup and never retained.
type State struct {
	// StepsDone counts completed BDF2 steps.
	StepsDone int
	// Time is the PDE time of U1.
	Time float64
	// U1 and U2 are the owned values of u^{n-1} and u^{n-2}.
	U1, U2 []float64
}

func (c Config) withDefaults() Config {
	if c.T0 == 0 {
		c.T0 = 1
	}
	if c.Dt == 0 {
		c.Dt = 0.05
	}
	if c.Steps == 0 {
		c.Steps = 6
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if c.Precond == "" {
		c.Precond = "ilu0"
	}
	if c.MaxIter == 0 {
		c.MaxIter = 500
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Mesh == nil {
		return fmt.Errorf("rd: nil mesh")
	}
	if c.T0 <= 0 {
		return fmt.Errorf("rd: T0 %v must be positive (equation degenerates at t=0)", c.T0)
	}
	if c.Dt <= 0 || c.Steps < 1 {
		return fmt.Errorf("rd: bad time stepping dt=%v steps=%d", c.Dt, c.Steps)
	}
	// SPD requirement: 3/(2Δt) must dominate the reaction term 2/t.
	if 3/(2*c.Dt) <= 2/c.T0 {
		return fmt.Errorf("rd: dt %v too large for SPD system at t0 %v", c.Dt, c.T0)
	}
	return nil
}

// Result is one rank's view of a completed run. StepTimes are this rank's
// per-step phase breakdowns; the error norms are global (identical on all
// ranks).
type Result struct {
	// StepTimes[k] is the virtual-time breakdown of BDF2 step k on this rank.
	StepTimes []vclock.PhaseTimes
	// SolveIters[k] is the CG iteration count of step k.
	SolveIters []int
	// MaxErr and L2Err are the global nodal errors vs. the exact solution at
	// the final time.
	MaxErr, L2Err float64
	// NOwned is this rank's owned dof count.
	NOwned int
	// FinalTime is the PDE time reached.
	FinalTime float64
	// OwnedIDs and Solution carry this rank's owned global vertex ids and
	// the final solution values at them (for visualisation export).
	OwnedIDs []int
	Solution []float64
}

// NewPrecond builds the preconditioner named in cfg over a distributed
// matrix's local block.
func NewPrecond(name string, dm *sparse.DistMatrix, r *mp.Rank) (krylov.Preconditioner, error) {
	switch name {
	case "ilu0":
		return krylov.NewILU0(dm.Local(), dm.NOwned(), r), nil
	case "jacobi":
		return krylov.NewJacobi(dm.Local(), dm.NOwned(), r), nil
	case "sgs":
		return krylov.NewSGS(dm.Local(), dm.NOwned(), r), nil
	case "none":
		return krylov.Identity{}, nil
	default:
		return nil, fmt.Errorf("unknown preconditioner %q", name)
	}
}

// Run executes the RD solver as the SPMD body of rank r. All ranks of the
// world must call Run with identical configuration.
func Run(r *mp.Rank, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clk := r.Clock()
	clk.SetPhase(vclock.PhaseOther)
	rec := r.Obs()

	// --- setup (paper step i): spaces, maps, symbolic structures ---
	s, err := fem.NewSpaceBlock(r, cfg.Mesh, cfg.Grid[0], cfg.Grid[1], cfg.Grid[2], 1000)
	if err != nil {
		return nil, err
	}
	n := s.NOwned()

	// Mass matrix (constant in time, assembled once for the BDF2 history
	// term M·(4u¹−u²)/(2Δt)).
	var massCOO sparse.COO
	s.AssembleMatrix(&massCOO, func(e int, out *[8][8]float64) {
		s.El.Mass(1, out, r)
	})
	massDM, err := sparse.NewDistMatrix(r, s.RowMap, &massCOO, s.Owner, 1100)
	if err != nil {
		return nil, err
	}
	massDM.Compact() // values never change; drop refill plans
	massCOO = sparse.COO{}

	// System matrix structure (same sparsity as mass; values refilled each
	// step because the diffusion and reaction coefficients depend on t).
	// The element callback is hoisted out of the time loop: it captures the
	// mutable coefficients instead of closing over t per step, so steady-
	// state reassembly allocates no closures.
	var sysCOO sparse.COO
	var sysAlpha, sysKappa float64
	sysElem := func(e int, out *[8][8]float64) {
		var ke [8][8]float64
		s.El.Mass(sysAlpha, out, r)
		s.El.Stiffness(sysKappa, &ke, r)
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				out[a][b] += ke[a][b]
			}
		}
	}
	setSysTime := func(t float64) {
		sysAlpha = 3/(2*cfg.Dt) - 2/t // mass coefficient
		sysKappa = 1 / (t * t)        // diffusion coefficient
	}
	setSysTime(cfg.T0 + 2*cfg.Dt)
	s.AssembleMatrix(&sysCOO, sysElem)
	sysDM, err := sparse.NewDistMatrix(r, s.RowMap, &sysCOO, s.Owner, 1200)
	if err != nil {
		return nil, err
	}
	// The structure is fixed; per-step reassembly only recomputes values.
	sysCOO.Rows, sysCOO.Cols = nil, nil
	assembleSystem := func(t float64) {
		setSysTime(t)
		s.AssembleMatrixValues(&sysCOO, sysElem)
	}
	// The boundary eliminator and boundary-value closure are likewise
	// persistent. The eliminator is built inside the first step (its scan
	// charges virtual compute, which must land in that step's assembly
	// phase exactly as the old per-step construction did); Recompute then
	// refreshes the eliminated couplings after each SetValues refill, and
	// bcTime retargets the closure per step.
	var dirichlet *sparse.Dirichlet
	var bcTime float64
	boundary := func(v int) float64 {
		x, y, z := s.M.VertexCoord(v)
		return Exact(x, y, z, bcTime)
	}
	precond, err := NewPrecond(cfg.Precond, sysDM, r)
	if err != nil {
		return nil, err
	}

	// Constant source vector ∫(−6)·N_a, assembled once.
	load := make([]float64, n)
	s.AssembleVector(load, func(e int, out *[8]float64) {
		s.El.Load(func(x, y, z float64) float64 { return Source }, s.ElemCorner(e), out, r)
	})

	// BDF2 history from the exact solution at t0 and t0+Δt, or from a
	// checkpointed state.
	uPrev2 := make([]float64, n) // u^{n-2}
	uPrev1 := make([]float64, n) // u^{n-1}
	startStep := 0
	if cfg.Resume != nil {
		if len(cfg.Resume.U1) != n || len(cfg.Resume.U2) != n {
			return nil, fmt.Errorf("rd: resume state has %d/%d dofs, rank owns %d",
				len(cfg.Resume.U1), len(cfg.Resume.U2), n)
		}
		if cfg.Resume.StepsDone < 0 || cfg.Resume.StepsDone >= cfg.Steps {
			return nil, fmt.Errorf("rd: resume at step %d of %d", cfg.Resume.StepsDone, cfg.Steps)
		}
		copy(uPrev1, cfg.Resume.U1)
		copy(uPrev2, cfg.Resume.U2)
		startStep = cfg.Resume.StepsDone
	} else {
		s.Interpolate(func(x, y, z float64) float64 { return Exact(x, y, z, cfg.T0) }, uPrev2)
		s.Interpolate(func(x, y, z float64) float64 { return Exact(x, y, z, cfg.T0+cfg.Dt) }, uPrev1)
	}

	u := make([]float64, n)
	hist := make([]float64, n)
	rhs := make([]float64, n)
	work := &krylov.Workspace{}
	res := &Result{
		NOwned:     n,
		StepTimes:  make([]vclock.PhaseTimes, 0, cfg.Steps-startStep),
		SolveIters: make([]int, 0, cfg.Steps-startStep),
	}

	// Checkpoint snapshots alternate between two reusable buffer pairs, so
	// the State handed to the previous Checkpoint call stays intact while
	// the next one is filled (one generation of slack for callbacks that
	// hold the last snapshot for buddy exchange). See the State retention
	// contract on Config.Checkpoint.
	var ckptBuf [2]State
	ckptGen := 0

	// --- time loop (paper steps ii–iii per iteration) ---
	for step := startStep; step < cfg.Steps; step++ {
		t := cfg.T0 + float64(step+2)*cfg.Dt
		snap := clk.Snapshot()

		// Phase (ii): assembly of the system matrix and right-hand side.
		clk.SetPhase(vclock.PhaseAssembly)
		assembleSystem(t)
		sysDM.SetValues(&sysCOO)
		// hist = (4u^{n-1} − u^{n-2}) / (2Δt)
		for i := 0; i < n; i++ {
			hist[i] = (4*uPrev1[i] - uPrev2[i]) / (2 * cfg.Dt)
		}
		r.ChargeCompute(3*float64(n), 24*float64(n))
		massDM.Apply(hist, rhs)
		sparse.Axpy(n, 1, load, rhs, r)
		bcTime = t
		if dirichlet == nil {
			dirichlet = sysDM.NewDirichlet(s.IsBoundary)
		} else {
			dirichlet.Recompute(s.IsBoundary)
		}
		dirichlet.EliminateRHS(boundary, rhs)

		// Phase (iiia): preconditioner computation.
		clk.SetPhase(vclock.PhasePrecond)
		if err := precond.Setup(); err != nil {
			return nil, fmt.Errorf("rd: step %d: %w", step, err)
		}

		// Phase (iiib): preconditioned CG solve, warm-started from u^{n-1}.
		clk.SetPhase(vclock.PhaseSolve)
		sparse.CopyN(n, u, uPrev1, r)
		sol, err := krylov.CG(sysDM, precond, rhs, u, krylov.Options{
			Tol: cfg.Tol, MaxIter: cfg.MaxIter, Work: work, Obs: rec,
		})
		if err != nil {
			return nil, fmt.Errorf("rd: step %d: %w", step, err)
		}
		if !sol.Converged {
			return nil, fmt.Errorf("rd: step %d: CG stalled at residual %v after %d iterations",
				step, sol.Residual, sol.Iterations)
		}
		clk.SetPhase(vclock.PhaseOther)

		res.StepTimes = append(res.StepTimes, clk.Since(snap))
		res.SolveIters = append(res.SolveIters, sol.Iterations)
		uPrev2, uPrev1, u = uPrev1, u, uPrev2
		res.FinalTime = t
		rec.Step(step + 1)
		rec.StepHalo(step + 1)

		if cfg.Checkpoint != nil {
			st := &ckptBuf[ckptGen]
			ckptGen = 1 - ckptGen
			st.StepsDone = step + 1
			st.Time = t
			if st.U1 == nil {
				st.U1 = make([]float64, n)
				st.U2 = make([]float64, n)
			}
			copy(st.U1, uPrev1[:n])
			copy(st.U2, uPrev2[:n])
			if err := cfg.Checkpoint(*st); err != nil {
				return nil, fmt.Errorf("rd: checkpoint after step %d: %w", step, err)
			}
			rec.Checkpoint("ckpt-write", step+1, 16*int64(n))
		}
	}

	exactFinal := func(x, y, z float64) float64 { return Exact(x, y, z, res.FinalTime) }
	res.MaxErr = s.MaxNodalError(uPrev1, exactFinal)
	res.L2Err = s.L2NodalError(uPrev1, exactFinal)
	res.OwnedIDs = append([]int(nil), s.RowMap.Owned...)
	res.Solution = append([]float64(nil), uPrev1[:n]...)
	return res, nil
}
