package rd

import (
	"fmt"
	"math"
	"testing"

	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/vclock"
)

func runRanks(t *testing.T, nranks int, body func(r *mp.Rank) error) {
	t.Helper()
	topo, err := mp.BlockTopology(nranks, 4)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := netmodel.NewFabric(netmodel.Loopback, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
}

func TestExactSolvesThePDE(t *testing.T) {
	// Verify analytically that u = t²(x²+y²+z²) satisfies
	// ∂u/∂t − (1/t²)Δu − (2/t)u = −6 by finite differences.
	u := Exact
	const h = 1e-5
	for _, p := range [][4]float64{{0.3, 0.4, 0.5, 1.2}, {0.9, 0.1, 0.7, 2.0}} {
		x, y, z, tt := p[0], p[1], p[2], p[3]
		dudt := (u(x, y, z, tt+h) - u(x, y, z, tt-h)) / (2 * h)
		lap := (u(x+h, y, z, tt) + u(x-h, y, z, tt) - 2*u(x, y, z, tt)) / (h * h)
		lap += (u(x, y+h, z, tt) + u(x, y-h, z, tt) - 2*u(x, y, z, tt)) / (h * h)
		lap += (u(x, y, z+h, tt) + u(x, y, z-h, tt) - 2*u(x, y, z, tt)) / (h * h)
		lhs := dudt - lap/(tt*tt) - 2/tt*u(x, y, z, tt)
		if math.Abs(lhs-Source) > 1e-4 {
			t.Fatalf("PDE residual %v at %v", lhs-Source, p)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	m := mesh.NewUnitCube(2)
	cases := []Config{
		{},                                   // nil mesh
		{Mesh: m, T0: -1},                    // negative T0
		{Mesh: m, Dt: -0.1},                  // negative dt
		{Mesh: m, T0: 0.1, Dt: 10, Steps: 1}, // violates SPD condition
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	good := Config{Mesh: m}
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestRDSerialAccuracy(t *testing.T) {
	m := mesh.NewUnitCube(8)
	runRanks(t, 1, func(r *mp.Rank) error {
		res, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 4})
		if err != nil {
			return err
		}
		// Q1 on an 8³ mesh with BDF2: nodal max error should be well below
		// the solution scale (u up to ~3·t² ≈ 4.3).
		if res.MaxErr > 0.02 {
			return fmt.Errorf("max error %v too large", res.MaxErr)
		}
		if res.L2Err > 0.01 {
			return fmt.Errorf("L2 error %v too large", res.L2Err)
		}
		if len(res.StepTimes) != 4 || len(res.SolveIters) != 4 {
			return fmt.Errorf("expected 4 step records, got %d/%d",
				len(res.StepTimes), len(res.SolveIters))
		}
		for k, st := range res.StepTimes {
			if st.Phase(vclock.PhaseAssembly) <= 0 || st.Phase(vclock.PhasePrecond) <= 0 ||
				st.Phase(vclock.PhaseSolve) <= 0 {
				return fmt.Errorf("step %d has empty phase: %+v", k, st)
			}
		}
		return nil
	})
}

func TestRDNodallyExact(t *testing.T) {
	// On a uniform tensor-product grid, the Q1 discretisation is nodally
	// exact for the quadratic-in-space, quadratic-in-time manufactured
	// solution (and BDF2 is exact for t² time dependence), so the only
	// residual error is the CG tolerance. Tightening the tolerance must
	// tighten the error correspondingly — a very strong end-to-end
	// correctness check of assembly, BC handling and the solver chain.
	for _, n := range []int{4, 8} {
		m := mesh.NewUnitCube(n)
		runRanks(t, 1, func(r *mp.Rank) error {
			res, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 2, Dt: 0.01, Tol: 1e-12})
			if err != nil {
				return err
			}
			if res.L2Err > 1e-8 {
				return fmt.Errorf("n=%d: L2 error %v not at solver tolerance", n, res.L2Err)
			}
			return nil
		})
	}
}

func TestRDParallelMatchesSerial(t *testing.T) {
	m := mesh.NewUnitCube(6)
	var serialErr, parErr float64
	runRanks(t, 1, func(r *mp.Rank) error {
		res, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 3})
		if err != nil {
			return err
		}
		serialErr = res.L2Err
		return nil
	})
	runRanks(t, 8, func(r *mp.Rank) error {
		res, err := Run(r, Config{Mesh: m, Grid: [3]int{2, 2, 2}, Steps: 3})
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			parErr = res.L2Err
		}
		return nil
	})
	// Both runs are nodally exact up to solver tolerance, so the solutions
	// agree to that tolerance (the CG iterates themselves differ because
	// the partition changes the preconditioner blocks).
	if math.Abs(serialErr-parErr) > 1e-6 {
		t.Fatalf("serial L2 %v vs parallel L2 %v", serialErr, parErr)
	}
	if serialErr > 1e-6 || parErr > 1e-6 {
		t.Fatalf("errors not at solver tolerance: %v %v", serialErr, parErr)
	}
}

func TestRDPreconditionerChoices(t *testing.T) {
	m := mesh.NewUnitCube(4)
	for _, pc := range []string{"ilu0", "jacobi", "sgs", "none"} {
		runRanks(t, 1, func(r *mp.Rank) error {
			res, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 2, Precond: pc})
			if err != nil {
				return fmt.Errorf("%s: %w", pc, err)
			}
			if res.MaxErr > 0.1 {
				return fmt.Errorf("%s: max error %v", pc, res.MaxErr)
			}
			return nil
		})
	}
	runRanks(t, 1, func(r *mp.Rank) error {
		_, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 1, Precond: "bogus"})
		if err == nil {
			return fmt.Errorf("bogus preconditioner accepted")
		}
		return nil
	})
}

func TestRDILUBeatsJacobiIterations(t *testing.T) {
	m := mesh.NewUnitCube(6)
	iters := map[string]int{}
	for _, pc := range []string{"ilu0", "none"} {
		runRanks(t, 1, func(r *mp.Rank) error {
			res, err := Run(r, Config{Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 1, Precond: pc})
			if err != nil {
				return err
			}
			iters[pc] = res.SolveIters[0]
			return nil
		})
	}
	if iters["ilu0"] >= iters["none"] {
		t.Fatalf("ILU0 iterations %d not fewer than unpreconditioned %d",
			iters["ilu0"], iters["none"])
	}
}

func TestRDVirtualTimesPositiveAndOrdered(t *testing.T) {
	// On a 1GbE fabric the parallel run must charge communication time.
	m := mesh.NewUnitCube(4)
	topo, _ := mp.BlockTopology(8, 4)
	fab, _ := netmodel.NewFabric(netmodel.GigE, topo.NNodes())
	w, _ := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 2e9, BytesPerSec: 4e9})
	err := w.Run(func(r *mp.Rank) error {
		res, err := Run(r, Config{Mesh: m, Grid: [3]int{2, 2, 2}, Steps: 2})
		if err != nil {
			return err
		}
		for _, st := range res.StepTimes {
			var comm float64
			for _, p := range vclock.Phases {
				comm += st.Comm[p]
			}
			if comm <= 0 {
				return fmt.Errorf("no communication time charged: %+v", st)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCallbackErrorPropagates(t *testing.T) {
	m := mesh.NewUnitCube(4)
	runRanks(t, 1, func(r *mp.Rank) error {
		_, err := Run(r, Config{
			Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 2,
			Checkpoint: func(State) error { return fmt.Errorf("disk full") },
		})
		if err == nil {
			return fmt.Errorf("checkpoint failure swallowed")
		}
		return nil
	})
}

func TestCheckpointStateRetention(t *testing.T) {
	// The Checkpoint retention contract: the delivered slices are loop-owned
	// and double-buffered, so the PREVIOUS snapshot stays intact while the
	// current one is filled, and a snapshot older than that may be recycled.
	// A callback that copies what it needs before returning always sees
	// consistent per-step states.
	m := mesh.NewUnitCube(4)
	runRanks(t, 1, func(r *mp.Rank) error {
		type snap struct {
			steps  int
			u1     []float64
			prevU1 float64 // first entry of the previous snapshot, re-read now
		}
		var captured []snap
		var prev State
		res, err := Run(r, Config{
			Mesh: m, Grid: [3]int{1, 1, 1}, Steps: 4,
			Checkpoint: func(st State) error {
				c := snap{steps: st.StepsDone, u1: append([]float64(nil), st.U1...)}
				if prev.U1 != nil {
					c.prevU1 = prev.U1[0]
				}
				captured = append(captured, c)
				prev = st
				return nil
			},
		})
		if err != nil {
			return err
		}
		if len(captured) != 4 {
			return fmt.Errorf("got %d checkpoints", len(captured))
		}
		for k, c := range captured {
			if c.steps != k+1 {
				return fmt.Errorf("checkpoint %d reports %d steps", k, c.steps)
			}
			// One generation of slack: while snapshot k was delivered, the
			// k−1 buffers must still have held step k−1's values.
			if k > 0 && c.prevU1 != captured[k-1].u1[0] {
				return fmt.Errorf("checkpoint %d clobbered the previous snapshot", k)
			}
		}
		for i := range res.Solution {
			if res.Solution[i] != captured[3].u1[i] {
				return fmt.Errorf("final checkpoint disagrees with solution at %d", i)
			}
		}
		return nil
	})
}
