// State redistribution after a world shrink: the survivors hold a full
// copy of the checkpointed field (their own snapshots plus the buddy
// copies of the dead), but ownership under the survivor-count block
// decomposition no longer matches where the values sit. Redistribute
// scatters every held dof to its new owner as real mp traffic and
// assembles the resume state time-stepping continues from.
package rd

import (
	"fmt"
	"math"
	"sort"

	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
)

// HeldState is one pre-shrink rank's worth of checkpointed solver state in
// a survivor's memory: its own snapshot, or a buddy copy of a dead rank's.
type HeldState struct {
	// Rank is the origin rank in the pre-shrink decomposition (diagnostic).
	Rank int
	// OwnedIDs are the global vertex ids the values belong to.
	OwnedIDs []int
	// State is the origin's snapshot; all held states passed to one
	// Redistribute call must share StepsDone and Time.
	State State
}

// Redistribute scatters held checkpoint fragments onto the px×py×pz block
// decomposition of m over the calling world and returns the resume state
// plus this rank's owned global ids under the new decomposition. It is a
// collective: every rank passes its own held fragments — possibly none, for
// a rank that joined the world at a Grow and has no pre-growth history —
// and together they must cover the global field exactly once. The exchange
// is a pure permutation of the stored float64 values — no arithmetic — so a
// run resumed from the returned state is bit-identical to a run at the new
// rank count resumed from the same snapshot. tag and tag+1 must be free
// application tags.
func Redistribute(r *mp.Rank, m *mesh.Mesh, grid [3]int, held []HeldState, tag int) (State, []int, error) {
	p := r.Size()
	if grid[0]*grid[1]*grid[2] != p {
		return State{}, nil, fmt.Errorf("rd: grid %v for %d ranks", grid, p)
	}
	var step int
	var tm float64
	if len(held) > 0 {
		step, tm = held[0].State.StepsDone, held[0].State.Time
	}
	for _, h := range held {
		if len(h.OwnedIDs) != len(h.State.U1) || len(h.State.U1) != len(h.State.U2) {
			return State{}, nil, fmt.Errorf("rd: origin %d holds %d ids for %d/%d values",
				h.Rank, len(h.OwnedIDs), len(h.State.U1), len(h.State.U2))
		}
		if h.State.StepsDone != step || h.State.Time != tm {
			return State{}, nil, fmt.Errorf("rd: origin %d at step %d (t=%v), origin %d at step %d (t=%v)",
				held[0].Rank, step, tm, h.Rank, h.State.StepsDone, h.State.Time)
		}
	}
	// Global agreement that every holder resumes the same step: one
	// allreduce carrying (step, time) and their negations detects any
	// mismatch without a second collective. Empty-handed ranks contribute
	// -Inf everywhere, the OpMax identity, so they adopt the holders' line
	// without constraining it.
	local := []float64{float64(step), tm, -float64(step), -tm}
	if len(held) == 0 {
		for i := range local {
			local[i] = math.Inf(-1)
		}
	}
	agree := r.Allreduce(mp.OpMax, local)
	if math.IsInf(agree[0], -1) {
		return State{}, nil, fmt.Errorf("rd: no rank holds any state to redistribute")
	}
	if agree[0] != -agree[2] || agree[1] != -agree[3] {
		return State{}, nil, fmt.Errorf("rd: ranks disagree on the restore line (steps up to %v, times up to %v)",
			agree[0], agree[1])
	}
	// Empty-handed ranks take the agreed line (bit-exact: the max of equal
	// holder values is those values).
	step, tm = int(agree[0]), agree[1]

	// Bucket every held dof by its new owner. Sorting fragments by origin
	// keeps the per-destination payload order identical across runs.
	sort.Slice(held, func(a, b int) bool { return held[a].Rank < held[b].Rank })
	sendIDs := make([][]int, p)
	sendVals := make([][]float64, p) // u1,u2 interleaved per dof
	for _, h := range held {
		for i, gid := range h.OwnedIDs {
			d := mesh.VertexOwnerOnBlocks(m, grid[0], grid[1], grid[2], gid)
			sendIDs[d] = append(sendIDs[d], gid)
			sendVals[d] = append(sendVals[d], h.State.U1[i], h.State.U2[i])
		}
		r.ChargeCompute(10*float64(len(h.OwnedIDs)), 40*float64(len(h.OwnedIDs)))
	}

	// Pairwise exchange on the Alltoall schedule; sends are buffered so the
	// rounds cannot deadlock.
	recvIDs := [][]int{sendIDs[r.ID()]}
	recvVals := [][]float64{sendVals[r.ID()]}
	for s := 1; s < p; s++ {
		dst := (r.ID() + s) % p
		src := (r.ID() - s + p) % p
		r.SendInts(dst, tag, sendIDs[dst])
		r.SendF64(dst, tag+1, sendVals[dst])
		ids := r.RecvInts(src, tag)
		vals := r.RecvF64(src, tag+1)
		if 2*len(ids) != len(vals) {
			return State{}, nil, fmt.Errorf("rd: rank %d sent %d ids with %d values", src, len(ids), len(vals))
		}
		recvIDs = append(recvIDs, ids)
		recvVals = append(recvVals, vals)
	}

	// Assemble into owned order under the new decomposition.
	l, err := mesh.NewLocalFromBlock(m, grid[0], grid[1], grid[2], r.ID())
	if err != nil {
		return State{}, nil, err
	}
	owned := append([]int(nil), l.VertGlobal[:l.NumOwned]...)
	idx := make(map[int]int, len(owned))
	for i, gid := range owned {
		idx[gid] = i
	}
	st := State{
		StepsDone: step,
		Time:      tm,
		U1:        make([]float64, len(owned)),
		U2:        make([]float64, len(owned)),
	}
	filled := make([]bool, len(owned))
	for b, ids := range recvIDs {
		for i, gid := range ids {
			li, ok := idx[gid]
			if !ok {
				return State{}, nil, fmt.Errorf("rd: received vertex %d not owned by rank %d", gid, r.ID())
			}
			if filled[li] {
				return State{}, nil, fmt.Errorf("rd: vertex %d delivered twice", gid)
			}
			filled[li] = true
			st.U1[li] = recvVals[b][2*i]
			st.U2[li] = recvVals[b][2*i+1]
		}
	}
	for i, ok := range filled {
		if !ok {
			return State{}, nil, fmt.Errorf("rd: vertex %d of rank %d never delivered — held fragments do not cover the field",
				owned[i], r.ID())
		}
	}
	if math.IsNaN(st.Time) {
		return State{}, nil, fmt.Errorf("rd: restored time is NaN")
	}
	return st, owned, nil
}
