package rd

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/vclock"
)

// fragment builds the HeldState of origin rank `origin` in an old pOld-rank
// decomposition of m, with synthetic per-vertex values derived from the
// global id so the test can verify exact placement after redistribution.
func fragment(t *testing.T, m *mesh.Mesh, gridOld [3]int, origin, step int, tm float64) HeldState {
	t.Helper()
	l, err := mesh.NewLocalFromBlock(m, gridOld[0], gridOld[1], gridOld[2], origin)
	if err != nil {
		t.Fatal(err)
	}
	owned := append([]int(nil), l.VertGlobal[:l.NumOwned]...)
	st := State{StepsDone: step, Time: tm, U1: make([]float64, len(owned)), U2: make([]float64, len(owned))}
	for i, gid := range owned {
		st.U1[i] = 1.0 / float64(gid+1)
		st.U2[i] = math.Sqrt(float64(gid + 7))
	}
	return HeldState{Rank: origin, OwnedIDs: owned, State: st}
}

func TestRedistributeIsAnExactPermutation(t *testing.T) {
	m := mesh.NewUnitCube(4)
	gridOld := [3]int{2, 2, 1} // 4 old ranks
	gridNew := [3]int{2, 1, 1} // 2 survivor ranks
	// Survivor 0 holds its own fragment plus buddy copies of dead origins
	// 2 and 3; survivor 1 holds only origin 1's.
	heldBy := [][]int{{0, 2, 3}, {1}}

	var mu sync.Mutex
	gotIDs := make([][]int, 2)
	gotSt := make([]State, 2)
	runRanks(t, 2, func(r *mp.Rank) error {
		var held []HeldState
		for _, origin := range heldBy[r.ID()] {
			held = append(held, fragment(t, m, gridOld, origin, 3, 0.375))
		}
		st, owned, err := Redistribute(r, m, gridNew, held, 9100)
		if err != nil {
			return err
		}
		mu.Lock()
		gotIDs[r.ID()], gotSt[r.ID()] = owned, st
		mu.Unlock()
		return nil
	})

	seen := map[int]bool{}
	for rk := 0; rk < 2; rk++ {
		l, err := mesh.NewLocalFromBlock(m, gridNew[0], gridNew[1], gridNew[2], rk)
		if err != nil {
			t.Fatal(err)
		}
		if gotSt[rk].StepsDone != 3 || gotSt[rk].Time != 0.375 {
			t.Fatalf("rank %d resumed at step %d t=%v", rk, gotSt[rk].StepsDone, gotSt[rk].Time)
		}
		if len(gotIDs[rk]) != l.NumOwned {
			t.Fatalf("rank %d owns %d ids, want %d", rk, len(gotIDs[rk]), l.NumOwned)
		}
		for i, gid := range gotIDs[rk] {
			if gid != l.VertGlobal[i] {
				t.Fatalf("rank %d owned[%d] = %d, want %d", rk, i, gid, l.VertGlobal[i])
			}
			if seen[gid] {
				t.Fatalf("vertex %d owned twice", gid)
			}
			seen[gid] = true
			// Bit-exact: the values must be the exact floats the origins held.
			if w := math.Float64bits(1.0 / float64(gid+1)); math.Float64bits(gotSt[rk].U1[i]) != w {
				t.Fatalf("u1 at vertex %d not bit-identical", gid)
			}
			if w := math.Float64bits(math.Sqrt(float64(gid + 7))); math.Float64bits(gotSt[rk].U2[i]) != w {
				t.Fatalf("u2 at vertex %d not bit-identical", gid)
			}
		}
	}
	if len(seen) != m.NumVerts() {
		t.Fatalf("redistribution covered %d of %d vertices", len(seen), m.NumVerts())
	}
}

func TestRedistributeRejectsMismatchedRestoreLines(t *testing.T) {
	m := mesh.NewUnitCube(3)
	gridOld := [3]int{2, 1, 1}
	err := func() (err error) {
		runRanksErr(t, 2, func(r *mp.Rank) error {
			// Rank 1's fragment claims a different step than rank 0's.
			h := fragment(t, m, gridOld, r.ID(), 2+r.ID(), 0.25)
			_, _, e := Redistribute(r, m, gridOld, []HeldState{h}, 9100)
			return e
		}, &err)
		return err
	}()
	if err == nil {
		t.Fatal("mismatched restore lines accepted")
	}
}

func TestRedistributeRejectsIncompleteCoverage(t *testing.T) {
	m := mesh.NewUnitCube(3)
	gridOld := [3]int{2, 1, 1}
	err := func() (err error) {
		runRanksErr(t, 2, func(r *mp.Rank) error {
			h := fragment(t, m, gridOld, r.ID(), 1, 0.125)
			if r.ID() == 1 {
				// Drop half the fragment: some vertices are never delivered.
				n := len(h.OwnedIDs) / 2
				h.OwnedIDs = h.OwnedIDs[:n]
				h.State.U1 = h.State.U1[:n]
				h.State.U2 = h.State.U2[:n]
			}
			_, _, e := Redistribute(r, m, gridOld, []HeldState{h}, 9100)
			return e
		}, &err)
		return err
	}()
	if err == nil {
		t.Fatal("incomplete coverage accepted")
	}
}

// runRanksErr is runRanks for bodies expected to fail: the world error is
// handed back instead of failing the test.
func runRanksErr(t *testing.T, nranks int, body func(r *mp.Rank) error, out *error) {
	t.Helper()
	topo, err := mp.BlockTopology(nranks, 4)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := netmodel.NewFabric(netmodel.Loopback, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	*out = w.Run(body)
}

func TestRedistributeIdentityWhenDecompositionUnchanged(t *testing.T) {
	// Same grid in and out: every rank keeps exactly its own values.
	m := mesh.NewUnitCube(4)
	grid := [3]int{2, 2, 1}
	runRanks(t, 4, func(r *mp.Rank) error {
		h := fragment(t, m, grid, r.ID(), 5, 1.5)
		st, owned, err := Redistribute(r, m, grid, []HeldState{h}, 9100)
		if err != nil {
			return err
		}
		if len(owned) != len(h.OwnedIDs) {
			return fmt.Errorf("rank %d: %d owned after, %d before", r.ID(), len(owned), len(h.OwnedIDs))
		}
		for i := range owned {
			if owned[i] != h.OwnedIDs[i] || st.U1[i] != h.State.U1[i] || st.U2[i] != h.State.U2[i] {
				return fmt.Errorf("rank %d: identity redistribution changed vertex %d", r.ID(), owned[i])
			}
		}
		return nil
	})
}
