// Package fem implements the finite-element layer that the LifeV library
// provided in the paper's stack: trilinear (Q1) hexahedral elements with
// Gauss quadrature, element matrices for mass, diffusion, convection and
// pressure-gradient operators, distributed assembly over a mesh.Local, and
// nodal interpolation/error evaluation against exact solutions.
//
// The paper's applications use P2 (and P2/P1) elements; Q1 elements on the
// same structured cubes preserve the phase structure (assembly →
// preconditioner → solve per BDF2 step), the communication pattern and the
// exact-solution verification workflow, which is what the reproduction
// needs (see DESIGN.md §2).
package fem

import "fmt"

// QuadPoint is one quadrature point on the reference cube [-1,1]³.
type QuadPoint struct {
	Xi [3]float64
	W  float64
}

// Gauss222 returns the 2×2×2 Gauss–Legendre rule on [-1,1]³ (exact for
// tri-cubic polynomials, the standard rule for Q1 operators).
func Gauss222() []QuadPoint {
	const g = 0.5773502691896257 // 1/sqrt(3)
	pts := make([]QuadPoint, 0, 8)
	for _, z := range [2]float64{-g, g} {
		for _, y := range [2]float64{-g, g} {
			for _, x := range [2]float64{-g, g} {
				pts = append(pts, QuadPoint{Xi: [3]float64{x, y, z}, W: 1})
			}
		}
	}
	return pts
}

// ShapeQ1 evaluates the 8 trilinear shape functions and their reference
// gradients at ξ. Local node ordering matches mesh.ElemVerts: x fastest,
// then y, then z.
//
//heterolint:allow vcharge reference-element evaluation; callers charge at operator granularity (MassMatrix etc.), and NewElement precomputes this once per space outside the metered iteration
func ShapeQ1(xi [3]float64) (n [8]float64, dn [8][3]float64) {
	signs := [2]float64{-1, 1}
	a := 0
	for kz := 0; kz < 2; kz++ {
		for ky := 0; ky < 2; ky++ {
			for kx := 0; kx < 2; kx++ {
				sx, sy, sz := signs[kx], signs[ky], signs[kz]
				fx := (1 + sx*xi[0]) / 2
				fy := (1 + sy*xi[1]) / 2
				fz := (1 + sz*xi[2]) / 2
				n[a] = fx * fy * fz
				dn[a][0] = sx / 2 * fy * fz
				dn[a][1] = fx * sy / 2 * fz
				dn[a][2] = fx * fy * sz / 2
				a++
			}
		}
	}
	return
}

// Charger mirrors sparse.Charger to avoid an import cycle concern; any
// charger (including mp.Rank) satisfies it.
type Charger interface {
	ChargeCompute(flops, bytes float64)
}

type nopCharger struct{}

func (nopCharger) ChargeCompute(float64, float64) {}

// Element holds the quadrature data of a uniform hexahedral element of size
// hx×hy×hz. Shape values at quadrature points are precomputed once; the
// per-element integration loops still run for every element (the paper's
// assembly phase is exactly this work).
type Element struct {
	Hx, Hy, Hz float64
	// Fixed-size arrays (the rule is always 2×2×2): the whole Element is
	// one allocation, which matters because every world setup builds one
	// per space.
	qp    [8]QuadPoint
	n     [8][8]float64    // shape values per qp
	dphys [8][8][3]float64 // physical gradients per qp
	jac   float64          // |J| = hx·hy·hz/8
}

// NewElement precomputes quadrature data for an hx×hy×hz element. The
// one-time setup per world construction is covered by vcharge's
// constructor exemption; the per-step assembly loops it feeds are charged
// by AssembleMatrix.
func NewElement(hx, hy, hz float64) (*Element, error) {
	if hx <= 0 || hy <= 0 || hz <= 0 {
		return nil, fmt.Errorf("fem: non-positive element size %v×%v×%v", hx, hy, hz)
	}
	el := &Element{Hx: hx, Hy: hy, Hz: hz, jac: hx * hy * hz / 8}
	const g = 0.5773502691896257 // 1/sqrt(3)
	i := 0
	for _, z := range [2]float64{-g, g} {
		for _, y := range [2]float64{-g, g} {
			for _, x := range [2]float64{-g, g} {
				el.qp[i] = QuadPoint{Xi: [3]float64{x, y, z}, W: 1}
				i++
			}
		}
	}
	inv := [3]float64{2 / hx, 2 / hy, 2 / hz}
	for q, p := range el.qp {
		n, dn := ShapeQ1(p.Xi)
		for a := 0; a < 8; a++ {
			for d := 0; d < 3; d++ {
				el.dphys[q][a][d] = dn[a][d] * inv[d]
			}
		}
		el.n[q] = n
	}
	return el, nil
}

// Mass accumulates c·∫ N_a N_b into out (overwriting it).
func (el *Element) Mass(c float64, out *[8][8]float64, ch Charger) {
	if ch == nil {
		ch = nopCharger{}
	}
	*out = [8][8]float64{}
	for q := range el.qp {
		w := el.qp[q].W * el.jac * c
		n := &el.n[q]
		for a := 0; a < 8; a++ {
			wa := w * n[a]
			for b := 0; b < 8; b++ {
				out[a][b] += wa * n[b]
			}
		}
	}
	ch.ChargeCompute(float64(len(el.qp))*(8*8*2+8), 8*8*8)
}

// Stiffness accumulates c·∫ ∇N_a·∇N_b into out (overwriting it).
func (el *Element) Stiffness(c float64, out *[8][8]float64, ch Charger) {
	if ch == nil {
		ch = nopCharger{}
	}
	*out = [8][8]float64{}
	for q := range el.qp {
		w := el.qp[q].W * el.jac * c
		dp := &el.dphys[q]
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				out[a][b] += w * (dp[a][0]*dp[b][0] + dp[a][1]*dp[b][1] + dp[a][2]*dp[b][2])
			}
		}
	}
	ch.ChargeCompute(float64(len(el.qp))*8*8*6, 8*8*8)
}

// Convection accumulates ∫ (w·∇N_b)·N_a into out (overwriting it), with w a
// constant advecting velocity over the element (evaluated at its centroid
// by the caller — the standard low-order linearisation).
func (el *Element) Convection(w [3]float64, out *[8][8]float64, ch Charger) {
	if ch == nil {
		ch = nopCharger{}
	}
	*out = [8][8]float64{}
	for q := range el.qp {
		wq := el.qp[q].W * el.jac
		n := &el.n[q]
		dp := &el.dphys[q]
		for b := 0; b < 8; b++ {
			adv := wq * (w[0]*dp[b][0] + w[1]*dp[b][1] + w[2]*dp[b][2])
			for a := 0; a < 8; a++ {
				out[a][b] += n[a] * adv
			}
		}
	}
	ch.ChargeCompute(float64(len(el.qp))*(8*6+8*8*2), 8*8*8)
}

// Gradient accumulates ∫ N_a ∂N_b/∂x_d into out (overwriting it) — the
// discrete pressure-gradient/divergence coupling block of the Navier–Stokes
// solver.
func (el *Element) Gradient(d int, out *[8][8]float64, ch Charger) {
	if ch == nil {
		ch = nopCharger{}
	}
	if d < 0 || d > 2 {
		panic(fmt.Sprintf("fem: gradient direction %d", d))
	}
	*out = [8][8]float64{}
	for q := range el.qp {
		wq := el.qp[q].W * el.jac
		n := &el.n[q]
		dp := &el.dphys[q]
		for a := 0; a < 8; a++ {
			wa := wq * n[a]
			for b := 0; b < 8; b++ {
				out[a][b] += wa * dp[b][d]
			}
		}
	}
	ch.ChargeCompute(float64(len(el.qp))*8*8*2, 8*8*8)
}

// Load accumulates ∫ f·N_a over the element into out (overwriting it). f is
// evaluated at quadrature points; corner is the element's minimal vertex
// coordinate.
func (el *Element) Load(f func(x, y, z float64) float64, corner [3]float64, out *[8]float64, ch Charger) {
	if ch == nil {
		ch = nopCharger{}
	}
	*out = [8]float64{}
	for q := range el.qp {
		xi := el.qp[q].Xi
		x := corner[0] + (xi[0]+1)/2*el.Hx
		y := corner[1] + (xi[1]+1)/2*el.Hy
		z := corner[2] + (xi[2]+1)/2*el.Hz
		w := el.qp[q].W * el.jac * f(x, y, z)
		n := &el.n[q]
		for a := 0; a < 8; a++ {
			out[a] += w * n[a]
		}
	}
	ch.ChargeCompute(float64(len(el.qp))*(8*2+20), 8*8)
}

// Volume returns the element volume (a sanity identity: the row sums of the
// mass matrix with c=1 integrate to it).
func (el *Element) Volume() float64 { return el.Hx * el.Hy * el.Hz }
