package fem

import (
	"fmt"
	"math"

	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/sparse"
)

// Space is one rank's scalar Q1 finite-element space over a distributed
// mesh: the local patch, row distribution, vertex ownership, and the patch
// importer used to accumulate right-hand sides across ranks.
type Space struct {
	R      *mp.Rank
	M      *mesh.Mesh
	L      *mesh.Local
	RowMap *sparse.RowMap
	// Owner maps any global vertex id to its owning rank.
	Owner func(int) int
	// El is the uniform element integrator.
	El *Element

	patchImp *sparse.Importer
	// vecBuf is the persistent patch-length staging buffer of
	// AssembleVector (zeroed at each use).
	vecBuf []float64
}

// NewSpaceBlock builds the space for the px×py×pz block decomposition with
// this rank's block. tag reserves message tags [tag, tag+2).
func NewSpaceBlock(r *mp.Rank, m *mesh.Mesh, px, py, pz, tag int) (*Space, error) {
	if px*py*pz != r.Size() {
		return nil, fmt.Errorf("fem: %d blocks for %d ranks", px*py*pz, r.Size())
	}
	l, err := mesh.NewLocalFromBlock(m, px, py, pz, r.ID())
	if err != nil {
		return nil, err
	}
	owner := func(g int) int { return mesh.VertexOwnerOnBlocks(m, px, py, pz, g) }
	return newSpace(r, m, l, owner, tag)
}

// NewSpaceParts builds the space for an arbitrary element partition
// (part[e] = rank). tag reserves message tags [tag, tag+2).
func NewSpaceParts(r *mp.Rank, m *mesh.Mesh, part []int, tag int) (*Space, error) {
	l, err := mesh.NewLocalFromParts(m, part, r.ID())
	if err != nil {
		return nil, err
	}
	owner := func(g int) int { return mesh.VertexOwnerOnParts(m, part, g) }
	return newSpace(r, m, l, owner, tag)
}

func newSpace(r *mp.Rank, m *mesh.Mesh, l *mesh.Local, owner func(int) int, tag int) (*Space, error) {
	hx, hy, hz := m.H()
	el, err := NewElement(hx, hy, hz)
	if err != nil {
		return nil, err
	}
	s := &Space{
		R:      r,
		M:      m,
		L:      l,
		RowMap: sparse.NewRowMap(l.VertGlobal[:l.NumOwned]),
		Owner:  owner,
		El:     el,
	}
	ghosts := l.VertGlobal[l.NumOwned:]
	s.patchImp, err = sparse.NewImporter(r, s.RowMap, ghosts, owner, tag)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// NOwned returns the owned dof count.
func (s *Space) NOwned() int { return s.RowMap.N() }

// NPatch returns the local patch size (owned + patch ghosts).
func (s *Space) NPatch() int { return s.L.NumVerts() }

// PatchImporter returns the importer over the local patch layout
// [owned | patch ghosts].
func (s *Space) PatchImporter() *sparse.Importer { return s.patchImp }

// ElemCorner returns the minimal-vertex coordinates of global element e.
func (s *Space) ElemCorner(e int) [3]float64 {
	i, j, k := s.M.ElemIJK(e)
	hx, hy, hz := s.M.H()
	return [3]float64{
		s.M.Box.Lo[0] + float64(i)*hx,
		s.M.Box.Lo[1] + float64(j)*hy,
		s.M.Box.Lo[2] + float64(k)*hz,
	}
}

// AssembleMatrix fills coo (reset first) with element contributions in a
// deterministic order: for each local element, elemMat produces the 8×8
// block, which is scattered by global vertex ids. The resulting COO is
// suitable both for sparse.NewDistMatrix and for later SetValues refills
// (the triplet order is stable across calls).
func (s *Space) AssembleMatrix(coo *sparse.COO, elemMat func(e int, out *[8][8]float64)) {
	coo.Reset()
	coo.Grow(64 * len(s.L.Elems))
	var ke [8][8]float64
	for _, e := range s.L.Elems {
		elemMat(e, &ke)
		vs := s.M.ElemVerts(e)
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				coo.Add(vs[a], vs[b], ke[a][b])
			}
		}
	}
	nt := float64(64 * len(s.L.Elems))
	s.R.ChargeCompute(nt, 24*nt)
}

// AssembleMatrixValues recomputes only the values of a COO previously
// built by AssembleMatrix, appending them to coo.Vals[:0] in the identical
// deterministic order. Re-assembling through this path lets callers free
// the COO's Rows/Cols after the distributed structure exists (they are
// never read again), which matters at the paper's 1000-rank scale.
func (s *Space) AssembleMatrixValues(coo *sparse.COO, elemMat func(e int, out *[8][8]float64)) {
	coo.Vals = coo.Vals[:0]
	var ke [8][8]float64
	for _, e := range s.L.Elems {
		elemMat(e, &ke)
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				coo.Vals = append(coo.Vals, ke[a][b])
			}
		}
	}
	nt := float64(64 * len(s.L.Elems))
	s.R.ChargeCompute(nt, 8*nt)
}

// AssembleVector accumulates element load vectors into an owned-length
// vector: contributions to patch-ghost vertices are exported to their
// owners (the vector GlobalAssemble). out must have length ≥ NOwned and is
// overwritten.
func (s *Space) AssembleVector(out []float64, elemVec func(e int, out *[8]float64)) {
	if s.vecBuf == nil {
		s.vecBuf = make([]float64, s.NPatch())
	}
	buf := s.vecBuf
	for i := range buf {
		buf[i] = 0
	}
	var fe [8]float64
	for _, e := range s.L.Elems {
		elemVec(e, &fe)
		vs := s.M.ElemVerts(e)
		for a := 0; a < 8; a++ {
			buf[s.L.G2L[vs[a]]] += fe[a]
		}
	}
	nt := float64(8 * len(s.L.Elems))
	s.R.ChargeCompute(nt, 24*nt)
	s.patchImp.ExportAdd(buf)
	copy(out[:s.NOwned()], buf[:s.NOwned()])
}

// Interpolate evaluates f at owned vertices into out (length ≥ NOwned).
func (s *Space) Interpolate(f func(x, y, z float64) float64, out []float64) {
	for i, g := range s.RowMap.Owned {
		x, y, z := s.M.VertexCoord(g)
		out[i] = f(x, y, z)
	}
	s.R.ChargeCompute(20*float64(s.NOwned()), 8*float64(s.NOwned()))
}

// MaxNodalError returns the global max |u_i − f(x_i)| over all owned dofs.
func (s *Space) MaxNodalError(u []float64, f func(x, y, z float64) float64) float64 {
	var local float64
	for i, g := range s.RowMap.Owned {
		x, y, z := s.M.VertexCoord(g)
		if d := math.Abs(u[i] - f(x, y, z)); d > local {
			local = d
		}
	}
	s.R.ChargeCompute(22*float64(s.NOwned()), 8*float64(s.NOwned()))
	return s.R.AllreduceScalar(mp.OpMax, local)
}

// L2NodalError returns the global discrete L2 error
// sqrt(Σ(u_i−f(x_i))²·h³), a mesh-weighted nodal norm.
func (s *Space) L2NodalError(u []float64, f func(x, y, z float64) float64) float64 {
	var local float64
	for i, g := range s.RowMap.Owned {
		x, y, z := s.M.VertexCoord(g)
		d := u[i] - f(x, y, z)
		local += d * d
	}
	s.R.ChargeCompute(24*float64(s.NOwned()), 8*float64(s.NOwned()))
	hx, hy, hz := s.M.H()
	return math.Sqrt(s.R.AllreduceScalar(mp.OpSum, local) * hx * hy * hz)
}

// IsBoundary reports whether global vertex id v is on the domain boundary.
func (s *Space) IsBoundary(v int) bool { return s.M.OnBoundary(v) }

// BoundaryFunc adapts a coordinate function of space and time to a global-
// vertex-id function at fixed time (for Dirichlet application).
func (s *Space) BoundaryFunc(g func(x, y, z, t float64) float64, t float64) func(int) float64 {
	return func(v int) float64 {
		x, y, z := s.M.VertexCoord(v)
		return g(x, y, z, t)
	}
}
