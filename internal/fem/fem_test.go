package fem

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"heterohpc/internal/krylov"
	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/sparse"
	"heterohpc/internal/vclock"
)

func TestShapePartitionOfUnity(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xi := [3]float64{
			float64(a)/127.5 - 1,
			float64(b)/127.5 - 1,
			float64(c)/127.5 - 1,
		}
		n, dn := ShapeQ1(xi)
		var sum float64
		var dsum [3]float64
		for i := 0; i < 8; i++ {
			sum += n[i]
			for d := 0; d < 3; d++ {
				dsum[d] += dn[i][d]
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			return false
		}
		for d := 0; d < 3; d++ {
			if math.Abs(dsum[d]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShapeKroneckerAtCorners(t *testing.T) {
	corners := [8][3]float64{
		{-1, -1, -1}, {1, -1, -1}, {-1, 1, -1}, {1, 1, -1},
		{-1, -1, 1}, {1, -1, 1}, {-1, 1, 1}, {1, 1, 1},
	}
	for a, c := range corners {
		n, _ := ShapeQ1(c)
		for b := 0; b < 8; b++ {
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(n[b]-want) > 1e-14 {
				t.Fatalf("N_%d at corner %d = %v, want %v", b, a, n[b], want)
			}
		}
	}
}

func TestGauss222Weights(t *testing.T) {
	qp := Gauss222()
	if len(qp) != 8 {
		t.Fatalf("%d quadrature points", len(qp))
	}
	var sum float64
	for _, q := range qp {
		sum += q.W
	}
	if math.Abs(sum-8) > 1e-14 {
		t.Fatalf("weights sum to %v, want 8 (reference volume)", sum)
	}
}

func TestElementValidation(t *testing.T) {
	if _, err := NewElement(0, 1, 1); err == nil {
		t.Error("degenerate element accepted")
	}
}

func TestMassMatrixIntegratesVolume(t *testing.T) {
	el, err := NewElement(0.5, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	var m [8][8]float64
	el.Mass(3, &m, nil)
	var sum float64
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			sum += m[a][b]
		}
	}
	if want := 3 * el.Volume(); math.Abs(sum-want) > 1e-12 {
		t.Fatalf("mass total %v, want %v", sum, want)
	}
	// Symmetry.
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if math.Abs(m[a][b]-m[b][a]) > 1e-14 {
				t.Fatal("mass matrix not symmetric")
			}
		}
	}
}

func TestStiffnessAnnihilatesConstants(t *testing.T) {
	el, _ := NewElement(0.3, 0.7, 0.2)
	var k [8][8]float64
	el.Stiffness(2, &k, nil)
	for a := 0; a < 8; a++ {
		var row float64
		for b := 0; b < 8; b++ {
			row += k[a][b]
			if math.Abs(k[a][b]-k[b][a]) > 1e-13 {
				t.Fatal("stiffness not symmetric")
			}
		}
		if math.Abs(row) > 1e-12 {
			t.Fatalf("stiffness row %d sums to %v", a, row)
		}
	}
}

func TestStiffnessExactOnLinear(t *testing.T) {
	// For u = x on one element, uᵀ·K·u = ∫|∇u|² = volume.
	el, _ := NewElement(0.5, 0.5, 0.5)
	var k [8][8]float64
	el.Stiffness(1, &k, nil)
	// Node coordinates in local ordering: x-offset pattern 0,1,0,1,...
	var u [8]float64
	for a := 0; a < 8; a++ {
		u[a] = float64(a%2) * el.Hx
	}
	var energy float64
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			energy += u[a] * k[a][b] * u[b]
		}
	}
	if want := el.Volume(); math.Abs(energy-want) > 1e-12 {
		t.Fatalf("energy %v, want %v", energy, want)
	}
}

func TestConvectionAnnihilatesConstants(t *testing.T) {
	el, _ := NewElement(0.4, 0.4, 0.4)
	var c [8][8]float64
	el.Convection([3]float64{1, -2, 0.5}, &c, nil)
	// Column action on a constant field: Σ_b C[a][b]·1 = ∫ N_a (w·∇1) = 0.
	for a := 0; a < 8; a++ {
		var row float64
		for b := 0; b < 8; b++ {
			row += c[a][b]
		}
		if math.Abs(row) > 1e-12 {
			t.Fatalf("convection row %d sums to %v", a, row)
		}
	}
}

func TestConvectionExactOnLinear(t *testing.T) {
	// For u = x and w = (1,0,0): Σ_b C[a][b]·u_b = ∫ N_a ∂x/∂x = ∫ N_a, and
	// Σ_a ∫N_a = volume.
	el, _ := NewElement(0.3, 0.5, 0.7)
	var c [8][8]float64
	el.Convection([3]float64{1, 0, 0}, &c, nil)
	var u [8]float64
	for a := 0; a < 8; a++ {
		u[a] = float64(a%2) * el.Hx
	}
	var total float64
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			total += c[a][b] * u[b]
		}
	}
	if math.Abs(total-el.Volume()) > 1e-12 {
		t.Fatalf("convection action %v, want %v", total, el.Volume())
	}
}

func TestGradientExactOnLinear(t *testing.T) {
	// Σ_ab G_d[a][b]·p_b = ∫ ∂p/∂x_d for p linear.
	el, _ := NewElement(0.25, 0.5, 1)
	var g [8][8]float64
	el.Gradient(1, &g, nil) // d/dy
	var p [8]float64
	for a := 0; a < 8; a++ {
		p[a] = float64((a/2)%2) * el.Hy * 3 // p = 3y
	}
	var total float64
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			total += g[a][b] * p[b]
		}
	}
	if want := 3 * el.Volume(); math.Abs(total-want) > 1e-12 {
		t.Fatalf("gradient action %v, want %v", total, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad direction did not panic")
		}
	}()
	el.Gradient(3, &g, nil)
}

func TestLoadIntegratesConstant(t *testing.T) {
	el, _ := NewElement(0.5, 0.5, 0.5)
	var f [8]float64
	el.Load(func(x, y, z float64) float64 { return 4 }, [3]float64{0, 0, 0}, &f, nil)
	var sum float64
	for a := 0; a < 8; a++ {
		sum += f[a]
	}
	if want := 4 * el.Volume(); math.Abs(sum-want) > 1e-12 {
		t.Fatalf("load total %v, want %v", sum, want)
	}
}

func TestLoadEvaluatesCoordinates(t *testing.T) {
	// ∫ x over an element at corner (1,2,3) with h=1: mean x = 1.5, so the
	// total load is 1.5·V.
	el, _ := NewElement(1, 1, 1)
	var f [8]float64
	el.Load(func(x, y, z float64) float64 { return x }, [3]float64{1, 2, 3}, &f, nil)
	var sum float64
	for a := 0; a < 8; a++ {
		sum += f[a]
	}
	if math.Abs(sum-1.5) > 1e-12 {
		t.Fatalf("∫x = %v, want 1.5", sum)
	}
}

// --- distributed space tests ---

func runRanks(t *testing.T, nranks int, body func(r *mp.Rank) error) {
	t.Helper()
	topo, err := mp.BlockTopology(nranks, 4)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := netmodel.NewFabric(netmodel.Loopback, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mp.NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleVectorTotalIsVolume(t *testing.T) {
	m := mesh.NewUnitCube(4)
	runRanks(t, 8, func(r *mp.Rank) error {
		s, err := NewSpaceBlock(r, m, 2, 2, 2, 10)
		if err != nil {
			return err
		}
		rhs := make([]float64, s.NOwned())
		s.AssembleVector(rhs, func(e int, out *[8]float64) {
			s.El.Load(func(x, y, z float64) float64 { return 1 }, s.ElemCorner(e), out, r)
		})
		var local float64
		for _, v := range rhs {
			local += v
		}
		total := r.AllreduceScalar(mp.OpSum, local)
		if math.Abs(total-1) > 1e-12 {
			return fmt.Errorf("global load total %v, want 1 (unit cube volume)", total)
		}
		return nil
	})
}

// The patch test: the Q1 discretisation of Laplace's equation with linear
// Dirichlet data reproduces the linear solution to machine precision, on a
// distributed 8-rank assembly.
func TestPatchTestDistributed(t *testing.T) {
	m := mesh.NewUnitCube(4)
	exact := func(x, y, z float64) float64 { return 1 + 2*x - 3*y + 0.5*z }
	runRanks(t, 8, func(r *mp.Rank) error {
		s, err := NewSpaceBlock(r, m, 2, 2, 2, 20)
		if err != nil {
			return err
		}
		var coo sparse.COO
		s.AssembleMatrix(&coo, func(e int, out *[8][8]float64) {
			s.El.Stiffness(1, out, r)
		})
		dm, err := sparse.NewDistMatrix(r, s.RowMap, &coo, s.Owner, 30)
		if err != nil {
			return err
		}
		rhs := make([]float64, s.NOwned())
		dm.ApplyDirichlet(s.IsBoundary, func(v int) float64 {
			x, y, z := s.M.VertexCoord(v)
			return exact(x, y, z)
		}, rhs)
		M := krylov.NewILU0(dm.Local(), dm.NOwned(), r)
		if err := M.Setup(); err != nil {
			return err
		}
		x := make([]float64, s.NOwned())
		res, err := krylov.CG(dm, M, rhs, x, krylov.Options{Tol: 1e-12, MaxIter: 500})
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("CG did not converge: %+v", res)
		}
		if e := s.MaxNodalError(x, exact); e > 1e-9 {
			return fmt.Errorf("patch test error %v", e)
		}
		return nil
	})
}

// Single-rank and multi-rank assemblies must produce identical solutions.
func TestSerialParallelEquivalence(t *testing.T) {
	m := mesh.NewUnitCube(4)
	exact := func(x, y, z float64) float64 { return math.Sin(x) * math.Cos(y) * (1 + z) }
	solve := func(nranks, px, py, pz int) []float64 {
		sol := make([]float64, m.NumVerts())
		runRanks(t, nranks, func(r *mp.Rank) error {
			s, err := NewSpaceBlock(r, m, px, py, pz, 40)
			if err != nil {
				return err
			}
			var coo sparse.COO
			s.AssembleMatrix(&coo, func(e int, out *[8][8]float64) {
				var mm [8][8]float64
				s.El.Stiffness(1, out, r)
				s.El.Mass(1, &mm, r)
				for a := 0; a < 8; a++ {
					for b := 0; b < 8; b++ {
						out[a][b] += mm[a][b]
					}
				}
			})
			dm, err := sparse.NewDistMatrix(r, s.RowMap, &coo, s.Owner, 50)
			if err != nil {
				return err
			}
			rhs := make([]float64, s.NOwned())
			s.AssembleVector(rhs, func(e int, out *[8]float64) {
				s.El.Load(func(x, y, z float64) float64 { return x + y*z }, s.ElemCorner(e), out, r)
			})
			dm.ApplyDirichlet(s.IsBoundary, func(v int) float64 {
				x, y, z := s.M.VertexCoord(v)
				return exact(x, y, z)
			}, rhs)
			x := make([]float64, s.NOwned())
			res, err := krylov.CG(dm, nil, rhs, x, krylov.Options{Tol: 1e-12, MaxIter: 1000})
			if err != nil || !res.Converged {
				return fmt.Errorf("cg: %v %+v", err, res)
			}
			for i, g := range s.RowMap.Owned {
				sol[g] = x[i] // ranks own disjoint rows; no race
			}
			return nil
		})
		return sol
	}
	serial := solve(1, 1, 1, 1)
	par := solve(8, 2, 2, 2)
	for v := range serial {
		if math.Abs(serial[v]-par[v]) > 1e-9*(1+math.Abs(serial[v])) {
			t.Fatalf("vertex %d: serial %v vs parallel %v", v, serial[v], par[v])
		}
	}
}

func TestInterpolateAndErrors(t *testing.T) {
	m := mesh.NewUnitCube(3)
	runRanks(t, 1, func(r *mp.Rank) error {
		s, err := NewSpaceBlock(r, m, 1, 1, 1, 60)
		if err != nil {
			return err
		}
		f := func(x, y, z float64) float64 { return x*y + z }
		u := make([]float64, s.NOwned())
		s.Interpolate(f, u)
		if e := s.MaxNodalError(u, f); e != 0 {
			return fmt.Errorf("interpolation max error %v", e)
		}
		if e := s.L2NodalError(u, f); e != 0 {
			return fmt.Errorf("interpolation L2 error %v", e)
		}
		u[0] += 0.5
		if e := s.MaxNodalError(u, f); math.Abs(e-0.5) > 1e-14 {
			return fmt.Errorf("perturbed max error %v, want 0.5", e)
		}
		return nil
	})
}

func TestNewSpaceBlockValidation(t *testing.T) {
	m := mesh.NewUnitCube(2)
	runRanks(t, 2, func(r *mp.Rank) error {
		if _, err := NewSpaceBlock(r, m, 1, 1, 1, 70); err == nil {
			return fmt.Errorf("mismatched block grid accepted")
		}
		return nil
	})
}

// AssembleMatrixValues must reproduce exactly the values AssembleMatrix
// produces, in the same order.
func TestAssembleMatrixValuesMatchesFull(t *testing.T) {
	m := mesh.NewUnitCube(3)
	runRanks(t, 8, func(r *mp.Rank) error {
		s, err := NewSpaceBlock(r, m, 2, 2, 2, 80)
		if err != nil {
			return err
		}
		elem := func(e int, out *[8][8]float64) {
			s.El.Stiffness(2.5, out, r)
			var mm [8][8]float64
			s.El.Mass(1.5, &mm, r)
			for a := 0; a < 8; a++ {
				for b := 0; b < 8; b++ {
					out[a][b] += mm[a][b]
				}
			}
		}
		var full sparse.COO
		s.AssembleMatrix(&full, elem)
		want := append([]float64(nil), full.Vals...)
		// Values-only refill over the same COO.
		s.AssembleMatrixValues(&full, elem)
		if len(full.Vals) != len(want) {
			return fmt.Errorf("lengths differ: %d vs %d", len(full.Vals), len(want))
		}
		for i := range want {
			if full.Vals[i] != want[i] {
				return fmt.Errorf("value %d differs: %v vs %v", i, full.Vals[i], want[i])
			}
		}
		return nil
	})
}
