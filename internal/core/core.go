// Package core is the façade of the library: it binds a platform model
// (hardware + interconnect), its scheduler and its billing into a Target on
// which parallel applications run, and aggregates per-rank virtual-time
// profiles into the per-iteration statistics the paper reports ("the
// average times of assembly, preconditioning, and solver phases with the
// total maximal iteration time", §VII-A).
//
// A Run executes the application for real — every rank assembles, solves
// and communicates — while the virtual clocks translate the observed
// operation counts and message sizes into seconds on the modelled platform.
package core

import (
	"fmt"

	"heterohpc/internal/cost"
	"heterohpc/internal/fault"
	"heterohpc/internal/mp"
	"heterohpc/internal/netmodel"
	"heterohpc/internal/obs"
	"heterohpc/internal/platform"
	"heterohpc/internal/sched"
	"heterohpc/internal/vclock"
)

// App is a parallel application runnable on a Target. Run executes the
// SPMD body of one rank and reports its per-step phase breakdown plus
// scalar metrics (error norms, iteration counts); metrics must be globally
// consistent (identical on all ranks).
type App interface {
	Name() string
	Run(r *mp.Rank) (steps []vclock.PhaseTimes, metrics map[string]float64, err error)
}

// Target is a platform ready to execute jobs.
type Target struct {
	Platform *platform.Platform
	Sched    *sched.Scheduler
	Billing  cost.Billing
}

// NewTarget builds the named platform's target with a deterministic
// scheduler stream.
func NewTarget(name string, seed uint64) (*Target, error) {
	p, err := platform.Get(name)
	if err != nil {
		return nil, err
	}
	return NewTargetFromPlatform(p, seed)
}

// NewTargetFromPlatform builds a target from an explicit platform
// description — the hook for counterfactual ablations ("puma with
// InfiniBand") that modify a copy of a catalog platform.
func NewTargetFromPlatform(p *platform.Platform, seed uint64) (*Target, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Target{
		Platform: p,
		Sched:    sched.New(p, seed),
		Billing:  cost.ForPlatform(p),
	}, nil
}

// JobSpec describes one submission.
type JobSpec struct {
	// Ranks is the MPI process count.
	Ranks int
	// App is the application to execute.
	App App
	// SkipSteps discards the first k time steps from the averaged
	// statistics, insulating them from startup artefacts as the paper does
	// ("we discarded timings from the first 5 iterations").
	SkipSteps int
	// GroupOfNode optionally assigns each node to an EC2 placement group
	// (nil = single group). Length must equal the node count.
	GroupOfNode []int
	// MemPerRankGB is the job's working set per rank, checked against the
	// platform's RAM per core.
	MemPerRankGB float64
	// RanksPerNode overrides the default dense packing (CoresPerNode ranks
	// per node). Underfilling nodes buys each rank a larger NIC share at a
	// higher whole-node cost — the trade-off behind the paper's observation
	// that EC2's 16-core nodes need "notably fewer hosts". Zero means dense.
	RanksPerNode int
	// Faults are injected failure events armed on the world before the
	// application starts (see internal/fault). Events targeting nodes
	// beyond the job's topology are ignored.
	Faults []fault.Event
	// Obs, when non-nil, attaches an observability sink to the run's world:
	// per-rank journals of phase transitions, solves, halo traffic and
	// checkpoints, plus the metrics registry. Nil (the default) records
	// nothing and adds nothing to the hot paths.
	Obs *obs.Run
}

// IterStats are the paper's per-iteration statistics, averaged over the
// kept time steps.
type IterStats struct {
	// AvgAssembly/AvgPrecond/AvgSolve/AvgOther are rank-averaged phase
	// times per iteration (seconds).
	AvgAssembly float64
	AvgPrecond  float64
	AvgSolve    float64
	AvgOther    float64
	// MaxTotal is the total maximal iteration time: max over ranks,
	// averaged over kept steps.
	MaxTotal float64
	// CommFraction is the communication share of the rank-summed time.
	CommFraction float64
	// Steps is the number of kept iterations.
	Steps int
}

// Report is the outcome of one job.
type Report struct {
	Platform string
	App      string
	Ranks    int
	Nodes    int
	// QueueWaitS is the sampled scheduler wait before execution (seconds).
	QueueWaitS float64
	Iter       IterStats
	// CostPerIter prices one iteration (MaxTotal) at the platform's
	// on-demand billing; SpotCostPerIter at the spot rate when one exists.
	CostPerIter     float64
	SpotCostPerIter float64
	// Metrics carries application metrics (error norms, solver iterations).
	Metrics map[string]float64
	// PerRankSteps holds every rank's per-step phase breakdown (the raw
	// data behind Iter), for timeline export and custom analyses.
	PerRankSteps [][]vclock.PhaseTimes
}

// AttemptFailure describes an execution attempt killed by an injected or
// modelled failure: the typed run error plus what the supervisor needs to
// account for the loss.
type AttemptFailure struct {
	// Err is the run error; errors.Is(Err, mp.ErrRankDead) for node loss.
	Err error
	// Node and At identify the scheduled failure (Node −1 when the world
	// recorded none — an application error, not a node death).
	Node int
	// At is the failure's scheduled virtual time (deterministic, unlike
	// the racing wavefront of rank clocks at abort).
	At float64
	// ElapsedS is the furthest virtual time any rank reached before the
	// world shut down — diagnostic only; it varies run to run.
	ElapsedS float64
	// World is the poisoned world the attempt died in. A shrink-and-
	// continue supervisor calls World.Shrink() on it to re-form the
	// survivors; restart supervisors may ignore it.
	World *mp.World
}

// Error implements error so a failure can be wrapped and classified.
func (f *AttemptFailure) Error() string { return f.Err.Error() }

// Unwrap exposes the underlying run error to errors.Is/As.
func (f *AttemptFailure) Unwrap() error { return f.Err }

// Run submits the job, executes it and aggregates the report. Scheduling
// failures (machine too small, launch limits, the lagrange IB volume cap)
// surface as the typed errors of internal/sched; fault-injected deaths
// surface as *AttemptFailure wrapping mp.ErrRankDead.
func (t *Target) Run(spec JobSpec) (*Report, error) {
	rep, af, err := t.Attempt(spec)
	if err != nil {
		return nil, err
	}
	if af != nil {
		return nil, af
	}
	return rep, nil
}

// RunObserved is Run with an observability sink attached: every rank's
// phase transitions, solver convergence, halo traffic and checkpoints are
// journalled into run, and the world's traffic counters land in its metric
// registry. Equivalent to setting spec.Obs; provided as the explicit entry
// point for callers that hold a spec they do not want to mutate.
func (t *Target) RunObserved(spec JobSpec, run *obs.Run) (*Report, error) {
	spec.Obs = run
	return t.Run(spec)
}

// Attempt submits the job once, distinguishing infrastructure verdicts:
// (rep, nil, nil) on success; (nil, af, nil) when the execution itself died
// (injected fault or application error) and retrying/recovering may make
// sense; (nil, nil, err) when the submission never ran (bad spec, scheduler
// refusal) — the supervisor's raw material.
func (t *Target) Attempt(spec JobSpec) (*Report, *AttemptFailure, error) {
	if spec.App == nil {
		return nil, nil, fmt.Errorf("core: job without application")
	}
	if err := t.Sched.Admit(spec.Ranks, spec.MemPerRankGB); err != nil {
		return nil, nil, err
	}
	p := t.Platform
	cpn := p.CoresPerNode()
	if spec.RanksPerNode > 0 {
		if spec.RanksPerNode > cpn {
			return nil, nil, fmt.Errorf("core: %d ranks per node exceeds %d cores (%s)",
				spec.RanksPerNode, cpn, p.Name)
		}
		cpn = spec.RanksPerNode
	}
	nodes := (spec.Ranks + cpn - 1) / cpn
	if nodes > p.MaxNodes {
		return nil, nil, fmt.Errorf("core: placement needs %d nodes, %s has %d",
			nodes, p.Name, p.MaxNodes)
	}
	queueWait := t.Sched.QueueWait(nodes)

	groups := spec.GroupOfNode
	if groups == nil {
		groups = make([]int, nodes)
	}
	if len(groups) != nodes {
		return nil, nil, fmt.Errorf("core: %d group assignments for %d nodes", len(groups), nodes)
	}
	nodeOf := make([]int, spec.Ranks)
	for r := range nodeOf {
		nodeOf[r] = r / cpn
	}
	topo, err := mp.NewTopology(nodeOf, groups)
	if err != nil {
		return nil, nil, err
	}
	commScale := p.CommScale
	if commScale == 0 {
		commScale = 1
	}
	fabric, err := netmodel.NewFabricScaled(p.Net, nodes, commScale)
	if err != nil {
		return nil, nil, err
	}
	world, err := mp.NewWorld(topo, fabric, p.Rater)
	if err != nil {
		return nil, nil, err
	}
	if err := fault.Arm(world, spec.Faults); err != nil {
		return nil, nil, err
	}
	world.Observe(spec.Obs)

	perRank := make([][]vclock.PhaseTimes, spec.Ranks)
	var metrics map[string]float64
	runErr := world.Run(func(r *mp.Rank) error {
		steps, m, err := spec.App.Run(r)
		if err != nil {
			return err
		}
		perRank[r.ID()] = steps
		if r.ID() == 0 {
			metrics = m
		}
		return nil
	})
	world.FlushObs()
	if runErr != nil {
		af := &AttemptFailure{
			Err: fmt.Errorf("core: %s on %s with %d ranks: %w",
				spec.App.Name(), p.Name, spec.Ranks, runErr),
			Node:     -1,
			ElapsedS: world.MaxVirtualTime(),
			World:    world,
		}
		if f, down := world.Failure(); down {
			af.Node, af.At = f.Node, f.At
		}
		return nil, af, nil
	}

	iter, err := aggregate(perRank, spec.SkipSteps)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		Platform:     p.Name,
		App:          spec.App.Name(),
		Ranks:        spec.Ranks,
		Nodes:        nodes,
		QueueWaitS:   queueWait,
		Iter:         iter,
		CostPerIter:  t.Billing.PerIteration(iter.MaxTotal, spec.Ranks),
		Metrics:      metrics,
		PerRankSteps: perRank,
	}
	if sb, err := cost.SpotForPlatform(p); err == nil {
		rep.SpotCostPerIter = sb.PerIteration(iter.MaxTotal, spec.Ranks)
	}
	return rep, nil, nil
}

// ResumeAttempt runs app on an already-formed world — the survivor world a
// Shrink produced — instead of building placement, fabric, and topology
// from a JobSpec. There is no scheduler admission and no queue wait: the
// nodes are the ones the original job already held. faults arms any
// remaining failure schedule (translated to the survivor node numbering);
// the same three-way verdict as Attempt applies, so a second node loss in
// the continuation surfaces as another *AttemptFailure carrying its own
// poisoned world.
func (t *Target) ResumeAttempt(world *mp.World, app App, skipSteps int, faults []fault.Event) (*Report, *AttemptFailure, error) {
	if app == nil {
		return nil, nil, fmt.Errorf("core: resume without application")
	}
	if world == nil {
		return nil, nil, fmt.Errorf("core: resume without world")
	}
	if err := fault.Arm(world, faults); err != nil {
		return nil, nil, err
	}
	ranks := world.Size()
	perRank := make([][]vclock.PhaseTimes, ranks)
	var metrics map[string]float64
	runErr := world.Run(func(r *mp.Rank) error {
		steps, m, err := app.Run(r)
		if err != nil {
			return err
		}
		perRank[r.ID()] = steps
		if r.ID() == 0 {
			metrics = m
		}
		return nil
	})
	world.FlushObs()
	if runErr != nil {
		af := &AttemptFailure{
			Err: fmt.Errorf("core: %s resumed on %s with %d ranks: %w",
				app.Name(), t.Platform.Name, ranks, runErr),
			Node:     -1,
			ElapsedS: world.MaxVirtualTime(),
			World:    world,
		}
		if f, down := world.Failure(); down {
			af.Node, af.At = f.Node, f.At
		}
		return nil, af, nil
	}
	iter, err := aggregate(perRank, skipSteps)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		Platform:     t.Platform.Name,
		App:          app.Name(),
		Ranks:        ranks,
		Nodes:        world.Topology().NNodes(),
		Iter:         iter,
		CostPerIter:  t.Billing.PerIteration(iter.MaxTotal, ranks),
		Metrics:      metrics,
		PerRankSteps: perRank,
	}
	if sb, err := cost.SpotForPlatform(t.Platform); err == nil {
		rep.SpotCostPerIter = sb.PerIteration(iter.MaxTotal, ranks)
	}
	return rep, nil, nil
}

// aggregate computes the paper's iteration statistics from per-rank,
// per-step phase breakdowns.
func aggregate(perRank [][]vclock.PhaseTimes, skip int) (IterStats, error) {
	if len(perRank) == 0 || len(perRank[0]) == 0 {
		return IterStats{}, fmt.Errorf("core: application reported no steps")
	}
	nsteps := len(perRank[0])
	for r, s := range perRank {
		if len(s) != nsteps {
			return IterStats{}, fmt.Errorf("core: rank %d reported %d steps, rank 0 %d",
				r, len(s), nsteps)
		}
	}
	if skip >= nsteps {
		skip = nsteps - 1 // always keep at least the last step
	}
	var st IterStats
	var commSum, totalSum float64
	ranks := float64(len(perRank))
	for s := skip; s < nsteps; s++ {
		var avgA, avgP, avgS, avgO, maxTot float64
		for r := range perRank {
			pt := perRank[r][s]
			avgA += pt.Phase(vclock.PhaseAssembly)
			avgP += pt.Phase(vclock.PhasePrecond)
			avgS += pt.Phase(vclock.PhaseSolve)
			avgO += pt.Phase(vclock.PhaseOther)
			if tot := pt.Total(); tot > maxTot {
				maxTot = tot
			}
			for _, ph := range vclock.Phases {
				commSum += pt.Comm[ph]
			}
			totalSum += pt.Total()
		}
		st.AvgAssembly += avgA / ranks
		st.AvgPrecond += avgP / ranks
		st.AvgSolve += avgS / ranks
		st.AvgOther += avgO / ranks
		st.MaxTotal += maxTot
		st.Steps++
	}
	k := float64(st.Steps)
	st.AvgAssembly /= k
	st.AvgPrecond /= k
	st.AvgSolve /= k
	st.AvgOther /= k
	st.MaxTotal /= k
	if totalSum > 0 {
		st.CommFraction = commSum / totalSum
	}
	return st, nil
}
