package core

import (
	"fmt"

	"heterohpc/internal/mesh"
	"heterohpc/internal/mp"
	"heterohpc/internal/nse"
	"heterohpc/internal/rd"
	"heterohpc/internal/vclock"
)

// RDApp adapts the reaction–diffusion solver to the App interface.
type RDApp struct {
	Cfg rd.Config
}

// Name implements App.
func (a RDApp) Name() string { return "rd" }

// Run implements App.
func (a RDApp) Run(r *mp.Rank) ([]vclock.PhaseTimes, map[string]float64, error) {
	res, err := rd.Run(r, a.Cfg)
	if err != nil {
		return nil, nil, err
	}
	var iters float64
	for _, it := range res.SolveIters {
		iters += float64(it)
	}
	metrics := map[string]float64{
		"max_err":         res.MaxErr,
		"l2_err":          res.L2Err,
		"avg_solve_iters": iters / float64(len(res.SolveIters)),
	}
	return res.StepTimes, metrics, nil
}

// NSApp adapts the Navier–Stokes solver to the App interface.
type NSApp struct {
	Cfg nse.Config
}

// Name implements App.
func (a NSApp) Name() string { return "ns" }

// Run implements App.
func (a NSApp) Run(r *mp.Rank) ([]vclock.PhaseTimes, map[string]float64, error) {
	res, err := nse.Run(r, a.Cfg)
	if err != nil {
		return nil, nil, err
	}
	var vel, pres float64
	for i := range res.VelIters {
		vel += float64(res.VelIters[i])
		pres += float64(res.PresIters[i])
	}
	k := float64(len(res.VelIters))
	metrics := map[string]float64{
		"vel_max_err":    res.VelMaxErr,
		"vel_l2_err":     res.VelL2Err,
		"pres_l2_err":    res.PresL2Err,
		"avg_vel_iters":  vel / k,
		"avg_pres_iters": pres / k,
	}
	return res.StepTimes, metrics, nil
}

// WeakRD builds the weak-scaling RD application for ranks = p³ processes,
// each loaded with perRankN³ elements — the paper's loading ("we started
// from a single process loaded with the input mesh of size 20³ elements and
// incremented the number of processes as well as the input mesh size as
// cubic powers").
func WeakRD(ranks, perRankN, steps int) (App, error) {
	p, err := mesh.CubeGrid(ranks)
	if err != nil {
		return nil, fmt.Errorf("core: weak scaling needs cubic rank counts: %w", err)
	}
	m := mesh.NewUnitCube(perRankN * p)
	return RDApp{Cfg: rd.Config{
		Mesh:  m,
		Grid:  [3]int{p, p, p},
		Steps: steps,
	}}, nil
}

// WeakNS builds the weak-scaling Navier–Stokes application (Ethier–Steinman
// domain [−1,1]³) with the same loading rule.
func WeakNS(ranks, perRankN, steps int) (App, error) {
	p, err := mesh.CubeGrid(ranks)
	if err != nil {
		return nil, fmt.Errorf("core: weak scaling needs cubic rank counts: %w", err)
	}
	n := perRankN * p
	m, err := mesh.NewBox(mesh.SymmetricBox, n, n, n)
	if err != nil {
		return nil, err
	}
	return NSApp{Cfg: nse.Config{
		Mesh:  m,
		Grid:  [3]int{p, p, p},
		Steps: steps,
	}}, nil
}

// StrongRD builds a strong-scaling RD application: a fixed globalN³ mesh
// split over ranks = p³ processes. Unlike the paper's weak-scaling series,
// the per-rank load shrinks as ranks grow — the classic time-to-completion
// view mentioned in the paper's introduction ("parameterized along two
// dimensions: problem size and number of processing elements").
func StrongRD(ranks, globalN, steps int) (App, error) {
	p, err := mesh.CubeGrid(ranks)
	if err != nil {
		return nil, fmt.Errorf("core: strong scaling needs cubic rank counts: %w", err)
	}
	if globalN < p {
		return nil, fmt.Errorf("core: %d³ mesh cannot be split %d ways per dimension", globalN, p)
	}
	m := mesh.NewUnitCube(globalN)
	return RDApp{Cfg: rd.Config{
		Mesh:  m,
		Grid:  [3]int{p, p, p},
		Steps: steps,
	}}, nil
}

// StrongNS builds the strong-scaling Navier–Stokes application on a fixed
// globalN³ Ethier–Steinman mesh.
func StrongNS(ranks, globalN, steps int) (App, error) {
	p, err := mesh.CubeGrid(ranks)
	if err != nil {
		return nil, fmt.Errorf("core: strong scaling needs cubic rank counts: %w", err)
	}
	if globalN < p {
		return nil, fmt.Errorf("core: %d³ mesh cannot be split %d ways per dimension", globalN, p)
	}
	m, err := mesh.NewBox(mesh.SymmetricBox, globalN, globalN, globalN)
	if err != nil {
		return nil, err
	}
	return NSApp{Cfg: nse.Config{
		Mesh:  m,
		Grid:  [3]int{p, p, p},
		Steps: steps,
	}}, nil
}

// MemPerRankGB estimates the resident working set of one rank holding n³
// elements of a scalar (RD) or 4-field (NS) problem — matrices dominate at
// ~27 nonzeros × (8+4) bytes per row plus solver vectors.
func MemPerRankGB(perRankN int, fields int) float64 {
	dofs := float64((perRankN + 1) * (perRankN + 1) * (perRankN + 1))
	bytes := dofs * (27*12*2 + 30*8) * float64(fields) // two matrices + vectors
	return bytes / (1 << 30)
}
