package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"heterohpc/internal/fault"
	"heterohpc/internal/mp"
	"heterohpc/internal/sched"
	"heterohpc/internal/vclock"
)

func TestNewTarget(t *testing.T) {
	for _, name := range []string{"puma", "ellipse", "lagrange", "ec2"} {
		tg, err := NewTarget(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tg.Platform.Name != name {
			t.Errorf("wrong platform %s", tg.Platform.Name)
		}
	}
	if _, err := NewTarget("bogus", 1); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestRunRDSmall(t *testing.T) {
	tg, _ := NewTarget("puma", 1)
	app, err := WeakRD(8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tg.Run(JobSpec{Ranks: 8, App: app, SkipSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != 8 || rep.Nodes != 2 {
		t.Errorf("geometry: %d ranks on %d nodes", rep.Ranks, rep.Nodes)
	}
	if rep.Iter.Steps != 2 {
		t.Errorf("kept %d steps, want 2", rep.Iter.Steps)
	}
	if rep.Iter.AvgAssembly <= 0 || rep.Iter.AvgPrecond <= 0 || rep.Iter.AvgSolve <= 0 {
		t.Errorf("phases must be positive: %+v", rep.Iter)
	}
	if rep.Iter.MaxTotal < rep.Iter.AvgAssembly+rep.Iter.AvgPrecond+rep.Iter.AvgSolve {
		t.Errorf("max total %v below sum of phase averages %+v", rep.Iter.MaxTotal, rep.Iter)
	}
	if rep.CostPerIter <= 0 {
		t.Errorf("cost %v", rep.CostPerIter)
	}
	if rep.SpotCostPerIter != 0 {
		t.Errorf("puma has no spot market, got %v", rep.SpotCostPerIter)
	}
	if rep.QueueWaitS <= 0 {
		t.Errorf("queue wait %v", rep.QueueWaitS)
	}
	if rep.Metrics["max_err"] > 1e-4 {
		t.Errorf("solution wrong: max_err %v", rep.Metrics["max_err"])
	}
}

func TestRunNSSmall(t *testing.T) {
	tg, _ := NewTarget("ec2", 1)
	app, err := WeakNS(8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tg.Run(JobSpec{Ranks: 8, App: app})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 1 { // 8 ranks fit one 16-core cc2.8xlarge
		t.Errorf("ns on ec2: %d nodes", rep.Nodes)
	}
	if rep.SpotCostPerIter <= 0 || rep.SpotCostPerIter >= rep.CostPerIter {
		t.Errorf("spot %v vs on-demand %v", rep.SpotCostPerIter, rep.CostPerIter)
	}
	if rep.Metrics["vel_l2_err"] > 0.5 {
		t.Errorf("velocity error %v", rep.Metrics["vel_l2_err"])
	}
}

// NS must cost more virtual time per iteration than RD at equal loading
// (§VII-C: "The Navier-Stokes test is more computationally demanding").
func TestNSHeavierThanRD(t *testing.T) {
	tg, _ := NewTarget("ec2", 1)
	rdApp, _ := WeakRD(8, 4, 2)
	nsApp, _ := WeakNS(8, 4, 2)
	rdRep, err := tg.Run(JobSpec{Ranks: 8, App: rdApp})
	if err != nil {
		t.Fatal(err)
	}
	nsRep, err := tg.Run(JobSpec{Ranks: 8, App: nsApp})
	if err != nil {
		t.Fatal(err)
	}
	if nsRep.Iter.MaxTotal <= rdRep.Iter.MaxTotal {
		t.Fatalf("NS iteration %v not heavier than RD %v",
			nsRep.Iter.MaxTotal, rdRep.Iter.MaxTotal)
	}
}

func TestSchedulingErrorsSurface(t *testing.T) {
	app, _ := WeakRD(216, 2, 1)
	tg, _ := NewTarget("puma", 1)
	_, err := tg.Run(JobSpec{Ranks: 216, App: app})
	if !errors.Is(err, sched.ErrTooLarge) {
		t.Errorf("puma 216 ranks: %v", err)
	}
	tg, _ = NewTarget("lagrange", 1)
	app512, _ := WeakRD(512, 2, 1)
	_, err = tg.Run(JobSpec{Ranks: 512, App: app512})
	if !errors.Is(err, sched.ErrIBVolumeCap) {
		t.Errorf("lagrange 512 ranks: %v", err)
	}
	tg, _ = NewTarget("ellipse", 1)
	app729, _ := WeakRD(729, 2, 1)
	_, err = tg.Run(JobSpec{Ranks: 729, App: app729})
	if !errors.Is(err, sched.ErrLaunchLimit) {
		t.Errorf("ellipse 729 ranks: %v", err)
	}
}

func TestGroupAssignmentValidated(t *testing.T) {
	tg, _ := NewTarget("ec2", 1)
	app, _ := WeakRD(8, 3, 1)
	if _, err := tg.Run(JobSpec{Ranks: 8, App: app, GroupOfNode: []int{0, 1}}); err == nil {
		t.Error("mismatched group list accepted (8 ranks = 1 ec2 node)")
	}
}

func TestWeakAppValidation(t *testing.T) {
	if _, err := WeakRD(7, 4, 1); err == nil {
		t.Error("non-cubic rank count accepted")
	}
	if _, err := WeakNS(10, 4, 1); err == nil {
		t.Error("non-cubic rank count accepted")
	}
}

func TestMemPerRankGB(t *testing.T) {
	if m := MemPerRankGB(20, 1); m <= 0 || m > 1 {
		t.Errorf("20³ scalar working set %v GB implausible", m)
	}
	if MemPerRankGB(20, 4) <= MemPerRankGB(20, 1) {
		t.Error("4-field problem must need more memory")
	}
}

type fakeApp struct {
	perRank func(rank int) []vclock.PhaseTimes
	fail    bool
}

func (f fakeApp) Name() string { return "fake" }
func (f fakeApp) Run(r *mp.Rank) ([]vclock.PhaseTimes, map[string]float64, error) {
	if f.fail {
		return nil, nil, fmt.Errorf("deliberate failure")
	}
	return f.perRank(r.ID()), map[string]float64{"ok": 1}, nil
}

func TestAggregateStatistics(t *testing.T) {
	tg, _ := NewTarget("puma", 1)
	// Two ranks (one node), two steps; rank 1 is slower in solve.
	mk := func(a, s float64) vclock.PhaseTimes {
		var pt vclock.PhaseTimes
		pt.Compute[vclock.PhaseAssembly] = a
		pt.Compute[vclock.PhaseSolve] = s
		return pt
	}
	app := fakeApp{perRank: func(rank int) []vclock.PhaseTimes {
		if rank == 0 {
			return []vclock.PhaseTimes{mk(1, 2), mk(1, 2)}
		}
		return []vclock.PhaseTimes{mk(1, 4), mk(1, 4)}
	}}
	rep, err := tg.Run(JobSpec{Ranks: 2, App: app})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Iter.AvgAssembly-1) > 1e-12 {
		t.Errorf("avg assembly %v", rep.Iter.AvgAssembly)
	}
	if math.Abs(rep.Iter.AvgSolve-3) > 1e-12 {
		t.Errorf("avg solve %v, want mean(2,4)=3", rep.Iter.AvgSolve)
	}
	if math.Abs(rep.Iter.MaxTotal-5) > 1e-12 {
		t.Errorf("max total %v, want 5 (slow rank)", rep.Iter.MaxTotal)
	}
}

func TestAppFailurePropagates(t *testing.T) {
	tg, _ := NewTarget("puma", 1)
	if _, err := tg.Run(JobSpec{Ranks: 2, App: fakeApp{fail: true}}); err == nil {
		t.Error("app failure swallowed")
	}
	if _, err := tg.Run(JobSpec{Ranks: 2}); err == nil {
		t.Error("nil app accepted")
	}
}

func TestSkipStepsClamped(t *testing.T) {
	tg, _ := NewTarget("puma", 1)
	app := fakeApp{perRank: func(int) []vclock.PhaseTimes {
		var pt vclock.PhaseTimes
		pt.Compute[vclock.PhaseSolve] = 1
		return []vclock.PhaseTimes{pt, pt}
	}}
	rep, err := tg.Run(JobSpec{Ranks: 1, App: app, SkipSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iter.Steps != 1 {
		t.Errorf("kept %d steps; clamping should keep the last", rep.Iter.Steps)
	}
}

func TestDeterministicReports(t *testing.T) {
	run := func() *Report {
		tg, _ := NewTarget("ellipse", 7)
		app, _ := WeakRD(8, 3, 2)
		rep, err := tg.Run(JobSpec{Ranks: 8, App: app})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Iter.MaxTotal != b.Iter.MaxTotal || a.CostPerIter != b.CostPerIter ||
		a.QueueWaitS != b.QueueWaitS {
		t.Fatalf("reports not deterministic: %+v vs %+v", a.Iter, b.Iter)
	}
}

func TestRanksPerNodeOverride(t *testing.T) {
	tg, _ := NewTarget("ec2", 1)
	app, _ := WeakRD(8, 3, 2)
	dense, err := tg.Run(JobSpec{Ranks: 8, App: app})
	if err != nil {
		t.Fatal(err)
	}
	app2, _ := WeakRD(8, 3, 2)
	spread, err := tg.Run(JobSpec{Ranks: 8, App: app2, RanksPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Nodes != 1 || spread.Nodes != 8 {
		t.Fatalf("nodes: dense %d spread %d", dense.Nodes, spread.Nodes)
	}
	// Spreading across whole nodes multiplies the whole-node bill.
	if spread.CostPerIter <= dense.CostPerIter {
		t.Errorf("spread cost %v should exceed dense cost %v",
			spread.CostPerIter, dense.CostPerIter)
	}
	// Over-packing is rejected.
	app3, _ := WeakRD(8, 3, 1)
	if _, err := tg.Run(JobSpec{Ranks: 8, App: app3, RanksPerNode: 99}); err == nil {
		t.Error("ranks-per-node above cores accepted")
	}
	// Spreading beyond the machine is rejected.
	puma, _ := NewTarget("puma", 1)
	app4, _ := WeakRD(64, 3, 1)
	if _, err := puma.Run(JobSpec{Ranks: 64, App: app4, RanksPerNode: 1}); err == nil {
		t.Error("64 single-rank nodes on a 32-node machine accepted")
	}
}

// An injected crash surfaces as an AttemptFailure wrapping mp.ErrRankDead,
// with the scheduled failure coordinates; Run wraps the same failure.
func TestAttemptReportsInjectedFault(t *testing.T) {
	tg, _ := NewTarget("puma", 1)
	app, err := WeakRD(8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Ranks: 8, App: app,
		Faults: []fault.Event{{Kind: fault.KindCrash, Node: 1, At: 1e-4}}}
	rep, af, err := tg.Attempt(spec)
	if err != nil || rep != nil {
		t.Fatalf("Attempt = %v, %v; want a failure", rep, err)
	}
	if af == nil || !errors.Is(af, mp.ErrRankDead) {
		t.Fatalf("failure %+v does not wrap ErrRankDead", af)
	}
	if af.Node != 1 || af.At != 1e-4 {
		t.Errorf("failure coordinates %d@%v, want 1@1e-4", af.Node, af.At)
	}
	if af.ElapsedS < af.At {
		t.Errorf("elapsed %v below failure time %v", af.ElapsedS, af.At)
	}
	if _, err := tg.Run(spec); !errors.Is(err, mp.ErrRankDead) {
		t.Errorf("Run error = %v, want ErrRankDead", err)
	}
	// Events beyond the topology are ignored; the job completes.
	ok := JobSpec{Ranks: 8, App: app,
		Faults: []fault.Event{{Kind: fault.KindCrash, Node: 99, At: 1e-4}}}
	if _, err := tg.Run(ok); err != nil {
		t.Errorf("out-of-topology fault killed the run: %v", err)
	}
}
