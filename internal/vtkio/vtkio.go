// Package vtkio writes solutions in the legacy VTK format, covering step
// (iv) of the paper's program organisation: "the visualization of the
// solution to the differential problem … delegated to third party software
// such as Paraview". Files written here load directly into ParaView/VisIt.
//
// Structured meshes map onto VTK STRUCTURED_POINTS datasets: one file holds
// any number of scalar point fields and optional 3-component vector fields
// over the mesh vertices.
package vtkio

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"heterohpc/internal/mesh"
)

// Field is one named point-data array over all global mesh vertices.
type Field struct {
	Name string
	// Values has length m.NumVerts() for scalars, or nil if Vector is set.
	Values []float64
	// Vector holds the three components of a vector field, each of length
	// m.NumVerts().
	Vector [3][]float64
}

// Write emits a legacy-VTK STRUCTURED_POINTS dataset with the given point
// fields. Field order is preserved; names must be unique and non-empty.
func Write(w io.Writer, m *mesh.Mesh, title string, fields []Field) error {
	if m == nil {
		return fmt.Errorf("vtkio: nil mesh")
	}
	nv := m.NumVerts()
	seen := map[string]bool{}
	for _, f := range fields {
		if f.Name == "" {
			return fmt.Errorf("vtkio: field with empty name")
		}
		if seen[f.Name] {
			return fmt.Errorf("vtkio: duplicate field %q", f.Name)
		}
		seen[f.Name] = true
		if f.Values != nil {
			if len(f.Values) != nv {
				return fmt.Errorf("vtkio: field %q has %d values for %d vertices",
					f.Name, len(f.Values), nv)
			}
		} else {
			for c := 0; c < 3; c++ {
				if len(f.Vector[c]) != nv {
					return fmt.Errorf("vtkio: vector field %q component %d has %d values for %d vertices",
						f.Name, c, len(f.Vector[c]), nv)
				}
			}
		}
	}

	bw := bufio.NewWriter(w)
	hx, hy, hz := m.H()
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET STRUCTURED_POINTS")
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", m.Nx+1, m.Ny+1, m.Nz+1)
	fmt.Fprintf(bw, "ORIGIN %g %g %g\n", m.Box.Lo[0], m.Box.Lo[1], m.Box.Lo[2])
	fmt.Fprintf(bw, "SPACING %g %g %g\n", hx, hy, hz)
	fmt.Fprintf(bw, "POINT_DATA %d\n", nv)
	for _, f := range fields {
		if f.Values != nil {
			fmt.Fprintf(bw, "SCALARS %s double 1\n", f.Name)
			fmt.Fprintln(bw, "LOOKUP_TABLE default")
			for _, v := range f.Values {
				fmt.Fprintf(bw, "%g\n", v)
			}
		} else {
			fmt.Fprintf(bw, "VECTORS %s double\n", f.Name)
			for i := 0; i < nv; i++ {
				fmt.Fprintf(bw, "%g %g %g\n", f.Vector[0][i], f.Vector[1][i], f.Vector[2][i])
			}
		}
	}
	return bw.Flush()
}

// FromOwned reconstructs a global vertex field from per-rank owned pieces:
// ownedIDs[r] and ownedVals[r] are rank r's sorted owned vertex ids and
// values (the layout fem.Space and sparse.RowMap produce). Every vertex
// must be owned exactly once.
func FromOwned(m *mesh.Mesh, ownedIDs [][]int, ownedVals [][]float64) ([]float64, error) {
	if len(ownedIDs) != len(ownedVals) {
		return nil, fmt.Errorf("vtkio: %d id lists vs %d value lists", len(ownedIDs), len(ownedVals))
	}
	nv := m.NumVerts()
	out := make([]float64, nv)
	filled := make([]bool, nv)
	for r := range ownedIDs {
		if len(ownedIDs[r]) != len(ownedVals[r]) {
			return nil, fmt.Errorf("vtkio: rank %d has %d ids but %d values",
				r, len(ownedIDs[r]), len(ownedVals[r]))
		}
		for i, g := range ownedIDs[r] {
			if g < 0 || g >= nv {
				return nil, fmt.Errorf("vtkio: vertex id %d out of range", g)
			}
			if filled[g] {
				return nil, fmt.Errorf("vtkio: vertex %d owned twice", g)
			}
			filled[g] = true
			out[g] = ownedVals[r][i]
		}
	}
	missing := 0
	for _, f := range filled {
		if !f {
			missing++
		}
	}
	if missing > 0 {
		return nil, fmt.Errorf("vtkio: %d vertices unowned", missing)
	}
	return out, nil
}

// SortedFieldNames returns field names in deterministic order (test helper
// for callers assembling fields from maps).
func SortedFieldNames(fields map[string][]float64) []string {
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
