package vtkio

import (
	"strings"
	"testing"

	"heterohpc/internal/mesh"
)

func TestWriteScalarField(t *testing.T) {
	m := mesh.NewUnitCube(2)
	vals := make([]float64, m.NumVerts())
	for v := range vals {
		x, y, z := m.VertexCoord(v)
		vals[v] = x + y + z
	}
	var b strings.Builder
	err := Write(&b, m, "rd solution", []Field{{Name: "u", Values: vals}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET STRUCTURED_POINTS",
		"DIMENSIONS 3 3 3",
		"SPACING 0.5 0.5 0.5",
		"POINT_DATA 27",
		"SCALARS u double 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// 27 value lines after the lookup table.
	if got := strings.Count(out, "\n"); got < 27+9 {
		t.Errorf("suspiciously short output (%d lines)", got)
	}
}

func TestWriteVectorField(t *testing.T) {
	m := mesh.NewUnitCube(1)
	nv := m.NumVerts()
	var vec [3][]float64
	for c := 0; c < 3; c++ {
		vec[c] = make([]float64, nv)
		for i := range vec[c] {
			vec[c][i] = float64(c)
		}
	}
	var b strings.Builder
	if err := Write(&b, m, "velocity", []Field{{Name: "u", Vector: vec}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "VECTORS u double") {
		t.Fatalf("missing vector header:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "0 1 2") {
		t.Fatalf("vector components not interleaved:\n%s", b.String())
	}
}

func TestWriteValidation(t *testing.T) {
	m := mesh.NewUnitCube(1)
	var b strings.Builder
	if err := Write(&b, nil, "t", nil); err == nil {
		t.Error("nil mesh accepted")
	}
	if err := Write(&b, m, "t", []Field{{Name: "", Values: make([]float64, m.NumVerts())}}); err == nil {
		t.Error("empty field name accepted")
	}
	short := []Field{{Name: "u", Values: []float64{1}}}
	if err := Write(&b, m, "t", short); err == nil {
		t.Error("short field accepted")
	}
	dup := []Field{
		{Name: "u", Values: make([]float64, m.NumVerts())},
		{Name: "u", Values: make([]float64, m.NumVerts())},
	}
	if err := Write(&b, m, "t", dup); err == nil {
		t.Error("duplicate names accepted")
	}
	badVec := []Field{{Name: "v", Vector: [3][]float64{{1}, {1}, {1}}}}
	if err := Write(&b, m, "t", badVec); err == nil {
		t.Error("short vector accepted")
	}
}

func TestFromOwned(t *testing.T) {
	m := mesh.NewUnitCube(1) // 8 vertices
	ids := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	vals := [][]float64{{0, 10, 20, 30}, {40, 50, 60, 70}}
	out, err := FromOwned(m, ids, vals)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		if out[v] != float64(v*10) {
			t.Fatalf("vertex %d = %v", v, out[v])
		}
	}
}

func TestFromOwnedValidation(t *testing.T) {
	m := mesh.NewUnitCube(1)
	if _, err := FromOwned(m, [][]int{{0}}, [][]float64{{1, 2}}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FromOwned(m, [][]int{{0}, {0}}, [][]float64{{1}, {2}}); err == nil {
		t.Error("double ownership accepted")
	}
	if _, err := FromOwned(m, [][]int{{99}}, [][]float64{{1}}); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := FromOwned(m, [][]int{{0}}, [][]float64{{1}}); err == nil {
		t.Error("incomplete coverage accepted")
	}
}

func TestSortedFieldNames(t *testing.T) {
	names := SortedFieldNames(map[string][]float64{"z": nil, "a": nil, "m": nil})
	if len(names) != 3 || names[0] != "a" || names[2] != "z" {
		t.Fatalf("got %v", names)
	}
}
