package mp

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"heterohpc/internal/netmodel"
	"heterohpc/internal/vclock"
)

func testWorld(t *testing.T, nranks, ranksPerNode int) *World {
	t.Helper()
	topo, err := BlockTopology(nranks, ranksPerNode)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := netmodel.NewFabric(netmodel.Loopback, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9, BytesPerSec: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBlockTopology(t *testing.T) {
	topo, err := BlockTopology(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NRanks() != 10 || topo.NNodes() != 3 {
		t.Fatalf("got %d ranks on %d nodes", topo.NRanks(), topo.NNodes())
	}
	if !topo.SameNode(0, 3) || topo.SameNode(3, 4) {
		t.Error("block layout wrong")
	}
	if topo.NICShare(0) != 4 || topo.NICShare(9) != 2 {
		t.Errorf("NIC shares: %d %d", topo.NICShare(0), topo.NICShare(9))
	}
	if !topo.SameGroup(0, 9) {
		t.Error("default topology should be one placement group")
	}
}

func TestBlockTopologyRejectsBadArgs(t *testing.T) {
	if _, err := BlockTopology(0, 4); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := BlockTopology(4, 0); err == nil {
		t.Error("0 ranks/node accepted")
	}
}

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology([]int{0, 5}, []int{0}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := NewTopology([]int{0, 0}, []int{0, 0}); err == nil {
		t.Error("empty node accepted")
	}
	if _, err := NewTopology([]int{0}, []int{-1}); err == nil {
		t.Error("negative group accepted")
	}
	if _, err := NewTopology(nil, nil); err == nil {
		t.Error("empty topology accepted")
	}
}

func TestSendRecvDeliversData(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.SendF64(1, 7, []float64{1, 2, 3})
			return nil
		}
		got := r.RecvF64(0, 7)
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			buf := []float64{1, 2, 3}
			r.SendF64(1, 0, buf)
			buf[0] = 99 // must not affect the receiver
			r.Barrier()
			return nil
		}
		r.Barrier()
		if got := r.RecvF64(0, 0); got[0] != 1 {
			return fmt.Errorf("payload aliased sender buffer: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.SendF64(1, 1, []float64{1})
			r.SendF64(1, 2, []float64{2})
			return nil
		}
		// Receive out of send order by tag.
		if got := r.RecvF64(0, 2); got[0] != 2 {
			return fmt.Errorf("tag 2 got %v", got)
		}
		if got := r.RecvF64(0, 1); got[0] != 1 {
			return fmt.Errorf("tag 1 got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerTag(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			for i := 0; i < 50; i++ {
				r.SendF64(1, 3, []float64{float64(i)})
			}
			return nil
		}
		for i := 0; i < 50; i++ {
			if got := r.RecvF64(0, 3)[0]; got != float64(i) {
				return fmt.Errorf("message %d got %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvInts(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.SendInts(1, 4, []int{10, 20})
			return nil
		}
		got := r.RecvInts(0, 4)
		if len(got) != 2 || got[1] != 20 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(r *Rank) error {
		peer := 1 - r.ID()
		got := r.SendRecvF64(peer, 9, []float64{float64(r.ID())})
		if got[0] != float64(peer) {
			return fmt.Errorf("exchange got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeAdvancesOnComm(t *testing.T) {
	topo, _ := BlockTopology(2, 1) // two nodes, inter-node traffic
	fab, _ := netmodel.NewFabric(netmodel.GigE, 2)
	w, _ := NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9})
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.SendF64(1, 0, make([]float64, 1000))
		} else {
			r.RecvF64(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	send := w.Clocks()[0].Now()
	recv := w.Clocks()[1].Now()
	if send <= 0 {
		t.Fatal("sender charged no time")
	}
	// Receiver must be synchronised to at least the arrival time.
	if recv < send {
		t.Fatalf("receiver time %v < sender time %v", recv, send)
	}
	// Transfer of 8k+64 bytes over GigE must dominate the latency term.
	if send < 8064/netmodel.GigE.Inter.Bandwidth {
		t.Fatalf("sender time %v below pure transfer time", send)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	w := testWorld(t, 3, 3)
	sentinel := errors.New("boom")
	err := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			return sentinel
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 || !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			panic("kaboom")
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("got %v", err)
	}
}

func TestNewWorldValidation(t *testing.T) {
	topo, _ := BlockTopology(2, 2)
	fab, _ := netmodel.NewFabric(netmodel.Loopback, 1)
	if _, err := NewWorld(Topology{}, fab, vclock.LinearRater{}); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := NewWorld(topo, nil, vclock.LinearRater{}); err == nil {
		t.Error("nil fabric accepted")
	}
	if _, err := NewWorld(topo, fab, nil); err == nil {
		t.Error("nil rater accepted")
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.SendF64(5, 0, nil)
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("expected rank-0 panic, got %v", err)
	}
}

func TestWtimeMonotone(t *testing.T) {
	w := testWorld(t, 1, 1)
	err := w.Run(func(r *Rank) error {
		t0 := r.Wtime()
		r.ChargeCompute(1e6, 0)
		if r.Wtime() <= t0 {
			return fmt.Errorf("Wtime did not advance")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- collectives ---

func collectiveSizes() []int { return []int{1, 2, 3, 4, 5, 7, 8, 16, 33} }

func TestBarrierCompletes(t *testing.T) {
	for _, p := range collectiveSizes() {
		w := testWorld(t, p, 4)
		if err := w.Run(func(r *Rank) error {
			for i := 0; i < 3; i++ {
				r.Barrier()
			}
			return nil
		}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBcastAllSizes(t *testing.T) {
	for _, p := range collectiveSizes() {
		for root := 0; root < p; root += max(1, p/3) {
			w := testWorld(t, p, 4)
			err := w.Run(func(r *Rank) error {
				var data []float64
				if r.ID() == root {
					data = []float64{3.5, 4.5}
				}
				got := r.Bcast(root, data)
				if len(got) != 2 || got[0] != 3.5 || got[1] != 4.5 {
					return fmt.Errorf("rank %d got %v", r.ID(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range collectiveSizes() {
		w := testWorld(t, p, 4)
		err := w.Run(func(r *Rank) error {
			res := r.Reduce(0, OpSum, []float64{float64(r.ID()), 1})
			if r.ID() == 0 {
				wantSum := float64(p*(p-1)) / 2
				if res[0] != wantSum || res[1] != float64(p) {
					return fmt.Errorf("reduce got %v", res)
				}
			} else if res != nil {
				return fmt.Errorf("non-root got non-nil %v", res)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceOps(t *testing.T) {
	const p = 7
	w := testWorld(t, p, 4)
	err := w.Run(func(r *Rank) error {
		x := float64(r.ID())
		if s := r.AllreduceScalar(OpSum, x); s != 21 {
			return fmt.Errorf("sum got %v", s)
		}
		if m := r.AllreduceScalar(OpMax, x); m != 6 {
			return fmt.Errorf("max got %v", m)
		}
		if m := r.AllreduceScalar(OpMin, x); m != 0 {
			return fmt.Errorf("min got %v", m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceConsistentAcrossRanks(t *testing.T) {
	const p = 9
	w := testWorld(t, p, 2)
	results := make([]float64, p)
	err := w.Run(func(r *Rank) error {
		v := r.AllreduceScalar(OpSum, math.Sqrt(float64(r.ID()+1)))
		results[r.ID()] = v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < p; i++ {
		if results[i] != results[0] {
			t.Fatalf("rank %d got %v, rank 0 got %v", i, results[i], results[0])
		}
	}
}

func TestGather(t *testing.T) {
	const p = 5
	w := testWorld(t, p, 2)
	err := w.Run(func(r *Rank) error {
		data := make([]float64, r.ID()+1) // variable lengths
		for i := range data {
			data[i] = float64(r.ID())
		}
		got := r.Gather(2, data)
		if r.ID() != 2 {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		for src := 0; src < p; src++ {
			if len(got[src]) != src+1 || (src > 0 && got[src][0] != float64(src)) {
				return fmt.Errorf("block %d = %v", src, got[src])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6, 9} {
		w := testWorld(t, p, 4)
		err := w.Run(func(r *Rank) error {
			got := r.Allgather([]float64{float64(r.ID() * 10)})
			for src := 0; src < p; src++ {
				if len(got[src]) != 1 || got[src][0] != float64(src*10) {
					return fmt.Errorf("rank %d block %d = %v", r.ID(), src, got[src])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		w := testWorld(t, p, 4)
		err := w.Run(func(r *Rank) error {
			send := make([][]float64, p)
			for dst := range send {
				send[dst] = []float64{float64(r.ID()*100 + dst)}
			}
			got := r.Alltoall(send)
			for src := 0; src < p; src++ {
				want := float64(src*100 + r.ID())
				if len(got[src]) != 1 || got[src][0] != want {
					return fmt.Errorf("rank %d from %d: got %v want %v", r.ID(), src, got[src], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestCollectivesInterleaveWithP2P(t *testing.T) {
	const p = 4
	w := testWorld(t, p, 2)
	err := w.Run(func(r *Rank) error {
		sum := r.AllreduceScalar(OpSum, 1)
		if r.ID() == 0 {
			r.SendF64(1, 11, []float64{sum})
		}
		r.Barrier()
		if r.ID() == 1 {
			if got := r.RecvF64(0, 11); got[0] != p {
				return fmt.Errorf("got %v", got)
			}
		}
		r.Bcast(0, []float64{1})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveVirtualTimeScalesWithRanks(t *testing.T) {
	// An 8-byte allreduce should cost more virtual time on 64 ranks than on
	// 8 ranks (more tree stages), on an inter-node fabric.
	times := map[int]float64{}
	for _, p := range []int{8, 64} {
		topo, _ := BlockTopology(p, 4)
		fab, _ := netmodel.NewFabric(netmodel.GigE, topo.NNodes())
		w, _ := NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9})
		if err := w.Run(func(r *Rank) error {
			r.AllreduceScalar(OpSum, 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var maxT float64
		for _, c := range w.Clocks() {
			if c.Now() > maxT {
				maxT = c.Now()
			}
		}
		times[p] = maxT
	}
	if times[64] <= times[8] {
		t.Fatalf("allreduce on 64 ranks (%v) not slower than on 8 (%v)", times[64], times[8])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestScatter(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		w := testWorld(t, p, 4)
		err := w.Run(func(r *Rank) error {
			var send [][]float64
			if r.ID() == 0 {
				send = make([][]float64, p)
				for i := range send {
					send[i] = []float64{float64(i * 7)}
				}
			}
			got := r.Scatter(0, send)
			if len(got) != 1 || got[0] != float64(r.ID()*7) {
				return fmt.Errorf("rank %d got %v", r.ID(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestScatterCopiesRootBlock(t *testing.T) {
	w := testWorld(t, 1, 1)
	err := w.Run(func(r *Rank) error {
		send := [][]float64{{42}}
		got := r.Scatter(0, send)
		send[0][0] = 0
		if got[0] != 42 {
			return fmt.Errorf("scatter aliased root block")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanInclusivePrefix(t *testing.T) {
	for _, p := range []int{1, 2, 6} {
		w := testWorld(t, p, 4)
		err := w.Run(func(r *Rank) error {
			got := r.Scan(OpSum, []float64{float64(r.ID() + 1)})
			want := float64((r.ID() + 1) * (r.ID() + 2) / 2)
			if got[0] != want {
				return fmt.Errorf("rank %d scan = %v, want %v", r.ID(), got[0], want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestScanMax(t *testing.T) {
	const p = 5
	w := testWorld(t, p, 4)
	err := w.Run(func(r *Rank) error {
		// Values 3,1,4,1,5 -> running max 3,3,4,4,5.
		vals := []float64{3, 1, 4, 1, 5}
		wantMax := []float64{3, 3, 4, 4, 5}
		got := r.Scan(OpMax, []float64{vals[r.ID()]})
		if got[0] != wantMax[r.ID()] {
			return fmt.Errorf("rank %d max-scan = %v, want %v", r.ID(), got[0], wantMax[r.ID()])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatter(t *testing.T) {
	const p = 4
	w := testWorld(t, p, 2)
	err := w.Run(func(r *Rank) error {
		// Every rank contributes 1 to every block; rank i's block has i+1
		// elements.
		send := make([][]float64, p)
		for i := range send {
			send[i] = make([]float64, i+1)
			for j := range send[i] {
				send[i][j] = 1
			}
		}
		got := r.ReduceScatter(OpSum, send)
		if len(got) != r.ID()+1 {
			return fmt.Errorf("rank %d got %d elements, want %d", r.ID(), len(got), r.ID()+1)
		}
		for _, v := range got {
			if v != p {
				return fmt.Errorf("rank %d got %v, want %d", r.ID(), got, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Cross-validation: the virtual time charged for a point-to-point send must
// equal the fabric's analytic prediction exactly (model and runtime agree).
func TestSendChargeMatchesFabricModel(t *testing.T) {
	topo, _ := BlockTopology(4, 2) // 2 nodes
	fab, _ := netmodel.NewFabric(netmodel.IBDDR4X, 2)
	w, _ := NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9})
	const n = 1234
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.SendF64(2, 0, make([]float64, n)) // inter-node
			r.SendF64(1, 0, make([]float64, n)) // intra-node
		}
		if r.ID() == 1 || r.ID() == 2 {
			r.RecvF64(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bytes := 8*n + 64 // payload + header
	wantInter := fab.P2P(bytes, false, true, 2)
	wantIntra := fab.P2P(bytes, true, true, 2)
	got := w.Clocks()[0].Now()
	if diff := got - (wantInter + wantIntra); diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("sender charged %v, model predicts %v", got, wantInter+wantIntra)
	}
	// Receivers end exactly at their message's arrival time.
	if r1 := w.Clocks()[1].Now(); r1 != wantInter+wantIntra {
		t.Fatalf("intra receiver at %v, arrival %v", r1, wantInter+wantIntra)
	}
	if r2 := w.Clocks()[2].Now(); r2 != wantInter {
		t.Fatalf("inter receiver at %v, arrival %v", r2, wantInter)
	}
}
