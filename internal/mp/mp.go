// Package mp is the message-passing substrate that stands in for MPI.
//
// A World runs an SPMD body on NRanks ranks; each rank is a goroutine with a
// private mailbox, a virtual clock (internal/vclock) and a view of the job
// topology (which node each rank lives on, which EC2 placement group each
// node belongs to). Point-to-point sends move real data between goroutines
// and simultaneously charge virtual communication time computed by the
// platform's network fabric (internal/netmodel), so a run yields both a
// numerical result that can be verified against exact solutions and a
// per-phase virtual-time profile that stands in for the paper's wall-clock
// measurements.
//
// Collective operations (Barrier, Bcast, Reduce, Allreduce, Gather,
// Allgather, Alltoall) are implemented on top of point-to-point messages
// with binomial-tree / ring algorithms, so their virtual cost emerges from
// the same network model rather than being postulated separately.
package mp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"heterohpc/internal/netmodel"
	"heterohpc/internal/vclock"
)

// Topology describes how job ranks map onto nodes and placement groups.
type Topology struct {
	// NodeOf maps rank -> node index; its length is the rank count.
	NodeOf []int
	// GroupOfNode maps node index -> placement-group index. All-zero for
	// physical clusters; EC2 "mix" assemblies use several groups.
	GroupOfNode []int
	// ranksOnNode caches the number of job ranks per node (the NIC share).
	ranksOnNode []int
}

// BlockTopology places nranks ranks onto consecutive nodes, ranksPerNode at
// a time, all in placement group 0. This matches how PBS/SGE fill nodes and
// how the paper packed 16 ranks per cc2.8xlarge instance.
func BlockTopology(nranks, ranksPerNode int) (Topology, error) {
	if nranks < 1 {
		return Topology{}, fmt.Errorf("mp: nranks %d < 1", nranks)
	}
	if ranksPerNode < 1 {
		return Topology{}, fmt.Errorf("mp: ranksPerNode %d < 1", ranksPerNode)
	}
	nodeOf := make([]int, nranks)
	for r := range nodeOf {
		nodeOf[r] = r / ranksPerNode
	}
	nnodes := (nranks + ranksPerNode - 1) / ranksPerNode
	return NewTopology(nodeOf, make([]int, nnodes))
}

// NewTopology builds a topology from explicit rank->node and node->group
// maps, validating their consistency.
func NewTopology(nodeOf, groupOfNode []int) (Topology, error) {
	if len(nodeOf) == 0 {
		return Topology{}, fmt.Errorf("mp: empty topology")
	}
	nnodes := len(groupOfNode)
	ranksOn := make([]int, nnodes)
	for r, n := range nodeOf {
		if n < 0 || n >= nnodes {
			return Topology{}, fmt.Errorf("mp: rank %d on node %d, have %d nodes", r, n, nnodes)
		}
		ranksOn[n]++
	}
	for n, k := range ranksOn {
		if k == 0 {
			return Topology{}, fmt.Errorf("mp: node %d has no ranks", n)
		}
	}
	for n, g := range groupOfNode {
		if g < 0 {
			return Topology{}, fmt.Errorf("mp: node %d in negative group %d", n, g)
		}
	}
	return Topology{NodeOf: nodeOf, GroupOfNode: groupOfNode, ranksOnNode: ranksOn}, nil
}

// NRanks returns the number of ranks in the topology.
func (t Topology) NRanks() int { return len(t.NodeOf) }

// NNodes returns the number of nodes in the topology.
func (t Topology) NNodes() int { return len(t.GroupOfNode) }

// SameNode reports whether ranks a and b share a node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf[a] == t.NodeOf[b] }

// SameGroup reports whether ranks a and b are in the same placement group.
func (t Topology) SameGroup(a, b int) bool {
	return t.GroupOfNode[t.NodeOf[a]] == t.GroupOfNode[t.NodeOf[b]]
}

// NICShare returns the number of job ranks sharing rank r's NIC.
func (t Topology) NICShare(r int) int { return t.ranksOnNode[t.NodeOf[r]] }

// message is one in-flight payload. Payloads are defensive copies, so a
// sender may reuse its buffer immediately (MPI buffered-send semantics).
type message struct {
	src, tag int
	f64      []float64
	ints     []int
	bytes    []byte
	// arriveAt is the sender's virtual time at which the payload is fully
	// delivered; the receiver's clock advances to at least this time.
	arriveAt float64
}

// msgKey identifies a matched-receive queue.
type msgKey struct{ src, tag int }

// mailbox is an unbounded matched-receive queue with O(1) matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[msgKey][]message
	// w is the owning world; a blocked take consults its per-rank dead
	// flags so a wait on a message that can never arrive (its sender has
	// terminally exited without sending it) unwinds instead of deadlocking
	// (see fault.go).
	w *World
}

func newMailbox(w *World) *mailbox {
	mb := &mailbox{pending: make(map[msgKey][]message), w: w}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	k := msgKey{m.src, m.tag}
	mb.mu.Lock()
	mb.pending[k] = append(mb.pending[k], m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// takeAny blocks until a message with the given tag is available from any
// source and removes it. Used only for sparse communication-plan setup,
// where receivers know how many peers will contact them but not which.
// Because the sender set is unknown, starvation cannot be pinned on one
// rank; a takeAny therefore unwinds as soon as the world is poisoned. This
// is coarser than take's per-sender rule, but setup runs at virtual t≈0,
// before any plausible fault time.
func (mb *mailbox) takeAny(tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.w.down.Load() {
			panic(killedPanic{})
		}
		for k, q := range mb.pending {
			if k.tag == tag && len(q) > 0 {
				m := q[0]
				if len(q) == 1 {
					delete(mb.pending, k)
				} else {
					mb.pending[k] = q[1:]
				}
				return m
			}
		}
		mb.cond.Wait()
	}
}

// take blocks until a message with the given src and tag is available and
// removes the oldest match (messages between a fixed pair with a fixed tag
// are delivered in order).
//
// Pending messages win over death: a payload the sender put before dying is
// still delivered, so a rank's progress depends only on what its peers
// deterministically sent, never on wall-clock racing against the poison
// flag. Only when no message is queued AND the sender has terminally
// exited — it can never send again — does the wait unwind with
// killedPanic.
func (mb *mailbox) take(src, tag int) message {
	k := msgKey{src, tag}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if q := mb.pending[k]; len(q) > 0 {
			m := q[0]
			if len(q) == 1 {
				delete(mb.pending, k)
			} else {
				mb.pending[k] = q[1:]
			}
			return m
		}
		if mb.w.rankDead[src].Load() {
			panic(killedPanic{})
		}
		mb.cond.Wait()
	}
}

// World owns the ranks, clocks and fabric of one SPMD job.
type World struct {
	topo   Topology
	fabric *netmodel.Fabric
	rater  vclock.ComputeRater
	clocks []*vclock.Clock
	boxes  []*mailbox

	// shrunk marks a world consumed by Shrink; its mailboxes are revoked
	// and it must not Run again.
	shrunk bool

	// Fault-injection state (see fault.go). killAt and degrades are fixed
	// before Run; down/failure are the per-World kill switch tripped when a
	// scheduled crash is reached. rankDead[i] is set once rank i's
	// goroutine has terminally exited (fault, error or completion) and can
	// never send again; blocked receives from it unwind instead of waiting.
	killAt   []float64
	degrades []degradeWindow
	down     atomic.Bool
	failMu   sync.Mutex
	failure  Failure
	rankDead []atomic.Bool
}

// NewWorld builds a world for the given topology over the given fabric.
// Every rank gets a virtual clock driven by rater (the platform's per-core
// compute model).
func NewWorld(topo Topology, fabric *netmodel.Fabric, rater vclock.ComputeRater) (*World, error) {
	if topo.NRanks() == 0 {
		return nil, fmt.Errorf("mp: world needs a topology; use BlockTopology")
	}
	if fabric == nil {
		return nil, fmt.Errorf("mp: nil fabric")
	}
	if rater == nil {
		return nil, fmt.Errorf("mp: nil compute rater")
	}
	p := topo.NRanks()
	w := &World{
		topo:     topo,
		fabric:   fabric,
		rater:    rater,
		clocks:   make([]*vclock.Clock, p),
		boxes:    make([]*mailbox, p),
		rankDead: make([]atomic.Bool, p),
	}
	for i := 0; i < p; i++ {
		w.clocks[i] = vclock.New(rater)
		w.boxes[i] = newMailbox(w)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.topo.NRanks() }

// Topology returns the world's rank/node/group layout.
func (w *World) Topology() Topology { return w.topo }

// Clocks returns the per-rank virtual clocks (valid after Run for reports).
func (w *World) Clocks() []*vclock.Clock { return w.clocks }

// RankError wraps an error raised by one rank of an SPMD body.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }

// Unwrap returns the underlying rank error.
func (e *RankError) Unwrap() error { return e.Err }

// Run executes body on every rank concurrently and returns the first error
// (by rank order) if any rank fails or panics. Run may be called once per
// World.
func (w *World) Run(body func(r *Rank) error) error {
	if w.shrunk {
		return fmt.Errorf("mp: world was consumed by Shrink; run the survivor world instead")
	}
	p := w.Size()
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		rank := &Rank{world: w, id: i, clk: w.clocks[i]}
		go func(rk *Rank) {
			defer wg.Done()
			// Runs after the recover below: whatever way the rank exits,
			// it can never send again, so waiters on its messages must be
			// woken to observe the death instead of sleeping forever.
			defer w.markDead(rk.id)
			defer func() {
				if rec := recover(); rec != nil {
					if _, dead := rec.(killedPanic); dead {
						if f, down := w.Failure(); down {
							errs[rk.id] = fmt.Errorf("node %d failed at virtual t=%.3fs: %w",
								f.Node, f.At, ErrRankDead)
						} else {
							errs[rk.id] = fmt.Errorf("peer rank exited before sending: %w", ErrRankDead)
						}
						return
					}
					errs[rk.id] = fmt.Errorf("panic: %v", rec)
				}
			}()
			errs[rk.id] = body(rk)
		}(rank)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return &RankError{Rank: i, Err: err}
		}
	}
	return nil
}

// Rank is one SPMD process: the handle through which application code sends,
// receives and charges compute time.
type Rank struct {
	world *World
	id    int
	clk   *vclock.Clock
	// collSeq disambiguates successive collectives; all ranks execute the
	// same collective sequence, so equal sequence numbers match up.
	collSeq int
}

// ID returns the rank number in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the world.
func (r *Rank) Size() int { return r.world.Size() }

// Clock returns the rank's virtual clock.
func (r *Rank) Clock() *vclock.Clock { return r.clk }

// Topology returns the world's layout.
func (r *Rank) Topology() Topology { return r.world.topo }

// Wtime returns the rank's current virtual time (the MPI_Wtime analogue).
func (r *Rank) Wtime() float64 { return r.clk.Now() }

// ChargeCompute records local floating-point work on this rank.
func (r *Rank) ChargeCompute(flops, bytes float64) { r.clk.ChargeCompute(flops, bytes) }

// msgHeaderBytes approximates per-message protocol overhead.
const msgHeaderBytes = 64

// chargeSend advances the sender clock for a payload of n bytes to dst and
// returns the virtual arrival time at dst.
func (r *Rank) chargeSend(dst, payloadBytes int) float64 {
	w := r.world
	t := w.fabric.P2P(
		payloadBytes+msgHeaderBytes,
		w.topo.SameNode(r.id, dst),
		w.topo.SameGroup(r.id, dst),
		w.topo.NICShare(r.id),
	)
	t *= r.commFactor()
	start := r.clk.Now()
	r.clk.ChargeComm(t, payloadBytes)
	return start + t
}

// SendF64 sends a copy of data to rank dst with the given tag (tag >= 0 is
// reserved for applications; collectives use negative tags internally).
func (r *Rank) SendF64(dst, tag int, data []float64) {
	r.sendF64(dst, tag, data)
}

func (r *Rank) sendF64(dst, tag int, data []float64) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mp: send to invalid rank %d", dst))
	}
	r.checkFault()
	cp := make([]float64, len(data))
	copy(cp, data)
	at := r.chargeSend(dst, 8*len(data))
	r.world.boxes[dst].put(message{src: r.id, tag: tag, f64: cp, arriveAt: at})
}

// RecvF64 blocks until a float64 message with the given source and tag
// arrives, advances this rank's clock to the arrival time, and returns the
// payload.
func (r *Rank) RecvF64(src, tag int) []float64 {
	r.checkFault()
	m := r.world.boxes[r.id].take(src, tag)
	r.clk.AdvanceTo(m.arriveAt)
	r.checkFault()
	return m.f64
}

// SendInts sends a copy of an int slice to rank dst.
func (r *Rank) SendInts(dst, tag int, data []int) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mp: send to invalid rank %d", dst))
	}
	r.checkFault()
	cp := make([]int, len(data))
	copy(cp, data)
	at := r.chargeSend(dst, 8*len(data))
	r.world.boxes[dst].put(message{src: r.id, tag: tag, ints: cp, arriveAt: at})
}

// RecvInts blocks for an int message with the given source and tag.
func (r *Rank) RecvInts(src, tag int) []int {
	r.checkFault()
	m := r.world.boxes[r.id].take(src, tag)
	r.clk.AdvanceTo(m.arriveAt)
	r.checkFault()
	return m.ints
}

// SendBytes sends a copy of an opaque byte payload to rank dst — the
// transport of serialised checkpoint blobs between buddy ranks. The
// transfer is charged through the fabric like any other message, so
// diskless checkpoint protection shows up in virtual time.
func (r *Rank) SendBytes(dst, tag int, data []byte) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mp: send to invalid rank %d", dst))
	}
	r.checkFault()
	cp := make([]byte, len(data))
	copy(cp, data)
	at := r.chargeSend(dst, len(data))
	r.world.boxes[dst].put(message{src: r.id, tag: tag, bytes: cp, arriveAt: at})
}

// RecvBytes blocks for a byte message with the given source and tag.
func (r *Rank) RecvBytes(src, tag int) []byte {
	r.checkFault()
	m := r.world.boxes[r.id].take(src, tag)
	r.clk.AdvanceTo(m.arriveAt)
	r.checkFault()
	return m.bytes
}

// SendRecvF64 exchanges float64 slices with a peer (both sides must call
// it). Sends are buffered, so the exchange cannot deadlock.
func (r *Rank) SendRecvF64(peer, tag int, send []float64) []float64 {
	r.SendF64(peer, tag, send)
	return r.RecvF64(peer, tag)
}

// RecvAnyInts blocks for an int message with the given tag from any source
// and returns the source rank and payload.
func (r *Rank) RecvAnyInts(tag int) (src int, data []int) {
	r.checkFault()
	m := r.world.boxes[r.id].takeAny(tag)
	r.clk.AdvanceTo(m.arriveAt)
	r.checkFault()
	return m.src, m.ints
}

// RecvAnyF64 blocks for a float64 message with the given tag from any source
// and returns the source rank and payload.
func (r *Rank) RecvAnyF64(tag int) (src int, data []float64) {
	r.checkFault()
	m := r.world.boxes[r.id].takeAny(tag)
	r.clk.AdvanceTo(m.arriveAt)
	r.checkFault()
	return m.src, m.f64
}
