// Package mp is the message-passing substrate that stands in for MPI.
//
// A World runs an SPMD body on NRanks ranks; each rank is a goroutine with a
// private mailbox, a virtual clock (internal/vclock) and a view of the job
// topology (which node each rank lives on, which EC2 placement group each
// node belongs to). Point-to-point sends move real data between goroutines
// and simultaneously charge virtual communication time computed by the
// platform's network fabric (internal/netmodel), so a run yields both a
// numerical result that can be verified against exact solutions and a
// per-phase virtual-time profile that stands in for the paper's wall-clock
// measurements.
//
// Collective operations (Barrier, Bcast, Reduce, Allreduce, Gather,
// Allgather, Alltoall) are implemented on top of point-to-point messages
// with binomial-tree / ring algorithms, so their virtual cost emerges from
// the same network model rather than being postulated separately.
package mp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"heterohpc/internal/netmodel"
	"heterohpc/internal/obs"
	"heterohpc/internal/vclock"
)

// Topology describes how job ranks map onto nodes and placement groups.
type Topology struct {
	// NodeOf maps rank -> node index; its length is the rank count.
	NodeOf []int
	// GroupOfNode maps node index -> placement-group index. All-zero for
	// physical clusters; EC2 "mix" assemblies use several groups.
	GroupOfNode []int
	// ranksOnNode caches the number of job ranks per node (the NIC share).
	ranksOnNode []int
}

// BlockTopology places nranks ranks onto consecutive nodes, ranksPerNode at
// a time, all in placement group 0. This matches how PBS/SGE fill nodes and
// how the paper packed 16 ranks per cc2.8xlarge instance.
func BlockTopology(nranks, ranksPerNode int) (Topology, error) {
	if nranks < 1 {
		return Topology{}, fmt.Errorf("mp: nranks %d < 1", nranks)
	}
	if ranksPerNode < 1 {
		return Topology{}, fmt.Errorf("mp: ranksPerNode %d < 1", ranksPerNode)
	}
	nodeOf := make([]int, nranks)
	for r := range nodeOf {
		nodeOf[r] = r / ranksPerNode
	}
	nnodes := (nranks + ranksPerNode - 1) / ranksPerNode
	return NewTopology(nodeOf, make([]int, nnodes))
}

// NewTopology builds a topology from explicit rank->node and node->group
// maps, validating their consistency.
func NewTopology(nodeOf, groupOfNode []int) (Topology, error) {
	if len(nodeOf) == 0 {
		return Topology{}, fmt.Errorf("mp: empty topology")
	}
	nnodes := len(groupOfNode)
	ranksOn := make([]int, nnodes)
	for r, n := range nodeOf {
		if n < 0 || n >= nnodes {
			return Topology{}, fmt.Errorf("mp: rank %d on node %d, have %d nodes", r, n, nnodes)
		}
		ranksOn[n]++
	}
	for n, k := range ranksOn {
		if k == 0 {
			return Topology{}, fmt.Errorf("mp: node %d has no ranks", n)
		}
	}
	for n, g := range groupOfNode {
		if g < 0 {
			return Topology{}, fmt.Errorf("mp: node %d in negative group %d", n, g)
		}
	}
	return Topology{NodeOf: nodeOf, GroupOfNode: groupOfNode, ranksOnNode: ranksOn}, nil
}

// NRanks returns the number of ranks in the topology.
func (t Topology) NRanks() int { return len(t.NodeOf) }

// NNodes returns the number of nodes in the topology.
func (t Topology) NNodes() int { return len(t.GroupOfNode) }

// SameNode reports whether ranks a and b share a node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf[a] == t.NodeOf[b] }

// SameGroup reports whether ranks a and b are in the same placement group.
func (t Topology) SameGroup(a, b int) bool {
	return t.GroupOfNode[t.NodeOf[a]] == t.GroupOfNode[t.NodeOf[b]]
}

// NICShare returns the number of job ranks sharing rank r's NIC.
func (t Topology) NICShare(r int) int { return t.ranksOnNode[t.NodeOf[r]] }

// message is one in-flight payload. Payloads are private to the message —
// either defensive copies or freshly packed pool buffers — so a sender may
// reuse its buffer immediately (MPI buffered-send semantics).
type message struct {
	src, tag int
	f64      []float64
	ints     []int
	bytes    []byte
	// arriveAt is the sender's virtual time at which the payload is fully
	// delivered; the receiver's clock advances to at least this time.
	arriveAt float64
}

// msgKey identifies a matched-receive queue.
type msgKey struct{ src, tag int }

// msgQueue is a FIFO of messages that recycles its backing array: popping
// the last element rewinds the queue in place, so a queue that drains every
// iteration (the steady-state pattern) never reallocates.
type msgQueue struct {
	buf  []message
	head int
}

func (q *msgQueue) push(m message) {
	if cap(q.buf) == 0 {
		// Most queues hold a handful of messages; skip the 1→2→4 append
		// growth so a queue's backing array is a single allocation.
		q.buf = make([]message, 0, 4)
	}
	q.buf = append(q.buf, m)
}

func (q *msgQueue) empty() bool { return q.head == len(q.buf) }

func (q *msgQueue) len() int { return len(q.buf) - q.head }

func (q *msgQueue) pop() message {
	m := q.buf[q.head]
	q.buf[q.head] = message{} // drop payload references
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m
}

// popTag removes and returns the oldest message with the given tag,
// preserving the order of the rest. Messages of one tag are delivered in
// send order; the scan only walks past head when collectives with distinct
// tags are simultaneously in flight.
func (q *msgQueue) popTag(tag int) (message, bool) {
	for i := q.head; i < len(q.buf); i++ {
		if q.buf[i].tag == tag {
			m := q.buf[i]
			copy(q.buf[i:], q.buf[i+1:])
			q.buf[len(q.buf)-1] = message{}
			q.buf = q.buf[:len(q.buf)-1]
			if q.head == len(q.buf) {
				q.buf = q.buf[:0]
				q.head = 0
			}
			return m, true
		}
	}
	return message{}, false
}

// mailbox is an unbounded matched-receive queue with O(1) matching for both
// directed receives (per-(src,tag) queues) and any-source receives (per-tag
// arrival FIFOs).
//
// Only the owning rank's goroutine ever blocks on cond (sends and the
// revoke/markDead paths never wait), so put can wake it with a single
// Signal instead of a Broadcast.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	// pending holds directed application traffic (tag >= 0). Queues stay
	// resident when drained — the same (src,tag) pairs recur every
	// iteration.
	pending map[msgKey]*msgQueue
	// coll holds collective traffic (tag < 0), one FIFO per source rank,
	// allocated on first use. Collective tags are unique per collective;
	// keying them into the pending map would churn its buckets with
	// insert/delete on every operation, so they are matched by a scan of
	// the (nearly always length-≤1) per-source FIFO instead.
	coll []msgQueue
	// anyQ holds any-source traffic for tags registered by takeAny, in
	// arrival order. A tag is registered on its first takeAny and stays
	// registered; any-source tags must never be used with directed take
	// on the same rank (enforced in take).
	anyQ  map[int]*msgQueue
	freeQ []*msgQueue
	// qArena block-allocates queue structs: setup traffic touches one
	// queue per (src,tag) pair, and carving them 32 at a time keeps that
	// from dominating the allocation count.
	qArena []msgQueue
	// w is the owning world; a blocked take consults its per-rank dead
	// flags so a wait on a message that can never arrive (its sender has
	// terminally exited without sending it) unwinds instead of deadlocking
	// (see fault.go).
	w *World
}

func newMailbox(w *World) *mailbox {
	mb := &mailbox{
		pending: make(map[msgKey]*msgQueue),
		anyQ:    make(map[int]*msgQueue),
		w:       w,
	}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// getQueue and putQueue recycle queue structs (and their backing arrays)
// drained by collective receives. Both run under mb.mu.
func (mb *mailbox) getQueue() *msgQueue {
	if k := len(mb.freeQ); k > 0 {
		q := mb.freeQ[k-1]
		mb.freeQ[k-1] = nil
		mb.freeQ = mb.freeQ[:k-1]
		return q
	}
	if len(mb.qArena) == 0 {
		mb.qArena = make([]msgQueue, 32)
	}
	q := &mb.qArena[0]
	mb.qArena = mb.qArena[1:]
	return q
}

func (mb *mailbox) putQueue(q *msgQueue) {
	if len(mb.freeQ) < 64 {
		mb.freeQ = append(mb.freeQ, q)
	}
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	if m.tag < 0 {
		if mb.coll == nil {
			mb.coll = make([]msgQueue, len(mb.w.boxes))
		}
		mb.coll[m.src].push(m)
		mb.mu.Unlock()
		mb.cond.Signal()
		return
	}
	if q, ok := mb.anyQ[m.tag]; ok {
		q.push(m)
		mb.mu.Unlock()
		mb.cond.Signal()
		return
	}
	k := msgKey{m.src, m.tag}
	q := mb.pending[k]
	if q == nil {
		q = mb.getQueue()
		mb.pending[k] = q
	}
	q.push(m)
	mb.mu.Unlock()
	mb.cond.Signal()
}

// registerAny routes tag to a dedicated arrival FIFO, migrating messages
// that arrived before the first takeAny. The pre-registration backlog is
// drained in ascending source order — a deterministic serialisation of
// arrivals the directed queues cannot order between sources. Runs under
// mb.mu.
func (mb *mailbox) registerAny(tag int) *msgQueue {
	q := mb.getQueue()
	mb.anyQ[tag] = q
	var keys []msgKey
	for k := range mb.pending {
		if k.tag == tag {
			keys = append(keys, k)
		}
	}
	// Insertion sort by source: the backlog spans at most a rank's
	// neighbour set, and sort.Slice's reflection closures would charge
	// two allocations per registration.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j].src < keys[j-1].src; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		pq := mb.pending[k]
		for !pq.empty() {
			q.push(pq.pop())
		}
		delete(mb.pending, k)
		mb.putQueue(pq)
	}
	return q
}

// takeAny blocks until a message with the given tag is available from any
// source and removes the oldest arrival. Used only for sparse
// communication-plan setup, where receivers know how many peers will
// contact them but not which. Because the sender set is unknown, starvation
// cannot be pinned on one rank; a takeAny therefore unwinds as soon as the
// world is poisoned. This is coarser than take's per-sender rule, but setup
// runs at virtual t≈0, before any plausible fault time.
func (mb *mailbox) takeAny(tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	q := mb.anyQ[tag]
	if q == nil {
		q = mb.registerAny(tag)
	}
	for {
		if mb.w.down.Load() {
			panic(killedPanic{})
		}
		if !q.empty() {
			return q.pop()
		}
		mb.cond.Wait()
	}
}

// take blocks until a message with the given src and tag is available and
// removes the oldest match (messages between a fixed pair with a fixed tag
// are delivered in order).
//
// Pending messages win over death: a payload the sender put before dying is
// still delivered, so a rank's progress depends only on what its peers
// deterministically sent, never on wall-clock racing against the poison
// flag. Only when no message is queued AND the sender has terminally
// exited — it can never send again — does the wait unwind with
// killedPanic.
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if tag < 0 {
		for {
			if mb.coll != nil {
				if m, ok := mb.coll[src].popTag(tag); ok {
					return m
				}
			}
			if mb.w.rankDead[src].Load() {
				panic(killedPanic{})
			}
			mb.cond.Wait()
		}
	}
	k := msgKey{src, tag}
	for {
		if q := mb.pending[k]; q != nil && !q.empty() {
			return q.pop()
		}
		if mb.w.rankDead[src].Load() {
			panic(killedPanic{})
		}
		// About to block: a tag registered for any-source receives will
		// never surface here — fail loudly instead of deadlocking.
		if _, bad := mb.anyQ[tag]; bad {
			panic(fmt.Sprintf("mp: directed receive on any-source tag %d", tag))
		}
		mb.cond.Wait()
	}
}

// World owns the ranks, clocks and fabric of one SPMD job.
type World struct {
	topo   Topology
	fabric *netmodel.Fabric
	rater  vclock.ComputeRater
	clocks []*vclock.Clock
	boxes  []*mailbox
	// pool recycles f64 message payloads (see pool.go). It is held by
	// pointer so Grow can transfer ownership of the warm free lists to the
	// grown world along with the mailboxes.
	pool *f64Pool

	// obsRun/recs are the attached observability sink and its per-rank
	// recorders (nil when the world is unobserved; see Observe).
	obsRun *obs.Run
	recs   []*obs.Recorder

	// shrunk marks a world consumed by Shrink or Grow; it must not Run
	// again (Shrink revokes its mailboxes, Grow transplants them).
	shrunk bool

	// Fault-injection state (see fault.go). killAt and degrades are fixed
	// before Run; down/failure are the per-World kill switch tripped when a
	// scheduled crash is reached. rankDead[i] is set once rank i's
	// goroutine has terminally exited (fault, error or completion) and can
	// never send again; blocked receives from it unwind instead of waiting.
	killAt   []float64
	degrades []degradeWindow
	down     atomic.Bool
	failMu   sync.Mutex
	failure  Failure
	rankDead []atomic.Bool
}

// NewWorld builds a world for the given topology over the given fabric.
// Every rank gets a virtual clock driven by rater (the platform's per-core
// compute model).
func NewWorld(topo Topology, fabric *netmodel.Fabric, rater vclock.ComputeRater) (*World, error) {
	if topo.NRanks() == 0 {
		return nil, fmt.Errorf("mp: world needs a topology; use BlockTopology")
	}
	if fabric == nil {
		return nil, fmt.Errorf("mp: nil fabric")
	}
	if rater == nil {
		return nil, fmt.Errorf("mp: nil compute rater")
	}
	p := topo.NRanks()
	w := &World{
		topo:     topo,
		fabric:   fabric,
		rater:    rater,
		clocks:   make([]*vclock.Clock, p),
		boxes:    make([]*mailbox, p),
		pool:     &f64Pool{},
		rankDead: make([]atomic.Bool, p),
	}
	for i := 0; i < p; i++ {
		w.clocks[i] = vclock.New(rater)
		w.boxes[i] = newMailbox(w)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.topo.NRanks() }

// Topology returns the world's rank/node/group layout.
func (w *World) Topology() Topology { return w.topo }

// Clocks returns the per-rank virtual clocks (valid after Run for reports).
func (w *World) Clocks() []*vclock.Clock { return w.clocks }

// Observe attaches an observability sink to the world: every rank gets an
// event recorder bound to its virtual clock, phase transitions are mirrored
// into the journal, and the payload pool starts counting its traffic. Must
// be called before Run; a nil run leaves the world unobserved (the default,
// which costs nothing on the message hot paths).
func (w *World) Observe(run *obs.Run) {
	if run == nil {
		return
	}
	w.obsRun = run
	w.pool.counting = true
	w.recs = make([]*obs.Recorder, len(w.clocks))
	for i, clk := range w.clocks {
		rec := run.NewRecorder(i, clk)
		w.recs[i] = rec
		clk.SetPhaseListener(func(t float64, _, to vclock.Phase) {
			rec.Phase(t, to.String())
		})
	}
}

// FlushObs emits the world-level end-of-run observations (payload-pool
// traffic) to the run's global recorder, stamped at the world's final
// virtual time. Call once after Run has returned; a no-op when the world is
// unobserved.
func (w *World) FlushObs() {
	if w.obsRun == nil {
		return
	}
	gets, puts := w.pool.gets.Load(), w.pool.puts.Load()
	if gets+puts > 0 {
		w.obsRun.Global().PoolStats(w.MaxVirtualTime(), gets, puts)
	}
}

// RankError wraps an error raised by one rank of an SPMD body.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }

// Unwrap returns the underlying rank error.
func (e *RankError) Unwrap() error { return e.Err }

// Run executes body on every rank concurrently and returns the first error
// (by rank order) if any rank fails or panics. Run may be called once per
// World.
func (w *World) Run(body func(r *Rank) error) error {
	if w.shrunk {
		return fmt.Errorf("mp: world was consumed by Shrink or Grow; run the re-formed world instead")
	}
	p := w.Size()
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		rank := &Rank{world: w, id: i, clk: w.clocks[i]}
		if w.recs != nil {
			rank.rec = w.recs[i]
		}
		go func(rk *Rank) {
			defer wg.Done()
			// Runs after the recover below: whatever way the rank exits,
			// it can never send again, so waiters on its messages must be
			// woken to observe the death instead of sleeping forever.
			defer w.markDead(rk.id)
			defer func() {
				if rec := recover(); rec != nil {
					if _, dead := rec.(killedPanic); dead {
						if f, down := w.Failure(); down {
							errs[rk.id] = fmt.Errorf("node %d failed at virtual t=%.3fs: %w",
								f.Node, f.At, ErrRankDead)
						} else {
							errs[rk.id] = fmt.Errorf("peer rank exited before sending: %w", ErrRankDead)
						}
						return
					}
					errs[rk.id] = fmt.Errorf("panic: %v", rec)
				}
			}()
			errs[rk.id] = body(rk)
		}(rank)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return &RankError{Rank: i, Err: err}
		}
	}
	return nil
}

// Rank is one SPMD process: the handle through which application code sends,
// receives and charges compute time.
type Rank struct {
	world *World
	id    int
	clk   *vclock.Clock
	// rec is the rank's event recorder (nil unless the world is observed;
	// all its methods are nil-safe no-ops).
	rec *obs.Recorder
	// collSeq disambiguates successive collectives; all ranks execute the
	// same collective sequence, so equal sequence numbers match up.
	collSeq int
}

// ID returns the rank number in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the world.
func (r *Rank) Size() int { return r.world.Size() }

// Clock returns the rank's virtual clock.
func (r *Rank) Clock() *vclock.Clock { return r.clk }

// Topology returns the world's layout.
func (r *Rank) Topology() Topology { return r.world.topo }

// Wtime returns the rank's current virtual time (the MPI_Wtime analogue).
func (r *Rank) Wtime() float64 { return r.clk.Now() }

// Obs returns the rank's event recorder, nil when the world is unobserved.
// Application code passes it to instrumented kernels; every method on the
// nil recorder is a free no-op.
func (r *Rank) Obs() *obs.Recorder { return r.rec }

// noteRecv advances the receiver's clock to the message's arrival time and,
// when observed, records the message's virtual mailbox-residency interval
// (from its arrival to the moment this rank consumed it).
func (r *Rank) noteRecv(m *message) {
	r.clk.AdvanceTo(m.arriveAt)
	if r.rec != nil {
		r.rec.QueueInterval(m.arriveAt, r.clk.Now())
	}
}

// ChargeCompute records local floating-point work on this rank.
func (r *Rank) ChargeCompute(flops, bytes float64) { r.clk.ChargeCompute(flops, bytes) }

// msgHeaderBytes approximates per-message protocol overhead.
const msgHeaderBytes = 64

// chargeSend advances the sender clock for a payload of n bytes to dst and
// returns the virtual arrival time at dst.
func (r *Rank) chargeSend(dst, payloadBytes int) float64 {
	w := r.world
	t := w.fabric.P2P(
		payloadBytes+msgHeaderBytes,
		w.topo.SameNode(r.id, dst),
		w.topo.SameGroup(r.id, dst),
		w.topo.NICShare(r.id),
	)
	t *= r.commFactor()
	start := r.clk.Now()
	r.clk.ChargeComm(t, payloadBytes)
	r.rec.CountMsg(payloadBytes)
	return start + t
}

// SendF64 sends a copy of data to rank dst with the given tag (tag >= 0 is
// reserved for applications; collectives use negative tags internally).
func (r *Rank) SendF64(dst, tag int, data []float64) {
	r.sendF64(dst, tag, data)
}

func (r *Rank) sendF64(dst, tag int, data []float64) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mp: send to invalid rank %d", dst))
	}
	r.checkFault()
	var cp []float64
	if len(data) > 0 {
		cp = r.world.pool.get(len(data))
		copy(cp, data)
	}
	at := r.chargeSend(dst, 8*len(data))
	r.world.boxes[dst].put(message{src: r.id, tag: tag, f64: cp, arriveAt: at})
}

// SendF64Gather packs x[idx[0]], x[idx[1]], … into a pooled buffer and
// sends it to rank dst — the importer's pack-and-send step without the
// per-call staging allocation. The wire size and virtual charges are
// identical to packing into a scratch slice and calling SendF64.
func (r *Rank) SendF64Gather(dst, tag int, x []float64, idx []int) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mp: send to invalid rank %d", dst))
	}
	r.checkFault()
	var cp []float64
	if len(idx) > 0 {
		cp = r.world.pool.get(len(idx))
		for j, l := range idx {
			cp[j] = x[l]
		}
	}
	at := r.chargeSend(dst, 8*len(idx))
	r.world.boxes[dst].put(message{src: r.id, tag: tag, f64: cp, arriveAt: at})
}

// RecvF64 blocks until a float64 message with the given source and tag
// arrives, advances this rank's clock to the arrival time, and returns the
// payload. Ownership of the returned slice transfers to the caller; use
// RecvF64Into or the scatter variants on hot paths so the buffer returns
// to the world's pool instead.
func (r *Rank) RecvF64(src, tag int) []float64 {
	r.checkFault()
	m := r.world.boxes[r.id].take(src, tag)
	r.noteRecv(&m)
	r.checkFault()
	return m.f64
}

// RecvF64Into receives like RecvF64 but copies the payload into dst and
// recycles the transport buffer, keeping the steady state allocation-free.
// dst must have room for the payload; the payload length is returned.
func (r *Rank) RecvF64Into(src, tag int, dst []float64) int {
	r.checkFault()
	m := r.world.boxes[r.id].take(src, tag)
	r.noteRecv(&m)
	r.checkFault()
	if len(dst) < len(m.f64) {
		panic(fmt.Sprintf("mp: RecvF64Into buffer len %d < payload %d", len(dst), len(m.f64)))
	}
	n := copy(dst, m.f64)
	r.world.pool.put(m.f64)
	return n
}

// RecvF64Scatter receives like RecvF64 but scatters payload element j into
// x[pos[j]] and recycles the transport buffer — the importer's
// receive-and-unpack step without surfacing the wire buffer. The payload
// must have exactly len(pos) elements.
func (r *Rank) RecvF64Scatter(src, tag int, x []float64, pos []int) {
	r.checkFault()
	m := r.world.boxes[r.id].take(src, tag)
	r.noteRecv(&m)
	r.checkFault()
	if len(m.f64) != len(pos) {
		panic(fmt.Sprintf("mp: RecvF64Scatter payload %d != positions %d", len(m.f64), len(pos)))
	}
	for j, l := range pos {
		x[l] = m.f64[j]
	}
	r.world.pool.put(m.f64)
}

// RecvF64AddScatter is RecvF64Scatter with accumulation: x[pos[j]] +=
// payload[j], the exporter's sum-into-owner step.
func (r *Rank) RecvF64AddScatter(src, tag int, x []float64, pos []int) {
	r.checkFault()
	m := r.world.boxes[r.id].take(src, tag)
	r.noteRecv(&m)
	r.checkFault()
	if len(m.f64) != len(pos) {
		panic(fmt.Sprintf("mp: RecvF64AddScatter payload %d != positions %d", len(m.f64), len(pos)))
	}
	for j, l := range pos {
		x[l] += m.f64[j]
	}
	r.world.pool.put(m.f64)
}

// SendInts sends a copy of an int slice to rank dst.
func (r *Rank) SendInts(dst, tag int, data []int) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mp: send to invalid rank %d", dst))
	}
	r.checkFault()
	cp := make([]int, len(data))
	copy(cp, data)
	at := r.chargeSend(dst, 8*len(data))
	r.world.boxes[dst].put(message{src: r.id, tag: tag, ints: cp, arriveAt: at})
}

// RecvInts blocks for an int message with the given source and tag.
func (r *Rank) RecvInts(src, tag int) []int {
	r.checkFault()
	m := r.world.boxes[r.id].take(src, tag)
	r.noteRecv(&m)
	r.checkFault()
	return m.ints
}

// SendBytes sends a copy of an opaque byte payload to rank dst — the
// transport of serialised checkpoint blobs between buddy ranks. The
// transfer is charged through the fabric like any other message, so
// diskless checkpoint protection shows up in virtual time.
func (r *Rank) SendBytes(dst, tag int, data []byte) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mp: send to invalid rank %d", dst))
	}
	r.checkFault()
	cp := make([]byte, len(data))
	copy(cp, data)
	at := r.chargeSend(dst, len(data))
	r.world.boxes[dst].put(message{src: r.id, tag: tag, bytes: cp, arriveAt: at})
}

// RecvBytes blocks for a byte message with the given source and tag.
func (r *Rank) RecvBytes(src, tag int) []byte {
	r.checkFault()
	m := r.world.boxes[r.id].take(src, tag)
	r.noteRecv(&m)
	r.checkFault()
	return m.bytes
}

// SendRecvF64 exchanges float64 slices with a peer (both sides must call
// it). Sends are buffered, so the exchange cannot deadlock.
func (r *Rank) SendRecvF64(peer, tag int, send []float64) []float64 {
	r.SendF64(peer, tag, send)
	return r.RecvF64(peer, tag)
}

// RecvAnyInts blocks for an int message with the given tag from any source
// and returns the source rank and payload.
func (r *Rank) RecvAnyInts(tag int) (src int, data []int) {
	r.checkFault()
	m := r.world.boxes[r.id].takeAny(tag)
	r.noteRecv(&m)
	r.checkFault()
	return m.src, m.ints
}

// RecvAnyF64 blocks for a float64 message with the given tag from any source
// and returns the source rank and payload.
func (r *Rank) RecvAnyF64(tag int) (src int, data []float64) {
	r.checkFault()
	m := r.world.boxes[r.id].takeAny(tag)
	r.noteRecv(&m)
	r.checkFault()
	return m.src, m.f64
}
