// Fault injection hooks of the message-passing substrate.
//
// The paper's central experience is that heterogeneous targets fail in
// platform-specific ways — EC2 spot assemblies lose instances to the market
// mid-run, clusters lose nodes to hardware. A World therefore carries an
// optional per-node failure schedule expressed in *virtual* time: when any
// rank's clock reaches the scheduled crash time of its node, the whole
// world is poisoned (fail-stop semantics, like MPI's default error
// handler), every blocked receive is woken, and every subsequent send,
// receive or collective on every rank returns a typed ErrRankDead through
// World.Run instead of deadlocking. Because the trigger is virtual time —
// which advances deterministically per rank — equal seeds produce equal
// failures.
package mp

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// ErrRankDead is the typed error every rank of a poisoned world observes:
// a node of the job failed (crash or spot preemption) and its ranks are
// gone. Match with errors.Is.
var ErrRankDead = errors.New("mp: rank dead (node failed)")

// Failure records the injected failure that poisoned a world.
type Failure struct {
	// Node is the failed node's index in the topology.
	Node int
	// At is the scheduled virtual failure time (seconds).
	At float64
}

// killedPanic is the internal unwind signal of a poisoned world; World.Run
// converts it into ErrRankDead.
type killedPanic struct{}

// degradeWindow is a transient link-degradation / straggler interval: all
// communication charged by ranks on node is factor× slower during
// [from, until) of their virtual time.
type degradeWindow struct {
	node        int
	from, until float64
	factor      float64
}

// ScheduleNodeCrash schedules node to fail once any of its ranks' virtual
// clocks reaches at seconds. Must be called before Run. Scheduling several
// crashes is allowed; the first one reached poisons the world (arm events
// one at a time for a fully deterministic failure order).
func (w *World) ScheduleNodeCrash(node int, at float64) error {
	if node < 0 || node >= w.topo.NNodes() {
		return fmt.Errorf("mp: crash on node %d of %d", node, w.topo.NNodes())
	}
	if at < 0 || math.IsNaN(at) {
		return fmt.Errorf("mp: crash at invalid virtual time %v", at)
	}
	if w.killAt == nil {
		w.killAt = make([]float64, w.topo.NNodes())
		for i := range w.killAt {
			w.killAt[i] = math.Inf(1)
		}
	}
	if at < w.killAt[node] {
		w.killAt[node] = at
	}
	return nil
}

// ScheduleDegrade makes communication charged by ranks on node factor×
// slower while their virtual clocks are in [from, until) — a transient
// link degradation or straggler node. Must be called before Run.
func (w *World) ScheduleDegrade(node int, from, until, factor float64) error {
	if node < 0 || node >= w.topo.NNodes() {
		return fmt.Errorf("mp: degrade on node %d of %d", node, w.topo.NNodes())
	}
	if !(until > from) || factor <= 0 {
		return fmt.Errorf("mp: degrade window [%v,%v) factor %v", from, until, factor)
	}
	w.degrades = append(w.degrades, degradeWindow{node: node, from: from, until: until, factor: factor})
	return nil
}

// Failure returns the injected failure that poisoned the world, if any.
func (w *World) Failure() (Failure, bool) {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failure, w.down.Load()
}

// MaxVirtualTime returns the largest per-rank virtual time — after an
// aborted run, the fleet time burned before the failure stopped it.
func (w *World) MaxVirtualTime() float64 {
	var max float64
	for _, c := range w.clocks {
		if t := c.Now(); t > max {
			max = t
		}
	}
	return max
}

// trip poisons the world: it records the failure, wakes every blocked
// receiver, and unwinds the calling rank. Idempotent beyond the first call.
func (w *World) trip(node int, at float64) {
	w.failMu.Lock()
	if !w.down.Load() {
		w.failure = Failure{Node: node, At: at}
		w.down.Store(true)
		// Wake every blocked mailbox wait so no rank stays parked on a
		// message that will never arrive. Taking each mailbox lock pairs
		// with the down-check waiters perform under the same lock, so a
		// waiter either sees down before sleeping or receives this wakeup.
		for _, mb := range w.boxes {
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		}
	}
	w.failMu.Unlock()
	panic(killedPanic{})
}

// checkFault is called on every send and receive path: it fires this
// rank's own node crash when the virtual clock has reached it, and unwinds
// immediately when any other rank already poisoned the world.
func (r *Rank) checkFault() {
	w := r.world
	if w.killAt != nil {
		node := w.topo.NodeOf[r.id]
		if at := w.killAt[node]; r.clk.Now() >= at {
			w.trip(node, at)
		}
	}
	if w.down.Load() {
		panic(killedPanic{})
	}
}

// commFactor returns the degradation multiplier in effect for rank r at
// its current virtual time (1 when none).
func (r *Rank) commFactor() float64 {
	w := r.world
	if len(w.degrades) == 0 {
		return 1
	}
	node := w.topo.NodeOf[r.id]
	now := r.clk.Now()
	f := 1.0
	for _, d := range w.degrades {
		if d.node == node && now >= d.from && now < d.until {
			f *= d.factor
		}
	}
	return f
}

// deadFlag exposes the world's poison flag to mailboxes.
func (w *World) deadFlag() *atomic.Bool { return &w.down }
