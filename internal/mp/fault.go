// Fault injection hooks of the message-passing substrate.
//
// The paper's central experience is that heterogeneous targets fail in
// platform-specific ways — EC2 spot assemblies lose instances to the market
// mid-run, clusters lose nodes to hardware. A World therefore carries an
// optional per-node failure schedule expressed in *virtual* time, with
// fail-stop semantics (like MPI's default error handler) delivered as a
// typed ErrRankDead through World.Run instead of a deadlock.
//
// Death is deterministic per rank, never a wall-clock race:
//
//   - A rank on the failed node dies at the first communication call where
//     its own virtual clock has reached the scheduled kill time — a fixed
//     point in its deterministic program.
//   - Every other rank keeps running on the messages its peers
//     deterministically sent before dying, and dies exactly at its first
//     receive that can never be satisfied (the sender terminally exited
//     without sending). Messages queued before a death are still
//     delivered.
//
// The set of operations each rank completes before dying — and therefore
// the set of checkpoints it saved — is thus a function of the program and
// the fault schedule alone, so equal seeds produce equal failures AND
// equal recovery states, which the checkpoint-restart supervisor relies
// on.
package mp

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDead is the typed error every rank of a poisoned world observes:
// a node of the job failed (crash or spot preemption) and its ranks are
// gone. Match with errors.Is.
var ErrRankDead = errors.New("mp: rank dead (node failed)")

// Failure records the injected failure that poisoned a world.
type Failure struct {
	// Node is the failed node's index in the topology.
	Node int
	// At is the scheduled virtual failure time (seconds).
	At float64
}

// killedPanic is the internal unwind signal of a poisoned world; World.Run
// converts it into ErrRankDead.
type killedPanic struct{}

// degradeWindow is a transient link-degradation / straggler interval: all
// communication charged by ranks on node is factor× slower during
// [from, until) of their virtual time.
type degradeWindow struct {
	node        int
	from, until float64
	factor      float64
}

// ScheduleNodeCrash schedules node to fail once any of its ranks' virtual
// clocks reaches at seconds. Must be called before Run. Scheduling several
// crashes is allowed; the first one reached poisons the world (arm events
// one at a time for a fully deterministic failure order).
func (w *World) ScheduleNodeCrash(node int, at float64) error {
	if node < 0 || node >= w.topo.NNodes() {
		return fmt.Errorf("mp: crash on node %d of %d", node, w.topo.NNodes())
	}
	if at < 0 || math.IsNaN(at) {
		return fmt.Errorf("mp: crash at invalid virtual time %v", at)
	}
	if w.killAt == nil {
		w.killAt = make([]float64, w.topo.NNodes())
		for i := range w.killAt {
			w.killAt[i] = math.Inf(1)
		}
	}
	if at < w.killAt[node] {
		w.killAt[node] = at
	}
	return nil
}

// ScheduleDegrade makes communication charged by ranks on node factor×
// slower while their virtual clocks are in [from, until) — a transient
// link degradation or straggler node. Must be called before Run.
func (w *World) ScheduleDegrade(node int, from, until, factor float64) error {
	if node < 0 || node >= w.topo.NNodes() {
		return fmt.Errorf("mp: degrade on node %d of %d", node, w.topo.NNodes())
	}
	if !(until > from) || factor <= 0 {
		return fmt.Errorf("mp: degrade window [%v,%v) factor %v", from, until, factor)
	}
	w.degrades = append(w.degrades, degradeWindow{node: node, from: from, until: until, factor: factor})
	return nil
}

// Failure returns the injected failure that poisoned the world, if any.
func (w *World) Failure() (Failure, bool) {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failure, w.down.Load()
}

// MaxVirtualTime returns the largest per-rank virtual time — after an
// aborted run, the fleet time burned before the failure stopped it.
func (w *World) MaxVirtualTime() float64 {
	var max float64
	for _, c := range w.clocks {
		if t := c.Now(); t > max {
			max = t
		}
	}
	return max
}

// trip poisons the world — it records the failure and unwinds the calling
// rank. Idempotent beyond the first call. Waking the ranks blocked on the
// dying rank's messages happens in markDead, once the unwind completes and
// the rank truly can never send again.
func (w *World) trip(node int, at float64) {
	w.failMu.Lock()
	if !w.down.Load() {
		w.failure = Failure{Node: node, At: at}
		w.down.Store(true)
	}
	w.failMu.Unlock()
	panic(killedPanic{})
}

// markDead records that rank id has terminally exited and wakes every
// blocked mailbox wait so receivers parked on its messages re-check.
// Taking each mailbox lock pairs with the dead-check waiters perform under
// the same lock, so a waiter either sees the flag before sleeping or
// receives this wakeup.
func (w *World) markDead(id int) {
	w.rankDead[id].Store(true)
	for _, mb := range w.boxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// checkFault is called on every send and receive path: it fires this
// rank's own node crash when the rank's virtual clock has reached it.
// Deaths of other ranks are observed only through unsatisfiable receives
// (mailbox.take), never through a global flag, so each rank's progress at
// death is deterministic rather than a wall-clock race.
func (r *Rank) checkFault() {
	w := r.world
	if w.killAt != nil {
		node := w.topo.NodeOf[r.id]
		if at := w.killAt[node]; r.clk.Now() >= at {
			w.trip(node, at)
		}
	}
}

// commFactor returns the degradation multiplier in effect for rank r at
// its current virtual time (1 when none).
func (r *Rank) commFactor() float64 {
	w := r.world
	if len(w.degrades) == 0 {
		return 1
	}
	node := w.topo.NodeOf[r.id]
	now := r.clk.Now()
	f := 1.0
	for _, d := range w.degrades {
		if d.node == node && now >= d.from && now < d.until {
			f *= d.factor
		}
	}
	return f
}
