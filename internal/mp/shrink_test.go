package mp

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// crashWorld runs a charge/allreduce loop on a faultWorld until the
// scheduled crash poisons it, and returns the poisoned world.
func crashWorld(t *testing.T, nranks, perNode, node int, at float64) *World {
	t.Helper()
	w := faultWorld(t, nranks, perNode)
	if err := w.ScheduleNodeCrash(node, at); err != nil {
		t.Fatal(err)
	}
	err := runWithDeadline(t, w, 30*time.Second, func(r *Rank) error {
		for i := 0; i < 1000; i++ {
			r.ChargeCompute(1e6, 0)
			r.AllreduceScalar(OpSum, 1)
		}
		return nil
	})
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("crash did not poison the world: %v", err)
	}
	return w
}

func TestShrinkDropsDeadNodeAndRenumbers(t *testing.T) {
	w := crashWorld(t, 8, 2, 1, 0.005) // kills ranks 2,3
	sr, err := w.Shrink()
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.World.Size(); got != 6 {
		t.Fatalf("survivor world has %d ranks, want 6", got)
	}
	if sr.DeadNode != 1 {
		t.Fatalf("dead node %d, want 1", sr.DeadNode)
	}
	wantDead := []int{2, 3}
	if len(sr.DeadRanks) != 2 || sr.DeadRanks[0] != wantDead[0] || sr.DeadRanks[1] != wantDead[1] {
		t.Fatalf("dead ranks %v, want %v", sr.DeadRanks, wantDead)
	}
	wantO2N := []int{0, 1, -1, -1, 2, 3, 4, 5}
	for old, want := range wantO2N {
		if sr.OldToNew[old] != want {
			t.Fatalf("OldToNew[%d] = %d, want %d", old, sr.OldToNew[old], want)
		}
	}
	for newR, oldR := range sr.NewToOld {
		if sr.OldToNew[oldR] != newR {
			t.Fatalf("NewToOld not the inverse at new rank %d", newR)
		}
	}
	// Node renumbering is order-preserving and skips the dead node.
	wantNode := []int{0, -1, 1, 2}
	for old, want := range wantNode {
		if sr.OldToNewNode[old] != want {
			t.Fatalf("OldToNewNode[%d] = %d, want %d", old, sr.OldToNewNode[old], want)
		}
	}
	// Survivor clocks carry the pre-shrink virtual times.
	for newR, oldR := range sr.NewToOld {
		if got, want := sr.World.Clocks()[newR].Now(), w.Clocks()[oldR].Now(); got != want {
			t.Fatalf("new rank %d clock %v, want carried %v", newR, got, want)
		}
		if w.Clocks()[oldR].Now() <= 0 {
			t.Fatalf("old rank %d clock never advanced", oldR)
		}
	}
	// The consumed world cannot run again; the survivor world can.
	if err := w.Run(func(r *Rank) error { return nil }); err == nil {
		t.Fatal("shrunk world accepted Run")
	}
	if _, err := w.Shrink(); err == nil {
		t.Fatal("double Shrink accepted")
	}
}

func TestShrinkRevokesPendingTraffic(t *testing.T) {
	w := faultWorld(t, 4, 1)
	if err := w.ScheduleNodeCrash(1, 1e-9); err != nil {
		t.Fatal(err)
	}
	err := runWithDeadline(t, w, 30*time.Second, func(r *Rank) error {
		// Rank 0 posts a message to the doomed rank 1 and one to rank 2
		// before anyone notices the failure; rank 1 dies at its first
		// communication call, leaving its mailbox traffic pending.
		if r.ID() == 0 {
			r.SendF64(1, 7, []float64{1})
			r.SendF64(2, 7, []float64{2})
		}
		r.ChargeCompute(1e9, 0)
		r.AllreduceScalar(OpSum, 1)
		return nil
	})
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("want ErrRankDead, got %v", err)
	}
	sr, err := w.Shrink()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Revoked == 0 {
		t.Fatal("no pending traffic revoked; the message to the dead rank should be")
	}
}

func TestAgreeDeadUnionsSuspicions(t *testing.T) {
	w := faultWorld(t, 4, 2)
	var mu sync.Mutex
	got := make([][]bool, 4)
	err := runWithDeadline(t, w, 30*time.Second, func(r *Rank) error {
		// Each rank suspects only its own index; agreement must return the
		// full union on every rank.
		suspect := make([]bool, 6)
		suspect[r.ID()] = true
		agreed := r.AgreeDead(suspect)
		mu.Lock()
		got[r.ID()] = agreed
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk, agreed := range got {
		for i := 0; i < 6; i++ {
			want := i < 4
			if agreed[i] != want {
				t.Fatalf("rank %d: agreed[%d] = %v, want %v", rk, i, agreed[i], want)
			}
		}
	}
}

func TestShrinkOnHealthyWorldRefused(t *testing.T) {
	w := faultWorld(t, 4, 2)
	if _, err := w.Shrink(); err == nil {
		t.Fatal("Shrink on a healthy world accepted")
	}
}

func TestShrinkNodesDropsCorrelatedSet(t *testing.T) {
	w := crashWorld(t, 8, 2, 1, 0.005) // recorded failure: node 1 (ranks 2,3)
	sr, err := w.ShrinkNodes([]int{3}) // the wave also dooms node 3 (ranks 6,7)
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.World.Size(); got != 4 {
		t.Fatalf("survivor world has %d ranks, want 4", got)
	}
	if sr.DeadNode != 1 {
		t.Fatalf("dead node %d, want the recorded failure node 1", sr.DeadNode)
	}
	if len(sr.DeadNodes) != 2 || sr.DeadNodes[0] != 1 || sr.DeadNodes[1] != 3 {
		t.Fatalf("dead nodes %v, want [1 3] ascending", sr.DeadNodes)
	}
	wantDead := []int{2, 3, 6, 7}
	if len(sr.DeadRanks) != len(wantDead) {
		t.Fatalf("dead ranks %v, want %v", sr.DeadRanks, wantDead)
	}
	for i, r := range wantDead {
		if sr.DeadRanks[i] != r {
			t.Fatalf("dead ranks %v, want %v", sr.DeadRanks, wantDead)
		}
	}
	wantO2N := []int{0, 1, -1, -1, 2, 3, -1, -1}
	for old, want := range wantO2N {
		if sr.OldToNew[old] != want {
			t.Fatalf("OldToNew[%d] = %d, want %d", old, sr.OldToNew[old], want)
		}
	}
	wantNode := []int{0, -1, 1, -1}
	for old, want := range wantNode {
		if sr.OldToNewNode[old] != want {
			t.Fatalf("OldToNewNode[%d] = %d, want %d", old, sr.OldToNewNode[old], want)
		}
	}
	// Survivor clocks carry, exactly as for a plain Shrink.
	for newR, oldR := range sr.NewToOld {
		if got, want := sr.World.Clocks()[newR].Now(), w.Clocks()[oldR].Now(); got != want {
			t.Fatalf("new rank %d clock %v, want carried %v", newR, got, want)
		}
	}
}

func TestShrinkNodesValidation(t *testing.T) {
	w := crashWorld(t, 8, 2, 1, 0.005)
	// Invalid doomed nodes are rejected BEFORE the world is consumed, so a
	// corrected call still works.
	if _, err := w.ShrinkNodes([]int{4}); err == nil {
		t.Fatal("out-of-range doomed node accepted")
	}
	if _, err := w.ShrinkNodes([]int{-1}); err == nil {
		t.Fatal("negative doomed node accepted")
	}
	// Listing the failure node again is harmless (it is already doomed).
	sr, err := w.ShrinkNodes([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sr.World.Size() != 6 || len(sr.DeadNodes) != 1 || sr.DeadNodes[0] != 1 {
		t.Fatalf("duplicate doomed node changed the outcome: %d ranks, dead %v",
			sr.World.Size(), sr.DeadNodes)
	}
}

func TestShrinkNodesRefusesTotalLoss(t *testing.T) {
	w := crashWorld(t, 8, 2, 0, 0.005)
	if _, err := w.ShrinkNodes([]int{1, 2, 3}); err == nil {
		t.Fatal("a wave dooming every node must be refused, not shrunk to zero ranks")
	}
}
