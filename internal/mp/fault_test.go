package mp

import (
	"errors"
	"testing"
	"time"

	"heterohpc/internal/netmodel"
	"heterohpc/internal/vclock"
)

// faultWorld builds a small multi-node world over the 10 GbE model.
func faultWorld(t *testing.T, nranks, perNode int) *World {
	t.Helper()
	topo, err := BlockTopology(nranks, perNode)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := netmodel.NewFabric(netmodel.TenGigE, topo.NNodes())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(topo, fab, vclock.LinearRater{FlopsPerSec: 1e9, BytesPerSec: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// runWithDeadline fails the test if the world does not finish within d —
// the deadlock guard the fault paths exist to make unnecessary.
func runWithDeadline(t *testing.T, w *World, d time.Duration, body func(r *Rank) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- w.Run(body) }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("world deadlocked: no result within %v", d)
		return nil
	}
}

// TestNodeCrashMidCollectivePoisonsAllRanks kills a node mid-Allreduce and
// checks that every rank — survivors included — observes ErrRankDead
// instead of deadlocking on messages from the dead node.
func TestNodeCrashMidCollectivePoisonsAllRanks(t *testing.T) {
	const nranks, perNode = 8, 2
	w := faultWorld(t, nranks, perNode)
	// Each iteration charges ~1 ms of compute, then synchronises. Kill
	// node 1 (ranks 2 and 3) mid-series.
	if err := w.ScheduleNodeCrash(1, 0.005); err != nil {
		t.Fatal(err)
	}
	err := runWithDeadline(t, w, 30*time.Second, func(r *Rank) error {
		for i := 0; i < 100; i++ {
			r.ChargeCompute(1e6, 0)
			got := r.AllreduceScalar(OpSum, 1)
			if got != float64(r.Size()) {
				t.Errorf("rank %d: allreduce %v, want %v", r.ID(), got, float64(r.Size()))
			}
		}
		return nil
	})
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("Run error = %v, want ErrRankDead", err)
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("Run error %T does not wrap RankError", err)
	}
	f, down := w.Failure()
	if !down || f.Node != 1 || f.At != 0.005 {
		t.Fatalf("Failure() = %+v, %v; want node 1 at 0.005", f, down)
	}
	if w.MaxVirtualTime() < 0.005 {
		t.Fatalf("MaxVirtualTime %v < failure time", w.MaxVirtualTime())
	}
}

// TestCrashBeyondRunIsNeverReached schedules a crash after the job's total
// virtual work: the run must complete cleanly.
func TestCrashBeyondRunIsNeverReached(t *testing.T) {
	w := faultWorld(t, 4, 2)
	if err := w.ScheduleNodeCrash(0, 1e9); err != nil {
		t.Fatal(err)
	}
	err := runWithDeadline(t, w, 30*time.Second, func(r *Rank) error {
		for i := 0; i < 5; i++ {
			r.AllreduceScalar(OpSum, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if _, down := w.Failure(); down {
		t.Fatal("world poisoned although crash time was never reached")
	}
}

// TestCrashDeterminism runs the same killed job twice and checks both the
// failure record and the typed error agree — the fault trigger is virtual
// time, not wall-clock racing.
func TestCrashDeterminism(t *testing.T) {
	run := func() (Failure, error) {
		w := faultWorld(t, 8, 2)
		if err := w.ScheduleNodeCrash(2, 0.003); err != nil {
			t.Fatal(err)
		}
		err := runWithDeadline(t, w, 30*time.Second, func(r *Rank) error {
			for i := 0; i < 100; i++ {
				r.ChargeCompute(1e6, 0)
				r.AllreduceScalar(OpMax, float64(r.ID()))
			}
			return nil
		})
		f, _ := w.Failure()
		return f, err
	}
	f1, err1 := run()
	f2, err2 := run()
	if f1 != f2 {
		t.Fatalf("failure records differ: %+v vs %+v", f1, f2)
	}
	if !errors.Is(err1, ErrRankDead) || !errors.Is(err2, ErrRankDead) {
		t.Fatalf("errors not ErrRankDead: %v / %v", err1, err2)
	}
}

// TestScheduleValidation rejects out-of-range nodes and bad windows.
func TestScheduleValidation(t *testing.T) {
	w := faultWorld(t, 4, 2)
	if err := w.ScheduleNodeCrash(5, 1); err == nil {
		t.Fatal("crash on out-of-range node accepted")
	}
	if err := w.ScheduleNodeCrash(0, -1); err == nil {
		t.Fatal("negative crash time accepted")
	}
	if err := w.ScheduleDegrade(0, 2, 1, 2); err == nil {
		t.Fatal("inverted degrade window accepted")
	}
	if err := w.ScheduleDegrade(0, 0, 1, 0); err == nil {
		t.Fatal("zero degrade factor accepted")
	}
}

// TestDegradeSlowsCommunication checks a straggler window inflates the
// degraded node's communication time and disappears outside the window.
func TestDegradeSlowsCommunication(t *testing.T) {
	elapsed := func(factor float64) float64 {
		w := faultWorld(t, 4, 2)
		if factor > 1 {
			if err := w.ScheduleDegrade(1, 0, 1e9, factor); err != nil {
				t.Fatal(err)
			}
		}
		if err := runWithDeadline(t, w, 30*time.Second, func(r *Rank) error {
			for i := 0; i < 20; i++ {
				r.AllreduceScalar(OpSum, 1)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxVirtualTime()
	}
	base := elapsed(1)
	slow := elapsed(8)
	if !(slow > base*1.5) {
		t.Fatalf("degraded run %v not slower than clean %v", slow, base)
	}
}
