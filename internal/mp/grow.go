// Elastic-world growth: the dual of Shrink.
//
// Shrink (shrink.go) re-forms a poisoned world around its survivors. Grow
// re-forms a healthy world around its ranks plus freshly provisioned
// replacement nodes: the proactive half of preemption recovery, where the
// supervisor uses the spot-market notice window to evacuate a doomed node's
// state, acquire a replacement, and continue at full width instead of
// degrading. Surviving ranks keep their rank numbers, their mailboxes (with
// the warm per-(src,tag) resident queues) and the shared payload pool, and
// their clocks carry their absolute virtual times via vclock.NewAt — the
// same continuation contract Shrink established. New ranks start with fresh
// mailboxes and clocks seeded at startAt, the virtual time at which their
// node came online.
//
// As with Shrink, the network does not re-form with the job: the grown world
// keeps the old fabric, modelling a replacement instance joining the same
// interconnect (and, on EC2, the same or an adjacent placement group — the
// group of each new node is the caller's choice).
package mp

import (
	"fmt"

	"sync/atomic"

	"heterohpc/internal/vclock"
)

// Grow is the outcome of extending a world with replacement nodes.
type Grow struct {
	// World is the grown world: same fabric and payload pool, extended
	// topology, survivor clocks carried at their absolute virtual times and
	// new-rank clocks seeded at the growth time.
	World *World
	// OldToNew maps old rank -> new rank. Growth never renumbers: the map
	// is the identity, kept for symmetry with Shrink so supervisors can
	// compose remappings uniformly.
	OldToNew []int
	// NewToOld maps new rank -> old rank, -1 for ranks that joined at the
	// growth (they have no pre-growth history).
	NewToOld []int
	// NewRanks and NewNodes list the appended ranks and nodes (new
	// numbering, ascending).
	NewRanks []int
	NewNodes []int
	// Revoked counts stale mailbox messages purged during the transplant —
	// payloads sent but never received before the old world completed.
	// Zero for any well-formed SPMD body.
	Revoked int
}

// Grow extends a healthy, completed world with replacement capacity:
// ranksPerNewNode[i] ranks are added on a new node in placement group
// groupOfNewNode[i], appended after the existing nodes. Existing ranks keep
// their numbers, mailboxes and pool ownership; their clocks continue at
// their absolute virtual times. New ranks get clocks seeded at startAt (the
// virtual time their node was provisioned). The old world is consumed — it
// cannot Run again; the grown world is fresh: it has no fault schedule, no
// observer, and may Run exactly once.
//
// Grow refuses a poisoned world: a world that recorded a failure has dead
// ranks that must be dropped first, so the recovery sequence there is
// Shrink (drop the dead) and then, capacity permitting, Grow (restore the
// width).
func (w *World) Grow(ranksPerNewNode, groupOfNewNode []int, startAt float64) (*Grow, error) {
	if _, down := w.Failure(); down {
		return nil, fmt.Errorf("mp: Grow on a poisoned world; Shrink it first")
	}
	if w.shrunk {
		return nil, fmt.Errorf("mp: world already consumed by Shrink or Grow")
	}
	if len(ranksPerNewNode) == 0 {
		return nil, fmt.Errorf("mp: Grow with no new nodes")
	}
	if len(groupOfNewNode) != len(ranksPerNewNode) {
		return nil, fmt.Errorf("mp: Grow got %d rank counts but %d groups",
			len(ranksPerNewNode), len(groupOfNewNode))
	}
	if startAt < 0 {
		return nil, fmt.Errorf("mp: Grow at negative virtual time %v", startAt)
	}
	p := w.Size()
	nnodes := w.topo.NNodes()
	added := 0
	for i, k := range ranksPerNewNode {
		if k < 1 {
			return nil, fmt.Errorf("mp: new node %d would hold %d ranks", i, k)
		}
		added += k
	}
	w.shrunk = true

	gr := &Grow{
		OldToNew: make([]int, p),
		NewToOld: make([]int, p+added),
	}
	for r := 0; r < p; r++ {
		gr.OldToNew[r] = r
		gr.NewToOld[r] = r
	}
	for r := p; r < p+added; r++ {
		gr.NewToOld[r] = -1
		gr.NewRanks = append(gr.NewRanks, r)
	}

	nodeOf := make([]int, p, p+added)
	copy(nodeOf, w.topo.NodeOf)
	groups := make([]int, nnodes, nnodes+len(ranksPerNewNode))
	copy(groups, w.topo.GroupOfNode)
	for i, k := range ranksPerNewNode {
		node := nnodes + i
		gr.NewNodes = append(gr.NewNodes, node)
		groups = append(groups, groupOfNewNode[i])
		for j := 0; j < k; j++ {
			nodeOf = append(nodeOf, node)
		}
	}
	topo, err := NewTopology(nodeOf, groups)
	if err != nil {
		return nil, fmt.Errorf("mp: grown topology: %w", err)
	}

	nw := &World{
		topo:     topo,
		fabric:   w.fabric,
		rater:    w.rater,
		clocks:   make([]*vclock.Clock, p+added),
		boxes:    make([]*mailbox, p+added),
		pool:     w.pool, // ownership of the warm free lists moves with the ranks
		rankDead: make([]atomic.Bool, p+added),
	}

	// Transplant the surviving ranks' mailboxes: repoint them at the grown
	// world, widen the per-source collective FIFOs for the new ranks, and
	// purge any stale payloads (keeping the resident (src,tag) queue
	// structures warm — the same pairs recur after the growth because rank
	// numbers are stable under Grow).
	for i := 0; i < p; i++ {
		mb := w.boxes[i]
		mb.mu.Lock()
		mb.w = nw
		if mb.coll != nil {
			mb.coll = append(mb.coll, make([]msgQueue, added)...)
			for src := range mb.coll {
				q := &mb.coll[src]
				if !q.empty() {
					gr.Revoked += q.len()
					for j := range q.buf {
						q.buf[j] = message{}
					}
					q.buf, q.head = q.buf[:0], 0
				}
			}
		}
		for _, q := range mb.pending {
			for !q.empty() {
				q.pop()
				gr.Revoked++
			}
		}
		// Any-source registrations do not survive the transplant: the grown
		// body re-registers tags on its first takeAny, exactly as a fresh
		// world would, so directed/any-source tag discipline restarts clean.
		for tag, q := range mb.anyQ {
			gr.Revoked += q.len()
			for !q.empty() {
				q.pop()
			}
			delete(mb.anyQ, tag)
			mb.putQueue(q)
		}
		mb.mu.Unlock()
		nw.boxes[i] = mb
		nw.clocks[i] = vclock.NewAt(w.rater, w.clocks[i].Now())
	}
	for i := p; i < p+added; i++ {
		nw.boxes[i] = newMailbox(nw)
		nw.clocks[i] = vclock.NewAt(w.rater, startAt)
	}

	gr.World = nw
	return gr, nil
}

// PriceBytes returns the virtual seconds one payload of payloadBytes takes
// from rank src to rank dst on this world's fabric, priced exactly as a send
// would charge it (header overhead and NIC sharing included) but without
// advancing any clock. The supervisor uses it to cost a notice-window
// evacuation before committing to it.
func (w *World) PriceBytes(src, dst, payloadBytes int) float64 {
	return w.fabric.P2P(
		payloadBytes+msgHeaderBytes,
		w.topo.SameNode(src, dst),
		w.topo.SameGroup(src, dst),
		w.topo.NICShare(src),
	)
}
