// ULFM-style recovery primitives: failure agreement and world shrinking.
//
// MPI's User-Level Failure Mitigation proposal gives survivors of a node
// loss three verbs — revoke the communicator, agree on the dead set, and
// shrink to a survivor communicator. This file models the same sequence on
// the mp substrate: Shrink revokes the poisoned world's pending traffic and
// re-forms the survivors into a fresh World whose clocks carry the absolute
// virtual times at which each survivor observed the failure, and AgreeDead
// is the MPI_Comm_agree analogue the continuation runs as its first
// collective on the survivor world.
//
// The network does not shrink with the job: the survivor world keeps the
// old fabric, so post-shrink traffic is priced on the same interconnect the
// job was placed on.
package mp

import (
	"fmt"

	"heterohpc/internal/vclock"
)

// Shrink is the outcome of re-forming a poisoned world around its
// survivors.
type Shrink struct {
	// World is the survivor world: same fabric, survivor-only topology,
	// clocks seeded with each survivor's virtual time at death-observation.
	World *World
	// OldToNew maps old rank -> new rank, -1 for dead ranks; NewToOld is
	// the inverse (survivors in ascending old-rank order).
	OldToNew, NewToOld []int
	// OldToNewNode maps old node -> new node, -1 for dropped nodes.
	OldToNewNode []int
	// DeadRanks and DeadNode identify what was lost (old numbering).
	// DeadNode is the recorded failure node; DeadNodes lists every dropped
	// node ascending (equal to [DeadNode] for a plain Shrink).
	DeadRanks []int
	DeadNode  int
	DeadNodes []int
	// Revoked counts the pending mailbox messages purged because they were
	// addressed to or sent by a dead rank — traffic a ULFM revoke would
	// have interrupted.
	Revoked int
}

// Shrink re-forms a poisoned world around its survivors. It must be called
// after Run has returned with ErrRankDead: the failed node's ranks are
// dropped, surviving ranks and nodes are renumbered order-preserving, and
// pending mailbox traffic to or from the dead is revoked. The old world is
// consumed (it cannot Run again); the survivor world is fresh — it has no
// fault schedule and may Run exactly once, with each rank's clock
// continuing at the virtual time the rank had reached when it unwound.
func (w *World) Shrink() (*Shrink, error) { return w.ShrinkNodes(nil) }

// ShrinkNodes is Shrink generalised to correlated losses: besides the
// recorded failure node it also drops alsoDoomed — nodes the supervisor
// knows are about to be reclaimed (a preemption wave) even though only one
// failure actually poisoned the world. Dropping them in one re-formation
// keeps recovery single-shot: one revoke, one survivor world, one
// continuation, instead of a shrink per casualty.
func (w *World) ShrinkNodes(alsoDoomed []int) (*Shrink, error) {
	f, down := w.Failure()
	if !down {
		return nil, fmt.Errorf("mp: Shrink on a world that recorded no failure")
	}
	if w.shrunk {
		return nil, fmt.Errorf("mp: world already shrunk")
	}

	p := w.Size()
	nnodes := w.topo.NNodes()
	doomed := make([]bool, nnodes)
	doomed[f.Node] = true
	for _, n := range alsoDoomed {
		if n < 0 || n >= nnodes {
			return nil, fmt.Errorf("mp: doomed node %d of %d", n, nnodes)
		}
		doomed[n] = true
	}
	w.shrunk = true

	sr := &Shrink{
		OldToNew:     make([]int, p),
		OldToNewNode: make([]int, nnodes),
		DeadNode:     f.Node,
	}
	next := 0
	for n := 0; n < nnodes; n++ {
		if doomed[n] {
			sr.OldToNewNode[n] = -1
			sr.DeadNodes = append(sr.DeadNodes, n)
			continue
		}
		sr.OldToNewNode[n] = next
		next++
	}
	for r := 0; r < p; r++ {
		if doomed[w.topo.NodeOf[r]] {
			sr.OldToNew[r] = -1
			sr.DeadRanks = append(sr.DeadRanks, r)
			continue
		}
		sr.OldToNew[r] = len(sr.NewToOld)
		sr.NewToOld = append(sr.NewToOld, r)
	}
	if len(sr.NewToOld) == 0 {
		return nil, fmt.Errorf("mp: no survivors: node(s) %v held every rank", sr.DeadNodes)
	}

	// Revoke: purge pending messages involving dead ranks. Deterministic —
	// the set of sent-but-unreceived messages at world death is a function
	// of the program and the fault schedule alone.
	dead := make([]bool, p)
	for _, r := range sr.DeadRanks {
		dead[r] = true
	}
	for owner, mb := range w.boxes {
		mb.mu.Lock()
		for k, q := range mb.pending {
			if dead[owner] || dead[k.src] {
				sr.Revoked += q.len()
				delete(mb.pending, k)
			}
		}
		for src := range mb.coll {
			q := &mb.coll[src]
			if dead[owner] || dead[src] {
				sr.Revoked += q.len()
				for i := range q.buf {
					q.buf[i] = message{}
				}
				q.buf, q.head = q.buf[:0], 0
			}
		}
		// Any-source FIFOs interleave sources, so they are filtered
		// in place (preserving survivor arrival order) rather than
		// dropped whole.
		for tag, q := range mb.anyQ {
			if dead[owner] {
				sr.Revoked += q.len()
				delete(mb.anyQ, tag)
				continue
			}
			kept := q.buf[:0]
			for _, m := range q.buf[q.head:] {
				if dead[m.src] {
					sr.Revoked++
				} else {
					kept = append(kept, m)
				}
			}
			for i := len(kept); i < len(q.buf); i++ {
				q.buf[i] = message{}
			}
			q.buf, q.head = kept, 0
		}
		mb.mu.Unlock()
	}

	nodeOf := make([]int, len(sr.NewToOld))
	groups := make([]int, 0, nnodes-len(sr.DeadNodes))
	for n, g := range w.topo.GroupOfNode {
		if !doomed[n] {
			groups = append(groups, g)
		}
	}
	for newR, oldR := range sr.NewToOld {
		nodeOf[newR] = sr.OldToNewNode[w.topo.NodeOf[oldR]]
	}
	topo, err := NewTopology(nodeOf, groups)
	if err != nil {
		return nil, fmt.Errorf("mp: survivor topology: %w", err)
	}
	nw, err := NewWorld(topo, w.fabric, w.rater)
	if err != nil {
		return nil, err
	}
	for newR, oldR := range sr.NewToOld {
		nw.clocks[newR] = vclock.NewAt(w.rater, w.clocks[oldR].Now())
	}
	sr.World = nw
	return sr, nil
}

// AgreeDead is the deterministic agreement collective of ULFM recovery
// (the MPI_Comm_agree analogue): every survivor contributes its local
// suspicion bitmap over some shared index space (here: the pre-shrink
// ranks) and all ranks return the identical union. Its cost — the
// synchronisation of survivor clocks frozen at different death-observation
// times plus the bitmap traffic — is charged through the fabric like any
// collective, so agreement latency appears in the recovery accounting.
func (r *Rank) AgreeDead(suspect []bool) []bool {
	v := make([]float64, len(suspect))
	for i, s := range suspect {
		if s {
			v[i] = 1
		}
	}
	out := r.Allreduce(OpMax, v)
	agreed := make([]bool, len(suspect))
	for i, x := range out {
		agreed[i] = x > 0
	}
	return agreed
}
