package mp

import (
	"sync"
	"testing"
	"time"
)

// healthyWorld runs a short charge/allreduce loop to completion so the
// world's clocks have advanced and its resident queues are warm, then
// returns it ready for Grow.
func healthyWorld(t *testing.T, nranks, perNode int) *World {
	t.Helper()
	w := faultWorld(t, nranks, perNode)
	err := runWithDeadline(t, w, 30*time.Second, func(r *Rank) error {
		for i := 0; i < 4; i++ {
			r.ChargeCompute(1e6, 0)
			r.AllreduceScalar(OpSum, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGrowAppendsRanksAndCarriesClocks(t *testing.T) {
	w := healthyWorld(t, 6, 2) // 3 nodes of 2
	oldNow := make([]float64, 6)
	for r, c := range w.Clocks() {
		oldNow[r] = c.Now()
		if oldNow[r] <= 0 {
			t.Fatalf("rank %d clock never advanced", r)
		}
	}
	const startAt = 123.5
	gr, err := w.Grow([]int{2}, []int{0}, startAt)
	if err != nil {
		t.Fatal(err)
	}
	if got := gr.World.Size(); got != 8 {
		t.Fatalf("grown world has %d ranks, want 8", got)
	}
	if got := gr.World.Topology().NNodes(); got != 4 {
		t.Fatalf("grown world has %d nodes, want 4", got)
	}
	// Growth never renumbers: identity for old ranks, -1 for joiners.
	for r := 0; r < 6; r++ {
		if gr.OldToNew[r] != r || gr.NewToOld[r] != r {
			t.Fatalf("rank %d renumbered: OldToNew=%d NewToOld=%d",
				r, gr.OldToNew[r], gr.NewToOld[r])
		}
	}
	for r := 6; r < 8; r++ {
		if gr.NewToOld[r] != -1 {
			t.Fatalf("joiner rank %d has NewToOld %d, want -1", r, gr.NewToOld[r])
		}
	}
	if len(gr.NewRanks) != 2 || gr.NewRanks[0] != 6 || gr.NewRanks[1] != 7 {
		t.Fatalf("NewRanks %v, want [6 7]", gr.NewRanks)
	}
	if len(gr.NewNodes) != 1 || gr.NewNodes[0] != 3 {
		t.Fatalf("NewNodes %v, want [3]", gr.NewNodes)
	}
	// The new ranks live together on the appended node.
	topo := gr.World.Topology()
	if topo.NodeOf[6] != 3 || topo.NodeOf[7] != 3 {
		t.Fatalf("joiner ranks on nodes %d,%d, want 3,3", topo.NodeOf[6], topo.NodeOf[7])
	}
	// Old clocks carry their absolute times; joiners start at startAt.
	for r := 0; r < 6; r++ {
		if got := gr.World.Clocks()[r].Now(); got != oldNow[r] {
			t.Fatalf("rank %d clock %v, want carried %v", r, got, oldNow[r])
		}
	}
	for r := 6; r < 8; r++ {
		if got := gr.World.Clocks()[r].Now(); got != startAt {
			t.Fatalf("joiner rank %d clock %v, want %v", r, got, startAt)
		}
	}
	// Pool ownership moved with the ranks.
	if gr.World.pool != w.pool {
		t.Fatal("grown world did not inherit the payload pool")
	}
	// Transplanted mailboxes point at the grown world and their collective
	// FIFOs cover the joiner ranks.
	for r := 0; r < 6; r++ {
		mb := gr.World.boxes[r]
		if mb != w.boxes[r] {
			t.Fatalf("rank %d mailbox was not transplanted", r)
		}
		if mb.w != gr.World {
			t.Fatalf("rank %d mailbox still points at the old world", r)
		}
		if mb.coll != nil && len(mb.coll) != 8 {
			t.Fatalf("rank %d collective FIFOs cover %d ranks, want 8", r, len(mb.coll))
		}
	}
	// The consumed world cannot run again; the grown world runs a
	// collective spanning old and new ranks.
	if err := w.Run(func(r *Rank) error { return nil }); err == nil {
		t.Fatal("consumed world accepted Run")
	}
	if _, err := w.Grow([]int{1}, []int{0}, 0); err == nil {
		t.Fatal("double Grow accepted")
	}
	var mu sync.Mutex
	sums := make([]float64, 8)
	err = runWithDeadline(t, gr.World, 30*time.Second, func(r *Rank) error {
		s := r.AllreduceScalar(OpSum, float64(r.ID()))
		mu.Lock()
		sums[r.ID()] = s
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range sums {
		if s != 28 { // 0+1+...+7
			t.Fatalf("rank %d allreduce sum %v, want 28", r, s)
		}
	}
	// Joiner clocks moved past their seed once they communicated.
	if got := gr.World.Clocks()[7].Now(); got <= startAt {
		t.Fatalf("joiner clock %v did not advance past seed %v", got, startAt)
	}
}

func TestGrowRefusesPoisonedAndBadArgs(t *testing.T) {
	// A poisoned world must Shrink before it can Grow.
	w := crashWorld(t, 4, 2, 1, 0.005)
	if _, err := w.Grow([]int{2}, []int{0}, 1); err == nil {
		t.Fatal("Grow on a poisoned world accepted")
	}
	h := healthyWorld(t, 4, 2)
	if _, err := h.Grow(nil, nil, 1); err == nil {
		t.Fatal("Grow with no new nodes accepted")
	}
	if _, err := h.Grow([]int{1}, []int{0, 0}, 1); err == nil {
		t.Fatal("mismatched rank/group lengths accepted")
	}
	if _, err := h.Grow([]int{0}, []int{0}, 1); err == nil {
		t.Fatal("empty new node accepted")
	}
	if _, err := h.Grow([]int{1}, []int{0}, -1); err == nil {
		t.Fatal("negative growth time accepted")
	}
	// The failed attempts above must not have consumed the world.
	if _, err := h.Grow([]int{1}, []int{0}, 1); err != nil {
		t.Fatalf("valid Grow after rejected args failed: %v", err)
	}
}

func TestGrowAfterShrinkRestoresWidth(t *testing.T) {
	// The proactive-recovery sequence: poison, shrink to survivors, grow
	// back to full width on a replacement node, then run a collective that
	// spans everyone.
	w := crashWorld(t, 8, 2, 1, 0.005) // kills ranks 2,3
	sr, err := w.Shrink()
	if err != nil {
		t.Fatal(err)
	}
	growAt := sr.World.Clocks()[0].Now() + 1
	gr, err := sr.World.Grow([]int{2}, []int{0}, growAt)
	if err != nil {
		t.Fatal(err)
	}
	if got := gr.World.Size(); got != 8 {
		t.Fatalf("regrown world has %d ranks, want 8", got)
	}
	if got := gr.World.Topology().NNodes(); got != 4 {
		t.Fatalf("regrown world has %d nodes, want 4", got)
	}
	// Survivor clocks still carry their pre-shrink absolute times through
	// both re-formations.
	for newR, oldR := range sr.NewToOld {
		if got, want := gr.World.Clocks()[newR].Now(), w.Clocks()[oldR].Now(); got != want {
			t.Fatalf("rank %d clock %v, want carried %v", newR, got, want)
		}
	}
	err = runWithDeadline(t, gr.World, 30*time.Second, func(r *Rank) error {
		r.AllreduceScalar(OpSum, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGrowSingleRankWorld(t *testing.T) {
	// The degenerate base: one rank on one node grows to two nodes.
	w := faultWorld(t, 1, 1)
	if err := w.Run(func(r *Rank) error { r.ChargeCompute(1e6, 0); return nil }); err != nil {
		t.Fatal(err)
	}
	gr, err := w.Grow([]int{1}, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gr.World.Size() != 2 {
		t.Fatalf("grown world has %d ranks, want 2", gr.World.Size())
	}
	err = runWithDeadline(t, gr.World, 30*time.Second, func(r *Rank) error {
		if s := r.AllreduceScalar(OpSum, 1); s != 2 {
			t.Errorf("allreduce %v, want 2", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPriceBytesMatchesSendCharge(t *testing.T) {
	w := healthyWorld(t, 4, 2)
	const payload = 8192
	// Same formula as chargeSend: header overhead, node/group locality and
	// NIC sharing all included.
	want := w.fabric.P2P(payload+msgHeaderBytes,
		w.topo.SameNode(0, 2), w.topo.SameGroup(0, 2), w.topo.NICShare(0))
	if got := w.PriceBytes(0, 2, payload); got != want {
		t.Fatalf("PriceBytes(0,2,%d) = %v, want %v", payload, got, want)
	}
	if w.PriceBytes(0, 1, payload) >= w.PriceBytes(0, 2, payload) {
		t.Fatal("intra-node transfer not cheaper than inter-node")
	}
}
