package mp

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// f64Pool recycles float64 message payloads within one World. Buffers are
// binned by power-of-two capacity; each class is a mutex-guarded LIFO stack.
//
// An explicit free list (rather than sync.Pool) keeps the steady state
// allocation-free: sync.Pool is emptied on every GC cycle, which would
// reintroduce allocation spikes into the hot iteration path the benchmarks
// pin at 0 allocs/op. Boundedness comes from capping the per-class stack
// depth and the largest recyclable buffer instead.
//
// Ownership protocol: every in-flight f64 payload is pool-owned. A send
// variant obtains a buffer with get, fills it completely and hands it to the
// destination mailbox; the matching receive either transfers ownership to
// the application (RecvF64, collectives) — in which case the buffer simply
// leaves the pool for good — or copies/scatters the payload out and returns
// the buffer with put (RecvF64Into, RecvF64Scatter, RecvF64AddScatter,
// scalar collectives). A buffer must never be put twice or retained after
// put.
type f64Pool struct {
	classes [poolClasses]poolClass

	// counting enables the gets/puts traffic counters for observed worlds.
	// It is set before Run spawns the rank goroutines and never written
	// afterwards, so the unsynchronised read in get/put is race-free and the
	// unobserved hot path pays only a predicted-false branch.
	counting   bool
	gets, puts atomic.Int64
}

type poolClass struct {
	mu   sync.Mutex
	free [][]float64
}

const (
	// poolClasses bounds recyclable capacities to 1<<(poolClasses-1)
	// elements (4 Mi float64 = 32 MiB); larger buffers are allocated
	// directly and dropped on put.
	poolClasses = 23
	// poolClassDepth caps each class's stack so a burst cannot pin
	// unbounded memory in the free list.
	poolClassDepth = 256
)

// class returns the size-class index for n elements: the smallest c with
// 1<<c >= n.
func poolClassOf(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a buffer of length n (capacity 1<<class). The contents are
// unspecified; the caller must overwrite all n elements. n == 0 returns nil
// without touching the pool.
func (p *f64Pool) get(n int) []float64 {
	if n == 0 {
		return nil
	}
	if p.counting {
		p.gets.Add(1)
	}
	c := poolClassOf(n)
	if c >= poolClasses {
		return make([]float64, n)
	}
	cl := &p.classes[c]
	cl.mu.Lock()
	if k := len(cl.free); k > 0 {
		buf := cl.free[k-1]
		cl.free[k-1] = nil
		cl.free = cl.free[:k-1]
		cl.mu.Unlock()
		return buf[:n]
	}
	cl.mu.Unlock()
	return make([]float64, n, 1<<c)
}

// put returns a buffer obtained from get. Buffers whose capacity is not an
// exact class size (or that exceed the largest class) are dropped for the
// GC; a full class drops the buffer too.
func (p *f64Pool) put(buf []float64) {
	if p.counting {
		p.puts.Add(1)
	}
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	ci := poolClassOf(c)
	if ci >= poolClasses {
		return
	}
	cl := &p.classes[ci]
	cl.mu.Lock()
	if len(cl.free) < poolClassDepth {
		cl.free = append(cl.free, buf[:0])
	}
	cl.mu.Unlock()
}
