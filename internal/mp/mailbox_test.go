package mp

import (
	"fmt"
	"testing"
)

// TestTakeAnyInterleavedTags exercises the per-tag arrival FIFOs: two
// any-source tags interleaved from one sender must each preserve send order
// and must not see each other's messages, regardless of the order the
// receiver drains them.
func TestTakeAnyInterleavedTags(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(r *Rank) error {
		const tagA, tagB, per = 7, 8, 20
		if r.ID() == 0 {
			// Interleave the two tags message by message.
			for i := 0; i < per; i++ {
				r.SendInts(1, tagA, []int{i})
				r.SendInts(1, tagB, []int{100 + i})
			}
			return nil
		}
		// Drain tag B completely first: every tag-A message sits queued in
		// its own FIFO while tag B is matched past it.
		for i := 0; i < per; i++ {
			src, got := r.RecvAnyInts(tagB)
			if src != 0 || got[0] != 100+i {
				return fmt.Errorf("tag B message %d: got src %d value %v", i, src, got)
			}
		}
		for i := 0; i < per; i++ {
			src, got := r.RecvAnyInts(tagA)
			if src != 0 || got[0] != i {
				return fmt.Errorf("tag A message %d: got src %d value %v", i, src, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTakeAnyInterleavedSources checks that one tag's arrival FIFO merges
// several senders while a second tag from the same senders stays queued:
// the receiver sees every (src, i) pair exactly once per tag, and messages
// from any fixed source arrive in that source's send order.
func TestTakeAnyInterleavedSources(t *testing.T) {
	const nranks, per = 4, 10
	w := testWorld(t, nranks, nranks)
	err := w.Run(func(r *Rank) error {
		const tagA, tagB = 11, 12
		if r.ID() != 0 {
			for i := 0; i < per; i++ {
				r.SendInts(0, tagA, []int{r.ID()*1000 + i})
				r.SendInts(0, tagB, []int{r.ID()*1000 + 500 + i})
			}
			return nil
		}
		check := func(tag, offset int) error {
			next := make([]int, nranks) // per-source expected sequence number
			for k := 0; k < (nranks-1)*per; k++ {
				src, got := r.RecvAnyInts(tag)
				want := src*1000 + offset + next[src]
				if got[0] != want {
					return fmt.Errorf("tag %d from %d: got %v want %d", tag, src, got, want)
				}
				next[src]++
			}
			for src := 1; src < nranks; src++ {
				if next[src] != per {
					return fmt.Errorf("tag %d: %d messages from %d, want %d", tag, next[src], src, per)
				}
			}
			return nil
		}
		// Drain B before A so A's backlog spans all senders when matching
		// starts.
		if err := check(tagB, 500); err != nil {
			return err
		}
		return check(tagA, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMsgQueuePopTag unit-tests the collective FIFO's tag matching: removal
// is by oldest-of-tag, order among the remaining messages is preserved, and
// draining rewinds the queue for reuse.
func TestMsgQueuePopTag(t *testing.T) {
	var q msgQueue
	// Interleave three collective tags, two messages each.
	for i, tag := range []int{-1, -2, -3, -1, -2, -3} {
		q.push(message{src: 0, tag: tag, ints: []int{i}})
	}
	if _, ok := q.popTag(-9); ok {
		t.Fatal("popTag matched an absent tag")
	}
	// Pull the middle tag first, then the others: each pair must come out
	// in push order.
	wantOrder := []struct{ tag, val int }{
		{-2, 1}, {-2, 4}, {-1, 0}, {-1, 3}, {-3, 2}, {-3, 5},
	}
	for _, w := range wantOrder {
		m, ok := q.popTag(w.tag)
		if !ok || m.ints[0] != w.val {
			t.Fatalf("popTag(%d): got %v ok=%v, want value %d", w.tag, m.ints, ok, w.val)
		}
	}
	if !q.empty() || q.head != 0 || len(q.buf) != 0 {
		t.Fatalf("drained queue not rewound: head=%d len=%d", q.head, len(q.buf))
	}
	// Reuse after rewind must not lose messages.
	q.push(message{tag: -4})
	if m, ok := q.popTag(-4); !ok || m.tag != -4 {
		t.Fatal("queue unusable after rewind")
	}
}
