package mp

import "fmt"

// ReduceOp is an element-wise reduction operator for collectives.
type ReduceOp int

const (
	// OpSum adds elements.
	OpSum ReduceOp = iota
	// OpMax keeps the element-wise maximum.
	OpMax
	// OpMin keeps the element-wise minimum.
	OpMin
)

func (op ReduceOp) apply(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mp: reduce length mismatch %d vs %d", len(dst), len(src)))
	}
	switch op {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("mp: unknown reduce op %d", op))
	}
}

// Collective tags live in their own negative namespace: every collective
// call consumes one sequence number; all ranks execute the same collective
// sequence so equal numbers pair up. The kind is mixed in so that a
// mismatched program (rank 0 in a Bcast while rank 1 is in a Reduce) fails
// loudly by deadlocking in tests rather than silently exchanging data.
const (
	collKinds    = 8
	kindBarrier  = 0
	kindBcast    = 1
	kindReduce   = 2
	kindGather   = 3
	kindAGather  = 4
	kindAlltoall = 5
	kindScatter  = 6
	kindScan     = 7
)

func (r *Rank) collTag(kind int) int {
	tag := -(1 + r.collSeq*collKinds + kind)
	r.collSeq++
	return tag
}

// Barrier blocks until every rank has entered it, using a dissemination
// pattern (ceil(log2 P) rounds of paired messages).
func (r *Rank) Barrier() {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag(kindBarrier)
	for k := 1; k < p; k <<= 1 {
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		r.sendF64(dst, tag, nil)
		r.RecvF64(src, tag)
	}
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns each rank's copy. Non-root ranks pass their (possibly nil) buffer;
// the returned slice holds the broadcast data.
func (r *Rank) Bcast(root int, data []float64) []float64 {
	p := r.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mp: bcast root %d out of range", root))
	}
	tag := r.collTag(kindBcast)
	if p == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	rel := (r.id - root + p) % p
	buf := data
	// Receive once from the parent (unless root).
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			buf = r.RecvF64(src, tag)
			break
		}
		mask <<= 1
	}
	// Forward to children below the mask at which we received.
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (rel + mask + root) % p
			r.sendF64(dst, tag, buf)
		}
		mask >>= 1
	}
	if rel == 0 {
		out := make([]float64, len(buf))
		copy(out, buf)
		return out
	}
	return buf
}

// Reduce combines data from all ranks with op along a binomial tree and
// returns the result on root (nil elsewhere). data is not modified.
func (r *Rank) Reduce(root int, op ReduceOp, data []float64) []float64 {
	p := r.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mp: reduce root %d out of range", root))
	}
	tag := r.collTag(kindReduce)
	acc := make([]float64, len(data))
	copy(acc, data)
	if p == 1 {
		return acc
	}
	rel := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask == 0 {
			if rel+mask < p {
				src := (rel + mask + root) % p
				op.apply(acc, r.RecvF64(src, tag))
			}
		} else {
			dst := (rel - mask + root) % p
			r.sendF64(dst, tag, acc)
			acc = nil
			break
		}
		mask <<= 1
	}
	return acc
}

// Allreduce combines data from all ranks with op and returns the result on
// every rank (Reduce to rank 0 followed by Bcast, 2·ceil(log2 P) stages).
func (r *Rank) Allreduce(op ReduceOp, data []float64) []float64 {
	acc := r.Reduce(0, op, data)
	return r.Bcast(0, acc)
}

// applyScalar is the one-element form of apply, with the identical
// floating-point evaluation order (acc op= v).
func (op ReduceOp) applyScalar(acc, v float64) float64 {
	switch op {
	case OpSum:
		return acc + v
	case OpMax:
		if v > acc {
			return v
		}
		return acc
	case OpMin:
		if v < acc {
			return v
		}
		return acc
	default:
		panic(fmt.Sprintf("mp: unknown reduce op %d", op))
	}
}

// sendScalar and recvScalar move one float64 through pooled one-element
// payloads — the transport under the allocation-free scalar collectives.
func (r *Rank) sendScalar(dst, tag int, v float64) {
	r.checkFault()
	cp := r.world.pool.get(1)
	cp[0] = v
	at := r.chargeSend(dst, 8)
	r.world.boxes[dst].put(message{src: r.id, tag: tag, f64: cp, arriveAt: at})
}

func (r *Rank) recvScalar(src, tag int) float64 {
	r.checkFault()
	m := r.world.boxes[r.id].take(src, tag)
	r.clk.AdvanceTo(m.arriveAt)
	r.checkFault()
	v := m.f64[0]
	r.world.pool.put(m.f64)
	return v
}

// AllreduceScalar is Allreduce for a single value — the reduction under
// every distributed dot product, so it runs twice per Krylov iteration on
// every rank. It mirrors Reduce(0)+Bcast(0) exactly (same binomial trees,
// tag sequence, message sizes and combination order, hence bit-identical
// values and virtual times) while keeping the payloads pooled.
func (r *Rank) AllreduceScalar(op ReduceOp, x float64) float64 {
	p := r.Size()
	acc := x
	// Reduce to rank 0 (kindReduce tag, as Allreduce's Reduce leg).
	tag := r.collTag(kindReduce)
	if p > 1 {
		rel := r.id
		for mask := 1; mask < p; mask <<= 1 {
			if rel&mask == 0 {
				if rel+mask < p {
					acc = op.applyScalar(acc, r.recvScalar(rel+mask, tag))
				}
			} else {
				r.sendScalar(rel-mask, tag, acc)
				break
			}
		}
	}
	// Bcast from rank 0 (kindBcast tag, as Allreduce's Bcast leg).
	tag = r.collTag(kindBcast)
	if p > 1 {
		rel := r.id
		mask := 1
		for mask < p {
			if rel&mask != 0 {
				acc = r.recvScalar(rel-mask, tag)
				break
			}
			mask <<= 1
		}
		mask >>= 1
		for ; mask > 0; mask >>= 1 {
			if rel+mask < p {
				r.sendScalar(rel+mask, tag, acc)
			}
		}
	}
	return acc
}

// Gather collects each rank's (variable-length) data on root, returned as a
// per-rank slice on root and nil elsewhere.
func (r *Rank) Gather(root int, data []float64) [][]float64 {
	p := r.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mp: gather root %d out of range", root))
	}
	tag := r.collTag(kindGather)
	if r.id != root {
		r.sendF64(root, tag, data)
		return nil
	}
	out := make([][]float64, p)
	own := make([]float64, len(data))
	copy(own, data)
	out[root] = own
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		out[src] = r.RecvF64(src, tag)
	}
	return out
}

// Allgather collects each rank's (variable-length) data on every rank using
// a ring: P−1 steps, each forwarding one block to the right neighbour.
func (r *Rank) Allgather(data []float64) [][]float64 {
	p := r.Size()
	tag := r.collTag(kindAGather)
	out := make([][]float64, p)
	own := make([]float64, len(data))
	copy(own, data)
	out[r.id] = own
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	cur := own
	for step := 1; step < p; step++ {
		r.sendF64(right, tag, cur)
		cur = r.RecvF64(left, tag)
		out[(r.id-step+p)%p] = cur
	}
	return out
}

// Scatter distributes root's per-rank blocks: rank i receives send[i]
// (send is ignored on non-root ranks).
func (r *Rank) Scatter(root int, send [][]float64) []float64 {
	p := r.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mp: scatter root %d out of range", root))
	}
	tag := r.collTag(kindScatter)
	if r.id == root {
		if len(send) != p {
			panic(fmt.Sprintf("mp: scatter needs %d blocks, got %d", p, len(send)))
		}
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			r.sendF64(dst, tag, send[dst])
		}
		own := make([]float64, len(send[root]))
		copy(own, send[root])
		return own
	}
	return r.RecvF64(root, tag)
}

// Scan computes the inclusive prefix reduction: rank i receives
// op(data₀, …, dataᵢ), using a linear chain (deterministic and exact for
// the rank-ordered partial sums distributed assembly needs).
func (r *Rank) Scan(op ReduceOp, data []float64) []float64 {
	p := r.Size()
	tag := r.collTag(kindScan)
	acc := make([]float64, len(data))
	copy(acc, data)
	if r.id > 0 {
		prev := r.RecvF64(r.id-1, tag)
		// acc = op(prefix, own): apply onto the prefix to preserve order.
		op.apply(prev, acc)
		acc = prev
	}
	if r.id < p-1 {
		r.sendF64(r.id+1, tag, acc)
	}
	return acc
}

// ReduceScatter reduces send element-wise across ranks and scatters the
// result: rank i receives the reduced block that rank-local send[i]
// contributed to. Implemented as Reduce followed by Scatter.
func (r *Rank) ReduceScatter(op ReduceOp, send [][]float64) []float64 {
	p := r.Size()
	if len(send) != p {
		panic(fmt.Sprintf("mp: reduce-scatter needs %d blocks, got %d", p, len(send)))
	}
	// Flatten for the tree reduction.
	sizes := make([]int, p)
	total := 0
	for i, blk := range send {
		sizes[i] = len(blk)
		total += len(blk)
	}
	flat := make([]float64, 0, total)
	for _, blk := range send {
		flat = append(flat, blk...)
	}
	reduced := r.Reduce(0, op, flat)
	var blocks [][]float64
	if r.id == 0 {
		blocks = make([][]float64, p)
		off := 0
		for i := range blocks {
			blocks[i] = reduced[off : off+sizes[i]]
			off += sizes[i]
		}
	}
	return r.Scatter(0, blocks)
}

// Alltoall delivers send[i] from this rank to rank i and returns the blocks
// received from every rank, using a pairwise exchange schedule.
func (r *Rank) Alltoall(send [][]float64) [][]float64 {
	p := r.Size()
	if len(send) != p {
		panic(fmt.Sprintf("mp: alltoall needs %d blocks, got %d", p, len(send)))
	}
	tag := r.collTag(kindAlltoall)
	out := make([][]float64, p)
	own := make([]float64, len(send[r.id]))
	copy(own, send[r.id])
	out[r.id] = own
	for step := 1; step < p; step++ {
		dst := (r.id + step) % p
		src := (r.id - step + p) % p
		r.sendF64(dst, tag, send[dst])
		out[src] = r.RecvF64(src, tag)
	}
	return out
}
