// Package partition plays the role ParMETIS played in the paper's software
// stack: decomposing the element dual graph of a mesh into balanced parts
// with small inter-part surface, "guaranteeing a proper load balancing among
// processes. The load is measured as the number of mesh elements assigned to
// each process" (§IV-C).
//
// Three partitioners are provided:
//
//   - Block: the exact structured px×py×pz decomposition (optimal on the
//     paper's cube meshes; used by the weak-scaling harness).
//   - RCB: recursive coordinate bisection over element centroids, for
//     arbitrary part counts.
//   - Greedy: greedy graph growing over the dual graph (a classic
//     METIS-style heuristic baseline).
//
// Evaluate computes the load-imbalance and edge-cut metrics used by the
// ablation benchmarks.
package partition

import (
	"fmt"
	"sort"

	"heterohpc/internal/mesh"
)

// Graph is the dual-graph view a partitioner needs.
type Graph interface {
	// NumVerts returns the number of graph vertices (mesh elements).
	NumVerts() int
	// Neighbors appends the neighbours of v to buf and returns it.
	Neighbors(v int, buf []int) []int
}

// DualGraph adapts a mesh's element adjacency to the Graph interface.
type DualGraph struct {
	M *mesh.Mesh
}

// NumVerts implements Graph.
func (g DualGraph) NumVerts() int { return g.M.NumElems() }

// Neighbors implements Graph.
func (g DualGraph) Neighbors(v int, buf []int) []int { return g.M.ElemNeighbors(v, buf) }

// Block returns the structured px×py×pz partition of m as an element->part
// map with parts in rank order.
func Block(m *mesh.Mesh, px, py, pz int) ([]int, error) {
	blocks, err := mesh.Decompose(m, px, py, pz)
	if err != nil {
		return nil, err
	}
	part := make([]int, m.NumElems())
	for rank, b := range blocks {
		for k := b.Lo[2]; k < b.Hi[2]; k++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for i := b.Lo[0]; i < b.Hi[0]; i++ {
					part[m.ElemID(i, j, k)] = rank
				}
			}
		}
	}
	return part, nil
}

// RCB partitions m's elements into nparts by recursive coordinate bisection
// of the element centroids. Part sizes differ by at most one element.
func RCB(m *mesh.Mesh, nparts int) ([]int, error) {
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts %d < 1", nparts)
	}
	n := m.NumElems()
	if nparts > n {
		return nil, fmt.Errorf("partition: %d parts for %d elements", nparts, n)
	}
	elems := make([]int, n)
	for i := range elems {
		elems[i] = i
	}
	part := make([]int, n)
	var rec func(set []int, parts, offset int)
	rec = func(set []int, parts, offset int) {
		if parts == 1 {
			for _, e := range set {
				part[e] = offset
			}
			return
		}
		// Choose the axis with the largest centroid extent.
		var lo, hi [3]float64
		for d := 0; d < 3; d++ {
			lo[d], hi[d] = 1e300, -1e300
		}
		for _, e := range set {
			x, y, z := m.ElemCenter(e)
			c := [3]float64{x, y, z}
			for d := 0; d < 3; d++ {
				if c[d] < lo[d] {
					lo[d] = c[d]
				}
				if c[d] > hi[d] {
					hi[d] = c[d]
				}
			}
		}
		axis := 0
		for d := 1; d < 3; d++ {
			if hi[d]-lo[d] > hi[axis]-lo[axis] {
				axis = d
			}
		}
		sort.Slice(set, func(a, b int) bool {
			ca := center(m, set[a], axis)
			cb := center(m, set[b], axis)
			if ca != cb {
				return ca < cb
			}
			return set[a] < set[b]
		})
		leftParts := parts / 2
		rightParts := parts - leftParts
		// Split the set proportionally to the part counts so every final
		// part ends up within one element of the mean.
		cut := (len(set)*leftParts + parts/2) / parts
		if cut < 1 {
			cut = 1
		}
		if cut > len(set)-1 {
			cut = len(set) - 1
		}
		rec(set[:cut], leftParts, offset)
		rec(set[cut:], rightParts, offset+leftParts)
	}
	rec(elems, nparts, 0)
	return part, nil
}

func center(m *mesh.Mesh, e, axis int) float64 {
	x, y, z := m.ElemCenter(e)
	switch axis {
	case 0:
		return x
	case 1:
		return y
	default:
		return z
	}
}

// Greedy partitions g into nparts by greedy graph growing: repeatedly seed
// an unassigned vertex of minimal unassigned degree and grow it breadth-
// first until its size quota is met.
func Greedy(g Graph, nparts int) ([]int, error) {
	n := g.NumVerts()
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts %d < 1", nparts)
	}
	if nparts > n {
		return nil, fmt.Errorf("partition: %d parts for %d vertices", nparts, n)
	}
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	assigned := 0
	var nbrBuf []int
	for p := 0; p < nparts; p++ {
		quota := (n - assigned) / (nparts - p)
		if quota < 1 {
			quota = 1
		}
		seed := pickSeed(g, part)
		if seed < 0 {
			break
		}
		// BFS growth.
		queue := []int{seed}
		part[seed] = p
		size := 1
		assigned++
		for len(queue) > 0 && size < quota {
			v := queue[0]
			queue = queue[1:]
			nbrBuf = g.Neighbors(v, nbrBuf[:0])
			for _, u := range nbrBuf {
				if part[u] == -1 && size < quota {
					part[u] = p
					size++
					assigned++
					queue = append(queue, u)
				}
			}
		}
		// If the frontier died (disconnected remainder), top up from any
		// unassigned vertices.
		for size < quota {
			s := pickSeed(g, part)
			if s < 0 {
				break
			}
			part[s] = p
			size++
			assigned++
			queue = append(queue, s)
			for len(queue) > 0 && size < quota {
				v := queue[0]
				queue = queue[1:]
				nbrBuf = g.Neighbors(v, nbrBuf[:0])
				for _, u := range nbrBuf {
					if part[u] == -1 && size < quota {
						part[u] = p
						size++
						assigned++
						queue = append(queue, u)
					}
				}
			}
		}
	}
	// Any stragglers go to the last part.
	for v := range part {
		if part[v] == -1 {
			part[v] = nparts - 1
			assigned++
		}
	}
	return part, nil
}

// pickSeed returns an unassigned vertex with minimal unassigned degree
// (a boundary-ish seed, following Farhat's heuristic), or -1 if none left.
func pickSeed(g Graph, part []int) int {
	best, bestDeg := -1, 1<<31
	var buf []int
	for v := 0; v < g.NumVerts(); v++ {
		if part[v] != -1 {
			continue
		}
		buf = g.Neighbors(v, buf[:0])
		deg := 0
		for _, u := range buf {
			if part[u] == -1 {
				deg++
			}
		}
		if deg < bestDeg {
			best, bestDeg = v, deg
			if deg == 0 {
				break
			}
		}
	}
	return best
}

// Quality summarises a partition: per-part load extremes, the imbalance
// ratio (max load / mean load), and the edge cut (dual-graph edges crossing
// parts, counted once).
type Quality struct {
	NumParts  int
	MaxLoad   int
	MinLoad   int
	Imbalance float64
	EdgeCut   int
}

// Evaluate computes Quality for part over graph g.
func Evaluate(g Graph, part []int, nparts int) (Quality, error) {
	if len(part) != g.NumVerts() {
		return Quality{}, fmt.Errorf("partition: part has %d entries for %d vertices",
			len(part), g.NumVerts())
	}
	loads := make([]int, nparts)
	for v, p := range part {
		if p < 0 || p >= nparts {
			return Quality{}, fmt.Errorf("partition: vertex %d in part %d of %d", v, p, nparts)
		}
		loads[p]++
	}
	q := Quality{NumParts: nparts, MinLoad: 1 << 31}
	for _, l := range loads {
		if l > q.MaxLoad {
			q.MaxLoad = l
		}
		if l < q.MinLoad {
			q.MinLoad = l
		}
	}
	mean := float64(g.NumVerts()) / float64(nparts)
	q.Imbalance = float64(q.MaxLoad) / mean
	var buf []int
	for v := 0; v < g.NumVerts(); v++ {
		buf = g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u > v && part[u] != part[v] {
				q.EdgeCut++
			}
		}
	}
	return q, nil
}
