package partition

import (
	"fmt"
	"sort"
)

// BalancedGrid factors nparts into a px×py×pz block grid for an nx×ny×nz
// element mesh, choosing the most cube-like factorisation that still fits
// (no grid dimension may exceed the mesh dimension it cuts, or a block
// would own no elements). Larger factors go to larger mesh dimensions.
// Unlike mesh.CubeGrid it accepts any nparts — after a shrink the survivor
// count is rarely a perfect cube — and it is deterministic: equal inputs
// always return the same grid.
func BalancedGrid(nparts, nx, ny, nz int) ([3]int, error) {
	if nparts < 1 {
		return [3]int{}, fmt.Errorf("partition: %d parts", nparts)
	}
	if nx < 1 || ny < 1 || nz < 1 {
		return [3]int{}, fmt.Errorf("partition: mesh %dx%dx%d", nx, ny, nz)
	}
	// Enumerate every factor triple a ≤ b ≤ c with a·b·c = nparts, most
	// cube-like first (smallest spread, then smallest largest factor).
	var triples [][3]int
	for a := 1; a*a*a <= nparts; a++ {
		if nparts%a != 0 {
			continue
		}
		rest := nparts / a
		for b := a; b*b <= rest; b++ {
			if rest%b == 0 {
				triples = append(triples, [3]int{a, b, rest / b})
			}
		}
	}
	sort.Slice(triples, func(i, j int) bool {
		si, sj := triples[i][2]-triples[i][0], triples[j][2]-triples[j][0]
		if si != sj {
			return si < sj
		}
		return triples[i][2] < triples[j][2]
	})

	// Mesh dimensions sorted descending, stable by axis index, so the
	// largest factor lands on the largest dimension.
	dims := []struct{ n, axis int }{{nx, 0}, {ny, 1}, {nz, 2}}
	sort.SliceStable(dims, func(i, j int) bool { return dims[i].n > dims[j].n })

	for _, tr := range triples {
		// tr is ascending; assign tr[2] to the largest dim, tr[0] to the
		// smallest.
		if tr[2] > dims[0].n || tr[1] > dims[1].n || tr[0] > dims[2].n {
			continue
		}
		var grid [3]int
		grid[dims[0].axis] = tr[2]
		grid[dims[1].axis] = tr[1]
		grid[dims[2].axis] = tr[0]
		return grid, nil
	}
	return [3]int{}, fmt.Errorf("partition: no factorisation of %d parts fits a %dx%dx%d mesh",
		nparts, nx, ny, nz)
}
