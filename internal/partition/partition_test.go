package partition

import (
	"testing"
	"testing/quick"

	"heterohpc/internal/mesh"
)

func checkValidPartition(t *testing.T, name string, part []int, n, nparts int) {
	t.Helper()
	if len(part) != n {
		t.Fatalf("%s: %d entries for %d elements", name, len(part), n)
	}
	seen := make([]int, nparts)
	for v, p := range part {
		if p < 0 || p >= nparts {
			t.Fatalf("%s: element %d in part %d", name, v, p)
		}
		seen[p]++
	}
	for p, c := range seen {
		if c == 0 {
			t.Fatalf("%s: part %d empty", name, p)
		}
	}
}

func TestBlockPartition(t *testing.T) {
	m := mesh.NewUnitCube(6)
	part, err := Block(m, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartition(t, "block", part, m.NumElems(), 6)
	q, err := Evaluate(DualGraph{m}, part, 6)
	if err != nil {
		t.Fatal(err)
	}
	if q.Imbalance != 1 {
		t.Fatalf("block partition imbalance %v, want 1", q.Imbalance)
	}
}

func TestRCBBalance(t *testing.T) {
	m := mesh.NewUnitCube(6) // 216 elements
	for _, nparts := range []int{1, 2, 3, 5, 8, 27} {
		part, err := RCB(m, nparts)
		if err != nil {
			t.Fatal(err)
		}
		checkValidPartition(t, "rcb", part, m.NumElems(), nparts)
		q, err := Evaluate(DualGraph{m}, part, nparts)
		if err != nil {
			t.Fatal(err)
		}
		mean := float64(m.NumElems()) / float64(nparts)
		if float64(q.MaxLoad) > mean+1.5 {
			t.Fatalf("nparts=%d: max load %d exceeds mean %v by >1.5", nparts, q.MaxLoad, mean)
		}
	}
}

func TestRCBMatchesBlockOnPowerOfTwo(t *testing.T) {
	// On a cube with 8 parts, RCB should find a partition with the same
	// (optimal) edge cut as the 2×2×2 block decomposition.
	m := mesh.NewUnitCube(4)
	rcb, err := RCB(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	block, err := Block(m, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	qr, _ := Evaluate(DualGraph{m}, rcb, 8)
	qb, _ := Evaluate(DualGraph{m}, block, 8)
	if qr.EdgeCut != qb.EdgeCut {
		t.Fatalf("RCB edge cut %d != block edge cut %d", qr.EdgeCut, qb.EdgeCut)
	}
}

func TestGreedyBalance(t *testing.T) {
	m := mesh.NewUnitCube(5)
	for _, nparts := range []int{1, 2, 4, 5, 9} {
		part, err := Greedy(DualGraph{m}, nparts)
		if err != nil {
			t.Fatal(err)
		}
		checkValidPartition(t, "greedy", part, m.NumElems(), nparts)
		q, _ := Evaluate(DualGraph{m}, part, nparts)
		if q.Imbalance > 1.35 {
			t.Fatalf("nparts=%d: greedy imbalance %v too high", nparts, q.Imbalance)
		}
	}
}

func TestPartitionersBeatScrambled(t *testing.T) {
	// Both real partitioners must produce a far smaller edge cut than a
	// scrambled round-robin assignment.
	m := mesh.NewUnitCube(6)
	const nparts = 8
	scrambled := make([]int, m.NumElems())
	for e := range scrambled {
		scrambled[e] = (e * 13) % nparts
	}
	qs, _ := Evaluate(DualGraph{m}, scrambled, nparts)
	rcb, _ := RCB(m, nparts)
	qr, _ := Evaluate(DualGraph{m}, rcb, nparts)
	greedy, _ := Greedy(DualGraph{m}, nparts)
	qg, _ := Evaluate(DualGraph{m}, greedy, nparts)
	if qr.EdgeCut*2 >= qs.EdgeCut {
		t.Fatalf("RCB cut %d not clearly better than scrambled %d", qr.EdgeCut, qs.EdgeCut)
	}
	if qg.EdgeCut*2 >= qs.EdgeCut {
		t.Fatalf("greedy cut %d not clearly better than scrambled %d", qg.EdgeCut, qs.EdgeCut)
	}
}

func TestValidation(t *testing.T) {
	m := mesh.NewUnitCube(2)
	if _, err := RCB(m, 0); err == nil {
		t.Error("RCB nparts=0 accepted")
	}
	if _, err := RCB(m, m.NumElems()+1); err == nil {
		t.Error("RCB nparts>n accepted")
	}
	if _, err := Greedy(DualGraph{m}, 0); err == nil {
		t.Error("Greedy nparts=0 accepted")
	}
	if _, err := Greedy(DualGraph{m}, m.NumElems()+1); err == nil {
		t.Error("Greedy nparts>n accepted")
	}
	if _, err := Evaluate(DualGraph{m}, []int{0}, 1); err == nil {
		t.Error("Evaluate with short part accepted")
	}
	if _, err := Evaluate(DualGraph{m}, make([]int, m.NumElems()), 0); err == nil {
		t.Error("Evaluate with out-of-range parts accepted")
	}
}

// Property: RCB assigns every element exactly once for arbitrary meshes and
// part counts, with every part within one of the mean size.
func TestRCBProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%5) + 2 // mesh edge 2..6
		m := mesh.NewUnitCube(n)
		nparts := int(pRaw)%(m.NumElems()/2) + 1
		part, err := RCB(m, nparts)
		if err != nil {
			return false
		}
		loads := make([]int, nparts)
		for _, p := range part {
			if p < 0 || p >= nparts {
				return false
			}
			loads[p]++
		}
		lo := m.NumElems() / nparts
		hi := lo + 1
		if m.NumElems()%nparts == 0 {
			hi = lo
		}
		for _, l := range loads {
			// RCB rounding can drift by one extra element for odd splits.
			if l < lo-1 || l > hi+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateEdgeCutCounting(t *testing.T) {
	// A 2-element mesh split across parts has exactly 1 cut edge.
	m, err := mesh.NewBox(mesh.UnitBox, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Evaluate(DualGraph{m}, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.EdgeCut != 1 {
		t.Fatalf("edge cut = %d, want 1", q.EdgeCut)
	}
	q, err = Evaluate(DualGraph{m}, []int{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.EdgeCut != 0 {
		t.Fatalf("edge cut = %d, want 0", q.EdgeCut)
	}
}

func BenchmarkRCB(b *testing.B) {
	m := mesh.NewUnitCube(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RCB(m, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	m := mesh.NewUnitCube(10)
	g := DualGraph{m}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}
